// Cross-module integration tests: miniature versions of the paper's
// experiments asserting the *relationships* the tables report, plus
// full-stack FASTA -> DFS -> Pig -> labels round trips.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "baselines/hclust_family.hpp"
#include "baselines/metacluster_like.hpp"
#include "bio/fasta.hpp"
#include "core/pipeline.hpp"
#include "eval/metrics.hpp"
#include "pig/pig.hpp"
#include "simdata/datasets.hpp"

namespace mrmc {
namespace {

// --------------------------------------------------- Table III relationships

class TableThreeShape : public ::testing::TestWithParam<const char*> {};

TEST_P(TableThreeShape, HierarchicalBeatsGreedyOnAccuracy) {
  const auto sample = simdata::build_whole_metagenome(
      simdata::whole_metagenome_spec(GetParam()), {.reads = 300, .seed = 3});

  core::PipelineParams params;
  params.minhash = {.kmer = 5, .num_hashes = 100, .canonical = true, .seed = 3};
  core::ExecutionOptions exec;
  exec.distributed = false;

  params.mode = core::Mode::kHierarchical;
  params.theta = 0.50;
  const auto hier = core::run_pipeline(sample.reads, params, exec);
  params.mode = core::Mode::kGreedy;
  params.theta = 0.32;
  const auto greedy = core::run_pipeline(sample.reads, params, exec);

  const double hier_acc =
      eval::weighted_cluster_accuracy(hier.labels, sample.labels);
  const double greedy_acc =
      eval::weighted_cluster_accuracy(greedy.labels, sample.labels);
  // The paper's consistent Table III finding, with slack for sampling noise.
  EXPECT_GE(hier_acc, greedy_acc - 0.03) << GetParam();
  EXPECT_GT(hier_acc, 0.75) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Samples, TableThreeShape,
                         ::testing::Values("S5", "S8", "S9", "S10", "S12"));

TEST(TableThreeShape, GreedySimTimeAboutHalfOfHierarchical) {
  const auto sample = simdata::build_whole_metagenome(
      simdata::whole_metagenome_spec("S8"), {.reads = 250, .seed = 4});
  core::PipelineParams params;
  params.minhash = {.kmer = 5, .num_hashes = 100, .canonical = true, .seed = 4};
  core::ExecutionOptions exec;
  exec.cluster.nodes = 8;

  params.mode = core::Mode::kHierarchical;
  params.theta = 0.5;
  const double hier_s = core::run_pipeline(sample.reads, params, exec).sim_total_s;
  params.mode = core::Mode::kGreedy;
  params.theta = 0.32;
  const double greedy_s = core::run_pipeline(sample.reads, params, exec).sim_total_s;
  EXPECT_LT(greedy_s, hier_s);
}

// ---------------------------------------------------- Table IV relationships

TEST(TableFourShape, AlignmentMethodsOverSplitVersusMinHash) {
  const auto sample =
      simdata::build_16s_simulated({.reads = 250, .error_rate = 0.03, .seed = 5});

  core::PipelineParams params;
  params.minhash = {.kmer = 15, .num_hashes = 50, .seed = 5};
  params.mode = core::Mode::kHierarchical;
  params.theta = 0.12;
  core::ExecutionOptions exec;
  exec.distributed = false;
  const auto mrmc = core::run_pipeline(sample.reads, params, exec);

  const auto dotur = baselines::dotur_cluster(sample.reads, {.identity = 0.95});
  EXPECT_GT(dotur.num_clusters, mrmc.num_clusters);

  // MinHash clusters land near the 43-gene ground truth.
  const std::size_t truth = sample.species.size();
  EXPECT_NEAR(static_cast<double>(mrmc.num_clusters), static_cast<double>(truth),
              static_cast<double>(truth) * 0.8);
}

TEST(TableFourShape, HigherErrorLowersWithinClusterSimilarity) {
  core::PipelineParams params;
  params.minhash = {.kmer = 15, .num_hashes = 50, .seed = 6};
  params.mode = core::Mode::kHierarchical;
  params.theta = 0.12;
  core::ExecutionOptions exec;
  exec.distributed = false;

  double wsim[2] = {0, 0};
  int index = 0;
  for (const double error : {0.03, 0.05}) {
    const auto sample = simdata::build_16s_simulated(
        {.reads = 250, .error_rate = error, .seed = 6});
    const auto result = core::run_pipeline(sample.reads, params, exec);
    eval::SimilarityOptions options;
    options.min_cluster_size = 2;
    wsim[index++] =
        eval::weighted_similarity(result.labels, sample.reads, options);
  }
  EXPECT_GT(wsim[0], wsim[1]);  // 3% error clusters are tighter than 5%
}

// ----------------------------------------------------- Table V relationships

TEST(TableFiveShape, ExhaustiveMethodsAreOrdersOfMagnitudeSlower) {
  const auto sample = simdata::build_environmental(
      simdata::environmental_spec("55R"), {.reads = 180, .seed = 7});

  core::PipelineParams params;
  params.minhash = {.kmer = 15, .num_hashes = 50, .seed = 7};
  params.mode = core::Mode::kGreedy;
  params.theta = 0.30;
  core::ExecutionOptions exec;
  exec.distributed = false;

  common::Stopwatch watch;
  const auto greedy = core::run_pipeline(sample.reads, params, exec);
  const double greedy_s = watch.seconds();

  const auto mothur = baselines::mothur_cluster(sample.reads, {.identity = 0.95});
  EXPECT_GT(mothur.wall_s, greedy_s * 5.0);
  EXPECT_GT(greedy.num_clusters, 1u);
}

// ------------------------------------------------------ full-stack round trip

TEST(FullStack, FastaThroughDfsAndPigMatchesDirectApi) {
  const auto sample = simdata::build_whole_metagenome(
      simdata::whole_metagenome_spec("S7"), {.reads = 40, .seed = 8});

  // Write FASTA to DFS, run the Pig script, read labels back out of DFS.
  mr::SimDfs dfs({.nodes = 4, .block_size = 8192, .replication = 2});
  dfs.write("/in.fa", bio::write_fasta_string(sample.reads));

  pig::Algorithm3Params params;
  params.kmer = 5;
  params.num_hashes = 64;
  params.seed = 9;
  params.cutoff = 0.5;
  const auto pig_result = pig::run_algorithm3(dfs, "/in.fa", "/h", "/g", params);

  core::PipelineParams direct;
  direct.minhash = {.kmer = 5, .num_hashes = 64, .seed = 9};
  direct.theta = 0.5;
  direct.mode = core::Mode::kGreedy;
  direct.greedy_estimator = core::SketchEstimator::kSetBased;
  const auto api_result = core::run_pipeline(sample.reads, direct);

  std::map<std::string, int> pig_labels(pig_result.greedy.begin(),
                                        pig_result.greedy.end());
  for (std::size_t i = 0; i < sample.reads.size(); ++i) {
    EXPECT_EQ(pig_labels.at(sample.reads[i].id), api_result.labels[i]);
  }

  // The stored DFS output is well-formed TSV, one line per read.
  const std::string stored = dfs.read("/g");
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(stored.begin(), stored.end(), '\n')),
            sample.reads.size());
}

TEST(FullStack, FastaRoundTripPreservesClusterInput) {
  const auto sample = simdata::build_environmental(
      simdata::environmental_spec("137"), {.reads = 60, .seed = 10});
  const auto text = bio::write_fasta_string(sample.reads);
  const auto parsed = bio::read_fasta_string(text);
  ASSERT_EQ(parsed.size(), sample.reads.size());

  core::PipelineParams params;
  params.minhash = {.kmer = 15, .num_hashes = 50, .seed = 11};
  params.theta = 0.35;
  core::ExecutionOptions exec;
  exec.distributed = false;
  EXPECT_EQ(core::run_pipeline(parsed, params, exec).labels,
            core::run_pipeline(sample.reads, params, exec).labels);
}

TEST(FullStack, DiversityMetricsReflectAbundanceSkew) {
  // A skewed community has lower Shannon H' than a uniform one with the
  // same richness — end-to-end through clustering.
  const auto genes = simdata::generate_16s_genes(12, {}, 12);
  simdata::AmpliconParams amplicon;
  amplicon.errors = simdata::ErrorModel::uniform(0.003);

  const auto uniform = simdata::amplicon_reads(
      genes, std::vector<double>(12, 1.0), 240, amplicon, 13);
  const auto skewed = simdata::amplicon_reads(
      genes, simdata::lognormal_abundances(12, 2.0, 14), 240, amplicon, 13);

  core::PipelineParams params;
  params.minhash = {.kmer = 15, .num_hashes = 50, .seed = 15};
  params.theta = 0.35;
  core::ExecutionOptions exec;
  exec.distributed = false;
  const auto label_uniform = core::run_pipeline(uniform.reads, params, exec);
  const auto label_skewed = core::run_pipeline(skewed.reads, params, exec);

  EXPECT_GT(eval::shannon_index(label_uniform.labels),
            eval::shannon_index(label_skewed.labels));
}

}  // namespace
}  // namespace mrmc

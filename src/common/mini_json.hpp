// Minimal recursive-descent JSON parser for reading the library's own
// exported artifacts: Chrome traces (the mrmc_doctor CLI), metrics
// snapshots, and BENCH_*.json records.  Also used by tests to validate
// those artifacts.  Throws std::runtime_error on malformed input — callers
// treat any exception as "not a valid artifact".
//
// Numbers are parsed with strtod, so the %.17g doubles the exporters write
// round-trip bit-for-bit (the guarantee the trace/report tests assert).
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace mrmc::common {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool has(const std::string& key) const {
    return object.find(key) != object.end();
  }
  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON error at offset " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const std::string& literal) {
    if (text_.compare(pos_, literal.size(), literal) == 0) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    JsonValue value;
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        value.type = JsonValue::Type::kString;
        value.string = parse_string();
        return value;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        value.type = JsonValue::Type::kBool;
        value.boolean = true;
        return value;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        value.type = JsonValue::Type::kBool;
        value.boolean = false;
        return value;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return value;
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      if (peek() != '"') fail("expected string key");
      std::string key = parse_string();
      expect(':');
      value.object.emplace(std::move(key), parse_value());
      const char next = peek();
      ++pos_;
      if (next == '}') return value;
      if (next != ',') fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(parse_value());
      const char next = peek();
      ++pos_;
      if (next == ']') return value;
      if (next != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          const unsigned long code = std::strtoul(hex.c_str(), nullptr, 16);
          if (code > 0x7F) fail("non-ASCII \\u escape unsupported by test parser");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    skip_ws();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double parsed = std::strtod(start, &end);
    if (end == start) fail("expected a number");
    pos_ += static_cast<std::size_t>(end - start);
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    value.number = parsed;
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

}  // namespace mrmc::common

// DNA alphabet handling: 2-bit encoding (A=0, C=1, G=2, T=3), validation,
// complement, and GC statistics.  This is the "StringGenerator" step of the
// paper's pipeline (DNA characters -> integer values).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mrmc::bio {

inline constexpr int kDnaAlphabetSize = 4;

/// Encode one nucleotide; returns -1 for any non-ACGT character (N, gaps,
/// IUPAC ambiguity codes).  Case-insensitive.
constexpr int encode_base(char c) noexcept {
  switch (c) {
    case 'A': case 'a': return 0;
    case 'C': case 'c': return 1;
    case 'G': case 'g': return 2;
    case 'T': case 't': return 3;
    default: return -1;
  }
}

constexpr char decode_base(int code) noexcept {
  constexpr char kBases[4] = {'A', 'C', 'G', 'T'};
  return (code >= 0 && code < 4) ? kBases[code] : 'N';
}

constexpr int complement_code(int code) noexcept { return 3 - code; }

constexpr char complement_base(char c) noexcept {
  const int code = encode_base(c);
  return code < 0 ? 'N' : decode_base(complement_code(code));
}

/// True iff every character is A/C/G/T (either case).
bool is_valid_dna(std::string_view seq) noexcept;

/// Reverse complement (non-ACGT characters become 'N').
std::string reverse_complement(std::string_view seq);

/// Fraction of G/C among ACGT characters; 0 if the sequence has none.
double gc_content(std::string_view seq) noexcept;

/// Uppercase copy with every non-ACGT character replaced by 'N'.
std::string sanitize(std::string_view seq);

}  // namespace mrmc::bio

#include "core/greedy.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mrmc::core {

namespace {

/// Sorted unique view of each sketch, precomputed so the set-based estimator
/// does not re-sort per comparison.
std::vector<Sketch> sorted_unique_sketches(std::span<const Sketch> sketches) {
  std::vector<Sketch> out;
  out.reserve(sketches.size());
  for (const auto& sketch : sketches) {
    Sketch s = sketch;
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

GreedyResult greedy_cluster(std::span<const Sketch> sketches,
                            const GreedyParams& params) {
  MRMC_REQUIRE(params.theta >= 0.0 && params.theta <= 1.0, "theta in [0, 1]");
  const std::size_t n = sketches.size();
  GreedyResult result;
  result.labels.assign(n, -1);
  if (n == 0) return result;

  const bool set_based = params.estimator == SketchEstimator::kSetBased;
  const std::vector<Sketch> sorted =
      set_based ? sorted_unique_sketches(sketches) : std::vector<Sketch>{};

  auto similarity = [&](std::size_t i, std::size_t j) {
    return set_based ? bio::exact_jaccard(sorted[i], sorted[j])
                     : component_match_similarity(sketches[i], sketches[j]);
  };

  // `pending` holds the indices of still-unassigned sequences, in input
  // order; each pass removes the new representative and everything it
  // absorbs (Algorithm 1 lines 5-14).
  std::vector<std::size_t> pending(n);
  for (std::size_t i = 0; i < n; ++i) pending[i] = i;

  int next_label = 0;
  while (!pending.empty()) {
    const std::size_t rep = pending.front();
    const int label = next_label++;
    result.labels[rep] = label;
    result.representatives.push_back(rep);

    std::vector<std::size_t> still_pending;
    still_pending.reserve(pending.size());
    for (std::size_t idx = 1; idx < pending.size(); ++idx) {
      const std::size_t candidate = pending[idx];
      ++result.comparisons;
      if (similarity(rep, candidate) >= params.theta) {
        result.labels[candidate] = label;
      } else {
        still_pending.push_back(candidate);
      }
    }
    pending = std::move(still_pending);
  }

  result.num_clusters = static_cast<std::size_t>(next_label);
  return result;
}

}  // namespace mrmc::core

// Read simulation: shotgun sampling from genomes with a 454-style error
// model (substitutions + indels), strand flips, and length variation.
// Reproduces the properties of the paper's Roche GS20 / 454 benchmarks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bio/fasta.hpp"
#include "simdata/genome.hpp"

namespace mrmc::simdata {

/// Sequencing error model applied independently to each read.
struct ErrorModel {
  double subst_rate = 0.0;   ///< per-base substitution probability
  double ins_rate = 0.0;     ///< per-base insertion probability
  double del_rate = 0.0;     ///< per-base deletion probability

  /// Uniform total error rate split 80/10/10 between subst/ins/del, matching
  /// the dominance of substitutions in the Huse et al. pyrosequencing study.
  static ErrorModel uniform(double total_rate) noexcept {
    return {0.8 * total_rate, 0.1 * total_rate, 0.1 * total_rate};
  }

  [[nodiscard]] double total() const noexcept {
    return subst_rate + ins_rate + del_rate;
  }
};

/// Apply the error model to a template sequence.
std::string apply_errors(const std::string& tmpl, const ErrorModel& errors,
                         std::uint64_t seed);

struct ShotgunParams {
  std::size_t read_length = 300;    ///< mean read length
  double length_jitter = 0.1;       ///< +/- fraction of uniform length noise
  bool both_strands = true;         ///< sample reverse-complement half the time
  ErrorModel errors{};              ///< per-read sequencing errors
};

/// Reads plus ground-truth labels (index into `species`).  `labels` is empty
/// for datasets without ground truth (environmental samples).
struct LabeledReads {
  std::vector<bio::FastaRecord> reads;
  std::vector<int> labels;
  std::vector<std::string> species;

  [[nodiscard]] std::size_t size() const noexcept { return reads.size(); }
  [[nodiscard]] bool has_labels() const noexcept { return !labels.empty(); }
};

/// Sample `count` shotgun reads from `genome` at uniformly random positions.
/// Read ids are "<prefix>_r<i>".
std::vector<bio::FastaRecord> shotgun_reads(const Genome& genome, std::size_t count,
                                            const ShotgunParams& params,
                                            const std::string& prefix,
                                            std::uint64_t seed);

/// Mix shotgun reads from several genomes according to integer abundance
/// ratios (e.g. {1, 1, 8}); produces `total` reads, shuffled, with labels.
LabeledReads mix_shotgun(const std::vector<Genome>& genomes,
                         const std::vector<int>& ratios, std::size_t total,
                         const ShotgunParams& params, std::uint64_t seed);

}  // namespace mrmc::simdata

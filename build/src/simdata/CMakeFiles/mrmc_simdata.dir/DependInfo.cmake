
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simdata/datasets.cpp" "src/simdata/CMakeFiles/mrmc_simdata.dir/datasets.cpp.o" "gcc" "src/simdata/CMakeFiles/mrmc_simdata.dir/datasets.cpp.o.d"
  "/root/repo/src/simdata/fastq_sim.cpp" "src/simdata/CMakeFiles/mrmc_simdata.dir/fastq_sim.cpp.o" "gcc" "src/simdata/CMakeFiles/mrmc_simdata.dir/fastq_sim.cpp.o.d"
  "/root/repo/src/simdata/genome.cpp" "src/simdata/CMakeFiles/mrmc_simdata.dir/genome.cpp.o" "gcc" "src/simdata/CMakeFiles/mrmc_simdata.dir/genome.cpp.o.d"
  "/root/repo/src/simdata/marker16s.cpp" "src/simdata/CMakeFiles/mrmc_simdata.dir/marker16s.cpp.o" "gcc" "src/simdata/CMakeFiles/mrmc_simdata.dir/marker16s.cpp.o.d"
  "/root/repo/src/simdata/reads.cpp" "src/simdata/CMakeFiles/mrmc_simdata.dir/reads.cpp.o" "gcc" "src/simdata/CMakeFiles/mrmc_simdata.dir/reads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bio/CMakeFiles/mrmc_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mrmc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

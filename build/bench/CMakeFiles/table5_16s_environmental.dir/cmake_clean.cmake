file(REMOVE_RECURSE
  "CMakeFiles/table5_16s_environmental.dir/table5_16s_environmental.cpp.o"
  "CMakeFiles/table5_16s_environmental.dir/table5_16s_environmental.cpp.o.d"
  "table5_16s_environmental"
  "table5_16s_environmental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_16s_environmental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

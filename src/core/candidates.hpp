// core::candidates — the pair-enumeration layer every clustering path goes
// through.  The paper (and the seed reproduction) compares all O(n^2) sketch
// pairs in the similarity job, the greedy sweep, and the hierarchical
// matrix; this layer makes "which pairs do we even score?" a first-class,
// swappable decision with two backends behind one interface:
//
//   * kExactAllPairs — every (i, j), i < j.  Today's behavior, the default
//     for small inputs, and the recall oracle the LSH backend is measured
//     against (eval/candidate_recall).
//   * kLshBanded — minhash sketches are split into `bands` bands of `rows`
//     components; two sketches land in the same bucket of some band with
//     probability 1 - (1 - J^rows)^bands (the classic S-curve), so only
//     bucket-mates become candidate pairs.  Near-linear in practice where
//     all-pairs is quadratic (bench/ablation_lsh_index).
//
// Candidates are then *verified*: every pair is scored with the batched
// sketch kernels (count_equal / SortedSketchStore) into a
// SparseSimilarityGraph that greedy (greedy_cluster_graph), hierarchical
// (similarity_matrix_from_graph), and pig's CalculatePairwiseSimilarity all
// consume.  The S-curve / band-shape math lives here and only here;
// core/lsh_index is a thin compatibility shim on top.
//
// Everything in this header is deterministic: candidate sets and edge lists
// are sorted and deduplicated, so they are byte-identical across thread
// counts, record split orders, local vs distributed execution, and scalar
// vs AVX2 kernel backends.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/minhash.hpp"

namespace mrmc::core::candidates {

enum class Backend {
  kExactAllPairs,  ///< every pair; the recall oracle
  kLshBanded,      ///< banded minhash buckets propose pairs
};

[[nodiscard]] const char* backend_name(Backend backend) noexcept;

/// A resolved banding: bands * rows == sketch_size.
struct BandShape {
  std::size_t bands = 0;
  std::size_t rows = 0;
};

/// Probability that two sketches with Jaccard similarity `jaccard` collide
/// in at least one band: 1 - (1 - J^rows)^bands.
[[nodiscard]] double lsh_collision_probability(double jaccard, std::size_t bands,
                                               std::size_t rows) noexcept;

/// The similarity at which the S-curve crosses 1/2 — the banding's effective
/// threshold: (1/bands)^(1/rows) approximately.
[[nodiscard]] double lsh_threshold(std::size_t bands, std::size_t rows) noexcept;

/// Validates an explicit band count against the sketch length.  Throws
/// common::InvalidArgument unless bands >= 1 and bands divides sketch_size.
[[nodiscard]] BandShape validated_band_shape(std::size_t sketch_size,
                                             std::size_t bands);

/// θ-driven shape selection: among the divisor pairs (bands, rows) with
/// bands * rows == sketch_size, pick the cheapest banding (fewest bands —
/// fewest buckets, fewest candidates) whose S-curve still recovers pairs at
/// similarity `theta` with probability >= `target_recall`.  The collision
/// probability at fixed J rises monotonically with the band count, so the
/// answer is unique; when even the most sensitive shape (rows == 1) misses
/// the target, that shape is returned.
[[nodiscard]] BandShape select_band_shape(std::size_t sketch_size, double theta,
                                          double target_recall = 0.95);

struct Params {
  Backend backend = Backend::kExactAllPairs;
  /// Explicit band count for the LSH backend; 0 = choose from θ via
  /// select_band_shape.  Must divide the sketch length when nonzero.
  std::size_t bands = 0;
  /// Auto band-shape target: minimum S-curve collision probability at θ.
  double target_recall = 0.95;
  std::uint64_t seed = 0x5ca1ab1eULL;
};

/// Resolve `params` against a concrete sketch length (validates explicit
/// band counts, runs the S-curve selection for bands == 0).
[[nodiscard]] BandShape resolve_band_shape(const Params& params,
                                           std::size_t sketch_size,
                                           double theta);

/// The banding hash: bucket key of `sketch`'s band `band` under `shape`.
/// Every consumer — the incremental index, the batch enumerator, and the
/// candidate MapReduce job — must call this exact function so their bucket
/// structure (and therefore their candidate sets) agree.
[[nodiscard]] std::uint64_t band_bucket_key(std::span<const std::uint64_t> sketch,
                                            std::size_t band,
                                            const BandShape& shape,
                                            std::uint64_t seed) noexcept;

/// An unordered candidate pair, stored with a < b.
using Pair = std::pair<std::uint32_t, std::uint32_t>;

/// Incremental banded bucket index (the grown core of the old LshIndex):
/// supports interleaved insert / candidate queries, as the indexed greedy
/// sweep needs.  Batch enumeration should prefer enumerate_pairs.
class LshBucketIndex {
 public:
  LshBucketIndex(std::size_t sketch_size, BandShape shape, std::uint64_t seed);

  [[nodiscard]] std::size_t bands() const noexcept { return shape_.bands; }
  [[nodiscard]] std::size_t rows() const noexcept { return shape_.rows; }

  void insert(int id, std::span<const std::uint64_t> sketch);

  /// All ids sharing at least one band bucket with `sketch`, deduplicated,
  /// in insertion order.
  [[nodiscard]] std::vector<int> candidates(
      std::span<const std::uint64_t> sketch) const;

  [[nodiscard]] std::size_t size() const noexcept { return inserted_; }

 private:
  BandShape shape_;
  std::uint64_t seed_;
  std::size_t inserted_ = 0;
  std::vector<std::unordered_map<std::uint64_t, std::vector<int>>> buckets_;
};

/// Enumerate candidate pairs for the whole sketch matrix under `params`:
/// all pairs (exact backend) or bucket-mates in at least one band (LSH
/// backend).  The result is sorted by (a, b) and deduplicated — identical
/// at any `pool` size, and identical to what the candidate MapReduce job
/// produces for the same inputs.
[[nodiscard]] std::vector<Pair> enumerate_pairs(
    const kernels::SketchMatrix& sketches, const Params& params, double theta,
    common::ThreadPool* pool = nullptr);

/// A verified candidate edge.  `similarity` is kept in double, computed with
/// the same reciprocal-multiply the batched kernels use, so densifying an
/// exact-backend graph (one float cast per edge) reproduces the all-pairs
/// similarity matrix bit-for-bit, while threshold comparisons in the graph
/// sweep see the same doubles the exhaustive sweep sees.
struct Edge {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  double similarity = 0.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// The sparse output of candidate verification: edges sorted by (a, b),
/// a < b, unique.  Consumed by greedy_cluster_graph, by
/// similarity_matrix_from_graph (hierarchical), and by pig's
/// CalculatePairwiseSimilarity.
struct SparseSimilarityGraph {
  std::size_t num_vertices = 0;
  std::vector<Edge> edges;
};

/// Score every candidate pair with the sketch kernels.  Pairs must be
/// sorted unique (enumerate_pairs output); edges come back in the same
/// order.  Bit-identical at any pool size and under scalar or AVX2 kernel
/// dispatch.
[[nodiscard]] SparseSimilarityGraph verify_pairs(
    const kernels::SketchMatrix& sketches, std::span<const Pair> pairs,
    SketchEstimator estimator, common::ThreadPool* pool = nullptr);

/// enumerate_pairs + verify_pairs in one call.
[[nodiscard]] SparseSimilarityGraph build_graph(
    const kernels::SketchMatrix& sketches, const Params& params, double theta,
    SketchEstimator estimator, common::ThreadPool* pool = nullptr);

}  // namespace mrmc::core::candidates

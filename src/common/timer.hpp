// Wall-clock stopwatch and human-readable duration formatting in the style
// used by the paper's tables ("4m 25s", "8.4s").
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

namespace mrmc::common {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Format a duration the way the paper's tables print it:
/// >= 60 s -> "4m 25s"; otherwise "8.4s".
inline std::string format_duration(double seconds) {
  char buf[64];
  if (seconds >= 60.0) {
    const auto mins = static_cast<long>(seconds) / 60;
    const auto secs = static_cast<long>(seconds) % 60;
    std::snprintf(buf, sizeof buf, "%ldm %02lds", mins, secs);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fs", seconds);
  }
  return buf;
}

}  // namespace mrmc::common

#include "mr/simdfs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace mrmc::mr {
namespace {

SimDfs::Options small_options() {
  SimDfs::Options options;
  options.nodes = 4;
  options.block_size = 100;
  options.replication = 2;
  return options;
}

TEST(SimDfs, WriteReadRoundTrip) {
  SimDfs dfs(small_options());
  dfs.write("/data/sample.fa", ">a\nACGT\n");
  EXPECT_TRUE(dfs.exists("/data/sample.fa"));
  EXPECT_EQ(dfs.read("/data/sample.fa"), ">a\nACGT\n");
}

TEST(SimDfs, MissingFileThrows) {
  SimDfs dfs(small_options());
  EXPECT_THROW((void)dfs.read("/nope"), common::IoError);
  EXPECT_THROW((void)dfs.stat("/nope"), common::IoError);
  EXPECT_THROW(dfs.remove("/nope"), common::IoError);
  EXPECT_FALSE(dfs.exists("/nope"));
}

TEST(SimDfs, OverwriteReplacesContent) {
  SimDfs dfs(small_options());
  dfs.write("/f", "first");
  dfs.write("/f", "second");
  EXPECT_EQ(dfs.read("/f"), "second");
}

TEST(SimDfs, ChunksIntoBlocks) {
  SimDfs dfs(small_options());
  dfs.write("/big", std::string(250, 'x'));
  const auto& info = dfs.stat("/big");
  ASSERT_EQ(info.blocks.size(), 3u);
  EXPECT_EQ(info.blocks[0].size, 100u);
  EXPECT_EQ(info.blocks[1].size, 100u);
  EXPECT_EQ(info.blocks[2].size, 50u);
  EXPECT_EQ(info.blocks[1].offset, 100u);
  EXPECT_EQ(info.size, 250u);
}

TEST(SimDfs, ReadBlockReturnsSlice) {
  SimDfs dfs(small_options());
  std::string content;
  for (int i = 0; i < 25; ++i) content += "0123456789";
  dfs.write("/b", content);
  EXPECT_EQ(dfs.read_block("/b", 0), content.substr(0, 100));
  EXPECT_EQ(dfs.read_block("/b", 2), content.substr(200, 50));
  EXPECT_THROW((void)dfs.read_block("/b", 3), common::InvalidArgument);
}

TEST(SimDfs, ReplicationPlacesDistinctNodes) {
  SimDfs dfs(small_options());
  dfs.write("/r", std::string(500, 'y'));
  for (const auto& block : dfs.stat("/r").blocks) {
    ASSERT_EQ(block.replicas.size(), 2u);
    EXPECT_NE(block.replicas[0], block.replicas[1]);
    for (const int node : block.replicas) {
      EXPECT_GE(node, 0);
      EXPECT_LT(node, 4);
    }
  }
}

TEST(SimDfs, ReplicationClampedToNodeCount) {
  SimDfs::Options options;
  options.nodes = 2;
  options.replication = 5;
  SimDfs dfs(options);
  dfs.write("/c", "data");
  EXPECT_EQ(dfs.stat("/c").blocks[0].replicas.size(), 2u);
}

TEST(SimDfs, PrimariesRotateAcrossNodes) {
  SimDfs dfs(small_options());
  dfs.write("/rot", std::string(400, 'z'));  // 4 blocks
  const auto& blocks = dfs.stat("/rot").blocks;
  std::set<int> primaries;
  for (const auto& block : blocks) primaries.insert(block.replicas[0]);
  EXPECT_EQ(primaries.size(), 4u);  // round-robin over 4 nodes
}

TEST(SimDfs, AppendExtendsAndCreates) {
  SimDfs dfs(small_options());
  dfs.append("/log", "one");
  dfs.append("/log", "two");
  EXPECT_EQ(dfs.read("/log"), "onetwo");
}

TEST(SimDfs, ListIsSortedAndPrefixed) {
  SimDfs dfs(small_options());
  dfs.write("/out/part-1", "a");
  dfs.write("/in/reads.fa", "b");
  dfs.write("/out/part-0", "c");
  EXPECT_EQ(dfs.list(),
            (std::vector<std::string>{"/in/reads.fa", "/out/part-0", "/out/part-1"}));
  EXPECT_EQ(dfs.list("/out/"),
            (std::vector<std::string>{"/out/part-0", "/out/part-1"}));
  EXPECT_TRUE(dfs.list("/none/").empty());
}

TEST(SimDfs, RemoveDeletes) {
  SimDfs dfs(small_options());
  dfs.write("/f", "x");
  dfs.remove("/f");
  EXPECT_FALSE(dfs.exists("/f"));
}

TEST(SimDfs, NodeUsageCountsReplicas) {
  SimDfs dfs(small_options());
  dfs.write("/u", std::string(200, 'u'));  // 2 blocks x 2 replicas x 100 B
  const auto usage = dfs.node_usage();
  EXPECT_EQ(std::accumulate(usage.begin(), usage.end(), std::size_t{0}), 400u);
}

TEST(SimDfs, TotalBytesIsLogicalSize) {
  SimDfs dfs(small_options());
  dfs.write("/a", std::string(150, 'a'));
  dfs.write("/b", std::string(50, 'b'));
  EXPECT_EQ(dfs.total_bytes(), 200u);
}

TEST(SimDfs, EmptyFileAllowed) {
  SimDfs dfs(small_options());
  dfs.write("/empty", "");
  EXPECT_TRUE(dfs.exists("/empty"));
  EXPECT_EQ(dfs.read("/empty"), "");
  EXPECT_TRUE(dfs.stat("/empty").blocks.empty());
}

TEST(SimDfs, RejectsEmptyPath) {
  SimDfs dfs(small_options());
  EXPECT_THROW(dfs.write("", "x"), common::InvalidArgument);
}

// ------------------------------------------------------ node failure model

// Regression for the placement clamp: asking for 3 replicas on a 2-node
// cluster used to loop forever looking for a third distinct node.
TEST(SimDfs, ReplicationThreeOnTwoNodesClampsNotHangs) {
  SimDfs::Options options;
  options.nodes = 2;
  options.block_size = 100;
  options.replication = 3;
  SimDfs dfs(options);
  dfs.write("/c", std::string(350, 'c'));  // 4 blocks
  for (const auto& block : dfs.stat("/c").blocks) {
    ASSERT_EQ(block.replicas.size(), 2u);
    EXPECT_NE(block.replicas[0], block.replicas[1]);
  }
  EXPECT_EQ(dfs.read("/c"), std::string(350, 'c'));
}

TEST(SimDfs, DecommissionReReplicatesOntoSurvivors) {
  SimDfs dfs(small_options());
  dfs.write("/d", std::string(500, 'd'));  // 5 blocks x 2 replicas

  dfs.decommission_node(1);
  EXPECT_FALSE(dfs.node_alive(1));
  EXPECT_EQ(dfs.live_nodes(), 3u);
  // Every block is back at the target factor on distinct live nodes.
  for (const auto& block : dfs.stat("/d").blocks) {
    ASSERT_EQ(block.replicas.size(), 2u);
    EXPECT_NE(block.replicas[0], block.replicas[1]);
    for (const int node : block.replicas) EXPECT_NE(node, 1);
  }
  EXPECT_TRUE(dfs.under_replicated_blocks().empty());
  EXPECT_TRUE(dfs.lost_blocks().empty());
  EXPECT_EQ(dfs.read("/d"), std::string(500, 'd'));
  // The dead node's disk is empty; survivors carry every byte.
  EXPECT_EQ(dfs.node_usage()[1], 0u);
}

TEST(SimDfs, DecommissionBelowTargetReportsUnderReplication) {
  SimDfs::Options options;
  options.nodes = 3;
  options.block_size = 100;
  options.replication = 3;
  SimDfs dfs(options);
  dfs.write("/u", std::string(300, 'u'));  // 3 blocks, replicas on all nodes

  dfs.decommission_node(2);
  // Only 2 live nodes remain for a target of 3: every block is
  // under-replicated but still readable.
  const auto under = dfs.under_replicated_blocks();
  EXPECT_EQ(under.size(), dfs.stat("/u").blocks.size());
  EXPECT_TRUE(dfs.lost_blocks().empty());
  EXPECT_EQ(dfs.read("/u"), std::string(300, 'u'));
}

TEST(SimDfs, LosingEveryReplicaLosesTheBlock) {
  SimDfs::Options options;
  options.nodes = 2;
  options.block_size = 100;
  options.replication = 1;
  SimDfs dfs(options);
  dfs.write("/l", std::string(200, 'l'));  // 2 blocks, one per node

  dfs.decommission_node(0);
  dfs.decommission_node(1);
  const auto lost = dfs.lost_blocks();
  EXPECT_EQ(lost.size(), 2u);
  EXPECT_TRUE(std::is_sorted(lost.begin(), lost.end()));
  EXPECT_THROW((void)dfs.read("/l"), common::IoError);
  EXPECT_THROW((void)dfs.read_block("/l", 0), common::IoError);
  // Metadata survives even when content is unreadable.
  EXPECT_TRUE(dfs.exists("/l"));
}

TEST(SimDfs, RecommissionRejoinsEmptyAndAcceptsNewBlocks) {
  SimDfs dfs(small_options());
  dfs.write("/r", std::string(400, 'r'));
  dfs.decommission_node(2);
  dfs.recommission_node(2);
  EXPECT_TRUE(dfs.node_alive(2));
  EXPECT_EQ(dfs.live_nodes(), 4u);
  EXPECT_EQ(dfs.node_usage()[2], 0u);  // old replicas stay dropped

  // Enough fresh blocks that round-robin placement must reach node 2.
  dfs.write("/fresh", std::string(800, 'f'));
  EXPECT_GT(dfs.node_usage()[2], 0u);
  EXPECT_EQ(dfs.read("/r"), std::string(400, 'r'));
}

TEST(SimDfs, ReReplicationIsDeterministic) {
  const auto run = [] {
    SimDfs dfs(small_options());
    dfs.write("/a", std::string(500, 'a'));
    dfs.write("/b", std::string(300, 'b'));
    dfs.decommission_node(3);
    dfs.decommission_node(0);
    std::vector<std::vector<int>> replicas;
    for (const std::string path : {"/a", "/b"}) {
      for (const auto& block : dfs.stat(path).blocks) {
        replicas.push_back(block.replicas);
      }
    }
    return replicas;
  };
  EXPECT_EQ(run(), run());
}

TEST(SimDfs, UsageRebalancesAfterRemoveAndAppend) {
  SimDfs dfs(small_options());
  dfs.write("/old", std::string(600, 'o'));
  dfs.write("/keep", std::string(200, 'k'));
  dfs.remove("/old");

  // Replica bytes account exactly for the surviving file...
  auto usage = dfs.node_usage();
  EXPECT_EQ(std::accumulate(usage.begin(), usage.end(), std::size_t{0}), 400u);

  // ...and appended blocks keep spreading over every node: with 8 more
  // blocks x 2 replicas over 4 nodes, nobody stays empty.
  dfs.append("/keep", std::string(800, 'k'));
  usage = dfs.node_usage();
  EXPECT_EQ(std::accumulate(usage.begin(), usage.end(), std::size_t{0}), 2000u);
  for (const std::size_t bytes : usage) EXPECT_GT(bytes, 0u);
}

TEST(SimDfs, DecommissionIsIdempotent) {
  SimDfs dfs(small_options());
  dfs.write("/i", std::string(300, 'i'));
  dfs.decommission_node(1);
  const auto usage = dfs.node_usage();
  dfs.decommission_node(1);  // no-op
  EXPECT_EQ(dfs.node_usage(), usage);
  dfs.recommission_node(0);  // alive already: no-op
  EXPECT_EQ(dfs.live_nodes(), 3u);
}

TEST(SimDfs, NodeQueriesRejectBadIds) {
  SimDfs dfs(small_options());
  EXPECT_THROW(dfs.decommission_node(-1), common::InvalidArgument);
  EXPECT_THROW(dfs.decommission_node(4), common::InvalidArgument);
  EXPECT_THROW(dfs.recommission_node(7), common::InvalidArgument);
  EXPECT_THROW((void)dfs.node_alive(-2), common::InvalidArgument);
}

}  // namespace
}  // namespace mrmc::mr

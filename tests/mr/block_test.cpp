// mr::BinaryBlock — wire-format pinning, roundtrips, corruption detection,
// the zero-copy view, and the byte-accounting / stable-hash member hooks.
#include "mr/block.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "mr/bytes.hpp"

namespace mrmc::mr {
namespace {

constexpr std::uint32_t kAllWidths[] = {1, 2, 4, 8, 16, 32, 64};

std::uint64_t lane_max(std::uint32_t bits) {
  return bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
}

TEST(BinaryBlock, RoundTripsEveryWidth) {
  for (const std::uint32_t bits : kAllWidths) {
    BinaryBlock block(bits, 67, 3);  // 67 rows: never a whole number of words
    const std::uint64_t mask = lane_max(bits);
    for (std::uint32_t col = 0; col < block.cols(); ++col) {
      for (std::uint64_t row = 0; row < block.rows(); ++row) {
        block.set(col, row, (row * 2654435761u + col * 40503u) & mask);
      }
    }
    for (std::uint32_t col = 0; col < block.cols(); ++col) {
      for (std::uint64_t row = 0; row < block.rows(); ++row) {
        EXPECT_EQ(block.get(col, row), (row * 2654435761u + col * 40503u) & mask)
            << "bits=" << bits << " col=" << col << " row=" << row;
      }
    }
  }
}

TEST(BinaryBlock, SetMasksToLaneWidthAndLeavesNeighborsAlone) {
  BinaryBlock block(8, 16, 1);
  block.set(0, 3, 0xAB);
  block.set(0, 4, 0xFFFF);  // wider than a lane: masked to 0xFF
  block.set(0, 5, 0x01);
  EXPECT_EQ(block.get(0, 3), 0xABu);
  EXPECT_EQ(block.get(0, 4), 0xFFu);
  EXPECT_EQ(block.get(0, 5), 0x01u);
}

TEST(BinaryBlock, PinsColumnMajorLittleEndianLayout) {
  // 8-bit lanes: row r of column c lands in byte r of word c — the layout
  // contract downstream packed kernels rely on.
  BinaryBlock block(8, 8, 2);
  for (std::uint64_t row = 0; row < 8; ++row) {
    block.set(0, row, row + 1);
    block.set(1, row, 0x10 + row);
  }
  ASSERT_EQ(block.words_per_column(), 1u);
  EXPECT_EQ(block.words()[0], 0x0807060504030201ull);
  EXPECT_EQ(block.words()[1], 0x1716151413121110ull);
}

TEST(BinaryBlock, SerializedHeaderIsPinned) {
  BinaryBlock block(16, 3, 1);
  block.set(0, 0, 0x1111);
  block.set(0, 1, 0x2222);
  block.set(0, 2, 0x3333);
  const auto bytes = block.serialize();
  ASSERT_EQ(bytes.size(), BinaryBlock::kHeaderBytes + 8);
  EXPECT_EQ(bytes[0], 'M');  // magic 0x4242524d little-endian: 'M','R','B','B'
  EXPECT_EQ(bytes[1], 'R');
  EXPECT_EQ(bytes[2], 'B');
  EXPECT_EQ(bytes[3], 'B');
  EXPECT_EQ(bytes[4], 1);  // version
  EXPECT_EQ(bytes[8], 16);  // elem_bits
  EXPECT_EQ(bytes[12], 1);  // cols
  EXPECT_EQ(bytes[16], 3);  // rows
  // Payload: 3 × 16-bit values packed low-to-high in one little-endian word.
  EXPECT_EQ(bytes[32], 0x11);
  EXPECT_EQ(bytes[34], 0x22);
  EXPECT_EQ(bytes[36], 0x33);
  EXPECT_EQ(bytes[38], 0x00);  // pad lane stays zero
}

TEST(BinaryBlock, SerializeDeserializeRoundTrips) {
  for (const std::uint32_t bits : kAllWidths) {
    BinaryBlock block(bits, 41, 2);
    const std::uint64_t mask = lane_max(bits);
    for (std::uint32_t col = 0; col < 2; ++col) {
      for (std::uint64_t row = 0; row < 41; ++row) {
        block.set(col, row, (row * 7919 + col) & mask);
      }
    }
    const auto bytes = block.serialize();
    EXPECT_EQ(BinaryBlock::deserialize(bytes), block) << "bits=" << bits;
  }
}

TEST(BinaryBlock, DeserializeRejectsCorruption) {
  BinaryBlock block(32, 9, 1);
  for (std::uint64_t row = 0; row < 9; ++row) block.set(0, row, row * 3);
  const auto good = block.serialize();

  auto flipped = good;
  flipped[BinaryBlock::kHeaderBytes + 2] ^= 0x40;  // payload bit flip
  EXPECT_THROW(BinaryBlock::deserialize(flipped), common::Error);

  auto bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(BinaryBlock::deserialize(bad_magic), common::Error);

  auto truncated = good;
  truncated.pop_back();
  EXPECT_THROW(BinaryBlock::deserialize(truncated), common::Error);

  auto bad_width = good;
  bad_width[8] = 3;  // elem_bits = 3 is not a divisor of 64
  EXPECT_THROW(BinaryBlock::deserialize(bad_width), common::Error);
}

TEST(BinaryBlock, ViewReadsSerializedBytesInPlace) {
  BinaryBlock block(4, 33, 3);
  for (std::uint32_t col = 0; col < 3; ++col) {
    for (std::uint64_t row = 0; row < 33; ++row) {
      block.set(col, row, (row + col) & 0xF);
    }
  }
  const auto bytes = block.serialize();
  const BinaryBlockView view{std::span<const std::uint8_t>(bytes)};
  EXPECT_EQ(view.elem_bits(), 4u);
  EXPECT_EQ(view.rows(), 33u);
  EXPECT_EQ(view.cols(), 3u);
  for (std::uint32_t col = 0; col < 3; ++col) {
    for (std::uint64_t row = 0; row < 33; ++row) {
      EXPECT_EQ(view.get(col, row), (row + col) & 0xF);
    }
  }
  // The view validates eagerly: corrupt bytes fail at construction.
  auto corrupt = bytes;
  corrupt[BinaryBlock::kHeaderBytes] ^= 1;
  EXPECT_THROW(BinaryBlockView{std::span<const std::uint8_t>(corrupt)},
               common::Error);
}

TEST(BinaryBlock, InvalidWidthThrows) {
  EXPECT_THROW(BinaryBlock(0, 4, 1), common::Error);
  EXPECT_THROW(BinaryBlock(3, 4, 1), common::Error);
  EXPECT_THROW(BinaryBlock(128, 4, 1), common::Error);
}

TEST(BinaryBlock, ApproxBytesIsExactWireSize) {
  // The byte-accounting hook must agree with serialize() to the byte —
  // that is what makes shuffle-byte counters report real packed volume.
  for (const std::uint32_t bits : kAllWidths) {
    const BinaryBlock block(bits, 100, 7);
    EXPECT_DOUBLE_EQ(approx_bytes(block),
                     static_cast<double>(block.serialize().size()))
        << "bits=" << bits;
  }
  // b=8 sketch columns: 100 rows × 7 cols in 8·ceil(100·8/64)·7 payload
  // bytes + 32 header = 8× less than the 64-bit payload would be.
  const BinaryBlock wide(64, 100, 7);
  const BinaryBlock narrow(8, 100, 7);
  EXPECT_DOUBLE_EQ(approx_bytes(wide), 32.0 + 100.0 * 8.0 * 7.0);
  EXPECT_DOUBLE_EQ(approx_bytes(narrow), 32.0 + 13.0 * 8.0 * 7.0);
}

TEST(BinaryBlock, StableHashSeparatesShapeAndPayload) {
  BinaryBlock a(8, 16, 1);
  BinaryBlock b(8, 16, 1);
  a.set(0, 3, 7);
  b.set(0, 3, 7);
  StableHasher ha, hb;
  stable_hash_append(ha, a);
  stable_hash_append(hb, b);
  EXPECT_EQ(ha.finish(), hb.finish());

  // Same payload words, different geometry: distinct hashes.
  BinaryBlock tall(8, 16, 1);
  BinaryBlock flat(16, 8, 1);
  StableHasher ht, hf;
  stable_hash_append(ht, tall);
  stable_hash_append(hf, flat);
  EXPECT_NE(ht.finish(), hf.finish());

  b.set(0, 4, 1);
  StableHasher hc;
  stable_hash_append(hc, b);
  EXPECT_NE(ha.finish(), hc.finish());
}

TEST(BinaryBlock, MinLaneBitsCoversCountRanges) {
  EXPECT_EQ(min_lane_bits(0), 8u);
  EXPECT_EQ(min_lane_bits(255), 8u);
  EXPECT_EQ(min_lane_bits(256), 16u);
  EXPECT_EQ(min_lane_bits(65535), 16u);
  EXPECT_EQ(min_lane_bits(65536), 32u);
  EXPECT_EQ(min_lane_bits(0xFFFFFFFFull), 32u);
  EXPECT_EQ(min_lane_bits(0x100000000ull), 64u);
}

// ------------------------------------------------- approx_bytes header model
// Satellite of the binary-shuffle work: every container costs the SAME
// 8-byte length header (kContainerHeaderBytes), nested or not.

TEST(ApproxBytesHeaderModel, NestedShapesUseOneHeaderConstant) {
  EXPECT_DOUBLE_EQ(kContainerHeaderBytes, 8.0);
  // string: header + length
  EXPECT_DOUBLE_EQ(approx_bytes(std::string("abc")), 8.0 + 3.0);
  // vector<u64>: header + payload
  EXPECT_DOUBLE_EQ(approx_bytes(std::vector<std::uint64_t>{1, 2}), 8.0 + 16.0);
  // pair<string, vector<int>>: recursive, one header per container
  const std::pair<std::string, std::vector<int>> p{"ab", {1, 2, 3}};
  EXPECT_DOUBLE_EQ(approx_bytes(p), (8.0 + 2.0) + (8.0 + 12.0));
  // vector<vector<string>>: headers at every nesting level
  const std::vector<std::vector<std::string>> nested{{"a"}, {"bc", "d"}};
  EXPECT_DOUBLE_EQ(approx_bytes(nested),
                   8.0 + (8.0 + (8.0 + 1.0)) + (8.0 + (8.0 + 2.0) + (8.0 + 1.0)));
}

}  // namespace
}  // namespace mrmc::mr

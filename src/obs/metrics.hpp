// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms, built for cheap concurrent accumulation on the engine's hot
// paths (map/reduce tasks run on a thread pool).
//
// Counters and histograms accumulate into a small array of cache-line-padded
// shards; each thread is assigned a shard slot on first use (thread-local,
// round-robin), so concurrent `add`/`observe` calls from the pool almost
// never contend on a cache line.  Reads (`value()`, `snapshot()`) sum the
// shards; they are O(shards) and intended for end-of-run reporting, not hot
// loops.
//
// Metric objects are owned by the Registry and live for the process;
// references returned by `counter()` / `gauge()` / `histogram()` are stable
// and safe to cache.  `Registry::global()` is the instance the engine
// instruments; tests may `reset()` it between cases.
//
// A snapshot renders as text (one metric per line), JSON, or Prometheus
// text exposition; if the MRMC_METRICS environment variable names a file,
// `Registry::write_global_if_configured()` dumps the global registry there
// (JSON when the path ends in .json, Prometheus when the value is
// "prom:<path>", text otherwise).
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mrmc::obs {

namespace detail {
/// Number of accumulation shards per metric; a small power of two that
/// covers typical thread-pool widths without wasting memory.
inline constexpr std::size_t kShards = 16;

/// Thread-local shard slot, assigned round-robin at first use.
std::size_t shard_index() noexcept;

struct alignas(64) LongCell {
  std::atomic<long> value{0};
};
}  // namespace detail

/// Monotonically increasing integer metric.
class Counter {
 public:
  void add(long delta = 1) noexcept {
    shards_[detail::shard_index()].value.fetch_add(delta,
                                                   std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  [[nodiscard]] long value() const noexcept;
  void reset() noexcept;

 private:
  detail::LongCell shards_[detail::kShards];
};

/// Last-written floating-point metric.
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot {
  std::vector<double> bounds;  ///< inclusive upper bounds; implicit +inf last
  std::vector<long> counts;    ///< one per bound, plus the overflow bucket
  long count = 0;
  double sum = 0.0;

  [[nodiscard]] double mean() const noexcept {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }

  /// Estimate the q-quantile (q in [0, 1]) by linear interpolation within
  /// the bucket holding the target rank (Prometheus histogram_quantile
  /// style): the first bucket interpolates up from 0, the overflow bucket
  /// clamps to the last finite bound.  Returns 0 for an empty histogram;
  /// a single-sample histogram returns the sample itself (== sum) for
  /// every q rather than interpolating inside its bucket.
  [[nodiscard]] double percentile(double q) const noexcept;
};

/// Fixed-bucket histogram: `observe(v)` lands in the first bucket whose
/// upper bound satisfies v <= bound, or the overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value) noexcept;

  [[nodiscard]] HistogramSnapshot snapshot() const;
  void reset() noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }

  /// Default bounds: decades with a 1-2-5 ladder from 1e-6 to 1e4 —
  /// suitable for both simulated seconds and small cardinalities.
  static std::span<const double> default_bounds() noexcept;

 private:
  std::vector<double> bounds_;
  // counts_[shard * (bounds+1) + bucket]
  std::vector<detail::LongCell> counts_;
  detail::LongCell observe_count_[detail::kShards];
  // Sum accumulates per-shard to avoid a CAS loop on a shared double.
  struct alignas(64) DoubleCell {
    std::atomic<double> value{0.0};
  };
  DoubleCell sums_[detail::kShards];
};

struct MetricsSnapshot {
  std::map<std::string, long> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] std::string to_json() const;
  /// Prometheus text exposition (version 0.0.4, label-free): every metric
  /// gets an `mrmc_`-prefixed name sanitized to [a-zA-Z0-9_:] and a
  /// `# TYPE` line; histograms export as label-free summaries (`_count`,
  /// `_sum`).  Exported via MRMC_METRICS=prom:<path> — groundwork for the
  /// query-service /metrics health endpoint.
  [[nodiscard]] std::string to_prometheus() const;
};

class Registry {
 public:
  /// The registry the library's instrumentation writes to.
  static Registry& global();

  /// Find-or-create by name.  References remain valid for the registry's
  /// lifetime.  A histogram's bounds are fixed by its first registration.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       std::span<const double> bounds = {});

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every metric (registrations survive — cached references stay valid).
  void reset();

  /// If MRMC_METRICS names a file, write the global snapshot there.
  /// Returns true when a file was written.
  static bool write_global_if_configured();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace mrmc::obs

#include "bio/fasta.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace mrmc::bio {

namespace {

std::string first_token(std::string_view line) {
  const auto end = line.find_first_of(" \t");
  return std::string(line.substr(0, end));
}

void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

namespace detail {

// Called by the FASTA and FASTQ parsers for every quarantined record, so
// both feed one metric the pipeline doctor and dashboards can watch.
void note_malformed(ParseReport* report, const std::string& reason) {
  obs::Registry::global().counter("bio.malformed_records").add();
  if (report == nullptr) return;
  ++report->skipped;
  report->reasons.push_back(reason);
}

}  // namespace detail

std::vector<FastaRecord> read_fasta(std::istream& in,
                                    const ParseOptions& options,
                                    ParseReport* report) {
  std::vector<FastaRecord> records;
  std::string line;
  FastaRecord current;
  bool in_record = false;    // a valid header has been seen
  bool quarantined = false;  // inside a record whose header was rejected
  bool leading_junk = false; // already counted the pre-header garbage run
  const bool lenient = options.on_error == OnParseError::kSkip;

  // In strict mode `fail` throws; in lenient mode it quarantines and lets
  // the caller's control flow skip the record.  The message strings are the
  // strict-mode errors verbatim, so reasons read the same either way.
  const auto fail = [&](std::string message) {
    if (!lenient) throw common::IoError(message);
    detail::note_malformed(report, message);
  };

  auto flush = [&] {
    if (!in_record) return;
    if (current.seq.empty()) {
      fail("fasta: record '" + current.id + "' has no sequence");
    } else {
      records.push_back(std::move(current));
    }
    current = {};
  };

  while (std::getline(in, line)) {
    strip_cr(line);
    if (line.empty()) continue;
    if (line.front() == '>') {
      flush();
      quarantined = false;
      const std::string header = line.substr(1);
      if (first_token(header).empty()) {
        fail("fasta: record with empty id");
        // Lenient: swallow this record's sequence lines too.
        in_record = false;
        quarantined = true;
        continue;
      }
      in_record = true;
      current.header = header;
      current.id = first_token(current.header);
    } else {
      if (!in_record) {
        if (quarantined) continue;  // body of an already-counted bad record
        if (!leading_junk) {
          fail("fasta: sequence data before first header");
          leading_junk = true;  // one count per garbage run, not per line
        }
        continue;
      }
      current.seq += line;
    }
  }
  flush();
  if (report != nullptr) report->records = records.size();
  return records;
}

std::vector<FastaRecord> read_fasta(std::istream& in) {
  return read_fasta(in, ParseOptions{});
}

std::vector<FastaRecord> read_fasta_string(std::string_view text,
                                           const ParseOptions& options,
                                           ParseReport* report) {
  std::istringstream stream{std::string(text)};
  return read_fasta(stream, options, report);
}

std::vector<FastaRecord> read_fasta_string(std::string_view text) {
  return read_fasta_string(text, ParseOptions{});
}

std::vector<FastaRecord> read_fasta_file(const std::string& path,
                                         const ParseOptions& options,
                                         ParseReport* report) {
  std::ifstream file(path);
  if (!file) throw common::IoError("fasta: cannot open '" + path + "'");
  ParseReport local;
  if (report == nullptr) report = &local;
  auto records = read_fasta(file, options, report);
  if (report->skipped > 0) {
    static const obs::Logger logger("bio.fasta");
    logger.warn("skipped malformed records", {{"path", path},
                                              {"skipped", report->skipped},
                                              {"kept", records.size()}});
  }
  return records;
}

std::vector<FastaRecord> read_fasta_file(const std::string& path) {
  return read_fasta_file(path, ParseOptions{});
}

void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 std::size_t width) {
  for (const auto& rec : records) {
    out << '>' << (rec.header.empty() ? rec.id : rec.header) << '\n';
    if (width == 0) {
      out << rec.seq << '\n';
    } else {
      for (std::size_t pos = 0; pos < rec.seq.size(); pos += width) {
        out << std::string_view(rec.seq).substr(pos, width) << '\n';
      }
    }
  }
}

std::string write_fasta_string(const std::vector<FastaRecord>& records,
                               std::size_t width) {
  std::ostringstream out;
  write_fasta(out, records, width);
  return out.str();
}

}  // namespace mrmc::bio

#include "mr/cluster.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/error.hpp"
#include "common/timer.hpp"

namespace mrmc::mr {

SimScheduler::SimScheduler(ClusterConfig config) : config_(config) {
  MRMC_REQUIRE(config_.nodes >= 1, "cluster needs at least one node");
  MRMC_REQUIRE(config_.map_slots_per_node >= 1, "need at least one map slot");
  MRMC_REQUIRE(config_.reduce_slots_per_node >= 1, "need at least one reduce slot");
  MRMC_REQUIRE(config_.node.cpu_rate > 0, "cpu_rate must be positive");
  MRMC_REQUIRE(config_.node.disk_bw > 0 && config_.node.net_bw > 0,
               "bandwidths must be positive");
}

double SimScheduler::task_duration(const TaskSpec& task, bool data_local) const {
  const NodeSpec& node = config_.node;
  const double input_bw = data_local ? node.disk_bw : node.net_bw;
  return config_.task_startup_s + task.work / node.cpu_rate +
         task.input_bytes / input_bw + task.output_bytes / node.disk_bw;
}

double SimScheduler::shuffle_time(double total_bytes) const {
  if (total_bytes <= 0) return 0.0;
  const double remote_fraction =
      config_.nodes <= 1
          ? 0.0
          : 1.0 - 1.0 / static_cast<double>(config_.nodes);
  const double aggregate_bw =
      static_cast<double>(config_.nodes) * config_.node.net_bw;
  const double local_part = total_bytes * (1.0 - remote_fraction) /
                            (static_cast<double>(config_.nodes) * config_.node.disk_bw);
  return total_bytes * remote_fraction / aggregate_bw + local_part;
}

PhaseTimeline SimScheduler::schedule_phase(std::span<const TaskSpec> tasks,
                                           std::size_t slots_per_node) const {
  PhaseTimeline timeline;
  timeline.tasks.resize(tasks.size());
  if (tasks.empty()) return timeline;

  // Longest-processing-time-first order for a tighter makespan.
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return task_duration(tasks[a], true) > task_duration(tasks[b], true);
  });

  // slot_free[node][slot] = time the slot becomes available.
  std::vector<std::vector<double>> slot_free(
      config_.nodes, std::vector<double>(slots_per_node, 0.0));

  auto earliest_slot = [&](int node) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < slot_free[node].size(); ++s) {
      if (slot_free[node][s] < slot_free[node][best]) best = s;
    }
    return best;
  };

  for (const std::size_t idx : order) {
    const TaskSpec& task = tasks[idx];
    // Find the globally earliest slot.
    int best_node = 0;
    std::size_t best_slot = earliest_slot(0);
    for (int n = 1; n < static_cast<int>(config_.nodes); ++n) {
      const std::size_t s = earliest_slot(n);
      if (slot_free[n][s] < slot_free[best_node][best_slot]) {
        best_node = n;
        best_slot = s;
      }
    }
    // Prefer the replica holder if it is nearly as available (delay-scheduling
    // heuristic: tolerate up to one task startup of extra wait for locality).
    if (task.preferred_node >= 0 &&
        task.preferred_node < static_cast<int>(config_.nodes)) {
      const std::size_t s = earliest_slot(task.preferred_node);
      if (slot_free[task.preferred_node][s] <=
          slot_free[best_node][best_slot] + config_.task_startup_s) {
        best_node = task.preferred_node;
        best_slot = s;
      }
    }

    const bool local =
        task.preferred_node < 0 || task.preferred_node == best_node;
    const double start = slot_free[best_node][best_slot];
    const double end = start + task_duration(task, local);
    slot_free[best_node][best_slot] = end;

    timeline.tasks[idx] = {best_node, start, end, local};
    if (local) ++timeline.data_local_tasks;
  }

  if (config_.speculative_execution && timeline.tasks.size() >= 3) {
    // Median duration of the phase defines the straggler threshold.
    std::vector<double> durations;
    durations.reserve(timeline.tasks.size());
    for (const auto& task : timeline.tasks) {
      durations.push_back(task.end_s - task.start_s);
    }
    std::nth_element(durations.begin(),
                     durations.begin() + static_cast<long>(durations.size() / 2),
                     durations.end());
    const double median = durations[durations.size() / 2];
    for (auto& task : timeline.tasks) {
      const double duration = task.end_s - task.start_s;
      if (duration > config_.speculation_factor * median) {
        const double rescued_end =
            task.start_s + (config_.speculation_factor + 1.0) * median;
        if (rescued_end < task.end_s) {
          task.end_s = rescued_end;
          ++timeline.speculated_tasks;
        }
      }
    }
  }

  for (const auto& task : timeline.tasks) {
    timeline.makespan_s = std::max(timeline.makespan_s, task.end_s);
  }
  return timeline;
}

JobTimeline simulate_job(const SimScheduler& scheduler,
                         std::span<const TaskSpec> map_tasks,
                         double shuffle_bytes,
                         std::span<const TaskSpec> reduce_tasks) {
  JobTimeline timeline;
  timeline.map_phase =
      scheduler.schedule_phase(map_tasks, scheduler.config().map_slots_per_node);
  timeline.shuffle_s = scheduler.shuffle_time(shuffle_bytes);
  timeline.reduce_phase = scheduler.schedule_phase(
      reduce_tasks, scheduler.config().reduce_slots_per_node);
  timeline.total_s = scheduler.config().job_startup_s +
                     timeline.map_phase.makespan_s + timeline.shuffle_s +
                     timeline.reduce_phase.makespan_s;
  return timeline;
}

std::string JobTimeline::summary() const {
  return "map=" + common::format_duration(map_phase.makespan_s) +
         " shuffle=" + common::format_duration(shuffle_s) +
         " reduce=" + common::format_duration(reduce_phase.makespan_s) +
         " total=" + common::format_duration(total_s);
}

}  // namespace mrmc::mr

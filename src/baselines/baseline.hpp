// Common result type for the comparator algorithms of Tables III-V.
// Each baseline re-implements the published method's core algorithm (see
// DESIGN.md §4 for fidelity notes); all of them consume FASTA records and
// produce flat cluster labels so the bench harnesses can evaluate every
// method identically.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "bio/fasta.hpp"

namespace mrmc::baselines {

struct BaselineResult {
  std::vector<int> labels;
  std::size_t num_clusters = 0;
  double wall_s = 0.0;          ///< real measured runtime of the algorithm
  std::size_t alignments = 0;   ///< full alignments performed (cost driver)
  std::size_t comparisons = 0;  ///< cheap (word/sketch) comparisons
};

}  // namespace mrmc::baselines

// Tests for the job doctor (obs::report): the analyzer's critical-path
// arithmetic and findings heuristics, the golden straggler detection on a
// deterministic seeded Job timeline, and the exactness claim that the
// offline (trace file / mrmc_doctor CLI) report is bit-identical to the
// in-process one.
#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/mini_json.hpp"
#include "mr/cluster.hpp"
#include "mr/job.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace mrmc {
namespace {

using obs::report::analyze;
using obs::report::AnalyzeOptions;
using obs::report::JobInput;
using obs::report::JobReport;
using obs::report::Severity;
using obs::report::TaskSample;

JobInput two_node_input() {
  JobInput input;
  input.name = "unit";
  input.nodes = 2;
  input.map_slots_per_node = 2;
  input.reduce_slots_per_node = 1;
  input.job_startup_s = 8.0;
  input.shuffle_s = 3.5;
  input.shuffle_bytes = 1e6;
  input.map_tasks = {{0, 0, 0, 0.0, 4.0, true},
                     {1, 0, 1, 0.0, 3.0, true},
                     {2, 1, 0, 0.0, 5.0, true},
                     {3, 1, 1, 0.0, 4.5, true}};
  input.reduce_tasks = {{0, 0, 0, 0.0, 2.0, true}, {1, 1, 0, 0.0, 2.5, true}};
  return input;
}

TEST(Analyze, DecomposesTheCriticalPath) {
  const JobReport report = analyze(two_node_input());
  EXPECT_EQ(report.name, "unit");
  EXPECT_EQ(report.nodes, 2u);
  EXPECT_DOUBLE_EQ(report.map_phase.makespan_s, 5.0);
  EXPECT_DOUBLE_EQ(report.reduce_phase.makespan_s, 2.5);
  // Exactly startup + map + shuffle + reduce, left to right.
  EXPECT_EQ(report.total_s, ((8.0 + 5.0) + 3.5) + 2.5);
  EXPECT_DOUBLE_EQ(report.map_phase.busy_s, 16.5);
  EXPECT_EQ(report.map_phase.busy_slots, 4u);
  EXPECT_EQ(report.map_phase.slots, 4u);
  EXPECT_DOUBLE_EQ(report.map_phase.ideal_s, 16.5 / 4.0);
  EXPECT_DOUBLE_EQ(report.map_phase.parallel_efficiency, 16.5 / (5.0 * 4.0));
  ASSERT_EQ(report.map_phase.node_busy_s.size(), 2u);
  EXPECT_DOUBLE_EQ(report.map_phase.node_busy_s[0], 7.0);
  EXPECT_DOUBLE_EQ(report.map_phase.node_busy_s[1], 9.5);
  ASSERT_EQ(report.node_utilization.size(), 2u);
  // Node 0: 7.0 map + 2.0 reduce over (5.0 x 2 + 2.5 x 1) slot-seconds.
  EXPECT_DOUBLE_EQ(report.node_utilization[0].busy_s, 9.0);
  EXPECT_DOUBLE_EQ(report.node_utilization[0].utilization, 9.0 / 12.5);
  // Balanced job: no straggler/skew/idle findings.
  EXPECT_FALSE(report.has_finding("map-straggler"));
  EXPECT_FALSE(report.has_finding("reduce-skew"));
  EXPECT_FALSE(report.has_finding("map-idle-slots"));
}

TEST(Analyze, FlagsStragglerAndSkewAndNamesTheTask) {
  JobInput input = two_node_input();
  input.reduce_tasks = {{0, 0, 0, 0.0, 1.0, true},
                        {1, 1, 0, 0.0, 1.0, true},
                        {2, 0, 0, 1.0, 2.0, true},
                        {3, 1, 0, 1.0, 11.0, true}};
  const JobReport report = analyze(input);
  EXPECT_TRUE(report.has_finding("reduce-straggler"));
  EXPECT_TRUE(report.has_finding("reduce-skew"));
  bool named = false;
  for (const auto& finding : report.findings) {
    if (finding.id == "reduce-straggler") {
      named = finding.message.find("task 3 on node 1") != std::string::npos;
      EXPECT_EQ(finding.severity, Severity::kWarning);
    }
  }
  EXPECT_TRUE(named);
}

TEST(Analyze, FlagsIdleSlotsStartupBoundAndLowLocality) {
  JobInput input = two_node_input();
  input.nodes = 8;  // way more slots than tasks
  input.map_tasks = {{0, 0, 0, 0.0, 4.0, false},
                     {1, 0, 1, 0.0, 3.0, false},
                     {2, 1, 0, 0.0, 5.0, true}};
  input.reduce_tasks = {{0, 0, 0, 0.0, 0.5, true}};
  const JobReport report = analyze(input);
  EXPECT_TRUE(report.has_finding("map-idle-slots"));
  EXPECT_TRUE(report.has_finding("reduce-idle-slots"));
  EXPECT_TRUE(report.has_finding("startup-bound"));  // 8s of a ~17s job
  EXPECT_TRUE(report.has_finding("low-locality"));   // 1 of 3 local
  EXPECT_TRUE(report.has_finding("low-parallel-efficiency"));
  // Findings are ordered most severe first.
  for (std::size_t i = 1; i < report.findings.size(); ++i) {
    EXPECT_GE(static_cast<int>(report.findings[i - 1].severity),
              static_cast<int>(report.findings[i].severity));
  }
}

TEST(Analyze, ShuffleBoundFiresOnShuffleHeavyJobs) {
  JobInput input = two_node_input();
  input.shuffle_s = 50.0;
  input.shuffle_bytes = 4e9;
  const JobReport report = analyze(input);
  EXPECT_TRUE(report.has_finding("shuffle-bound"));
}

TEST(Renderers, TextJsonAndHtmlTellTheSameStory) {
  JobInput input = two_node_input();
  input.name = "render <job> & escape";
  input.map_tasks.push_back({4, 1, 0, 5.0, 25.0, true});  // a straggler
  const JobReport report = analyze(input);
  ASSERT_TRUE(report.has_finding("map-straggler"));

  const std::string text = obs::report::to_text(report);
  EXPECT_NE(text.find("critical path"), std::string::npos);
  EXPECT_NE(text.find("map-straggler"), std::string::npos);
  EXPECT_NE(text.find("node utilization"), std::string::npos);

  const std::string json = obs::report::to_json(report);
  const common::JsonValue root = common::parse_json(json);
  EXPECT_EQ(root.at("name").string, input.name);
  // %.17g doubles survive the parse bit-for-bit.
  EXPECT_EQ(root.at("critical_path").at("total_s").number, report.total_s);
  EXPECT_EQ(root.at("map").at("busy_s").number, report.map_phase.busy_s);
  bool straggler_in_json = false;
  for (const auto& finding : root.at("findings").array) {
    straggler_in_json |= finding.at("id").string == "map-straggler";
  }
  EXPECT_TRUE(straggler_in_json);

  const std::vector<JobReport> reports{report};
  const std::string html = obs::report::to_html(reports);
  EXPECT_NE(html.find("<svg"), std::string::npos);  // critical-path visuals
  EXPECT_NE(html.find("render &lt;job&gt; &amp; escape"), std::string::npos);
  EXPECT_EQ(html.find("<job>"), std::string::npos);  // name was escaped
}

// ---------------------------------------------------------------- golden

using CountJob = mr::Job<std::string, std::string, long,
                         std::pair<std::string, long>>;

/// Deterministic job with seeded injected stragglers: every map task models
/// the same work, except the straggler_rate fraction that runs
/// straggler_slowdown x longer (mr::Job's per-task-index seeded rng).
mr::JobStats golden_straggler_stats(double straggler_rate) {
  mr::JobConfig config;
  config.name = "golden";
  config.records_per_split = 1;  // one map task per line
  config.threads = 2;
  config.cluster.nodes = 4;
  config.seed = 7;
  config.straggler_rate = straggler_rate;
  config.straggler_slowdown = 8.0;

  CountJob job(
      config,
      [](const std::string& line, mr::Emitter<std::string, long>& emit) {
        emit.emit(line.substr(0, 1), 1);
      },
      [](const std::string& key, std::vector<long>& counts,
         std::vector<std::pair<std::string, long>>& out) {
        out.emplace_back(key, static_cast<long>(counts.size()));
      });
  job.with_map_work([](const std::string&) { return 40.0; });

  std::vector<std::string> lines;
  for (int i = 0; i < 16; ++i) lines.push_back("line " + std::to_string(i));
  return job.run(lines).stats;
}

TEST(GoldenStraggler, InjectedSkewYieldsANamedFinding) {
  const mr::JobStats stats = golden_straggler_stats(0.25);
  mr::ClusterConfig cluster;
  cluster.nodes = 4;
  const JobInput input = mr::report_input(stats.timeline, cluster, "golden",
                                          stats.shuffle_bytes);
  ASSERT_EQ(input.map_tasks.size(), 16u);

  // Sanity: the injection really produced a >2x-median map task.
  double median = 0.0, max = 0.0;
  {
    std::vector<double> durations;
    for (const TaskSample& task : input.map_tasks) {
      durations.push_back(task.duration_s());
    }
    std::sort(durations.begin(), durations.end());
    median = durations[durations.size() / 2];
    max = durations.back();
  }
  ASSERT_GT(max, 2.0 * median)
      << "seeded straggler injection produced no straggler";

  const JobReport report = analyze(input);
  EXPECT_TRUE(report.has_finding("map-straggler"));

  // Control: without injection the same job is clean.
  const mr::JobStats clean = golden_straggler_stats(0.0);
  const JobReport clean_report = analyze(
      mr::report_input(clean.timeline, cluster, "clean", clean.shuffle_bytes));
  EXPECT_FALSE(clean_report.has_finding("map-straggler"));
}

// ------------------------------------------------------------- round trip

class DoctorRoundTripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::global().clear();
    obs::Tracer::global().set_enabled(true);
  }
  void TearDown() override {
    obs::Tracer::global().set_enabled(false);
    obs::Tracer::global().clear();
  }
};

/// Two dissimilar jobs with awkward doubles: bandwidth divisions, locality
/// misses, a straggler, and an empty map phase.
std::vector<JobInput> simulate_two_jobs(const std::string& trace_path) {
  mr::ClusterConfig config;
  config.nodes = 3;
  const mr::SimScheduler scheduler(config);

  std::vector<mr::TaskSpec> maps;
  for (int i = 0; i < 11; ++i) {
    maps.push_back({i == 4 ? 700.0 : 30.0 + static_cast<double>(i) / 3.0,
                    1.7e6, 3.1e5, i % 4 == 0 ? -1 : i % 3});
  }
  std::vector<mr::TaskSpec> reduces(5, {20.0, 2.5e6, 1.25e6, -1});
  const mr::JobTimeline first =
      simulate_job(scheduler, maps, 2.3e8, reduces, "roundtrip A");

  std::vector<mr::TaskSpec> lone_reduce{{55.5, 9.9e6, 1e3, -1}};
  const mr::JobTimeline second =
      simulate_job(scheduler, {}, 7.7e7, lone_reduce, "roundtrip B");

  auto& tracer = obs::Tracer::global();
  tracer.set_output_path(trace_path);
  EXPECT_TRUE(tracer.flush());

  return {mr::report_input(first, config, "roundtrip A", 2.3e8),
          mr::report_input(second, config, "roundtrip B", 7.7e7)};
}

TEST_F(DoctorRoundTripTest, OfflineReportIsBitIdenticalToInProcess) {
  const std::string trace_path =
      ::testing::TempDir() + "/mrmc_doctor_roundtrip.json";
  const std::vector<JobInput> inputs = simulate_two_jobs(trace_path);

  const std::vector<JobReport> offline =
      obs::report::analyze_trace_file(trace_path);
  ASSERT_EQ(offline.size(), inputs.size());

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const JobReport in_process = analyze(inputs[i]);
    EXPECT_EQ(in_process.name, offline[i].name);
    // The headline exactness claims: critical path and makespans.
    EXPECT_EQ(in_process.total_s, offline[i].total_s);
    EXPECT_EQ(in_process.startup_s, offline[i].startup_s);
    EXPECT_EQ(in_process.shuffle_s, offline[i].shuffle_s);
    EXPECT_EQ(in_process.map_phase.makespan_s, offline[i].map_phase.makespan_s);
    EXPECT_EQ(in_process.reduce_phase.makespan_s,
              offline[i].reduce_phase.makespan_s);
    // ...and in fact the entire serialized report is byte-identical.
    EXPECT_EQ(obs::report::to_json(in_process),
              obs::report::to_json(offline[i]));
  }
}

TEST_F(DoctorRoundTripTest, SamplerCountersLeaveTheReportByteIdentical) {
  // Counter events ('C') ride along in the trace but are invisible to the
  // report reconstruction: a sampler-on trace must yield the exact bytes a
  // sampler-off trace does.
  const std::string off_path = ::testing::TempDir() + "/sampler_off.json";
  const std::string on_path = ::testing::TempDir() + "/sampler_on.json";
  simulate_two_jobs(off_path);

  auto& sampler = obs::ResourceSampler::global();
  sampler.set_period_ms(1e9);  // enabled, but the thread never gets a tick
  sampler.set_enabled(true);
  obs::Tracer::global().clear();
  sampler.sample_once();  // wall-clock counters on the real track
  simulate_two_jobs(on_path);  // + deterministic sim-grid task counters
  sampler.set_enabled(false);

  // The sampler-on trace really carries counter events...
  std::ifstream in(on_path);
  std::ostringstream trace_text;
  trace_text << in.rdbuf();
  EXPECT_NE(trace_text.str().find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(trace_text.str().find("sim active tasks"), std::string::npos);

  // ...and the reconstructed reports are byte-identical regardless.
  const std::vector<JobReport> off = obs::report::analyze_trace_file(off_path);
  const std::vector<JobReport> on = obs::report::analyze_trace_file(on_path);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(obs::report::to_json(off[i]), obs::report::to_json(on[i]));
  }
}

TEST_F(DoctorRoundTripTest, ByteAccountingSurvivesTheTraceRoundTrip) {
  const std::string trace_path =
      ::testing::TempDir() + "/mrmc_doctor_bytes.json";
  const std::vector<JobInput> inputs = simulate_two_jobs(trace_path);
  ASSERT_FALSE(inputs[0].bytes.empty());

  const std::vector<JobReport> offline =
      obs::report::analyze_trace_file(trace_path);
  ASSERT_EQ(offline.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const JobReport in_process = analyze(inputs[i]);
    EXPECT_EQ(in_process.bytes.map_input_bytes,
              offline[i].bytes.map_input_bytes);
    EXPECT_EQ(in_process.bytes.map_output_bytes,
              offline[i].bytes.map_output_bytes);
    EXPECT_EQ(in_process.bytes.reduce_input_bytes,
              offline[i].bytes.reduce_input_bytes);
    EXPECT_EQ(in_process.bytes.reduce_output_bytes,
              offline[i].bytes.reduce_output_bytes);
    EXPECT_EQ(in_process.bytes.fetch_bytes, offline[i].bytes.fetch_bytes);
    EXPECT_EQ(in_process.bytes.fetch_count, offline[i].bytes.fetch_count);
    EXPECT_EQ(in_process.bytes.max_fetch_fan_in,
              offline[i].bytes.max_fetch_fan_in);
    // The rendered "bytes" sections agree byte for byte.
    const std::string in_json = obs::report::to_json(in_process);
    EXPECT_NE(in_json.find("\"bytes\""), std::string::npos);
    EXPECT_EQ(in_json, obs::report::to_json(offline[i]));
  }
}

#ifdef MRMC_DOCTOR_BIN
TEST_F(DoctorRoundTripTest, CliBinaryReproducesTheInProcessReport) {
  const std::string trace_path =
      ::testing::TempDir() + "/mrmc_doctor_cli_trace.json";
  const std::string out_path =
      ::testing::TempDir() + "/mrmc_doctor_cli_report.json";
  const std::vector<JobInput> inputs = simulate_two_jobs(trace_path);

  const std::string command = std::string(MRMC_DOCTOR_BIN) + " " + trace_path +
                              " --format=json -o " + out_path;
  ASSERT_EQ(std::system(command.c_str()), 0) << command;

  std::ifstream in(out_path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const common::JsonValue root = common::parse_json(buffer.str());
  const auto& jobs = root.at("jobs").array;
  ASSERT_EQ(jobs.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const JobReport in_process = analyze(inputs[i]);
    EXPECT_EQ(jobs[i].at("name").string, in_process.name);
    // strtod on the CLI's %.17g output recovers the scheduler's doubles.
    EXPECT_EQ(jobs[i].at("critical_path").at("total_s").number,
              in_process.total_s);
    EXPECT_EQ(jobs[i].at("critical_path").at("map_s").number,
              in_process.map_phase.makespan_s);
    EXPECT_EQ(jobs[i].at("critical_path").at("reduce_s").number,
              in_process.reduce_phase.makespan_s);
    EXPECT_EQ(jobs[i].at("critical_path").at("shuffle_s").number,
              in_process.shuffle_s);
  }
}
#endif  // MRMC_DOCTOR_BIN

// -------------------------------------------------------------- collector

TEST(Collector, FlushWritesTheFormatTheExtensionAsksFor) {
  auto& collector = obs::report::Collector::global();
  collector.clear();
  collector.set_enabled(true);
  collector.add(two_node_input());

  const std::string html_path = ::testing::TempDir() + "/mrmc_report.html";
  collector.set_output_path(html_path);
  ASSERT_TRUE(collector.flush());
  std::ifstream html_in(html_path);
  std::ostringstream html;
  html << html_in.rdbuf();
  EXPECT_NE(html.str().find("<svg"), std::string::npos);
  EXPECT_NE(html.str().find("unit"), std::string::npos);

  const std::string json_path = ::testing::TempDir() + "/mrmc_report.json";
  collector.set_output_path(json_path);
  ASSERT_TRUE(collector.flush());
  std::ifstream json_in(json_path);
  std::ostringstream json;
  json << json_in.rdbuf();
  const common::JsonValue root = common::parse_json(json.str());
  ASSERT_EQ(root.at("jobs").array.size(), 1u);
  EXPECT_EQ(root.at("jobs").array[0].at("name").string, "unit");

  collector.clear();
  collector.set_enabled(false);
  collector.set_output_path("");
  EXPECT_FALSE(collector.flush());  // nothing to write once cleared
}

}  // namespace
}  // namespace mrmc

#include "pig/udf.hpp"

#include <algorithm>

#include "bio/dna.hpp"
#include "bio/kmer.hpp"
#include "common/error.hpp"
#include "core/greedy.hpp"
#include "core/kernels.hpp"

namespace mrmc::pig {

namespace {

core::Sketch to_sketch(const std::vector<long>& values) {
  core::Sketch sketch;
  sketch.reserve(values.size());
  for (const long v : values) sketch.push_back(static_cast<std::uint64_t>(v));
  return sketch;
}

std::vector<long> from_sketch(const core::Sketch& sketch) {
  std::vector<long> values;
  values.reserve(sketch.size());
  for (const std::uint64_t v : sketch) values.push_back(static_cast<long>(v));
  return values;
}

}  // namespace

// ------------------------------------------------------------ StringGenerator

Bag StringGenerator::exec(const Tuple& input) const {
  const auto& seq = input.get<std::string>(0);
  std::vector<long> codes;
  codes.reserve(seq.size());
  for (const char c : seq) codes.push_back(bio::encode_base(c));
  Tuple out;
  out.fields.emplace_back(std::move(codes));
  out.fields.push_back(input.fields.at(1));  // id passes through
  return {std::move(out)};
}

// ------------------------------------------------------------ TranslateToKmer

TranslateToKmer::TranslateToKmer(int k) : k_(k) {
  MRMC_REQUIRE(k >= 1 && k <= bio::kMaxKmerK, "k must be in [1, 31]");
}

Bag TranslateToKmer::exec(const Tuple& input) const {
  const auto& codes = input.get<std::vector<long>>(0);
  // Rolling 2-bit packing over the integer codes; windows containing an
  // ambiguous code (-1) restart, mirroring bio::extract_kmers.
  const std::uint64_t mask = (std::uint64_t{1} << (2 * k_)) - 1;
  std::uint64_t word = 0;
  int filled = 0;
  std::vector<long> kmers;
  for (const long code : codes) {
    if (code < 0 || code > 3) {
      filled = 0;
      word = 0;
      continue;
    }
    word = ((word << 2) | static_cast<std::uint64_t>(code)) & mask;
    if (++filled >= k_) kmers.push_back(static_cast<long>(word));
  }
  std::sort(kmers.begin(), kmers.end());
  kmers.erase(std::unique(kmers.begin(), kmers.end()), kmers.end());

  Tuple out;
  out.fields.emplace_back(std::move(kmers));
  out.fields.push_back(input.fields.at(1));
  return {std::move(out)};
}

// ------------------------------------------------------- CalculateMinwiseHash

CalculateMinwiseHash::CalculateMinwiseHash(std::size_t num_hashes, int kmer,
                                           std::uint64_t seed,
                                           core::SketchScheme scheme)
    : hasher_(std::make_shared<core::MinHasher>(core::MinHashParams{
          .kmer = kmer,
          .num_hashes = num_hashes,
          .canonical = false,
          .seed = seed,
          .scheme = scheme})) {}

Bag CalculateMinwiseHash::exec(const Tuple& input) const {
  const auto& kmers = input.get<std::vector<long>>(0);
  std::vector<std::uint64_t> features;
  features.reserve(kmers.size());
  for (const long k : kmers) features.push_back(static_cast<std::uint64_t>(k));
  const core::Sketch sketch = hasher_->sketch_features(features);

  Tuple out;
  out.fields.emplace_back(from_sketch(sketch));
  out.fields.push_back(input.fields.at(1));
  return {std::move(out)};
}

// ------------------------------------------- CalculatePairwiseSimilarity

CalculatePairwiseSimilarity::CalculatePairwiseSimilarity(
    core::SketchEstimator estimator, core::candidates::Params candidates,
    double theta)
    : estimator_(estimator), candidates_(candidates), theta_(theta) {}

Bag CalculatePairwiseSimilarity::exec(const Tuple& input) const {
  const auto& group = input.get<Bag>(0);
  std::vector<core::Sketch> sketches;
  sketches.reserve(group.size());
  for (const Tuple& tuple : group) {
    sketches.push_back(to_sketch(tuple.get<std::vector<long>>(0)));
  }

  // Minwise tuples in a group all come from the same CalculateMinwiseHash, so
  // the sketches are uniform in practice: pre-sort each once (set-based) or
  // run the batched equality kernel (component-match).  Ragged groups fall
  // back to the legacy per-pair estimator.
  const bool uniform = std::all_of(
      sketches.begin(), sketches.end(), [&](const core::Sketch& s) {
        return s.size() == sketches.front().size();
      });
  // LSH-banded candidate generation: score only bucket-mate pairs via the
  // shared candidates layer; everything else keeps its 0 cell.  Ragged
  // groups (never produced by CalculateMinwiseHash) cannot be banded and
  // fall through to the exact path below.
  if (candidates_.backend == core::candidates::Backend::kLshBanded && uniform &&
      !sketches.empty() && !sketches.front().empty()) {
    const auto matrix = core::kernels::SketchMatrix::from_sketches(
        std::span<const core::Sketch>(sketches));
    const core::candidates::SparseSimilarityGraph graph =
        core::candidates::build_graph(matrix, candidates_, theta_, estimator_);
    std::vector<std::vector<double>> sims(sketches.size());
    for (std::size_t i = 0; i < sketches.size(); ++i) {
      sims[i].assign(sketches.size() - i - 1, 0.0);
    }
    for (const auto& edge : graph.edges) {
      sims[edge.a][edge.b - edge.a - 1] = edge.similarity;
    }
    Bag rows;
    rows.reserve(group.size());
    for (std::size_t i = 0; i < sketches.size(); ++i) {
      Tuple row;
      row.fields.emplace_back(static_cast<long>(i));
      row.fields.emplace_back(std::move(sims[i]));
      row.fields.push_back(group[i].fields.at(1));  // read id
      rows.push_back(std::move(row));
    }
    return rows;
  }

  const core::SortedSketchStore store =
      uniform && estimator_ == core::SketchEstimator::kSetBased
          ? core::SortedSketchStore(std::span<const core::Sketch>(sketches))
          : core::SortedSketchStore();
  auto pair_sim = [&](std::size_t i, std::size_t j) {
    if (!uniform) return core::sketch_similarity(sketches[i], sketches[j], estimator_);
    if (estimator_ == core::SketchEstimator::kSetBased) return store.jaccard(i, j);
    return core::component_match_similarity(sketches[i], sketches[j]);
  };

  Bag rows;
  rows.reserve(group.size());
  for (std::size_t i = 0; i < sketches.size(); ++i) {
    std::vector<double> sims;
    sims.reserve(sketches.size() - i - 1);
    for (std::size_t j = i + 1; j < sketches.size(); ++j) {
      sims.push_back(pair_sim(i, j));
    }
    Tuple row;
    row.fields.emplace_back(static_cast<long>(i));
    row.fields.emplace_back(std::move(sims));
    row.fields.push_back(group[i].fields.at(1));  // read id
    rows.push_back(std::move(row));
  }
  return rows;
}

// ------------------------------------ AgglomerativeHierarchicalClustering

AgglomerativeHierarchicalClustering::AgglomerativeHierarchicalClustering(
    core::Linkage linkage, double cutoff)
    : linkage_(linkage), cutoff_(cutoff) {
  MRMC_REQUIRE(cutoff >= 0.0 && cutoff <= 1.0, "cutoff in [0, 1]");
}

Bag AgglomerativeHierarchicalClustering::exec(const Tuple& input) const {
  const auto& group = input.get<Bag>(0);  // similarity rows
  const std::size_t n = group.size();
  core::SimilarityMatrix matrix(n, 0.0F);
  std::vector<std::string> ids(n);
  for (const Tuple& tuple : group) {
    const auto row = static_cast<std::size_t>(tuple.get<long>(0));
    MRMC_CHECK(row < n, "similarity row index out of range");
    const auto& sims = tuple.get<std::vector<double>>(1);
    matrix.set(row, row, 1.0F);
    for (std::size_t j = 0; j < sims.size(); ++j) {
      matrix.set(row, row + 1 + j, static_cast<float>(sims[j]));
    }
    ids[row] = tuple.get<std::string>(2);
  }

  const core::Dendrogram dendrogram = core::agglomerate(matrix, linkage_);
  const std::vector<int> labels = core::cut_dendrogram(dendrogram, cutoff_);

  Bag out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Tuple tuple;
    tuple.fields.emplace_back(ids[i]);
    tuple.fields.emplace_back(static_cast<long>(labels[i]));
    out.push_back(std::move(tuple));
  }
  return out;
}

// ------------------------------------------------------------ GreedyClustering

GreedyClustering::GreedyClustering(double cutoff, core::SketchEstimator estimator)
    : cutoff_(cutoff), estimator_(estimator) {
  MRMC_REQUIRE(cutoff >= 0.0 && cutoff <= 1.0, "cutoff in [0, 1]");
}

Bag GreedyClustering::exec(const Tuple& input) const {
  const auto& group = input.get<Bag>(0);  // minwise tuples
  std::vector<core::Sketch> sketches;
  sketches.reserve(group.size());
  for (const Tuple& tuple : group) {
    sketches.push_back(to_sketch(tuple.get<std::vector<long>>(0)));
  }
  const core::GreedyResult result =
      core::greedy_cluster(sketches, {cutoff_, estimator_});

  Bag out;
  out.reserve(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    Tuple tuple;
    tuple.fields.push_back(group[i].fields.at(1));
    tuple.fields.emplace_back(static_cast<long>(result.labels[i]));
    out.push_back(std::move(tuple));
  }
  return out;
}

}  // namespace mrmc::pig

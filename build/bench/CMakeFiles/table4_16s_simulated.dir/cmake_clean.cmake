file(REMOVE_RECURSE
  "CMakeFiles/table4_16s_simulated.dir/table4_16s_simulated.cpp.o"
  "CMakeFiles/table4_16s_simulated.dir/table4_16s_simulated.cpp.o.d"
  "table4_16s_simulated"
  "table4_16s_simulated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_16s_simulated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

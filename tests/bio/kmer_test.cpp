#include "bio/kmer.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "bio/dna.hpp"
#include "common/error.hpp"
#include "common/prng.hpp"

namespace mrmc::bio {
namespace {

TEST(KmerSpaceSize, PowersOfFour) {
  EXPECT_EQ(kmer_space_size(1), 4u);
  EXPECT_EQ(kmer_space_size(5), 1024u);
  EXPECT_EQ(kmer_space_size(15), 1073741824u);
}

TEST(ExtractKmers, SimpleSequence) {
  // "ACGT" with k=2 -> AC(0b0001=1), CG(0b0110=6), GT(0b1011=11)
  const auto kmers = extract_kmers("ACGT", {.k = 2});
  EXPECT_EQ(kmers, (std::vector<std::uint64_t>{1, 6, 11}));
}

TEST(ExtractKmers, CountMatchesLength) {
  const auto kmers = extract_kmers("ACGTACGTAC", {.k = 3});
  EXPECT_EQ(kmers.size(), 8u);
}

TEST(ExtractKmers, ShortSequenceYieldsNothing) {
  EXPECT_TRUE(extract_kmers("AC", {.k = 3}).empty());
  EXPECT_TRUE(extract_kmers("", {.k = 3}).empty());
}

TEST(ExtractKmers, ExactLengthYieldsOne) {
  const auto kmers = extract_kmers("ACG", {.k = 3});
  ASSERT_EQ(kmers.size(), 1u);
  EXPECT_EQ(decode_kmer(kmers[0], 3), "ACG");
}

TEST(ExtractKmers, AmbiguousBaseRestartsWindow) {
  // "ACNGT" with k=2: AC before N; after N only GT.
  const auto kmers = extract_kmers("ACNGT", {.k = 2});
  EXPECT_EQ(kmers.size(), 2u);
  EXPECT_EQ(decode_kmer(kmers[0], 2), "AC");
  EXPECT_EQ(decode_kmer(kmers[1], 2), "GT");
}

TEST(ExtractKmers, AllAmbiguousYieldsNothing) {
  EXPECT_TRUE(extract_kmers("NNNNNN", {.k = 2}).empty());
}

TEST(ExtractKmers, RejectsBadK) {
  EXPECT_THROW(extract_kmers("ACGT", {.k = 0}), common::InvalidArgument);
  EXPECT_THROW(extract_kmers("ACGT", {.k = 32}), common::InvalidArgument);
}

TEST(ExtractKmers, CanonicalPicksLexicographicMin) {
  // "TT" -> revcomp "AA" (0) < "TT" (15).
  const auto kmers = extract_kmers("TT", {.k = 2, .canonical = true});
  ASSERT_EQ(kmers.size(), 1u);
  EXPECT_EQ(decode_kmer(kmers[0], 2), "AA");
}

TEST(ExtractKmers, CanonicalMakesStrandsEquivalent) {
  const std::string seq = "ACGGTTACGATCGATCGAAGT";
  auto fwd = extract_kmers(seq, {.k = 5, .canonical = true});
  auto rev = extract_kmers(reverse_complement(seq), {.k = 5, .canonical = true});
  std::sort(fwd.begin(), fwd.end());
  std::sort(rev.begin(), rev.end());
  EXPECT_EQ(fwd, rev);
}

TEST(KmerSet, SortedAndUnique) {
  const auto set = kmer_set("AAAAAA", {.k = 3});
  EXPECT_EQ(set, (std::vector<std::uint64_t>{0}));  // only AAA
  const auto set2 = kmer_set("ACGTACGT", {.k = 2});
  EXPECT_TRUE(std::is_sorted(set2.begin(), set2.end()));
  EXPECT_EQ(std::adjacent_find(set2.begin(), set2.end()), set2.end());
}

TEST(RevcompKmer, KnownValueAndInvolution) {
  // AC (0b0001) revcomp -> GT (0b1011).
  EXPECT_EQ(revcomp_kmer(1, 2), 11u);
  common::Xoshiro256 rng(4);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t kmer = rng.bounded(kmer_space_size(7));
    EXPECT_EQ(revcomp_kmer(revcomp_kmer(kmer, 7), 7), kmer);
  }
}

TEST(DecodeKmer, MatchesEncode) {
  const std::string word = "ACGTTGCA";
  const auto kmers = extract_kmers(word, {.k = 8});
  ASSERT_EQ(kmers.size(), 1u);
  EXPECT_EQ(decode_kmer(kmers[0], 8), word);
}

// ------------------------------------------------------------ exact_jaccard

TEST(ExactJaccard, IdenticalSetsAreOne) {
  const std::vector<std::uint64_t> a{1, 2, 3};
  EXPECT_DOUBLE_EQ(exact_jaccard(a, a), 1.0);
}

TEST(ExactJaccard, DisjointSetsAreZero) {
  const std::vector<std::uint64_t> a{1, 2};
  const std::vector<std::uint64_t> b{3, 4};
  EXPECT_DOUBLE_EQ(exact_jaccard(a, b), 0.0);
}

TEST(ExactJaccard, PartialOverlap) {
  // {1,2,3} vs {2,3,4}: |∩|=2, |∪|=4.
  const std::vector<std::uint64_t> a{1, 2, 3};
  const std::vector<std::uint64_t> b{2, 3, 4};
  EXPECT_DOUBLE_EQ(exact_jaccard(a, b), 0.5);
}

TEST(ExactJaccard, EmptySets) {
  const std::vector<std::uint64_t> one{1};
  const std::vector<std::uint64_t> empty;
  EXPECT_DOUBLE_EQ(exact_jaccard(empty, empty), 1.0);
  EXPECT_DOUBLE_EQ(exact_jaccard(one, empty), 0.0);
}

TEST(ExactJaccard, IsSymmetric) {
  const std::vector<std::uint64_t> a{1, 5, 9, 12};
  const std::vector<std::uint64_t> b{5, 9, 30};
  EXPECT_DOUBLE_EQ(exact_jaccard(a, b), exact_jaccard(b, a));
}

// -------------------------------------------------- parameterized properties

class KmerRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(KmerRoundTrip, DecodeEncodeIdentityForRandomWords) {
  const int k = GetParam();
  common::Xoshiro256 rng(1000 + k);
  for (int trial = 0; trial < 20; ++trial) {
    std::string word;
    for (int i = 0; i < k; ++i) {
      word.push_back(decode_base(static_cast<int>(rng.bounded(4))));
    }
    const auto kmers = extract_kmers(word, {.k = k});
    ASSERT_EQ(kmers.size(), 1u);
    EXPECT_EQ(decode_kmer(kmers[0], k), word);
    EXPECT_LT(kmers[0], kmer_space_size(k));
  }
}

INSTANTIATE_TEST_SUITE_P(AllK, KmerRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 15, 21, 31));

}  // namespace
}  // namespace mrmc::bio

#include "core/candidate_jobs.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "core/kernels.hpp"
#include "mr/block.hpp"
#include "obs/metrics.hpp"
#include "obs/pipeline.hpp"

namespace mrmc::core {

namespace {

mr::JobConfig job_config(const char* name, const ExecutionOptions& exec,
                         std::size_t records_per_split) {
  mr::JobConfig config;
  config.name = name;
  config.num_reducers = std::max<std::size_t>(1, exec.cluster.reduce_slots());
  config.records_per_split = records_per_split;
  detail::apply_exec_options(config, exec);
  return config;
}

}  // namespace

CandidateJobResult run_candidate_job(
    std::shared_ptr<const std::vector<Sketch>> sketches,
    const candidates::Params& params, double theta,
    const ExecutionOptions& exec) {
  CandidateJobResult result;
  const std::size_t n = sketches->size();
  if (n < 2) return result;

  if (params.backend == candidates::Backend::kExactAllPairs) {
    result.pairs.reserve(n * (n - 1) / 2);
    for (std::uint32_t i = 0; i + 1 < n; ++i) {
      for (std::uint32_t j = i + 1; j < n; ++j) result.pairs.emplace_back(i, j);
    }
    return result;
  }

  obs::pipeline::StageScope stage("candidates");
  const std::size_t sketch_size = sketches->front().size();
  const candidates::BandShape shape =
      candidates::resolve_band_shape(params, sketch_size, theta);
  result.shape = shape;
  const std::uint64_t seed = params.seed;

  using BandJob = mr::Job<std::uint32_t, std::uint64_t, std::uint32_t,
                          candidates::Pair>;
  auto config = job_config("candidates", exec, exec.records_per_split);

  auto& bucket_hist =
      obs::Registry::global().histogram("pipeline.candidate_bucket_size");
  BandJob job(
      config,
      [sketches, shape, seed](const std::uint32_t& id,
                              mr::Emitter<std::uint64_t, std::uint32_t>& emit) {
        const Sketch& sketch = (*sketches)[id];
        MRMC_CHECK(sketch.size() == shape.bands * shape.rows,
                   "sketch length mismatch");
        for (std::size_t band = 0; band < shape.bands; ++band) {
          emit.emit(candidates::band_bucket_key(sketch, band, shape, seed), id);
        }
        emit.count("candidates.band_entries",
                   static_cast<long>(shape.bands));
      },
      [&bucket_hist](const std::uint64_t&, std::vector<std::uint32_t>& ids,
                     std::vector<candidates::Pair>& out,
                     mr::ReduceContext& context) {
        bucket_hist.observe(static_cast<double>(ids.size()));
        if (ids.size() < 2) return;
        std::sort(ids.begin(), ids.end());
        ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
        for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
          for (std::size_t j = i + 1; j < ids.size(); ++j) {
            out.emplace_back(ids[i], ids[j]);
          }
        }
        context.count("candidates.bucket_pairs",
                      static_cast<long>(ids.size() * (ids.size() - 1) / 2));
      });
  job.with_map_work([sketch_size](const std::uint32_t&) {
    return cost::compare_work(sketch_size);  // one mix per component
  });
  job.with_reduce_work([](const std::uint64_t&, std::size_t count) {
    const auto m = static_cast<double>(count);
    return m * 20e-9 + m * (m - 1.0) * 1e-9;  // sort + pair emission
  });

  std::vector<std::uint32_t> input(n);
  for (std::size_t i = 0; i < n; ++i) input[i] = static_cast<std::uint32_t>(i);
  auto run = job.run(input);
  result.stats = std::move(run.stats);

  // Cross-bucket dedup happens driver-side: the same pair may surface from
  // several bands (and reducers), so sort + unique fixes one canonical,
  // order-independent candidate set.
  result.pairs = std::move(run.output);
  std::sort(result.pairs.begin(), result.pairs.end());
  result.pairs.erase(std::unique(result.pairs.begin(), result.pairs.end()),
                     result.pairs.end());
  return result;
}

VerifyJobResult run_verify_job(
    std::shared_ptr<const std::vector<Sketch>> sketches,
    std::vector<candidates::Pair> pairs, SketchEstimator estimator,
    std::size_t sketch_bits, const ExecutionOptions& exec) {
  VerifyJobResult result;
  result.graph.num_vertices = sketches->size();
  if (pairs.empty()) return result;

  obs::pipeline::StageScope stage("verify");
  const std::size_t num_hashes = sketches->front().size();

  // Shared read-only scoring structures, built once and visible to every
  // map task (the sketch table plays Pig's GROUP-ALL broadcast relation).
  // Below 64 bits the rows are b-bit packed and scored with the packed
  // count_equal kernel (the sketch job already truncated every value).
  const bool set_based = estimator == SketchEstimator::kSetBased;
  auto store = set_based ? std::make_shared<const SortedSketchStore>(*sketches)
                         : nullptr;
  std::shared_ptr<const kernels::SketchMatrix> matrix;
  std::shared_ptr<const kernels::PackedSketchMatrix> packed;
  if (!set_based) {
    kernels::SketchMatrix full = kernels::SketchMatrix::from_sketches(*sketches);
    if (sketch_bits < 64) {
      packed = std::make_shared<const kernels::PackedSketchMatrix>(
          kernels::PackedSketchMatrix::pack(full, sketch_bits));
    } else {
      matrix = std::make_shared<const kernels::SketchMatrix>(std::move(full));
    }
  }
  const double inv_cols =
      num_hashes == 0 ? 0.0 : 1.0 / static_cast<double>(num_hashes);

  // Instead of one ((a, b), double) record per pair, each map task ships one
  // BinaryBlock of integer counts per split — match counts (≤ K) in one
  // column, or |∩|,|∪| (≤ 2K) in two — and the driver rebuilds the same
  // doubles positionally: `pairs` is sorted unique and splits partition it
  // in order, so split s covers pairs [s · per_split, ...) verbatim and the
  // final edge list needs no re-sort.
  const std::uint32_t lane_bits =
      mr::min_lane_bits(set_based ? 2 * num_hashes : num_hashes);
  using VerifyJob = mr::Job<candidates::Pair, std::uint32_t, mr::BinaryBlock,
                            std::pair<std::uint32_t, mr::BinaryBlock>>;
  const std::size_t per_split = std::max<std::size_t>(
      exec.records_per_split,
      pairs.size() / std::max<std::size_t>(1, exec.cluster.map_slots() * 4));
  auto config = job_config("verify", exec, per_split);

  VerifyJob job(
      config,
      [store, matrix, packed, set_based, lane_bits](
          std::span<const candidates::Pair> split, std::size_t split_index,
          mr::Emitter<std::uint32_t, mr::BinaryBlock>& emit) {
        mr::BinaryBlock block(lane_bits, split.size(), set_based ? 2 : 1);
        for (std::size_t r = 0; r < split.size(); ++r) {
          const auto [a, b] = split[r];
          if (set_based) {
            const auto [inter, uni] = store->jaccard_counts(a, b);
            block.set(0, r, inter);
            block.set(1, r, uni);
          } else if (packed != nullptr) {
            block.set(0, r, packed->count_equal_rows(a, b));
          } else if (matrix->cols() != 0) {
            block.set(0, r,
                      kernels::count_equal(matrix->row(a), matrix->row(b)));
          }
          emit.count("verify.pairs_scored");
        }
        emit.emit(static_cast<std::uint32_t>(split_index), std::move(block));
      },
      [](const std::uint32_t& key, std::vector<mr::BinaryBlock>& values,
         std::vector<std::pair<std::uint32_t, mr::BinaryBlock>>& out) {
        MRMC_CHECK(values.size() == 1, "one count block per pair split");
        out.emplace_back(key, std::move(values.front()));
      });
  job.with_map_work([num_hashes](const candidates::Pair&) {
    return cost::compare_work(num_hashes);
  });

  auto run = job.run(pairs);
  result.stats = std::move(run.stats);

  // Positional rejoin against the sorted-unique input pairs: edges come out
  // in canonical (a, b) order by construction.
  result.graph.edges.resize(pairs.size());
  for (const auto& [split_index, block] : run.output) {
    const std::size_t base = static_cast<std::size_t>(split_index) * per_split;
    for (std::uint64_t r = 0; r < block.rows(); ++r) {
      const auto [a, b] = pairs[base + r];
      double sim = 0.0;
      if (set_based) {
        sim = jaccard_from_counts(block.get(0, r), block.get(1, r));
      } else {
        sim = static_cast<double>(block.get(0, r)) * inv_cols;
      }
      result.graph.edges[base + r] = candidates::Edge{a, b, sim};
    }
  }
  return result;
}

}  // namespace mrmc::core

// Unit tests for mr::recovery building blocks: payload encoding, the
// deterministic backoff schedule, retry-policy validation, the checkpoint
// store's validation surface, and the StageDriver's retry / checkpoint /
// park behavior in isolation (the end-to-end kill/resume matrix lives in
// driver_chaos_test.cpp).
#include "mr/recovery.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace mrmc::mr::recovery {
namespace {

std::string unique_dir(const std::string& tag) {
  static int serial = 0;
  const std::string dir =
      ::testing::TempDir() + "/mrmc_recovery_" + tag + std::to_string(serial++);
  std::filesystem::remove_all(dir);
  return dir;
}

// ------------------------------------------------------- payload encoding

TEST(Payload, RoundTripsEveryFieldType) {
  PayloadWriter writer;
  writer.u32(0xdeadbeefU);
  writer.u64(0x0123456789abcdefULL);
  writer.i64(-42);
  writer.f64(-1.5e300);
  writer.f32(2.75F);
  writer.str("hello\0world");  // embedded NUL is cut by the literal, fine
  writer.str("");

  PayloadReader reader(writer.bytes());
  EXPECT_EQ(reader.u32(), 0xdeadbeefU);
  EXPECT_EQ(reader.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(reader.i64(), -42);
  EXPECT_EQ(reader.f64(), -1.5e300);
  EXPECT_EQ(reader.f32(), 2.75F);
  EXPECT_EQ(reader.str(), "hello");
  EXPECT_EQ(reader.str(), "");
  EXPECT_TRUE(reader.done());
}

TEST(Payload, OverrunThrowsInsteadOfReadingGarbage) {
  PayloadWriter writer;
  writer.u32(7);
  PayloadReader reader(writer.bytes());
  EXPECT_THROW((void)reader.u64(), common::Error);

  // A string whose recorded length exceeds the remaining bytes is the
  // classic torn-file shape; it must throw, not allocate wildly.
  PayloadWriter torn;
  torn.u64(1ULL << 40);
  PayloadReader torn_reader(torn.bytes());
  EXPECT_THROW((void)torn_reader.str(), common::Error);
}

TEST(Payload, DoneDetectsTrailingBytes) {
  PayloadWriter writer;
  writer.u32(1);
  writer.u32(2);
  PayloadReader reader(writer.bytes());
  (void)reader.u32();
  EXPECT_FALSE(reader.done());
  (void)reader.u32();
  EXPECT_TRUE(reader.done());
}

// ----------------------------------------------------------- retry policy

TEST(RetryPolicy, ValidateRejectsOutOfRangeKnobs) {
  RetryPolicy ok;
  EXPECT_NO_THROW(validate(ok));

  RetryPolicy bad = ok;
  bad.max_job_attempts = 0;
  EXPECT_THROW(validate(bad), common::InvalidArgument);

  bad = ok;
  bad.job_timeout_s = -1.0;
  EXPECT_THROW(validate(bad), common::InvalidArgument);

  bad = ok;
  bad.backoff_base_s = 0.0;
  EXPECT_THROW(validate(bad), common::InvalidArgument);

  bad = ok;
  bad.backoff_cap_s = bad.backoff_base_s / 2.0;
  EXPECT_THROW(validate(bad), common::InvalidArgument);
}

TEST(RetryPolicy, BackoffIsDeterministicExponentialAndCapped) {
  RetryPolicy policy;
  policy.backoff_base_s = 0.5;
  policy.backoff_cap_s = 4.0;
  policy.seed = 17;

  for (int attempt = 1; attempt <= 12; ++attempt) {
    const double delay = backoff_delay_s(policy, attempt);
    // Jitter maps the raw delay onto [0.5 * raw, raw).
    const double raw =
        std::min(policy.backoff_cap_s,
                 policy.backoff_base_s * std::pow(2.0, attempt - 1));
    EXPECT_GE(delay, 0.5 * raw) << attempt;
    EXPECT_LT(delay, raw + 1e-12) << attempt;
    // Same policy, same attempt -> bit-identical delay.
    EXPECT_EQ(delay, backoff_delay_s(policy, attempt)) << attempt;
  }
  // A different seed reshuffles the jitter.
  RetryPolicy other = policy;
  other.seed = 18;
  EXPECT_NE(backoff_delay_s(policy, 1), backoff_delay_s(other, 1));
  EXPECT_THROW((void)backoff_delay_s(policy, 0), common::InvalidArgument);
}

// ------------------------------------------------------- checkpoint store

TEST(CheckpointStore, StoresAndReloadsAPayload) {
  CheckpointStore store(unique_dir("store"));
  const std::string name = checkpoint_file_name("unit", "sketch", 0, 0xabcd);
  ASSERT_TRUE(store.store(name, 0xabcd, "payload-bytes"));
  const auto loaded = store.load(name, 0xabcd);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "payload-bytes");
  EXPECT_EQ(store.invalid_checkpoints(), 0u);
  // No temp residue from the atomic write.
  for (const auto& entry :
       std::filesystem::directory_iterator(store.dir())) {
    EXPECT_EQ(entry.path().extension(), ".ckpt") << entry.path();
  }
}

TEST(CheckpointStore, MissingFileIsAPlainMiss) {
  CheckpointStore store(unique_dir("missing"));
  EXPECT_FALSE(store.load("never-written.ckpt", 1).has_value());
  EXPECT_EQ(store.invalid_checkpoints(), 0u);  // absent != invalid
}

TEST(CheckpointStore, WrongKeyTruncationAndCorruptionAreInvalid) {
  CheckpointStore store(unique_dir("invalid"));
  const std::string name = checkpoint_file_name("unit", "stage", 1, 99);
  ASSERT_TRUE(store.store(name, 99, "the quick brown fox"));
  const std::string path = store.dir() + "/" + name;

  // Key mismatch (a stale file from a different param/input chain).
  EXPECT_FALSE(store.load(name, 100).has_value());
  EXPECT_EQ(store.invalid_checkpoints(), 1u);

  // Truncation (torn write survived a crash without the atomic rename).
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 5);
  EXPECT_FALSE(store.load(name, 99).has_value());
  EXPECT_EQ(store.invalid_checkpoints(), 2u);

  // Payload corruption: right size, wrong checksum.
  ASSERT_TRUE(store.store(name, 99, "the quick brown fox"));
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(static_cast<std::streamoff>(full_size) - 1);
    file.put('X');
  }
  EXPECT_FALSE(store.load(name, 99).has_value());
  EXPECT_EQ(store.invalid_checkpoints(), 3u);

  // Garbage that never was a checkpoint (bad magic).
  {
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    file << "this is not a checkpoint file";
  }
  EXPECT_FALSE(store.load(name, 99).has_value());
  EXPECT_EQ(store.invalid_checkpoints(), 4u);
}

TEST(CheckpointStore, FileNamesSanitizeSlashes) {
  const std::string name =
      checkpoint_file_name("pipeline/hier", "a/b", 3, 0xf0);
  EXPECT_EQ(name.find('/'), std::string::npos);
  EXPECT_NE(name.find("3-a_b"), std::string::npos);
  EXPECT_NE(name.find(key_hex(0xf0)), std::string::npos);
}

TEST(CheckpointStore, KeyHexIsFixedWidthLowercase) {
  EXPECT_EQ(key_hex(0), "0000000000000000");
  EXPECT_EQ(key_hex(0xabcdef0123456789ULL), "abcdef0123456789");
}

// ---------------------------------------------------------- stage driver

void encode_string(PayloadWriter& writer, const std::string& value) {
  writer.str(value);
}

std::string decode_string(PayloadReader& reader) { return reader.str(); }

TEST(StageDriver, RunsUncheckpointedWhenNoDirConfigured) {
  StageDriver driver{StageDriver::Options{}};
  EXPECT_FALSE(driver.checkpointing());
  int calls = 0;
  const std::string value = driver.run_stage(
      "stage",
      [&] {
        ++calls;
        return std::string("computed");
      },
      encode_string, decode_string);
  EXPECT_EQ(value, "computed");
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(driver.stats().stages, 1u);
  EXPECT_EQ(driver.stats().checkpoint_hits, 0u);
  EXPECT_EQ(driver.stats().checkpoint_misses, 0u);
  EXPECT_EQ(driver.stats().checkpoint_writes, 0u);
}

TEST(StageDriver, SecondDriverServesTheStageFromCheckpoint) {
  const std::string dir = unique_dir("hit");
  StageDriver::Options options;
  options.checkpoint_dir = dir;
  options.params_fingerprint = 11;
  options.input_fingerprint = 22;

  StageDriver first(options);
  int calls = 0;
  const auto compute = [&] {
    ++calls;
    return std::string("value-0");
  };
  EXPECT_EQ(first.run_stage("s", compute, encode_string, decode_string),
            "value-0");
  EXPECT_EQ(first.stats().checkpoint_misses, 1u);
  EXPECT_EQ(first.stats().checkpoint_writes, 1u);

  StageDriver second(options);
  EXPECT_EQ(second.run_stage("s", compute, encode_string, decode_string),
            "value-0");
  EXPECT_EQ(calls, 1);  // served from disk, compute never re-ran
  EXPECT_EQ(second.stats().checkpoint_hits, 1u);
  EXPECT_EQ(second.stats().checkpoint_misses, 0u);

  // A different fingerprint chain must not see the stale file as valid.
  StageDriver::Options changed = options;
  changed.params_fingerprint = 12;
  StageDriver third(changed);
  EXPECT_EQ(third.run_stage("s", compute, encode_string, decode_string),
            "value-0");
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(third.stats().checkpoint_hits, 0u);
  EXPECT_EQ(third.stats().checkpoint_misses, 1u);
}

TEST(StageDriver, DownstreamKeysDependOnUpstreamPayloads) {
  // Two runs whose first stage produces different bytes must not share the
  // second stage's checkpoint, even with identical fingerprints: the chain
  // absorbs every upstream payload checksum.
  const std::string dir = unique_dir("chain");
  StageDriver::Options options;
  options.checkpoint_dir = dir;

  int second_calls = 0;
  const auto second_stage = [&] {
    ++second_calls;
    return std::string("downstream");
  };

  StageDriver a(options);
  (void)a.run_stage("first", [] { return std::string("A"); }, encode_string,
                    decode_string);
  (void)a.run_stage("second", second_stage, encode_string, decode_string);
  EXPECT_EQ(second_calls, 1);

  // Same stages, different first payload: "second" recomputes.
  std::filesystem::remove_all(dir);
  StageDriver b(options);
  (void)b.run_stage("first", [] { return std::string("B"); }, encode_string,
                    decode_string);
  (void)b.run_stage("second", second_stage, encode_string, decode_string);
  EXPECT_EQ(second_calls, 2);
  EXPECT_EQ(b.stats().checkpoint_hits, 0u);
}

TEST(StageDriver, UndecodablePayloadFallsBackToRecompute) {
  // A checksum-valid checkpoint whose payload does not match the decoder
  // (e.g. written by a different schema) is treated as invalid, not fatal.
  const std::string dir = unique_dir("undecodable");
  StageDriver::Options options;
  options.checkpoint_dir = dir;

  StageDriver writer(options);
  (void)writer.run_stage("s", [] { return std::string("text"); },
                         encode_string, decode_string);

  StageDriver reader(options);
  const auto decoded = reader.run_stage(
      "s", [] { return 7L; },
      [](PayloadWriter& w, const long& v) { w.i64(v); },
      [](PayloadReader& r) { return static_cast<long>(r.i64()); });
  EXPECT_EQ(decoded, 7L);
  EXPECT_EQ(reader.stats().checkpoint_hits, 0u);
  EXPECT_EQ(reader.stats().invalid_checkpoints, 1u);
}

TEST(StageDriver, RetriesWithRecordedBackoffThenSucceeds) {
  std::vector<double> slept;
  StageDriver::Options options;
  options.retry.max_job_attempts = 3;
  options.retry.backoff_base_s = 0.25;
  options.retry.backoff_cap_s = 8.0;
  options.retry.seed = 5;
  options.retry.sleeper = [&](double s) { slept.push_back(s); };
  options.fail_stage = "flaky";
  options.fail_count = 2;

  StageDriver driver(options);
  int calls = 0;
  const std::string value = driver.run_stage(
      "flaky",
      [&] {
        ++calls;
        return std::string("ok");
      },
      encode_string, decode_string);
  EXPECT_EQ(value, "ok");
  EXPECT_EQ(calls, 1);  // injected failures fire before compute
  EXPECT_EQ(driver.stats().retries, 2u);
  ASSERT_EQ(slept.size(), 2u);
  EXPECT_EQ(slept[0], backoff_delay_s(options.retry, 1));
  EXPECT_EQ(slept[1], backoff_delay_s(options.retry, 2));
}

TEST(StageDriver, ExhaustionThrowsWithFullAttemptHistory) {
  StageDriver::Options options;
  options.retry.max_job_attempts = 3;
  options.retry.backoff_base_s = 1e-4;
  options.retry.backoff_cap_s = 1e-3;
  options.retry.sleeper = [](double) {};

  StageDriver driver(options);
  try {
    (void)driver.run_stage(
        "doomed",
        [&]() -> std::string { throw common::Error("boom"); }, encode_string,
        decode_string);
    FAIL() << "expected RetryExhausted";
  } catch (const RetryExhausted& error) {
    EXPECT_EQ(error.stage(), "doomed");
    ASSERT_EQ(error.history().size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(error.history()[i].attempt, static_cast<int>(i) + 1);
      EXPECT_EQ(error.history()[i].outcome, "failed");
      EXPECT_EQ(error.history()[i].error, "boom");
    }
    // Backoff recorded for retried attempts, zero after the last one.
    EXPECT_GT(error.history()[0].backoff_s, 0.0);
    EXPECT_GT(error.history()[1].backoff_s, 0.0);
    EXPECT_EQ(error.history()[2].backoff_s, 0.0);
    EXPECT_NE(std::string(error.what()).find("doomed"), std::string::npos);
  }
  EXPECT_EQ(driver.stats().retries, 2u);  // the last attempt is not a retry
}

TEST(StageDriver, OverdueAttemptCountsAsTimeout) {
  StageDriver::Options options;
  options.retry.max_job_attempts = 2;
  options.retry.job_timeout_s = 1e-9;  // everything real blows this deadline
  options.retry.backoff_base_s = 1e-4;
  options.retry.backoff_cap_s = 1e-3;
  options.retry.sleeper = [](double) {};

  StageDriver driver(options);
  try {
    (void)driver.run_stage(
        "slow",
        [] {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          return std::string("too late");
        },
        encode_string, decode_string);
    FAIL() << "expected RetryExhausted";
  } catch (const RetryExhausted& error) {
    ASSERT_EQ(error.history().size(), 2u);
    EXPECT_EQ(error.history()[0].outcome, "timeout");
    EXPECT_EQ(error.history()[1].outcome, "timeout");
    EXPECT_NE(error.history()[0].error.find("job_timeout_s"),
              std::string::npos);
  }
}

TEST(StageDriver, ParkThrowsAndMarksTheStats) {
  StageDriver driver{StageDriver::Options{}};
  EXPECT_THROW(driver.park("no schedulable node"), DriverParked);
  EXPECT_TRUE(driver.stats().parked);
}

TEST(StageDriver, CrashHookFiresAfterTheCheckpointCommits) {
  const std::string dir = unique_dir("crash");
  StageDriver::Options options;
  options.checkpoint_dir = dir;
  options.crash_after = "s";

  StageDriver driver(options);
  EXPECT_THROW((void)driver.run_stage("s", [] { return std::string("v"); },
                                      encode_string, decode_string),
               InjectedDriverCrash);
  // The checkpoint survived the "crash": a resumed driver hits.
  StageDriver::Options resume;
  resume.checkpoint_dir = dir;
  StageDriver resumed(resume);
  EXPECT_EQ(resumed.run_stage("s", [] { return std::string("other"); },
                              encode_string, decode_string),
            "v");
  EXPECT_EQ(resumed.stats().checkpoint_hits, 1u);
}

TEST(StageDriver, RejectsInvalidRetryPolicyAtConstruction) {
  StageDriver::Options options;
  options.retry.max_job_attempts = 0;
  EXPECT_THROW(StageDriver{options}, common::InvalidArgument);
}

}  // namespace
}  // namespace mrmc::mr::recovery

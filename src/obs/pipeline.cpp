#include "obs/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/fsio.hpp"
#include "common/timer.hpp"

namespace mrmc::obs::pipeline {

// ------------------------------------------------------- lineage context

namespace {

// The innermost live scope of this thread, plus the claim the most recent
// claim() call produced (so the job runner can read the lineage its
// simulate_job call just stamped without re-threading it).
thread_local PipelineScope* tl_scope = nullptr;
thread_local std::optional<Claim> tl_last_claim;

// Process-wide serial so two pipelines in one process never share an id.
std::atomic<std::uint64_t>& pipeline_serial() {
  static std::atomic<std::uint64_t> serial{0};
  return serial;
}

}  // namespace

PipelineScope::PipelineScope(std::string_view name)
    : id_(std::string(name) + "#" +
          std::to_string(pipeline_serial().fetch_add(1) + 1)),
      prev_(tl_scope) {
  tl_scope = this;
}

PipelineScope::~PipelineScope() { tl_scope = prev_; }

StageScope::StageScope(std::string stage, int round) : scope_(tl_scope) {
  if (scope_ == nullptr) return;
  saved_stage_ = std::move(scope_->stage_);
  saved_round_ = scope_->round_;
  scope_->stage_ = std::move(stage);
  scope_->round_ = round;
}

StageScope::~StageScope() {
  if (scope_ == nullptr) return;
  scope_->stage_ = std::move(saved_stage_);
  scope_->round_ = saved_round_;
}

bool active() noexcept { return tl_scope != nullptr; }

std::string current_id() {
  return tl_scope == nullptr ? std::string() : tl_scope->id();
}

std::optional<Claim> claim() {
  if (tl_scope == nullptr) {
    tl_last_claim.reset();
    return std::nullopt;
  }
  Claim claimed;
  claimed.pipeline = tl_scope->id_;
  claimed.stage = tl_scope->stage_;
  claimed.round = tl_scope->round_;
  claimed.sequence = tl_scope->next_sequence_++;
  tl_last_claim = claimed;
  return claimed;
}

const std::optional<Claim>& last_claim() noexcept { return tl_last_claim; }

FlowLink take_flow_link() noexcept {
  if (tl_scope == nullptr || !tl_scope->link_valid_) return {};
  FlowLink link;
  link.pid = tl_scope->link_pid_;
  link.end_ts_us = tl_scope->link_end_ts_us_;
  link.valid = true;
  tl_scope->link_valid_ = false;
  return link;
}

void set_flow_link(std::uint32_t pid, double end_ts_us) noexcept {
  if (tl_scope == nullptr) return;
  tl_scope->link_pid_ = pid;
  tl_scope->link_end_ts_us_ = end_ts_us;
  tl_scope->link_valid_ = true;
}

std::uint64_t flow_event_id(const Claim& claim) noexcept {
  std::uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis
  for (const char c : claim.pipeline) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash ^ static_cast<std::uint64_t>(claim.sequence);
}

// ------------------------------------------------------- pipeline doctor

namespace {

/// %.17g — round-trips through strtod exactly (same contract as the trace).
std::string f17(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string f2(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.2f", value);
  return buf;
}

std::string pct(double fraction) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.1f%%", fraction * 100.0);
  return buf;
}

void append_json_string(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string html_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

constexpr const char* kReset = "\x1b[0m";

const char* severity_color(report::Severity severity) {
  switch (severity) {
    case report::Severity::kInfo: return "\x1b[36m";      // cyan
    case report::Severity::kWarning: return "\x1b[33m";   // yellow
    case report::Severity::kCritical: return "\x1b[31m";  // red
  }
  return "";
}

/// Group collected stage records into pipelines: first-appearance order of
/// pipeline ids, stages sorted by claim sequence.  Shared by the in-process
/// Collector and the trace-reconstruction path so both produce identical
/// PipelineInput orderings.
std::vector<PipelineInput> group_stages(std::vector<StageRecord> records) {
  std::vector<PipelineInput> out;
  for (StageRecord& record : records) {
    if (record.job.pipeline.empty()) continue;  // standalone job
    auto it = std::find_if(out.begin(), out.end(), [&](const PipelineInput& p) {
      return p.id == record.job.pipeline;
    });
    if (it == out.end()) {
      out.emplace_back();
      it = out.end() - 1;
      it->id = record.job.pipeline;
    }
    it->stages.push_back(std::move(record));
  }
  for (PipelineInput& input : out) {
    std::stable_sort(input.stages.begin(), input.stages.end(),
                     [](const StageRecord& a, const StageRecord& b) {
                       return a.job.sequence < b.job.sequence;
                     });
  }
  return out;
}

/// Join recovery-driver checkpoint records onto their pipelines, shared by
/// the in-process Collector and the trace-reconstruction path (the
/// byte-identity contract).  A fully-resumed pipeline runs no jobs, so its
/// id may carry recovery records only — such pipelines are appended after
/// the stage-carrying ones, in record order.
void attach_recovery(std::vector<PipelineInput>& pipelines,
                     std::vector<RecoveryRecord> records) {
  for (RecoveryRecord& record : records) {
    if (record.pipeline.empty()) continue;
    auto it = std::find_if(
        pipelines.begin(), pipelines.end(),
        [&](const PipelineInput& p) { return p.id == record.pipeline; });
    if (it == pipelines.end()) {
      pipelines.emplace_back();
      it = pipelines.end() - 1;
      it->id = record.pipeline;
    }
    it->recovery.push_back(std::move(record));
  }
}

}  // namespace

PipelineReport analyze(const PipelineInput& input,
                       const PipelineAnalyzeOptions& options) {
  PipelineReport out;
  out.id = input.id;
  out.stages.reserve(input.stages.size());

  // Per-stage job reports plus the aggregate critical path, every sum
  // accumulated left to right in stage-sequence order (the byte-identity
  // contract between the in-process and trace-reconstructed paths).  Sort
  // here rather than trusting the caller: hand-built inputs may arrive in
  // arrival order.
  std::vector<const StageRecord*> ordered;
  ordered.reserve(input.stages.size());
  for (const StageRecord& record : input.stages) ordered.push_back(&record);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const StageRecord* a, const StageRecord* b) {
                     return a->job.sequence < b->job.sequence;
                   });

  bool all_wall = options.include_wall && !input.stages.empty();
  for (const StageRecord* record_ptr : ordered) {
    const StageRecord& record = *record_ptr;
    StageReport stage;
    stage.job = report::analyze(record.job, options.job);
    out.sim_total_s += stage.job.total_s;
    out.startup_s += stage.job.startup_s;
    out.map_s += stage.job.map_phase.makespan_s;
    out.shuffle_s += stage.job.shuffle_s;
    out.reduce_s += stage.job.reduce_phase.makespan_s;
    out.shuffle_bytes += stage.job.shuffle_bytes;
    all_wall = all_wall && record.has_wall();
    out.stages.push_back(std::move(stage));
  }
  for (StageReport& stage : out.stages) {
    stage.sim_share =
        out.sim_total_s > 0.0 ? stage.job.total_s / out.sim_total_s : 0.0;
  }

  // Real wall-clock layer: per-stage duration, inter-job driver gaps, and
  // the end-to-end window.  Only meaningful when every stage carried a wall
  // window; callers comparing across runs disable it (include_wall=false).
  out.has_wall = all_wall;
  if (out.has_wall) {
    for (std::size_t i = 0; i < ordered.size(); ++i) {
      const StageRecord& record = *ordered[i];
      StageReport& stage = out.stages[i];
      stage.has_wall = true;
      stage.wall_s = (record.wall_end_us - record.wall_start_us) * 1e-6;
      if (i > 0) {
        stage.gap_before_s = std::max(
            0.0, (record.wall_start_us - ordered[i - 1]->wall_end_us) * 1e-6);
      }
      out.driver_gap_s += stage.gap_before_s;
    }
    out.wall_total_s =
        (ordered.back()->wall_end_us - ordered.front()->wall_start_us) * 1e-6;
  }

  // ------------------------------------------------------------- recovery
  // Checkpoint decisions of the recovery stage driver, sorted by driver
  // sequence (the collector and the trace both deliver them in that order
  // already; sorting here keeps hand-built inputs honest too).
  out.recovery.rows = input.recovery;
  std::stable_sort(out.recovery.rows.begin(), out.recovery.rows.end(),
                   [](const RecoveryRecord& a, const RecoveryRecord& b) {
                     return a.sequence < b.sequence;
                   });
  for (const RecoveryRecord& row : out.recovery.rows) {
    if (row.outcome == "hit") {
      ++out.recovery.hits;
    } else {
      ++out.recovery.misses;
      if (row.outcome == "miss+write") ++out.recovery.writes;
    }
  }

  // ------------------------------------------------------------- findings
  if (out.recovery.hits > 0) {
    out.findings.push_back(
        {"checkpoint-resume", report::Severity::kInfo,
         std::to_string(out.recovery.hits) + " of " +
             std::to_string(out.recovery.rows.size()) +
             " driver stage(s) were served from checkpoint — this is a "
             "resumed run",
         "sim/wall totals cover only the stages recomputed in this process; "
         "compare against an uninterrupted run before reading them as "
         "end-to-end cost"});
  }
  for (const StageReport& stage : out.stages) {
    if (out.stages.size() > 1 && stage.sim_share > options.dominant_share) {
      out.findings.push_back(
          {"stage-dominant", report::Severity::kWarning,
           "stage \"" + stage.job.stage + "\" is " + pct(stage.sim_share) +
               " of the simulated pipeline makespan (" +
               f2(stage.job.total_s) + "s of " + f2(out.sim_total_s) + "s)",
           "scale or restructure this stage first — the other stages are "
           "not the bottleneck"});
    }
  }
  for (const StageReport& stage : out.stages) {
    if (out.stages.size() > 1 && out.shuffle_bytes > 0.0 &&
        stage.job.shuffle_bytes / out.shuffle_bytes > options.shuffle_share) {
      out.findings.push_back(
          {"shuffle-concentration", report::Severity::kInfo,
           "stage \"" + stage.job.stage + "\" moves " +
               pct(stage.job.shuffle_bytes / out.shuffle_bytes) +
               " of the pipeline's shuffle bytes (" +
               f2(stage.job.shuffle_bytes / 1e6) + " MB of " +
               f2(out.shuffle_bytes / 1e6) + " MB)",
           "compress or combine this stage's map output first — the other "
           "exchanges are noise in comparison"});
    }
  }
  if (out.sim_total_s > 0.0 &&
      out.startup_s / out.sim_total_s > options.startup_fraction) {
    out.findings.push_back(
        {"startup-bound-pipeline", report::Severity::kWarning,
         "fixed job startup is " + pct(out.startup_s / out.sim_total_s) +
             " of the simulated pipeline (" + f2(out.startup_s) + "s over " +
             std::to_string(out.stages.size()) + " jobs)",
         "chain stages into fewer jobs or batch more input per run — the "
         "cluster mostly waits for job launches"});
  }
  if (out.has_wall && out.wall_total_s > 0.0 &&
      out.driver_gap_s / out.wall_total_s > options.gap_fraction) {
    out.findings.push_back(
        {"driver-gap", report::Severity::kWarning,
         "the driver spends " + pct(out.driver_gap_s / out.wall_total_s) +
             " of the pipeline wall time between jobs (" +
             f2(out.driver_gap_s) + "s across " +
             std::to_string(out.stages.size() - 1) + " gap(s))",
         "overlap stage setup with the previous job or keep intermediate "
         "results in memory between stages"});
  }
  std::stable_sort(out.findings.begin(), out.findings.end(),
                   [](const report::Finding& a, const report::Finding& b) {
                     return static_cast<int>(a.severity) >
                            static_cast<int>(b.severity);
                   });
  return out;
}

// ---------------------------------------------------------- offline intake

std::vector<PipelineInput> pipelines_from_trace(const common::JsonValue& root) {
  // The job doctor already reconstructs every sim job (lineage included);
  // regroup the ones that carry a pipeline id, then join the "job_wall"
  // instants the job runner emitted on the real-clock track.
  std::vector<StageRecord> records;
  for (report::JobInput& job : report::jobs_from_trace(root)) {
    StageRecord record;
    record.job = std::move(job);
    records.push_back(std::move(record));
  }
  std::vector<PipelineInput> pipelines = group_stages(std::move(records));

  const common::JsonValue& events = root.at("traceEvents");
  for (const common::JsonValue& event : events.array) {
    if (event.at("ph").string != "i" ||
        event.at("name").string != "job_wall") {
      continue;
    }
    const common::JsonValue& args = event.at("args");
    const std::string& pipeline_id = args.at("pipeline").string;
    const auto sequence = static_cast<std::size_t>(
        std::strtod(args.at("sequence").string.c_str(), nullptr));
    for (PipelineInput& input : pipelines) {
      if (input.id != pipeline_id) continue;
      for (StageRecord& stage : input.stages) {
        if (stage.job.sequence != sequence) continue;
        // %.17g strings restore the tracer's microsecond doubles exactly.
        stage.wall_start_us =
            std::strtod(args.at("start_us").string.c_str(), nullptr);
        stage.wall_end_us =
            std::strtod(args.at("end_us").string.c_str(), nullptr);
      }
    }
  }

  // Recovery-driver checkpoint decisions, emitted one "stage_checkpoint"
  // instant per driver stage, in driver order.  A fully-resumed pipeline
  // (every stage a hit) has no jobs in the trace — it enters `pipelines`
  // here, recovery-only.
  std::vector<RecoveryRecord> checkpoints;
  for (const common::JsonValue& event : events.array) {
    if (event.at("ph").string != "i" ||
        event.at("name").string != "stage_checkpoint") {
      continue;
    }
    const common::JsonValue& args = event.at("args");
    RecoveryRecord record;
    record.pipeline = args.at("pipeline").string;
    record.stage = args.at("stage").string;
    record.sequence = static_cast<std::size_t>(
        std::strtod(args.at("sequence").string.c_str(), nullptr));
    record.outcome = args.at("outcome").string;
    record.attempts = static_cast<int>(
        std::strtod(args.at("attempts").string.c_str(), nullptr));
    record.key = args.at("key").string;
    checkpoints.push_back(std::move(record));
  }
  attach_recovery(pipelines, std::move(checkpoints));
  return pipelines;
}

std::vector<PipelineReport> analyze_trace_file(
    const std::string& path, const PipelineAnalyzeOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const common::JsonValue root = common::parse_json(buffer.str());
  std::vector<PipelineReport> reports;
  for (const PipelineInput& input : pipelines_from_trace(root)) {
    reports.push_back(analyze(input, options));
  }
  return reports;
}

// -------------------------------------------------------------- renderers

std::string to_text(const PipelineReport& report, bool color) {
  std::string out;
  out += "pipeline \"" + report.id + "\" — " +
         std::to_string(report.stages.size()) + " stage(s), sim total " +
         common::format_duration(report.sim_total_s) + "\n";
  auto leg = [&](const char* name, double seconds) {
    out += std::string(name) + " " + f2(seconds) + "s";
    if (report.sim_total_s > 0.0) {
      out += " (" + pct(seconds / report.sim_total_s) + ")";
    }
  };
  out += "  critical path: ";
  leg("startup", report.startup_s);
  out += " | ";
  leg("map", report.map_s);
  out += " | ";
  leg("shuffle", report.shuffle_s);
  out += " | ";
  leg("reduce", report.reduce_s);
  out += "\n";
  if (report.shuffle_bytes > 0.0) {
    out += "  shuffle bytes: " + f2(report.shuffle_bytes / 1e6) + " MB\n";
  }
  if (report.has_wall) {
    out += "  wall: " + f2(report.wall_total_s) + "s end to end, driver gaps " +
           f2(report.driver_gap_s) + "s";
    if (report.wall_total_s > 0.0) {
      out += " (" + pct(report.driver_gap_s / report.wall_total_s) + ")";
    }
    out += "\n";
  }
  out += "  stages:\n";
  for (std::size_t i = 0; i < report.stages.size(); ++i) {
    const StageReport& stage = report.stages[i];
    out += "    #" + std::to_string(stage.job.sequence) + " \"" +
           stage.job.stage + "\"";
    if (stage.job.round >= 0) {
      out += " round " + std::to_string(stage.job.round);
    }
    out += "  sim " + f2(stage.job.total_s) + "s (" + pct(stage.sim_share) +
           ")";
    if (stage.job.shuffle_bytes > 0.0) {
      out += "  shuffle " + f2(stage.job.shuffle_bytes / 1e6) + " MB";
    }
    if (stage.has_wall) {
      out += "  wall " + f2(stage.wall_s) + "s";
      if (i > 0) out += " (gap " + f2(stage.gap_before_s) + "s)";
    }
    out += "\n";
  }
  if (!report.recovery.rows.empty()) {
    out += "  recovery: " + std::to_string(report.recovery.hits) +
           " hit(s), " + std::to_string(report.recovery.misses) +
           " miss(es), " + std::to_string(report.recovery.writes) +
           " write(s)\n";
    for (const RecoveryRecord& row : report.recovery.rows) {
      out += "    #" + std::to_string(row.sequence) + " \"" + row.stage +
             "\" " + row.outcome;
      if (row.attempts > 1) {
        out += " (" + std::to_string(row.attempts) + " attempts)";
      }
      out += "  key " + row.key + "\n";
    }
  }
  if (report.findings.empty()) {
    out += "  findings: none — no stage dominates and the driver keeps up\n";
  } else {
    out += "  findings:\n";
    for (const report::Finding& finding : report.findings) {
      out += "    [";
      if (color) out += severity_color(finding.severity);
      out += report::severity_name(finding.severity);
      if (color) out += kReset;
      out += "] " + finding.id + ": " + finding.message + "\n";
      out += "        -> " + finding.recommendation + "\n";
    }
  }
  return out;
}

std::string to_text(std::span<const PipelineReport> reports, bool color) {
  std::string out;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) out += "\n";
    out += to_text(reports[i], color);
  }
  return out;
}

std::string to_json(const PipelineReport& report) {
  std::string out = "{\"id\": ";
  append_json_string(out, report.id);
  out += ", \"sim_total_s\": " + f17(report.sim_total_s) +
         ", \"critical_path\": {\"startup_s\": " + f17(report.startup_s) +
         ", \"map_s\": " + f17(report.map_s) +
         ", \"shuffle_s\": " + f17(report.shuffle_s) +
         ", \"reduce_s\": " + f17(report.reduce_s) + "}" +
         ", \"shuffle_bytes\": " + f17(report.shuffle_bytes);
  if (report.has_wall) {
    out += ", \"wall\": {\"total_s\": " + f17(report.wall_total_s) +
           ", \"driver_gap_s\": " + f17(report.driver_gap_s) + "}";
  }
  out += ", \"stages\": [";
  for (std::size_t i = 0; i < report.stages.size(); ++i) {
    const StageReport& stage = report.stages[i];
    if (i > 0) out += ", ";
    out += "{\"stage\": ";
    append_json_string(out, stage.job.stage);
    out += ", \"round\": " + std::to_string(stage.job.round) +
           ", \"sequence\": " + std::to_string(stage.job.sequence) +
           ", \"sim_share\": " + f17(stage.sim_share);
    if (stage.has_wall) {
      out += ", \"wall_s\": " + f17(stage.wall_s) +
             ", \"gap_before_s\": " + f17(stage.gap_before_s);
    }
    // The full per-stage job report nests verbatim, so every single-job
    // byte-identity guarantee carries into the pipeline view.
    out += ", \"job\": " + report::to_json(stage.job) + "}";
  }
  out += "]";
  // Key absent entirely without a recovery driver, so pre-recovery golden
  // outputs stay byte-identical.
  if (!report.recovery.rows.empty()) {
    out += ", \"recovery\": {\"hits\": " +
           std::to_string(report.recovery.hits) +
           ", \"misses\": " + std::to_string(report.recovery.misses) +
           ", \"writes\": " + std::to_string(report.recovery.writes) +
           ", \"stages\": [";
    for (std::size_t i = 0; i < report.recovery.rows.size(); ++i) {
      const RecoveryRecord& row = report.recovery.rows[i];
      if (i > 0) out += ", ";
      out += "{\"stage\": ";
      append_json_string(out, row.stage);
      out += ", \"sequence\": " + std::to_string(row.sequence) +
             ", \"outcome\": ";
      append_json_string(out, row.outcome);
      out += ", \"attempts\": " + std::to_string(row.attempts) +
             ", \"key\": ";
      append_json_string(out, row.key);
      out += "}";
    }
    out += "]}";
  }
  out += ", \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const report::Finding& finding = report.findings[i];
    if (i > 0) out += ", ";
    out += "{\"id\": ";
    append_json_string(out, finding.id);
    out += ", \"severity\": ";
    append_json_string(out, report::severity_name(finding.severity));
    out += ", \"message\": ";
    append_json_string(out, finding.message);
    out += ", \"recommendation\": ";
    append_json_string(out, finding.recommendation);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string to_json(std::span<const PipelineReport> reports) {
  std::string out = "{\"pipelines\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) out += ",\n";
    out += "  " + to_json(reports[i]);
  }
  out += "\n]}\n";
  return out;
}

std::string to_html(std::span<const PipelineReport> reports) {
  std::string body;
  for (const PipelineReport& report : reports) {
    body += "<section>\n<h2>" + html_escape(report.id) + "</h2>\n";
    body += "<p class=\"sum\">sim total <b>" + f2(report.sim_total_s) +
            "s</b> over " + std::to_string(report.stages.size()) + " stages";
    if (report.has_wall) {
      body += " · wall " + f2(report.wall_total_s) + "s · driver gaps " +
              f2(report.driver_gap_s) + "s";
    }
    body += "</p>\n";
    // Stacked stage-share bar: each stage's slice of the sim makespan.
    if (report.sim_total_s > 0.0) {
      static const char* kColors[] = {"#4e79a7", "#f28e2b", "#59a14f",
                                      "#e15759", "#b07aa1", "#76b7b2"};
      body += "<div class=\"cpbar\">";
      for (std::size_t i = 0; i < report.stages.size(); ++i) {
        const StageReport& stage = report.stages[i];
        if (stage.sim_share <= 0.0) continue;
        body += "<span style=\"background:" + std::string(kColors[i % 6]) +
                ";width:" + f2(stage.sim_share * 100.0) + "%\" title=\"" +
                html_escape(stage.job.stage) + " " + f2(stage.job.total_s) +
                "s\"></span>";
      }
      body += "</div>\n";
    }
    body += "<table><tr><th>stage</th><th>sim</th><th>share</th>"
            "<th>shuffle MB</th><th>wall</th><th>gap</th></tr>\n";
    for (const StageReport& stage : report.stages) {
      body += "<tr><td>#" + std::to_string(stage.job.sequence) + " " +
              html_escape(stage.job.stage) +
              (stage.job.round >= 0
                   ? " (round " + std::to_string(stage.job.round) + ")"
                   : "") +
              "</td><td>" + f2(stage.job.total_s) + "s</td><td>" +
              pct(stage.sim_share) + "</td><td>" +
              f2(stage.job.shuffle_bytes / 1e6) + "</td><td>" +
              (stage.has_wall ? f2(stage.wall_s) + "s" : "—") + "</td><td>" +
              (stage.has_wall ? f2(stage.gap_before_s) + "s" : "—") +
              "</td></tr>\n";
    }
    body += "</table>\n";
    if (!report.recovery.rows.empty()) {
      body += "<h3>recovery</h3>\n<p class=\"sum\">" +
              std::to_string(report.recovery.hits) + " hit(s) · " +
              std::to_string(report.recovery.misses) + " miss(es) · " +
              std::to_string(report.recovery.writes) + " write(s)</p>\n";
      body += "<table><tr><th>stage</th><th>outcome</th><th>attempts</th>"
              "<th>key</th></tr>\n";
      for (const RecoveryRecord& row : report.recovery.rows) {
        body += "<tr><td>#" + std::to_string(row.sequence) + " " +
                html_escape(row.stage) + "</td><td>" +
                html_escape(row.outcome) + "</td><td>" +
                std::to_string(row.attempts) + "</td><td><code>" +
                html_escape(row.key) + "</code></td></tr>\n";
      }
      body += "</table>\n";
    }
    body += "<ul>\n";
    for (const report::Finding& finding : report.findings) {
      const char* cls =
          finding.severity == report::Severity::kCritical ? "critical"
          : finding.severity == report::Severity::kWarning ? "warning"
                                                           : "info";
      body += "<li class=\"" + std::string(cls) + "\"><b>" +
              html_escape(finding.id) + "</b>: " +
              html_escape(finding.message) + "<br>&rarr; " +
              html_escape(finding.recommendation) + "</li>\n";
    }
    body += "</ul>\n</section>\n";
  }
  return "<!doctype html>\n<html><head><meta charset=\"utf-8\">"
         "<title>mrmc pipeline doctor</title>\n<style>\n"
         "body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;"
         "max-width:920px;color:#202124}\n"
         "h2{border-bottom:1px solid #dadce0;padding-bottom:.2em}\n"
         ".sum{color:#5f6368}\n"
         ".cpbar{display:flex;height:18px;border-radius:3px;overflow:hidden;"
         "margin:.5em 0}\n"
         ".cpbar span{display:block;height:100%}\n"
         "table{border-collapse:collapse}\n"
         "td,th{border:1px solid #dadce0;padding:.2em .6em;text-align:left}\n"
         "li.warning{color:#b06000}\nli.critical{color:#c5221f}\n"
         "li{margin-bottom:.5em}\n"
         "</style></head><body>\n<h1>mrmc pipeline doctor</h1>\n" +
         body + "</body></html>\n";
}

std::string to_bench_json(std::span<const PipelineReport> reports) {
  // Schema-v1 BENCH record for the regression doctor.  Simulated per-leg
  // seconds contain "sim" so obs::regress tight-gates them; wall seconds
  // contain "wall" so shared-runner noise gets the open noisy threshold.
  std::string out =
      "{\"bench\": \"pipeline\", \"schema_version\": 1, "
      "\"keys\": [\"pipeline\", \"stage\"], \"rows\": [\n";
  bool first = true;
  auto row = [&](const std::string& pipeline, const std::string& stage,
                 double sim_total, double sim_map, double sim_shuffle,
                 double sim_reduce, double shuffle_bytes, double wall_s,
                 bool has_wall) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"pipeline\": ";
    append_json_string(out, pipeline);
    out += ", \"stage\": ";
    append_json_string(out, stage);
    out += ", \"sim_total_s\": " + f17(sim_total) +
           ", \"sim_map_s\": " + f17(sim_map) +
           ", \"sim_shuffle_s\": " + f17(sim_shuffle) +
           ", \"sim_reduce_s\": " + f17(sim_reduce) +
           ", \"shuffle_bytes\": " + f17(shuffle_bytes);
    if (has_wall) out += ", \"wall_s\": " + f17(wall_s);
    out += "}";
  };
  for (const PipelineReport& report : reports) {
    // Strip the process-local "#serial" so baseline and candidate rows from
    // different runs key to the same (pipeline, stage) pair.
    std::string key = report.id.substr(0, report.id.rfind('#'));
    for (const StageReport& stage : report.stages) {
      row(key, stage.job.stage, stage.job.total_s,
          stage.job.map_phase.makespan_s, stage.job.shuffle_s,
          stage.job.reduce_phase.makespan_s, stage.job.shuffle_bytes,
          stage.wall_s, stage.has_wall);
    }
    row(key, "<total>", report.sim_total_s, report.map_s, report.shuffle_s,
        report.reduce_s, report.shuffle_bytes, report.wall_total_s,
        report.has_wall);
  }
  out += "\n]}\n";
  return out;
}

// -------------------------------------------------------------- collector

Collector::Collector() {
  if (const char* path = std::getenv("MRMC_PIPELINE");
      path != nullptr && *path != '\0') {
    enabled_ = true;
    output_path_ = path;
  }
}

Collector& Collector::global() {
  static Collector instance;
  return instance;
}

bool Collector::enabled() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

void Collector::set_enabled(bool enabled) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = enabled;
}

void Collector::set_output_path(std::string path) {
  std::lock_guard<std::mutex> lock(mutex_);
  output_path_ = std::move(path);
  if (!output_path_.empty()) enabled_ = true;
}

std::string Collector::output_path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return output_path_;
}

void Collector::add(StageRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(std::move(record));
}

void Collector::add_recovery(RecoveryRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  recovery_.push_back(std::move(record));
}

std::size_t Collector::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

void Collector::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
  recovery_.clear();
}

std::vector<PipelineInput> Collector::pipelines() const {
  std::vector<StageRecord> records;
  std::vector<RecoveryRecord> recovery;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    records = records_;
    recovery = recovery_;
  }
  std::vector<PipelineInput> out = group_stages(std::move(records));
  attach_recovery(out, std::move(recovery));
  return out;
}

std::vector<PipelineReport> Collector::reports(
    const PipelineAnalyzeOptions& options) const {
  std::vector<PipelineReport> out;
  for (const PipelineInput& input : pipelines()) {
    out.push_back(analyze(input, options));
  }
  return out;
}

bool Collector::flush() const {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // recovery_ alone still flushes: a fully-resumed pipeline runs no jobs,
    // but its checkpoint decisions are exactly what the doctor must show.
    if (!enabled_ || output_path_.empty() ||
        (records_.empty() && recovery_.empty())) {
      return false;
    }
    path = output_path_;
  }
  const std::vector<PipelineReport> rendered = reports();
  if (rendered.empty()) return false;
  const std::span<const PipelineReport> span(rendered);
  std::string body;
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".html") == 0) {
    body = to_html(span);
  } else if (path.size() >= 5 &&
             path.compare(path.size() - 5, 5, ".json") == 0) {
    body = to_json(span);
  } else {
    body = to_text(span);
  }
  return common::write_file_atomic(path, body);
}

bool Collector::write_global_if_configured() {
  const char* path = std::getenv("MRMC_PIPELINE");
  if (path == nullptr || *path == '\0') return false;
  return global().flush();
}

}  // namespace mrmc::obs::pipeline

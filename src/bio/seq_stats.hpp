// Sequence-set statistics: length distribution, N50, GC, base composition —
// the summary panel any read-set tool prints before clustering.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>

#include "bio/fasta.hpp"

namespace mrmc::bio {

struct SeqSetStats {
  std::size_t count = 0;
  std::size_t total_bases = 0;
  std::size_t min_length = 0;
  std::size_t max_length = 0;
  double mean_length = 0.0;
  std::size_t median_length = 0;
  std::size_t n50 = 0;            ///< length L such that reads >= L hold half the bases
  double gc = 0.0;                ///< overall GC fraction
  double ambiguous_fraction = 0.0;  ///< non-ACGT bases / total
  std::array<std::size_t, 4> base_counts{};  ///< A, C, G, T

  [[nodiscard]] std::string summary() const;
};

SeqSetStats compute_stats(std::span<const FastaRecord> records);

}  // namespace mrmc::bio

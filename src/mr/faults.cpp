#include "mr/faults.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "mr/simdfs.hpp"

namespace mrmc::mr::faults {

FaultPlan::FaultPlan(std::vector<FaultEvent> events, FaultConfig config)
    : events_(std::move(events)), config_(config) {
  MRMC_REQUIRE(config_.heartbeat_interval_s >= 0.0,
               "heartbeat_interval_s must be non-negative");
  MRMC_REQUIRE(config_.heartbeat_timeout_s >= 0.0,
               "heartbeat_timeout_s must be non-negative");
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.crash_s != b.crash_s) return a.crash_s < b.crash_s;
                     return a.node < b.node;
                   });
}

FaultPlan FaultPlan::random(std::uint64_t seed, std::size_t nodes,
                            std::size_t crashes, double horizon_s,
                            double recover_fraction, FaultConfig config) {
  MRMC_REQUIRE(nodes >= 2, "a random plan needs >= 2 nodes (node 0 survives)");
  MRMC_REQUIRE(horizon_s > 0.0, "horizon_s must be positive");
  common::Xoshiro256 rng(common::mix64(seed ^ 0x5fd4cbe1e5b0a6f3ULL));
  std::vector<FaultEvent> events;
  // Per-node end of the latest down interval drawn so far (drawn intervals
  // on one node must not overlap; kNever blocks further crashes).
  std::vector<double> busy_until(nodes, 0.0);
  std::size_t placed = 0;
  // Bounded rejection sampling: bad draws (overlapping a prior outage on
  // the same node) are skipped, never redrawn, so the sequence of rng
  // consumptions — and therefore the plan — is a pure function of the seed.
  for (std::size_t attempt = 0; attempt < crashes * 16 && placed < crashes;
       ++attempt) {
    FaultEvent event;
    event.node = 1 + static_cast<int>(rng.bounded(nodes - 1));
    event.crash_s = rng.uniform(0.05, 0.95) * horizon_s;
    const bool recovers = rng.chance(recover_fraction);
    const double outage = rng.uniform(0.05, 0.25) * horizon_s;
    if (event.crash_s < busy_until[static_cast<std::size_t>(event.node)]) {
      continue;
    }
    event.recover_s = recovers ? event.crash_s + outage : kNever;
    busy_until[static_cast<std::size_t>(event.node)] = event.recover_s;
    events.push_back(event);
    ++placed;
  }
  FaultPlan plan(std::move(events), config);
  plan.validate(nodes);
  return plan;
}

double FaultPlan::detection_s(double crash_s) const noexcept {
  const double deadline = crash_s + config_.heartbeat_timeout_s;
  if (config_.heartbeat_interval_s <= 0.0) return deadline;
  // The control plane only checks on its heartbeat grid.
  return std::ceil(deadline / config_.heartbeat_interval_s) *
         config_.heartbeat_interval_s;
}

std::size_t FaultPlan::crash_count(int node) const noexcept {
  std::size_t count = 0;
  for (const FaultEvent& event : events_) {
    if (event.node == node) ++count;
  }
  return count;
}

bool FaultPlan::blacklists(int node) const noexcept {
  return crash_count(node) > config_.max_node_failures;
}

void FaultPlan::validate(std::size_t nodes) const {
  std::vector<double> up_since(nodes, 0.0);  // kNever = down for good
  for (const FaultEvent& event : events_) {
    MRMC_REQUIRE(event.node >= 0 &&
                     static_cast<std::size_t>(event.node) < nodes,
                 "fault event names a node outside the cluster");
    MRMC_REQUIRE(event.crash_s >= 0.0, "crash_s must be non-negative");
    MRMC_REQUIRE(event.recover_s > event.crash_s,
                 "recover_s must be after crash_s");
    auto& since = up_since[static_cast<std::size_t>(event.node)];
    MRMC_REQUIRE(since < kNever && event.crash_s >= since,
                 "a node cannot crash while it is already down");
    since = event.recover_s;
  }
  // Any job completes iff some node is schedulable for the whole run:
  // it never goes down for good (all its crashes recover) and is not
  // blacklisted.  Without one, re-queued work could wait forever.
  for (std::size_t node = 0; node < nodes; ++node) {
    if (up_since[node] < kNever && !blacklists(static_cast<int>(node))) {
      return;
    }
  }
  MRMC_REQUIRE(false,
               "fault plan must leave at least one node schedulable for the "
               "whole job (never permanently down, never blacklisted)");
}

bool FaultPlan::leaves_schedulable(std::size_t nodes) const noexcept {
  std::vector<double> up_since(nodes, 0.0);
  for (const FaultEvent& event : events_) {
    if (event.node < 0 || static_cast<std::size_t>(event.node) >= nodes) {
      continue;  // structural problems are validate()'s to report
    }
    auto& since = up_since[static_cast<std::size_t>(event.node)];
    if (since < kNever) since = event.recover_s;
  }
  for (std::size_t node = 0; node < nodes; ++node) {
    if (up_since[node] < kNever && !blacklists(static_cast<int>(node))) {
      return true;
    }
  }
  return false;
}

FaultPlan FaultPlan::with_heartbeat_interval(double interval_s) const {
  FaultConfig config = config_;
  config.heartbeat_interval_s = interval_s;
  return FaultPlan(events_, config);
}

NodeTracker::NodeTracker(const FaultPlan& plan, std::size_t nodes)
    : plan_(&plan), windows_(nodes), crashes_(nodes) {
  const std::size_t max_failures = plan.config().max_node_failures;
  std::vector<double> up_since(nodes, 0.0);
  std::vector<std::size_t> crash_counts(nodes, 0);
  for (const FaultEvent& event : plan.events()) {
    const auto node = static_cast<std::size_t>(event.node);
    crashes_[node].push_back(event.crash_s);
    NodeDownEvent down;
    down.node = event.node;
    down.crash_s = event.crash_s;
    down.detect_s = plan.detection_s(event.crash_s);
    down.recover_s = event.recover_s < kNever ? event.recover_s : -1.0;
    if (up_since[node] < kNever) {
      windows_[node].push_back({up_since[node], event.crash_s});
      down.blacklisted = ++crash_counts[node] > max_failures;
      if (down.blacklisted) {
        ++blacklisted_;
        down.recover_s = -1.0;  // the scheduler never takes it back
        up_since[node] = kNever;
      } else {
        up_since[node] = event.recover_s;
      }
    }
    down_events_.push_back(down);
  }
  for (std::size_t node = 0; node < nodes; ++node) {
    if (up_since[node] < kNever) {
      windows_[node].push_back({up_since[node], kNever});
    }
  }
}

NodeTracker::Window NodeTracker::next_window(int node, double t) const noexcept {
  for (const Window& window : windows_[static_cast<std::size_t>(node)]) {
    const double start = std::max(window.start, t);
    if (start < window.crash) return {start, window.crash};
  }
  return {};
}

double NodeTracker::crash_in(int node, double from_s,
                             double to_s) const noexcept {
  for (const double crash : crashes_[static_cast<std::size_t>(node)]) {
    if (crash >= to_s) break;
    if (crash >= from_s) return crash;
  }
  return kNever;
}

void apply_to_dfs(const FaultPlan& plan, SimDfs& dfs, double now_s) {
  struct Transition {
    double time_s;
    int node;
    bool up;
  };
  std::vector<Transition> transitions;
  for (const FaultEvent& event : plan.events()) {
    if (event.crash_s <= now_s) {
      transitions.push_back({event.crash_s, event.node, false});
    }
    if (event.recover_s <= now_s) {
      transitions.push_back({event.recover_s, event.node, true});
    }
  }
  std::stable_sort(transitions.begin(), transitions.end(),
                   [](const Transition& a, const Transition& b) {
                     if (a.time_s != b.time_s) return a.time_s < b.time_s;
                     return a.node < b.node;
                   });
  for (const Transition& transition : transitions) {
    if (transition.up) {
      dfs.recommission_node(transition.node);
    } else {
      dfs.decommission_node(transition.node);
    }
  }
}

}  // namespace mrmc::mr::faults

# Empty dependencies file for mrmc_core.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/greedy.cpp" "src/core/CMakeFiles/mrmc_core.dir/greedy.cpp.o" "gcc" "src/core/CMakeFiles/mrmc_core.dir/greedy.cpp.o.d"
  "/root/repo/src/core/hierarchical.cpp" "src/core/CMakeFiles/mrmc_core.dir/hierarchical.cpp.o" "gcc" "src/core/CMakeFiles/mrmc_core.dir/hierarchical.cpp.o.d"
  "/root/repo/src/core/incremental.cpp" "src/core/CMakeFiles/mrmc_core.dir/incremental.cpp.o" "gcc" "src/core/CMakeFiles/mrmc_core.dir/incremental.cpp.o.d"
  "/root/repo/src/core/lsh_index.cpp" "src/core/CMakeFiles/mrmc_core.dir/lsh_index.cpp.o" "gcc" "src/core/CMakeFiles/mrmc_core.dir/lsh_index.cpp.o.d"
  "/root/repo/src/core/minhash.cpp" "src/core/CMakeFiles/mrmc_core.dir/minhash.cpp.o" "gcc" "src/core/CMakeFiles/mrmc_core.dir/minhash.cpp.o.d"
  "/root/repo/src/core/otu_table.cpp" "src/core/CMakeFiles/mrmc_core.dir/otu_table.cpp.o" "gcc" "src/core/CMakeFiles/mrmc_core.dir/otu_table.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/mrmc_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/mrmc_core.dir/pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bio/CMakeFiles/mrmc_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/mr/CMakeFiles/mrmc_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mrmc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

// make_dataset — generate the paper's benchmark datasets as FASTA/FASTQ
// files on disk, for feeding cluster_fasta or external tools.
//
//   ./make_dataset table2 S9 out.fa [--reads=N] [--seed=S]
//   ./make_dataset table1 53R out.fa [--reads=N] [--seed=S]
//   ./make_dataset 16s 0.03 out.fa [--reads=N] [--seed=S]
//   ./make_dataset 16s 0.05 out.fq --fastq [--reads=N]   (with qualities)
#include <fstream>
#include <iostream>
#include <string>

#include "bio/seq_stats.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "simdata/datasets.hpp"
#include "simdata/fastq_sim.hpp"

namespace {

using namespace mrmc;

int usage() {
  std::cerr << "usage: make_dataset <table2|table1|16s> <sid|error-rate> "
               "<out-file> [--reads=N] [--seed=S] [--fastq]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string kind = argv[1];
  const std::string selector = argv[2];
  const std::string out_path = argv[3];

  std::size_t reads = 0;
  std::uint64_t seed = 42;
  bool fastq = false;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--reads=", 0) == 0) reads = std::stoul(arg.substr(8));
    else if (arg.rfind("--seed=", 0) == 0) seed = std::stoull(arg.substr(7));
    else if (arg == "--fastq") fastq = true;
    else return usage();
  }

  try {
    simdata::LabeledReads sample;
    if (kind == "table2") {
      simdata::WholeMetagenomeOptions options;
      options.reads = reads;
      options.seed = seed;
      sample = simdata::build_whole_metagenome(
          simdata::whole_metagenome_spec(selector), options);
    } else if (kind == "table1") {
      simdata::Env16sOptions options;
      options.reads = reads;
      options.seed = seed;
      sample = simdata::build_environmental(
          simdata::environmental_spec(selector), options);
    } else if (kind == "16s") {
      simdata::Sim16sOptions options;
      if (reads != 0) options.reads = reads;
      options.error_rate = std::stod(selector);
      options.seed = seed;
      sample = simdata::build_16s_simulated(options);
    } else {
      return usage();
    }

    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "make_dataset: cannot write " << out_path << "\n";
      return 1;
    }
    if (fastq) {
      // The builders already injected errors; emit uniformly clean-looking
      // qualities for those reads (positions unknown at this layer).
      const auto records = simdata::attach_qualities(
          sample.reads,
          std::vector<std::vector<std::size_t>>(sample.size()), {}, seed);
      bio::write_fastq(out, records);
    } else {
      bio::write_fasta(out, sample.reads);
    }

    std::cerr << "wrote " << out_path << ": "
              << bio::compute_stats(sample.reads).summary() << "\n";
    if (sample.has_labels()) {
      std::cerr << "ground truth: " << sample.species.size()
                << " source organisms (labels in read headers)\n";
    }
  } catch (const common::Error& error) {
    std::cerr << "make_dataset: " << error.what() << "\n";
    return 1;
  }
  return 0;
}

#include "mr/recovery.hpp"

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/fsio.hpp"
#include "mr/bytes.hpp"
#include "obs/metrics.hpp"
#include "obs/pipeline.hpp"
#include "obs/trace.hpp"

namespace mrmc::mr::recovery {

namespace {

constexpr char kMagic[4] = {'M', 'R', 'C', 'K'};
constexpr std::uint32_t kVersion = 1;
// magic + version + key + payload size + payload checksum.
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8 + 8;

std::string exhausted_message(const std::string& stage,
                              const std::vector<AttemptRecord>& history) {
  std::ostringstream out;
  out << "stage '" << stage << "' failed after " << history.size()
      << " attempt(s)";
  if (!history.empty()) {
    out << "; last " << history.back().outcome << ": " << history.back().error;
  }
  return out.str();
}

double elapsed_s(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

// ----------------------------------------------------------- retry policy

RetryExhausted::RetryExhausted(std::string stage,
                               std::vector<AttemptRecord> history)
    : common::Error(exhausted_message(stage, history)),
      stage_(std::move(stage)),
      history_(std::move(history)) {}

void validate(const RetryPolicy& policy) {
  MRMC_REQUIRE(policy.max_job_attempts >= 1, "max_job_attempts must be >= 1");
  MRMC_REQUIRE(policy.job_timeout_s >= 0.0, "job_timeout_s must be >= 0");
  MRMC_REQUIRE(policy.backoff_base_s > 0.0, "backoff_base_s must be > 0");
  MRMC_REQUIRE(policy.backoff_cap_s >= policy.backoff_base_s,
               "backoff_cap_s must be >= backoff_base_s");
}

double backoff_delay_s(const RetryPolicy& policy, int attempt) {
  MRMC_REQUIRE(attempt >= 1, "attempt must be >= 1");
  double raw = policy.backoff_base_s * std::ldexp(1.0, attempt - 1);
  if (!(raw < policy.backoff_cap_s)) raw = policy.backoff_cap_s;
  StableHasher hasher;
  stable_hash_append(hasher, policy.seed);
  stable_hash_append(hasher, attempt);
  // 53 high-quality bits -> [0, 1), then mapped onto [0.5, 1.0).
  const double unit =
      static_cast<double>(hasher.finish() >> 11) * 0x1.0p-53;
  return raw * (0.5 + 0.5 * unit);
}

// ------------------------------------------------------- payload encoding

void PayloadWriter::u32(std::uint32_t value) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xffU);
  }
  buffer_.append(bytes, sizeof(bytes));
}

void PayloadWriter::u64(std::uint64_t value) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xffU);
  }
  buffer_.append(bytes, sizeof(bytes));
}

void PayloadWriter::f64(double value) {
  u64(std::bit_cast<std::uint64_t>(value));
}

void PayloadWriter::f32(float value) {
  u32(std::bit_cast<std::uint32_t>(value));
}

void PayloadWriter::str(std::string_view value) {
  u64(value.size());
  buffer_.append(value.data(), value.size());
}

void PayloadReader::need(std::size_t count) {
  if (bytes_.size() - pos_ < count) {
    throw common::Error("checkpoint payload truncated");
  }
}

std::uint32_t PayloadReader::u32() {
  need(4);
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes_[pos_ + i]))
             << (8 * i);
  }
  pos_ += 4;
  return value;
}

std::uint64_t PayloadReader::u64() {
  need(8);
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes_[pos_ + i]))
             << (8 * i);
  }
  pos_ += 8;
  return value;
}

double PayloadReader::f64() { return std::bit_cast<double>(u64()); }

float PayloadReader::f32() { return std::bit_cast<float>(u32()); }

std::string PayloadReader::str() {
  const std::uint64_t size = u64();
  need(size);
  std::string value(bytes_.substr(pos_, size));
  pos_ += size;
  return value;
}

// ------------------------------------------------------- checkpoint store

std::uint64_t fnv_checksum(std::string_view bytes) noexcept {
  StableHasher hasher;
  hasher.write(bytes.data(), bytes.size());
  return hasher.finish();
}

std::string key_hex(std::uint64_t key) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[key & 0xfU];
    key >>= 4;
  }
  return out;
}

std::string checkpoint_file_name(const std::string& label,
                                 const std::string& stage,
                                 std::size_t sequence, std::uint64_t key) {
  std::string name = label + "." + std::to_string(sequence) + "-" + stage +
                     "." + key_hex(key) + ".ckpt";
  for (char& c : name) {
    if (c == '/') c = '_';
  }
  return name;
}

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_)) {
    throw common::IoError("recovery: cannot create checkpoint dir '" + dir_ +
                          "': " + ec.message());
  }
}

std::optional<std::string> CheckpointStore::load(const std::string& file_name,
                                                 std::uint64_t key) {
  const std::string path = dir_ + "/" + file_name;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;  // never written: plain miss
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string blob = buffer.str();
  const auto invalid = [&]() -> std::optional<std::string> {
    ++invalid_;
    return std::nullopt;
  };
  if (blob.size() < kHeaderBytes) return invalid();
  if (blob.compare(0, 4, kMagic, 4) != 0) return invalid();
  PayloadReader header(std::string_view(blob).substr(4, kHeaderBytes - 4));
  if (header.u32() != kVersion) return invalid();
  if (header.u64() != key) return invalid();
  const std::uint64_t payload_size = header.u64();
  const std::uint64_t checksum = header.u64();
  if (blob.size() - kHeaderBytes != payload_size) return invalid();
  std::string payload = blob.substr(kHeaderBytes);
  if (fnv_checksum(payload) != checksum) return invalid();
  return payload;
}

bool CheckpointStore::store(const std::string& file_name, std::uint64_t key,
                            std::string_view payload) {
  PayloadWriter header;
  header.u32(kVersion);
  header.u64(key);
  header.u64(payload.size());
  header.u64(fnv_checksum(payload));
  std::string blob;
  blob.reserve(kHeaderBytes + payload.size());
  blob.append(kMagic, 4);
  blob.append(header.bytes());
  blob.append(payload.data(), payload.size());
  return common::write_file_atomic(dir_ + "/" + file_name, blob);
}

// ---------------------------------------------------------- stage driver

StageDriver::Options StageDriver::Options::from_env(Options base) {
  if (base.checkpoint_dir.empty()) {
    if (const char* dir = std::getenv("MRMC_CHECKPOINT_DIR");
        dir != nullptr && *dir != '\0') {
      base.checkpoint_dir = dir;
    }
  }
  if (const char* crash = std::getenv("MRMC_CRASH_AFTER_STAGE");
      crash != nullptr && *crash != '\0') {
    base.crash_after = crash;
  }
  if (const char* fail = std::getenv("MRMC_FAIL_STAGE");
      fail != nullptr && *fail != '\0') {
    const std::string spec = fail;
    const std::size_t colon = spec.rfind(':');
    base.fail_stage = spec.substr(0, colon == std::string::npos ? spec.size()
                                                                : colon);
    base.fail_count = 1;
    if (colon != std::string::npos) {
      base.fail_count = std::atoi(spec.c_str() + colon + 1);
    }
  }
  return base;
}

StageDriver::StageDriver(Options options) : options_(std::move(options)) {
  validate(options_.retry);
  if (!options_.checkpoint_dir.empty()) {
    store_ = std::make_unique<CheckpointStore>(options_.checkpoint_dir);
  }
  StableHasher hasher;
  stable_hash_append(hasher, options_.params_fingerprint);
  stable_hash_append(hasher, options_.input_fingerprint);
  chain_ = hasher.finish();
}

std::uint64_t StageDriver::stage_key(const std::string& stage,
                                     std::size_t sequence) const {
  StableHasher hasher;
  stable_hash_append(hasher, chain_);
  stable_hash_append(hasher, stage);
  stable_hash_append(hasher, static_cast<std::uint64_t>(sequence));
  return hasher.finish();
}

int StageDriver::run_attempts(const std::string& stage,
                              const std::function<void()>& invoke,
                              const std::function<void()>& discard) {
  const RetryPolicy& policy = options_.retry;
  std::vector<AttemptRecord> history;
  for (int attempt = 1;; ++attempt) {
    std::string outcome;
    std::string error;
    const auto start = std::chrono::steady_clock::now();
    bool ok = false;
    try {
      maybe_inject_failure(stage);
      invoke();
      ok = true;
    } catch (const InjectedDriverCrash&) {
      throw;  // the kill hook is a crash, not a stage failure
    } catch (const DriverParked&) {
      throw;
    } catch (const std::exception& e) {
      outcome = "failed";
      error = e.what();
    }
    const double wall_s = elapsed_s(start);
    if (ok && policy.job_timeout_s > 0.0 && wall_s > policy.job_timeout_s) {
      // The compute returned, but past its deadline: the driver treats it
      // exactly as a job tracker would a job it already declared dead.
      ok = false;
      outcome = "timeout";
      error = "attempt exceeded job_timeout_s=" +
              std::to_string(policy.job_timeout_s);
      discard();
    }
    if (ok) return attempt;
    const bool last = attempt >= policy.max_job_attempts;
    const double backoff_s = last ? 0.0 : backoff_delay_s(policy, attempt);
    history.push_back({attempt, outcome, error, wall_s, backoff_s});
    if (last) throw RetryExhausted(stage, std::move(history));
    ++stats_.retries;
    obs::Registry::global().counter("recovery.retries").add();
    if (backoff_s > 0.0) sleep_for(backoff_s);
  }
}

void StageDriver::finish_stage(const std::string& stage, std::size_t sequence,
                               std::uint64_t key, const char* outcome,
                               int attempts, std::uint64_t payload_checksum,
                               bool claims_lineage) {
  // Absorb the payload into the fingerprint chain: downstream stage keys
  // depend on every upstream result, so any upstream change invalidates
  // everything after it — while a deterministic recompute (which reproduces
  // the identical payload) leaves downstream checkpoints valid.
  StableHasher hasher;
  stable_hash_append(hasher, chain_);
  stable_hash_append(hasher, payload_checksum);
  chain_ = hasher.finish();

  ++stats_.stages;
  auto& registry = obs::Registry::global();
  const bool hit = std::string_view(outcome) == "hit";
  if (hit) {
    ++stats_.checkpoint_hits;
    registry.counter("recovery.checkpoint_hits").add();
    if (claims_lineage) {
      // Consume the lineage slot the skipped job would have claimed, so
      // downstream jobs keep the sequence numbers of an uninterrupted run.
      obs::pipeline::StageScope scope(stage);
      (void)obs::pipeline::claim();
    }
  } else {
    ++stats_.checkpoint_misses;
    registry.counter("recovery.checkpoint_misses").add();
    if (std::string_view(outcome) == "miss+write") {
      ++stats_.checkpoint_writes;
      registry.counter("recovery.checkpoint_writes").add();
    }
  }
  if (store_) {
    const std::size_t invalid = store_->invalid_checkpoints() + undecodable_;
    if (invalid > stats_.invalid_checkpoints) {
      registry.counter("recovery.invalid_checkpoints")
          .add(static_cast<long>(invalid - stats_.invalid_checkpoints));
      stats_.invalid_checkpoints = invalid;
    }
  }

  const std::string pipeline = obs::pipeline::current_id();
  auto& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    tracer.instant("stage_checkpoint",
                   {{"pipeline", pipeline},
                    {"stage", stage},
                    {"sequence", std::to_string(sequence)},
                    {"outcome", outcome},
                    {"key", key_hex(key)},
                    {"attempts", std::to_string(attempts)}});
  }
  if (!pipeline.empty()) {
    auto& collector = obs::pipeline::Collector::global();
    if (collector.enabled()) {
      collector.add_recovery(
          {pipeline, stage, sequence, outcome, attempts, key_hex(key)});
    }
  }
}

void StageDriver::note_undecodable(const std::string& file_name) {
  // Checksum-valid but undecodable (payload/decoder mismatch): count it
  // with the store's invalid files and fall through to recompute.
  (void)file_name;
  ++undecodable_;
}

void StageDriver::record_lsh_fallback(const std::string& stage) {
  ++stats_.lsh_fallbacks;
  obs::Registry::global().counter("recovery.lsh_fallbacks").add();
  auto& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    tracer.instant("stage_fallback",
                   {{"pipeline", obs::pipeline::current_id()},
                    {"stage", stage},
                    {"to", "exact-all-pairs"}});
  }
}

void StageDriver::park(const std::string& reason) {
  stats_.parked = true;
  obs::Registry::global().counter("recovery.parked").add();
  throw DriverParked("driver parked for resume: " + reason);
}

void StageDriver::maybe_crash(const std::string& stage) {
  if (options_.crash_after.empty() || options_.crash_after != stage) return;
  obs::Registry::global().counter("recovery.injected_crashes").add();
  throw InjectedDriverCrash("injected driver crash after stage '" + stage +
                            "'");
}

void StageDriver::maybe_inject_failure(const std::string& stage) {
  if (options_.fail_count <= 0 || options_.fail_stage != stage) return;
  --options_.fail_count;
  throw common::Error("injected stage failure for '" + stage + "'");
}

void StageDriver::sleep_for(double seconds) const {
  if (options_.retry.sleeper) {
    options_.retry.sleeper(seconds);
    return;
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace mrmc::mr::recovery

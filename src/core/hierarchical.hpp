// Agglomerative hierarchical clustering — Algorithm 2 of the paper
// (MrMC-MinH^h).
//
// An all-pairs sketch-similarity matrix is converted to distances
// (d = 1 - sim) and agglomerated bottom-up with the nearest-neighbour-chain
// algorithm (O(N^2) time, O(N^2) memory), supporting the paper's three
// linkage policies (single / average / complete) via Lance-Williams
// updates.  The resulting dendrogram is cut at similarity threshold θ:
// all merges with similarity >= θ are applied, so for complete linkage no
// pair of sequences within a flat cluster is less than θ similar — the
// paper's stated cutoff semantics.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/candidates.hpp"
#include "core/minhash.hpp"

namespace mrmc::core {

enum class Linkage { kSingle, kAverage, kComplete };

[[nodiscard]] const char* linkage_name(Linkage linkage) noexcept;

/// Dense square matrix of pairwise similarities in [0, 1].
class SimilarityMatrix {
 public:
  SimilarityMatrix() = default;
  explicit SimilarityMatrix(std::size_t n, float fill = 0.0F);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] float at(std::size_t i, std::size_t j) const noexcept {
    return data_[i * n_ + j];
  }
  void set(std::size_t i, std::size_t j, float value) noexcept {
    data_[i * n_ + j] = value;
    data_[j * n_ + i] = value;
  }
  [[nodiscard]] std::span<const float> row(std::size_t i) const noexcept {
    return {data_.data() + i * n_, n_};
  }
  /// Raw n×n storage for the blocked fill kernel.
  [[nodiscard]] float* mutable_data() noexcept { return data_.data(); }

 private:
  std::size_t n_ = 0;
  std::vector<float> data_;
};

/// All-pairs sketch similarity over the flat sketch store.  Component-match
/// runs the cache-blocked SIMD tile kernel; set-based pre-sorts once into a
/// SortedSketchStore.  When `pool` is non-null blocks/rows are computed in
/// parallel (the paper's row-wise partition, Section III-C); the result is
/// identical at any thread count.
SimilarityMatrix pairwise_similarity_matrix(const kernels::SketchMatrix& sketches,
                                            SketchEstimator estimator,
                                            common::ThreadPool* pool = nullptr);

/// vector<Sketch> convenience wrapper (gathers into a SketchMatrix first).
SimilarityMatrix pairwise_similarity_matrix(std::span<const Sketch> sketches,
                                            SketchEstimator estimator,
                                            common::ThreadPool* pool = nullptr);

/// Densify a verified candidate graph for the agglomerative path: edge
/// similarities land in their cells, the diagonal is 1, and absent pairs
/// stay 0 (i.e. maximally distant — candidate pruning can only keep
/// clusters apart, never merge them).  With an exact-backend graph this
/// reproduces pairwise_similarity_matrix bit-for-bit.  Note the dendrogram
/// stage remains O(n^2) memory; LSH only removes the pair-scoring wall.
SimilarityMatrix similarity_matrix_from_graph(
    const candidates::SparseSimilarityGraph& graph);

/// Bottom-up merge tree.  Leaves are 0..num_leaves-1; the i-th merge creates
/// node num_leaves + i.
struct Dendrogram {
  struct Merge {
    int left = -1;        ///< node id merged
    int right = -1;       ///< node id merged
    double distance = 0;  ///< linkage distance (1 - similarity) of the merge
    std::size_t size = 0; ///< leaves under the new node
  };
  std::size_t num_leaves = 0;
  std::vector<Merge> merges;  ///< in merge order (monotone non-decreasing distance)
};

/// NN-chain agglomeration over a similarity matrix.
Dendrogram agglomerate(const SimilarityMatrix& matrix, Linkage linkage);

/// Flat clusters: apply every merge whose similarity (1 - distance) is
/// >= theta.  Returns 0-based labels ordered by first occurrence.
std::vector<int> cut_dendrogram(const Dendrogram& dendrogram, double theta);

struct HierarchicalParams {
  double theta = 0.9;
  Linkage linkage = Linkage::kAverage;
  SketchEstimator estimator = SketchEstimator::kComponentMatch;
};

struct HierarchicalResult {
  std::vector<int> labels;
  std::size_t num_clusters = 0;
  Dendrogram dendrogram;
};

/// Convenience: matrix + agglomerate + cut in one call.
HierarchicalResult hierarchical_cluster(const kernels::SketchMatrix& sketches,
                                        const HierarchicalParams& params,
                                        common::ThreadPool* pool = nullptr);
HierarchicalResult hierarchical_cluster(std::span<const Sketch> sketches,
                                        const HierarchicalParams& params,
                                        common::ThreadPool* pool = nullptr);

/// Number of distinct labels in a labeling (labels must be 0-based dense or
/// arbitrary ints; counts unique values).
std::size_t count_clusters(std::span<const int> labels);

}  // namespace mrmc::core

file(REMOVE_RECURSE
  "CMakeFiles/mrmc_pig.dir/pig.cpp.o"
  "CMakeFiles/mrmc_pig.dir/pig.cpp.o.d"
  "CMakeFiles/mrmc_pig.dir/script.cpp.o"
  "CMakeFiles/mrmc_pig.dir/script.cpp.o.d"
  "CMakeFiles/mrmc_pig.dir/udf.cpp.o"
  "CMakeFiles/mrmc_pig.dir/udf.cpp.o.d"
  "libmrmc_pig.a"
  "libmrmc_pig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmc_pig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "pig/script.hpp"

#include <algorithm>
#include <cctype>
#include <memory>
#include <sstream>

#include "common/error.hpp"

namespace mrmc::pig {

namespace {

[[noreturn]] void syntax_error(std::size_t line, const std::string& message) {
  throw common::InvalidArgument("pig script line " + std::to_string(line) +
                                ": " + message);
}

std::string trim(std::string_view text) {
  std::size_t begin = 0, end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::string upper(std::string text) {
  for (char& c : text) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return text;
}

/// Split a statement into whitespace tokens, keeping quoted strings and
/// parenthesized argument lists intact.
std::vector<std::string> tokenize(const std::string& text, std::size_t line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '\'') {
      const auto end = text.find('\'', i + 1);
      if (end == std::string::npos) syntax_error(line, "unterminated string");
      tokens.push_back(text.substr(i, end - i + 1));
      i = end + 1;
      continue;
    }
    if (c == '(') {
      int depth = 0;
      std::size_t j = i;
      for (; j < text.size(); ++j) {
        if (text[j] == '(') ++depth;
        if (text[j] == ')' && --depth == 0) break;
      }
      if (depth != 0) syntax_error(line, "unbalanced parentheses");
      tokens.push_back(text.substr(i, j - i + 1));
      i = j + 1;
      continue;
    }
    std::size_t j = i;
    while (j < text.size() && !std::isspace(static_cast<unsigned char>(text[j])) &&
           text[j] != '(' && text[j] != '\'') {
      ++j;
    }
    tokens.push_back(text.substr(i, j - i));
    i = j;
  }
  return tokens;
}

std::string unquote(const std::string& token, std::size_t line) {
  if (token.size() < 2 || token.front() != '\'' || token.back() != '\'') {
    syntax_error(line, "expected quoted path, got '" + token + "'");
  }
  return token.substr(1, token.size() - 2);
}

/// Parse "FLATTEN(Udf(a, b, c))" or "Udf(a, b, c)".
void parse_udf_call(std::string call, Statement& statement, std::size_t line) {
  call = trim(call);
  if (upper(call).rfind("FLATTEN", 0) == 0) {
    const auto open = call.find('(');
    const auto close = call.rfind(')');
    if (open == std::string::npos || close == std::string::npos || close < open) {
      syntax_error(line, "malformed FLATTEN");
    }
    call = trim(call.substr(open + 1, close - open - 1));
  }
  const auto open = call.find('(');
  const auto close = call.rfind(')');
  if (open == std::string::npos || close == std::string::npos || close < open) {
    syntax_error(line, "expected Udf(args)");
  }
  statement.udf_name = trim(call.substr(0, open));
  std::istringstream args(call.substr(open + 1, close - open - 1));
  std::string arg;
  while (std::getline(args, arg, ',')) {
    statement.udf_args.push_back(trim(arg));
  }
}

Statement parse_statement(const std::string& text, std::size_t line) {
  Statement statement;
  const auto tokens = tokenize(text, line);
  MRMC_CHECK(!tokens.empty(), "tokenizer returned nothing");

  if (upper(tokens[0]) == "STORE") {
    // STORE <rel> INTO '<path>'
    if (tokens.size() < 4 || upper(tokens[2]) != "INTO") {
      syntax_error(line, "expected STORE <rel> INTO '<path>'");
    }
    statement.kind = Statement::Kind::kStore;
    statement.source = tokens[1];
    statement.udf_name = unquote(tokens[3], line);  // reuse: path
    return statement;
  }

  // <alias> = <OP> ...
  if (tokens.size() < 3 || tokens[1] != "=") {
    syntax_error(line, "expected '<alias> = <operator> ...'");
  }
  statement.target = tokens[0];
  const std::string op = upper(tokens[2]);

  if (op == "LOAD") {
    statement.kind = Statement::Kind::kLoad;
    if (tokens.size() < 4) syntax_error(line, "LOAD needs a path");
    statement.source = unquote(tokens[3], line);
    return statement;
  }
  if (op == "GROUP") {
    if (tokens.size() >= 6 && upper(tokens[4]) == "BY" && !tokens[5].empty() &&
        tokens[5][0] == '$') {
      statement.kind = Statement::Kind::kGroupBy;
      statement.source = tokens[3];
      statement.field = std::stoul(tokens[5].substr(1));
      return statement;
    }
    if (tokens.size() < 5 || upper(tokens[4]) != "ALL") {
      syntax_error(line, "expected GROUP <rel> ALL or GROUP <rel> BY $<field>");
    }
    statement.kind = Statement::Kind::kGroupAll;
    statement.source = tokens[3];
    return statement;
  }
  if (op == "DISTINCT") {
    statement.kind = Statement::Kind::kDistinct;
    if (tokens.size() < 4) syntax_error(line, "DISTINCT needs a relation");
    statement.source = tokens[3];
    return statement;
  }
  if (op == "LIMIT") {
    statement.kind = Statement::Kind::kLimit;
    if (tokens.size() < 5) syntax_error(line, "LIMIT needs <rel> <count>");
    statement.source = tokens[3];
    statement.literal = std::stod(tokens[4]);
    return statement;
  }
  if (op == "ORDER") {
    // X = ORDER <rel> BY $<field> [DESC]
    if (tokens.size() < 6 || upper(tokens[4]) != "BY" || tokens[5].empty() ||
        tokens[5][0] != '$') {
      syntax_error(line, "expected ORDER <rel> BY $<field> [DESC]");
    }
    statement.kind = Statement::Kind::kOrderBy;
    statement.source = tokens[3];
    statement.field = std::stoul(tokens[5].substr(1));
    statement.descending = tokens.size() > 6 && upper(tokens[6]) == "DESC";
    return statement;
  }
  if (op == "FILTER") {
    // X = FILTER <rel> BY $<field> <op> <literal>
    if (tokens.size() < 8 || upper(tokens[4]) != "BY" || tokens[5].empty() ||
        tokens[5][0] != '$') {
      syntax_error(line, "expected FILTER <rel> BY $<field> <op> <value>");
    }
    statement.kind = Statement::Kind::kFilter;
    statement.source = tokens[3];
    statement.field = std::stoul(tokens[5].substr(1));
    statement.comparison = tokens[6];
    statement.literal = std::stod(tokens[7]);
    return statement;
  }
  if (op == "FOREACH") {
    // X = FOREACH <rel | (GROUP rel ALL)> GENERATE FLATTEN(Udf(args))
    statement.kind = Statement::Kind::kForeach;
    if (tokens.size() < 5) syntax_error(line, "malformed FOREACH");
    std::size_t generate_index = 4;
    if (tokens[3].front() == '(') {
      // (GROUP rel ALL)
      const auto inner = tokenize(tokens[3].substr(1, tokens[3].size() - 2), line);
      if (inner.size() != 3 || upper(inner[0]) != "GROUP" ||
          upper(inner[2]) != "ALL") {
        syntax_error(line, "only (GROUP <rel> ALL) subexpressions are supported");
      }
      statement.source = inner[1];
      statement.inner_group_all = true;
    } else {
      statement.source = tokens[3];
    }
    if (tokens.size() <= generate_index ||
        upper(tokens[generate_index]) != "GENERATE") {
      syntax_error(line, "FOREACH needs GENERATE");
    }
    std::string call;
    for (std::size_t t = generate_index + 1; t < tokens.size(); ++t) {
      call += tokens[t];
    }
    parse_udf_call(call, statement, line);
    return statement;
  }
  syntax_error(line, "unknown operator '" + op + "'");
}

}  // namespace

std::vector<Statement> parse_script(std::string_view text) {
  std::vector<Statement> statements;
  std::istringstream stream{std::string(text)};
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const auto comment = line.find("--");
    if (comment != std::string::npos) line = line.substr(0, comment);
    // Strip a trailing semicolon.
    std::string body = trim(line);
    if (!body.empty() && body.back() == ';') body.pop_back();
    body = trim(body);
    if (body.empty()) continue;
    statements.push_back(parse_statement(body, line_number));
  }
  return statements;
}

std::string substitute_parameters(std::string_view text,
                                  const std::map<std::string, std::string>& params) {
  // Longest name first so $OUTPUT1 is not clobbered by $OUTPUT.
  std::vector<std::pair<std::string, std::string>> ordered(params.begin(),
                                                           params.end());
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    return a.first.size() > b.first.size();
  });
  std::string out{text};
  for (const auto& [name, value] : ordered) {
    const std::string token = "$" + name;
    std::size_t pos = 0;
    while ((pos = out.find(token, pos)) != std::string::npos) {
      out.replace(pos, token.size(), value);
      pos += value.size();
    }
  }
  const auto leftover = out.find('$');
  if (leftover != std::string::npos) {
    // Field references like $0 inside ORDER/FILTER are legitimate.
    const char next = leftover + 1 < out.size() ? out[leftover + 1] : ' ';
    if (!std::isdigit(static_cast<unsigned char>(next))) {
      throw common::InvalidArgument("pig script: unresolved parameter near '" +
                                    out.substr(leftover, 16) + "'");
    }
  }
  return out;
}

namespace {

/// Instantiate one of the paper's UDFs from its script call.  Numeric
/// arguments configure the UDF; field-name arguments are ignored (the UDFs
/// read positional fields, as in the paper's Java implementations).
std::unique_ptr<Udf> make_udf(const Statement& statement, std::uint64_t seed,
                              int* last_kmer) {
  const std::string& name = statement.udf_name;
  std::vector<double> numeric;
  std::vector<std::string> words;
  for (const auto& arg : statement.udf_args) {
    if (arg.empty()) continue;
    if (std::isdigit(static_cast<unsigned char>(arg.front())) ||
        arg.front() == '.' || arg.front() == '-') {
      numeric.push_back(std::stod(arg));
    } else {
      words.push_back(arg);
    }
  }

  if (name == "StringGenerator") return std::make_unique<StringGenerator>();
  if (name == "TranslateToKmer") {
    MRMC_REQUIRE(!numeric.empty(), "TranslateToKmer needs $KMER");
    *last_kmer = static_cast<int>(numeric[0]);
    return std::make_unique<TranslateToKmer>(*last_kmer);
  }
  if (name == "CalculateMinwiseHash") {
    MRMC_REQUIRE(!numeric.empty(), "CalculateMinwiseHash needs $NUMHASH");
    // The paper's $DIV (a prime > feature-set size) parameterizes the hash
    // family; we fold it into the seed of our fixed-prime family.  An
    // optional `cminhash` word swaps in the C-MinHash affine-composition
    // scheme (same dialect extension style as `lsh` below).
    const auto div_seed =
        numeric.size() > 1 ? static_cast<std::uint64_t>(numeric[1]) : 0;
    auto scheme = core::SketchScheme::kUniversal;
    for (const auto& word : words) {
      if (word == "cminhash") scheme = core::SketchScheme::kCMinHash;
    }
    return std::make_unique<CalculateMinwiseHash>(
        static_cast<std::size_t>(numeric[0]), *last_kmer, seed ^ div_seed,
        scheme);
  }
  if (name == "CalculatePairwiseSimilarity") {
    // Optional extension args beyond the paper's script: an `lsh` word
    // switches pair enumeration to the banded candidate backend, with the
    // last numeric arg (if any) as the θ the band shape is chosen from.
    core::candidates::Params candidates;
    for (const auto& word : words) {
      if (word == "lsh") candidates.backend = core::candidates::Backend::kLshBanded;
    }
    const double theta = numeric.empty() ? 0.9 : numeric.back();
    return std::make_unique<CalculatePairwiseSimilarity>(
        core::SketchEstimator::kComponentMatch, candidates, theta);
  }
  if (name == "AgglomerativeHierarchicalClustering") {
    core::Linkage linkage = core::Linkage::kAverage;
    for (const auto& word : words) {
      if (word == "single") linkage = core::Linkage::kSingle;
      if (word == "average") linkage = core::Linkage::kAverage;
      if (word == "complete") linkage = core::Linkage::kComplete;
    }
    MRMC_REQUIRE(!numeric.empty(),
                 "AgglomerativeHierarchicalClustering needs $CUTOFF");
    return std::make_unique<AgglomerativeHierarchicalClustering>(
        linkage, numeric.back());
  }
  if (name == "GreedyClustering") {
    MRMC_REQUIRE(!numeric.empty(), "GreedyClustering needs $CUTOFF");
    return std::make_unique<GreedyClustering>(numeric.back(),
                                              core::SketchEstimator::kSetBased);
  }
  throw common::InvalidArgument("pig script: unknown UDF '" + name + "'");
}

bool tuples_equal(const Tuple& a, const Tuple& b);

bool values_equal(const Value& a, const Value& b) {
  if (a.index() != b.index()) return false;
  return std::visit(
      [&b](const auto& va) {
        using T = std::decay_t<decltype(va)>;
        const auto& vb = std::get<T>(b);
        if constexpr (std::is_same_v<T, Bag>) {
          if (va.size() != vb.size()) return false;
          for (std::size_t i = 0; i < va.size(); ++i) {
            if (!tuples_equal(va[i], vb[i])) return false;
          }
          return true;
        } else {
          return va == vb;
        }
      },
      a);
}

bool tuples_equal(const Tuple& a, const Tuple& b) {
  if (a.fields.size() != b.fields.size()) return false;
  for (std::size_t i = 0; i < a.fields.size(); ++i) {
    if (!values_equal(a.fields[i], b.fields[i])) return false;
  }
  return true;
}

double numeric_field(const Tuple& tuple, std::size_t field) {
  MRMC_REQUIRE(field < tuple.fields.size(), "field index out of range");
  const Value& value = tuple.fields[field];
  if (const auto* l = std::get_if<long>(&value)) return static_cast<double>(*l);
  if (const auto* d = std::get_if<double>(&value)) return *d;
  throw common::InvalidArgument("pig script: field is not numeric");
}

bool compare_values(const Value& a, const Value& b) {
  // Order: by type index first, then by value for comparable types.
  if (a.index() != b.index()) return a.index() < b.index();
  if (const auto* s = std::get_if<std::string>(&a)) return *s < std::get<std::string>(b);
  if (const auto* l = std::get_if<long>(&a)) return *l < std::get<long>(b);
  if (const auto* d = std::get_if<double>(&a)) return *d < std::get<double>(b);
  return false;  // lists/bags: stable order
}

}  // namespace

ScriptResult run_script(PigContext& context, std::string_view text,
                        const std::map<std::string, std::string>& params,
                        std::uint64_t udf_seed) {
  const std::string resolved = substitute_parameters(text, params);
  const auto statements = parse_script(resolved);

  ScriptResult result;
  int last_kmer = 5;  // TranslateToKmer updates this for CalculateMinwiseHash

  auto relation_of = [&](const std::string& alias) -> const Relation& {
    const auto it = result.relations.find(alias);
    if (it == result.relations.end()) {
      throw common::InvalidArgument("pig script: unknown alias '" + alias + "'");
    }
    return it->second;
  };

  for (const auto& statement : statements) {
    switch (statement.kind) {
      case Statement::Kind::kLoad:
        result.relations[statement.target] = context.load_fasta(statement.source);
        break;
      case Statement::Kind::kForeach: {
        const Relation* input = &relation_of(statement.source);
        Relation grouped;
        if (statement.inner_group_all) {
          grouped = context.group_all(*input);
          input = &grouped;
        }
        const auto udf = make_udf(statement, udf_seed, &last_kmer);
        result.relations[statement.target] = context.foreach_generate(*input, *udf);
        break;
      }
      case Statement::Kind::kGroupAll:
        result.relations[statement.target] =
            context.group_all(relation_of(statement.source));
        break;
      case Statement::Kind::kGroupBy:
        result.relations[statement.target] =
            context.group_by(relation_of(statement.source), statement.field);
        break;
      case Statement::Kind::kDistinct: {
        const Relation& input = relation_of(statement.source);
        Relation output;
        for (const Tuple& tuple : input) {
          const bool seen = std::any_of(
              output.begin(), output.end(),
              [&](const Tuple& existing) { return tuples_equal(existing, tuple); });
          if (!seen) output.push_back(tuple);
        }
        result.relations[statement.target] = std::move(output);
        break;
      }
      case Statement::Kind::kOrderBy: {
        Relation output = relation_of(statement.source);
        std::stable_sort(output.begin(), output.end(),
                         [&](const Tuple& a, const Tuple& b) {
                           const bool less = compare_values(
                               a.fields.at(statement.field),
                               b.fields.at(statement.field));
                           const bool greater = compare_values(
                               b.fields.at(statement.field),
                               a.fields.at(statement.field));
                           return statement.descending ? greater : less;
                         });
        result.relations[statement.target] = std::move(output);
        break;
      }
      case Statement::Kind::kLimit: {
        Relation output = relation_of(statement.source);
        const auto count = static_cast<std::size_t>(statement.literal);
        if (output.size() > count) output.resize(count);
        result.relations[statement.target] = std::move(output);
        break;
      }
      case Statement::Kind::kFilter: {
        const Relation& input = relation_of(statement.source);
        Relation output;
        for (const Tuple& tuple : input) {
          const double value = numeric_field(tuple, statement.field);
          const double rhs = statement.literal;
          bool keep = false;
          if (statement.comparison == ">") keep = value > rhs;
          else if (statement.comparison == "<") keep = value < rhs;
          else if (statement.comparison == ">=") keep = value >= rhs;
          else if (statement.comparison == "<=") keep = value <= rhs;
          else if (statement.comparison == "==") keep = value == rhs;
          else if (statement.comparison == "!=") keep = value != rhs;
          else {
            throw common::InvalidArgument("pig script: bad comparison '" +
                                          statement.comparison + "'");
          }
          if (keep) output.push_back(tuple);
        }
        result.relations[statement.target] = std::move(output);
        break;
      }
      case Statement::Kind::kStore:
        context.store(relation_of(statement.source), statement.udf_name);
        result.stored_paths.push_back(statement.udf_name);
        break;
    }
  }
  result.sim_time_s = context.sim_time_s();
  result.jobs_run = context.job_history().size();
  return result;
}

std::string_view algorithm3_script() {
  return R"(-- MrMC-MinH, Algorithm 3 (Rasheed & Rangwala 2013)
A = LOAD '$INPUT' USING FastaStorage;
B = FOREACH A GENERATE FLATTEN(StringGenerator(seq, readid));
C = FOREACH B GENERATE FLATTEN(TranslateToKmer(seq, seqid, $KMER));
E = FOREACH C GENERATE FLATTEN(CalculateMinwiseHash(seqkmer, seqid2, $NUMHASH, $DIV));
I = GROUP E ALL;
J = FOREACH I GENERATE FLATTEN(CalculatePairwiseSimilarity(minwise, F));
K = FOREACH (GROUP J ALL) GENERATE FLATTEN(AgglomerativeHierarchicalClustering(similaritymatrix, $LINK, $NUMHASH, $CUTOFF));
L = FOREACH I GENERATE FLATTEN(GreedyClustering(F, $NUMHASH, $CUTOFF));
STORE K INTO '$OUTPUT1';
STORE L INTO '$OUTPUT2';
)";
}

}  // namespace mrmc::pig

// Greedy clustering — Algorithm 1 of the paper (MrMC-MinH^g).
//
// Incremental procedure: pick the first unassigned sequence, open a new
// cluster with it as representative, and sweep the remaining unassigned
// sequences, absorbing every one whose sketch similarity to the
// representative is >= theta.  Repeat until all sequences are assigned.
// Worst case O(N * #clusters) sketch comparisons; the input set shrinks
// every pass, which is why the paper's greedy variant is ~2x faster than
// the hierarchical one.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/candidates.hpp"
#include "core/minhash.hpp"

namespace mrmc::core {

struct GreedyParams {
  double theta = 0.9;  ///< similarity threshold θ
  SketchEstimator estimator = SketchEstimator::kSetBased;
};

struct GreedyResult {
  std::vector<int> labels;       ///< cluster id per input sequence, 0-based
  std::size_t num_clusters = 0;
  std::vector<std::size_t> representatives;  ///< input index anchoring each cluster
  std::size_t comparisons = 0;   ///< sketch comparisons performed
};

/// Greedy sweep over the flat sketch store.  Component-match comparisons run
/// the batched count_equal kernel over contiguous rows; set-based pre-sorts
/// every sketch once into a SortedSketchStore.  Labels, representatives and
/// the comparison count are identical to the span overload.
GreedyResult greedy_cluster(const kernels::SketchMatrix& sketches,
                            const GreedyParams& params);

GreedyResult greedy_cluster(std::span<const Sketch> sketches,
                            const GreedyParams& params);

/// Algorithm 1 over a verified candidate graph instead of raw sketches: a
/// sequence only ever joins a representative it shares a graph edge with,
/// so the sweep is O(V + E) instead of O(N * #clusters) comparisons.  When
/// the graph contains every pair with similarity >= theta (always true for
/// the exact backend), labels, representatives and cluster count are
/// identical to greedy_cluster on the underlying sketches; `comparisons`
/// counts edge inspections.  `params.estimator` is unused — similarities
/// were fixed at verification time.
GreedyResult greedy_cluster_graph(const candidates::SparseSimilarityGraph& graph,
                                  const GreedyParams& params);

}  // namespace mrmc::core

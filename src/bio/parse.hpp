// Shared error policy for the FASTA/FASTQ parsers.  Real sequencer dumps
// routinely carry a few malformed records (empty ids, headers with no
// sequence, stray text, CRLF line endings); strict mode throws on the first
// one, lenient mode quarantines them and keeps the rest of the file.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mrmc::bio {

enum class OnParseError {
  kThrow,  ///< strict: first malformed record raises common::IoError
  kSkip,   ///< lenient: quarantine malformed records, parse the rest
};

struct ParseOptions {
  OnParseError on_error = OnParseError::kThrow;
};

/// What a lenient parse did: records kept, records quarantined, and one
/// reason string per quarantined record (in file order).  Every skip also
/// bumps the process-wide "bio.malformed_records" counter, and the *_file
/// readers log a per-file skip count.
struct ParseReport {
  std::size_t records = 0;
  std::size_t skipped = 0;
  std::vector<std::string> reasons;
};

namespace detail {
/// Count one quarantined record: bumps "bio.malformed_records" and appends
/// the reason to `report` (nullptr ok).  Shared by the FASTA/FASTQ parsers.
void note_malformed(ParseReport* report, const std::string& reason);
}  // namespace detail

}  // namespace mrmc::bio

#include "baselines/metacluster_like.hpp"

#include <algorithm>
#include <numeric>

#include "baselines/word_stats.hpp"
#include "common/error.hpp"
#include "common/prng.hpp"
#include "common/timer.hpp"
#include "core/hierarchical.hpp"

namespace mrmc::baselines {

namespace {

using Vec = std::vector<double>;

Vec centroid_of(const std::vector<Vec>& freqs, std::span<const std::size_t> members) {
  Vec centroid(freqs.front().size(), 0.0);
  for (const std::size_t m : members) {
    for (std::size_t w = 0; w < centroid.size(); ++w) centroid[w] += freqs[m][w];
  }
  for (double& v : centroid) v /= static_cast<double>(members.size());
  return centroid;
}

/// 2-medoid-style bisection: seed two centroids from the group's farthest
/// Spearman pair approximation, then run a few assignment/update rounds.
std::pair<std::vector<std::size_t>, std::vector<std::size_t>> bisect(
    const std::vector<Vec>& freqs, const std::vector<std::size_t>& group,
    std::size_t rounds, common::Xoshiro256& rng, std::size_t* comparisons) {
  // Seed: a random member and the member farthest from it.
  const std::size_t seed_a = group[rng.bounded(group.size())];
  std::size_t seed_b = group.front();
  double farthest = -1.0;
  for (const std::size_t m : group) {
    ++*comparisons;
    const double d = spearman_distance(freqs[seed_a], freqs[m]);
    if (d > farthest) {
      farthest = d;
      seed_b = m;
    }
  }

  Vec centroid_a = freqs[seed_a];
  Vec centroid_b = freqs[seed_b];
  std::vector<std::size_t> left, right;
  for (std::size_t round = 0; round < rounds; ++round) {
    left.clear();
    right.clear();
    for (const std::size_t m : group) {
      *comparisons += 2;
      const double da = spearman_distance(centroid_a, freqs[m]);
      const double db = spearman_distance(centroid_b, freqs[m]);
      (da <= db ? left : right).push_back(m);
    }
    if (left.empty() || right.empty()) break;
    centroid_a = centroid_of(freqs, left);
    centroid_b = centroid_of(freqs, right);
  }
  if (left.empty() || right.empty()) {
    // Degenerate split: halve deterministically to guarantee progress.
    left.assign(group.begin(), group.begin() + static_cast<long>(group.size() / 2));
    right.assign(group.begin() + static_cast<long>(group.size() / 2), group.end());
  }
  return {std::move(left), std::move(right)};
}

}  // namespace

BaselineResult metacluster_cluster(std::span<const bio::FastaRecord> reads,
                                   const MetaClusterParams& params) {
  MRMC_REQUIRE(params.max_group >= 2, "max_group must be >= 2");
  common::Stopwatch watch;
  BaselineResult result;
  const std::size_t n = reads.size();
  result.labels.assign(n, -1);
  if (n == 0) return result;

  std::vector<Vec> freqs;
  freqs.reserve(n);
  for (const auto& read : reads) {
    freqs.push_back(word_frequencies(read.seq, params.word_size));
  }

  // ---------------------------------------------------- phase 1: top-down
  common::Xoshiro256 rng(params.seed);
  std::vector<std::vector<std::size_t>> groups;
  std::vector<std::vector<std::size_t>> work;
  {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t{0});
    work.push_back(std::move(all));
  }
  while (!work.empty()) {
    std::vector<std::size_t> group = std::move(work.back());
    work.pop_back();
    if (group.size() <= params.max_group) {
      groups.push_back(std::move(group));
      continue;
    }
    auto [left, right] =
        bisect(freqs, group, params.kmeans_rounds, rng, &result.comparisons);
    work.push_back(std::move(left));
    work.push_back(std::move(right));
  }

  // --------------------------------------------------- phase 2: bottom-up
  // Merge group centroids agglomeratively (complete linkage) while their
  // Spearman distance stays below the merge threshold.
  const std::size_t g = groups.size();
  std::vector<Vec> centroids;
  centroids.reserve(g);
  for (const auto& group : groups) centroids.push_back(centroid_of(freqs, group));

  core::SimilarityMatrix matrix(g, 0.0F);
  for (std::size_t i = 0; i < g; ++i) {
    matrix.set(i, i, 1.0F);
    for (std::size_t j = i + 1; j < g; ++j) {
      ++result.comparisons;
      const double d = spearman_distance(centroids[i], centroids[j]);
      matrix.set(i, j, static_cast<float>(1.0 - d));
    }
  }
  const core::Dendrogram dendrogram =
      core::agglomerate(matrix, core::Linkage::kComplete);
  const std::vector<int> group_labels =
      core::cut_dendrogram(dendrogram, 1.0 - params.merge_distance);

  for (std::size_t gi = 0; gi < g; ++gi) {
    for (const std::size_t member : groups[gi]) {
      result.labels[member] = group_labels[gi];
    }
  }
  result.num_clusters = core::count_clusters(result.labels);
  result.wall_s = watch.seconds();
  return result;
}

}  // namespace mrmc::baselines

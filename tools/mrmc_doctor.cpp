// mrmc_doctor — post-hoc job doctor and cross-run regression gate.
//
// Single-trace mode reads a trace written by MRMC_TRACE / --trace
// (obs::Tracer), reconstructs every simulated job from the %.17g args, and
// prints the same JobReport the in-process analyzer would have produced
// (bit-identical critical path — asserted by tests/obs/report_test.cpp).
//
//   mrmc_doctor <trace.json>                    # ANSI text to stdout
//   mrmc_doctor <trace.json> --format=json      # machine-readable
//   mrmc_doctor <trace.json> --format=html      # self-contained HTML page
//   mrmc_doctor <trace.json> -o report.html     # format from extension
//   mrmc_doctor <trace.json> --no-color
//   mrmc_doctor <trace.json> --job <pid>        # one job only
//   mrmc_doctor jobs <trace.json>               # one-line-per-job listing
//
// Pipeline mode stitches the lineage-carrying jobs of a trace back into
// end-to-end PipelineReports (byte-identical to the in-process
// obs::pipeline::Collector — asserted by tests/obs/pipeline_test.cpp):
//
//   mrmc_doctor pipeline <trace.json> [--format=...] [-o <path>]
//       [--no-color] [--bench-json=<path>]
//
// Regression mode diffs two runs' telemetry (traces, report JSON, BENCH
// records, metrics snapshots — any like pairing):
//
//   mrmc_doctor compare <baseline.json> <candidate.json>
//       [--threshold=1.25] [--noisy-threshold=2.5] [--abs-slack=0]
//       [--format=text|json|html] [-o <path>] [--no-color]
//   mrmc_doctor regress --baseline-dir=bench/baselines [--candidate-dir=.]
//       [threshold flags as above] [-o <path>]
//   mrmc_doctor index <dir>     # (re)write <dir>/BENCH_index.json
//
// `regress` walks the BENCH_index.json manifest in the baseline dir and
// compares every listed artifact against its same-named candidate; missing
// candidates warn and skip rather than fail, so a partial bench run still
// gates what it produced.
//
// Exit status: 0 success, 1 unreadable/malformed input or bad usage,
// 2 when compare/regress found at least one regression.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "common/fsio.hpp"
#include "common/mini_json.hpp"
#include "obs/pipeline.hpp"
#include "obs/regress.hpp"
#include "obs/report.hpp"

namespace {

namespace regress = mrmc::obs::regress;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <trace.json> [--format=text|json|html] [-o <path>]"
      " [--no-color] [--job <pid>]\n"
      "       %s jobs <trace.json>\n"
      "       %s pipeline <trace.json> [--format=text|json|html] [-o <path>]"
      " [--no-color] [--bench-json=<path>]\n"
      "       %s compare <baseline.json> <candidate.json>"
      " [--threshold=R] [--noisy-threshold=R] [--abs-slack=S]"
      " [--format=text|json|html] [-o <path>] [--no-color]\n"
      "       %s regress --baseline-dir=<dir> [--candidate-dir=<dir>]"
      " [threshold flags] [-o <path>] [--no-color]\n"
      "       %s index <dir>\n",
      argv0, argv0, argv0, argv0, argv0, argv0);
  return 1;
}

/// Flags shared by every mode; positional args collect in `positional`.
struct Options {
  std::vector<std::string> positional;
  std::string format;
  std::string output_path;
  std::string baseline_dir;
  std::string candidate_dir = ".";
  std::string bench_json_path;
  long job_pid = -1;  ///< --job selector; -1 = all jobs
  regress::Thresholds thresholds;
  bool color = true;
  bool ok = true;
};

Options parse_options(int argc, char** argv, int first) {
  Options options;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* name) -> const char* {
      const std::string prefix = std::string(name) + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size() : nullptr;
    };
    if (const char* fmt = value_of("--format")) {
      options.format = fmt;
    } else if (const char* ratio = value_of("--threshold")) {
      options.thresholds.ratio = std::atof(ratio);
    } else if (const char* noisy = value_of("--noisy-threshold")) {
      options.thresholds.noisy_ratio = std::atof(noisy);
    } else if (const char* slack = value_of("--abs-slack")) {
      options.thresholds.abs_slack = std::atof(slack);
    } else if (const char* base = value_of("--baseline-dir")) {
      options.baseline_dir = base;
    } else if (const char* cand = value_of("--candidate-dir")) {
      options.candidate_dir = cand;
    } else if (const char* bench = value_of("--bench-json")) {
      options.bench_json_path = bench;
    } else if (const char* pid = value_of("--job")) {
      options.job_pid = std::atol(pid);
    } else if (arg == "--job") {
      if (++i >= argc) {
        options.ok = false;
        return options;
      }
      options.job_pid = std::atol(argv[i]);
    } else if (arg == "-o" || arg == "--output") {
      if (++i >= argc) {
        options.ok = false;
        return options;
      }
      options.output_path = argv[i];
    } else if (arg == "--no-color") {
      options.color = false;
    } else if (!arg.empty() && arg[0] == '-') {
      options.ok = false;
      return options;
    } else {
      options.positional.push_back(arg);
    }
  }
  return options;
}

/// Explicit --format wins, then the output extension, then text.
std::string resolve_format(const Options& options) {
  if (!options.format.empty()) return options.format;
  const auto ends_with = [&](const std::string& suffix) {
    return options.output_path.size() >= suffix.size() &&
           options.output_path.compare(
               options.output_path.size() - suffix.size(), suffix.size(),
               suffix) == 0;
  };
  return ends_with(".html") ? "html" : ends_with(".json") ? "json" : "text";
}

/// Write `rendered` to -o (or stdout).  Returns false on an unwritable path.
bool deliver(const Options& options, const std::string& rendered,
             const char* what) {
  if (options.output_path.empty()) {
    std::cout << rendered;
    return true;
  }
  if (!mrmc::common::write_file_atomic(options.output_path, rendered)) {
    std::fprintf(stderr, "mrmc_doctor: cannot write %s\n",
                 options.output_path.c_str());
    return false;
  }
  std::fprintf(stderr, "mrmc_doctor: wrote %s to %s\n", what,
               options.output_path.c_str());
  return true;
}

/// Render a finished comparison and turn it into an exit status.
int finish_compare(const Options& options, const regress::CompareReport& report,
                   const std::string& format) {
  std::string rendered;
  if (format == "json") {
    rendered = regress::to_json(report);
  } else if (format == "html") {
    rendered = regress::to_html(report);
  } else {
    rendered =
        regress::to_text(report, options.color && options.output_path.empty());
  }
  if (!deliver(options, rendered, "comparison")) return 1;
  // An -o run still narrates pass/fail on stderr so CI logs show the verdict.
  if (!options.output_path.empty()) {
    std::fprintf(stderr, "mrmc_doctor: %zu compared, %zu regression(s)\n",
                 report.compared, report.regressions);
  }
  return report.ok() ? 0 : 2;
}

int run_compare(const Options& options) {
  const std::string format = resolve_format(options);
  if (format != "text" && format != "json" && format != "html") return 1;
  try {
    const auto baseline = regress::load_rows(options.positional[0]);
    const auto candidate = regress::load_rows(options.positional[1]);
    return finish_compare(
        options, regress::compare(baseline, candidate, options.thresholds),
        format);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mrmc_doctor: %s\n", error.what());
    return 1;
  }
}

int run_regress(const Options& options) {
  const std::string format = resolve_format(options);
  if (format != "text" && format != "json" && format != "html") return 1;
  const std::string manifest_path =
      options.baseline_dir + "/BENCH_index.json";
  std::ifstream manifest_file(manifest_path);
  if (!manifest_file) {
    std::fprintf(stderr, "mrmc_doctor: cannot open manifest %s\n",
                 manifest_path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << manifest_file.rdbuf();

  std::vector<regress::MetricRow> baseline;
  std::vector<regress::MetricRow> candidate;
  std::size_t compared_files = 0;
  try {
    const auto manifest = mrmc::common::parse_json(buffer.str());
    for (const auto& entry : manifest.at("benches").array) {
      const std::string file = entry.at("file").string;
      const std::string candidate_path = options.candidate_dir + "/" + file;
      if (!std::ifstream(candidate_path)) {
        std::fprintf(stderr,
                     "mrmc_doctor: candidate %s not found, skipping %s\n",
                     candidate_path.c_str(), file.c_str());
        continue;
      }
      auto base_rows = regress::load_rows(options.baseline_dir + "/" + file);
      auto cand_rows = regress::load_rows(candidate_path);
      baseline.insert(baseline.end(),
                      std::make_move_iterator(base_rows.begin()),
                      std::make_move_iterator(base_rows.end()));
      candidate.insert(candidate.end(),
                       std::make_move_iterator(cand_rows.begin()),
                       std::make_move_iterator(cand_rows.end()));
      ++compared_files;
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mrmc_doctor: %s\n", error.what());
    return 1;
  }
  if (compared_files == 0) {
    std::fprintf(stderr,
                 "mrmc_doctor: no baseline/candidate pairs to compare under "
                 "%s\n",
                 options.baseline_dir.c_str());
    return 1;
  }
  std::fprintf(stderr, "mrmc_doctor: comparing %zu artifact file(s) against %s\n",
               compared_files, options.baseline_dir.c_str());
  return finish_compare(
      options, regress::compare(baseline, candidate, options.thresholds),
      format);
}

int run_index(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::pair<std::string, std::string>> benches;  // file, bench
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string file = entry.path().filename().string();
    if (file.rfind("BENCH_", 0) != 0 || file == "BENCH_index.json" ||
        entry.path().extension() != ".json") {
      continue;
    }
    std::string bench = file.substr(6, file.size() - 6 - 5);  // strip affixes
    std::ifstream in(entry.path());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
      const auto root = mrmc::common::parse_json(buffer.str());
      if (root.has("bench")) bench = root.at("bench").string;
    } catch (const std::exception&) {
      std::fprintf(stderr, "mrmc_doctor: skipping unparseable %s\n",
                   file.c_str());
      continue;
    }
    benches.emplace_back(file, bench);
  }
  if (ec) {
    std::fprintf(stderr, "mrmc_doctor: cannot list %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  std::sort(benches.begin(), benches.end());
  std::string out = "{\"schema_version\": 1, \"benches\": [\n";
  for (std::size_t i = 0; i < benches.size(); ++i) {
    if (i > 0) out += ",\n";
    out += "  {\"file\": \"" + benches[i].first + "\", \"bench\": \"" +
           benches[i].second + "\"}";
  }
  out += "\n]}\n";
  const std::string path = dir + "/BENCH_index.json";
  if (!mrmc::common::write_file_atomic(path, out)) {
    std::fprintf(stderr, "mrmc_doctor: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "mrmc_doctor: indexed %zu bench artifact(s) into %s\n",
               benches.size(), path.c_str());
  return 0;
}

/// `jobs <trace>`: one line per simulated job so a user can find the pid to
/// pass to `--job` (or the pipeline a job belongs to) without a full report.
int run_jobs(const Options& options) {
  using namespace mrmc::obs;
  std::vector<report::JobReport> reports;
  const std::string& trace_path = options.positional[0];
  try {
    reports = report::analyze_trace_file(trace_path);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mrmc_doctor: %s\n", error.what());
    return 1;
  }
  if (reports.empty()) {
    std::fprintf(stderr,
                 "mrmc_doctor: no simulated jobs in %s (was the trace written "
                 "with MRMC_TRACE by this library?)\n",
                 trace_path.c_str());
    return 1;
  }
  std::string out;
  for (const auto& job : reports) {
    out += "pid " + std::to_string(job.trace_pid) + "  \"" + job.name +
           "\"  sim total " + std::to_string(job.total_s) + "s  maps " +
           std::to_string(job.map_phase.task_count) + "  reduces " +
           std::to_string(job.reduce_phase.task_count);
    if (!job.pipeline.empty()) {
      out += "  pipeline \"" + job.pipeline + "\" stage \"" + job.stage +
             "\" seq " + std::to_string(job.sequence);
      if (job.round >= 0) out += " round " + std::to_string(job.round);
    }
    out += "\n";
  }
  if (!deliver(options, out, "job listing")) return 1;
  return 0;
}

/// `pipeline <trace>`: stitch lineage-carrying jobs into PipelineReports.
int run_pipeline_mode(const Options& options) {
  const std::string format = resolve_format(options);
  if (format != "text" && format != "json" && format != "html") return 1;

  using namespace mrmc::obs;
  std::vector<pipeline::PipelineReport> reports;
  const std::string& trace_path = options.positional[0];
  try {
    reports = pipeline::analyze_trace_file(trace_path);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mrmc_doctor: %s\n", error.what());
    return 1;
  }
  if (reports.empty()) {
    std::fprintf(stderr,
                 "mrmc_doctor: no pipelines in %s — no job carries lineage "
                 "(drive the jobs through core::run_pipeline or a "
                 "pig script, or open an obs::pipeline::PipelineScope)\n",
                 trace_path.c_str());
    return 1;
  }

  const std::span<const pipeline::PipelineReport> all(reports);
  if (!options.bench_json_path.empty()) {
    if (!mrmc::common::write_file_atomic(options.bench_json_path,
                                         pipeline::to_bench_json(all))) {
      std::fprintf(stderr, "mrmc_doctor: cannot write %s\n",
                   options.bench_json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "mrmc_doctor: wrote BENCH records to %s\n",
                 options.bench_json_path.c_str());
  }

  std::string rendered;
  if (format == "json") {
    rendered = pipeline::to_json(all);
  } else if (format == "html") {
    rendered = pipeline::to_html(all);
  } else {
    rendered =
        pipeline::to_text(all, options.color && options.output_path.empty());
  }
  if (!deliver(options, rendered, (format + " pipeline report").c_str())) {
    return 1;
  }
  return 0;
}

int run_single_trace(const Options& options) {
  const std::string format = resolve_format(options);
  if (format != "text" && format != "json" && format != "html") return 1;

  using namespace mrmc::obs;
  std::vector<report::JobReport> reports;
  const std::string& trace_path = options.positional[0];
  try {
    reports = report::analyze_trace_file(trace_path);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mrmc_doctor: %s\n", error.what());
    return 1;
  }
  if (reports.empty()) {
    std::fprintf(stderr,
                 "mrmc_doctor: no simulated jobs in %s (was the trace written "
                 "with MRMC_TRACE by this library?)\n",
                 trace_path.c_str());
    return 1;
  }
  if (options.job_pid >= 0) {
    const auto pid = static_cast<std::uint32_t>(options.job_pid);
    std::vector<report::JobReport> selected;
    for (auto& job : reports) {
      if (job.trace_pid == pid) selected.push_back(std::move(job));
    }
    if (selected.empty()) {
      std::string available;
      for (const auto& job : reports) {
        if (!available.empty()) available += ", ";
        available += std::to_string(job.trace_pid);
      }
      std::fprintf(stderr,
                   "mrmc_doctor: no job with pid %ld in %s (available: %s — "
                   "see `mrmc_doctor jobs`)\n",
                   options.job_pid, trace_path.c_str(), available.c_str());
      return 1;
    }
    reports = std::move(selected);
  }

  const std::span<const report::JobReport> all(reports);
  std::string rendered;
  if (format == "json") {
    rendered = report::to_json(all);
  } else if (format == "html") {
    rendered = report::to_html(all);
  } else {
    rendered =
        report::to_text(all, options.color && options.output_path.empty());
  }
  if (!deliver(options, rendered, (format + " report").c_str())) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2) {
    const std::string mode = argv[1];
    if (mode == "-h" || mode == "--help") {
      usage(argv[0]);
      return 0;
    }
    if (mode == "jobs") {
      const Options options = parse_options(argc, argv, 2);
      if (!options.ok || options.positional.size() != 1) return usage(argv[0]);
      return run_jobs(options);
    }
    if (mode == "pipeline") {
      const Options options = parse_options(argc, argv, 2);
      if (!options.ok || options.positional.size() != 1) return usage(argv[0]);
      return run_pipeline_mode(options);
    }
    if (mode == "compare") {
      const Options options = parse_options(argc, argv, 2);
      if (!options.ok || options.positional.size() != 2) return usage(argv[0]);
      return run_compare(options);
    }
    if (mode == "regress") {
      const Options options = parse_options(argc, argv, 2);
      if (!options.ok || !options.positional.empty() ||
          options.baseline_dir.empty()) {
        return usage(argv[0]);
      }
      return run_regress(options);
    }
    if (mode == "index") {
      const Options options = parse_options(argc, argv, 2);
      if (!options.ok || options.positional.size() != 1) return usage(argv[0]);
      return run_index(options.positional[0]);
    }
  }
  const Options options = parse_options(argc, argv, 1);
  if (!options.ok || options.positional.size() != 1) return usage(argv[0]);
  return run_single_trace(options);
}

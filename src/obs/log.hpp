// Structured, leveled logging for the whole library.
//
// Records are key=value structured (not printf-formatted): a Logger is named
// after its subsystem ("mr.job", "core.pipeline", "pig") and every call
// carries a short message plus typed fields, so log output is grep- and
// machine-friendly:
//
//   level=info logger=mr.job msg="job finished" job=sketch maps=12 sim_s=41.2
//
// Configuration comes from the MRMC_LOG environment variable, read once at
// first use: a comma-separated list of `level` (the default) and
// `logger-prefix=level` overrides, e.g.
//
//   MRMC_LOG=warn                 # the default when unset: warnings only
//   MRMC_LOG=debug                # everything, everywhere
//   MRMC_LOG=warn,mr=debug        # debug for mr.* only
//
// The sink is pluggable; tests install a CaptureSink to assert on records.
// Level checks on the hot path are one relaxed atomic load when the level is
// below the global minimum.
#pragma once

#include <atomic>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace mrmc::obs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

[[nodiscard]] const char* level_name(LogLevel level) noexcept;

/// Parse "debug", "info", ... (case-sensitive); returns `fallback` on junk.
[[nodiscard]] LogLevel parse_level(std::string_view text,
                                   LogLevel fallback = LogLevel::kInfo) noexcept;

/// One typed key=value pair; numeric values are rendered at construction so
/// records are plain strings by the time they reach a sink.
struct LogField {
  std::string key;
  std::string value;

  LogField(std::string k, std::string v) : key(std::move(k)), value(std::move(v)) {}
  LogField(std::string k, const char* v) : key(std::move(k)), value(v) {}
  LogField(std::string k, bool v)
      : key(std::move(k)), value(v ? "true" : "false") {}

  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  LogField(std::string k, T v)
      : key(std::move(k)), value(std::to_string(static_cast<long long>(v))) {}

  template <typename T, std::enable_if_t<std::is_floating_point_v<T>, int> = 0>
  LogField(std::string k, T v) : key(std::move(k)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", static_cast<double>(v));
    value = buf;
  }
};

struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string logger;
  std::string message;
  std::vector<LogField> fields;

  /// "level=info logger=mr.job msg=\"...\" k=v ..." (one line, no newline).
  [[nodiscard]] std::string format() const;

  /// Value of the first field named `key`, or "" when absent.
  [[nodiscard]] std::string_view field(std::string_view key) const noexcept;
};

class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void write(const LogRecord& record) = 0;
};

/// Thread-safe in-memory sink for tests.
class CaptureSink final : public LogSink {
 public:
  void write(const LogRecord& record) override;

  [[nodiscard]] std::vector<LogRecord> records() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<LogRecord> records_;
};

/// Process-wide logging configuration (levels + sink).
class LogConfig {
 public:
  /// The singleton; first call applies the MRMC_LOG environment variable.
  static LogConfig& global();

  /// Effective level for a logger name: most specific prefix rule wins,
  /// otherwise the default level.
  [[nodiscard]] LogLevel level_for(std::string_view logger) const;

  /// Cheap pre-filter: no rule anywhere enables below this level.
  [[nodiscard]] bool maybe_enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >=
           min_level_.load(std::memory_order_relaxed);
  }

  void set_default_level(LogLevel level);
  void set_rule(std::string logger_prefix, LogLevel level);
  void clear_rules();

  /// Apply an MRMC_LOG-style spec ("warn,mr=debug"); replaces all rules.
  void configure(std::string_view spec);

  /// Install a sink (nullptr restores the default stderr sink).
  void set_sink(LogSink* sink);

  void dispatch(const LogRecord& record);

 private:
  LogConfig();

  mutable std::mutex mutex_;
  LogLevel default_level_ = LogLevel::kWarn;
  std::vector<std::pair<std::string, LogLevel>> rules_;  // prefix -> level
  std::atomic<int> min_level_{static_cast<int>(LogLevel::kWarn)};
  LogSink* sink_ = nullptr;  // nullptr = stderr

  void recompute_min_locked();
};

/// Named front end; cheap to construct, share, and copy.
class Logger {
 public:
  explicit Logger(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] bool enabled(LogLevel level) const {
    LogConfig& config = LogConfig::global();
    return config.maybe_enabled(level) && level >= config.level_for(name_);
  }

  void log(LogLevel level, std::string_view message,
           std::initializer_list<LogField> fields = {}) const;

  void trace(std::string_view message,
             std::initializer_list<LogField> fields = {}) const {
    log(LogLevel::kTrace, message, fields);
  }
  void debug(std::string_view message,
             std::initializer_list<LogField> fields = {}) const {
    log(LogLevel::kDebug, message, fields);
  }
  void info(std::string_view message,
            std::initializer_list<LogField> fields = {}) const {
    log(LogLevel::kInfo, message, fields);
  }
  void warn(std::string_view message,
            std::initializer_list<LogField> fields = {}) const {
    log(LogLevel::kWarn, message, fields);
  }
  void error(std::string_view message,
             std::initializer_list<LogField> fields = {}) const {
    log(LogLevel::kError, message, fields);
  }

 private:
  std::string name_;
};

}  // namespace mrmc::obs

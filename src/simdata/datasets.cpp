#include "simdata/datasets.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace mrmc::simdata {

using common::mix64;

// ---------------------------------------------------------------- Table II

const std::vector<WholeMetagenomeSpec>& whole_metagenome_registry() {
  // Branch lengths place each species at the paper's stated taxonomic
  // separation: pairwise divergence ~ branch_i + branch_j, matched against
  // taxon_divergence() (species 0.04, genus 0.10, family 0.18, order 0.28,
  // phylum 0.42, kingdom 0.60).
  static const std::vector<WholeMetagenomeSpec> registry = {
      {"S1",
       {{"Bacillus halodurans", 0.44, 0.02, 1}, {"Bacillus subtilis", 0.44, 0.02, 1}},
       "Species", 49998, 2, true},
      {"S2",
       {{"Gluconobacter oxydans", 0.61, 0.05, 1},
        {"Granulobacter bethesdensis", 0.59, 0.05, 1}},
       "Genus", 49998, 2, true},
      {"S3",
       {{"Escherichia coli", 0.51, 0.05, 1}, {"Yersinia pestis", 0.48, 0.05, 1}},
       "Genus", 49998, 2, true},
      {"S4",
       {{"Rhodopirellula baltica", 0.55, 0.05, 1},
        {"Blastopirellula marina", 0.57, 0.05, 1}},
       "Genus", 49998, 2, true},
      {"S5",
       {{"Bacillus anthracis", 0.35, 0.09, 1},
        {"Listeria monocytogenes", 0.38, 0.09, 2}},
       "Family", 49998, 2, true},
      {"S6",
       {{"Methanocaldococcus jannaschii", 0.31, 0.09, 1},
        {"Methanococcus mariplaudis", 0.33, 0.09, 1}},
       "Family", 49998, 2, true},
      {"S7",
       {{"Thermofilum pendens", 0.58, 0.09, 1},
        {"Pyrobaculum aerophilum", 0.51, 0.09, 1}},
       "Family", 49998, 2, true},
      {"S8",
       {{"Gluconobacter oxydans", 0.61, 0.14, 1},
        {"Rhodospirillum rubrum", 0.65, 0.14, 1}},
       "Order", 49998, 2, true},
      {"S9",
       {{"Gluconobacter oxydans", 0.61, 0.09, 1},
        {"Granulobacter bethesdensis", 0.59, 0.09, 1},
        {"Nitrobacter hamburgensis", 0.62, 0.19, 8}},
       "Family,Order", 49996, 3, true},
      {"S10",
       {{"Escherichia coli", 0.51, 0.14, 1},
        {"Pseudomonas putida", 0.62, 0.14, 1},
        {"Bacillus anthracis", 0.35, 0.28, 8}},
       "Order,Phylum", 49996, 3, true},
      {"S11",
       {{"Gluconobacter oxydans", 0.61, 0.09, 1},
        {"Granulobacter bethesdensis", 0.59, 0.09, 1},
        {"Nitrobacter hamburgensis", 0.62, 0.19, 4},
        {"Rhodospirillum rubrum", 0.65, 0.19, 4}},
       "Family,Order", 99998, 4, true},
      {"S12",
       {{"Escherichia coli", 0.51, 0.02, 1},
        {"Pseudomonas putida", 0.62, 0.14, 1},
        {"Thermofilum pendens", 0.58, 0.30, 1},
        {"Pyrobaculum aerophilum", 0.51, 0.30, 1},
        {"Bacillus anthracis", 0.35, 0.21, 2},
        {"Bacillus subtilis", 0.44, 0.02, 14}},
       "Species,Order,Family,Phylum,Kingdom", 99994, 6, true},
      {"S13",
       {{"Acinetobacter baumannii SDF", 0.39, 0.15, 1},
        {"Pseudomonas entomophila L48", 0.64, 0.15, 1}},
       "-", 4000, 2, true},
      {"S14",
       {{"Ehrlichia ruminantium Gardel", 0.27, 0.08, 1},
        {"Anaplasma centrale Israel", 0.30, 0.08, 1},
        {"Neorickettsia sennetsu Miyayama", 0.41, 0.08, 1}},
       "-", 6000, 3, true},
      {"R1",
       {{"Endosymbiont A", 0.33, 0.20, 10},
        {"Endosymbiont B", 0.40, 0.20, 3},
        {"Endosymbiont C", 0.52, 0.20, 1}},
       "-", 7137, -1, false},
  };
  return registry;
}

const WholeMetagenomeSpec& whole_metagenome_spec(const std::string& sid) {
  for (const auto& spec : whole_metagenome_registry()) {
    if (spec.sid == sid) return spec;
  }
  throw common::InvalidArgument("unknown whole-metagenome sample '" + sid + "'");
}

namespace {

/// Flip weak (A/T) bases to strong (G/C) or vice versa until the genome's GC
/// content reaches `target_gc` (within one base's worth of resolution).
void shift_gc(Genome& genome, double target_gc, std::uint64_t seed) {
  const double current = genome.gc();
  const auto length = static_cast<double>(genome.seq.size());
  const auto flips_needed =
      static_cast<long>(std::lround((target_gc - current) * length));
  if (flips_needed == 0) return;

  common::Xoshiro256 rng(seed);
  long remaining = std::labs(flips_needed);
  const bool to_strong = flips_needed > 0;
  // Bounded random probing: expected O(remaining / fraction-of-candidates).
  std::size_t attempts = genome.seq.size() * 8;
  while (remaining > 0 && attempts-- > 0) {
    auto& base = genome.seq[rng.bounded(genome.seq.size())];
    const bool is_strong = base == 'G' || base == 'C';
    if (to_strong && !is_strong) {
      base = rng.chance(0.5) ? 'G' : 'C';
      --remaining;
    } else if (!to_strong && is_strong) {
      base = rng.chance(0.5) ? 'A' : 'T';
      --remaining;
    }
  }
}

}  // namespace

LabeledReads build_whole_metagenome(const WholeMetagenomeSpec& spec,
                                    const WholeMetagenomeOptions& options) {
  MRMC_REQUIRE(options.genome_length >= 1000, "genome_length too small");
  // Common ancestor GC = mean of the species' published GC contents.
  double mean_gc = 0;
  for (const auto& sp : spec.species) mean_gc += sp.gc;
  mean_gc /= static_cast<double>(spec.species.size());

  const std::uint64_t base_seed = mix64(options.seed ^ mix64(spec.paper_reads));
  // Species genomes are sampled from divergence-scaled Markov composition
  // models: close taxa share oligonucleotide composition (so their reads'
  // k-mer sets overlap), distant taxa do not — the signal the paper's k=5
  // whole-metagenome clustering relies on (see DESIGN.md §2).
  const MarkovGenomeModel ancestor(mean_gc, 0.20, base_seed);

  std::vector<Genome> genomes;
  std::vector<int> ratios;
  genomes.reserve(spec.species.size());
  for (std::size_t i = 0; i < spec.species.size(); ++i) {
    const auto& sp = spec.species[i];
    const MarkovGenomeModel model = ancestor.derive_child(
        branch_to_composition_mix(sp.branch),
        mix64(base_seed ^ (i * 0x517cc1b727220a95ULL + 3)));
    Genome genome = model.sample(sp.name, options.genome_length,
                                 mix64(base_seed ^ (i * 0x2545f4914f6cdd1dULL + 7)));
    shift_gc(genome, sp.gc, mix64(base_seed ^ (i + 0xda3e39cb94b95bdbULL)));
    genomes.push_back(std::move(genome));
    ratios.push_back(sp.ratio);
  }

  std::size_t total = options.reads;
  if (total == 0) {
    total = static_cast<std::size_t>(
        std::max(1.0, static_cast<double>(spec.paper_reads) * options.scale));
  }

  ShotgunParams params;
  params.read_length = options.read_length;
  params.errors = ErrorModel::uniform(options.error_rate);
  LabeledReads reads = mix_shotgun(genomes, ratios, total, params,
                                   mix64(base_seed ^ 0x2545f4914f6cdd1dULL));
  if (!spec.has_ground_truth) reads.labels.clear();
  return reads;
}

// ----------------------------------------------------------------- Table I

const std::vector<EnvSampleSpec>& environmental_registry() {
  static const std::vector<EnvSampleSpec> registry = {
      {"53R", "Labrador seawater", 58.300, -29.133, 1400, 3.5, 11218, 56},
      {"55R", "Oxygen minimum", 58.300, -29.133, 500, 7.1, 8680, 43},
      {"112R", "Lower deep water", 50.400, -25.000, 4121, 2.3, 11132, 84},
      {"115R", "Oxygen minimum", 50.400, -25.000, 550, 7.0, 13441, 61},
      {"137", "Labrador seawater", 60.900, -38.516, 1710, 3.0, 12259, 51},
      {"138", "Labrador seawater", 60.900, -38.516, 710, 3.5, 11554, 53},
      {"FS312", "Bag City", 45.916, -129.983, 1529, 31.2, 52569, 99},
      {"FS396", "Marker 52", 45.943, -129.985, 1537, 24.4, 73657, 68},
  };
  return registry;
}

const EnvSampleSpec& environmental_spec(const std::string& sid) {
  for (const auto& spec : environmental_registry()) {
    if (spec.sid == sid) return spec;
  }
  throw common::InvalidArgument("unknown environmental sample '" + sid + "'");
}

LabeledReads build_environmental(const EnvSampleSpec& spec,
                                 const Env16sOptions& options) {
  std::size_t total = options.reads;
  if (total == 0) {
    total = static_cast<std::size_t>(
        std::max(1.0, static_cast<double>(spec.paper_reads) * options.scale));
  }
  const std::uint64_t base_seed =
      mix64(options.seed ^ mix64(spec.paper_reads * 31 + spec.latent_otus));

  Marker16sParams gene_params;  // defaults model a 16S gene
  const auto genes = generate_16s_genes(spec.latent_otus, gene_params, base_seed);
  const auto abundances = lognormal_abundances(spec.latent_otus,
                                               options.abundance_sigma,
                                               mix64(base_seed ^ 0xabcdULL));

  AmpliconParams amp;
  amp.read_length = options.read_length;
  amp.length_jitter = 0.08;  // 454 length CV ~10%; global identity punishes spread
  amp.errors = ErrorModel::uniform(options.error_rate);
  return amplicon_reads(genes, abundances, total, amp,
                        mix64(base_seed ^ 0x1234567ULL));
}

// ------------------------------------------------- 16S simulated benchmark

LabeledReads build_16s_simulated(const Sim16sOptions& options) {
  const std::uint64_t base_seed = mix64(options.seed ^ 0x343fd0ULL);
  Marker16sParams gene_params;
  const auto genes = generate_16s_genes(options.genomes, gene_params, base_seed);

  AmpliconParams amp;
  amp.read_length = options.read_length;
  // 100 bp reads anchored at 505 cover variable block 7 (bases 525-599)
  // flanked by short conserved stretches — a realistic V-region amplicon.
  amp.window_start = 505;
  amp.window_span = 150;
  amp.length_jitter = 0.15;
  amp.errors = ErrorModel::uniform(options.error_rate);
  amp.uniform_error_rate = true;  // Huse et al.: reads with *up to* X% error

  const std::vector<double> uniform(options.genomes, 1.0);
  return amplicon_reads(genes, uniform, options.reads, amp,
                        mix64(base_seed ^ 0x77777ULL));
}

}  // namespace mrmc::simdata

file(REMOVE_RECURSE
  "CMakeFiles/bio_tests.dir/bio/alignment_test.cpp.o"
  "CMakeFiles/bio_tests.dir/bio/alignment_test.cpp.o.d"
  "CMakeFiles/bio_tests.dir/bio/dna_test.cpp.o"
  "CMakeFiles/bio_tests.dir/bio/dna_test.cpp.o.d"
  "CMakeFiles/bio_tests.dir/bio/fasta_test.cpp.o"
  "CMakeFiles/bio_tests.dir/bio/fasta_test.cpp.o.d"
  "CMakeFiles/bio_tests.dir/bio/fastq_test.cpp.o"
  "CMakeFiles/bio_tests.dir/bio/fastq_test.cpp.o.d"
  "CMakeFiles/bio_tests.dir/bio/gotoh_test.cpp.o"
  "CMakeFiles/bio_tests.dir/bio/gotoh_test.cpp.o.d"
  "CMakeFiles/bio_tests.dir/bio/kmer_test.cpp.o"
  "CMakeFiles/bio_tests.dir/bio/kmer_test.cpp.o.d"
  "CMakeFiles/bio_tests.dir/bio/seq_stats_test.cpp.o"
  "CMakeFiles/bio_tests.dir/bio/seq_stats_test.cpp.o.d"
  "bio_tests"
  "bio_tests.pdb"
  "bio_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bio_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

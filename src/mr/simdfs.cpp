#include "mr/simdfs.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace mrmc::mr {

SimDfs::SimDfs(Options options) : options_(options) {
  MRMC_REQUIRE(options_.nodes >= 1, "SimDfs needs at least one node");
  MRMC_REQUIRE(options_.block_size >= 1, "block_size must be positive");
  MRMC_REQUIRE(options_.replication >= 1, "replication must be positive");
  // Distinct replica holders cannot outnumber the nodes; clamp instead of
  // searching for nodes that do not exist.
  options_.replication = std::min(options_.replication, options_.nodes);
  node_alive_.assign(options_.nodes, 1);
}

std::vector<int> SimDfs::place_block(std::uint64_t block_id) const {
  // Primary advances round-robin (captured by caller via next_primary_);
  // secondaries are a seeded pseudo-random walk over the remaining nodes,
  // mirroring HDFS's rack-aware-ish spread without racks.  Dead nodes are
  // skipped, and the replica count is clamped to the live-node count, so
  // the walk always terminates.
  std::vector<int> replicas;
  const std::size_t live = live_nodes();
  if (live == 0) return replicas;  // placed into the void: instantly lost
  const std::size_t target = std::min(options_.replication, live);
  replicas.reserve(target);
  std::size_t primary = next_primary_ % options_.nodes;
  while (node_alive_[primary] == 0) primary = (primary + 1) % options_.nodes;
  replicas.push_back(static_cast<int>(primary));
  common::Xoshiro256 rng(common::mix64(options_.seed ^ block_id));
  while (replicas.size() < target) {
    const int candidate = static_cast<int>(rng.bounded(options_.nodes));
    if (node_alive_[static_cast<std::size_t>(candidate)] != 0 &&
        std::find(replicas.begin(), replicas.end(), candidate) ==
            replicas.end()) {
      replicas.push_back(candidate);
    }
  }
  return replicas;
}

void SimDfs::write(const std::string& path, std::string content) {
  MRMC_REQUIRE(!path.empty(), "path must be non-empty");
  File file;
  file.info.path = path;
  file.info.size = content.size();
  for (std::size_t offset = 0; offset < content.size();
       offset += options_.block_size) {
    DfsBlock block;
    block.id = next_block_id_++;
    block.offset = offset;
    block.size = std::min(options_.block_size, content.size() - offset);
    block.replicas = place_block(block.id);
    ++next_primary_;
    file.info.blocks.push_back(std::move(block));
  }
  if (content.empty()) {
    // Zero-byte files still get an entry (no blocks).
  }
  file.content = std::move(content);
  files_[path] = std::move(file);
}

void SimDfs::append(const std::string& path, std::string_view content) {
  if (!exists(path)) {
    write(path, std::string(content));
    return;
  }
  std::string merged = files_.at(path).content;
  merged.append(content);
  write(path, std::move(merged));
}

bool SimDfs::exists(const std::string& path) const noexcept {
  return files_.contains(path);
}

std::string SimDfs::read(const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) throw common::IoError("SimDfs: no such file '" + path + "'");
  require_readable(it->second);
  return it->second.content;
}

std::string SimDfs::read_block(const std::string& path,
                               std::size_t block_index) const {
  const auto it = files_.find(path);
  if (it == files_.end()) throw common::IoError("SimDfs: no such file '" + path + "'");
  const auto& blocks = it->second.info.blocks;
  MRMC_REQUIRE(block_index < blocks.size(), "block index out of range");
  const DfsBlock& block = blocks[block_index];
  if (block.replicas.empty()) {
    throw common::IoError("SimDfs: block " + std::to_string(block.id) + " of '" +
                          path + "' has no live replica");
  }
  return it->second.content.substr(block.offset, block.size);
}

void SimDfs::require_readable(const File& file) const {
  for (const DfsBlock& block : file.info.blocks) {
    if (block.replicas.empty()) {
      throw common::IoError("SimDfs: block " + std::to_string(block.id) +
                            " of '" + file.info.path + "' has no live replica");
    }
  }
}

const DfsFileInfo& SimDfs::stat(const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) throw common::IoError("SimDfs: no such file '" + path + "'");
  return it->second.info;
}

std::vector<std::string> SimDfs::list() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, file] : files_) out.push_back(path);
  return out;  // std::map iteration is already sorted
}

std::vector<std::string> SimDfs::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

void SimDfs::remove(const std::string& path) {
  if (files_.erase(path) == 0) {
    throw common::IoError("SimDfs: no such file '" + path + "'");
  }
}

void SimDfs::decommission_node(int node) {
  MRMC_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < options_.nodes,
               "node out of range");
  if (node_alive_[static_cast<std::size_t>(node)] == 0) return;
  node_alive_[static_cast<std::size_t>(node)] = 0;
  ++decommission_epoch_;
  const std::size_t live = live_nodes();
  for (auto& [path, file] : files_) {
    for (DfsBlock& block : file.info.blocks) {
      const auto it =
          std::find(block.replicas.begin(), block.replicas.end(), node);
      if (it == block.replicas.end()) continue;
      block.replicas.erase(it);
      if (live == 0) continue;  // nowhere left to copy to — may be lost
      // Surviving replicas are all alive (earlier decommissions removed
      // theirs), so the walk needs target - current fresh live nodes and
      // always finds them.  The epoch salts the draw so re-replicating the
      // same block after successive crashes takes different paths.
      const std::size_t target = std::min(options_.replication, live);
      common::Xoshiro256 rng(common::mix64(
          options_.seed ^ block.id ^
          (0x9e3779b97f4a7c15ULL * decommission_epoch_)));
      while (block.replicas.size() < target) {
        const int candidate = static_cast<int>(rng.bounded(options_.nodes));
        if (node_alive_[static_cast<std::size_t>(candidate)] != 0 &&
            std::find(block.replicas.begin(), block.replicas.end(),
                      candidate) == block.replicas.end()) {
          block.replicas.push_back(candidate);
        }
      }
    }
  }
}

void SimDfs::recommission_node(int node) {
  MRMC_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < options_.nodes,
               "node out of range");
  node_alive_[static_cast<std::size_t>(node)] = 1;
}

bool SimDfs::node_alive(int node) const {
  MRMC_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < options_.nodes,
               "node out of range");
  return node_alive_[static_cast<std::size_t>(node)] != 0;
}

std::size_t SimDfs::live_nodes() const noexcept {
  std::size_t live = 0;
  for (const char alive : node_alive_) live += alive != 0 ? 1 : 0;
  return live;
}

std::vector<std::uint64_t> SimDfs::under_replicated_blocks() const {
  std::vector<std::uint64_t> out;
  for (const auto& [path, file] : files_) {
    for (const DfsBlock& block : file.info.blocks) {
      if (!block.replicas.empty() &&
          block.replicas.size() < options_.replication) {
        out.push_back(block.id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint64_t> SimDfs::lost_blocks() const {
  std::vector<std::uint64_t> out;
  for (const auto& [path, file] : files_) {
    for (const DfsBlock& block : file.info.blocks) {
      if (block.replicas.empty()) out.push_back(block.id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> SimDfs::node_usage() const {
  std::vector<std::size_t> usage(options_.nodes, 0);
  for (const auto& [path, file] : files_) {
    for (const auto& block : file.info.blocks) {
      for (const int node : block.replicas) usage[node] += block.size;
    }
  }
  return usage;
}

std::size_t SimDfs::total_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& [path, file] : files_) total += file.info.size;
  return total;
}

}  // namespace mrmc::mr

#include "pig/pig.hpp"

#include <gtest/gtest.h>

#include <map>

#include "bio/fasta.hpp"
#include "common/error.hpp"
#include "core/pipeline.hpp"
#include "simdata/datasets.hpp"

namespace mrmc::pig {
namespace {

mr::SimDfs::Options dfs_options() {
  mr::SimDfs::Options options;
  options.nodes = 4;
  options.block_size = 4096;
  return options;
}

TEST(ToText, FormatsFieldTypes) {
  Tuple tuple;
  tuple.fields.emplace_back(std::string("read1"));
  tuple.fields.emplace_back(7L);
  tuple.fields.emplace_back(std::vector<long>{1, 2, 3});
  tuple.fields.emplace_back(Bag{Tuple{}, Tuple{}});
  EXPECT_EQ(to_text(tuple), "read1\t7\t1,2,3\t{bag:2}");
}

TEST(PigContext, RequiresDfs) {
  EXPECT_THROW(PigContext(nullptr, {}), common::InvalidArgument);
}

TEST(PigContext, LoadFastaParsesRecords) {
  mr::SimDfs dfs(dfs_options());
  dfs.write("/in.fa", ">a\nACGT\n>b\nTTGG\n");
  PigContext ctx(&dfs, {});
  const Relation relation = ctx.load_fasta("/in.fa");
  ASSERT_EQ(relation.size(), 2u);
  EXPECT_EQ(relation[0].get<std::string>(0), "ACGT");
  EXPECT_EQ(relation[0].get<std::string>(1), "a");
}

TEST(PigContext, ForeachRunsUdfInOrder) {
  mr::SimDfs dfs(dfs_options());
  PigContext ctx(&dfs, {});
  Relation input;
  for (const char* seq : {"ACG", "TTT", "GGA"}) {
    Tuple tuple;
    tuple.fields.emplace_back(std::string(seq));
    tuple.fields.emplace_back(std::string(seq));  // id = seq for tracking
    input.push_back(std::move(tuple));
  }
  const Relation out = ctx.foreach_generate(input, StringGenerator{});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].get<std::string>(1), "ACG");
  EXPECT_EQ(out[1].get<std::string>(1), "TTT");
  EXPECT_EQ(out[2].get<std::string>(1), "GGA");
  EXPECT_EQ(ctx.job_history().size(), 1u);
  EXPECT_GT(ctx.sim_time_s(), 0.0);
}

TEST(PigContext, GroupAllCollectsOneBagInOrder) {
  mr::SimDfs dfs(dfs_options());
  PigContext ctx(&dfs, {});
  Relation input;
  for (long i = 0; i < 5; ++i) {
    Tuple tuple;
    tuple.fields.emplace_back(i);
    input.push_back(std::move(tuple));
  }
  const Relation grouped = ctx.group_all(input);
  ASSERT_EQ(grouped.size(), 1u);
  const auto& bag = grouped[0].get<Bag>(0);
  ASSERT_EQ(bag.size(), 5u);
  for (long i = 0; i < 5; ++i) EXPECT_EQ(bag[i].get<long>(0), i);
}

TEST(PigContext, StoreWritesTextToDfs) {
  mr::SimDfs dfs(dfs_options());
  PigContext ctx(&dfs, {});
  Tuple tuple;
  tuple.fields.emplace_back(std::string("r0"));
  tuple.fields.emplace_back(3L);
  ctx.store({tuple}, "/out/labels");
  EXPECT_EQ(dfs.read("/out/labels"), "r0\t3\n");
}

// ------------------------------------------------------------- Algorithm 3

TEST(Algorithm3, EndToEndProducesLabelsForEveryRead) {
  const auto sample = simdata::build_whole_metagenome(
      simdata::whole_metagenome_spec("S8"), {.reads = 40, .seed = 5});
  mr::SimDfs dfs(dfs_options());
  dfs.write("/input.fa", bio::write_fasta_string(sample.reads));

  Algorithm3Params params;
  params.kmer = 5;
  params.num_hashes = 32;
  params.cutoff = 0.45;
  const Algorithm3Result result = run_algorithm3(
      dfs, "/input.fa", "/out/hier", "/out/greedy", params, {.nodes = 4});

  EXPECT_EQ(result.hierarchical.size(), 40u);
  EXPECT_EQ(result.greedy.size(), 40u);
  EXPECT_GT(result.sim_time_s, 0.0);
  EXPECT_EQ(result.jobs_run, 8u);  // 4 foreach + 2 group-all + sim + clustering
  EXPECT_TRUE(dfs.exists("/out/hier"));
  EXPECT_TRUE(dfs.exists("/out/greedy"));
}

TEST(Algorithm3, AgreesWithDirectPipeline) {
  // The Pig script and the core pipeline implement the same algorithms; on
  // the same input with the same parameters their hierarchical labelings
  // must match exactly (both deterministic).
  const auto sample = simdata::build_whole_metagenome(
      simdata::whole_metagenome_spec("S10"), {.reads = 30, .seed = 6});
  mr::SimDfs dfs(dfs_options());
  dfs.write("/input.fa", bio::write_fasta_string(sample.reads));

  Algorithm3Params params;
  params.kmer = 5;
  params.num_hashes = 32;
  params.seed = 2;
  params.cutoff = 0.5;
  const auto pig_result = run_algorithm3(dfs, "/input.fa", "/h", "/g", params);

  core::PipelineParams core_params;
  core_params.minhash = {.kmer = 5, .num_hashes = 32, .seed = 2};
  core_params.theta = 0.5;
  core_params.mode = core::Mode::kHierarchical;
  const auto core_result = core::run_pipeline(sample.reads, core_params);

  std::map<std::string, int> pig_labels(pig_result.hierarchical.begin(),
                                        pig_result.hierarchical.end());
  for (std::size_t i = 0; i < sample.reads.size(); ++i) {
    EXPECT_EQ(pig_labels.at(sample.reads[i].id), core_result.labels[i]) << i;
  }
}

TEST(Algorithm3, StoredOutputIsParseable) {
  const auto sample = simdata::build_whole_metagenome(
      simdata::whole_metagenome_spec("S13"), {.reads = 20, .seed = 7});
  mr::SimDfs dfs(dfs_options());
  dfs.write("/input.fa", bio::write_fasta_string(sample.reads));
  run_algorithm3(dfs, "/input.fa", "/oh", "/og", {});

  const std::string text = dfs.read("/og");
  std::size_t lines = 0;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 20u);
  EXPECT_NE(text.find('\t'), std::string::npos);
}

}  // namespace
}  // namespace mrmc::pig

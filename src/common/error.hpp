// Error handling: the library throws mrmc::common::Error (derived from
// std::runtime_error) for all recoverable failures, with MRMC_REQUIRE /
// MRMC_CHECK macros for precondition validation at API boundaries.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace mrmc::common {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an input file or simulated DFS path is malformed or missing.
class IoError : public Error {
 public:
  using Error::Error;
};

/// Thrown when a caller violates a documented API precondition.
class InvalidArgument : public Error {
 public:
  using Error::Error;
};

[[noreturn]] inline void fail(std::string_view context, std::string_view message) {
  throw Error(std::string(context) + ": " + std::string(message));
}

}  // namespace mrmc::common

/// Validate a documented precondition at a public API boundary.
#define MRMC_REQUIRE(cond, msg)                                   \
  do {                                                            \
    if (!(cond)) {                                                \
      throw ::mrmc::common::InvalidArgument(                      \
          std::string(__func__) + ": requirement failed: " msg); \
    }                                                             \
  } while (false)

/// Internal invariant check (kept on in all build types: cheap and load-bearing).
#define MRMC_CHECK(cond, msg)                                       \
  do {                                                              \
    if (!(cond)) {                                                  \
      throw ::mrmc::common::Error(                                  \
          std::string(__func__) + ": internal invariant: " msg);   \
    }                                                               \
  } while (false)

// Pipeline-doctor coverage for the recovery layer: "stage_checkpoint"
// instants reconstruct the same "recovery" section the in-process Collector
// saw — byte-identical — for cold runs (all misses), resumed runs (all
// hits, no jobs at all), and crashed runs resumed mid-pipeline.
#include "obs/pipeline.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/mini_json.hpp"
#include "core/pipeline.hpp"
#include "mr/recovery.hpp"
#include "obs/trace.hpp"
#include "simdata/datasets.hpp"

namespace mrmc::obs::pipeline {
namespace {

class PipelineRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().clear();
    Tracer::global().set_output_path("");
    Tracer::global().set_enabled(true);
    Collector::global().clear();
    Collector::global().set_enabled(true);
  }
  void TearDown() override {
    Collector::global().set_enabled(false);
    Collector::global().clear();
    Tracer::global().set_enabled(false);
    Tracer::global().set_output_path("");
    Tracer::global().clear();
  }

  static std::string fresh_dir(const std::string& tag) {
    static int serial = 0;
    const std::string dir = ::testing::TempDir() + "/mrmc_obs_recovery_" +
                            tag + std::to_string(serial++);
    std::filesystem::remove_all(dir);
    return dir;
  }

  static std::vector<bio::FastaRecord> sample_reads() {
    return simdata::build_whole_metagenome(
               simdata::whole_metagenome_spec("S2"), {.reads = 60, .seed = 3})
        .reads;
  }

  static core::PipelineResult run_checkpointed(const std::string& ckpt_dir,
                                               const std::string& trace_path) {
    core::PipelineParams params;
    params.minhash = {.kmer = 5, .num_hashes = 40, .canonical = true,
                      .seed = 1};
    params.mode = core::Mode::kHierarchical;
    params.theta = 0.5;
    core::ExecutionOptions exec;
    exec.threads = 2;
    exec.records_per_split = 16;
    exec.checkpoint_dir = ckpt_dir;
    Tracer::global().set_output_path(trace_path);
    return core::run_pipeline(sample_reads(), params, exec);
  }

  static bool has_finding(const PipelineReport& report,
                          const std::string& id) {
    for (const auto& finding : report.findings) {
      if (finding.id == id) return true;
    }
    return false;
  }
};

TEST_F(PipelineRecoveryTest, ColdRunRecoverySectionRoundTripsByteIdentical) {
  const std::string trace_path =
      ::testing::TempDir() + "/mrmc_recovery_cold_trace.json";
  run_checkpointed(fresh_dir("cold"), trace_path);

  const std::vector<PipelineReport> in_process =
      Collector::global().reports();
  ASSERT_EQ(in_process.size(), 1u);
  EXPECT_EQ(in_process[0].stages.size(), 3u);
  ASSERT_EQ(in_process[0].recovery.rows.size(), 3u);
  EXPECT_EQ(in_process[0].recovery.hits, 0u);
  EXPECT_EQ(in_process[0].recovery.misses, 3u);
  EXPECT_EQ(in_process[0].recovery.writes, 3u);
  EXPECT_EQ(in_process[0].recovery.rows[0].stage, "sketch");
  EXPECT_EQ(in_process[0].recovery.rows[0].outcome, "miss+write");
  EXPECT_FALSE(has_finding(in_process[0], "checkpoint-resume"));

  const std::vector<PipelineReport> offline = analyze_trace_file(trace_path);
  ASSERT_EQ(offline.size(), 1u);
  EXPECT_EQ(to_json(in_process[0]), to_json(offline[0]));
  EXPECT_EQ(to_text(in_process[0]), to_text(offline[0]));

  // The renderers actually surface the section.
  EXPECT_NE(to_text(in_process[0]).find("recovery:"), std::string::npos);
  const auto parsed = common::parse_json(to_json(in_process[0]));
  EXPECT_EQ(parsed.at("recovery").at("stages").array.size(), 3u);
  const std::vector<PipelineReport> all{in_process[0]};
  EXPECT_NE(to_html(all).find("recovery"), std::string::npos);
}

TEST_F(PipelineRecoveryTest, ResumedRunIsRecoveryOnlyAndStillRoundTrips) {
  const std::string ckpt_dir = fresh_dir("resume");
  run_checkpointed(ckpt_dir, ::testing::TempDir() + "/mrmc_warmup_trace.json");
  Tracer::global().clear();
  Collector::global().clear();

  // Warm run: every stage hits, no MapReduce job runs, so the pipeline
  // exists in the trace and the collector ONLY through its recovery rows.
  const std::string trace_path =
      ::testing::TempDir() + "/mrmc_recovery_warm_trace.json";
  const core::PipelineResult result =
      run_checkpointed(ckpt_dir, trace_path);
  EXPECT_EQ(result.recovery.checkpoint_hits, 3u);

  const std::vector<PipelineReport> in_process =
      Collector::global().reports();
  ASSERT_EQ(in_process.size(), 1u);
  EXPECT_TRUE(in_process[0].stages.empty());
  EXPECT_EQ(in_process[0].recovery.hits, 3u);
  EXPECT_EQ(in_process[0].recovery.misses, 0u);
  for (const RecoveryRecord& row : in_process[0].recovery.rows) {
    EXPECT_EQ(row.outcome, "hit");
    EXPECT_EQ(row.attempts, 0);
  }
  // A fully-resumed run announces itself.
  EXPECT_TRUE(has_finding(in_process[0], "checkpoint-resume"));

  const std::vector<PipelineReport> offline = analyze_trace_file(trace_path);
  ASSERT_EQ(offline.size(), 1u);
  EXPECT_EQ(to_json(in_process[0]), to_json(offline[0]));
  EXPECT_EQ(to_text(in_process[0]), to_text(offline[0]));

  // flush() must not treat a recovery-only collection as empty.
  const std::string out_path =
      ::testing::TempDir() + "/mrmc_recovery_warm_report.json";
  Collector::global().set_output_path(out_path);
  ASSERT_TRUE(Collector::global().flush());
  Collector::global().set_output_path("");
  std::ifstream in(out_path);
  std::ostringstream text;
  text << in.rdbuf();
  const auto parsed = common::parse_json(text.str());
  ASSERT_EQ(parsed.at("pipelines").array.size(), 1u);
  EXPECT_EQ(parsed.at("pipelines")
                .array[0]
                .at("recovery")
                .at("hits")
                .number,
            3.0);
}

TEST_F(PipelineRecoveryTest, CrashedThenResumedRunKeepsStageNamesAligned) {
  // Kill the driver after "similarity"; the resumed run claims the killed
  // stages' lineage slots from checkpoint, so its computed stage keeps the
  // sequence number an uninterrupted run would give it.
  const std::string ckpt_dir = fresh_dir("crash");
  ::setenv("MRMC_CRASH_AFTER_STAGE", "similarity", 1);
  EXPECT_THROW(run_checkpointed(ckpt_dir, ::testing::TempDir() +
                                              "/mrmc_crash_trace.json"),
               mr::recovery::InjectedDriverCrash);
  ::unsetenv("MRMC_CRASH_AFTER_STAGE");
  Tracer::global().clear();
  Collector::global().clear();

  const std::string trace_path =
      ::testing::TempDir() + "/mrmc_resume_trace.json";
  run_checkpointed(ckpt_dir, trace_path);

  const std::vector<PipelineReport> in_process =
      Collector::global().reports();
  ASSERT_EQ(in_process.size(), 1u);
  // One computed job, two checkpoint hits — and the computed job landed on
  // the sequence slot of an uninterrupted run (2, after the two hits).
  ASSERT_EQ(in_process[0].stages.size(), 1u);
  EXPECT_EQ(in_process[0].stages[0].job.name, "hierarchical-cluster");
  EXPECT_EQ(in_process[0].stages[0].job.sequence, 2u);  // slots 0-1 were
                                                        // claimed by the hits
  EXPECT_EQ(in_process[0].recovery.hits, 2u);
  EXPECT_EQ(in_process[0].recovery.misses, 1u);
  EXPECT_TRUE(has_finding(in_process[0], "checkpoint-resume"));

  const std::vector<PipelineReport> offline = analyze_trace_file(trace_path);
  ASSERT_EQ(offline.size(), 1u);
  EXPECT_EQ(to_json(in_process[0]), to_json(offline[0]));
}

}  // namespace
}  // namespace mrmc::obs::pipeline

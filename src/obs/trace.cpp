#include "obs/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/fsio.hpp"
#include "obs/log.hpp"

namespace mrmc::obs {

namespace {

const Logger& logger() {
  static const Logger instance("obs.trace");
  return instance;
}

void append_json_string(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::string trace_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string_view TraceEvent::arg(std::string_view key) const noexcept {
  for (const TraceArg& a : args) {
    if (a.first == key) return a.second;
  }
  return {};
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  if (const char* path = std::getenv("MRMC_TRACE")) {
    if (*path != '\0') {
      output_path_ = path;
      enabled_.store(true, std::memory_order_relaxed);
    }
  }
}

Tracer::~Tracer() { flush(); }

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_output_path(std::string path) {
  std::lock_guard<std::mutex> lock(mutex_);
  output_path_ = std::move(path);
}

std::string Tracer::output_path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return output_path_;
}

double Tracer::now_us() const noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::Span::Span(Tracer& tracer, std::string name,
                   std::initializer_list<TraceArg> args)
    : tracer_(&tracer), active_(tracer.enabled()), name_(std::move(name)) {
  if (!active_) return;
  start_us_ = tracer.now_us();
  args_.assign(args.begin(), args.end());
}

void Tracer::Span::arg(std::string key, std::string value) {
  if (!active_) return;
  args_.emplace_back(std::move(key), std::move(value));
}

Tracer::Span::~Span() {
  if (!active_) return;
  TraceEvent event;
  event.name = std::move(name_);
  event.category = "real";
  event.phase = 'X';
  event.ts_us = start_us_;
  event.dur_us = tracer_->now_us() - start_us_;
  event.pid = kRealPid;
  event.tid = 0;
  event.args = std::move(args_);
  tracer_->append(std::move(event));
}

void Tracer::instant(std::string name, std::initializer_list<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = "real";
  event.phase = 'i';
  event.ts_us = now_us();
  event.pid = kRealPid;
  event.tid = 0;
  event.args.assign(args.begin(), args.end());
  append(std::move(event));
}

void Tracer::counter(std::string name, std::vector<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = "counter";
  event.phase = 'C';
  event.ts_us = now_us();
  event.pid = kRealPid;
  event.tid = 0;
  event.args = std::move(args);
  append(std::move(event));
}

void Tracer::sim_counter(std::uint32_t pid, std::string name, double t_s,
                         std::vector<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = "counter";
  event.phase = 'C';
  event.ts_us = t_s * 1e6;
  event.pid = pid;
  event.tid = 0;
  event.args = std::move(args);
  append(std::move(event));
}

std::uint32_t Tracer::begin_sim_job(const std::string& job_name) {
  TraceEvent meta;
  meta.category = "meta";
  meta.phase = 'M';
  meta.name = "process_name";
  meta.args.emplace_back("name", "sim: " + job_name);

  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint32_t pid = next_sim_pid_++;
  meta.pid = pid;
  events_.push_back(std::move(meta));
  return pid;
}

void Tracer::name_sim_track(std::uint32_t pid, std::uint32_t tid,
                            std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!named_tracks_.emplace(pid, tid).second) return;
  TraceEvent meta;
  meta.category = "meta";
  meta.phase = 'M';
  meta.name = "thread_name";
  meta.pid = pid;
  meta.tid = tid;
  meta.args.emplace_back("name", std::move(name));
  events_.push_back(std::move(meta));
}

void Tracer::sim_task(std::uint32_t pid, std::uint32_t tid, std::string name,
                      double start_s, double end_s,
                      std::initializer_list<TraceArg> args,
                      double ts_offset_s) {
  sim_task(pid, tid, std::move(name), start_s, end_s,
           std::vector<TraceArg>(args.begin(), args.end()), ts_offset_s);
}

void Tracer::sim_task(std::uint32_t pid, std::uint32_t tid, std::string name,
                      double start_s, double end_s, std::vector<TraceArg> args,
                      double ts_offset_s) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = "sim";
  event.phase = 'X';
  event.ts_us = (ts_offset_s + start_s) * 1e6;
  event.dur_us = (end_s - start_s) * 1e6;
  event.pid = pid;
  event.tid = tid;
  event.args = std::move(args);
  event.args.emplace_back("start_s", trace_double(start_s));
  event.args.emplace_back("end_s", trace_double(end_s));
  append(std::move(event));
}

void Tracer::append(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  named_tracks_.clear();
  next_sim_pid_ = kRealPid + 1;
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
  }
  std::string buf;
  buf.reserve(events.size() * 128 + 256);
  buf += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) buf += ",\n";
    first = false;
    buf += "  {\"name\": ";
    append_json_string(buf, event.name);
    buf += ", \"cat\": ";
    append_json_string(buf, event.category);
    buf += ", \"ph\": \"";
    buf.push_back(event.phase);
    buf += "\", \"pid\": " + std::to_string(event.pid) +
           ", \"tid\": " + std::to_string(event.tid);
    if (event.phase != 'M') {
      buf += ", \"ts\": " + trace_double(event.ts_us);
      if (event.phase == 'X') {
        buf += ", \"dur\": " + trace_double(event.dur_us);
      }
    }
    if (event.phase == 's' || event.phase == 'f') {
      buf += ", \"id\": " + std::to_string(event.flow_id);
      // Bind the finish to the enclosing slice so viewers draw the arrow
      // even when the finish timestamp precedes the slice start.
      if (event.phase == 'f') buf += ", \"bp\": \"e\"";
    }
    if (!event.args.empty()) {
      buf += ", \"args\": {";
      for (std::size_t i = 0; i < event.args.size(); ++i) {
        if (i > 0) buf += ", ";
        append_json_string(buf, event.args[i].first);
        buf += ": ";
        if (event.phase == 'C') {
          // Counter series must be JSON numbers for Chrome to plot them;
          // counter() documents the numeric-string contract on its args.
          buf += event.args[i].second;
        } else {
          append_json_string(buf, event.args[i].second);
        }
      }
      buf += "}";
    }
    buf += "}";
  }
  buf += "\n]}\n";
  out << buf;
}

bool Tracer::flush() const {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    path = output_path_;
  }
  if (path.empty() || !enabled()) return false;
  // Render fully in memory, then commit atomically: a process killed
  // mid-flush (the recovery chaos tests do exactly this) must never leave a
  // truncated trace for the resumed run's doctor to choke on.
  std::ostringstream rendered;
  write_chrome_trace(rendered);
  if (!common::write_file_atomic(path, rendered.str())) {
    logger().warn("failed writing trace output file", {{"path", path}});
    return false;
  }
  return true;
}

}  // namespace mrmc::obs

#include "mr/input_format.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "mr/cluster.hpp"
#include "mr/job.hpp"

namespace mrmc::mr {
namespace {

SimDfs small_dfs() {
  SimDfs::Options options;
  options.nodes = 4;
  options.block_size = 64;
  options.replication = 2;
  return SimDfs(options);
}

TEST(TextInputSplits, EveryLineExactlyOnce) {
  SimDfs dfs = small_dfs();
  std::string content;
  for (int i = 0; i < 40; ++i) content += "line_" + std::to_string(i) + "\n";
  dfs.write("/t", content);

  const auto splits = text_input_splits(dfs, "/t");
  EXPECT_EQ(splits.splits.size(), dfs.stat("/t").blocks.size());
  std::vector<std::string> all;
  for (const auto& split : splits.splits) {
    all.insert(all.end(), split.begin(), split.end());
  }
  ASSERT_EQ(all.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(all[i], "line_" + std::to_string(i));
}

TEST(TextInputSplits, LineStraddlingBlockBoundaryStaysWhole) {
  SimDfs dfs = small_dfs();  // block size 64
  // A 100-char line crosses the first block boundary.
  const std::string long_line(100, 'x');
  dfs.write("/t", "short\n" + long_line + "\ntail\n");
  const auto splits = text_input_splits(dfs, "/t");
  std::vector<std::string> all;
  for (const auto& split : splits.splits) {
    all.insert(all.end(), split.begin(), split.end());
  }
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[1], long_line);
}

TEST(TextInputSplits, PreferredNodesAreBlockPrimaries) {
  SimDfs dfs = small_dfs();
  dfs.write("/t", std::string(200, 'a') + "\n");
  const auto splits = text_input_splits(dfs, "/t");
  const auto& blocks = dfs.stat("/t").blocks;
  ASSERT_EQ(splits.preferred_nodes.size(), blocks.size());
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    EXPECT_EQ(splits.preferred_nodes[b], blocks[b].replicas.front());
  }
}

TEST(FastaInputSplits, RecordsAssignedByHeaderBlock) {
  SimDfs dfs = small_dfs();
  std::string fasta;
  for (int i = 0; i < 12; ++i) {
    fasta += ">read" + std::to_string(i) + "\nACGTACGTACGTACGTACGT\n";
  }
  dfs.write("/f", fasta);

  const auto splits = fasta_input_splits(dfs, "/f");
  std::size_t total = 0;
  for (const auto& split : splits.splits) total += split.size();
  EXPECT_EQ(total, 12u);
  // Multi-block file: records spread across more than one split.
  ASSERT_GT(splits.splits.size(), 1u);
  std::size_t nonempty = 0;
  for (const auto& split : splits.splits) {
    if (!split.empty()) ++nonempty;
  }
  EXPECT_GT(nonempty, 1u);
}

TEST(FastaInputSplits, MultiLineRecordCrossingBlocksStaysWhole) {
  SimDfs dfs = small_dfs();
  const std::string seq(150, 'G');  // sequence spans 3 blocks
  dfs.write("/f", ">big\n" + seq + "\n>next\nAC\n");
  const auto splits = fasta_input_splits(dfs, "/f");
  std::vector<bio::FastaRecord> all;
  for (const auto& split : splits.splits) {
    all.insert(all.end(), split.begin(), split.end());
  }
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].id, "big");
  EXPECT_EQ(all[0].seq, seq);
  EXPECT_EQ(all[1].id, "next");
}

TEST(FastaInputSplits, RejectsNonFastaContent) {
  SimDfs dfs = small_dfs();
  dfs.write("/junk", "this is not fasta\n");
  EXPECT_THROW(fasta_input_splits(dfs, "/junk"), common::IoError);
}

TEST(InputSplits, EmptyFileGivesOneEmptySplit) {
  SimDfs dfs = small_dfs();
  dfs.write("/empty", "");
  const auto text = text_input_splits(dfs, "/empty");
  ASSERT_EQ(text.splits.size(), 1u);
  EXPECT_TRUE(text.splits[0].empty());
}

// ------------------------------------------------- speculation / stragglers

TEST(Speculation, RescuesInjectedStraggler) {
  ClusterConfig config;
  config.nodes = 4;
  std::vector<TaskSpec> tasks(16, TaskSpec{10.0, 0.0, 0.0, -1});
  tasks[5].work = 200.0;  // one straggler

  const SimScheduler plain(config);
  const double slow = plain.schedule_phase(tasks, 2).makespan_s;

  config.speculative_execution = true;
  const SimScheduler speculative(config);
  const auto timeline = speculative.schedule_phase(tasks, 2);
  EXPECT_LT(timeline.makespan_s, slow);
  EXPECT_EQ(timeline.speculated_tasks, 1u);
}

TEST(Speculation, NoEffectOnUniformTasks) {
  ClusterConfig config;
  config.nodes = 4;
  config.speculative_execution = true;
  const SimScheduler scheduler(config);
  const std::vector<TaskSpec> tasks(12, TaskSpec{10.0, 0.0, 0.0, -1});
  const auto timeline = scheduler.schedule_phase(tasks, 2);
  EXPECT_EQ(timeline.speculated_tasks, 0u);
}

TEST(StragglerInjection, SlowsSimulatedTimeOnly) {
  using IdJob = Job<int, int, int, std::pair<int, int>>;
  std::vector<int> input(64);
  std::iota(input.begin(), input.end(), 0);

  auto make_config = [](double rate) {
    JobConfig config;
    config.records_per_split = 4;
    config.straggler_rate = rate;
    config.seed = 9;
    return config;
  };
  auto mapper = [](const int& record, Emitter<int, int>& emit) {
    emit.emit(record % 4, record);
  };
  auto reducer = [](const int& key, std::vector<int>& values,
                    std::vector<std::pair<int, int>>& out) {
    out.emplace_back(key, static_cast<int>(values.size()));
  };

  IdJob fast(make_config(0.0), mapper, reducer);
  fast.with_map_work([](const int&) { return 0.5; });
  IdJob slow(make_config(0.5), mapper, reducer);
  slow.with_map_work([](const int&) { return 0.5; });

  const auto fast_result = fast.run(input);
  const auto slow_result = slow.run(input);
  EXPECT_EQ(fast_result.output, slow_result.output);  // results unchanged
  EXPECT_GT(slow_result.stats.timeline.total_s,
            fast_result.stats.timeline.total_s);
}

}  // namespace
}  // namespace mrmc::mr

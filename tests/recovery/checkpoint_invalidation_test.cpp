// Checkpoint invalidation at pipeline scope: a changed parameter or input,
// a truncated or corrupted file, and a stale directory must all fall back
// to recompute — never crash, never change the output.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "simdata/datasets.hpp"

namespace mrmc::core {
namespace {

std::string fresh_dir(const std::string& tag) {
  static int serial = 0;
  const std::string dir = ::testing::TempDir() + "/mrmc_invalidate_" + tag +
                          std::to_string(serial++);
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<bio::FastaRecord> sample_reads(std::uint64_t seed = 5) {
  return simdata::build_whole_metagenome(simdata::whole_metagenome_spec("S8"),
                                         {.reads = 40, .seed = seed})
      .reads;
}

PipelineParams hier_params() {
  PipelineParams params;
  params.minhash = {.kmer = 5, .num_hashes = 32, .canonical = true, .seed = 1};
  params.mode = Mode::kHierarchical;
  params.theta = 0.5;
  return params;
}

ExecutionOptions checkpointed(const std::string& dir) {
  ExecutionOptions exec;
  exec.threads = 2;
  exec.records_per_split = 16;
  exec.checkpoint_dir = dir;
  return exec;
}

/// The on-disk checkpoint of driver sequence `sequence` ("<label>.<seq>-…").
std::filesystem::path checkpoint_of(const std::string& dir,
                                    std::size_t sequence) {
  const std::string needle = "." + std::to_string(sequence) + "-";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.find(needle) != std::string::npos &&
        entry.path().extension() == ".ckpt") {
      return entry.path();
    }
  }
  ADD_FAILURE() << "no checkpoint with sequence " << sequence << " in " << dir;
  return {};
}

// The hierarchical pipeline drives 3 stages: sketch, similarity, cluster.
constexpr std::size_t kStages = 3;

TEST(Invalidation, UnchangedRerunServesEveryStageFromCheckpoint) {
  const auto reads = sample_reads();
  const std::string dir = fresh_dir("rerun");
  const PipelineResult first =
      run_pipeline(reads, hier_params(), checkpointed(dir));
  EXPECT_EQ(first.recovery.checkpoint_misses, kStages);
  EXPECT_EQ(first.recovery.checkpoint_writes, kStages);
  EXPECT_GT(first.sim_total_s, 0.0);

  const PipelineResult second =
      run_pipeline(reads, hier_params(), checkpointed(dir));
  EXPECT_EQ(second.labels, first.labels);
  EXPECT_EQ(second.recovery.checkpoint_hits, kStages);
  EXPECT_EQ(second.recovery.checkpoint_misses, 0u);
  // Hit stages never ran a job, so no simulated time accrues.
  EXPECT_EQ(second.sim_total_s, 0.0);
}

TEST(Invalidation, ParamChangeRecomputesEverything) {
  const auto reads = sample_reads();
  const std::string dir = fresh_dir("params");
  (void)run_pipeline(reads, hier_params(), checkpointed(dir));

  PipelineParams changed = hier_params();
  changed.theta = 0.6;
  const PipelineResult rerun =
      run_pipeline(reads, changed, checkpointed(dir));
  EXPECT_EQ(rerun.recovery.checkpoint_hits, 0u);
  EXPECT_EQ(rerun.recovery.checkpoint_misses, kStages);
  // The changed-params run matches its own uncheckpointed twin.
  const PipelineResult uncheckpointed =
      run_pipeline(reads, changed, ExecutionOptions{.threads = 2,
                                                    .records_per_split = 16});
  EXPECT_EQ(rerun.labels, uncheckpointed.labels);
}

TEST(Invalidation, InputChangeRecomputesEverything) {
  const std::string dir = fresh_dir("input");
  (void)run_pipeline(sample_reads(5), hier_params(), checkpointed(dir));

  const auto other_reads = sample_reads(6);
  const PipelineResult rerun =
      run_pipeline(other_reads, hier_params(), checkpointed(dir));
  EXPECT_EQ(rerun.recovery.checkpoint_hits, 0u);
  EXPECT_EQ(rerun.recovery.checkpoint_misses, kStages);
}

TEST(Invalidation, TruncatedCheckpointRecomputesThatStageOnly) {
  const auto reads = sample_reads();
  const std::string dir = fresh_dir("truncate");
  const PipelineResult first =
      run_pipeline(reads, hier_params(), checkpointed(dir));

  // Tear the "sketch" (sequence 0) file as a crashed write would.
  const std::filesystem::path victim = checkpoint_of(dir, 0);
  ASSERT_FALSE(victim.empty());
  std::filesystem::resize_file(victim,
                               std::filesystem::file_size(victim) / 2);

  // The deterministic recompute reproduces the identical payload, so the
  // chain stays intact and every downstream stage still hits.
  const PipelineResult rerun =
      run_pipeline(reads, hier_params(), checkpointed(dir));
  EXPECT_EQ(rerun.labels, first.labels);
  EXPECT_EQ(rerun.recovery.invalid_checkpoints, 1u);
  EXPECT_EQ(rerun.recovery.checkpoint_misses, 1u);
  EXPECT_EQ(rerun.recovery.checkpoint_hits, kStages - 1);

  // The recompute rewrote the file: a third run hits everywhere again.
  const PipelineResult third =
      run_pipeline(reads, hier_params(), checkpointed(dir));
  EXPECT_EQ(third.recovery.checkpoint_hits, kStages);
}

TEST(Invalidation, CorruptedCheckpointRecomputesThatStageOnly) {
  const auto reads = sample_reads();
  const std::string dir = fresh_dir("corrupt");
  const PipelineResult first =
      run_pipeline(reads, hier_params(), checkpointed(dir));

  // Flip one payload byte of the "similarity" (sequence 1) checkpoint:
  // right size, wrong checksum.
  const std::filesystem::path victim = checkpoint_of(dir, 1);
  ASSERT_FALSE(victim.empty());
  {
    std::fstream file(victim, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(-1, std::ios::end);
    file.put('\x5a');
  }

  const PipelineResult rerun =
      run_pipeline(reads, hier_params(), checkpointed(dir));
  EXPECT_EQ(rerun.labels, first.labels);
  EXPECT_EQ(rerun.recovery.invalid_checkpoints, 1u);
  EXPECT_EQ(rerun.recovery.checkpoint_hits, kStages - 1);
}

TEST(Invalidation, StaleDirectoryFromOtherRunsIsHarmless) {
  const auto reads = sample_reads();
  const std::string dir = fresh_dir("stale");
  const PipelineResult first =
      run_pipeline(reads, hier_params(), checkpointed(dir));

  // A different configuration reuses the same directory: its keys differ,
  // so it recomputes everything and files from both runs coexist.
  PipelineParams other = hier_params();
  other.minhash.num_hashes = 48;
  const PipelineResult second =
      run_pipeline(reads, other, checkpointed(dir));
  EXPECT_EQ(second.recovery.checkpoint_hits, 0u);
  EXPECT_EQ(second.recovery.checkpoint_writes, kStages);

  // Both configurations now resume fully from the shared directory.
  const PipelineResult first_again =
      run_pipeline(reads, hier_params(), checkpointed(dir));
  EXPECT_EQ(first_again.labels, first.labels);
  EXPECT_EQ(first_again.recovery.checkpoint_hits, kStages);
  const PipelineResult second_again =
      run_pipeline(reads, other, checkpointed(dir));
  EXPECT_EQ(second_again.labels, second.labels);
  EXPECT_EQ(second_again.recovery.checkpoint_hits, kStages);
}

}  // namespace
}  // namespace mrmc::core

#include "mr/cluster.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <optional>
#include <queue>
#include <tuple>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/pipeline.hpp"
#include "obs/progress.hpp"
#include "obs/report.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace mrmc::mr {

SimScheduler::SimScheduler(ClusterConfig config) : config_(config) {
  MRMC_REQUIRE(config_.nodes >= 1, "cluster needs at least one node");
  MRMC_REQUIRE(config_.map_slots_per_node >= 1, "need at least one map slot");
  MRMC_REQUIRE(config_.reduce_slots_per_node >= 1, "need at least one reduce slot");
  MRMC_REQUIRE(config_.node.cpu_rate > 0, "cpu_rate must be positive");
  MRMC_REQUIRE(config_.node.disk_bw > 0 && config_.node.net_bw > 0,
               "bandwidths must be positive");
}

double SimScheduler::task_duration(const TaskSpec& task, bool data_local) const {
  const NodeSpec& node = config_.node;
  const double input_bw = data_local ? node.disk_bw : node.net_bw;
  return config_.task_startup_s + task.work / node.cpu_rate +
         task.input_bytes / input_bw + task.output_bytes / node.disk_bw;
}

double SimScheduler::shuffle_time(double total_bytes) const {
  if (total_bytes <= 0) return 0.0;
  const double remote_fraction =
      config_.nodes <= 1
          ? 0.0
          : 1.0 - 1.0 / static_cast<double>(config_.nodes);
  const double aggregate_bw =
      static_cast<double>(config_.nodes) * config_.node.net_bw;
  const double local_part = total_bytes * (1.0 - remote_fraction) /
                            (static_cast<double>(config_.nodes) * config_.node.disk_bw);
  return total_bytes * remote_fraction / aggregate_bw + local_part;
}

double SimScheduler::fetch_time(double bytes) const {
  if (bytes <= 0) return 0.0;
  const double remote_fraction =
      config_.nodes <= 1
          ? 0.0
          : 1.0 - 1.0 / static_cast<double>(config_.nodes);
  return bytes * remote_fraction / config_.node.net_bw +
         bytes * (1.0 - remote_fraction) / config_.node.disk_bw;
}

PhaseTimeline SimScheduler::schedule_phase(std::span<const TaskSpec> tasks,
                                           std::size_t slots_per_node) const {
  PhaseTimeline timeline;
  timeline.tasks.resize(tasks.size());
  if (tasks.empty()) return timeline;

  // Longest-processing-time-first order for a tighter makespan.
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return task_duration(tasks[a], true) > task_duration(tasks[b], true);
  });

  // slot_free[node][slot] = time the slot becomes available.
  std::vector<std::vector<double>> slot_free(
      config_.nodes, std::vector<double>(slots_per_node, 0.0));

  auto earliest_slot = [&](int node) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < slot_free[node].size(); ++s) {
      if (slot_free[node][s] < slot_free[node][best]) best = s;
    }
    return best;
  };

  for (const std::size_t idx : order) {
    const TaskSpec& task = tasks[idx];
    // Find the globally earliest slot.
    int best_node = 0;
    std::size_t best_slot = earliest_slot(0);
    for (int n = 1; n < static_cast<int>(config_.nodes); ++n) {
      const std::size_t s = earliest_slot(n);
      if (slot_free[n][s] < slot_free[best_node][best_slot]) {
        best_node = n;
        best_slot = s;
      }
    }
    // Prefer the replica holder if it is nearly as available (delay-scheduling
    // heuristic: tolerate up to one task startup of extra wait for locality).
    if (task.preferred_node >= 0 &&
        task.preferred_node < static_cast<int>(config_.nodes)) {
      const std::size_t s = earliest_slot(task.preferred_node);
      if (slot_free[task.preferred_node][s] <=
          slot_free[best_node][best_slot] + config_.task_startup_s) {
        best_node = task.preferred_node;
        best_slot = s;
      }
    }

    const bool local =
        task.preferred_node < 0 || task.preferred_node == best_node;
    const double start = slot_free[best_node][best_slot];
    const double end = start + task_duration(task, local);
    slot_free[best_node][best_slot] = end;

    timeline.tasks[idx] = {best_node, static_cast<int>(best_slot), start, end,
                           local};
    if (local) ++timeline.data_local_tasks;
  }

  if (config_.speculative_execution && timeline.tasks.size() >= 3) {
    // Median duration of the phase defines the straggler threshold.
    std::vector<double> durations;
    durations.reserve(timeline.tasks.size());
    for (const auto& task : timeline.tasks) {
      durations.push_back(task.end_s - task.start_s);
    }
    std::nth_element(durations.begin(),
                     durations.begin() + static_cast<long>(durations.size() / 2),
                     durations.end());
    const double median = durations[durations.size() / 2];
    for (auto& task : timeline.tasks) {
      const double duration = task.end_s - task.start_s;
      if (duration > config_.speculation_factor * median) {
        const double rescued_end =
            task.start_s + (config_.speculation_factor + 1.0) * median;
        if (rescued_end < task.end_s) {
          task.end_s = rescued_end;
          ++timeline.speculated_tasks;
        }
      }
    }
  }

  for (const auto& task : timeline.tasks) {
    timeline.makespan_s = std::max(timeline.makespan_s, task.end_s);
  }
  return timeline;
}

namespace {

/// Export one scheduled phase onto the job's sim track group: task i becomes
/// a duration event on the (node, slot) track it ran on.  The timestamp is
/// shifted by `ts_offset_s` so phases line up end to end within the job; the
/// exact phase-relative times travel as args.  When `specs` is non-empty the
/// task's resource demand (work / input / output bytes) rides along as extra
/// %.17g args; offline reconstruction ignores unknown args, so the doctor's
/// byte-identity invariant is unaffected.
void trace_sim_phase(obs::Tracer& tracer, std::uint32_t pid,
                     const char* phase_name, const PhaseTimeline& phase,
                     std::span<const TaskSpec> specs,
                     std::size_t slots_per_node, std::uint32_t tid_base,
                     double ts_offset_s) {
  for (std::size_t i = 0; i < phase.tasks.size(); ++i) {
    const TaskPlacement& task = phase.tasks[i];
    const std::uint32_t tid =
        tid_base + static_cast<std::uint32_t>(task.node) *
                       static_cast<std::uint32_t>(slots_per_node) +
        static_cast<std::uint32_t>(task.slot);
    tracer.name_sim_track(pid, tid,
                          "node " + std::to_string(task.node) + " " +
                              phase_name + " slot " +
                              std::to_string(task.slot));
    std::vector<obs::TraceArg> args = {
        {"phase", phase_name},
        {"task", std::to_string(i)},
        {"data_local", task.data_local ? "true" : "false"}};
    if (i < specs.size()) {
      args.emplace_back("work", obs::trace_double(specs[i].work));
      args.emplace_back("input_bytes",
                        obs::trace_double(specs[i].input_bytes));
      args.emplace_back("output_bytes",
                        obs::trace_double(specs[i].output_bytes));
    }
    tracer.sim_task(pid, tid, std::string(phase_name) + " " + std::to_string(i),
                    task.start_s, task.end_s, std::move(args), ts_offset_s);
  }
}

/// Byte totals from the specs in phase-index / fetch-list order — one fixed
/// left-to-right summation shared by both simulate_job paths, so the doubles
/// the doctor renders are identical however the job was scheduled.
obs::report::ByteSummary summarize_bytes(std::span<const TaskSpec> map_tasks,
                                         std::span<const FetchSpec> fetches,
                                         std::span<const TaskSpec> reduce_tasks) {
  obs::report::ByteSummary bytes;
  for (const TaskSpec& task : map_tasks) {
    bytes.map_input_bytes += task.input_bytes;
    bytes.map_output_bytes += task.output_bytes;
  }
  for (const TaskSpec& task : reduce_tasks) {
    bytes.reduce_input_bytes += task.input_bytes;
    bytes.reduce_output_bytes += task.output_bytes;
  }
  bytes.fetch_count = fetches.size();
  std::vector<std::size_t> fan_in;
  for (const FetchSpec& fetch : fetches) {
    bytes.fetch_bytes += fetch.bytes;
    if (fetch.reducer >= fan_in.size()) fan_in.resize(fetch.reducer + 1, 0);
    bytes.max_fetch_fan_in =
        std::max(bytes.max_fetch_fan_in, ++fan_in[fetch.reducer]);
  }
  return bytes;
}

/// The shuffle schedule shared by both simulate_job paths: each fetch starts
/// when its map run is available and the reducer's NIC is free (fetches into
/// one reducer are serialized).  Fetch order per reducer: by producer finish
/// time, map index breaking ties — deterministic regardless of thread count.
/// Times are on the same clock as `map_phase` (phase-relative in the
/// fault-free path, absolute in the faulted one, which is why the caller
/// passes the reducer-NIC floor explicitly).
std::vector<FetchPlacement> schedule_fetches(const SimScheduler& scheduler,
                                             std::span<const FetchSpec> fetches,
                                             const PhaseTimeline& map_phase) {
  std::vector<std::size_t> order(fetches.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (fetches[a].reducer != fetches[b].reducer) {
                       return fetches[a].reducer < fetches[b].reducer;
                     }
                     const double ready_a =
                         map_phase.tasks[fetches[a].map_task].end_s;
                     const double ready_b =
                         map_phase.tasks[fetches[b].map_task].end_s;
                     if (ready_a != ready_b) return ready_a < ready_b;
                     return fetches[a].map_task < fetches[b].map_task;
                   });
  std::vector<FetchPlacement> placed;
  placed.reserve(fetches.size());
  std::size_t current_reducer = 0;
  double reducer_free = 0.0;
  bool first = true;
  for (const std::size_t idx : order) {
    const FetchSpec& fetch = fetches[idx];
    MRMC_REQUIRE(fetch.map_task < map_phase.tasks.size(),
                 "fetch references an unknown map task");
    if (first || fetch.reducer != current_reducer) {
      current_reducer = fetch.reducer;
      reducer_free = 0.0;
      first = false;
    }
    const double ready = map_phase.tasks[fetch.map_task].end_s;
    const double start = std::max(ready, reducer_free);
    const double end = start + scheduler.fetch_time(fetch.bytes);
    reducer_free = end;
    placed.push_back({fetch.map_task, fetch.reducer, start, end, fetch.bytes});
  }
  return placed;
}

/// Metrics + doctor input + trace + log for a finished timeline — shared by
/// the fault-free and faulted simulate_job paths so both emit identically.
void emit_job(const SimScheduler& scheduler, const JobTimeline& timeline,
              std::span<const TaskSpec> map_specs,
              std::span<const TaskSpec> reduce_specs,
              double shuffle_bytes, const std::string& job_name) {
  auto& registry = obs::Registry::global();
  registry.counter("mr.sim_jobs").inc();
  registry.counter("mr.data_local_tasks")
      .add(static_cast<long>(timeline.map_phase.data_local_tasks +
                             timeline.reduce_phase.data_local_tasks));
  registry.counter("mr.speculated_tasks")
      .add(static_cast<long>(timeline.map_phase.speculated_tasks +
                             timeline.reduce_phase.speculated_tasks));
  registry.counter("mr.shuffle_bytes")
      .add(static_cast<long>(shuffle_bytes));
  auto& map_hist = registry.histogram("mr.map_task_sim_s");
  for (const TaskPlacement& task : timeline.map_phase.tasks) {
    map_hist.observe(task.end_s - task.start_s);
  }
  auto& reduce_hist = registry.histogram("mr.reduce_task_sim_s");
  for (const TaskPlacement& task : timeline.reduce_phase.tasks) {
    reduce_hist.observe(task.end_s - task.start_s);
  }
  registry.histogram("mr.shuffle_sim_s").observe(timeline.shuffle_s);
  if (!timeline.faults.empty()) {
    registry.counter("mr.node_crashes")
        .add(static_cast<long>(timeline.faults.events.size()));
    registry.counter("mr.killed_attempts")
        .add(static_cast<long>(timeline.faults.killed_attempts));
    registry.counter("mr.lost_map_outputs")
        .add(static_cast<long>(timeline.faults.lost_map_outputs));
    registry.counter("mr.blacklisted_nodes")
        .add(static_cast<long>(timeline.faults.blacklisted_nodes));
  }

  // Claim this job's lineage slot unconditionally: the sequence counter of
  // a live obs::pipeline scope must advance exactly once per simulated job,
  // whatever sinks are enabled, and run_splits reads the claim back via
  // obs::pipeline::last_claim() to stamp its wall span.
  const std::optional<obs::pipeline::Claim> claim = obs::pipeline::claim();

  auto& collector = obs::report::Collector::global();
  if (collector.enabled()) {
    obs::report::JobInput input =
        report_input(timeline, scheduler.config(), job_name, shuffle_bytes);
    if (claim) {
      input.pipeline = claim->pipeline;
      input.stage = claim->stage;
      input.round = claim->round;
      input.sequence = claim->sequence;
    }
    collector.add(std::move(input));
  }

  auto& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    const std::uint32_t pid = tracer.begin_sim_job(job_name);
    const ClusterConfig& config = scheduler.config();
    if (claim) {
      // Lineage instant on the job's own sim track: jobs_from_trace turns
      // it back into the JobInput lineage fields, and the pipeline doctor
      // regroups jobs by it.
      obs::TraceEvent lineage_event;
      lineage_event.name = "job_lineage";
      lineage_event.category = "sim";
      lineage_event.phase = 'i';
      lineage_event.pid = pid;
      lineage_event.args = {{"pipeline", claim->pipeline},
                            {"stage", claim->stage},
                            {"round", std::to_string(claim->round)},
                            {"sequence", std::to_string(claim->sequence)}};
      tracer.append(std::move(lineage_event));
      // Flow arrow from the previous job of this pipeline to this one, so
      // trace viewers draw the cross-job chain.  Reconstruction skips
      // 's'/'f' phases entirely, keeping reports byte-identical.
      if (const obs::pipeline::FlowLink link = obs::pipeline::take_flow_link();
          link.valid) {
        const std::uint64_t flow = obs::pipeline::flow_event_id(*claim);
        obs::TraceEvent flow_out;
        flow_out.name = "pipeline";
        flow_out.category = "flow";
        flow_out.phase = 's';
        flow_out.ts_us = link.end_ts_us;
        flow_out.pid = link.pid;
        flow_out.flow_id = flow;
        tracer.append(std::move(flow_out));
        obs::TraceEvent flow_in;
        flow_in.name = "pipeline";
        flow_in.category = "flow";
        flow_in.phase = 'f';
        flow_in.ts_us = 0.0;
        flow_in.pid = pid;
        flow_in.flow_id = flow;
        tracer.append(std::move(flow_in));
      }
      obs::pipeline::set_flow_link(pid, timeline.total_s * 1e6);
    }
    // Cluster shape + startup for offline reconstruction (mrmc_doctor); the
    // doubles travel as %.17g so the offline report is bit-identical.
    obs::TraceEvent config_event;
    config_event.name = "job_config";
    config_event.category = "sim";
    config_event.phase = 'i';
    config_event.pid = pid;
    config_event.args = {
        {"nodes", std::to_string(config.nodes)},
        {"map_slots_per_node", std::to_string(config.map_slots_per_node)},
        {"reduce_slots_per_node", std::to_string(config.reduce_slots_per_node)},
        {"job_startup_s", obs::trace_double(config.job_startup_s)},
        {"shuffle_bytes", obs::trace_double(shuffle_bytes)}};
    tracer.append(std::move(config_event));
    if (!timeline.bytes.empty()) {
      // Byte totals as %.17g instants so jobs_from_trace restores the exact
      // doubles — the "bytes" report section stays byte-identical across
      // the in-process and offline ingestion paths.
      obs::TraceEvent bytes_event;
      bytes_event.name = "job_bytes";
      bytes_event.category = "sim";
      bytes_event.phase = 'i';
      bytes_event.pid = pid;
      bytes_event.args = {
          {"map_input_bytes",
           obs::trace_double(timeline.bytes.map_input_bytes)},
          {"map_output_bytes",
           obs::trace_double(timeline.bytes.map_output_bytes)},
          {"reduce_input_bytes",
           obs::trace_double(timeline.bytes.reduce_input_bytes)},
          {"reduce_output_bytes",
           obs::trace_double(timeline.bytes.reduce_output_bytes)},
          {"fetch_bytes", obs::trace_double(timeline.bytes.fetch_bytes)},
          {"fetch_count", std::to_string(timeline.bytes.fetch_count)},
          {"max_fetch_fan_in",
           std::to_string(timeline.bytes.max_fetch_fan_in)}};
      tracer.append(std::move(bytes_event));
    }
    // Fault instants precede the task events so offline reconstruction
    // (jobs_from_trace) rebuilds the doctor's fault lists in the exact
    // order analyze() sees them in-process.
    for (const faults::NodeDownEvent& event : timeline.faults.events) {
      obs::TraceEvent fault_event;
      fault_event.name = "node_fault";
      fault_event.category = "sim";
      fault_event.phase = 'i';
      fault_event.pid = pid;
      fault_event.args = {
          {"node", std::to_string(event.node)},
          {"crash_s", obs::trace_double(event.crash_s)},
          {"detect_s", obs::trace_double(event.detect_s)},
          {"recover_s", obs::trace_double(event.recover_s)},
          {"blacklisted", event.blacklisted ? "true" : "false"}};
      tracer.append(std::move(fault_event));
    }
    for (const faults::LostAttempt& lost : timeline.faults.lost_attempts) {
      obs::TraceEvent lost_event;
      lost_event.name = "lost_attempt";
      lost_event.category = "sim";
      lost_event.phase = 'i';
      lost_event.pid = pid;
      lost_event.args = {{"phase", lost.phase},
                         {"kind", lost.kind},
                         {"task", std::to_string(lost.task)},
                         {"node", std::to_string(lost.node)},
                         {"slot", std::to_string(lost.slot)},
                         {"start_s", obs::trace_double(lost.start_s)},
                         {"end_s", obs::trace_double(lost.end_s)}};
      tracer.append(std::move(lost_event));
    }
    // Reduce tracks live above the map tracks; the shuffle gets its own.
    const auto reduce_tid_base = static_cast<std::uint32_t>(
        config.nodes * config.map_slots_per_node);
    const std::uint32_t shuffle_tid =
        reduce_tid_base + static_cast<std::uint32_t>(
                              config.nodes * config.reduce_slots_per_node);
    const double map_offset = config.job_startup_s;
    const double shuffle_offset = map_offset + timeline.map_phase.makespan_s;
    const double reduce_offset = shuffle_offset + timeline.shuffle_s;
    trace_sim_phase(tracer, pid, "map", timeline.map_phase, map_specs,
                    config.map_slots_per_node, 0, map_offset);
    if (timeline.shuffle_s > 0.0) {
      tracer.name_sim_track(pid, shuffle_tid, "shuffle");
      tracer.sim_task(pid, shuffle_tid, "shuffle", 0.0, timeline.shuffle_s,
                      {{"phase", "shuffle"},
                       {"bytes", obs::trace_double(shuffle_bytes)}},
                      shuffle_offset);
    }
    // Per-fetch shuffle events, one track per reducer, on the map-phase
    // clock (fetches overlap the map phase).  Offline reconstruction
    // (jobs_from_trace) skips phase=fetch events; the aggregate shuffle
    // event above remains the doctor's source of truth.
    for (const FetchPlacement& fetch : timeline.fetches) {
      const std::uint32_t tid =
          shuffle_tid + 1 + static_cast<std::uint32_t>(fetch.reducer);
      tracer.name_sim_track(pid, tid,
                            "shuffle fetch r" + std::to_string(fetch.reducer));
      tracer.sim_task(pid, tid,
                      "fetch m" + std::to_string(fetch.map_task) + " r" +
                          std::to_string(fetch.reducer),
                      fetch.start_s, fetch.end_s,
                      {{"phase", "fetch"},
                       {"map", std::to_string(fetch.map_task)},
                       {"reducer", std::to_string(fetch.reducer)},
                       {"bytes", obs::trace_double(fetch.bytes)}},
                      map_offset);
    }
    trace_sim_phase(tracer, pid, "reduce", timeline.reduce_phase, reduce_specs,
                    config.reduce_slots_per_node, reduce_tid_base,
                    reduce_offset);

    // Sampled live-task counters and cumulative progress curves on the
    // deterministic sim-time grid: both series depend only on the timeline,
    // never on wall-clock pacing, so sampled traces stay reproducible run
    // to run.
    const bool want_sampler_grid = obs::ResourceSampler::global().enabled();
    const bool want_progress_grid = obs::progress::Tracker::global().enabled();
    if (want_sampler_grid || want_progress_grid) {
      const auto to_intervals = [](const std::vector<TaskPlacement>& tasks,
                                   double offset) {
        std::vector<obs::SimInterval> intervals;
        intervals.reserve(tasks.size());
        for (const TaskPlacement& task : tasks) {
          intervals.push_back({task.start_s + offset, task.end_s + offset});
        }
        return intervals;
      };
      std::vector<obs::SimInterval> fetch_intervals;
      fetch_intervals.reserve(timeline.fetches.size());
      for (const FetchPlacement& fetch : timeline.fetches) {
        fetch_intervals.push_back(
            {fetch.start_s + map_offset, fetch.end_s + map_offset});
      }
      const std::vector<obs::SimInterval> map_intervals =
          to_intervals(timeline.map_phase.tasks, map_offset);
      const std::vector<obs::SimInterval> reduce_intervals =
          to_intervals(timeline.reduce_phase.tasks, reduce_offset);
      if (want_sampler_grid) {
        obs::emit_sim_task_counters(tracer, pid, map_intervals,
                                    fetch_intervals, reduce_intervals,
                                    timeline.total_s);
      }
      if (want_progress_grid) {
        obs::progress::emit_sim_progress_grid(tracer, pid, map_intervals,
                                              fetch_intervals,
                                              reduce_intervals,
                                              timeline.total_s);
      }
    }
  }

  static const obs::Logger logger("mr.sim");
  logger.debug("job simulated",
               {{"job", job_name},
                {"maps", map_specs.size()},
                {"reduces", reduce_specs.size()},
                {"sim_total_s", timeline.total_s},
                {"summary", timeline.summary()}});
  if (!timeline.faults.empty()) {
    logger.info("job ran under node faults",
                {{"job", job_name},
                 {"node_crashes", timeline.faults.events.size()},
                 {"killed_attempts", timeline.faults.killed_attempts},
                 {"lost_map_outputs", timeline.faults.lost_map_outputs},
                 {"blacklisted_nodes", timeline.faults.blacklisted_nodes}});
  }
}

/// Faulted list scheduling for one phase: pending task indices (LPT-first)
/// are placed onto the earliest slot whose node is up, with the same
/// first-minimal tie-breaks and delay-scheduling locality override as
/// SimScheduler::schedule_phase.  Times are phase-relative; `offset` maps
/// them onto the absolute job clock of the fault plan (tracker queries and
/// the LostAttempt records).  Under a tracker whose crashes never intersect
/// the phase, every arithmetic operation equals schedule_phase's, so the
/// placements are BIT-identical to the fault-free schedule.  An attempt
/// that would outlive its node's up-window is killed at the crash instant
/// and re-queued at the heartbeat detection time.  `slot_free` and `ready`
/// persist across calls so map-output invalidation can re-run a subset with
/// history intact.
void run_faulted_phase(const SimScheduler& scheduler,
                       std::span<const TaskSpec> tasks,
                       const faults::NodeTracker& tracker,
                       const char* phase_name, double offset,
                       std::deque<std::size_t> pending,
                       std::vector<std::vector<double>>& slot_free,
                       std::vector<double>& ready, PhaseTimeline& phase,
                       faults::FaultOutcome& outcome) {
  const ClusterConfig& config = scheduler.config();
  // Earliest (slot, start) on `node` for work ready at `task_ready`, plus
  // the crash instant bounding the chosen up-window (both phase-relative).
  const auto candidate = [&](int node, double task_ready) {
    std::size_t best_slot = 0;
    const auto& slots = slot_free[static_cast<std::size_t>(node)];
    for (std::size_t s = 1; s < slots.size(); ++s) {
      if (slots[s] < slots[best_slot]) best_slot = s;
    }
    const double raw = std::max(slots[best_slot], task_ready);
    const double raw_abs = raw + offset;
    const faults::NodeTracker::Window window =
        tracker.next_window(node, raw_abs);
    if (window.start == faults::kNever) {
      return std::tuple<std::size_t, double, double>(best_slot, faults::kNever,
                                                     faults::kNever);
    }
    // next_window clamps the window start up to the query time; a window
    // already open at raw_abs must keep `raw` bit-for-bit (subtracting the
    // offset back would round), which is what makes the no-effective-crash
    // schedule identical to schedule_phase's.
    const double start =
        window.start <= raw_abs ? raw : window.start - offset;
    const double crash = window.crash == faults::kNever
                             ? faults::kNever
                             : window.crash - offset;
    return std::tuple<std::size_t, double, double>(best_slot, start, crash);
  };
  while (!pending.empty()) {
    const std::size_t idx = pending.front();
    pending.pop_front();
    const TaskSpec& task = tasks[idx];
    int best_node = -1;
    std::size_t best_slot = 0;
    double best_start = faults::kNever;
    double best_crash = faults::kNever;
    for (int n = 0; n < static_cast<int>(config.nodes); ++n) {
      const auto [slot, start, crash] = candidate(n, ready[idx]);
      if (start < best_start) {
        best_node = n;
        best_slot = slot;
        best_start = start;
        best_crash = crash;
      }
    }
    MRMC_CHECK(best_node >= 0, "fault plan left no schedulable node");
    if (task.preferred_node >= 0 &&
        task.preferred_node < static_cast<int>(config.nodes) &&
        task.preferred_node != best_node) {
      const auto [slot, start, crash] =
          candidate(task.preferred_node, ready[idx]);
      if (start <= best_start + config.task_startup_s) {
        best_node = task.preferred_node;
        best_slot = slot;
        best_start = start;
        best_crash = crash;
      }
    }
    const bool local =
        task.preferred_node < 0 || task.preferred_node == best_node;
    const double end = best_start + scheduler.task_duration(task, local);
    if (end > best_crash) {
      // The node dies under the attempt: the slot is gone at the crash and
      // the task cannot restart before the heartbeat timeout notices.
      const double detect = tracker.detection_s(best_crash + offset);
      outcome.lost_attempts.push_back({phase_name, "killed", idx, best_node,
                                       static_cast<int>(best_slot),
                                       best_start + offset, detect});
      ++outcome.killed_attempts;
      slot_free[static_cast<std::size_t>(best_node)][best_slot] = best_crash;
      ready[idx] = detect - offset;
      pending.push_back(idx);
      continue;
    }
    slot_free[static_cast<std::size_t>(best_node)][best_slot] = end;
    phase.tasks[idx] = {best_node, static_cast<int>(best_slot), best_start, end,
                        local};
  }
}

/// Longest-duration-first work order, same comparator as schedule_phase.
std::deque<std::size_t> lpt_order(const SimScheduler& scheduler,
                                  std::span<const TaskSpec> tasks) {
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return scheduler.task_duration(tasks[a], true) >
                            scheduler.task_duration(tasks[b], true);
                   });
  return {order.begin(), order.end()};
}

}  // namespace

JobTimeline simulate_job(const SimScheduler& scheduler,
                         std::span<const TaskSpec> map_tasks,
                         double shuffle_bytes,
                         std::span<const FetchSpec> fetches,
                         std::span<const TaskSpec> reduce_tasks,
                         const std::string& job_name) {
  JobTimeline timeline;
  timeline.map_phase =
      scheduler.schedule_phase(map_tasks, scheduler.config().map_slots_per_node);
  if (fetches.empty()) {
    // Aggregate barrier model: one all-to-all transfer after the map phase.
    timeline.shuffle_s = scheduler.shuffle_time(shuffle_bytes);
  } else {
    // Overlapped model: each fetch starts when its map run is available and
    // the reducer's NIC is free; only the tail beyond the last map task
    // extends the job.
    timeline.fetches =
        schedule_fetches(scheduler, fetches, timeline.map_phase);
    double shuffle_done = 0.0;
    for (const FetchPlacement& fetch : timeline.fetches) {
      shuffle_done = std::max(shuffle_done, fetch.end_s);
    }
    timeline.shuffle_s =
        std::max(0.0, shuffle_done - timeline.map_phase.makespan_s);
  }
  timeline.reduce_phase = scheduler.schedule_phase(
      reduce_tasks, scheduler.config().reduce_slots_per_node);
  timeline.total_s = scheduler.config().job_startup_s +
                     timeline.map_phase.makespan_s + timeline.shuffle_s +
                     timeline.reduce_phase.makespan_s;
  timeline.bytes = summarize_bytes(map_tasks, fetches, reduce_tasks);
  emit_job(scheduler, timeline, map_tasks, reduce_tasks, shuffle_bytes,
           job_name);
  return timeline;
}

JobTimeline simulate_job(const SimScheduler& scheduler,
                         std::span<const TaskSpec> map_tasks,
                         double shuffle_bytes,
                         std::span<const FetchSpec> fetches,
                         std::span<const TaskSpec> reduce_tasks,
                         const std::string& job_name,
                         const faults::FaultPlan& plan) {
  if (plan.empty()) {
    return simulate_job(scheduler, map_tasks, shuffle_bytes, fetches,
                        reduce_tasks, job_name);
  }
  const ClusterConfig& config = scheduler.config();
  plan.validate(config.nodes);
  faults::NodeTracker tracker(plan, config.nodes);

  JobTimeline timeline;
  timeline.faults.events = tracker.down_events();
  timeline.faults.blacklisted_nodes = tracker.blacklisted_nodes();

  // Map phase on its own phase-relative clock (the fault plan's absolute
  // job clock is job_startup_s later), so that a plan whose crashes never
  // intersect the schedule reproduces the fault-free timeline bit-for-bit.
  timeline.map_phase.tasks.resize(map_tasks.size());
  std::vector<std::vector<double>> map_slot_free(
      config.nodes, std::vector<double>(config.map_slots_per_node, 0.0));
  std::vector<double> map_ready(map_tasks.size(), 0.0);
  run_faulted_phase(scheduler, map_tasks, tracker, "map",
                    config.job_startup_s, lpt_order(scheduler, map_tasks),
                    map_slot_free, map_ready, timeline.map_phase,
                    timeline.faults);

  // Map-output invalidation (Hadoop's fetch-failure path): a *completed*
  // map whose node dies before every reducer has pulled its output must
  // re-execute.  Loop until a fixed point: each re-execution shifts the
  // serialized fetch schedule, which can extend other maps' vulnerability
  // windows and expose further crashes as invalidating.  The loop
  // terminates because a given map's invalidating crashes are strictly
  // time-increasing and the plan is finite.
  if (!map_tasks.empty()) {
    for (;;) {
      // Safe instants on the ABSOLUTE job clock (crash times live there);
      // placements are map-phase-relative, hence the + job_startup_s.
      std::vector<double> safe(map_tasks.size());
      if (!fetches.empty()) {
        for (std::size_t m = 0; m < map_tasks.size(); ++m) {
          safe[m] = timeline.map_phase.tasks[m].end_s + config.job_startup_s;
        }
        for (const FetchPlacement& fetch :
             schedule_fetches(scheduler, fetches, timeline.map_phase)) {
          safe[fetch.map_task] = std::max(
              safe[fetch.map_task], fetch.end_s + config.job_startup_s);
        }
      } else {
        // Aggregate model: every output is consumed by the barrier shuffle
        // that ends shuffle_time after the last map.  No shuffle bytes, no
        // re-reads: outputs are safe the moment the map finishes.
        double map_done = 0.0;
        for (const TaskPlacement& placed : timeline.map_phase.tasks) {
          map_done = std::max(map_done, placed.end_s);
        }
        const double barrier =
            shuffle_bytes > 0
                ? config.job_startup_s + map_done +
                      scheduler.shuffle_time(shuffle_bytes)
                : 0.0;
        for (std::size_t m = 0; m < map_tasks.size(); ++m) {
          safe[m] = std::max(
              timeline.map_phase.tasks[m].end_s + config.job_startup_s,
              barrier);
        }
      }
      double first_crash = faults::kNever;
      int crash_node = -1;
      for (std::size_t m = 0; m < map_tasks.size(); ++m) {
        const TaskPlacement& placed = timeline.map_phase.tasks[m];
        const double crash = tracker.crash_in(
            placed.node, placed.end_s + config.job_startup_s, safe[m]);
        if (crash < first_crash ||
            (crash == first_crash && crash != faults::kNever &&
             placed.node < crash_node)) {
          first_crash = crash;
          crash_node = placed.node;
        }
      }
      if (first_crash == faults::kNever) break;
      const double detect = tracker.detection_s(first_crash);
      std::vector<std::size_t> invalidated;
      for (std::size_t m = 0; m < map_tasks.size(); ++m) {
        const TaskPlacement& placed = timeline.map_phase.tasks[m];
        if (placed.node != crash_node ||
            placed.end_s + config.job_startup_s > first_crash ||
            first_crash >= safe[m]) {
          continue;
        }
        timeline.faults.lost_attempts.push_back(
            {"map", "lost-output", m, placed.node, placed.slot,
             placed.start_s + config.job_startup_s, detect});
        ++timeline.faults.lost_map_outputs;
        map_ready[m] = detect - config.job_startup_s;
        invalidated.push_back(m);
      }
      MRMC_CHECK(!invalidated.empty(),
                 "map-output invalidation matched no attempt");
      std::stable_sort(invalidated.begin(), invalidated.end(),
                       [&](std::size_t a, std::size_t b) {
                         return scheduler.task_duration(map_tasks[a], true) >
                                scheduler.task_duration(map_tasks[b], true);
                       });
      run_faulted_phase(
          scheduler, map_tasks, tracker, "map", config.job_startup_s,
          std::deque<std::size_t>(invalidated.begin(), invalidated.end()),
          map_slot_free, map_ready, timeline.map_phase, timeline.faults);
    }
  }

  // Shuffle on the map-phase-relative clock, exactly like the fault-free
  // path (no conversions: a no-effect plan keeps every number bit-equal).
  double map_done = 0.0;
  for (const TaskPlacement& placed : timeline.map_phase.tasks) {
    map_done = std::max(map_done, placed.end_s);
  }
  if (fetches.empty()) {
    timeline.shuffle_s = scheduler.shuffle_time(shuffle_bytes);
  } else {
    timeline.fetches = schedule_fetches(scheduler, fetches, timeline.map_phase);
    double shuffle_done = 0.0;
    for (const FetchPlacement& fetch : timeline.fetches) {
      shuffle_done = std::max(shuffle_done, fetch.end_s);
    }
    timeline.shuffle_s = std::max(0.0, shuffle_done - map_done);
  }

  // Reduce phase: launches after the shuffle barrier on its own relative
  // clock, kills only (nothing downstream invalidates reduce outputs).
  const double reduce_offset =
      config.job_startup_s + map_done + timeline.shuffle_s;
  timeline.reduce_phase.tasks.resize(reduce_tasks.size());
  std::vector<std::vector<double>> reduce_slot_free(
      config.nodes, std::vector<double>(config.reduce_slots_per_node, 0.0));
  std::vector<double> reduce_ready(reduce_tasks.size(), 0.0);
  run_faulted_phase(scheduler, reduce_tasks, tracker, "reduce", reduce_offset,
                    lpt_order(scheduler, reduce_tasks), reduce_slot_free,
                    reduce_ready, timeline.reduce_phase, timeline.faults);

  // Fold the derived phase stats.  Speculative execution is intentionally
  // not applied under faults: a backup copy's slot occupancy would interact
  // with kills (DESIGN.md).
  const auto finalize_phase = [](PhaseTimeline& phase) {
    for (const TaskPlacement& placed : phase.tasks) {
      phase.makespan_s = std::max(phase.makespan_s, placed.end_s);
      if (placed.data_local) ++phase.data_local_tasks;
    }
  };
  finalize_phase(timeline.map_phase);
  finalize_phase(timeline.reduce_phase);
  timeline.total_s = config.job_startup_s + timeline.map_phase.makespan_s +
                     timeline.shuffle_s + timeline.reduce_phase.makespan_s;
  timeline.bytes = summarize_bytes(map_tasks, fetches, reduce_tasks);
  emit_job(scheduler, timeline, map_tasks, reduce_tasks, shuffle_bytes,
           job_name);
  return timeline;
}

obs::report::JobInput report_input(const JobTimeline& timeline,
                                   const ClusterConfig& config,
                                   std::string job_name, double shuffle_bytes) {
  obs::report::JobInput input;
  input.name = std::move(job_name);
  input.nodes = config.nodes;
  input.map_slots_per_node = config.map_slots_per_node;
  input.reduce_slots_per_node = config.reduce_slots_per_node;
  input.job_startup_s = config.job_startup_s;
  input.shuffle_s = timeline.shuffle_s;
  input.shuffle_bytes = shuffle_bytes;
  input.bytes = timeline.bytes;
  const auto convert = [](const PhaseTimeline& phase) {
    std::vector<obs::report::TaskSample> tasks;
    tasks.reserve(phase.tasks.size());
    for (std::size_t i = 0; i < phase.tasks.size(); ++i) {
      const TaskPlacement& task = phase.tasks[i];
      tasks.push_back({i, task.node, task.slot, task.start_s, task.end_s,
                       task.data_local});
    }
    return tasks;
  };
  input.map_tasks = convert(timeline.map_phase);
  input.reduce_tasks = convert(timeline.reduce_phase);
  input.fault_events.reserve(timeline.faults.events.size());
  for (const faults::NodeDownEvent& event : timeline.faults.events) {
    input.fault_events.push_back({event.node, event.crash_s, event.detect_s,
                                  event.recover_s, event.blacklisted});
  }
  input.lost_attempts.reserve(timeline.faults.lost_attempts.size());
  for (const faults::LostAttempt& lost : timeline.faults.lost_attempts) {
    input.lost_attempts.push_back({lost.phase, lost.kind, lost.task, lost.node,
                                   lost.slot, lost.start_s, lost.end_s});
  }
  return input;
}

std::string JobTimeline::summary() const {
  return "map=" + common::format_duration(map_phase.makespan_s) +
         " shuffle=" + common::format_duration(shuffle_s) +
         " reduce=" + common::format_duration(reduce_phase.makespan_s) +
         " total=" + common::format_duration(total_s);
}

}  // namespace mrmc::mr

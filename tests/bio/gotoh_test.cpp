#include "bio/gotoh.hpp"

#include <gtest/gtest.h>

#include "bio/dna.hpp"
#include "common/error.hpp"
#include "common/prng.hpp"

namespace mrmc::bio {
namespace {

TEST(Gotoh, IdenticalSequences) {
  const auto result = gotoh_align("ACGTACGT", "ACGTACGT");
  EXPECT_EQ(result.score, 8);
  EXPECT_DOUBLE_EQ(result.identity, 1.0);
  EXPECT_EQ(result.columns, 8u);
}

TEST(Gotoh, EmptyInputs) {
  EXPECT_DOUBLE_EQ(gotoh_align("", "").identity, 1.0);
  // 3-base gap: open -4 + 3 * extend -1 = -7.
  EXPECT_EQ(gotoh_align("", "ACG").score, -7);
  EXPECT_EQ(gotoh_align("ACG", "").score, -7);
}

TEST(Gotoh, SingleMismatchMatchesLinear) {
  EXPECT_EQ(gotoh_score("ACGT", "ACGA"), 2);  // 3 - 1
}

TEST(Gotoh, OneLongGapBeatsScatteredGaps) {
  // Affine scoring prefers one contiguous 3-gap (open once) over three
  // isolated gaps (open three times).  Verify the score equals the single
  // contiguous interpretation: 7 matches + open + 3 extends.
  const auto result = gotoh_align("AAACCCTTTT", "AAATTTT");
  EXPECT_EQ(result.score, 7 * 1 + (-4) + 3 * (-1));
  EXPECT_DOUBLE_EQ(result.identity, 0.7);  // 7 matches / 10 columns
}

TEST(Gotoh, GapOpenCostDiscouragesFragmentation) {
  // With linear gaps (open=0 equivalent), two isolated gaps cost the same
  // as one 2-gap; with affine, the contiguous arrangement scores higher.
  const AffineParams affine{.match = 1, .mismatch = -2, .gap_open = -5,
                            .gap_extend = -1};
  const long contiguous = gotoh_score("AAAATTTT", "AAAACCTTTT", affine);
  // 8 matches, one 2-gap: 8 - 5 - 2 = 1.
  EXPECT_EQ(contiguous, 1);
}

TEST(Gotoh, IsSymmetric) {
  common::Xoshiro256 rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::string a, b;
    const std::size_t la = 10 + rng.bounded(20);
    const std::size_t lb = 10 + rng.bounded(20);
    for (std::size_t i = 0; i < la; ++i) {
      a.push_back(decode_base(static_cast<int>(rng.bounded(4))));
    }
    for (std::size_t i = 0; i < lb; ++i) {
      b.push_back(decode_base(static_cast<int>(rng.bounded(4))));
    }
    EXPECT_EQ(gotoh_score(a, b), gotoh_score(b, a));
    EXPECT_DOUBLE_EQ(gotoh_align(a, b).identity, gotoh_align(b, a).identity);
  }
}

TEST(Gotoh, ReducesToLinearWhenOpenIsZero) {
  // gap_open = 0 makes affine scoring equal to NW with gap = gap_extend.
  const AffineParams affine{.match = 1, .mismatch = -1, .gap_open = 0,
                            .gap_extend = -2};
  const AlignParams linear{.match = 1, .mismatch = -1, .gap = -2};
  common::Xoshiro256 rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    std::string a, b;
    for (int i = 0; i < 15; ++i) {
      a.push_back(decode_base(static_cast<int>(rng.bounded(4))));
      b.push_back(decode_base(static_cast<int>(rng.bounded(4))));
    }
    EXPECT_EQ(gotoh_score(a, b, affine), nw_score(a, b, linear));
  }
}

TEST(Gotoh, ScoreNeverExceedsLinearEquivalent) {
  // Affine adds an opening penalty on top of per-column costs, so the
  // affine score is <= the linear-gap score with gap = gap_extend.
  common::Xoshiro256 rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::string a, b;
    const std::size_t la = 10 + rng.bounded(15);
    const std::size_t lb = 10 + rng.bounded(15);
    for (std::size_t i = 0; i < la; ++i) {
      a.push_back(decode_base(static_cast<int>(rng.bounded(4))));
    }
    for (std::size_t i = 0; i < lb; ++i) {
      b.push_back(decode_base(static_cast<int>(rng.bounded(4))));
    }
    EXPECT_LE(gotoh_score(a, b), nw_score(a, b, {.match = 1, .mismatch = -1,
                                                 .gap = -1}));
  }
}

TEST(Gotoh, IdentityBounded) {
  common::Xoshiro256 rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    std::string a, b;
    for (int i = 0; i < 25; ++i) {
      a.push_back(decode_base(static_cast<int>(rng.bounded(4))));
      b.push_back(decode_base(static_cast<int>(rng.bounded(4))));
    }
    const double identity = gotoh_align(a, b).identity;
    EXPECT_GE(identity, 0.0);
    EXPECT_LE(identity, 1.0);
  }
}

TEST(Gotoh, RejectsPositiveGapPenalties) {
  EXPECT_THROW(gotoh_align("AC", "AC", {.gap_open = 1}),
               common::InvalidArgument);
}

}  // namespace
}  // namespace mrmc::bio

#include "baselines/hclust_family.hpp"

#include <algorithm>

#include "baselines/word_stats.hpp"
#include "bio/alignment.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/hierarchical.hpp"

namespace mrmc::baselines {

namespace {

/// Complete-linkage clustering of a similarity matrix, cut at `identity`.
std::vector<int> complete_linkage_cut(const core::SimilarityMatrix& matrix,
                                      double identity) {
  const core::Dendrogram dendrogram =
      core::agglomerate(matrix, core::Linkage::kComplete);
  return core::cut_dendrogram(dendrogram, identity);
}

}  // namespace

BaselineResult esprit_cluster(std::span<const bio::FastaRecord> reads,
                              const EspritParams& params) {
  MRMC_REQUIRE(params.identity > 0.0 && params.identity <= 1.0,
               "identity in (0, 1]");
  common::Stopwatch watch;
  BaselineResult result;
  const std::size_t n = reads.size();
  if (n == 0) return result;

  std::vector<std::vector<std::uint16_t>> words;
  words.reserve(n);
  for (const auto& read : reads) {
    words.push_back(word_counts(read.seq, params.word_size));
  }

  core::SimilarityMatrix matrix(n, 0.0F);
  for (std::size_t i = 0; i < n; ++i) {
    matrix.set(i, i, 1.0F);
    for (std::size_t j = i + 1; j < n; ++j) {
      ++result.comparisons;
      const double kd = kmer_distance(words[i], reads[i].seq.size(), words[j],
                                      reads[j].seq.size(), params.word_size);
      if (kd >= params.kmer_filter) {
        matrix.set(i, j, 0.0F);  // filtered: never aligned, treated as far
        continue;
      }
      ++result.alignments;
      const double identity = bio::global_identity(reads[i].seq, reads[j].seq,
                                                   {.band = params.band});
      matrix.set(i, j, static_cast<float>(identity));
    }
  }

  result.labels = complete_linkage_cut(matrix, params.identity);
  result.num_clusters = core::count_clusters(result.labels);
  result.wall_s = watch.seconds();
  return result;
}

BaselineResult dotur_cluster(std::span<const bio::FastaRecord> reads,
                             const DoturParams& params) {
  MRMC_REQUIRE(params.identity > 0.0 && params.identity <= 1.0,
               "identity in (0, 1]");
  common::Stopwatch watch;
  BaselineResult result;
  const std::size_t n = reads.size();
  if (n == 0) return result;

  core::SimilarityMatrix matrix(n, 0.0F);
  for (std::size_t i = 0; i < n; ++i) {
    matrix.set(i, i, 1.0F);
    for (std::size_t j = i + 1; j < n; ++j) {
      ++result.alignments;
      const double identity = bio::global_identity(reads[i].seq, reads[j].seq,
                                                   {.band = params.band});
      matrix.set(i, j, static_cast<float>(identity));
    }
  }

  result.labels = complete_linkage_cut(matrix, params.identity);
  result.num_clusters = core::count_clusters(result.labels);
  result.wall_s = watch.seconds();
  return result;
}

BaselineResult mothur_cluster(std::span<const bio::FastaRecord> reads,
                              const MothurParams& params) {
  MRMC_REQUIRE(params.identity > 0.0 && params.identity <= 1.0,
               "identity in (0, 1]");
  common::Stopwatch watch;
  BaselineResult result;
  const std::size_t n = reads.size();
  if (n == 0) return result;

  // Unbanded full-matrix alignment: same distances as DOTUR's (banded)
  // pipeline on near-identical pairs, heavier constant factor overall.
  core::SimilarityMatrix matrix(n, 0.0F);
  for (std::size_t i = 0; i < n; ++i) {
    matrix.set(i, i, 1.0F);
    for (std::size_t j = i + 1; j < n; ++j) {
      ++result.alignments;
      const double identity =
          bio::global_identity(reads[i].seq, reads[j].seq, {});
      matrix.set(i, j, static_cast<float>(identity));
    }
  }

  result.labels = complete_linkage_cut(matrix, params.identity);
  result.num_clusters = core::count_clusters(result.labels);
  result.wall_s = watch.seconds();
  return result;
}

}  // namespace mrmc::baselines

// Observability walkthrough: run the MrMC-MinH pipeline on a small simulated
// metagenome with tracing and metrics enabled, then write
//
//   * a Chrome trace-event file — wall-clock spans of every pipeline stage
//     and MapReduce phase on one track group, and each simulated job's
//     per-task node/slot placement on its own track group (open the file in
//     Perfetto or chrome://tracing), and
//   * a metrics snapshot — engine counters (shuffle bytes, retries,
//     data-local tasks) and per-phase simulated-duration histograms
//     (now with p50/p95/p99 estimates), and
//   * a job-doctor report — critical-path decomposition, utilization, and
//     findings for every simulated job, printed below and written as HTML, and
//   * a pipeline-doctor report — the jobs of each run_pipeline call stitched
//     into one end-to-end view (per-stage critical path, aggregate shuffle
//     bytes, stage-level findings), printed below and written as HTML.
//
//   ./trace_pipeline [reads] [trace.json] [metrics.txt] [report.html]
//       [pipeline.html]
//
// The same artifacts come out of ANY pipeline run via environment variables:
//   MRMC_TRACE=out.json MRMC_METRICS=metrics.txt MRMC_REPORT=report.html
//       ./quickstart   (all three on one command line)
// and the trace file can be re-analyzed offline: mrmc_doctor out.json
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <span>

#include "core/mrmc.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/pipeline.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "simdata/datasets.hpp"

int main(int argc, char** argv) {
  using namespace mrmc;

  const std::size_t reads = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 600;
  const std::string trace_path = argc > 2 ? argv[2] : "trace_pipeline.json";
  const std::string metrics_path = argc > 3 ? argv[3] : "trace_pipeline_metrics.txt";
  const std::string report_path = argc > 4 ? argv[4] : "trace_pipeline_report.html";
  const std::string pipeline_path =
      argc > 5 ? argv[5] : "trace_pipeline_pipeline.html";

  auto& tracer = obs::Tracer::global();
  tracer.set_output_path(trace_path);
  tracer.set_enabled(true);
  auto& collector = obs::report::Collector::global();
  collector.set_output_path(report_path);
  collector.set_enabled(true);
  auto& pipelines = obs::pipeline::Collector::global();
  pipelines.set_output_path(pipeline_path);
  pipelines.set_enabled(true);
  obs::LogConfig::global().set_default_level(obs::LogLevel::kInfo);

  // An S2-style two-species sample, clustered with both pipeline variants so
  // the trace shows all three job shapes (sketch, similarity, cluster).
  const auto& spec = simdata::whole_metagenome_spec("S2");
  simdata::WholeMetagenomeOptions options;
  options.reads = reads;
  const simdata::LabeledReads sample =
      simdata::build_whole_metagenome(spec, options);

  core::PipelineParams params;
  params.minhash = {.kmer = 5, .num_hashes = 100, .canonical = true, .seed = 1};
  for (const core::Mode mode : {core::Mode::kHierarchical, core::Mode::kGreedy}) {
    params.mode = mode;
    params.theta = mode == core::Mode::kHierarchical ? 0.54 : 0.32;
    const core::PipelineResult result = core::run_pipeline(sample.reads, params);
    std::cout << core::mode_name(mode) << ": clusters=" << result.num_clusters
              << " sim=" << common::format_duration(result.sim_total_s)
              << " (sketch " << common::format_duration(
                     result.sketch_stats.timeline.total_s)
              << ", cluster " << common::format_duration(
                     result.cluster_stats.timeline.total_s)
              << ")\n";
  }

  if (!tracer.flush()) {
    std::cerr << "failed to write " << trace_path << "\n";
    return 1;
  }
  const obs::MetricsSnapshot snapshot = obs::Registry::global().snapshot();
  std::ofstream metrics_out(metrics_path);
  metrics_out << snapshot.to_text();
  if (!metrics_out.good()) {
    std::cerr << "failed to write " << metrics_path << "\n";
    return 1;
  }

  std::cout << "\nwrote " << tracer.size() << " trace events to " << trace_path
            << " (open in Perfetto or chrome://tracing)\n"
            << "wrote metrics snapshot to " << metrics_path << "; highlights:\n";
  for (const char* key :
       {"mr.shuffle_bytes", "mr.map_retries", "mr.data_local_tasks",
        "mr.jobs", "mr.counter.reads.sketched", "mr.counter.clusters.formed"}) {
    const auto it = snapshot.counters.find(key);
    if (it != snapshot.counters.end()) {
      std::cout << "  " << it->first << " = " << it->second << "\n";
    }
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    std::cout << "  " << name << ": count=" << hist.count
              << " mean=" << hist.mean() << " p95=" << hist.percentile(0.95)
              << "\n";
  }

  // The job doctor: same analysis mrmc_doctor runs on the flushed trace.
  const auto reports = collector.reports();
  std::cout << "\nJob doctor (" << reports.size() << " simulated jobs)\n"
            << obs::report::to_text(
                   std::span<const obs::report::JobReport>(reports));
  if (collector.flush()) {
    std::cout << "wrote HTML report to " << report_path << "\n";
  }

  // The pipeline doctor: both run_pipeline calls stitched end to end — the
  // same view `mrmc_doctor pipeline <trace>` reconstructs offline.
  const auto pipeline_reports = pipelines.reports();
  std::cout << "\nPipeline doctor (" << pipeline_reports.size()
            << " pipelines)\n"
            << obs::pipeline::to_text(
                   std::span<const obs::pipeline::PipelineReport>(
                       pipeline_reports));
  if (pipelines.flush()) {
    std::cout << "wrote HTML pipeline report to " << pipeline_path << "\n";
  }
  return 0;
}

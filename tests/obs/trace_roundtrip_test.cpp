// Acceptance test for the dual-clock tracer: run the real pipeline with
// tracing enabled and prove that the exported per-task simulated events
// reconstruct each job's JobTimeline EXACTLY (bit-for-bit doubles), first
// from the in-memory events and then again after a full write-to-JSON /
// parse-back round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.hpp"
#include "common/mini_json.hpp"
#include "obs/trace.hpp"
#include "simdata/datasets.hpp"

namespace mrmc {
namespace {

using mrmc::common::JsonValue;
using mrmc::common::parse_json;

/// Phase endpoints recovered from trace events, grouped per simulated job.
struct RecoveredJob {
  std::vector<double> map_ends;
  std::vector<double> reduce_ends;
  double shuffle_start = 0.0;
  double shuffle_end = 0.0;
  bool has_shuffle = false;
};

double parse_exact(std::string_view text) {
  return std::strtod(std::string(text).c_str(), nullptr);
}

double max_or_zero(const std::vector<double>& values) {
  double max = 0.0;
  for (const double v : values) max = std::max(max, v);
  return max;
}

/// Group the tracer's in-memory sim events by job name (via the
/// "sim: <name>" process metadata on each sim pid).
std::map<std::string, RecoveredJob> recover_from_events(
    const std::vector<obs::TraceEvent>& events) {
  std::map<std::uint32_t, std::string> pid_to_job;
  for (const obs::TraceEvent& event : events) {
    if (event.phase == 'M' && event.name == "process_name" &&
        event.pid != obs::kRealPid) {
      std::string name(event.arg("name"));
      if (name.rfind("sim: ", 0) == 0) name.erase(0, 5);
      pid_to_job[event.pid] = name;
    }
  }

  std::map<std::string, RecoveredJob> jobs;
  for (const obs::TraceEvent& event : events) {
    if (event.category != "sim" || event.phase != 'X') continue;
    RecoveredJob& job = jobs[pid_to_job.at(event.pid)];
    const std::string_view phase = event.arg("phase");
    const double start = parse_exact(event.arg("start_s"));
    const double end = parse_exact(event.arg("end_s"));
    if (phase == "map") {
      job.map_ends.push_back(end);
    } else if (phase == "reduce") {
      job.reduce_ends.push_back(end);
    } else if (phase == "shuffle") {
      job.has_shuffle = true;
      job.shuffle_start = start;
      job.shuffle_end = end;
    }
  }
  return jobs;
}

/// Same recovery, but from the serialized Chrome trace JSON.
std::map<std::string, RecoveredJob> recover_from_json(const JsonValue& root) {
  const JsonValue& events = root.at("traceEvents");
  std::map<double, std::string> pid_to_job;  // JSON numbers parse as double
  for (const JsonValue& event : events.array) {
    if (event.at("ph").string == "M" &&
        event.at("name").string == "process_name" &&
        event.at("pid").number != obs::kRealPid) {
      std::string name = event.at("args").at("name").string;
      if (name.rfind("sim: ", 0) == 0) name.erase(0, 5);
      pid_to_job[event.at("pid").number] = name;
    }
  }

  std::map<std::string, RecoveredJob> jobs;
  for (const JsonValue& event : events.array) {
    if (event.at("ph").string != "X" || event.at("cat").string != "sim") {
      continue;
    }
    const JsonValue& args = event.at("args");
    RecoveredJob& job = jobs[pid_to_job.at(event.at("pid").number)];
    const std::string phase = args.at("phase").string;
    const double start = parse_exact(args.at("start_s").string);
    const double end = parse_exact(args.at("end_s").string);
    if (phase == "map") {
      job.map_ends.push_back(end);
    } else if (phase == "reduce") {
      job.reduce_ends.push_back(end);
    } else if (phase == "shuffle") {
      job.has_shuffle = true;
      job.shuffle_start = start;
      job.shuffle_end = end;
    }
  }
  return jobs;
}

/// The exactness claim: recovered endpoints equal the scheduler's doubles
/// bit for bit, so makespans (and the job total, re-added in the same
/// order simulate_job uses) match with EXPECT_EQ, not EXPECT_NEAR.
void expect_exact_reconstruction(const RecoveredJob& recovered,
                                 const mr::JobStats& stats,
                                 const mr::ClusterConfig& cluster,
                                 const std::string& context) {
  SCOPED_TRACE(context);
  const mr::JobTimeline& timeline = stats.timeline;
  ASSERT_EQ(recovered.map_ends.size(), timeline.map_phase.tasks.size());
  ASSERT_EQ(recovered.reduce_ends.size(), timeline.reduce_phase.tasks.size());

  const double map_makespan = max_or_zero(recovered.map_ends);
  const double reduce_makespan = max_or_zero(recovered.reduce_ends);
  EXPECT_EQ(map_makespan, timeline.map_phase.makespan_s);
  EXPECT_EQ(reduce_makespan, timeline.reduce_phase.makespan_s);

  double shuffle_s = 0.0;
  if (recovered.has_shuffle) {
    EXPECT_EQ(recovered.shuffle_start, 0.0);
    shuffle_s = recovered.shuffle_end;
  }
  EXPECT_EQ(shuffle_s, timeline.shuffle_s);

  // simulate_job computes total_s = startup + map + shuffle + reduce in this
  // order; repeating the additions left to right reproduces it exactly.
  EXPECT_EQ(cluster.job_startup_s + map_makespan + shuffle_s + reduce_makespan,
            timeline.total_s);
}

class TraceRoundTripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::global().clear();
    obs::Tracer::global().set_output_path("");
    obs::Tracer::global().set_enabled(true);
  }
  void TearDown() override {
    obs::Tracer::global().set_enabled(false);
    obs::Tracer::global().set_output_path("");
    obs::Tracer::global().clear();
  }

  static std::vector<bio::FastaRecord> sample_reads(std::size_t count) {
    simdata::WholeMetagenomeOptions options;
    options.reads = count;
    return simdata::build_whole_metagenome(
               simdata::whole_metagenome_spec("S2"), options)
        .reads;
  }
};

TEST_F(TraceRoundTripTest, HierarchicalPipelineEventsReconstructTimelines) {
  const auto reads = sample_reads(80);
  core::PipelineParams params;
  params.minhash = {.kmer = 5, .num_hashes = 40, .canonical = true, .seed = 1};
  params.mode = core::Mode::kHierarchical;
  params.theta = 0.5;
  core::ExecutionOptions exec;
  exec.threads = 2;
  exec.records_per_split = 16;  // several map tasks per job

  const std::string trace_path =
      ::testing::TempDir() + "/mrmc_roundtrip_hier.json";
  obs::Tracer::global().set_output_path(trace_path);

  const core::PipelineResult result = core::run_pipeline(reads, params, exec);

  // Pass 1: reconstruct from the in-memory events.
  const auto jobs = recover_from_events(obs::Tracer::global().events());
  ASSERT_TRUE(jobs.count("sketch"));
  ASSERT_TRUE(jobs.count("similarity"));
  ASSERT_TRUE(jobs.count("hierarchical-cluster"));
  expect_exact_reconstruction(jobs.at("sketch"), result.sketch_stats,
                              exec.cluster, "sketch (memory)");
  expect_exact_reconstruction(jobs.at("similarity"), result.similarity_stats,
                              exec.cluster, "similarity (memory)");
  expect_exact_reconstruction(jobs.at("hierarchical-cluster"),
                              result.cluster_stats, exec.cluster,
                              "cluster (memory)");

  // Pass 2: the pipeline flushed the Chrome trace file; parse it back and
  // verify the very same equalities survive serialization.
  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good()) << trace_path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const JsonValue root = parse_json(buffer.str());
  EXPECT_EQ(root.at("displayTimeUnit").string, "ms");

  const auto json_jobs = recover_from_json(root);
  ASSERT_EQ(json_jobs.size(), 3u);
  expect_exact_reconstruction(json_jobs.at("sketch"), result.sketch_stats,
                              exec.cluster, "sketch (json)");
  expect_exact_reconstruction(json_jobs.at("similarity"),
                              result.similarity_stats, exec.cluster,
                              "similarity (json)");
  expect_exact_reconstruction(json_jobs.at("hierarchical-cluster"),
                              result.cluster_stats, exec.cluster,
                              "cluster (json)");
}

TEST_F(TraceRoundTripTest, GreedyPipelineEventsReconstructTimelines) {
  const auto reads = sample_reads(60);
  core::PipelineParams params;
  params.minhash = {.kmer = 5, .num_hashes = 40, .canonical = true, .seed = 2};
  params.mode = core::Mode::kGreedy;
  params.theta = 0.3;
  core::ExecutionOptions exec;
  exec.threads = 2;
  exec.records_per_split = 16;

  const core::PipelineResult result = core::run_pipeline(reads, params, exec);

  const auto jobs = recover_from_events(obs::Tracer::global().events());
  ASSERT_TRUE(jobs.count("sketch"));
  ASSERT_TRUE(jobs.count("greedy-cluster"));
  expect_exact_reconstruction(jobs.at("sketch"), result.sketch_stats,
                              exec.cluster, "sketch");
  expect_exact_reconstruction(jobs.at("greedy-cluster"), result.cluster_stats,
                              exec.cluster, "greedy-cluster");

  // The wall-clock track carries the real-execution spans alongside.
  bool saw_pipeline_span = false;
  bool saw_job_span = false;
  for (const obs::TraceEvent& event : obs::Tracer::global().events()) {
    if (event.pid != obs::kRealPid || event.phase != 'X') continue;
    if (event.name.rfind("pipeline ", 0) == 0) saw_pipeline_span = true;
    if (event.name.rfind("mr.job ", 0) == 0) saw_job_span = true;
  }
  EXPECT_TRUE(saw_pipeline_span);
  EXPECT_TRUE(saw_job_span);
}

}  // namespace
}  // namespace mrmc

// Tests for mr::faults — the deterministic node-failure schedule (FaultPlan),
// the scheduler's availability view of it (NodeTracker), and its replay onto
// the simulated DFS (apply_to_dfs).
#include "mr/faults.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "mr/simdfs.hpp"

namespace mrmc::mr::faults {
namespace {

// ---------------------------------------------------------------- FaultPlan

TEST(FaultPlan, SortsEventsByCrashTimeThenNode) {
  FaultPlan plan({{2, 30.0, kNever}, {1, 10.0, 20.0}, {0, 30.0, kNever}});
  const auto& events = plan.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].node, 1);
  EXPECT_EQ(events[1].node, 0);  // ties break by node id
  EXPECT_EQ(events[2].node, 2);
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(FaultPlan{}.empty());
}

TEST(FaultPlan, DetectionSnapsToTheHeartbeatGrid) {
  FaultConfig config;
  config.heartbeat_interval_s = 3.0;
  config.heartbeat_timeout_s = 30.0;
  FaultPlan plan({{1, 0.0, kNever}}, config);
  // crash at 10 -> deadline 40 -> next 3 s boundary is 42.
  EXPECT_DOUBLE_EQ(plan.detection_s(10.0), 42.0);
  // Already on the grid: stays.
  EXPECT_DOUBLE_EQ(plan.detection_s(12.0), 42.0);
  EXPECT_DOUBLE_EQ(plan.detection_s(0.0), 30.0);

  // Interval 0 = a continuously-watching control plane.
  config.heartbeat_interval_s = 0.0;
  FaultPlan continuous({{1, 0.0, kNever}}, config);
  EXPECT_DOUBLE_EQ(continuous.detection_s(5.0), 35.0);
}

TEST(FaultPlan, CrashCountAndBlacklisting) {
  FaultConfig config;
  config.max_node_failures = 2;
  FaultPlan plan({{1, 10.0, 20.0}, {1, 30.0, 40.0}, {1, 50.0, 60.0},
                  {2, 15.0, 25.0}},
                 config);
  EXPECT_EQ(plan.crash_count(1), 3u);
  EXPECT_EQ(plan.crash_count(2), 1u);
  EXPECT_EQ(plan.crash_count(0), 0u);
  EXPECT_TRUE(plan.blacklists(1));   // 3 > 2
  EXPECT_FALSE(plan.blacklists(2));  // 1 <= 2
}

TEST(FaultPlan, ValidateRejectsMalformedSchedules) {
  // Node outside the cluster.
  EXPECT_THROW(FaultPlan({{4, 10.0, kNever}}).validate(4),
               common::InvalidArgument);
  EXPECT_THROW(FaultPlan({{-1, 10.0, kNever}}).validate(4),
               common::InvalidArgument);
  // Negative crash time.
  EXPECT_THROW(FaultPlan({{1, -1.0, kNever}}).validate(4),
               common::InvalidArgument);
  // Recovery not after the crash.
  EXPECT_THROW(FaultPlan({{1, 10.0, 10.0}}).validate(4),
               common::InvalidArgument);
  // Overlapping down intervals on one node.
  EXPECT_THROW(FaultPlan({{1, 10.0, 30.0}, {1, 20.0, 40.0}}).validate(4),
               common::InvalidArgument);
  // Crashing again after a permanent crash.
  EXPECT_THROW(FaultPlan({{1, 10.0, kNever}, {1, 50.0, 60.0}}).validate(4),
               common::InvalidArgument);
}

TEST(FaultPlan, ValidateRequiresOneForeverSchedulableNode) {
  // Every node permanently down at some point: no job could finish.
  EXPECT_THROW(FaultPlan({{0, 10.0, kNever}, {1, 20.0, kNever}}).validate(2),
               common::InvalidArgument);
  // Node 1 recovers every time: fine.
  EXPECT_NO_THROW(FaultPlan({{0, 10.0, kNever}, {1, 20.0, 25.0}}).validate(2));
  // ...unless its crash count blacklists it.
  FaultConfig strict;
  strict.max_node_failures = 0;
  EXPECT_THROW(FaultPlan({{0, 10.0, kNever}, {1, 20.0, 25.0}}, strict)
                   .validate(2),
               common::InvalidArgument);
  // The empty plan is always valid.
  EXPECT_NO_THROW(FaultPlan{}.validate(1));
}

TEST(FaultPlan, RandomIsSeedDeterministicAndValid) {
  const auto make = [](std::uint64_t seed) {
    return FaultPlan::random(seed, 8, 3, 100.0);
  };
  const FaultPlan a = make(42);
  const FaultPlan b = make(42);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].node, b.events()[i].node);
    EXPECT_EQ(a.events()[i].crash_s, b.events()[i].crash_s);
    EXPECT_EQ(a.events()[i].recover_s, b.events()[i].recover_s);
  }
  EXPECT_FALSE(a.empty());
  // Node 0 is the designated survivor; crashes land inside the horizon.
  for (const FaultEvent& event : a.events()) {
    EXPECT_NE(event.node, 0);
    EXPECT_GT(event.crash_s, 0.0);
    EXPECT_LT(event.crash_s, 100.0);
  }
  // Different seeds explore different schedules.
  const FaultPlan c = make(43);
  bool differs = c.events().size() != a.events().size();
  for (std::size_t i = 0; !differs && i < a.events().size(); ++i) {
    differs = a.events()[i].node != c.events()[i].node ||
              a.events()[i].crash_s != c.events()[i].crash_s;
  }
  EXPECT_TRUE(differs);
}

// -------------------------------------------------------------- NodeTracker

TEST(NodeTracker, WindowsFollowCrashAndRecovery) {
  FaultPlan plan({{1, 10.0, 50.0}});
  NodeTracker tracker(plan, 3);

  // Node 0 never crashes: one window covering the whole job.
  auto window = tracker.next_window(0, 0.0);
  EXPECT_EQ(window.start, 0.0);
  EXPECT_EQ(window.crash, kNever);

  // Node 1 before the crash: window ends at the crash instant.
  window = tracker.next_window(1, 0.0);
  EXPECT_EQ(window.start, 0.0);
  EXPECT_EQ(window.crash, 10.0);
  // While down: the next chance is the recovery.
  window = tracker.next_window(1, 20.0);
  EXPECT_EQ(window.start, 50.0);
  EXPECT_EQ(window.crash, kNever);
  // After recovery: available immediately.
  window = tracker.next_window(1, 60.0);
  EXPECT_EQ(window.start, 60.0);
  EXPECT_EQ(window.crash, kNever);
}

TEST(NodeTracker, PermanentCrashHasNoLaterWindow) {
  FaultPlan plan({{2, 25.0, kNever}});
  NodeTracker tracker(plan, 3);
  const auto window = tracker.next_window(2, 30.0);
  EXPECT_EQ(window.start, kNever);
  EXPECT_EQ(window.crash, kNever);
}

TEST(NodeTracker, BlacklistingCancelsPlannedRecoveries) {
  FaultConfig config;
  config.max_node_failures = 1;
  // Second crash of node 1 exceeds the budget: its planned recovery at 60
  // never happens.
  FaultPlan plan({{1, 10.0, 20.0}, {1, 40.0, 60.0}}, config);
  NodeTracker tracker(plan, 3);
  EXPECT_EQ(tracker.blacklisted_nodes(), 1u);

  const auto window = tracker.next_window(1, 45.0);
  EXPECT_EQ(window.start, kNever);

  const auto& events = tracker.down_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[0].blacklisted);
  EXPECT_DOUBLE_EQ(events[0].recover_s, 20.0);
  EXPECT_TRUE(events[1].blacklisted);
  EXPECT_DOUBLE_EQ(events[1].recover_s, -1.0);  // finite sentinel, not inf
  EXPECT_DOUBLE_EQ(events[1].detect_s, plan.detection_s(40.0));
}

TEST(NodeTracker, CrashInFindsTheFirstCrashInRange) {
  FaultPlan plan({{1, 10.0, 20.0}, {1, 40.0, 50.0}});
  NodeTracker tracker(plan, 2);
  EXPECT_EQ(tracker.crash_in(1, 0.0, 100.0), 10.0);
  EXPECT_EQ(tracker.crash_in(1, 15.0, 100.0), 40.0);
  EXPECT_EQ(tracker.crash_in(1, 10.0, 100.0), 10.0);  // from is inclusive
  EXPECT_EQ(tracker.crash_in(1, 0.0, 10.0), kNever);  // to is exclusive
  EXPECT_EQ(tracker.crash_in(1, 45.0, 100.0), kNever);
  EXPECT_EQ(tracker.crash_in(0, 0.0, 100.0), kNever);
}

// ------------------------------------------------------------- apply_to_dfs

TEST(ApplyToDfs, ReplaysCrashesAndRecoveriesUpToNow) {
  SimDfs::Options options;
  options.nodes = 4;
  options.block_size = 100;
  options.replication = 2;
  SimDfs dfs(options);
  dfs.write("/f", std::string(400, 'f'));

  FaultPlan plan({{1, 10.0, 30.0}, {2, 50.0, kNever}});

  // Mid-outage: node 1 down, node 2 still up.
  apply_to_dfs(plan, dfs, 20.0);
  EXPECT_FALSE(dfs.node_alive(1));
  EXPECT_TRUE(dfs.node_alive(2));
  EXPECT_EQ(dfs.read("/f"), std::string(400, 'f'));

  // Past everything: node 1 recovered (and may host re-replicas of the
  // blocks node 2 took down with it), node 2 gone for good and empty.
  SimDfs fresh(options);
  fresh.write("/f", std::string(400, 'f'));
  apply_to_dfs(plan, fresh, 100.0);
  EXPECT_TRUE(fresh.node_alive(1));
  EXPECT_FALSE(fresh.node_alive(2));
  EXPECT_EQ(fresh.node_usage()[2], 0u);
  EXPECT_EQ(fresh.read("/f"), std::string(400, 'f'));
  EXPECT_TRUE(fresh.lost_blocks().empty());
}

}  // namespace
}  // namespace mrmc::mr::faults

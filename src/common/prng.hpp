// Deterministic pseudo-random number generation for all simulators and
// randomized algorithms in the library.  Every component that needs
// randomness takes an explicit 64-bit seed so experiments are reproducible.
#pragma once

#include <cstdint>
#include <limits>

namespace mrmc::common {

/// SplitMix64 — used to seed other generators and as a cheap stateless mixer.
/// Reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom Number
/// Generators" (OOPSLA 2014).
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One-shot stateless mix of a 64-bit value; handy for hashing seeds together.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** 1.0 — fast, high-quality general-purpose generator.
/// Satisfies UniformRandomBitGenerator so it can drive <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    // Seed the four words from SplitMix64 per the authors' recommendation.
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  constexpr std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    auto mul = static_cast<__uint128_t>((*this)()) * bound;
    auto low = static_cast<std::uint64_t>(mul);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        mul = static_cast<__uint128_t>((*this)()) * bound;
        low = static_cast<std::uint64_t>(mul);
      }
    }
    return static_cast<std::uint64_t>(mul >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli trial with success probability p.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

  /// Fork an independent stream (for per-worker deterministic substreams).
  constexpr Xoshiro256 fork(std::uint64_t stream_id) noexcept {
    return Xoshiro256{mix64(state_[0] ^ mix64(stream_id ^ 0xa0761d6478bd642fULL))};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace mrmc::common

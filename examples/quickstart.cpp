// Quickstart: generate a tiny two-species metagenome, cluster it with both
// MrMC-MinH variants, and print quality metrics.
//
//   ./quickstart [reads] [theta]
#include <cstdlib>
#include <iostream>

#include "core/mrmc.hpp"
#include "eval/metrics.hpp"
#include "simdata/datasets.hpp"

int main(int argc, char** argv) {
  using namespace mrmc;

  const std::size_t reads = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;
  // theta is estimator-scale dependent: the dendrogram cut wants a higher
  // threshold than the greedy representative test (see EXPERIMENTS.md).
  const double theta_hier = argc > 2 ? std::strtod(argv[2], nullptr) : 0.54;
  const double theta_greedy = argc > 3 ? std::strtod(argv[3], nullptr) : 0.32;

  // Build an S1-style sample: two species at species-level divergence.
  const auto& spec = simdata::whole_metagenome_spec("S1");
  simdata::WholeMetagenomeOptions options;
  options.reads = reads;
  const simdata::LabeledReads sample = simdata::build_whole_metagenome(spec, options);
  std::cout << "sample " << spec.sid << ": " << sample.size() << " reads from "
            << sample.species.size() << " species\n";

  core::PipelineParams params;
  params.minhash = {.kmer = 5, .num_hashes = 100, .canonical = true, .seed = 1};

  for (const core::Mode mode : {core::Mode::kHierarchical, core::Mode::kGreedy}) {
    params.mode = mode;
    params.theta = mode == core::Mode::kHierarchical ? theta_hier : theta_greedy;
    const core::PipelineResult result = core::run_pipeline(sample.reads, params);

    const double acc =
        eval::weighted_cluster_accuracy(result.labels, sample.labels);
    std::cout << core::mode_name(mode) << ": clusters=" << result.num_clusters
              << " W.Acc=" << acc * 100.0
              << " wall=" << common::format_duration(result.wall_s)
              << " sim-cluster-time=" << common::format_duration(result.sim_total_s)
              << "\n";
  }
  return 0;
}

// k-mer extraction: each sequence is decomposed into its set of contiguous
// length-k subwords, packed 2 bits/base into a uint64 (k <= 31).  This is
// the paper's `TranslateToKmer` UDF and the feature-set construction
// I_s of Section III-A.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace mrmc::bio {

inline constexpr int kMaxKmerK = 31;

/// Feature-space size m = 4^k used as the outer modulus of the paper's
/// universal hash (Equation 5).
constexpr std::uint64_t kmer_space_size(int k) noexcept {
  return std::uint64_t{1} << (2 * k);
}

struct KmerParams {
  int k = 5;              ///< word length (paper: 5 for shotgun, 15 for 16S)
  bool canonical = false; ///< if true, emit min(kmer, revcomp(kmer))
};

/// All k-mers of `seq` in order of occurrence, duplicates included.
/// Windows containing a non-ACGT character are skipped (the rolling encoder
/// restarts after each ambiguous base).  Throws InvalidArgument for k out of
/// [1, 31].
std::vector<std::uint64_t> extract_kmers(std::string_view seq, const KmerParams& params);

/// Sorted, deduplicated k-mer set — the feature set I_s of Equation 1.
std::vector<std::uint64_t> kmer_set(std::string_view seq, const KmerParams& params);

/// Allocation-free kmer_set: fills `out` (cleared first, capacity reused) —
/// the batch-sketching path calls this once per read with one scratch buffer
/// per worker thread instead of allocating a fresh vector per read.
void kmer_set_into(std::string_view seq, const KmerParams& params,
                   std::vector<std::uint64_t>& out);

/// Exact Jaccard similarity |A ∩ B| / |A ∪ B| of two *sorted unique* sets.
/// Returns 1.0 when both sets are empty (two empty reads are identical).
double exact_jaccard(std::span<const std::uint64_t> a,
                     std::span<const std::uint64_t> b) noexcept;

/// Decode a packed k-mer back to its string (for debugging / tests).
std::string decode_kmer(std::uint64_t kmer, int k);

/// Reverse complement of a packed k-mer.
std::uint64_t revcomp_kmer(std::uint64_t kmer, int k) noexcept;

}  // namespace mrmc::bio

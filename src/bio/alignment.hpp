// Global (Needleman-Wunsch) pairwise alignment.  The paper's W.Sim metric
// is the average global-alignment similarity of sequence pairs within a
// cluster; the DOTUR/Mothur baselines also build their distance matrices
// from global alignment.  We provide:
//   * score-only, linear-memory NW with configurable match/mismatch/gap,
//   * identity computation (matches / alignment columns) via traceback-free
//     dual DP (score + match count), and
//   * a banded variant for near-identical sequences.
#pragma once

#include <cstdint>
#include <string_view>

namespace mrmc::bio {

struct AlignParams {
  int match = 1;
  int mismatch = -1;
  int gap = -2;      ///< linear gap penalty per column
  int band = -1;     ///< DP band half-width; <0 = full matrix
};

struct AlignResult {
  long score = 0;       ///< optimal NW score
  double identity = 0;  ///< matched columns / total alignment columns in [0,1]
  std::size_t columns = 0;  ///< alignment length (matches+mismatches+gaps)
};

/// Optimal global alignment score, O(min(|a|,|b|)) memory.
long nw_score(std::string_view a, std::string_view b, const AlignParams& params = {});

/// Global alignment identity.  Uses a full DP with traceback over match
/// counts; O(|a|·|b|) time, O(min) memory for the score plus one row of
/// match-count state.  With params.band >= 0 only the diagonal band is
/// explored (sequences outside the band get the unbanded corner value
/// through gap-only paths).
AlignResult nw_align(std::string_view a, std::string_view b,
                     const AlignParams& params = {});

/// Convenience: identity in [0, 1]; 1.0 for two empty strings.
double global_identity(std::string_view a, std::string_view b,
                       const AlignParams& params = {});

}  // namespace mrmc::bio

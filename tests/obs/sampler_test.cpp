#include "obs/sampler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/mini_json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mrmc::obs {
namespace {

class SamplerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().clear();
    Tracer::global().set_enabled(true);
  }
  void TearDown() override {
    Tracer::global().set_enabled(false);
    Tracer::global().clear();
  }
};

std::vector<TraceEvent> counter_events(const std::string& name) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : Tracer::global().events()) {
    if (event.phase == 'C' && event.name == name) out.push_back(event);
  }
  return out;
}

TEST_F(SamplerTest, SampleOncePublishesGaugesAndCounterEvents) {
  auto& sampler = ResourceSampler::global();
  sampler.register_probe("test.queue_depth", [] { return 42.0; });
  sampler.sample_once();

  const MetricsSnapshot snap = Registry::global().snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at("sample.test.queue_depth"), 42.0);
  EXPECT_TRUE(snap.gauges.count("sample.process_rss_mb"));

  const auto probe_events = counter_events("test.queue_depth");
  ASSERT_EQ(probe_events.size(), 1u);
  EXPECT_EQ(probe_events[0].category, "counter");
  EXPECT_EQ(probe_events[0].arg("value"), "42");
  EXPECT_FALSE(counter_events("process rss (MB)").empty());
}

TEST_F(SamplerTest, ReRegisteringAProbeReplacesIt) {
  auto& sampler = ResourceSampler::global();
  const std::size_t before = sampler.probe_count();
  sampler.register_probe("test.replaced", [] { return 1.0; });
  EXPECT_EQ(sampler.probe_count(), before + 1);
  sampler.register_probe("test.replaced", [] { return 2.0; });
  EXPECT_EQ(sampler.probe_count(), before + 1);
  sampler.sample_once();
  EXPECT_DOUBLE_EQ(
      Registry::global().snapshot().gauges.at("sample.test.replaced"), 2.0);
}

TEST_F(SamplerTest, ProcessGaugesReadRealValues) {
#if defined(__linux__)
  EXPECT_GT(process_rss_bytes(), 0.0);
#else
  EXPECT_GE(process_rss_bytes(), 0.0);
#endif
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GE(process_cpu_seconds(), 0.0);
#endif
}

TEST_F(SamplerTest, CounterArgsSerializeAsJsonNumbers) {
  // 'C' events must carry unquoted numeric args or Chrome/Perfetto cannot
  // plot them; round-trip the serialized trace through the JSON parser.
  auto& sampler = ResourceSampler::global();
  sampler.register_probe("test.numeric", [] { return 2.5; });
  sampler.sample_once();

  std::ostringstream out;
  Tracer::global().write_chrome_trace(out);
  const auto root = common::parse_json(out.str());
  bool found = false;
  for (const auto& event : root.at("traceEvents").array) {
    if (event.at("ph").string != "C" ||
        event.at("name").string != "test.numeric") {
      continue;
    }
    found = true;
    const auto& value = event.at("args").at("value");
    ASSERT_EQ(value.type, common::JsonValue::Type::kNumber);
    EXPECT_DOUBLE_EQ(value.number, 2.5);
  }
  EXPECT_TRUE(found);
}

TEST_F(SamplerTest, SimTaskCountersFollowTheSimGrid) {
  auto& tracer = Tracer::global();
  const std::uint32_t pid = tracer.begin_sim_job("grid");
  const std::vector<SimInterval> map_tasks{{0.0, 1.0}};
  const std::vector<SimInterval> fetches{{1.0, 2.0}};
  const std::vector<SimInterval> reduce_tasks{{2.0, 3.0}};
  emit_sim_task_counters(tracer, pid, map_tasks, fetches, reduce_tasks,
                         /*horizon_s=*/3.0, /*points=*/3);

  const auto events = counter_events("sim active tasks");
  ASSERT_EQ(events.size(), 4u);  // t = 0, 1, 2, 3
  const auto expect_point = [&](std::size_t i, double ts_s, const char* map,
                                const char* fetch, const char* reduce) {
    EXPECT_DOUBLE_EQ(events[i].ts_us, ts_s * 1e6);
    EXPECT_EQ(events[i].pid, pid);
    EXPECT_EQ(events[i].arg("map"), map);
    EXPECT_EQ(events[i].arg("fetch"), fetch);
    EXPECT_EQ(events[i].arg("reduce"), reduce);
  };
  // Intervals are [start, end): each instant sees exactly one live phase.
  expect_point(0, 0.0, "1", "0", "0");
  expect_point(1, 1.0, "0", "1", "0");
  expect_point(2, 2.0, "0", "0", "1");
  expect_point(3, 3.0, "0", "0", "0");
}

TEST_F(SamplerTest, SimTaskCountersAreDeterministic) {
  auto& tracer = Tracer::global();
  const std::vector<SimInterval> map_tasks{{0.0, 2.5}, {0.5, 3.25}};
  const std::vector<SimInterval> fetches{{2.5, 4.0}};
  const std::vector<SimInterval> reduce_tasks{{4.0, 7.75}};

  const auto emit_and_collect = [&] {
    tracer.clear();
    const std::uint32_t pid = tracer.begin_sim_job("det");
    emit_sim_task_counters(tracer, pid, map_tasks, fetches, reduce_tasks,
                           7.75);
    std::string flat;
    for (const TraceEvent& event : Tracer::global().events()) {
      if (event.phase != 'C') continue;
      flat += event.name + "@" + trace_double(event.ts_us);
      for (const auto& [key, value] : event.args) {
        flat += " " + key + "=" + value;
      }
      flat += "\n";
    }
    return flat;
  };

  const std::string first = emit_and_collect();
  const std::string second = emit_and_collect();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST_F(SamplerTest, BackgroundThreadSamplesOnItsOwn) {
  auto& sampler = ResourceSampler::global();
  std::atomic<int> calls{0};
  sampler.register_probe("test.background", [&calls] {
    calls.fetch_add(1, std::memory_order_relaxed);
    return 0.0;
  });
  sampler.set_period_ms(1.0);
  sampler.set_enabled(true);
  // One tick lands within a second even on a loaded machine.
  for (int i = 0; i < 1000 && calls.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.set_enabled(false);
  // Unregister the dangling probe by replacing it with a self-contained one.
  sampler.register_probe("test.background", [] { return 0.0; });
  EXPECT_GT(calls.load(), 0);
}

TEST_F(SamplerTest, ScopeRestoresTheStateItFound) {
  auto& sampler = ResourceSampler::global();
  sampler.set_period_ms(1e9);  // enabled, but the thread never ticks
  ASSERT_FALSE(sampler.enabled());
  {
    SamplerScope scope(sampler);
    EXPECT_TRUE(sampler.enabled());
    {
      // Nested double-enable is a no-op start; the inner scope restores the
      // (enabled) state the outer scope established.
      SamplerScope inner(sampler);
      EXPECT_TRUE(sampler.enabled());
    }
    EXPECT_TRUE(sampler.enabled());
  }
  EXPECT_FALSE(sampler.enabled());
}

TEST_F(SamplerTest, ScopeRestoresWhenAnExceptionUnwinds) {
  auto& sampler = ResourceSampler::global();
  sampler.set_period_ms(1e9);
  ASSERT_FALSE(sampler.enabled());
  try {
    SamplerScope scope(sampler);
    EXPECT_TRUE(sampler.enabled());
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  // The background thread is joined and the sampler is exactly as found —
  // the regression this guards: a mid-job unwind used to leave the thread
  // running with no owner to stop it.
  EXPECT_FALSE(sampler.enabled());
  sampler.set_enabled(false);  // idempotent double-stop is safe
}

}  // namespace
}  // namespace mrmc::obs

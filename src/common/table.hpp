// Minimal fixed-column text table printer used by the bench harnesses to
// emit rows in the same layout as the paper's tables.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace mrmc::common {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with column widths fitted to content, pipe-separated.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
std::string fmt_f(double value, int decimals = 2);
std::string fmt_pct(double fraction, int decimals = 2);  // 0.9042 -> "90.42"

}  // namespace mrmc::common

// Typed MapReduce job runner — the library's Hadoop substitute.
//
// Contract (identical to Hadoop's):
//   map    : In -> [(K, V)]            (one call per input record)
//   combine: (K, [V]) -> [(K, V)]      (optional, per map task)
//   reduce : (K, [V]) -> [Out]         (one call per key group)
//
// Execution is real (tasks produce the actual output); *cluster time* is
// simulated: every task yields a TaskSpec (deterministic work model + byte
// accounting) which the SimScheduler places onto the configured nodes,
// giving the job a reproducible simulated makespan (JobStats::timeline).
//
// Job is a thin typed façade over mr::runtime::TaskGraph.  Each map task is
// a graph node that spills its output as per-reducer key-sorted runs; every
// (map, reducer) pair gets a ShuffleFetch node that moves the run the moment
// the map finishes; each reduce node k-way-merges its sorted runs — no
// re-sort, no map barrier.  The merge is stable by (key, map index, emission
// order), which is exactly the order the old concatenate-then-stable_sort
// shuffle produced, so job output is byte-identical across any thread count
// and to the previous engine.
//
// Failures are injected as *real re-executions*: a doomed attempt runs,
// throws runtime::TaskFailure, and the task graph re-runs the node (map and
// reduce tasks alike, up to JobConfig::max_task_attempts); every failed
// attempt is re-paid in the simulated cost model and surfaced in JobStats.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "common/timer.hpp"
#include "mr/bytes.hpp"
#include "mr/cluster.hpp"
#include "mr/faults.hpp"
#include "mr/runtime.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/pipeline.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"

namespace mrmc::mr {

using Counters = std::map<std::string, long>;

/// Counting context handed to context-aware reducers; per-task counters are
/// merged into JobStats::counters exactly like the map side's Emitter.
class ReduceContext {
 public:
  void count(const std::string& counter, long delta = 1) {
    counters_[counter] += delta;
  }

  [[nodiscard]] Counters& counters() noexcept { return counters_; }

 private:
  Counters counters_;
};

/// Collects (key, value) pairs and named counters from map/combine calls.
template <typename K, typename V>
class Emitter {
 public:
  void emit(K key, V value) {
    pairs_.emplace_back(std::move(key), std::move(value));
  }
  void count(const std::string& counter, long delta = 1) { counters_[counter] += delta; }

  [[nodiscard]] std::vector<std::pair<K, V>>& pairs() noexcept { return pairs_; }
  [[nodiscard]] Counters& counters() noexcept { return counters_; }

 private:
  std::vector<std::pair<K, V>> pairs_;
  Counters counters_;
};

struct JobConfig {
  std::string name = "job";
  std::size_t num_reducers = 4;
  std::size_t records_per_split = 1024;  ///< map input split granularity
  /// Real execution threads.  0 = run on the process-wide shared pool
  /// (runtime::shared_pool()); > 0 = a private pool of that size.
  std::size_t threads = 0;
  /// Force a private pool even when `threads == 0` (hardware-sized).
  bool isolated_pool = false;
  ClusterConfig cluster{};
  double map_failure_rate = 0.0;  ///< injected per-map-task failure probability
  double reduce_failure_rate = 0.0;  ///< ditto for reduce tasks
  /// Attempt budget per task (Hadoop's mapreduce.map.maxattempts).  Injected
  /// failures always leave the final attempt to succeed, so a job survives
  /// failure_rate = 1.0 at the cost of max_task_attempts-fold re-execution.
  std::size_t max_task_attempts = 4;
  /// Injected stragglers: with this probability a map task's modeled work
  /// is multiplied by `straggler_slowdown` (a slow node / data skew).
  double straggler_rate = 0.0;
  double straggler_slowdown = 4.0;
  /// Model the shuffle per fetch, overlapped with the map phase (the
  /// behaviour of the task-graph runtime).  false = the legacy aggregate
  /// transfer after a map barrier; real output is identical either way.
  bool overlapped_shuffle = true;
  /// Node-failure schedule (empty = fault-free).  Crashes kill running
  /// attempts and invalidate completed map outputs in the simulated
  /// timeline; the real executor re-executes those maps for real (via
  /// runtime::LostInputFailure), so job output stays byte-identical to the
  /// fault-free run as long as the plan leaves one live node (validated).
  faults::FaultPlan fault_plan{};
  /// Heartbeat-detection cadence override (seconds) applied on top of the
  /// fault plan's own FaultConfig; 0 = keep the plan's value.  Validated
  /// non-negative; crash *detection* instants move to the new grid while
  /// the crash schedule itself is untouched.
  double heartbeat_interval_s = 0.0;
  /// Driver-level retry policy for the stage this job runs under.  The
  /// recovery stage driver (mr::recovery::StageDriver) re-runs the whole
  /// job up to max_job_attempts times with exponential backoff
  /// (backoff_base_s doubling up to backoff_cap_s, seeded jitter) and
  /// treats an attempt that outlives job_timeout_s wall seconds as failed.
  /// Distinct from max_task_attempts, which retries single tasks inside
  /// one job run.
  int max_job_attempts = 1;
  double job_timeout_s = 0.0;   ///< per-attempt wall deadline; 0 = none
  double backoff_base_s = 0.5;
  double backoff_cap_s = 30.0;
  std::uint64_t seed = 1;
};

struct JobStats {
  std::size_t map_tasks = 0;
  std::size_t reduce_tasks = 0;
  std::size_t input_records = 0;
  std::size_t map_output_records = 0;     ///< after the combiner, if any
  std::size_t pre_combine_records = 0;    ///< before the combiner
  std::size_t reduce_groups = 0;
  std::size_t output_records = 0;
  std::size_t map_retries = 0;     ///< failed map attempts that were re-run
  std::size_t reduce_retries = 0;  ///< failed reduce attempts that were re-run
  std::size_t max_task_attempts = 0;  ///< the cap the retries ran under
  /// Completed maps re-executed for real because a fault-plan crash
  /// destroyed their output (the executor's view of the plan; does not
  /// count against max_task_attempts).
  std::size_t lost_map_reruns = 0;
  std::size_t node_crashes = 0;       ///< fault-plan crashes (timeline view)
  std::size_t killed_attempts = 0;    ///< sim attempts killed mid-run
  std::size_t lost_map_outputs = 0;   ///< sim map outputs invalidated
  std::size_t blacklisted_nodes = 0;  ///< nodes over max_node_failures
  double shuffle_bytes = 0.0;
  // Byte accounting (single-attempt values from the task specs; retries
  // re-pay the cost in the simulated timeline, not in these totals).
  double map_input_bytes = 0.0;      ///< split bytes the map tasks read
  double reduce_input_bytes = 0.0;   ///< merged run bytes the reducers read
  double reduce_output_bytes = 0.0;  ///< serialized final output bytes
  std::size_t spill_runs = 0;        ///< non-empty per-reducer spill runs
  double spill_bytes = 0.0;          ///< bytes across those runs (== shuffle)
  std::size_t merge_fan_in_max = 0;  ///< widest reduce-side run merge
  double map_cpu_s = 0.0;     ///< measured thread CPU time (not wall), informational
  double reduce_cpu_s = 0.0;  ///< ditto, summed across reduce tasks
  Counters counters;
  JobTimeline timeline;       ///< deterministic simulated cluster time
};

template <typename Out>
struct JobResult {
  std::vector<Out> output;
  JobStats stats;
};

template <typename In, typename K, typename V, typename Out>
class Job {
 public:
  using Mapper = std::function<void(const In&, Emitter<K, V>&)>;
  /// Whole-split mapper: one call per input split, with the split's global
  /// index.  The batched shape behind the binary columnar shuffle — a job
  /// can emit one packed block per split instead of one value per record
  /// (the driver rejoins positionally via split_index × records_per_split).
  /// Byte/work accounting stays per-record: input bytes and the map work
  /// model are still charged for every record of the split.
  using SplitMapper =
      std::function<void(std::span<const In>, std::size_t, Emitter<K, V>&)>;
  using Reducer =
      std::function<void(const K&, std::vector<V>&, std::vector<Out>&)>;
  /// Reducer overload that can also bump named counters (ReduceContext).
  using ContextReducer = std::function<void(const K&, std::vector<V>&,
                                            std::vector<Out>&, ReduceContext&)>;
  using Combiner = std::function<void(const K&, std::vector<V>&, Emitter<K, V>&)>;
  using Partitioner = std::function<std::size_t(const K&)>;
  using MapWorkModel = std::function<double(const In&)>;
  using ReduceWorkModel = std::function<double(const K&, std::size_t)>;

  Job(JobConfig config, Mapper mapper, Reducer reducer)
      : config_(std::move(config)),
        mapper_(std::move(mapper)),
        reducer_(std::move(reducer)) {
    validate();
    MRMC_CHECK(reducer_ != nullptr, "reducer required");
  }

  Job(JobConfig config, Mapper mapper, ContextReducer reducer)
      : config_(std::move(config)),
        mapper_(std::move(mapper)),
        context_reducer_(std::move(reducer)) {
    validate();
    MRMC_CHECK(context_reducer_ != nullptr, "reducer required");
  }

  Job(JobConfig config, SplitMapper mapper, Reducer reducer)
      : config_(std::move(config)),
        split_mapper_(std::move(mapper)),
        reducer_(std::move(reducer)) {
    validate();
    MRMC_CHECK(reducer_ != nullptr, "reducer required");
  }

  Job(JobConfig config, SplitMapper mapper, ContextReducer reducer)
      : config_(std::move(config)),
        split_mapper_(std::move(mapper)),
        context_reducer_(std::move(reducer)) {
    validate();
    MRMC_CHECK(context_reducer_ != nullptr, "reducer required");
  }

  Job& with_combiner(Combiner combiner) {
    combiner_ = std::move(combiner);
    return *this;
  }
  Job& with_partitioner(Partitioner partitioner) {
    partitioner_ = std::move(partitioner);
    return *this;
  }
  /// Deterministic per-record CPU work estimate (sim-time units).
  Job& with_map_work(MapWorkModel model) {
    map_work_ = std::move(model);
    return *this;
  }
  Job& with_reduce_work(ReduceWorkModel model) {
    reduce_work_ = std::move(model);
    return *this;
  }

  /// Run with automatic input splitting (round-robin locality like a DFS
  /// writing splits across nodes).
  JobResult<Out> run(const std::vector<In>& input) {
    std::vector<std::vector<In>> splits;
    std::vector<int> locality;
    const std::size_t per_split = config_.records_per_split;
    for (std::size_t begin = 0; begin < input.size(); begin += per_split) {
      const std::size_t end = std::min(begin + per_split, input.size());
      splits.emplace_back(input.begin() + static_cast<long>(begin),
                          input.begin() + static_cast<long>(end));
      locality.push_back(static_cast<int>((begin / per_split) %
                                          config_.cluster.nodes));
    }
    if (splits.empty()) splits.emplace_back();
    if (locality.empty()) locality.push_back(0);
    return run_splits(splits, locality);
  }

  /// Run with caller-provided splits (e.g. SimDfs blocks) and their
  /// preferred replica nodes.
  JobResult<Out> run_splits(const std::vector<std::vector<In>>& splits,
                            const std::vector<int>& preferred_nodes) {
    MRMC_REQUIRE(splits.size() == preferred_nodes.size(),
                 "one preferred node per split");
    auto& tracer = obs::Tracer::global();
    obs::Tracer::Span job_span(tracer, "mr.job " + config_.name,
                               {{"maps", std::to_string(splits.size())},
                                {"reducers",
                                 std::to_string(config_.num_reducers)}});
    // Real wall window of this job, for pipeline-level driver-gap analysis.
    const double wall_start_us = tracer.now_us();
    JobResult<Out> result;
    JobStats& stats = result.stats;
    const std::size_t num_maps = splits.size();
    const std::size_t num_reducers = config_.num_reducers;
    stats.map_tasks = num_maps;
    stats.reduce_tasks = num_reducers;
    stats.max_task_attempts = config_.max_task_attempts;

    // --------------------------------------------------- the task graph
    // map m  ──▶  fetch (m, r)  ──▶  reduce r        (for every m, r)
    //
    // Each slot below is written by exactly one node and read only by nodes
    // downstream of it; the graph's dependency bookkeeping provides the
    // happens-before edges, so no extra locking is needed.
    std::vector<MapTaskOutput> map_outputs(num_maps);
    std::vector<std::vector<Run>> reducer_runs(num_reducers);
    for (auto& runs : reducer_runs) runs.resize(num_maps);
    std::vector<std::vector<double>> fetched_bytes(
        num_reducers, std::vector<double>(num_maps, 0.0));
    std::vector<ReduceTaskOutput> reduce_outputs(num_reducers);

    // Node-failure plan, executor side: the map's output is assumed to live
    // on the node that holds its input split, so each crash of that node
    // after the map completed costs one real re-execution, driven through
    // the designated fetch below via runtime::LostInputFailure.  (The
    // simulator computes its own, placement-exact invalidations; the two
    // are complementary views of the same plan — see DESIGN.md.)
    // The effective plan folds in the JobConfig heartbeat-interval override
    // (a control-plane knob layered over the plan's own FaultConfig).
    const faults::FaultPlan fault_plan =
        (config_.heartbeat_interval_s > 0.0 && !config_.fault_plan.empty())
            ? config_.fault_plan.with_heartbeat_interval(
                  config_.heartbeat_interval_s)
            : config_.fault_plan;
    const bool faulted = !fault_plan.empty();
    std::vector<std::size_t> map_losses(num_maps, 0);
    if (faulted) {
      for (std::size_t m = 0; m < num_maps; ++m) {
        const int node =
            preferred_nodes[m] >= 0
                ? preferred_nodes[m] %
                      static_cast<int>(config_.cluster.nodes)
                : static_cast<int>(m % config_.cluster.nodes);
        map_losses[m] = fault_plan.crash_count(node);
      }
    }
    // Lost-input re-runs rewrite map_outputs[m] while sibling fetches may
    // still be reading it; the per-map guard restores the exclusion the
    // dependency edges alone provide in the fault-free graph.
    const std::unique_ptr<std::mutex[]> map_guards(
        faulted ? new std::mutex[num_maps] : nullptr);

    const bool traced = tracer.enabled();
    runtime::TaskGraph graph;
    std::vector<std::size_t> map_ids(num_maps);
    std::vector<std::size_t> reduce_ids(num_reducers);
    for (std::size_t m = 0; m < num_maps; ++m) {
      const Injection injection = map_injection(m);
      map_ids[m] = graph.add_task(
          [this, &splits, &preferred_nodes, &map_outputs, &map_guards, m,
           injection](std::size_t attempt) {
            // The doomed attempt does the work, then loses it — real
            // re-execution, not a cost multiplier.
            MapTaskOutput output =
                run_map_attempt(splits[m], preferred_nodes[m], m);
            if (attempt < injection.failures) {
              throw runtime::TaskFailure("injected map-task failure");
            }
            if (map_guards) {
              const std::lock_guard<std::mutex> lock(map_guards[m]);
              map_outputs[m] = std::move(output);
            } else {
              map_outputs[m] = std::move(output);
            }
          },
          {}, task_options(traced, "map", m));
    }
    for (std::size_t r = 0; r < num_reducers; ++r) {
      std::vector<std::size_t> fetch_ids;
      fetch_ids.reserve(num_maps);
      for (std::size_t m = 0; m < num_maps; ++m) {
        // Exactly one fetch per map (a fixed reducer) reports the lost
        // output, so the re-execution count is the plan's crash count —
        // deterministic at any thread count.
        const bool reports_loss =
            faulted && r == m % num_reducers && map_losses[m] > 0;
        fetch_ids.push_back(graph.add_task(
            [&map_outputs, &reducer_runs, &fetched_bytes, &map_guards,
             &map_losses, &map_ids, reports_loss, r, m](std::size_t attempt) {
              if (reports_loss && attempt < map_losses[m]) {
                throw runtime::LostInputFailure(
                    "map output lost to node failure", map_ids[m]);
              }
              if (map_guards) {
                const std::lock_guard<std::mutex> lock(map_guards[m]);
                reducer_runs[r][m] = std::move(map_outputs[m].runs[r]);
                fetched_bytes[r][m] = map_outputs[m].run_bytes[r];
              } else {
                reducer_runs[r][m] = std::move(map_outputs[m].runs[r]);
                fetched_bytes[r][m] = map_outputs[m].run_bytes[r];
              }
              auto& progress = obs::progress::Tracker::global();
              if (progress.enabled()) {
                progress.add_bytes(fetched_bytes[r][m]);
              }
            },
            {map_ids[m]}, task_options(traced, "fetch", r, m)));
      }
      const std::size_t failures = injected_reduce_failures(r);
      reduce_ids[r] = graph.add_task(
          [this, &reducer_runs, &fetched_bytes, &reduce_outputs, r,
           failures](std::size_t attempt) {
            const bool doomed = attempt < failures;
            // Doomed attempts read the runs non-destructively so the retry
            // sees pristine input; the final attempt moves the values out.
            ReduceTaskOutput output = run_reduce_attempt(
                reducer_runs[r], fetched_bytes[r], /*destructive=*/!doomed);
            if (doomed) {
              throw runtime::TaskFailure("injected reduce-task failure");
            }
            reduce_outputs[r] = std::move(output);
          },
          std::move(fetch_ids), task_options(traced, "reduce", r));
    }

    {
      // Live-progress bracket around the real execution: plan counts are
      // known from the graph shape (fetch nodes exist for every (m, r)
      // pair), and the RAII scope ends the job line even when a task
      // failure unwinds out of graph.run.
      obs::progress::Tracker::JobScope progress_scope(
          obs::progress::Tracker::global(), config_.name, num_maps,
          num_maps * num_reducers, num_reducers);
      runtime::PoolLease lease(config_.threads, config_.isolated_pool);
      graph.run(lease.pool());
    }

    // ------------------------------- deterministic single-threaded assembly
    std::vector<TaskSpec> map_specs;
    map_specs.reserve(num_maps);
    double shuffle_bytes = 0.0;
    for (std::size_t m = 0; m < num_maps; ++m) {
      MapTaskOutput& task = map_outputs[m];
      stats.input_records += task.records_in;
      stats.pre_combine_records += task.records_pre_combine;
      stats.map_output_records += task.records_out;
      stats.map_cpu_s += task.cpu_s;
      for (const auto& [name, value] : task.counters) stats.counters[name] += value;

      // Lost-input re-runs are not retries: the faulted simulator schedules
      // each invalidated map's re-execution explicitly, so charging them
      // into the spec here would pay the lost work twice.
      const std::size_t reruns =
          faulted ? graph.lost_input_reruns(map_ids[m]) : 0;
      const std::size_t attempts = graph.attempts(map_ids[m]) - reruns;
      stats.map_retries += attempts - 1;
      stats.lost_map_reruns += reruns;
      stats.map_input_bytes += task.spec.input_bytes;
      for (const double bytes : task.run_bytes) {
        if (bytes > 0.0) {
          ++stats.spill_runs;
          stats.spill_bytes += bytes;
        }
      }
      TaskSpec spec = task.spec;
      // Every failed attempt's cost is paid again by its re-execution.
      spec.work *= static_cast<double>(attempts);
      spec.input_bytes *= static_cast<double>(attempts);
      spec.work *= map_injection(m).slowdown;
      shuffle_bytes += spec.output_bytes;
      map_specs.push_back(spec);
    }
    stats.shuffle_bytes = shuffle_bytes;

    std::vector<TaskSpec> reduce_specs;
    reduce_specs.reserve(num_reducers);
    auto& merge_width_hist =
        obs::Registry::global().histogram("runtime.reduce_merge_width");
    for (std::size_t r = 0; r < num_reducers; ++r) {
      ReduceTaskOutput& task = reduce_outputs[r];
      stats.reduce_groups += task.groups;
      stats.reduce_cpu_s += task.cpu_s;
      for (const auto& [name, value] : task.counters) stats.counters[name] += value;
      merge_width_hist.observe(static_cast<double>(task.merge_width));

      const std::size_t attempts = graph.attempts(reduce_ids[r]);
      stats.reduce_retries += attempts - 1;
      stats.reduce_input_bytes += task.spec.input_bytes;
      stats.reduce_output_bytes += task.spec.output_bytes;
      stats.merge_fan_in_max =
          std::max(stats.merge_fan_in_max, task.merge_width);
      TaskSpec spec = task.spec;
      spec.work *= static_cast<double>(attempts);
      spec.input_bytes *= static_cast<double>(attempts);
      reduce_specs.push_back(spec);

      stats.output_records += task.output.size();
      result.output.insert(result.output.end(),
                           std::make_move_iterator(task.output.begin()),
                           std::make_move_iterator(task.output.end()));
    }

    // --------------------------------------------------- simulated timeline
    std::vector<FetchSpec> fetches;
    if (config_.overlapped_shuffle) {
      fetches.reserve(num_maps * num_reducers);
      for (std::size_t m = 0; m < num_maps; ++m) {
        for (std::size_t r = 0; r < num_reducers; ++r) {
          const double bytes = fetched_bytes[r][m];
          if (bytes > 0.0) fetches.push_back({m, r, bytes});
        }
      }
    }
    const SimScheduler scheduler(config_.cluster);
    stats.timeline = simulate_job(scheduler, map_specs, shuffle_bytes, fetches,
                                  reduce_specs, config_.name, fault_plan);
    stats.node_crashes = stats.timeline.faults.events.size();
    stats.killed_attempts = stats.timeline.faults.killed_attempts;
    stats.lost_map_outputs = stats.timeline.faults.lost_map_outputs;
    stats.blacklisted_nodes = stats.timeline.faults.blacklisted_nodes;
    export_stats(stats);
    job_span.arg("sim_total_s", obs::trace_double(stats.timeline.total_s));
    job_span.arg("shuffle_bytes", obs::trace_double(stats.shuffle_bytes));
    job_span.arg("map_input_bytes",
                 obs::trace_double(stats.map_input_bytes));
    job_span.arg("reduce_output_bytes",
                 obs::trace_double(stats.reduce_output_bytes));
    job_span.arg("spill_runs", std::to_string(stats.spill_runs));
    job_span.arg("merge_fan_in_max",
                 std::to_string(stats.merge_fan_in_max));

    // Cross-job lineage: simulate_job's emit funnel just claimed this job's
    // pipeline slot (same thread), so last_claim() is exactly ours — stamp
    // it onto the wall span, record the wall window for the pipeline
    // doctor's driver-gap analysis, and feed the pipeline collector.
    const double wall_end_us = tracer.now_us();
    if (const std::optional<obs::pipeline::Claim>& claim =
            obs::pipeline::last_claim()) {
      job_span.arg("pipeline", claim->pipeline);
      job_span.arg("stage", claim->stage);
      if (claim->round >= 0) {
        job_span.arg("round", std::to_string(claim->round));
      }
      job_span.arg("sequence", std::to_string(claim->sequence));
      if (tracer.enabled()) {
        // Real-clock instant carrying the wall window as %.17g, so the
        // trace-reconstructed pipeline report recovers the exact gaps the
        // in-process collector computed.
        obs::TraceEvent wall_event;
        wall_event.name = "job_wall";
        wall_event.category = "real";
        wall_event.phase = 'i';
        wall_event.ts_us = wall_start_us;
        wall_event.pid = obs::kRealPid;
        wall_event.args = {{"pipeline", claim->pipeline},
                           {"stage", claim->stage},
                           {"sequence", std::to_string(claim->sequence)},
                           {"start_us", obs::trace_double(wall_start_us)},
                           {"end_us", obs::trace_double(wall_end_us)}};
        tracer.append(std::move(wall_event));
      }
      auto& pipelines = obs::pipeline::Collector::global();
      if (pipelines.enabled()) {
        obs::pipeline::StageRecord record;
        record.job = report_input(stats.timeline, config_.cluster,
                                  config_.name, stats.shuffle_bytes);
        record.job.pipeline = claim->pipeline;
        record.job.stage = claim->stage;
        record.job.round = claim->round;
        record.job.sequence = claim->sequence;
        record.wall_start_us = wall_start_us;
        record.wall_end_us = wall_end_us;
        pipelines.add(std::move(record));
      }
    }
    return result;
  }

 private:
  using Run = std::vector<std::pair<K, V>>;

  struct MapTaskOutput {
    std::vector<Run> runs;           ///< per-reducer key-sorted spill runs
    std::vector<double> run_bytes;   ///< serialized size of each run
    TaskSpec spec;                   ///< single-attempt cost
    Counters counters;
    double cpu_s = 0.0;
    std::size_t records_in = 0;
    std::size_t records_pre_combine = 0;
    std::size_t records_out = 0;
  };
  struct ReduceTaskOutput {
    std::vector<Out> output;
    TaskSpec spec;
    Counters counters;
    double cpu_s = 0.0;
    std::size_t groups = 0;
    std::size_t merge_width = 0;  ///< non-empty runs merged
  };

  /// Per-map-task injected faults, derived deterministically from the seed.
  struct Injection {
    std::size_t failures = 0;  ///< attempts that will throw TaskFailure
    double slowdown = 1.0;     ///< straggler work multiplier
  };

  void validate() const {
    MRMC_REQUIRE(config_.num_reducers >= 1, "need at least one reducer");
    MRMC_REQUIRE(config_.records_per_split >= 1, "split size must be positive");
    MRMC_REQUIRE(config_.max_task_attempts >= 1,
                 "max_task_attempts must be >= 1; 0 would mean no attempt "
                 "ever runs");
    MRMC_REQUIRE(
        config_.map_failure_rate >= 0.0 && config_.map_failure_rate <= 1.0,
        "map_failure_rate must be a probability in [0, 1]");
    MRMC_REQUIRE(config_.reduce_failure_rate >= 0.0 &&
                     config_.reduce_failure_rate <= 1.0,
                 "reduce_failure_rate must be a probability in [0, 1]");
    MRMC_REQUIRE(config_.straggler_rate >= 0.0 && config_.straggler_rate <= 1.0,
                 "straggler_rate must be a probability in [0, 1]");
    MRMC_REQUIRE(config_.straggler_slowdown > 0.0,
                 "straggler_slowdown must be positive");
    MRMC_REQUIRE(config_.heartbeat_interval_s >= 0.0,
                 "heartbeat_interval_s must be non-negative");
    MRMC_REQUIRE(config_.max_job_attempts >= 1,
                 "max_job_attempts must be >= 1; 0 would mean the job never "
                 "runs");
    MRMC_REQUIRE(config_.job_timeout_s >= 0.0,
                 "job_timeout_s must be non-negative (0 disables the "
                 "deadline)");
    MRMC_REQUIRE(config_.backoff_base_s > 0.0,
                 "backoff_base_s must be positive");
    MRMC_REQUIRE(config_.backoff_cap_s >= config_.backoff_base_s,
                 "backoff_cap_s must be >= backoff_base_s");
    if (!config_.fault_plan.empty()) {
      config_.fault_plan.validate(config_.cluster.nodes);
    }
    MRMC_CHECK(mapper_ != nullptr || split_mapper_ != nullptr,
               "mapper required");
  }

  /// Draw order matches the pre-task-graph engine (one failure draw, then
  /// the straggler draw) so seeded tests keep their golden values; extra
  /// failure draws happen only after a first hit.  Injected failures are
  /// capped at max_task_attempts - 1: the final attempt always succeeds.
  [[nodiscard]] Injection map_injection(std::size_t task_index) const {
    Injection injection;
    if (config_.map_failure_rate > 0.0 || config_.straggler_rate > 0.0) {
      common::Xoshiro256 rng(common::mix64(config_.seed ^ (task_index + 1)));
      const std::size_t cap = config_.max_task_attempts - 1;
      if (rng.chance(config_.map_failure_rate)) {
        injection.failures = 1;
        while (injection.failures < cap &&
               rng.chance(config_.map_failure_rate)) {
          ++injection.failures;
        }
        injection.failures = std::min(injection.failures, cap);
      }
      if (rng.chance(config_.straggler_rate)) {
        injection.slowdown = config_.straggler_slowdown;
      }
    }
    return injection;
  }

  [[nodiscard]] std::size_t injected_reduce_failures(std::size_t r) const {
    if (config_.reduce_failure_rate <= 0.0) return 0;
    // A distinct stream from the map side so the two fault models compose.
    common::Xoshiro256 rng(
        common::mix64(config_.seed ^ 0xa24baed4963ee407ULL ^ (r + 1)));
    const std::size_t cap = config_.max_task_attempts - 1;
    std::size_t failures = 0;
    if (rng.chance(config_.reduce_failure_rate)) {
      failures = 1;
      while (failures < cap && rng.chance(config_.reduce_failure_rate)) {
        ++failures;
      }
    }
    return std::min(failures, cap);
  }

  [[nodiscard]] runtime::TaskOptions task_options(bool traced, const char* kind,
                                                  std::size_t index,
                                                  std::size_t sub = SIZE_MAX) const {
    runtime::TaskOptions options;
    options.max_attempts = config_.max_task_attempts;
    options.kind = kind[0] == 'm'   ? runtime::TaskKind::kMap
                   : kind[0] == 'f' ? runtime::TaskKind::kFetch
                   : kind[0] == 'r' ? runtime::TaskKind::kReduce
                                    : runtime::TaskKind::kOther;
    if (traced) {
      options.label = config_.name + "/" + kind + " " + std::to_string(index);
      if (sub != SIZE_MAX) options.label += "." + std::to_string(sub);
    }
    return options;
  }

  /// Publish the finished job's stats to the global metrics registry and
  /// the engine log; user counters are exported as `mr.counter.<name>`.
  void export_stats(const JobStats& stats) const {
    auto& registry = obs::Registry::global();
    registry.counter("mr.jobs").inc();
    registry.counter("mr.map_tasks").add(static_cast<long>(stats.map_tasks));
    registry.counter("mr.reduce_tasks")
        .add(static_cast<long>(stats.reduce_tasks));
    registry.counter("mr.map_retries").add(static_cast<long>(stats.map_retries));
    registry.counter("mr.reduce_retries")
        .add(static_cast<long>(stats.reduce_retries));
    registry.counter("mr.lost_map_reruns")
        .add(static_cast<long>(stats.lost_map_reruns));
    registry.counter("mr.input_records")
        .add(static_cast<long>(stats.input_records));
    registry.counter("mr.map_output_records")
        .add(static_cast<long>(stats.map_output_records));
    registry.counter("mr.output_records")
        .add(static_cast<long>(stats.output_records));
    registry.counter("mr.map_input_bytes")
        .add(static_cast<long>(stats.map_input_bytes));
    registry.counter("mr.reduce_input_bytes")
        .add(static_cast<long>(stats.reduce_input_bytes));
    registry.counter("mr.reduce_output_bytes")
        .add(static_cast<long>(stats.reduce_output_bytes));
    registry.counter("mr.spill_runs").add(static_cast<long>(stats.spill_runs));
    registry.counter("mr.spill_bytes")
        .add(static_cast<long>(stats.spill_bytes));
    for (const auto& [name, value] : stats.counters) {
      registry.counter("mr.counter." + name).add(value);
    }

    static const obs::Logger logger("mr.job");
    if (logger.enabled(obs::LogLevel::kInfo)) {
      logger.info("job finished",
                  {{"job", config_.name},
                   {"maps", stats.map_tasks},
                   {"reducers", stats.reduce_tasks},
                   {"input_records", stats.input_records},
                   {"output_records", stats.output_records},
                   {"map_retries", stats.map_retries},
                   {"reduce_retries", stats.reduce_retries},
                   {"lost_map_reruns", stats.lost_map_reruns},
                   {"shuffle_bytes", stats.shuffle_bytes},
                   {"map_cpu_s", stats.map_cpu_s},
                   {"reduce_cpu_s", stats.reduce_cpu_s},
                   {"sim_total_s", stats.timeline.total_s}});
    }
  }

  [[nodiscard]] std::size_t partition_of(const K& key) const {
    if (partitioner_) return partitioner_(key) % config_.num_reducers;
    // Stable FNV-1a over the key's serialized form: the same key lands on
    // the same reducer on every platform and standard library, so
    // JobStats, shuffle bytes, and the simulated timeline reproduce
    // everywhere (std::hash guarantees none of that).
    return static_cast<std::size_t>(stable_hash(key) %
                                    static_cast<std::uint64_t>(
                                        config_.num_reducers));
  }

  /// Sort pairs by key and fold each group through `fn`.
  template <typename Fn>
  static void for_each_group(std::vector<std::pair<K, V>>& pairs, Fn&& fn) {
    std::stable_sort(pairs.begin(), pairs.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    std::size_t begin = 0;
    while (begin < pairs.size()) {
      std::size_t end = begin + 1;
      while (end < pairs.size() && !(pairs[begin].first < pairs[end].first)) ++end;
      std::vector<V> values;
      values.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) {
        values.push_back(std::move(pairs[i].second));
      }
      fn(pairs[begin].first, values);
      begin = end;
    }
  }

  /// One map attempt: map every record, combine, partition into per-reducer
  /// runs and sort each run by key (the "spill" a Hadoop mapper writes).
  MapTaskOutput run_map_attempt(const std::vector<In>& split,
                                int preferred_node, std::size_t split_index) {
    MapTaskOutput task;

    // Thread CPU clock, not wall: the task shares a core with its siblings.
    common::ThreadCpuStopwatch watch;
    Emitter<K, V> emitter;
    double input_bytes = 0.0;
    double work = 0.0;
    if (split_mapper_) {
      split_mapper_(std::span<const In>(split.data(), split.size()),
                    split_index, emitter);
    }
    for (const In& record : split) {
      if (mapper_) mapper_(record, emitter);
      input_bytes += approx_bytes(record);
      // Default work model: 1 microsecond of reference-node CPU per record
      // (typical lightweight Hadoop record processing).
      work += map_work_ ? map_work_(record) : 1e-6;
    }
    task.records_in = split.size();
    task.records_pre_combine = emitter.pairs().size();

    std::vector<std::pair<K, V>> pairs = std::move(emitter.pairs());
    if (combiner_) {
      Emitter<K, V> combined;
      for_each_group(pairs, [&](const K& key, std::vector<V>& values) {
        combiner_(key, values, combined);
      });
      pairs = std::move(combined.pairs());
      for (const auto& [name, value] : combined.counters()) {
        emitter.counters()[name] += value;
      }
    }
    task.records_out = pairs.size();

    task.runs.resize(config_.num_reducers);
    task.run_bytes.assign(config_.num_reducers, 0.0);
    for (auto& pair : pairs) {
      const std::size_t r = partition_of(pair.first);
      task.run_bytes[r] += approx_bytes(pair);
      task.runs[r].push_back(std::move(pair));
    }
    double output_bytes = 0.0;
    for (const double bytes : task.run_bytes) output_bytes += bytes;
    // Sorted-run invariant: ascending by key, stable in emission order.
    for (Run& run : task.runs) {
      std::stable_sort(run.begin(), run.end(), [](const auto& a, const auto& b) {
        return a.first < b.first;
      });
    }

    task.cpu_s = watch.seconds();
    task.counters = std::move(emitter.counters());
    task.spec = TaskSpec{work, input_bytes, output_bytes, preferred_node};
    return task;
  }

  /// One reduce attempt: a stable k-way merge over the fetched sorted runs.
  /// Equal keys are consumed lowest-map-index first, each run in emission
  /// order — the exact order the old concatenate + stable_sort produced.
  ReduceTaskOutput run_reduce_attempt(std::vector<Run>& runs,
                                      const std::vector<double>& run_bytes,
                                      bool destructive) {
    ReduceTaskOutput task;

    common::ThreadCpuStopwatch watch;
    double input_bytes = 0.0;
    for (const double bytes : run_bytes) input_bytes += bytes;

    // Min-heap of run indices, ordered by (head key, run index).
    std::vector<std::size_t> position(runs.size(), 0);
    const auto cursor_greater = [&](std::size_t a, std::size_t b) {
      const K& key_a = runs[a][position[a]].first;
      const K& key_b = runs[b][position[b]].first;
      if (key_a < key_b) return false;
      if (key_b < key_a) return true;
      return a > b;
    };
    std::vector<std::size_t> heap;
    for (std::size_t m = 0; m < runs.size(); ++m) {
      if (!runs[m].empty()) {
        heap.push_back(m);
        ++task.merge_width;
      }
    }
    std::make_heap(heap.begin(), heap.end(), cursor_greater);

    ReduceContext context;
    double work = 0.0;
    std::vector<V> values;
    while (!heap.empty()) {
      const K group_key = runs[heap.front()][position[heap.front()]].first;
      values.clear();
      while (!heap.empty()) {
        const std::size_t m = heap.front();
        if (group_key < runs[m][position[m]].first) break;
        std::pop_heap(heap.begin(), heap.end(), cursor_greater);
        heap.pop_back();
        // Keys are consecutive within a sorted run: drain the whole group.
        while (position[m] < runs[m].size() &&
               !(group_key < runs[m][position[m]].first)) {
          if (destructive) {
            values.push_back(std::move(runs[m][position[m]].second));
          } else {
            values.push_back(runs[m][position[m]].second);
          }
          ++position[m];
        }
        if (position[m] < runs[m].size()) {
          heap.push_back(m);
          std::push_heap(heap.begin(), heap.end(), cursor_greater);
        }
      }
      ++task.groups;
      work += reduce_work_ ? reduce_work_(group_key, values.size())
                           : 1e-6 * static_cast<double>(values.size());
      if (context_reducer_) {
        context_reducer_(group_key, values, task.output, context);
      } else {
        reducer_(group_key, values, task.output);
      }
    }
    task.counters = std::move(context.counters());

    double output_bytes = 0.0;
    for (const Out& out : task.output) output_bytes += approx_bytes(out);
    task.cpu_s = watch.seconds();
    task.spec = TaskSpec{work, input_bytes, output_bytes, -1};
    return task;
  }

  JobConfig config_;
  Mapper mapper_;
  SplitMapper split_mapper_;
  Reducer reducer_;
  ContextReducer context_reducer_;
  Combiner combiner_;
  Partitioner partitioner_;
  MapWorkModel map_work_;
  ReduceWorkModel reduce_work_;
};

}  // namespace mrmc::mr

// Lenient FASTA/FASTQ parsing (ParseOptions::on_error = kSkip): malformed
// records are quarantined with the strict-mode message as the reason, the
// "bio.malformed_records" counter advances, and the rest of the file
// parses exactly as if the bad records were never there.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bio/fasta.hpp"
#include "bio/fastq.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace mrmc::bio {
namespace {

constexpr ParseOptions kSkip{.on_error = OnParseError::kSkip};

long malformed_counter() {
  return obs::Registry::global().counter("bio.malformed_records").value();
}

// ----------------------------------------------------------------- FASTA

TEST(LenientFasta, SkipsRecordWithNoSequence) {
  const std::string text = ">a\nACGT\n>empty\n>b\nTTGG\n";
  EXPECT_THROW((void)read_fasta_string(text), common::IoError);

  const long before = malformed_counter();
  ParseReport report;
  const auto records = read_fasta_string(text, kSkip, &report);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].id, "a");
  EXPECT_EQ(records[1].id, "b");
  EXPECT_EQ(report.records, 2u);
  EXPECT_EQ(report.skipped, 1u);
  ASSERT_EQ(report.reasons.size(), 1u);
  EXPECT_EQ(report.reasons[0], "fasta: record 'empty' has no sequence");
  EXPECT_EQ(malformed_counter(), before + 1);
}

TEST(LenientFasta, SkipsEmptyIdAndSwallowsItsBody) {
  const std::string text = ">\nACGT\nACGT\n>ok desc\nTTTT\n";
  EXPECT_THROW((void)read_fasta_string(text), common::IoError);

  ParseReport report;
  const auto records = read_fasta_string(text, kSkip, &report);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].id, "ok");
  // The bad record counts once, not once per swallowed sequence line.
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(report.reasons[0], "fasta: record with empty id");
}

TEST(LenientFasta, CountsLeadingJunkOncePerRun) {
  const std::string text = "garbage\nmore garbage\n>a\nACGT\n";
  EXPECT_THROW((void)read_fasta_string(text), common::IoError);

  ParseReport report;
  const auto records = read_fasta_string(text, kSkip, &report);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(report.reasons[0], "fasta: sequence data before first header");
}

TEST(LenientFasta, ThrowModeMatchesThePlainOverloads) {
  const std::string good = ">a\nACGT\n>b desc\nTT\nGG\n";
  const auto plain = read_fasta_string(good);
  ParseReport report;
  const auto strict = read_fasta_string(good, ParseOptions{}, &report);
  ASSERT_EQ(strict.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(strict[i].id, plain[i].id);
    EXPECT_EQ(strict[i].header, plain[i].header);
    EXPECT_EQ(strict[i].seq, plain[i].seq);
  }
  EXPECT_EQ(report.records, 2u);
  EXPECT_EQ(report.skipped, 0u);
}

TEST(LenientFasta, FileReaderReportsPerFileSkips) {
  const std::string path = ::testing::TempDir() + "/mrmc_lenient.fa";
  {
    std::ofstream out(path);
    out << ">a\nACGT\n>bad\n>b\nTT\n";
  }
  EXPECT_THROW((void)read_fasta_file(path), common::IoError);
  ParseReport report;
  const auto records = read_fasta_file(path, kSkip, &report);
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(report.skipped, 1u);
  std::remove(path.c_str());
  // Missing files still throw in either mode: nothing was parsed.
  EXPECT_THROW((void)read_fasta_file(path, kSkip), common::IoError);
}

// ----------------------------------------------------------------- FASTQ

TEST(LenientFastq, SkipsDesyncedHeaderAndResynchronizes) {
  const std::string text =
      "@r1\nACGT\n+\nIIII\n"
      "stray line\n"
      "@r2\nTTGG\n+\nJJJJ\n";
  EXPECT_THROW((void)read_fastq_string(text), common::IoError);

  const long before = malformed_counter();
  ParseReport report;
  const auto records = read_fastq_string(text, kSkip, &report);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].id, "r1");
  EXPECT_EQ(records[1].id, "r2");
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(report.reasons[0], "fastq: expected '@' header, got 'stray line'");
  EXPECT_EQ(malformed_counter(), before + 1);
}

TEST(LenientFastq, SkipsTruncatedFinalRecord) {
  const std::string text = "@r1\nACGT\n+\nIIII\n@r2\nTTGG\n+\n";
  EXPECT_THROW((void)read_fastq_string(text), common::IoError);

  ParseReport report;
  const auto records = read_fastq_string(text, kSkip, &report);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].id, "r1");
  EXPECT_EQ(report.reasons[0], "fastq: truncated record");
}

TEST(LenientFastq, SkipsBadSeparatorLengthMismatchAndEmptyId) {
  const std::string text =
      "@r1\nACGT\nXXXX\nIIII\n"   // '+' separator missing
      "@r2\nACGT\n+\nIII\n"       // quality shorter than sequence
      "@ \nACGT\n+\nIIII\n"       // empty id
      "@ok\nACGT\n+\nIIII\n";
  ParseReport report;
  const auto records = read_fastq_string(text, kSkip, &report);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].id, "ok");
  EXPECT_EQ(report.skipped, 3u);
  ASSERT_EQ(report.reasons.size(), 3u);
  EXPECT_EQ(report.reasons[0], "fastq: expected '+' separator");
  EXPECT_NE(report.reasons[1].find("length mismatch"), std::string::npos);
  EXPECT_EQ(report.reasons[2], "fastq: record with empty id");
}

TEST(LenientFastq, FileReaderKeepsGoodRecordsAndCounts) {
  const std::string path = ::testing::TempDir() + "/mrmc_lenient.fq";
  {
    std::ofstream out(path);
    out << "@r1\nACGT\n+\nIIII\nnoise\n@r2\nTT\n+\nII\n";
  }
  ParseReport report;
  const auto records = read_fastq_file(path, kSkip, &report);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(report.records, 2u);
  EXPECT_EQ(report.skipped, 1u);
  std::remove(path.c_str());
}

TEST(LenientFastq, CleanInputIsIdenticalAcrossModes) {
  const std::string text = "@r1 desc\nACGT\n+\nIIII\n@r2\nTTGG\n+\nJJJJ\n";
  const auto plain = read_fastq_string(text);
  const auto lenient = read_fastq_string(text, kSkip);
  EXPECT_EQ(plain, lenient);
}

}  // namespace
}  // namespace mrmc::bio

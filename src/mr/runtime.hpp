// mr::runtime — the engine's task-graph executor.
//
// A MapReduce job is not three barriers; it is a dependency graph: every
// (map m → reducer r) shuffle fetch depends only on map task m, and reduce
// task r depends only on its M fetches.  TaskGraph schedules that graph on a
// common::ThreadPool with per-node dependency counters: a node is submitted
// the moment its last dependency completes, so a reducer starts pulling runs
// while other map tasks are still running — the overlapped shuffle Hadoop
// performs, instead of the map barrier the old Job::run_splits imposed.
//
// Failure model: a task body may throw runtime::TaskFailure to fail the
// current attempt; the executor re-submits the node until it succeeds or
// `max_attempts` is exhausted (then the whole graph aborts and run()
// rethrows).  Any other exception is treated as a programming error and
// aborts immediately.  Attempt counts are queryable per node, which is how
// Job surfaces retry statistics.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace mrmc::obs {
class Gauge;
}  // namespace mrmc::obs

namespace mrmc::mr::runtime {

/// Thrown by a task body to fail the current attempt; the executor retries
/// the node (up to TaskOptions::max_attempts) instead of aborting the graph.
/// The engine's fault injection throws this to force real re-execution.
class TaskFailure : public common::Error {
 public:
  using common::Error::Error;
};

/// Thrown by a task body to demand re-execution of an already-*completed*
/// upstream dependency — Hadoop's fetch-failure path: a reducer that cannot
/// pull a map's output reports it, and the map re-runs as a new attempt even
/// though it had succeeded (semantics plain task-level retry cannot
/// express).  The thrower is parked (its attempt neither fails nor
/// completes) and re-submitted once the input finishes again.  Lost-input
/// re-runs do not count against either node's max_attempts.
class LostInputFailure : public common::Error {
 public:
  LostInputFailure(const std::string& message, std::size_t input)
      : common::Error(message), input_(input) {}

  /// Graph id of the dependency whose output was lost.
  [[nodiscard]] std::size_t input() const noexcept { return input_; }

 private:
  std::size_t input_;
};

/// The process-wide pool shared by every job (lazily created, sized to
/// hardware_concurrency).  Jobs used to build and tear down a pool each —
/// three times per clustered pipeline run.
common::ThreadPool& shared_pool();

/// Resolves which pool a job should run on: the shared process-wide pool by
/// default, or a private pool when the caller asked for `threads > 0` or an
/// isolated pool explicitly.  Owns the private pool, if any.
class PoolLease {
 public:
  PoolLease(std::size_t threads, bool isolated);

  [[nodiscard]] common::ThreadPool& pool() noexcept { return *pool_; }
  [[nodiscard]] bool owns_pool() const noexcept { return owned_ != nullptr; }

 private:
  std::unique_ptr<common::ThreadPool> owned_;
  common::ThreadPool* pool_;
};

/// What a graph node does, for the live-task telemetry probes.  The
/// executor keeps a process-wide count of running tasks per kind, which
/// the obs resource sampler reads (see register_sampler_probes()).
enum class TaskKind { kOther = 0, kMap, kFetch, kReduce };

/// Running tasks of `kind` across every TaskGraph in the process.
[[nodiscard]] long active_tasks(TaskKind kind) noexcept;

/// Register the runtime's probes with obs::ResourceSampler::global():
/// live map/fetch/reduce task counts and the shared pool's queue depth.
/// Idempotent; called from the TaskGraph constructor.
void register_sampler_probes();

struct TaskOptions {
  /// Trace-span label; empty disables the per-task wall span (cheaper).
  std::string label;
  /// Attempt budget, >= 1.  TaskFailure on the final attempt aborts the run.
  std::size_t max_attempts = 1;
  /// Kind bucket for the live-task telemetry counters.
  TaskKind kind = TaskKind::kOther;
};

/// A one-shot dependency-driven executor.  Build the graph with add_task
/// (dependencies must already have been added), then run() blocks until
/// every node completed or one failed permanently.
class TaskGraph {
 public:
  /// Task body; receives the 0-based attempt number.
  using TaskFn = std::function<void(std::size_t attempt)>;

  TaskGraph();

  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Adds a node and returns its id.  Every dependency id must be smaller
  /// than the new node's id (i.e. already added).
  std::size_t add_task(TaskFn fn, std::vector<std::size_t> deps,
                       TaskOptions options = {});

  /// Executes the graph on `pool`.  Rethrows the first permanent failure
  /// after in-flight tasks have drained; nodes downstream of a failed node
  /// are skipped.  One-shot: a TaskGraph cannot be run twice.
  void run(common::ThreadPool& pool);

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  /// Attempts node `id` made (1 for a clean first-try success); 0 if the
  /// node never ran because the graph aborted first.  Includes lost-input
  /// re-runs.
  [[nodiscard]] std::size_t attempts(std::size_t id) const;

  /// Times node `id` was re-executed after completing because a dependent
  /// threw LostInputFailure naming it.
  [[nodiscard]] std::size_t lost_input_reruns(std::size_t id) const;

  /// Total failed attempts across all nodes.
  [[nodiscard]] std::size_t total_retries() const;

 private:
  struct Node {
    TaskFn fn;
    TaskOptions options;
    std::vector<std::size_t> dependents;
    std::vector<std::size_t> waiters;  ///< parked throwers to resume on finish
    std::size_t remaining_deps = 0;
    std::size_t attempts = 0;
    std::size_t lost_input_reruns = 0;
    bool done = false;
    bool deps_notified = false;  ///< dependents released (first finish only)
  };

  void submit(common::ThreadPool& pool, std::size_t id);
  void execute(common::ThreadPool& pool, std::size_t id);
  // Marks `id` complete and submits any dependents that became ready.
  // Caller must NOT hold mutex_.
  void finish(common::ThreadPool& pool, std::size_t id);

  std::vector<Node> nodes_;
  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  std::size_t completed_ = 0;
  std::size_t inflight_ = 0;
  std::size_t retries_ = 0;
  bool started_ = false;
  bool abort_ = false;
  std::exception_ptr error_;
  obs::Gauge* queue_depth_;  // runtime.task_queue_depth
};

}  // namespace mrmc::mr::runtime

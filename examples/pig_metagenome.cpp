// Whole-metagenome binning through the Pig dataflow — runs the paper's
// Algorithm 3 script end to end on the simulated Hadoop substrate:
// the FASTA sample is written into SimDFS, every dataflow statement
// executes as a MapReduce job, and both clustering outputs (hierarchical
// and greedy) land back in the DFS.  Prints the per-job breakdown.
//
//   ./pig_metagenome [sample-id] [cutoff]      (default: S9 0.5)
#include <cstdlib>
#include <iostream>
#include <map>

#include "common/table.hpp"
#include "eval/metrics.hpp"
#include "pig/pig.hpp"
#include "simdata/datasets.hpp"

int main(int argc, char** argv) {
  using namespace mrmc;

  const std::string sid = argc > 1 ? argv[1] : "S9";
  const double cutoff = argc > 2 ? std::strtod(argv[2], nullptr) : 0.5;

  const auto& spec = simdata::whole_metagenome_spec(sid);
  const auto sample =
      simdata::build_whole_metagenome(spec, {.reads = 300, .seed = 11});
  std::cout << "Sample " << spec.sid << " (" << spec.taxonomic_difference
            << "): " << sample.size() << " reads from "
            << sample.species.size() << " species\n\n";

  // Stand up the simulated HDFS and stage the input.
  mr::SimDfs dfs({.nodes = 8, .block_size = 64 * 1024, .replication = 3});
  dfs.write("/user/mrmc/input.fa", bio::write_fasta_string(sample.reads));
  std::cout << "staged " << dfs.stat("/user/mrmc/input.fa").blocks.size()
            << " DFS blocks (" << dfs.total_bytes() / 1024 << " KiB, 3x "
            << "replication across 8 nodes)\n\n";

  // Run Algorithm 3.
  pig::Algorithm3Params params;
  params.kmer = 5;
  params.num_hashes = 100;
  params.cutoff = cutoff;
  params.linkage = core::Linkage::kAverage;
  const auto result =
      pig::run_algorithm3(dfs, "/user/mrmc/input.fa", "/user/mrmc/out_hier",
                          "/user/mrmc/out_greedy", params, {.nodes = 8});

  std::cout << "Pig script finished: " << result.jobs_run
            << " MapReduce jobs, simulated cluster time "
            << common::format_duration(result.sim_time_s) << "\n";

  // Evaluate both outputs against the ground truth labels.
  auto evaluate = [&](const char* name,
                      const std::vector<std::pair<std::string, int>>& labeled) {
    std::map<std::string, int> by_id(labeled.begin(), labeled.end());
    std::vector<int> labels;
    labels.reserve(sample.size());
    for (const auto& read : sample.reads) labels.push_back(by_id.at(read.id));
    std::cout << "  " << name << ": "
              << eval::clusters_at_least(labels, 2) << " clusters (>=2 reads), "
              << "W.Acc "
              << common::fmt_pct(
                     eval::weighted_cluster_accuracy(labels, sample.labels))
              << "%\n";
  };
  evaluate("hierarchical", result.hierarchical);
  evaluate("greedy      ", result.greedy);

  std::cout << "\nDFS output files:\n";
  for (const auto& path : dfs.list("/user/mrmc/out")) {
    std::cout << "  " << path << "  (" << dfs.stat(path).size << " bytes)\n";
  }
  std::cout << "\nfirst lines of " << "/user/mrmc/out_hier" << ":\n";
  const std::string text = dfs.read("/user/mrmc/out_hier");
  std::size_t shown = 0, pos = 0;
  while (shown < 5 && pos < text.size()) {
    const auto end = text.find('\n', pos);
    std::cout << "  " << text.substr(pos, end - pos) << "\n";
    pos = end + 1;
    ++shown;
  }
  return 0;
}

#include "bio/gotoh.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace mrmc::bio {

namespace {

constexpr long kNegInf = std::numeric_limits<long>::min() / 4;

struct Cell {
  long score = kNegInf;
  std::uint32_t matches = 0;
  std::uint32_t columns = 0;
};

inline bool better(const Cell& a, const Cell& b) noexcept {
  return a.score > b.score || (a.score == b.score && a.matches > b.matches);
}

inline Cell step(const Cell& from, long delta, bool is_match) noexcept {
  return {from.score + delta, from.matches + (is_match ? 1u : 0u),
          from.columns + 1};
}

/// Three-state DP row: best alignment ending in (M)atch, gap in a (F,
/// vertical: consumes b), or gap in b (E, horizontal: consumes a).
struct Row {
  std::vector<Cell> m, e, f;
  explicit Row(std::size_t width) : m(width), e(width), f(width) {}
};

}  // namespace

AlignResult gotoh_align(std::string_view a, std::string_view b,
                        const AffineParams& params) {
  MRMC_REQUIRE(params.gap_extend <= 0 && params.gap_open <= 0,
               "gap penalties must be non-positive");
  const std::size_t n = a.size(), m = b.size();
  if (n == 0 && m == 0) return {0, 1.0, 0};
  if (n == 0 || m == 0) {
    const std::size_t len = std::max(n, m);
    return {params.gap_open + static_cast<long>(len) * params.gap_extend, 0.0,
            len};
  }

  Row prev(m + 1), cur(m + 1);
  prev.m[0] = {0, 0, 0};
  // Top row (i = 0): only gaps consuming b -> state F.
  for (std::size_t j = 1; j <= m; ++j) {
    prev.f[j] = {params.gap_open + static_cast<long>(j) * params.gap_extend, 0,
                 static_cast<std::uint32_t>(j)};
  }

  for (std::size_t i = 1; i <= n; ++i) {
    cur.m[0] = Cell{};
    cur.f[0] = Cell{};
    // Left column (j = 0): only gaps consuming a -> state E.
    cur.e[0] = {params.gap_open + static_cast<long>(i) * params.gap_extend, 0,
                static_cast<std::uint32_t>(i)};
    for (std::size_t j = 1; j <= m; ++j) {
      const bool is_match = a[i - 1] == b[j - 1];
      const long sub = is_match ? params.match : params.mismatch;

      // M: diagonal step from the best state at (i-1, j-1).
      Cell best_prev = prev.m[j - 1];
      if (better(prev.e[j - 1], best_prev)) best_prev = prev.e[j - 1];
      if (better(prev.f[j - 1], best_prev)) best_prev = prev.f[j - 1];
      cur.m[j] = best_prev.score > kNegInf ? step(best_prev, sub, is_match)
                                           : Cell{};

      // E: gap in b (consume a[i-1] .. horizontal over i).  Open from
      // M/F at (i-1, j) or extend E at (i-1, j).
      Cell open_e = prev.m[j];
      if (better(prev.f[j], open_e)) open_e = prev.f[j];
      Cell cand_open = open_e.score > kNegInf
                           ? step(open_e, params.gap_open + params.gap_extend,
                                  false)
                           : Cell{};
      Cell cand_ext = prev.e[j].score > kNegInf
                          ? step(prev.e[j], params.gap_extend, false)
                          : Cell{};
      cur.e[j] = better(cand_open, cand_ext) ? cand_open : cand_ext;

      // F: gap in a (consume b[j-1] .. vertical over j).  Open from
      // M/E at (i, j-1) or extend F at (i, j-1).
      Cell open_f = cur.m[j - 1];
      if (better(cur.e[j - 1], open_f)) open_f = cur.e[j - 1];
      Cell f_open = open_f.score > kNegInf
                        ? step(open_f, params.gap_open + params.gap_extend,
                               false)
                        : Cell{};
      Cell f_ext = cur.f[j - 1].score > kNegInf
                       ? step(cur.f[j - 1], params.gap_extend, false)
                       : Cell{};
      cur.f[j] = better(f_open, f_ext) ? f_open : f_ext;
    }
    std::swap(prev, cur);
  }

  Cell corner = prev.m[m];
  if (better(prev.e[m], corner)) corner = prev.e[m];
  if (better(prev.f[m], corner)) corner = prev.f[m];
  MRMC_CHECK(corner.score > kNegInf, "gotoh: no alignment path reached corner");

  AlignResult result;
  result.score = corner.score;
  result.columns = corner.columns;
  result.identity = corner.columns == 0
                        ? 1.0
                        : static_cast<double>(corner.matches) /
                              static_cast<double>(corner.columns);
  return result;
}

long gotoh_score(std::string_view a, std::string_view b,
                 const AffineParams& params) {
  return gotoh_align(a, b, params).score;
}

}  // namespace mrmc::bio

// Behavioural tests shared across all seven comparator implementations,
// plus method-specific checks (seed filters, candidate ordering, phase
// structure).  The shared fixture builds two well-separated OTU groups of
// near-duplicate reads — every sane clustering method must (a) label every
// read, (b) keep the groups apart, and (c) keep near-duplicates together.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>

#include "common/error.hpp"

#include "baselines/cdhit_like.hpp"
#include "baselines/hclust_family.hpp"
#include "baselines/mc_lsh.hpp"
#include "baselines/metacluster_like.hpp"
#include "baselines/uclust_like.hpp"
#include "simdata/marker16s.hpp"

namespace mrmc::baselines {
namespace {

/// Two OTUs, `per_otu` reads each, tiny error rate: intra-OTU identity is
/// near 1, inter-OTU identity is low (variable-region reads).
simdata::LabeledReads two_otu_sample(std::size_t per_otu, std::uint64_t seed) {
  const auto genes = simdata::generate_16s_genes(2, {}, seed);
  simdata::AmpliconParams params;
  params.errors = simdata::ErrorModel::uniform(0.005);
  params.read_length = 80;
  params.length_jitter = 0.04;  // global-alignment methods punish length spread
  return simdata::amplicon_reads(genes, {1.0, 1.0},
                                 2 * per_otu, params, seed + 1);
}

using Runner = std::function<BaselineResult(std::span<const bio::FastaRecord>)>;

struct NamedRunner {
  std::string name;
  Runner run;
};

std::vector<NamedRunner> all_runners() {
  return {
      {"cdhit", [](auto reads) { return cdhit_cluster(reads, {.identity = 0.9}); }},
      {"uclust", [](auto reads) { return uclust_cluster(reads, {.identity = 0.9}); }},
      {"mclsh",
       [](auto reads) {
         return mclsh_cluster(reads, {.theta = 0.5, .kmer = 12, .num_hashes = 50,
                                      .bands = 10});
       }},
      {"esprit", [](auto reads) { return esprit_cluster(reads, {.identity = 0.9}); }},
      {"dotur", [](auto reads) { return dotur_cluster(reads, {.identity = 0.9}); }},
      {"mothur", [](auto reads) { return mothur_cluster(reads, {.identity = 0.9}); }},
      {"metacluster",
       [](auto reads) {
         return metacluster_cluster(reads, {.max_group = 8, .merge_distance = 0.12});
       }},
  };
}

TEST(AllBaselines, LabelEveryReadWithDenseLabels) {
  const auto sample = two_otu_sample(8, 100);
  for (const auto& [name, run] : all_runners()) {
    const BaselineResult result = run(sample.reads);
    ASSERT_EQ(result.labels.size(), sample.size()) << name;
    std::set<int> labels;
    for (const int label : result.labels) {
      EXPECT_GE(label, 0) << name;
      labels.insert(label);
    }
    EXPECT_EQ(labels.size(), result.num_clusters) << name;
    EXPECT_GE(result.wall_s, 0.0) << name;
  }
}

TEST(AllBaselines, EmptyInputYieldsEmptyResult) {
  const std::vector<bio::FastaRecord> empty;
  for (const auto& [name, run] : all_runners()) {
    const BaselineResult result = run(empty);
    EXPECT_TRUE(result.labels.empty()) << name;
    EXPECT_EQ(result.num_clusters, 0u) << name;
  }
}

TEST(AllBaselines, SeparateDistantOtus) {
  const auto sample = two_otu_sample(8, 200);
  for (const auto& [name, run] : all_runners()) {
    const BaselineResult result = run(sample.reads);
    // No cluster may span both OTUs.
    std::map<int, std::set<int>> otus_per_cluster;
    for (std::size_t i = 0; i < sample.size(); ++i) {
      otus_per_cluster[result.labels[i]].insert(sample.labels[i]);
    }
    for (const auto& [cluster, otus] : otus_per_cluster) {
      EXPECT_EQ(otus.size(), 1u) << name << " cluster " << cluster;
    }
  }
}

TEST(AllBaselines, GroupNearDuplicates) {
  const auto sample = two_otu_sample(8, 300);
  for (const auto& [name, run] : all_runners()) {
    const BaselineResult result = run(sample.reads);
    // Near-duplicate reads must not explode into one cluster per read.
    EXPECT_LT(result.num_clusters, sample.size() / 2) << name;
    EXPECT_GE(result.num_clusters, 2u) << name;
  }
}

TEST(AllBaselines, DeterministicAcrossRuns) {
  const auto sample = two_otu_sample(6, 400);
  for (const auto& [name, run] : all_runners()) {
    EXPECT_EQ(run(sample.reads).labels, run(sample.reads).labels) << name;
  }
}

// ------------------------------------------------------------ method-specific

TEST(CdHit, IdenticalReadsShareOneCluster) {
  std::vector<bio::FastaRecord> reads(5, {"r", "r", "ACGTACGGTTAACCGGTTAA"});
  const BaselineResult result = cdhit_cluster(reads, {.identity = 0.95});
  EXPECT_EQ(result.num_clusters, 1u);
}

TEST(CdHit, LongestReadBecomesRepresentative) {
  // The longest read is processed first, so it anchors cluster 0 even when
  // it is not first in input order.
  std::vector<bio::FastaRecord> reads{
      {"short", "short", "ACGTACGT"},
      {"long", "long", "TTTTGGGGCCCCAAAATTTTGGGG"},
  };
  const BaselineResult result = cdhit_cluster(reads, {.identity = 0.95});
  EXPECT_EQ(result.labels[1], 0);  // long read anchors first cluster
  EXPECT_EQ(result.labels[0], 1);
}

TEST(CdHit, WordFilterPrunesAlignments) {
  const auto sample = two_otu_sample(10, 500);
  const BaselineResult result = cdhit_cluster(sample.reads, {.identity = 0.9});
  // The filter must skip at least some representative checks.
  EXPECT_LT(result.alignments, result.comparisons);
}

TEST(Uclust, InputOrderAnchorsFirstCluster) {
  const auto sample = two_otu_sample(5, 600);
  const BaselineResult result = uclust_cluster(sample.reads, {.identity = 0.9});
  EXPECT_EQ(result.labels[0], 0);
}

TEST(Uclust, MaxRejectsZeroMakesEverySequenceItsOwnCluster) {
  const auto sample = two_otu_sample(5, 700);
  UclustParams params;
  params.identity = 0.9;
  params.max_rejects = 0;
  // With no alignments allowed, nothing can ever be accepted.
  const BaselineResult result = uclust_cluster(sample.reads, params);
  EXPECT_EQ(result.num_clusters, sample.size());
  EXPECT_EQ(result.alignments, 0u);
}

TEST(McLsh, RejectsBandsNotDividingHashes) {
  const auto sample = two_otu_sample(3, 800);
  McLshParams params;
  params.num_hashes = 50;
  params.bands = 7;  // does not divide 50
  EXPECT_THROW(mclsh_cluster(sample.reads, params), common::InvalidArgument);
}

TEST(McLsh, BandCollisionsPruneComparisons) {
  const auto sample = two_otu_sample(10, 900);
  const BaselineResult result = mclsh_cluster(
      sample.reads, {.theta = 0.5, .kmer = 12, .num_hashes = 50, .bands = 10});
  // Verified candidates should be far fewer than all pairs.
  const std::size_t all_pairs = sample.size() * (sample.size() - 1) / 2;
  EXPECT_LT(result.comparisons, all_pairs);
}

TEST(Esprit, FilterSkipsMostAlignments) {
  const auto sample = two_otu_sample(10, 1000);
  const BaselineResult esprit = esprit_cluster(sample.reads, {.identity = 0.9});
  const BaselineResult dotur = dotur_cluster(sample.reads, {.identity = 0.9});
  // DOTUR aligns every pair; ESPRIT only intra-OTU-ish pairs.
  EXPECT_LT(esprit.alignments, dotur.alignments);
  EXPECT_EQ(dotur.alignments, sample.size() * (sample.size() - 1) / 2);
}

TEST(DoturMothur, AgreeOnWellSeparatedData) {
  const auto sample = two_otu_sample(8, 1100);
  const BaselineResult dotur = dotur_cluster(sample.reads, {.identity = 0.9});
  const BaselineResult mothur = mothur_cluster(sample.reads, {.identity = 0.9});
  // Same core algorithm: cluster counts match on clean data.
  EXPECT_EQ(dotur.num_clusters, mothur.num_clusters);
}

TEST(MetaCluster, MergesCompositionallyIdenticalGroups) {
  // All reads from ONE gene: phase 1 splits into several groups, phase 2
  // must merge them back together.
  const auto genes = simdata::generate_16s_genes(1, {}, 42);
  simdata::AmpliconParams params;
  params.errors = simdata::ErrorModel::uniform(0.002);
  params.read_length = 80;
  const auto sample = simdata::amplicon_reads(genes, {1.0}, 40, params, 43);
  const BaselineResult result = metacluster_cluster(
      sample.reads, {.max_group = 8, .merge_distance = 0.2});
  EXPECT_LE(result.num_clusters, 3u);
}

TEST(MetaCluster, MaxGroupBoundsPhaseOne) {
  const auto sample = two_otu_sample(12, 1200);
  EXPECT_THROW(metacluster_cluster(sample.reads, {.max_group = 1}),
               common::InvalidArgument);
  const BaselineResult result =
      metacluster_cluster(sample.reads, {.max_group = 4});
  EXPECT_GE(result.num_clusters, 1u);
}

}  // namespace
}  // namespace mrmc::baselines

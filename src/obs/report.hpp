// Post-hoc job doctor: turns raw telemetry into answers.
//
// The analyzer consumes one simulated job's schedule — either handed over
// in-process (mr::simulate_job feeds the global Collector when MRMC_REPORT
// is set) or reconstructed offline from a flushed Chrome-trace JSON file
// (the mrmc_doctor CLI) — and produces a structured JobReport:
//
//   * critical-path decomposition: startup / map / shuffle / reduce, the
//     longest chain versus the sum of task work, and the parallel
//     efficiency that falls out of the two;
//   * per-node and per-slot utilization (busy seconds over phase makespan);
//   * findings: stragglers (top-k task durations vs. the phase median),
//     reduce skew, poor data locality, idle slots, shuffle- or
//     startup-bound jobs — each with a heuristic recommendation.
//
// A report renders three ways: ANSI text (to_text), self-contained HTML
// with an inline-SVG Gantt and per-node utilization strips (to_html), and
// JSON (to_json) whose doubles are printed with %.17g so an offline reader
// recovers the scheduler's numbers bit-for-bit.
//
// Both ingestion paths run the same analyze() over the same JobInput
// fields, and every derived quantity is combined in a fixed left-to-right
// order, so the offline report equals the in-process one EXACTLY (asserted
// by tests/obs/report_test.cpp and the mrmc_doctor round-trip test).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/mini_json.hpp"

namespace mrmc::obs::report {

/// One scheduled task as the analyzer sees it (phase-relative seconds).
struct TaskSample {
  std::size_t index = 0;  ///< task index within its phase
  int node = 0;
  int slot = 0;  ///< slot index on the node
  double start_s = 0.0;
  double end_s = 0.0;
  bool data_local = true;

  [[nodiscard]] double duration_s() const noexcept { return end_s - start_s; }
};

/// One node crash as the analyzer sees it (mr::faults::NodeDownEvent's
/// doctor-side twin).  recover_s is -1 when the node never rejoined, so
/// every field is a finite double and survives the %.17g trace round trip.
struct FaultEventSample {
  int node = 0;
  double crash_s = 0.0;
  double detect_s = 0.0;
  double recover_s = -1.0;
  bool blacklisted = false;
};

/// One task attempt a node failure destroyed ("killed" mid-run, or a
/// completed map's "lost-output"); times are absolute job-clock seconds.
struct LostAttemptSample {
  std::string phase;  ///< "map" | "reduce"
  std::string kind;   ///< "killed" | "lost-output"
  std::size_t task = 0;
  int node = 0;
  int slot = 0;
  double start_s = 0.0;
  double end_s = 0.0;
};

/// Serialized-byte totals for one job, summed over the task specs in
/// phase-index order (the shuffle-byte accounting).  empty() when the
/// producer recorded none — the renderers then omit the Bytes section
/// entirely, keeping byte-less reports byte-identical to older builds.
/// Doubles travel as %.17g through the trace ("job_bytes" instant), so the
/// offline report equals the in-process one exactly.
struct ByteSummary {
  double map_input_bytes = 0.0;      ///< split bytes the map tasks read
  double map_output_bytes = 0.0;     ///< spill bytes the map tasks wrote
  double reduce_input_bytes = 0.0;   ///< merged run bytes the reducers read
  double reduce_output_bytes = 0.0;  ///< final output bytes
  double fetch_bytes = 0.0;          ///< bytes moved by shuffle fetches
  std::size_t fetch_count = 0;       ///< spill runs pulled across the wire
  std::size_t max_fetch_fan_in = 0;  ///< most runs merged into one reducer

  [[nodiscard]] bool empty() const noexcept {
    return map_input_bytes == 0.0 && map_output_bytes == 0.0 &&
           reduce_input_bytes == 0.0 && reduce_output_bytes == 0.0 &&
           fetch_bytes == 0.0 && fetch_count == 0 && max_fetch_fan_in == 0;
  }
};

/// Everything the analyzer needs about one simulated job, however obtained
/// (mr::report_input() in-process, jobs_from_trace() offline).
struct JobInput {
  std::string name = "job";
  std::size_t nodes = 1;
  std::size_t map_slots_per_node = 1;
  std::size_t reduce_slots_per_node = 1;
  double job_startup_s = 0.0;
  double shuffle_s = 0.0;
  double shuffle_bytes = 0.0;
  ByteSummary bytes;
  std::vector<TaskSample> map_tasks;
  std::vector<TaskSample> reduce_tasks;
  std::vector<FaultEventSample> fault_events;    ///< crash order
  std::vector<LostAttemptSample> lost_attempts;  ///< discovery order
  /// Cross-job lineage (obs v3): set when the job ran under an active
  /// obs::pipeline scope; an empty pipeline id means a standalone job and
  /// keeps the rendered report byte-identical to pre-lineage builds.
  std::string pipeline;      ///< pipeline id, e.g. "pipeline-hierarchical#1"
  std::string stage;         ///< stage name within the pipeline
  int round = -1;            ///< iteration index for round drivers; -1 = none
  std::size_t sequence = 0;  ///< 0-based position within the pipeline
  /// Sim track the job occupies in a flushed trace (offline intake only;
  /// 0 in-process).  mrmc_doctor's `jobs` listing and --job selector key
  /// on it; never rendered into reports.
  std::uint32_t trace_pid = 0;
};

/// Tunable thresholds for the heuristics.
struct AnalyzeOptions {
  double straggler_factor = 2.0;    ///< duration > factor x phase median
  std::size_t straggler_top_k = 3;  ///< tasks listed per straggler finding
  double skew_factor = 2.0;         ///< reduce imbalance max/median threshold
  double locality_threshold = 0.8;  ///< warn below this data-local fraction
  double efficiency_threshold = 0.5;
  double overhead_fraction = 0.3;   ///< shuffle- / startup-bound threshold
};

enum class Severity { kInfo, kWarning, kCritical };

[[nodiscard]] const char* severity_name(Severity severity) noexcept;

/// One diagnosis, e.g. {"map-straggler", kWarning, "...", "..."}.
struct Finding {
  std::string id;  ///< stable machine name, e.g. "reduce-skew"
  Severity severity = Severity::kInfo;
  std::string message;         ///< what was observed, with numbers
  std::string recommendation;  ///< what to try about it
};

/// Per-phase decomposition (map or reduce).
struct PhaseAnalysis {
  std::string phase;  ///< "map" or "reduce"
  std::size_t task_count = 0;
  std::size_t slots = 0;        ///< nodes x slots_per_node
  std::size_t busy_slots = 0;   ///< slots that ran at least one task
  double makespan_s = 0.0;      ///< max task end == longest slot chain
  double busy_s = 0.0;          ///< sum of task durations (the "work")
  double ideal_s = 0.0;         ///< busy_s / slots: perfectly balanced time
  double parallel_efficiency = 0.0;  ///< busy_s / (makespan_s * slots)
  double median_task_s = 0.0;
  double max_task_s = 0.0;
  double data_local_fraction = 1.0;
  std::vector<double> node_busy_s;  ///< per-node busy seconds, size = nodes
};

/// What node failures did to the job (empty() for fault-free runs — the
/// renderers then omit the Faults section entirely, keeping fault-free
/// reports byte-identical to pre-fault builds).
struct FaultAnalysis {
  std::size_t node_crashes = 0;
  std::size_t killed_attempts = 0;
  std::size_t lost_map_outputs = 0;
  std::size_t blacklisted_nodes = 0;
  double lost_work_s = 0.0;  ///< attempt-seconds destroyed, in list order
  double downtime_s = 0.0;   ///< node-down seconds clamped to [0, total_s]
  std::vector<FaultEventSample> events;
  std::vector<LostAttemptSample> lost_attempts;

  [[nodiscard]] bool empty() const noexcept {
    return events.empty() && lost_attempts.empty();
  }
};

/// Utilization of one node across both compute phases.
struct NodeUtilization {
  int node = 0;
  double busy_s = 0.0;       ///< map + reduce busy seconds on this node
  double utilization = 0.0;  ///< busy / (available slot-seconds)
};

struct JobReport {
  std::string name;
  std::size_t nodes = 1;
  /// Critical path, in schedule order.  total_s is re-derived as
  /// startup + map + shuffle + reduce left to right, matching
  /// mr::simulate_job exactly.
  double startup_s = 0.0;
  double shuffle_s = 0.0;
  double shuffle_bytes = 0.0;
  double total_s = 0.0;
  PhaseAnalysis map_phase;
  PhaseAnalysis reduce_phase;
  /// Whole-job parallel efficiency: compute busy seconds over the
  /// slot-seconds the compute phases occupied.
  double parallel_efficiency = 0.0;
  /// Fraction of total_s spent outside the compute phases.
  double overhead_fraction = 0.0;
  std::vector<NodeUtilization> node_utilization;
  ByteSummary bytes;  ///< copied verbatim from the input (empty() = omitted)
  FaultAnalysis faults;
  std::vector<Finding> findings;
  /// Lineage, copied verbatim from the input (empty pipeline = standalone;
  /// the renderers then omit the lineage section entirely).
  std::string pipeline;
  std::string stage;
  int round = -1;
  std::size_t sequence = 0;
  std::uint32_t trace_pid = 0;  ///< offline intake only; not rendered

  [[nodiscard]] bool has_finding(std::string_view id) const noexcept;
};

/// Run every heuristic over one job.
[[nodiscard]] JobReport analyze(const JobInput& input,
                                const AnalyzeOptions& options = {});

// ----------------------------------------------------------- offline intake

/// Reconstruct the analyzer inputs from a parsed Chrome trace (the format
/// obs::Tracer::write_chrome_trace emits): sim pids become jobs, their
/// %.17g start_s/end_s args restore the scheduler's doubles exactly, and
/// the job_config instant restores the cluster shape.  Jobs appear in
/// trace (pid) order.  Throws std::runtime_error on a malformed trace.
[[nodiscard]] std::vector<JobInput> jobs_from_trace(
    const common::JsonValue& root);

/// Parse + reconstruct + analyze a trace file end to end (what mrmc_doctor
/// does).  Throws std::runtime_error when the file is unreadable or is not
/// a trace.
[[nodiscard]] std::vector<JobReport> analyze_trace_file(
    const std::string& path, const AnalyzeOptions& options = {});

// -------------------------------------------------------------- renderers

/// ANSI text summary; `color` adds SGR escapes for severities.
[[nodiscard]] std::string to_text(const JobReport& report, bool color = false);
[[nodiscard]] std::string to_text(std::span<const JobReport> reports,
                                  bool color = false);

/// Machine-readable report; all doubles rendered %.17g.
[[nodiscard]] std::string to_json(const JobReport& report);
[[nodiscard]] std::string to_json(std::span<const JobReport> reports);

/// Self-contained HTML page: per job an inline-SVG Gantt (one row per
/// node/slot, stragglers outlined), per-node utilization strips, the
/// critical-path bar, and the findings list.  No external assets.
[[nodiscard]] std::string to_html(std::span<const JobReport> reports);

// -------------------------------------------------------------- collector

/// Process-global report sink, mirroring Tracer/Registry: when MRMC_REPORT
/// names a file (or set_output_path() is called), mr::simulate_job feeds
/// every job's JobInput here and flush() writes the rendered report —
/// HTML when the path ends in .html, JSON for .json, text otherwise.
class Collector {
 public:
  static Collector& global();  ///< first use reads MRMC_REPORT

  [[nodiscard]] bool enabled() const noexcept;
  void set_enabled(bool enabled) noexcept;
  void set_output_path(std::string path);
  [[nodiscard]] std::string output_path() const;

  void add(JobInput input);
  [[nodiscard]] std::size_t size() const;
  void clear();

  /// Analyze everything collected so far.
  [[nodiscard]] std::vector<JobReport> reports(
      const AnalyzeOptions& options = {}) const;

  /// Render to the configured path.  Returns true when a file was written.
  bool flush() const;

  /// flush() on the global collector, for pipeline/process boundaries.
  static bool write_global_if_configured();

  ~Collector();

 private:
  Collector();

  mutable std::mutex mutex_;
  bool enabled_ = false;
  std::string output_path_;
  std::vector<JobInput> inputs_;
};

}  // namespace mrmc::obs::report

# Empty compiler generated dependencies file for table3_whole_metagenome.
# This may be replaced when dependencies are built.

// MetaCluster-style two-phase composition binning (Yang et al. 2010).
//
// Phase 1 (top-down): reads are represented by k-mer (default k=4)
// frequency vectors and recursively bisected (2-medoid splits under
// Spearman rank-correlation distance) until groups are small.
// Phase 2 (bottom-up): group centroids are merged agglomeratively while
// their Spearman distance stays below the merge threshold.
//
// Composition signals (GC / tetranucleotide bias) are what MetaCluster
// exploits, so it wins when genomes differ in composition and degrades at
// close taxonomic distance — the behaviour Table III reproduces.
#pragma once

#include <cstdint>
#include <span>

#include "baselines/baseline.hpp"

namespace mrmc::baselines {

struct MetaClusterParams {
  int word_size = 4;            ///< tetranucleotide composition
  std::size_t max_group = 64;   ///< phase-1 leaf size
  double merge_distance = 0.05; ///< phase-2 centroid Spearman threshold
  std::size_t kmeans_rounds = 8;
  std::uint64_t seed = 17;
};

BaselineResult metacluster_cluster(std::span<const bio::FastaRecord> reads,
                                   const MetaClusterParams& params = {});

}  // namespace mrmc::baselines

// mrmc_doctor — post-hoc job doctor for flushed Chrome traces.
//
// Reads a trace written by MRMC_TRACE / --trace (obs::Tracer), reconstructs
// every simulated job from the %.17g args, and prints the same JobReport the
// in-process analyzer would have produced (bit-identical critical path —
// asserted by tests/obs/report_test.cpp).
//
//   mrmc_doctor <trace.json>                    # ANSI text to stdout
//   mrmc_doctor <trace.json> --format=json      # machine-readable
//   mrmc_doctor <trace.json> --format=html      # self-contained HTML page
//   mrmc_doctor <trace.json> -o report.html     # format from extension
//   mrmc_doctor <trace.json> --no-color
//
// Exit status: 0 on success, 1 on a malformed/unreadable trace or bad usage.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "obs/report.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.json> [--format=text|json|html] [-o <path>]"
               " [--no-color]\n",
               argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string format;
  std::string output_path;
  bool color = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
    } else if (arg == "-o" || arg == "--output") {
      if (++i >= argc) return usage(argv[0]);
      output_path = argv[i];
    } else if (arg == "--no-color") {
      color = false;
    } else if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (trace_path.empty()) return usage(argv[0]);

  // Format: explicit flag wins, then the output extension, then text.
  const auto ends_with = [&](const std::string& suffix) {
    return output_path.size() >= suffix.size() &&
           output_path.compare(output_path.size() - suffix.size(),
                               suffix.size(), suffix) == 0;
  };
  if (format.empty()) {
    format = ends_with(".html") ? "html" : ends_with(".json") ? "json" : "text";
  }
  if (format != "text" && format != "json" && format != "html") {
    return usage(argv[0]);
  }

  using namespace mrmc::obs;
  std::vector<report::JobReport> reports;
  try {
    reports = report::analyze_trace_file(trace_path);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mrmc_doctor: %s\n", error.what());
    return 1;
  }
  if (reports.empty()) {
    std::fprintf(stderr,
                 "mrmc_doctor: no simulated jobs in %s (was the trace written "
                 "with MRMC_TRACE by this library?)\n",
                 trace_path.c_str());
    return 1;
  }

  const std::span<const report::JobReport> all(reports);
  std::string rendered;
  if (format == "json") {
    rendered = report::to_json(all);
  } else if (format == "html") {
    rendered = report::to_html(all);
  } else {
    rendered = report::to_text(all, color && output_path.empty());
  }

  if (output_path.empty()) {
    std::cout << rendered;
  } else {
    std::ofstream out(output_path);
    if (!out) {
      std::fprintf(stderr, "mrmc_doctor: cannot write %s\n",
                   output_path.c_str());
      return 1;
    }
    out << rendered;
    std::fprintf(stderr, "mrmc_doctor: wrote %s report for %zu job%s to %s\n",
                 format.c_str(), reports.size(),
                 reports.size() == 1 ? "" : "s", output_path.c_str());
  }
  return 0;
}

// core::candidates — the pair-enumeration layer.  Covers the S-curve
// properties, band-shape selection and validation, backend equivalence
// (exact graphs reproduce the dense all-pairs matrix bit-for-bit and the
// graph greedy sweep reproduces the exhaustive sweep), determinism of the
// candidate MapReduce job across thread counts / split sizes / fault plans /
// kernel backends, and the recall harness in eval/.  Kept as its own binary
// so the TSan leg can build and run it in isolation.
#include "core/candidates.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "common/thread_pool.hpp"
#include "core/candidate_jobs.hpp"
#include "core/greedy.hpp"
#include "core/hierarchical.hpp"
#include "core/kernels.hpp"
#include "core/pipeline.hpp"
#include "eval/candidate_recall.hpp"
#include "simdata/datasets.hpp"

namespace mrmc::core {
namespace {

std::vector<Sketch> family_sketches(std::size_t families, std::size_t per_family,
                                    std::size_t length, double noise,
                                    std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::vector<Sketch> sketches;
  for (std::size_t f = 0; f < families; ++f) {
    Sketch base(length);
    for (auto& v : base) v = rng();
    for (std::size_t m = 0; m < per_family; ++m) {
      Sketch member = base;
      for (auto& v : member) {
        if (rng.chance(noise)) v = rng();
      }
      sketches.push_back(std::move(member));
    }
  }
  return sketches;
}

kernels::SketchMatrix family_matrix(std::size_t families, std::size_t per_family,
                                    std::size_t length, double noise,
                                    std::uint64_t seed) {
  const auto sketches = family_sketches(families, per_family, length, noise, seed);
  return kernels::SketchMatrix::from_sketches(
      std::span<const Sketch>(sketches));
}

// ---------------------------------------------------------------- the S-curve

TEST(CollisionProbability, MonotoneInSimilarity) {
  for (const auto [bands, rows] :
       {std::pair<std::size_t, std::size_t>{8, 5}, {20, 2}, {4, 10}}) {
    double previous = -1.0;
    for (double j = 0.0; j <= 1.0; j += 0.05) {
      const double p = candidates::lsh_collision_probability(j, bands, rows);
      EXPECT_GE(p, previous) << "bands=" << bands << " J=" << j;
      previous = p;
    }
  }
}

TEST(CollisionProbability, MonotoneInBandCountAtFixedRows) {
  // More bands = more chances to collide, at every similarity level.
  for (double j = 0.1; j < 1.0; j += 0.2) {
    double previous = -1.0;
    for (std::size_t bands = 1; bands <= 32; bands *= 2) {
      const double p = candidates::lsh_collision_probability(j, bands, 4);
      EXPECT_GE(p, previous) << "J=" << j << " bands=" << bands;
      previous = p;
    }
  }
}

TEST(CollisionProbability, ThresholdIsTheSCurveMidpoint) {
  // At J = lsh_threshold the collision probability approaches
  // 1 - (1 - 1/b)^b, which lives in (0.5, 0.75) for b >= 2.
  for (const auto [bands, rows] :
       {std::pair<std::size_t, std::size_t>{8, 5}, {10, 4}, {20, 2}}) {
    const double mid = candidates::lsh_collision_probability(
        candidates::lsh_threshold(bands, rows), bands, rows);
    EXPECT_GT(mid, 0.5) << "bands=" << bands;
    EXPECT_LT(mid, 0.75) << "bands=" << bands;
  }
}

// ------------------------------------------------------------ shape selection

TEST(BandShape, ValidationErrors) {
  EXPECT_THROW((void)candidates::validated_band_shape(40, 0),
               common::InvalidArgument);
  EXPECT_THROW((void)candidates::validated_band_shape(40, 7),
               common::InvalidArgument);
  EXPECT_THROW((void)candidates::validated_band_shape(0, 1),
               common::InvalidArgument);
  const auto shape = candidates::validated_band_shape(40, 8);
  EXPECT_EQ(shape.bands, 8u);
  EXPECT_EQ(shape.rows, 5u);
}

TEST(BandShape, SelectionMeetsTheRecallTargetAtTheta) {
  for (const double theta : {0.5, 0.7, 0.9, 0.95}) {
    const auto shape = candidates::select_band_shape(40, theta, 0.95);
    EXPECT_EQ(shape.bands * shape.rows, 40u);
    EXPECT_GE(candidates::lsh_collision_probability(theta, shape.bands,
                                                    shape.rows),
              0.95)
        << "theta=" << theta;
  }
}

TEST(BandShape, SelectionPrefersTheCheapestQualifyingShape) {
  // 40 hashes at theta 0.9: (4,10) catches only ~0.82, (5,8) ~0.945,
  // (8,5) ~0.9992 — the first shape at or above 0.95 recall is bands=8.
  const auto shape = candidates::select_band_shape(40, 0.9, 0.95);
  EXPECT_EQ(shape.bands, 8u);
  EXPECT_EQ(shape.rows, 5u);
  // Everything collides at any banding when theta = 1.
  EXPECT_EQ(candidates::select_band_shape(40, 1.0, 0.95).bands, 1u);
}

TEST(BandShape, LowThetaNeedsMoreBands) {
  const auto high = candidates::select_band_shape(40, 0.9, 0.95);
  const auto low = candidates::select_band_shape(40, 0.5, 0.95);
  EXPECT_GT(low.bands, high.bands);
}

TEST(BandShape, ResolveHonorsExplicitBands) {
  candidates::Params params;
  params.backend = candidates::Backend::kLshBanded;
  params.bands = 20;
  const auto shape = candidates::resolve_band_shape(params, 40, 0.9);
  EXPECT_EQ(shape.bands, 20u);
  params.bands = 6;  // does not divide 40
  EXPECT_THROW((void)candidates::resolve_band_shape(params, 40, 0.9),
               common::InvalidArgument);
}

// -------------------------------------------------------------- enumeration

TEST(EnumeratePairs, ExactBackendIsAllPairs) {
  const auto matrix = family_matrix(3, 4, 40, 0.1, 11);
  const auto pairs = candidates::enumerate_pairs(matrix, {}, 0.9);
  ASSERT_EQ(pairs.size(), 12u * 11u / 2u);
  std::size_t k = 0;
  for (std::uint32_t i = 0; i < 12; ++i) {
    for (std::uint32_t j = i + 1; j < 12; ++j) {
      EXPECT_EQ(pairs[k++], (candidates::Pair{i, j}));
    }
  }
}

TEST(EnumeratePairs, LshIsASortedUniqueSubsetContainingTruePairs) {
  const auto matrix = family_matrix(8, 6, 40, 0.02, 12);
  candidates::Params params;
  params.backend = candidates::Backend::kLshBanded;
  const auto pairs = candidates::enumerate_pairs(matrix, params, 0.9);
  EXPECT_LT(pairs.size(), 48u * 47u / 2u);
  EXPECT_TRUE(std::is_sorted(pairs.begin(), pairs.end()));
  EXPECT_EQ(std::adjacent_find(pairs.begin(), pairs.end()), pairs.end());
  for (const auto& [a, b] : pairs) {
    EXPECT_LT(a, b);
    EXPECT_LT(b, matrix.rows());
  }
  // Identical sketches collide in every band, so within-family pairs of the
  // low-noise families must all be present.
  std::size_t family_pairs = 0;
  for (const auto& [a, b] : pairs) family_pairs += a / 6 == b / 6 ? 1 : 0;
  EXPECT_GE(family_pairs, 8u * 3u);  // well over half of each family's 15
}

TEST(EnumeratePairs, IdenticalAtAnyPoolSize) {
  const auto matrix = family_matrix(6, 5, 40, 0.05, 13);
  candidates::Params params;
  params.backend = candidates::Backend::kLshBanded;
  common::ThreadPool one(1);
  common::ThreadPool four(4);
  const auto serial = candidates::enumerate_pairs(matrix, params, 0.9);
  EXPECT_EQ(candidates::enumerate_pairs(matrix, params, 0.9, &one), serial);
  EXPECT_EQ(candidates::enumerate_pairs(matrix, params, 0.9, &four), serial);
}

// ------------------------------------------------------------- verification

TEST(VerifyPairs, ExactGraphReproducesTheDenseMatrixBitForBit) {
  const auto matrix = family_matrix(4, 5, 40, 0.2, 14);
  for (const auto estimator :
       {SketchEstimator::kComponentMatch, SketchEstimator::kSetBased}) {
    const auto graph = candidates::build_graph(matrix, {}, 0.9, estimator);
    const SimilarityMatrix dense = pairwise_similarity_matrix(matrix, estimator);
    ASSERT_EQ(graph.edges.size(), 20u * 19u / 2u);
    for (const auto& edge : graph.edges) {
      // One float narrowing, exactly like the dense fill.
      EXPECT_EQ(static_cast<float>(edge.similarity), dense.at(edge.a, edge.b));
    }
    const SimilarityMatrix densified =
        similarity_matrix_from_graph(graph);
    ASSERT_EQ(densified.size(), dense.size());
    for (std::size_t i = 0; i < dense.size(); ++i) {
      for (std::size_t j = 0; j < dense.size(); ++j) {
        EXPECT_EQ(densified.at(i, j), dense.at(i, j)) << i << "," << j;
      }
    }
  }
}

TEST(VerifyPairs, IdenticalUnderScalarAndActiveKernelBackends) {
  const auto matrix = family_matrix(5, 6, 40, 0.1, 15);
  candidates::Params params;
  params.backend = candidates::Backend::kLshBanded;
  const auto active = candidates::build_graph(
      matrix, params, 0.9, SketchEstimator::kComponentMatch);
  kernels::ScopedBackendOverride scalar(kernels::Backend::kScalar);
  const auto forced = candidates::build_graph(
      matrix, params, 0.9, SketchEstimator::kComponentMatch);
  EXPECT_EQ(active.edges, forced.edges);
}

// ------------------------------------------------------------- graph greedy

TEST(GreedyClusterGraph, MatchesExhaustiveSweepOnTheExactGraph) {
  const auto sketches = family_sketches(6, 7, 40, 0.15, 16);
  const auto matrix = kernels::SketchMatrix::from_sketches(
      std::span<const Sketch>(sketches));
  for (const auto estimator :
       {SketchEstimator::kComponentMatch, SketchEstimator::kSetBased}) {
    const GreedyParams params{.theta = 0.6, .estimator = estimator};
    const auto graph = candidates::build_graph(matrix, {}, 0.6, estimator);
    const auto from_graph = greedy_cluster_graph(graph, params);
    const auto exhaustive = greedy_cluster(sketches, params);
    EXPECT_EQ(from_graph.labels, exhaustive.labels);
    EXPECT_EQ(from_graph.num_clusters, exhaustive.num_clusters);
    EXPECT_EQ(from_graph.representatives, exhaustive.representatives);
  }
}

TEST(GreedyClusterGraph, EmptyGraphIsAllSingletons) {
  candidates::SparseSimilarityGraph graph;
  graph.num_vertices = 4;
  const auto result = greedy_cluster_graph(graph, {.theta = 0.9});
  EXPECT_EQ(result.num_clusters, 4u);
  EXPECT_EQ(result.labels, (std::vector<int>{0, 1, 2, 3}));
}

TEST(GreedyClusterGraph, RejectsOutOfRangeEdges) {
  candidates::SparseSimilarityGraph graph;
  graph.num_vertices = 3;
  graph.edges.push_back({1, 5, 0.9});
  EXPECT_THROW((void)greedy_cluster_graph(graph, {.theta = 0.5}),
               common::InvalidArgument);
}

// ----------------------------------------------------- the MapReduce shape

class CandidateJobTest : public ::testing::Test {
 protected:
  static std::shared_ptr<const std::vector<Sketch>> shared_family(
      std::uint64_t seed) {
    return std::make_shared<const std::vector<Sketch>>(
        family_sketches(7, 6, 40, 0.05, seed));
  }

  static candidates::Params lsh_params() {
    candidates::Params params;
    params.backend = candidates::Backend::kLshBanded;
    return params;
  }
};

TEST_F(CandidateJobTest, MatchesLocalEnumerationExactAndLsh) {
  const auto sketches = shared_family(21);
  const auto matrix = kernels::SketchMatrix::from_sketches(
      std::span<const Sketch>(*sketches));
  ExecutionOptions exec;

  const auto exact = run_candidate_job(sketches, {}, 0.9, exec);
  EXPECT_EQ(exact.pairs, candidates::enumerate_pairs(matrix, {}, 0.9));

  const auto lsh = run_candidate_job(sketches, lsh_params(), 0.9, exec);
  EXPECT_EQ(lsh.pairs, candidates::enumerate_pairs(matrix, lsh_params(), 0.9));
  EXPECT_EQ(lsh.shape.bands, 8u);
  EXPECT_GT(lsh.stats.input_records, 0u);
}

TEST_F(CandidateJobTest, ByteIdenticalAcrossThreadsSplitsAndNodes) {
  const auto sketches = shared_family(22);
  ExecutionOptions base;
  base.records_per_split = 16;
  const auto reference = run_candidate_job(sketches, lsh_params(), 0.9, base);
  ASSERT_FALSE(reference.pairs.empty());

  for (const std::size_t threads : {1, 3}) {
    for (const std::size_t split : {5, 11, 64}) {
      for (const std::size_t nodes : {1, 4}) {
        ExecutionOptions exec;
        exec.threads = threads;
        exec.records_per_split = split;
        exec.cluster.nodes = nodes;
        const auto got = run_candidate_job(sketches, lsh_params(), 0.9, exec);
        EXPECT_EQ(got.pairs, reference.pairs)
            << "threads=" << threads << " split=" << split
            << " nodes=" << nodes;
      }
    }
  }
}

TEST_F(CandidateJobTest, VerifyJobMatchesLocalScoring) {
  const auto sketches = shared_family(23);
  const auto matrix = kernels::SketchMatrix::from_sketches(
      std::span<const Sketch>(*sketches));
  ExecutionOptions exec;
  exec.records_per_split = 16;
  for (const auto estimator :
       {SketchEstimator::kComponentMatch, SketchEstimator::kSetBased}) {
    const auto pairs = candidates::enumerate_pairs(matrix, lsh_params(), 0.9);
    const auto local = candidates::verify_pairs(matrix, pairs, estimator);
    const auto job = run_verify_job(sketches, pairs, estimator, 64, exec);
    EXPECT_EQ(job.graph.num_vertices, local.num_vertices);
    EXPECT_EQ(job.graph.edges, local.edges);
  }
}

TEST_F(CandidateJobTest, FaultPlanLeavesCandidatesAndEdgesIdentical) {
  const auto sketches = shared_family(24);
  ExecutionOptions healthy;
  healthy.records_per_split = 8;
  const auto reference =
      run_candidate_job(sketches, lsh_params(), 0.9, healthy);
  const auto reference_edges =
      run_verify_job(sketches, reference.pairs,
                     SketchEstimator::kComponentMatch, 64, healthy);

  // Node 1 crashes early and never recovers; with 4 nodes at least one
  // stays up and the job replays the lost splits.
  ExecutionOptions faulty = healthy;
  faulty.fault_plan =
      mr::faults::FaultPlan({{1, 0.0001, mr::faults::kNever}});
  const auto chaos = run_candidate_job(sketches, lsh_params(), 0.9, faulty);
  EXPECT_EQ(chaos.pairs, reference.pairs);
  const auto chaos_edges = run_verify_job(
      sketches, chaos.pairs, SketchEstimator::kComponentMatch, 64, faulty);
  EXPECT_EQ(chaos_edges.graph.edges, reference_edges.graph.edges);
}

// ---------------------------------------------------------- pipeline routing

class LshPipelineTest : public ::testing::Test {
 protected:
  static std::vector<bio::FastaRecord> sample_reads() {
    return simdata::build_whole_metagenome(
               simdata::whole_metagenome_spec("S8"), {.reads = 80, .seed = 1})
        .reads;
  }

  static PipelineParams lsh_pipeline_params(Mode mode) {
    PipelineParams params;
    params.minhash = {.kmer = 5, .num_hashes = 64, .canonical = true,
                      .seed = 1};
    params.mode = mode;
    params.theta = mode == Mode::kGreedy ? 0.34 : 0.5;
    params.candidates.backend = candidates::Backend::kLshBanded;
    return params;
  }
};

TEST_F(LshPipelineTest, DistributedMatchesLocalInBothModes) {
  const auto reads = sample_reads();
  for (const Mode mode : {Mode::kGreedy, Mode::kHierarchical}) {
    const auto params = lsh_pipeline_params(mode);
    ExecutionOptions distributed;
    distributed.distributed = true;
    distributed.cluster.nodes = 4;
    distributed.records_per_split = 16;
    ExecutionOptions local;
    local.distributed = false;
    const auto a = run_pipeline(reads, params, distributed);
    const auto b = run_pipeline(reads, params, local);
    EXPECT_EQ(a.labels, b.labels) << mode_name(mode);
    EXPECT_EQ(a.num_clusters, b.num_clusters);
    EXPECT_GT(a.candidate_stats.input_records, 0u);
    EXPECT_GT(a.verify_stats.input_records, 0u);
    EXPECT_GT(a.candidate_pairs, 0u);
  }
}

TEST_F(LshPipelineTest, ByteIdenticalAcrossThreadCountsAndSplits) {
  const auto reads = sample_reads();
  const auto params = lsh_pipeline_params(Mode::kGreedy);
  ExecutionOptions base;
  base.records_per_split = 16;
  const auto reference = run_pipeline(reads, params, base);
  for (const std::size_t threads : {1, 3}) {
    for (const std::size_t split : {7, 40}) {
      ExecutionOptions exec;
      exec.threads = threads;
      exec.records_per_split = split;
      const auto got = run_pipeline(reads, params, exec);
      EXPECT_EQ(got.labels, reference.labels)
          << "threads=" << threads << " split=" << split;
    }
  }
}

TEST_F(LshPipelineTest, ExactBackendKeepsTodaysOutputs) {
  // The default params (exact backend) must route through the legacy jobs
  // and reproduce the pre-candidates pipeline exactly.
  const auto reads = sample_reads();
  PipelineParams params = lsh_pipeline_params(Mode::kHierarchical);
  params.candidates = {};  // back to kExactAllPairs
  ExecutionOptions exec;
  exec.records_per_split = 16;
  const auto result = run_pipeline(reads, params, exec);
  EXPECT_EQ(result.candidate_stats.input_records, 0u);  // no candidate job ran
  EXPECT_GT(result.similarity_stats.input_records, 0u);
  EXPECT_EQ(result.candidate_pairs, 0u);
}

// ------------------------------------------------------------ recall harness

TEST(CandidateRecall, ExactBackendIsPerfect) {
  const auto matrix = family_matrix(5, 5, 40, 0.1, 31);
  const auto report = eval::candidate_recall(
      matrix, 0.9, {}, SketchEstimator::kComponentMatch);
  EXPECT_EQ(report.reads, 25u);
  EXPECT_EQ(report.candidate_pairs, 25u * 24u / 2u);
  EXPECT_EQ(report.recovered_pairs, report.true_pairs);
  EXPECT_DOUBLE_EQ(report.recall, 1.0);
}

TEST(CandidateRecall, LshMeetsTheTargetOnFamilyData) {
  const auto matrix = family_matrix(10, 6, 40, 0.02, 32);
  candidates::Params params;
  params.backend = candidates::Backend::kLshBanded;
  const auto report = eval::candidate_recall(
      matrix, 0.9, params, SketchEstimator::kComponentMatch);
  EXPECT_GT(report.true_pairs, 0u);
  EXPECT_GE(report.recall, 0.95);
  EXPECT_GT(report.precision, 0.0);
  EXPECT_EQ(report.shape.bands, 8u);
}

TEST(CandidateRecall, SubsamplesAndParallelScoringAgree) {
  const auto matrix = family_matrix(8, 8, 40, 0.1, 33);
  candidates::Params params;
  params.backend = candidates::Backend::kLshBanded;
  common::ThreadPool pool(4);
  const auto serial = eval::candidate_recall(
      matrix, 0.8, params, SketchEstimator::kSetBased, 40);
  const auto parallel = eval::candidate_recall(
      matrix, 0.8, params, SketchEstimator::kSetBased, 40, &pool);
  EXPECT_EQ(serial.reads, 40u);
  EXPECT_EQ(serial.true_pairs, parallel.true_pairs);
  EXPECT_EQ(serial.candidate_pairs, parallel.candidate_pairs);
  EXPECT_EQ(serial.recovered_pairs, parallel.recovered_pairs);
}

}  // namespace
}  // namespace mrmc::core

# Empty compiler generated dependencies file for simdata_tests.
# This may be replaced when dependencies are built.

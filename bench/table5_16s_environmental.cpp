// Table V reproduction — clustering the eight 16S environmental seawater
// samples (Sogin et al., Table I) with all eight methods, reporting
// #Cluster, W.Sim and Time per sample.  No ground truth (rare-biosphere
// community), exactly as in the paper.  Also regenerates Table I.
//
// Paper parameters: k=15, 50 hash functions, similarity threshold 95% for
// the alignment methods.  MinHash thresholds are sketch-Jaccard calibrated
// (see EXPERIMENTS.md).
//
//   ./table5_16s_environmental [--samples=53R,55R] [--scale=0.0166]
//       [--reads=N] [--kmer=15] [--hashes=50] [--theta-h=0.35]
//       [--theta-g=0.30] [--identity=0.95] [--nodes=8] [--seed=42]
//       [--trace=t5.json] [--metrics] [--report[=t5.html]]  # obs outputs
#include <iostream>
#include <sstream>

#include "bench_util.hpp"

using namespace mrmc;

namespace {

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream stream(text);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

void print_table1(const std::vector<simdata::EnvSampleSpec>& specs) {
  common::TextTable table(
      {"SID", "Site", "La N, Lo W", "Dep", "T", "Reads"});
  for (const auto& spec : specs) {
    table.add_row({spec.sid, spec.site,
                   common::fmt_f(spec.lat, 3) + "," + common::fmt_f(spec.lon, 3),
                   std::to_string(spec.depth_m), common::fmt_f(spec.temp_c, 1),
                   std::to_string(spec.paper_reads)});
  }
  std::cout << "Table I — environmental DNA samples\n";
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  bench::apply_obs_flags(flags);
  const double scale = flags.real("scale", 1.0 / 60.0);
  const std::size_t fixed_reads = flags.num("reads", 0);
  const int kmer = static_cast<int>(flags.num("kmer", 15));
  const std::size_t hashes = flags.num("hashes", 50);
  const double theta_h = flags.real("theta-h", 0.35);
  const double theta_g = flags.real("theta-g", 0.30);
  const double identity = flags.real("identity", 0.95);
  const std::size_t nodes = flags.num("nodes", 8);
  const std::uint64_t seed = flags.num("seed", 42);

  std::vector<simdata::EnvSampleSpec> specs;
  if (flags.flag("samples")) {
    for (const auto& sid : split_csv(flags.str("samples", ""))) {
      specs.push_back(simdata::environmental_spec(sid));
    }
  } else {
    specs = simdata::environmental_registry();
  }
  print_table1(specs);

  common::TextTable table(
      {"Approach", "SID", "# Cluster", "W.Sim", "Time (s)", "SimTime (s)"});

  for (const auto& spec : specs) {
    simdata::Env16sOptions options;
    options.scale = scale;
    options.reads = fixed_reads;
    options.seed = seed;
    const auto sample = simdata::build_environmental(spec, options);
    // The environmental samples have no ground truth; hide the latent
    // labels from evaluation like the paper does.
    simdata::LabeledReads unlabeled = sample;
    unlabeled.labels.clear();
    const std::size_t min_size =
        bench::scaled_min_cluster_size(sample.size(), spec.paper_reads);

    std::vector<bench::MethodResult> results;
    results.push_back(bench::run_mrmc(unlabeled, core::Mode::kHierarchical, kmer,
                                      hashes, theta_h, nodes, seed,
                                      /*canonical=*/false));
    results.push_back(bench::run_mrmc(unlabeled, core::Mode::kGreedy, kmer,
                                      hashes, theta_g, nodes, seed,
                                      /*canonical=*/false));
    results.push_back(bench::wrap_baseline(
        "MC-LSH", baselines::mclsh_cluster(
                      unlabeled.reads, {.theta = theta_g, .kmer = kmer,
                                        .num_hashes = hashes, .bands = 10,
                                        .seed = seed})));
    results.push_back(bench::wrap_baseline(
        "UCLUST",
        baselines::uclust_cluster(unlabeled.reads, {.identity = identity})));
    results.push_back(bench::wrap_baseline(
        "CD-HIT",
        baselines::cdhit_cluster(unlabeled.reads, {.identity = identity})));
    results.push_back(bench::wrap_baseline(
        "ESPRIT",
        baselines::esprit_cluster(unlabeled.reads, {.identity = identity})));
    results.push_back(bench::wrap_baseline(
        "DOTUR",
        baselines::dotur_cluster(unlabeled.reads, {.identity = identity})));
    results.push_back(bench::wrap_baseline(
        "Mothur",
        baselines::mothur_cluster(unlabeled.reads, {.identity = identity})));

    for (const auto& result : results) {
      const auto eval = bench::evaluate(result, unlabeled, min_size, 16, 2);
      table.add_row({result.method, spec.sid, std::to_string(eval.clusters),
                     common::fmt_pct(eval.wsim), common::fmt_f(result.wall_s, 2),
                     result.sim_s < 0 ? "-" : common::fmt_f(result.sim_s, 1)});
    }
    std::cerr << "done " << spec.sid << " (" << sample.size() << " reads)\n";
  }

  std::cout << "Table V — 16S environmental samples\n"
            << "(MrMC/MC-LSH: k=" << kmer << ", n=" << hashes
            << "; alignment methods: identity=" << identity
            << "; Time = this process, SimTime = simulated cluster)\n";
  table.print(std::cout);
  bench::finish_obs(flags);
  return 0;
}

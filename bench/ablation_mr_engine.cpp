// Ablation — MapReduce engine knobs, measured on a synthetic word-count-
// style workload with heavy key repetition:
//  * combiner on/off: shuffle volume and simulated time,
//  * split size: task-startup overhead vs parallelism,
//  * injected map-task failure rate: retry cost visibility,
//  * replication/locality: fraction of data-local map tasks,
//  * shuffle model: barrier (aggregate transfer after the map phase) vs the
//    runtime's overlapped per-fetch transfers that hide under map compute.
//
//   ./ablation_mr_engine [--records=20000] [--seed=42]
//       [--bench-json[=path]]  # machine-readable BENCH_mr_runtime.json
#include <iostream>
#include <sstream>

#include "bench_util.hpp"
#include "mr/job.hpp"
#include "mr/simdfs.hpp"

using namespace mrmc;

namespace {

using CountJob = mr::Job<long, long, long, std::pair<long, long>>;

CountJob::Mapper key_mapper() {
  return [](const long& record, mr::Emitter<long, long>& emit) {
    emit.emit(record % 64, 1);  // 64 hot keys
  };
}

CountJob::Reducer sum_reducer() {
  return [](const long& key, std::vector<long>& values,
            std::vector<std::pair<long, long>>& out) {
    long total = 0;
    for (const long v : values) total += v;
    out.emplace_back(key, total);
  };
}

CountJob::Combiner sum_combiner() {
  return [](const long& key, std::vector<long>& values,
            mr::Emitter<long, long>& emit) {
    long total = 0;
    for (const long v : values) total += v;
    emit.emit(key, total);
  };
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const long records = flags.num("records", 20000);
  const std::uint64_t seed = flags.num("seed", 42);
  const bool bench_json = flags.flag("bench-json");
  bench::BenchRecord record("mr_runtime",
                            {"records_per_split", "shuffle_model"});

  std::vector<long> input(records);
  for (long i = 0; i < records; ++i) input[i] = i;

  mr::JobConfig base;
  base.cluster.nodes = 8;
  base.records_per_split = 1024;
  base.seed = seed;

  // ----------------------------------------------------------- combiner
  common::TextTable combiner_table(
      {"combiner", "shuffle KB", "map out records", "sim time"});
  for (const bool with_combiner : {false, true}) {
    CountJob job(base, key_mapper(), sum_reducer());
    if (with_combiner) job.with_combiner(sum_combiner());
    const auto result = job.run(input);
    combiner_table.add_row(
        {with_combiner ? "on" : "off",
         common::fmt_f(result.stats.shuffle_bytes / 1024.0, 1),
         std::to_string(result.stats.map_output_records),
         common::format_duration(result.stats.timeline.total_s)});
  }
  std::cout << "Ablation — combiner (records=" << records << ")\n";
  combiner_table.print(std::cout);

  // ---------------------------------------------------------- split size
  common::TextTable split_table({"records/split", "map tasks", "sim time"});
  for (const std::size_t split : {64u, 256u, 1024u, 4096u, 16384u}) {
    auto config = base;
    config.records_per_split = split;
    CountJob job(config, key_mapper(), sum_reducer());
    job.with_map_work([](const long&) { return 2e-4; });  // non-trivial records
    const auto result = job.run(input);
    split_table.add_row({std::to_string(split),
                         std::to_string(result.stats.map_tasks),
                         common::format_duration(result.stats.timeline.total_s)});
  }
  std::cout << "\nAblation — input split size\n";
  split_table.print(std::cout);

  // ------------------------------------------------------------ failures
  common::TextTable failure_table({"failure rate", "retries", "sim time"});
  for (const double rate : {0.0, 0.1, 0.3, 0.6}) {
    auto config = base;
    config.map_failure_rate = rate;
    CountJob job(config, key_mapper(), sum_reducer());
    job.with_map_work([](const long&) { return 2e-4; });
    const auto result = job.run(input);
    failure_table.add_row({common::fmt_f(rate, 1),
                           std::to_string(result.stats.map_retries),
                           common::format_duration(result.stats.timeline.total_s)});
  }
  std::cout << "\nAblation — injected map-task failures\n";
  failure_table.print(std::cout);

  // ------------------------------------------------- replication/locality
  common::TextTable locality_table(
      {"replication", "data-local tasks", "map makespan"});
  for (const std::size_t replication : {1u, 2u, 3u}) {
    mr::SimDfs::Options options;
    options.nodes = 8;
    options.block_size = 2048;
    options.replication = replication;
    options.seed = seed;
    mr::SimDfs dfs(options);
    std::ostringstream content;
    for (long i = 0; i < records; ++i) content << i << '\n';
    dfs.write("/in", content.str());

    // Splits from DFS blocks; preferred node = primary replica.
    const auto& info = dfs.stat("/in");
    std::vector<std::vector<long>> splits;
    std::vector<int> preferred;
    for (std::size_t b = 0; b < info.blocks.size(); ++b) {
      std::istringstream block(dfs.read_block("/in", b));
      std::vector<long> split;
      std::string line;
      while (std::getline(block, line)) {
        if (!line.empty()) split.push_back(std::stol(line));
      }
      // Partial numbers at block boundaries are tolerated for this ablation.
      splits.push_back(std::move(split));
      preferred.push_back(info.blocks[b].replicas.front());
    }

    CountJob job(base, key_mapper(), sum_reducer());
    job.with_map_work([](const long&) { return 1e-4; });
    const auto result = job.run_splits(splits, preferred);
    std::size_t local = 0;
    for (const auto& task : result.stats.timeline.map_phase.tasks) {
      if (task.data_local) ++local;
    }
    locality_table.add_row(
        {std::to_string(replication),
         std::to_string(local) + "/" + std::to_string(result.stats.map_tasks),
         common::format_duration(result.stats.timeline.map_phase.makespan_s)});
  }
  std::cout << "\nAblation — DFS replication and task locality\n";
  locality_table.print(std::cout);

  // ------------------------------------------- barrier vs overlapped shuffle
  // Same workload, two simulated shuffle models.  With the barrier model the
  // full shuffle volume is transferred after the last map task finishes; the
  // overlapped model starts each reducer's fetch as soon as the producing map
  // task ends, so only the tail that outlives the map phase adds to the
  // timeline.
  common::TextTable shuffle_table({"records/split", "model", "fetches",
                                   "shuffle time", "sim time"});
  for (const std::size_t split : {256u, 1024u, 4096u}) {
    double barrier_total = 0.0;
    for (const bool overlapped : {false, true}) {
      auto config = base;
      config.records_per_split = split;
      config.overlapped_shuffle = overlapped;
      // A congested interconnect makes the transfer visible next to compute,
      // so the two models actually diverge at this workload size.
      config.cluster.node.net_bw = 400e3;
      config.cluster.node.disk_bw = 800e3;
      CountJob job(config, key_mapper(), sum_reducer());
      job.with_map_work([](const long&) { return 2e-4; });
      const auto result = job.run(input);
      const auto& timeline = result.stats.timeline;
      if (!overlapped) barrier_total = timeline.total_s;
      shuffle_table.add_row(
          {std::to_string(split), overlapped ? "overlapped" : "barrier",
           std::to_string(timeline.fetches.size()),
           common::format_duration(timeline.shuffle_s),
           common::format_duration(timeline.total_s)});
      if (bench_json) {
        record.row()
            .num("records_per_split", static_cast<long>(split))
            .str("shuffle_model", overlapped ? "overlapped" : "barrier")
            .num("map_tasks", static_cast<long>(result.stats.map_tasks))
            .num("fetches", static_cast<long>(timeline.fetches.size()))
            .num("shuffle_bytes", result.stats.shuffle_bytes)
            .num("shuffle_s", timeline.shuffle_s)
            .num("sim_total_s", timeline.total_s)
            .num("speedup_vs_barrier",
                 overlapped && timeline.total_s > 0.0
                     ? barrier_total / timeline.total_s
                     : 1.0);
      }
    }
  }
  std::cout << "\nAblation — barrier vs overlapped shuffle\n";
  shuffle_table.print(std::cout);

  if (bench_json) {
    const std::string bench_path = flags.str("bench-json", "1") == "1"
                                       ? record.default_path()
                                       : flags.str("bench-json", "");
    if (record.write(bench_path)) {
      std::cout << "\nwrote bench record to " << bench_path << "\n";
    }
  }
  return 0;
}

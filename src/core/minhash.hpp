// Minwise hashing (Section III-A/B of the paper).
//
// A sequence's k-mer feature set I_s is sketched with n universal hash
// functions h_i(x) = ((a_i·x + b_i) mod p) mod m (Carter-Wegman; Equation 5)
// — the i-th sketch component is min_{x in I_s} h_i(x).  By the minwise
// property (Equation 3) the probability that two sets share a component
// equals their Jaccard similarity, so sketches give an unbiased similarity
// estimate in O(n) instead of O(|I_s1| + |I_s2|).
//
// The paper describes two estimators and we implement both:
//  * kComponentMatch — fraction of positions i with equal minima (the
//    textbook estimator; unbiased),
//  * kSetBased — |set(s1^) ∩ set(s2^)| / |set(s1^) ∪ set(s2^)| over the
//    multisets of minwise values (Algorithm 1, line 9 — what the paper's
//    pseudo-code literally computes).
//
// The hot loops live in core::kernels (batched SIMD with a bit-identical
// scalar fallback); this header is the sketch-level API on top of them.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "bio/kmer.hpp"
#include "core/kernels.hpp"

namespace mrmc::common {
class ThreadPool;
}  // namespace mrmc::common

namespace mrmc::core {

/// Fixed-size sketch: the n minwise hash values of one sequence.
using Sketch = std::vector<std::uint64_t>;

/// Sentinel component for a sequence with an empty feature set (shorter than
/// k or all-ambiguous): no x exists to minimize over.
inline constexpr std::uint64_t kEmptyMin = kernels::kEmptyFeatureMin;

enum class SketchEstimator {
  kComponentMatch,  ///< mean of [min_i(A) == min_i(B)]
  kSetBased,        ///< Jaccard of the sets of minwise values
};

/// How the K sketch components are computed.
enum class SketchScheme {
  kUniversal,  ///< K independent Carter-Wegman hashes (Equation 5)
  kCMinHash,   ///< C-MinHash: two shared permutations, circulant shifts
};

[[nodiscard]] const char* sketch_scheme_name(SketchScheme scheme) noexcept;

/// Carter-Wegman universal hash family with p = 2^61 - 1 (Mersenne prime).
/// Parameters a_i ∈ [1, p), b_i ∈ [0, p) are drawn from a seeded PRNG and
/// stored SoA so the batched kernels can stream them.
class UniversalHashFamily {
 public:
  /// `m` is the outer modulus — the k-mer feature-space size 4^k per the
  /// paper; pass 0 to skip the outer mod (full 61-bit range, fewer
  /// collisions; used by the LSH baseline).
  UniversalHashFamily(std::size_t count, std::uint64_t m, std::uint64_t seed);

  [[nodiscard]] std::size_t size() const noexcept { return a_.size(); }
  [[nodiscard]] std::uint64_t modulus() const noexcept { return m_; }

  /// h_i(x).
  [[nodiscard]] std::uint64_t hash(std::size_t i, std::uint64_t x) const noexcept;

  /// SoA parameter views for the batched kernels.
  [[nodiscard]] std::span<const std::uint64_t> multipliers() const noexcept {
    return a_;
  }
  [[nodiscard]] std::span<const std::uint64_t> offsets() const noexcept {
    return b_;
  }

  static constexpr std::uint64_t kPrime = kernels::kMersenne61;

 private:
  std::vector<std::uint64_t> a_;
  std::vector<std::uint64_t> b_;
  std::uint64_t m_;
};

/// C-MinHash (Li & Li, NeurIPS 2021): instead of K independent hashes, one
/// initial permutation σ and one circulant permutation π, with component k
/// defined as min_x π((σ(x) + k) mod p).  Both permutations are affine maps
/// over GF(p), so the composition collapses to a single affine map per
/// component sharing one multiplier:
///
///   h_k(x) = π(σ(x) + k) = (A·x + B_k) mod p,
///   A = a1·a2 mod p,  B_k = (a2·b1 + b2 + k·a2) mod p.
///
/// The shared multiplier is what kernels::cmin_sketch exploits: one
/// Mersenne-61 product per feature amortized over all K components (the
/// universal family pays K products per feature).  A is nonzero because p is
/// prime and a1, a2 ∈ [1, p).  Estimator parity with the universal family
/// is covered by the quality suite (Table III/IV samples).
class CMinHashFamily {
 public:
  /// Same contract as UniversalHashFamily: `m` is the outer modulus
  /// (0 = full 61-bit range), `count` the number of components K.
  CMinHashFamily(std::size_t count, std::uint64_t m, std::uint64_t seed);

  [[nodiscard]] std::size_t size() const noexcept { return b_.size(); }
  [[nodiscard]] std::uint64_t modulus() const noexcept { return m_; }

  /// h_k(x), the scalar reference the batched kernel must reproduce.
  [[nodiscard]] std::uint64_t hash(std::size_t k, std::uint64_t x) const noexcept;

  /// The shared multiplier A and per-component offsets B_k for the kernel.
  [[nodiscard]] std::uint64_t multiplier() const noexcept { return a_; }
  [[nodiscard]] std::span<const std::uint64_t> offsets() const noexcept {
    return b_;
  }

  static constexpr std::uint64_t kPrime = kernels::kMersenne61;

 private:
  std::uint64_t a_ = 1;             ///< A = a1·a2 mod p
  std::vector<std::uint64_t> b_;    ///< B_k, k = 0..K-1
  std::uint64_t m_;
};

struct MinHashParams {
  int kmer = 5;             ///< k-mer size (paper: 5 shotgun, 15 for 16S)
  std::size_t num_hashes = 100;  ///< sketch length n (paper: 100 / 50)
  bool canonical = false;   ///< strand-insensitive k-mers
  std::uint64_t seed = 1;   ///< hash-family seed
  /// Outer modulus m of Equation 5.  The paper sets m = 4^k (the feature-
  /// space size), but for small k that collapses all minima toward 0 and
  /// destroys the estimator (see DESIGN.md); 0 = full 61-bit hash range
  /// (recommended, default).  Set to bio::kmer_space_size(k) for
  /// paper-literal behaviour.
  std::uint64_t modulus = 0;
  /// Sketch-compute scheme; kCMinHash shares one multiplier across all
  /// components (one Mersenne-61 product per feature instead of K).
  SketchScheme scheme = SketchScheme::kUniversal;
};

/// Computes sketches for sequences.  Thread-safe after construction.
class MinHasher {
 public:
  explicit MinHasher(MinHashParams params);

  [[nodiscard]] const MinHashParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t sketch_size() const noexcept { return family_.size(); }
  [[nodiscard]] const UniversalHashFamily& family() const noexcept {
    return family_;
  }

  /// Sketch of one sequence (Equation 4).
  [[nodiscard]] Sketch sketch(std::string_view seq) const;

  /// Sketch of an explicit feature set.
  [[nodiscard]] Sketch sketch_features(std::span<const std::uint64_t> features) const;

  /// Allocation-free variant: writes the sketch into `out` (length
  /// sketch_size()).
  void sketch_features_into(std::span<const std::uint64_t> features,
                            std::span<std::uint64_t> out) const;

  /// Sketches for many sequences.  When `pool` is non-null, reads are
  /// sketched in parallel; the result is identical at any thread count.
  [[nodiscard]] std::vector<Sketch> sketch_all(
      std::span<const std::string_view> seqs,
      common::ThreadPool* pool = nullptr) const;

  /// Batched variant: all sketches in one flat row-major matrix (the
  /// similarity kernels' native layout).
  [[nodiscard]] kernels::SketchMatrix sketch_matrix(
      std::span<const std::string_view> seqs,
      common::ThreadPool* pool = nullptr) const;

 private:
  MinHashParams params_;
  UniversalHashFamily family_;
  std::optional<CMinHashFamily> cmin_;  ///< engaged when scheme == kCMinHash
};

/// Pre-sorted unique minima of a set of sketches, stored flat so repeated
/// set-based comparisons (greedy sweeps, medoid scans, matrix fills) pay the
/// sort once per sketch instead of twice per pair.
class SortedSketchStore {
 public:
  SortedSketchStore() = default;
  explicit SortedSketchStore(std::span<const Sketch> sketches);
  explicit SortedSketchStore(const kernels::SketchMatrix& sketches);

  [[nodiscard]] std::size_t size() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  [[nodiscard]] std::span<const std::uint64_t> row(std::size_t i) const noexcept {
    return {values_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
  }
  /// == bio::exact_jaccard over the sorted unique minima of sketches i and j.
  [[nodiscard]] double jaccard(std::size_t i, std::size_t j) const noexcept {
    return bio::exact_jaccard(row(i), row(j));
  }
  /// The integer (|∩|, |∪|) behind jaccard(i, j) — what the binary shuffle
  /// blocks ship so the driver can rebuild the identical double via
  /// jaccard_from_counts.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> jaccard_counts(
      std::size_t i, std::size_t j) const noexcept;

 private:
  void append(std::span<const std::uint64_t> sketch,
              std::vector<std::uint64_t>& scratch);

  std::vector<std::uint64_t> values_;
  std::vector<std::size_t> offsets_;
};

/// Estimated Jaccard similarity of two sketches (must be equal length).
[[nodiscard]] double sketch_similarity(const Sketch& a, const Sketch& b,
                                       SketchEstimator estimator);

/// Component-match estimator (cheapest; used by the similarity matrix).
[[nodiscard]] double component_match_similarity(const Sketch& a,
                                                const Sketch& b) noexcept;

/// Set-based estimator of Algorithm 1 line 9.  Sort work runs in reused
/// thread-local scratch; for repeated comparisons prefer SortedSketchStore.
[[nodiscard]] double set_based_similarity(const Sketch& a, const Sketch& b);

// ---------------------------------------------------------- b-bit sketches
//
// Keeping only the low b bits of each minwise value shrinks the sketch
// 64/b-fold but lets unrelated pairs collide by chance: for J = 0 a
// component still matches with probability C = 2^-b.  E[m̂] = J + (1-J)·C,
// so the standard correction Ĵ = (m̂ - C) / (1 - C) de-biases the match
// fraction.  The correction is affine, so thresholding the *corrected*
// estimate at θ is identical to thresholding the raw match fraction at
// θ' = θ·(1-C) + C — the pipeline uses the θ' form internally (it commutes
// with average linkage too) and exposes the corrected estimator for
// benchmarks and tests.

/// Valid --sketch-bits values: the packed widths of the b-bit kernels.
[[nodiscard]] constexpr bool valid_sketch_bits(std::size_t bits) noexcept {
  return kernels::valid_pack_bits(bits);
}

/// Truncation mask for b-bit sketches (all-ones at b = 64).
[[nodiscard]] constexpr std::uint64_t sketch_bits_mask(std::size_t bits) noexcept {
  return bits >= 64 ? ~std::uint64_t{0}
                    : (std::uint64_t{1} << bits) - 1;
}

/// Chance-collision probability C = 2^-b of a truncated component (0 at
/// b = 64: full-width components never collide by chance in practice).
[[nodiscard]] constexpr double bbit_collision_floor(std::size_t bits) noexcept {
  return bits >= 64
             ? 0.0
             : 1.0 / static_cast<double>(std::uint64_t{1} << bits);
}

/// De-biased b-bit component-match estimate Ĵ = (m/K - C) / (1 - C),
/// clamped to [0, 1].  At b = 64 this is exactly m/K.
[[nodiscard]] constexpr double corrected_match_similarity(
    std::size_t matches, std::size_t count, std::size_t bits) noexcept {
  if (count == 0) return 0.0;
  const double raw =
      static_cast<double>(matches) / static_cast<double>(count);
  const double c = bbit_collision_floor(bits);
  if (c == 0.0) return raw;
  const double corrected = (raw - c) / (1.0 - c);
  return corrected < 0.0 ? 0.0 : (corrected > 1.0 ? 1.0 : corrected);
}

/// The θ' the pipeline compares *raw* b-bit match fractions against so that
/// the decision equals thresholding the corrected estimate at θ.
[[nodiscard]] constexpr double bbit_adjusted_threshold(
    double theta, std::size_t bits) noexcept {
  const double c = bbit_collision_floor(bits);
  return theta * (1.0 - c) + c;
}

/// Component-match threshold equivalent to a set-based threshold θ.  With K
/// independent hash families the two sketches share exactly the m matching
/// minima (cross-family value collisions are negligible at 61 bits), so the
/// set-based estimate is the monotone map J_set = m / (2K - m) of the match
/// fraction — thresholding J_set at θ is the same decision as thresholding
/// m/K at 2θ/(1+θ).  Truncated sketches cannot evaluate J_set directly
/// (low-bit value collisions pollute the union), so the b-bit path scores
/// component matches against this transformed threshold instead.
[[nodiscard]] constexpr double set_based_equivalent_threshold(
    double theta) noexcept {
  return 2.0 * theta / (1.0 + theta);
}

/// Jaccard from integer (|∩|, |∪|) counts; |∪| == 0 means both sets were
/// empty, which counts as identical — the same convention as
/// bio::exact_jaccard, so driver-side reconstruction from shuffled counts is
/// bit-identical to mapper-side doubles.
[[nodiscard]] constexpr double jaccard_from_counts(
    std::uint64_t intersection, std::uint64_t unions) noexcept {
  return unions == 0 ? 1.0
                     : static_cast<double>(intersection) /
                           static_cast<double>(unions);
}

}  // namespace mrmc::core


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cdhit_like.cpp" "src/baselines/CMakeFiles/mrmc_baselines.dir/cdhit_like.cpp.o" "gcc" "src/baselines/CMakeFiles/mrmc_baselines.dir/cdhit_like.cpp.o.d"
  "/root/repo/src/baselines/hclust_family.cpp" "src/baselines/CMakeFiles/mrmc_baselines.dir/hclust_family.cpp.o" "gcc" "src/baselines/CMakeFiles/mrmc_baselines.dir/hclust_family.cpp.o.d"
  "/root/repo/src/baselines/mc_lsh.cpp" "src/baselines/CMakeFiles/mrmc_baselines.dir/mc_lsh.cpp.o" "gcc" "src/baselines/CMakeFiles/mrmc_baselines.dir/mc_lsh.cpp.o.d"
  "/root/repo/src/baselines/metacluster_like.cpp" "src/baselines/CMakeFiles/mrmc_baselines.dir/metacluster_like.cpp.o" "gcc" "src/baselines/CMakeFiles/mrmc_baselines.dir/metacluster_like.cpp.o.d"
  "/root/repo/src/baselines/uclust_like.cpp" "src/baselines/CMakeFiles/mrmc_baselines.dir/uclust_like.cpp.o" "gcc" "src/baselines/CMakeFiles/mrmc_baselines.dir/uclust_like.cpp.o.d"
  "/root/repo/src/baselines/word_stats.cpp" "src/baselines/CMakeFiles/mrmc_baselines.dir/word_stats.cpp.o" "gcc" "src/baselines/CMakeFiles/mrmc_baselines.dir/word_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mrmc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bio/CMakeFiles/mrmc_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mrmc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mr/CMakeFiles/mrmc_mr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

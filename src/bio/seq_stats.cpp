#include "bio/seq_stats.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "bio/dna.hpp"

namespace mrmc::bio {

SeqSetStats compute_stats(std::span<const FastaRecord> records) {
  SeqSetStats stats;
  if (records.empty()) return stats;

  std::vector<std::size_t> lengths;
  lengths.reserve(records.size());
  std::size_t ambiguous = 0;
  for (const auto& record : records) {
    lengths.push_back(record.seq.size());
    stats.total_bases += record.seq.size();
    for (const char c : record.seq) {
      const int code = encode_base(c);
      if (code < 0) {
        ++ambiguous;
      } else {
        ++stats.base_counts[static_cast<std::size_t>(code)];
      }
    }
  }
  std::sort(lengths.begin(), lengths.end());

  stats.count = records.size();
  stats.min_length = lengths.front();
  stats.max_length = lengths.back();
  stats.mean_length = static_cast<double>(stats.total_bases) /
                      static_cast<double>(stats.count);
  stats.median_length = lengths[lengths.size() / 2];

  // N50: walk lengths descending until half the bases are covered.
  std::size_t covered = 0;
  for (auto it = lengths.rbegin(); it != lengths.rend(); ++it) {
    covered += *it;
    if (covered * 2 >= stats.total_bases) {
      stats.n50 = *it;
      break;
    }
  }

  const std::size_t acgt = stats.total_bases - ambiguous;
  stats.gc = acgt == 0 ? 0.0
                       : static_cast<double>(stats.base_counts[1] +
                                             stats.base_counts[2]) /
                             static_cast<double>(acgt);
  stats.ambiguous_fraction =
      stats.total_bases == 0
          ? 0.0
          : static_cast<double>(ambiguous) / static_cast<double>(stats.total_bases);
  return stats;
}

std::string SeqSetStats::summary() const {
  std::ostringstream out;
  out << count << " reads, " << total_bases << " bp total, length "
      << min_length << ".." << max_length << " (mean " << mean_length
      << ", median " << median_length << ", N50 " << n50 << "), GC "
      << gc * 100.0 << "%";
  return out.str();
}

}  // namespace mrmc::bio

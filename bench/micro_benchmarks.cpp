// Google-benchmark microbenchmarks for the performance-critical kernels:
// k-mer extraction, universal hashing / sketching, sketch comparison,
// global alignment, similarity-matrix assembly, dendrogram construction,
// and MapReduce engine overhead.
//
// `--bench-json[=path]` switches to a self-timed scalar-vs-kernel comparison
// of the core::kernels hot loops against faithful replicas of the pre-kernel
// implementations (feature-outer per-hash sketching; per-pair vector<Sketch>
// matrix fill) and writes BENCH_kernels.json for the CI perf trajectory.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bio/alignment.hpp"
#include "bio/kmer.hpp"
#include "common/prng.hpp"
#include "common/timer.hpp"
#include "core/greedy.hpp"
#include "core/hierarchical.hpp"
#include "core/kernels.hpp"
#include "core/minhash.hpp"
#include "mr/job.hpp"
#include "simdata/genome.hpp"

namespace {

using namespace mrmc;

std::string random_seq(std::size_t length, std::uint64_t seed) {
  return simdata::random_genome("b", length, 0.5, seed).seq;
}

void BM_KmerExtraction(benchmark::State& state) {
  const auto seq = random_seq(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bio::extract_kmers(seq, {.k = 15}));
  }
  state.SetBytesProcessed(static_cast<long>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_KmerExtraction)->Arg(100)->Arg(1000)->Arg(10000);

void BM_KmerSetCanonical(benchmark::State& state) {
  const auto seq = random_seq(1000, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bio::kmer_set(seq, {.k = 5, .canonical = true}));
  }
}
BENCHMARK(BM_KmerSetCanonical);

void BM_MinHashSketch(benchmark::State& state) {
  const core::MinHasher hasher(
      {.kmer = 15, .num_hashes = static_cast<std::size_t>(state.range(0)), .seed = 3});
  const auto seq = random_seq(1000, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.sketch(seq));
  }
}
BENCHMARK(BM_MinHashSketch)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_SketchCompareComponent(benchmark::State& state) {
  const core::MinHasher hasher({.kmer = 15, .num_hashes = 100, .seed = 5});
  const auto a = hasher.sketch(random_seq(500, 6));
  const auto b = hasher.sketch(random_seq(500, 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::component_match_similarity(a, b));
  }
}
BENCHMARK(BM_SketchCompareComponent);

void BM_SketchCompareSetBased(benchmark::State& state) {
  const core::MinHasher hasher({.kmer = 15, .num_hashes = 100, .seed = 5});
  const auto a = hasher.sketch(random_seq(500, 6));
  const auto b = hasher.sketch(random_seq(500, 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::set_based_similarity(a, b));
  }
}
BENCHMARK(BM_SketchCompareSetBased);

void BM_GlobalAlignment(benchmark::State& state) {
  const auto a = random_seq(static_cast<std::size_t>(state.range(0)), 8);
  const auto b = random_seq(static_cast<std::size_t>(state.range(0)), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bio::global_identity(a, b));
  }
}
BENCHMARK(BM_GlobalAlignment)->Arg(60)->Arg(100)->Arg(300);

void BM_GlobalAlignmentBanded(benchmark::State& state) {
  const auto a = random_seq(300, 10);
  std::string b = a;
  b[10] = 'A';
  b[200] = 'C';
  for (auto _ : state) {
    benchmark::DoNotOptimize(bio::global_identity(a, b, {.band = 16}));
  }
}
BENCHMARK(BM_GlobalAlignmentBanded);

std::vector<core::Sketch> bench_sketches(std::size_t count) {
  common::Xoshiro256 rng(11);
  const core::MinHasher hasher({.kmer = 15, .num_hashes = 50, .seed = 12});
  std::vector<core::Sketch> sketches;
  sketches.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    sketches.push_back(hasher.sketch(random_seq(100, rng())));
  }
  return sketches;
}

void BM_SimilarityMatrix(benchmark::State& state) {
  const auto sketches = bench_sketches(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::pairwise_similarity_matrix(
        sketches, core::SketchEstimator::kComponentMatch, nullptr));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SimilarityMatrix)->Arg(100)->Arg(200)->Arg(400)->Complexity();

void BM_Agglomerate(benchmark::State& state) {
  const auto sketches = bench_sketches(static_cast<std::size_t>(state.range(0)));
  const auto matrix = core::pairwise_similarity_matrix(
      sketches, core::SketchEstimator::kComponentMatch, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::agglomerate(matrix, core::Linkage::kAverage));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Agglomerate)->Arg(100)->Arg(200)->Arg(400)->Complexity();

void BM_GreedyCluster(benchmark::State& state) {
  const auto sketches = bench_sketches(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::greedy_cluster(sketches, {.theta = 0.3}));
  }
}
BENCHMARK(BM_GreedyCluster)->Arg(100)->Arg(400);

void BM_MinSketchKernel(benchmark::State& state) {
  const core::kernels::Backend backend =
      state.range(1) == 0 ? core::kernels::Backend::kScalar
                          : core::kernels::Backend::kAvx2;
  if (!core::kernels::backend_available(backend)) {
    state.SkipWithError("backend unavailable");
    return;
  }
  const core::MinHasher hasher(
      {.kmer = 15, .num_hashes = static_cast<std::size_t>(state.range(0)), .seed = 3});
  const auto features = bio::kmer_set(random_seq(1000, 4), {.k = 15});
  std::vector<std::uint64_t> out(hasher.sketch_size());
  for (auto _ : state) {
    core::kernels::min_sketch(hasher.family().multipliers(),
                              hasher.family().offsets(),
                              hasher.family().modulus(), features, out, backend);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(features.size()) * state.range(0));
}
BENCHMARK(BM_MinSketchKernel)
    ->ArgsProduct({{25, 100, 200}, {0, 1}})
    ->ArgNames({"hashes", "avx2"});

void BM_ComponentMatchMatrix(benchmark::State& state) {
  const core::kernels::Backend backend =
      state.range(1) == 0 ? core::kernels::Backend::kScalar
                          : core::kernels::Backend::kAvx2;
  if (!core::kernels::backend_available(backend)) {
    state.SkipWithError("backend unavailable");
    return;
  }
  const auto sketches = bench_sketches(static_cast<std::size_t>(state.range(0)));
  const auto matrix = core::kernels::SketchMatrix::from_sketches(sketches);
  core::SimilarityMatrix out(matrix.rows());
  for (auto _ : state) {
    core::kernels::component_match_matrix(matrix, out.mutable_data(),
                                          matrix.rows(), backend);
    benchmark::DoNotOptimize(out.mutable_data());
  }
  const long pairs = state.range(0) * (state.range(0) - 1) / 2;
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * pairs);
}
BENCHMARK(BM_ComponentMatchMatrix)
    ->ArgsProduct({{100, 400}, {0, 1}})
    ->ArgNames({"n", "avx2"});

void BM_MapReduceOverhead(benchmark::State& state) {
  // Fixed-size identity job: measures the engine's per-job overhead.
  using IdJob = mr::Job<int, int, int, std::pair<int, int>>;
  std::vector<int> input(1000);
  for (int i = 0; i < 1000; ++i) input[i] = i;
  for (auto _ : state) {
    mr::JobConfig config;
    config.threads = 1;
    IdJob job(
        config,
        [](const int& record, mr::Emitter<int, int>& emit) {
          emit.emit(record, record);
        },
        [](const int& key, std::vector<int>& values,
           std::vector<std::pair<int, int>>& out) {
          out.emplace_back(key, values.front());
        });
    benchmark::DoNotOptimize(job.run(input));
  }
}
BENCHMARK(BM_MapReduceOverhead);

// --------------------------------------------------------------------------
// --bench-json mode: scalar-vs-kernel speedup measurement with pre-kernel
// baseline replicas, written as BENCH_kernels.json.

template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    common::Stopwatch watch;
    fn();
    best = std::min(best, watch.seconds());
  }
  return best;
}

int run_kernel_json_bench(const bench::Flags& flags) {
  using core::kernels::Backend;
  const auto n_reads = static_cast<std::size_t>(flags.num("reads", 512));
  const auto num_hashes = static_cast<std::size_t>(flags.num("hashes", 100));
  const int reps = static_cast<int>(flags.num("reps", 5));

  const core::MinHasher hasher({.kmer = 15, .num_hashes = num_hashes, .seed = 3});
  const auto& family = hasher.family();

  // Feature sets of simulated 1000 bp reads (the paper's shotgun regime).
  std::vector<std::vector<std::uint64_t>> feature_sets;
  feature_sets.reserve(n_reads);
  std::size_t total_features = 0;
  for (std::size_t i = 0; i < n_reads; ++i) {
    feature_sets.push_back(bio::kmer_set(random_seq(1000, 100 + i), {.k = 15}));
    total_features += feature_sets.back().size();
  }
  const double hash_evals =
      static_cast<double>(total_features) * static_cast<double>(num_hashes);

  // Baseline replica of the pre-kernel MinHasher::sketch_features: feature-
  // outer loop with one virtual-free but scalar family.hash() per (x, i).
  auto sketch_baseline = [&] {
    for (const auto& features : feature_sets) {
      core::Sketch sketch(num_hashes, core::kEmptyMin);
      for (const std::uint64_t x : features) {
        for (std::size_t i = 0; i < num_hashes; ++i) {
          const std::uint64_t h = family.hash(i, x);
          if (h < sketch[i]) sketch[i] = h;
        }
      }
      benchmark::DoNotOptimize(sketch.data());
    }
  };
  std::vector<std::uint64_t> out(num_hashes);
  auto sketch_kernel = [&](Backend backend) {
    for (const auto& features : feature_sets) {
      core::kernels::min_sketch(family.multipliers(), family.offsets(),
                                family.modulus(), features, out, backend);
      benchmark::DoNotOptimize(out.data());
    }
  };

  const Backend active = core::kernels::active_backend();
  const double sketch_base_s = best_seconds(reps, sketch_baseline);
  const double sketch_scalar_s =
      best_seconds(reps, [&] { sketch_kernel(Backend::kScalar); });
  const double sketch_active_s =
      best_seconds(reps, [&] { sketch_kernel(active); });

  // Matrix fill: pre-kernel per-pair loop over vector<Sketch> vs the blocked
  // kernel over the flat SketchMatrix.
  std::vector<core::Sketch> vec_sketches;
  vec_sketches.reserve(n_reads);
  for (const auto& features : feature_sets) {
    vec_sketches.push_back(hasher.sketch_features(features));
  }
  const auto matrix = core::kernels::SketchMatrix::from_sketches(vec_sketches);
  core::SimilarityMatrix sim(n_reads);
  auto matrix_baseline = [&] {
    for (std::size_t i = 0; i < n_reads; ++i) {
      sim.set(i, i, 1.0F);
      for (std::size_t j = i + 1; j < n_reads; ++j) {
        const core::Sketch& a = vec_sketches[i];
        const core::Sketch& b = vec_sketches[j];
        std::size_t matches = 0;
        for (std::size_t c = 0; c < a.size(); ++c) {
          if (a[c] == b[c]) ++matches;
        }
        sim.set(i, j, static_cast<float>(static_cast<double>(matches) /
                                         static_cast<double>(a.size())));
      }
    }
    benchmark::DoNotOptimize(sim.mutable_data());
  };
  auto matrix_kernel = [&](Backend backend) {
    core::kernels::component_match_matrix(matrix, sim.mutable_data(), n_reads,
                                          backend);
    benchmark::DoNotOptimize(sim.mutable_data());
  };
  const double pairs = static_cast<double>(n_reads) *
                       static_cast<double>(n_reads - 1) / 2.0;
  const double matrix_base_s = best_seconds(reps, matrix_baseline);
  const double matrix_scalar_s =
      best_seconds(reps, [&] { matrix_kernel(Backend::kScalar); });
  const double matrix_active_s =
      best_seconds(reps, [&] { matrix_kernel(active); });

  // GB/s: bytes of sketch data the loop must touch (8 bytes per hash eval;
  // 2 rows of cols 64-bit minima per pair).
  const auto sketch_gbs = [&](double s) { return hash_evals * 8e-9 / s; };
  const auto matrix_gbs = [&](double s) {
    return pairs * 2.0 * static_cast<double>(num_hashes) * 8e-9 / s;
  };

  bench::BenchRecord record("kernels", {"section", "variant"});
  auto add_row = [&](const char* section, const char* variant, double seconds,
                     double per_unit_ns, double gbs, double speedup) {
    record.row()
        .str("section", section)
        .str("variant", variant)
        .num("seconds", seconds)
        .num(section == std::string("sketch") ? "ns_per_kmer_hash" : "ns_per_pair",
             per_unit_ns)
        .num("gb_per_s", gbs)
        .num("speedup_vs_baseline", speedup);
  };
  add_row("sketch", "baseline_feature_outer", sketch_base_s,
          sketch_base_s * 1e9 / hash_evals, sketch_gbs(sketch_base_s), 1.0);
  add_row("sketch", "kernel_scalar", sketch_scalar_s,
          sketch_scalar_s * 1e9 / hash_evals, sketch_gbs(sketch_scalar_s),
          sketch_base_s / sketch_scalar_s);
  add_row("sketch", std::string("kernel_" + std::string(core::kernels::backend_name(active))).c_str(),
          sketch_active_s, sketch_active_s * 1e9 / hash_evals,
          sketch_gbs(sketch_active_s), sketch_base_s / sketch_active_s);
  add_row("matrix", "baseline_vector_sketch", matrix_base_s,
          matrix_base_s * 1e9 / pairs, matrix_gbs(matrix_base_s), 1.0);
  add_row("matrix", "kernel_scalar", matrix_scalar_s,
          matrix_scalar_s * 1e9 / pairs, matrix_gbs(matrix_scalar_s),
          matrix_base_s / matrix_scalar_s);
  add_row("matrix", std::string("kernel_" + std::string(core::kernels::backend_name(active))).c_str(),
          matrix_active_s, matrix_active_s * 1e9 / pairs,
          matrix_gbs(matrix_active_s), matrix_base_s / matrix_active_s);
  record.row()
      .str("section", "summary")
      .str("active_backend", core::kernels::backend_name(active))
      .num("reads", static_cast<long>(n_reads))
      .num("hashes", static_cast<long>(num_hashes))
      .num("sketch_speedup", sketch_base_s / sketch_active_s)
      .num("matrix_speedup", matrix_base_s / matrix_active_s);

  const std::string json = flags.str("bench-json", "");
  const std::string path = json.empty() || json == "1" ? record.default_path() : json;
  if (!record.write(path)) {
    std::cerr << "failed to write " << path << "\n";
    return 1;
  }
  std::cout << "kernel bench (" << n_reads << " reads, " << num_hashes
            << " hashes, backend " << core::kernels::backend_name(active)
            << ")\n"
            << "  sketch: baseline " << sketch_base_s * 1e9 / hash_evals
            << " ns/kmer-hash, kernel " << sketch_active_s * 1e9 / hash_evals
            << " ns/kmer-hash  -> " << sketch_base_s / sketch_active_s << "x\n"
            << "  matrix: baseline " << matrix_base_s * 1e9 / pairs
            << " ns/pair, kernel " << matrix_active_s * 1e9 / pairs
            << " ns/pair  -> " << matrix_base_s / matrix_active_s << "x\n"
            << "wrote " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const mrmc::bench::Flags flags(argc, argv);
  if (flags.flag("bench-json")) return run_kernel_json_bench(flags);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

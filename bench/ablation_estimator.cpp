// Ablation — Jaccard estimator variants.  The paper's pseudo-code computes
// the set-based Jaccard of minwise values (Algorithm 1 line 9), while the
// textbook estimator counts matching components; Equation 5's literal outer
// modulus m = 4^k degrades both for small k.  This bench quantifies all
// three decisions on one dataset: estimate RMSE vs exact Jaccard and
// end-to-end greedy clustering quality.
//
//   ./ablation_estimator [--reads=300] [--pairs=1500] [--seed=42]
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "bio/kmer.hpp"

using namespace mrmc;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const std::size_t reads = flags.num("reads", 300);
  const std::size_t pairs = flags.num("pairs", 1500);
  const std::uint64_t seed = flags.num("seed", 42);

  const auto sample = simdata::build_16s_simulated(
      {.reads = reads, .error_rate = 0.03, .seed = seed});

  std::vector<std::vector<std::uint64_t>> feature_sets;
  for (const auto& read : sample.reads) {
    feature_sets.push_back(bio::kmer_set(read.seq, {.k = 15}));
  }

  struct Config {
    const char* name;
    std::uint64_t modulus;
    core::SketchEstimator estimator;
    double theta;
  };
  const std::vector<Config> configs = {
      {"component, full-range hash", 0, core::SketchEstimator::kComponentMatch,
       0.08},
      {"set-based, full-range hash", 0, core::SketchEstimator::kSetBased, 0.08},
      {"component, m=4^k (paper-literal)", bio::kmer_space_size(15),
       core::SketchEstimator::kComponentMatch, 0.08},
      {"set-based, m=4^k (paper-literal)", bio::kmer_space_size(15),
       core::SketchEstimator::kSetBased, 0.08},
  };

  common::TextTable table({"estimator", "RMSE", "# Cluster", "W.Acc"});
  for (const auto& config : configs) {
    const core::MinHasher hasher({.kmer = 15, .num_hashes = 50, .seed = seed,
                                  .modulus = config.modulus});
    std::vector<core::Sketch> sketches;
    for (const auto& read : sample.reads) sketches.push_back(hasher.sketch(read.seq));

    common::Xoshiro256 rng(seed ^ config.modulus);
    double squared = 0;
    for (std::size_t p = 0; p < pairs; ++p) {
      const std::size_t i = rng.bounded(sample.size());
      const std::size_t j = rng.bounded(sample.size());
      const double exact = bio::exact_jaccard(feature_sets[i], feature_sets[j]);
      const double estimate =
          core::sketch_similarity(sketches[i], sketches[j], config.estimator);
      squared += (estimate - exact) * (estimate - exact);
    }

    const auto greedy = core::greedy_cluster(
        sketches, {.theta = config.theta, .estimator = config.estimator});
    table.add_row({config.name,
                   common::fmt_f(std::sqrt(squared / static_cast<double>(pairs)), 4),
                   std::to_string(greedy.num_clusters),
                   common::fmt_pct(eval::weighted_cluster_accuracy(
                       greedy.labels, sample.labels))});
  }

  std::cout << "Ablation — Jaccard estimator variants (16S 3% error, " << reads
            << " reads, ground truth " << sample.species.size()
            << " clusters)\n";
  table.print(std::cout);
  return 0;
}

#include "core/minhash.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace mrmc::core {

namespace {

/// (a * x + b) mod (2^61 - 1) without overflow, exploiting the Mersenne
/// structure: for p = 2^61 - 1, (hi·2^61 + lo) ≡ hi + lo (mod p).
constexpr std::uint64_t mod_mersenne61(__uint128_t value) noexcept {
  constexpr std::uint64_t p = UniversalHashFamily::kPrime;
  // value < 2^125; two folds bring it under 2^61 + epsilon, then one
  // conditional subtraction completes the reduction.  (A single fold is NOT
  // enough: for 64-bit inputs the high part alone exceeds p.)
  value = (value & p) + (value >> 61);  // < 2^64 + 2^61
  value = (value & p) + (value >> 61);  // < 2^61 + 8
  auto reduced = static_cast<std::uint64_t>(value);
  if (reduced >= p) reduced -= p;
  return reduced;
}

}  // namespace

UniversalHashFamily::UniversalHashFamily(std::size_t count, std::uint64_t m,
                                         std::uint64_t seed)
    : m_(m) {
  MRMC_REQUIRE(count >= 1, "need at least one hash function");
  MRMC_REQUIRE(m == 0 || m <= kPrime, "outer modulus must be < p");
  a_.reserve(count);
  b_.reserve(count);
  common::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    a_.push_back(1 + rng.bounded(kPrime - 1));  // a in [1, p)
    b_.push_back(rng.bounded(kPrime));          // b in [0, p)
  }
}

std::uint64_t UniversalHashFamily::hash(std::size_t i, std::uint64_t x) const noexcept {
  const __uint128_t prod = static_cast<__uint128_t>(a_[i]) * x + b_[i];
  const std::uint64_t mod_p = mod_mersenne61(prod);
  return m_ == 0 ? mod_p : mod_p % m_;
}

MinHasher::MinHasher(MinHashParams params)
    : params_(params), family_(params.num_hashes, params.modulus, params.seed) {
  MRMC_REQUIRE(params.kmer >= 1 && params.kmer <= bio::kMaxKmerK,
               "kmer size must be in [1, 31]");
}

Sketch MinHasher::sketch_features(std::span<const std::uint64_t> features) const {
  Sketch sketch(family_.size(), kEmptyMin);
  for (const std::uint64_t x : features) {
    for (std::size_t i = 0; i < family_.size(); ++i) {
      const std::uint64_t h = family_.hash(i, x);
      if (h < sketch[i]) sketch[i] = h;
    }
  }
  return sketch;
}

Sketch MinHasher::sketch(std::string_view seq) const {
  const auto features =
      bio::kmer_set(seq, {.k = params_.kmer, .canonical = params_.canonical});
  return sketch_features(features);
}

std::vector<Sketch> MinHasher::sketch_all(
    std::span<const std::string_view> seqs) const {
  std::vector<Sketch> sketches;
  sketches.reserve(seqs.size());
  for (const auto seq : seqs) sketches.push_back(sketch(seq));
  return sketches;
}

double component_match_similarity(const Sketch& a, const Sketch& b) noexcept {
  if (a.empty() || a.size() != b.size()) return 0.0;
  std::size_t matches = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++matches;
  }
  return static_cast<double>(matches) / static_cast<double>(a.size());
}

double set_based_similarity(const Sketch& a, const Sketch& b) {
  if (a.empty() || b.empty()) return 0.0;
  Sketch sa = a, sb = b;
  std::sort(sa.begin(), sa.end());
  sa.erase(std::unique(sa.begin(), sa.end()), sa.end());
  std::sort(sb.begin(), sb.end());
  sb.erase(std::unique(sb.begin(), sb.end()), sb.end());
  return bio::exact_jaccard(sa, sb);
}

double sketch_similarity(const Sketch& a, const Sketch& b,
                         SketchEstimator estimator) {
  MRMC_REQUIRE(a.size() == b.size(), "sketches must have equal length");
  switch (estimator) {
    case SketchEstimator::kComponentMatch:
      return component_match_similarity(a, b);
    case SketchEstimator::kSetBased:
      return set_based_similarity(a, b);
  }
  return 0.0;
}

}  // namespace mrmc::core

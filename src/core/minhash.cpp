#include "core/minhash.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "common/thread_pool.hpp"

namespace mrmc::core {

namespace {

/// Shared parameter validation for both hash families.  A zero count or a
/// degenerate / oversized modulus used to surface only as silently useless
/// sketches (every component 0); fail loudly instead.
void validate_family_params(std::size_t count, std::uint64_t m) {
  MRMC_REQUIRE(count >= 1,
               "hash family needs at least one hash function (count == 0 "
               "would produce empty sketches)");
  MRMC_REQUIRE(m == 0 || (m >= 2 && m <= UniversalHashFamily::kPrime),
               "outer modulus must be 0 (full 61-bit range) or in "
               "[2, 2^61 - 1]: m == 1 collapses every sketch component to "
               "zero and m > p is incompatible with the Mersenne-61 family");
}

}  // namespace

const char* sketch_scheme_name(SketchScheme scheme) noexcept {
  switch (scheme) {
    case SketchScheme::kUniversal: return "universal";
    case SketchScheme::kCMinHash: return "cminhash";
  }
  return "?";
}

UniversalHashFamily::UniversalHashFamily(std::size_t count, std::uint64_t m,
                                         std::uint64_t seed)
    : m_(m) {
  validate_family_params(count, m);
  a_.reserve(count);
  b_.reserve(count);
  common::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    a_.push_back(1 + rng.bounded(kPrime - 1));  // a in [1, p)
    b_.push_back(rng.bounded(kPrime));          // b in [0, p)
  }
}

std::uint64_t UniversalHashFamily::hash(std::size_t i, std::uint64_t x) const noexcept {
  const std::uint64_t mod_p = kernels::detail::cw_hash(a_[i], b_[i], x);
  return m_ == 0 ? mod_p : mod_p % m_;
}

CMinHashFamily::CMinHashFamily(std::size_t count, std::uint64_t m,
                               std::uint64_t seed)
    : m_(m) {
  validate_family_params(count, m);
  common::Xoshiro256 rng(seed);
  // σ(x) = (a1·x + b1) mod p and the affine layer (a2·y + b2) mod p of π;
  // both bijections on GF(p) since a1, a2 ∈ [1, p) and p is prime.  π
  // itself is that affine layer composed with the fixed non-linear
  // kernels::detail::cmin_mix64 scramble — purely affine maps would
  // collapse h_k into rotations of one point set (correlated minima).
  const std::uint64_t a1 = 1 + rng.bounded(kPrime - 1);
  const std::uint64_t b1 = rng.bounded(kPrime);
  const std::uint64_t a2 = 1 + rng.bounded(kPrime - 1);
  const std::uint64_t b2 = rng.bounded(kPrime);
  // The affine part of h_k = π∘(σ + k) collapses to (A·x + B_k) mod p with
  // A = a1·a2 and B_k = a2·b1 + b2 + k·a2, built incrementally (each step
  // one add + conditional subtract, both operands < p); the scramble is
  // applied after this map, once per evaluation.
  a_ = kernels::detail::mod_mersenne61(static_cast<__uint128_t>(a1) * a2);
  std::uint64_t bk = kernels::detail::cw_hash(a2, b2, b1);  // (a2·b1 + b2) mod p
  b_.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    b_.push_back(bk);
    bk += a2;
    if (bk >= kPrime) bk -= kPrime;
  }
}

std::uint64_t CMinHashFamily::hash(std::size_t k, std::uint64_t x) const noexcept {
  // Affine core, then the fixed non-linear scramble (π's order-breaking
  // role — without it every slot is a rotation of one point set and the
  // minima correlate; see kernels::detail::cmin_mix64).
  const std::uint64_t mixed =
      kernels::detail::cmin_mix64(kernels::detail::cw_hash(a_, b_[k], x));
  return m_ == 0 ? mixed : mixed % m_;
}

MinHasher::MinHasher(MinHashParams params)
    : params_(params), family_(params.num_hashes, params.modulus, params.seed) {
  MRMC_REQUIRE(params.kmer >= 1 && params.kmer <= bio::kMaxKmerK,
               "kmer size must be in [1, 31]");
  if (params_.scheme == SketchScheme::kCMinHash) {
    cmin_.emplace(params.num_hashes, params.modulus, params.seed);
  }
}

void MinHasher::sketch_features_into(std::span<const std::uint64_t> features,
                                     std::span<std::uint64_t> out) const {
  MRMC_REQUIRE(out.size() == sketch_size(), "output span must hold one slot per hash");
  if (cmin_.has_value()) {
    kernels::cmin_sketch(cmin_->multiplier(), cmin_->offsets(),
                         cmin_->modulus(), features, out);
  } else {
    kernels::min_sketch(family_.multipliers(), family_.offsets(),
                        family_.modulus(), features, out);
  }
}

Sketch MinHasher::sketch_features(std::span<const std::uint64_t> features) const {
  Sketch sketch(family_.size());
  sketch_features_into(features, sketch);
  return sketch;
}

Sketch MinHasher::sketch(std::string_view seq) const {
  thread_local std::vector<std::uint64_t> features;
  bio::kmer_set_into(seq, {.k = params_.kmer, .canonical = params_.canonical},
                     features);
  return sketch_features(features);
}

std::vector<Sketch> MinHasher::sketch_all(
    std::span<const std::string_view> seqs, common::ThreadPool* pool) const {
  std::vector<Sketch> sketches(seqs.size());
  auto sketch_one = [&](std::size_t i) { sketches[i] = sketch(seqs[i]); };
  if (pool != nullptr && seqs.size() > 1) {
    pool->parallel_for(seqs.size(), sketch_one);
  } else {
    for (std::size_t i = 0; i < seqs.size(); ++i) sketch_one(i);
  }
  return sketches;
}

kernels::SketchMatrix MinHasher::sketch_matrix(
    std::span<const std::string_view> seqs, common::ThreadPool* pool) const {
  kernels::SketchMatrix matrix(seqs.size(), sketch_size());
  auto sketch_row = [&](std::size_t i) {
    thread_local std::vector<std::uint64_t> features;
    bio::kmer_set_into(seqs[i],
                       {.k = params_.kmer, .canonical = params_.canonical},
                       features);
    sketch_features_into(features, matrix.row(i));
  };
  if (pool != nullptr && seqs.size() > 1) {
    pool->parallel_for(seqs.size(), sketch_row);
  } else {
    for (std::size_t i = 0; i < seqs.size(); ++i) sketch_row(i);
  }
  return matrix;
}

// ---------------------------------------------------------- SortedSketchStore

void SortedSketchStore::append(std::span<const std::uint64_t> sketch,
                               std::vector<std::uint64_t>& scratch) {
  scratch.assign(sketch.begin(), sketch.end());
  std::sort(scratch.begin(), scratch.end());
  scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
  values_.insert(values_.end(), scratch.begin(), scratch.end());
  offsets_.push_back(values_.size());
}

SortedSketchStore::SortedSketchStore(std::span<const Sketch> sketches) {
  offsets_.reserve(sketches.size() + 1);
  offsets_.push_back(0);
  std::vector<std::uint64_t> scratch;
  for (const auto& sketch : sketches) append(sketch, scratch);
}

SortedSketchStore::SortedSketchStore(const kernels::SketchMatrix& sketches) {
  offsets_.reserve(sketches.rows() + 1);
  offsets_.push_back(0);
  values_.reserve(sketches.rows() * sketches.cols());
  std::vector<std::uint64_t> scratch;
  for (std::size_t i = 0; i < sketches.rows(); ++i) {
    append(sketches.row(i), scratch);
  }
}

std::pair<std::uint64_t, std::uint64_t> SortedSketchStore::jaccard_counts(
    std::size_t i, std::size_t j) const noexcept {
  const auto a = row(i);
  const auto b = row(j);
  // Same merge-count as bio::exact_jaccard; rows are sorted unique.
  std::uint64_t inter = 0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.size() && ib < b.size()) {
    if (a[ia] == b[ib]) {
      ++inter;
      ++ia;
      ++ib;
    } else if (a[ia] < b[ib]) {
      ++ia;
    } else {
      ++ib;
    }
  }
  const std::uint64_t uni = a.size() + b.size() - inter;
  return {inter, uni};
}

// ------------------------------------------------------------------ estimators

double component_match_similarity(const Sketch& a, const Sketch& b) noexcept {
  if (a.empty() || a.size() != b.size()) return 0.0;
  const std::size_t matches = kernels::count_equal(a, b);
  return static_cast<double>(matches) / static_cast<double>(a.size());
}

double set_based_similarity(const Sketch& a, const Sketch& b) {
  if (a.empty() || b.empty()) return 0.0;
  // Reused thread-local scratch: no allocation or copy churn per pair.
  thread_local std::vector<std::uint64_t> sa, sb;
  sa.assign(a.begin(), a.end());
  std::sort(sa.begin(), sa.end());
  sa.erase(std::unique(sa.begin(), sa.end()), sa.end());
  sb.assign(b.begin(), b.end());
  std::sort(sb.begin(), sb.end());
  sb.erase(std::unique(sb.begin(), sb.end()), sb.end());
  return bio::exact_jaccard(sa, sb);
}

double sketch_similarity(const Sketch& a, const Sketch& b,
                         SketchEstimator estimator) {
  MRMC_REQUIRE(a.size() == b.size(), "sketches must have equal length");
  switch (estimator) {
    case SketchEstimator::kComponentMatch:
      return component_match_similarity(a, b);
    case SketchEstimator::kSetBased:
      return set_based_similarity(a, b);
  }
  return 0.0;
}

}  // namespace mrmc::core

// The candidate-generation MapReduce jobs (ScalLoPS-style LSH banding at
// MapReduce scale, Sunarso et al.):
//
//   "candidates"  map: (read_id, sketch) -> per-band (bucket_key, read_id)
//                 GROUP on bucket_key
//                 reduce: emit the bucket's deduplicated candidate pairs
//   "verify"      map: one packed BinaryBlock of integer counts per split
//                 (match counts via count_equal / count_equal_packed, or
//                 |∩|,|∪| lanes via SortedSketchStore::jaccard_counts)
//                 reduce: identity; the driver rebuilds edges positionally
//                 from the already-sorted candidate pair list
//
// Both drivers sort and deduplicate their outputs, so candidate sets and
// edge lists are byte-identical across thread counts, record split orders,
// fault plans that leave one live node, and scalar vs AVX2 kernels — and
// identical to the local candidates::enumerate_pairs / verify_pairs path.
// Each job claims a lineage stage ("candidates" / "verify") so
// `mrmc_doctor pipeline` reports them like any other pipeline stage.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/candidates.hpp"
#include "core/pipeline.hpp"
#include "mr/job.hpp"

namespace mrmc::core {

struct CandidateJobResult {
  std::vector<candidates::Pair> pairs;  ///< sorted by (a, b), unique
  candidates::BandShape shape;          ///< resolved banding ({0, 0} for exact)
  mr::JobStats stats;                   ///< empty for the exact backend
};

/// Enumerate candidate pairs for the sketch table.  The LSH backend runs the
/// "candidates" MapReduce job on the simulated cluster; the exact backend
/// enumerates all pairs driver-side (an all-pairs shuffle would itself be
/// the O(n^2) wall this layer removes).
CandidateJobResult run_candidate_job(
    std::shared_ptr<const std::vector<Sketch>> sketches,
    const candidates::Params& params, double theta,
    const ExecutionOptions& exec);

struct VerifyJobResult {
  candidates::SparseSimilarityGraph graph;
  mr::JobStats stats;
};

/// Score candidate pairs into a sparse similarity graph via the "verify"
/// MapReduce job.  `pairs` must be sorted unique (run_candidate_job output).
/// `sketch_bits` is PipelineParams::sketch_bits: below 64 the map tasks score
/// b-bit packed sketch rows with the packed count_equal kernel (the sketches
/// must already be b-bit truncated, as the sketch job leaves them).
VerifyJobResult run_verify_job(
    std::shared_ptr<const std::vector<Sketch>> sketches,
    std::vector<candidates::Pair> pairs, SketchEstimator estimator,
    std::size_t sketch_bits, const ExecutionOptions& exec);

}  // namespace mrmc::core

file(REMOVE_RECURSE
  "CMakeFiles/mrmc_mr.dir/cluster.cpp.o"
  "CMakeFiles/mrmc_mr.dir/cluster.cpp.o.d"
  "CMakeFiles/mrmc_mr.dir/input_format.cpp.o"
  "CMakeFiles/mrmc_mr.dir/input_format.cpp.o.d"
  "CMakeFiles/mrmc_mr.dir/simdfs.cpp.o"
  "CMakeFiles/mrmc_mr.dir/simdfs.cpp.o.d"
  "libmrmc_mr.a"
  "libmrmc_mr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmc_mr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/clustering_properties_test.cpp" "tests/CMakeFiles/core_tests.dir/core/clustering_properties_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/clustering_properties_test.cpp.o.d"
  "/root/repo/tests/core/fastq_pipeline_test.cpp" "tests/CMakeFiles/core_tests.dir/core/fastq_pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/fastq_pipeline_test.cpp.o.d"
  "/root/repo/tests/core/greedy_test.cpp" "tests/CMakeFiles/core_tests.dir/core/greedy_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/greedy_test.cpp.o.d"
  "/root/repo/tests/core/hierarchical_test.cpp" "tests/CMakeFiles/core_tests.dir/core/hierarchical_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/hierarchical_test.cpp.o.d"
  "/root/repo/tests/core/lsh_index_test.cpp" "tests/CMakeFiles/core_tests.dir/core/lsh_index_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/lsh_index_test.cpp.o.d"
  "/root/repo/tests/core/minhash_test.cpp" "tests/CMakeFiles/core_tests.dir/core/minhash_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/minhash_test.cpp.o.d"
  "/root/repo/tests/core/otu_incremental_test.cpp" "tests/CMakeFiles/core_tests.dir/core/otu_incremental_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/otu_incremental_test.cpp.o.d"
  "/root/repo/tests/core/pipeline_test.cpp" "tests/CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mrmc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pig/CMakeFiles/mrmc_pig.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mrmc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/mrmc_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/simdata/CMakeFiles/mrmc_simdata.dir/DependInfo.cmake"
  "/root/repo/build/src/mr/CMakeFiles/mrmc_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/bio/CMakeFiles/mrmc_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mrmc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

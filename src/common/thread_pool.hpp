// A fixed-size work-stealing-free thread pool with a bulk parallel_for
// helper.  Used by the MapReduce engine's thread-backed execution mode and
// by the evaluation code (pairwise alignment sampling).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace mrmc::common {

class ThreadPool {
 public:
  /// Creates `threads` workers (at least 1).  `threads == 0` means
  /// hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Tasks enqueued but not yet picked up by a worker (a telemetry probe;
  /// the value is stale the moment it is read).
  [[nodiscard]] std::size_t queue_depth() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

  /// Enqueue a task; the returned future rethrows any exception the task threw.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task]() mutable { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, count) across the pool and block until done.
  /// Exceptions from any chunk are rethrown (first one wins).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace mrmc::common

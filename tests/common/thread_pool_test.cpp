#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mrmc::common {
namespace {

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExplicitSizeHonored) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ManySubmissionsAllComplete) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(500);
  pool.parallel_for(500, [&](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(2);
  int value = 0;
  pool.parallel_for(1, [&](std::size_t i) { value = static_cast<int>(i) + 7; });
  EXPECT_EQ(value, 7);
}

TEST(ThreadPool, ParallelForRethrowsWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 57) throw std::runtime_error("at 57");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForContinuesAfterException) {
  // An exception in one run must not poison the pool for the next run.
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10, [](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ParallelForAccumulatesCorrectSum) {
  ThreadPool pool(4);
  std::vector<long> partial(1000);
  pool.parallel_for(1000, [&](std::size_t i) { partial[i] = static_cast<long>(i); });
  EXPECT_EQ(std::accumulate(partial.begin(), partial.end(), 0L), 499500L);
}

}  // namespace
}  // namespace mrmc::common

// Pipeline-scope observability (obs v3): cross-job lineage and the
// end-to-end pipeline doctor.
//
// A driver that chains MapReduce jobs (core::run_pipeline, a pig script, or
// an iterative multi-round algorithm) opens a PipelineScope; each job it
// runs then claims a (pipeline id, stage name, round, sequence) slot.  The
// engine stamps that claim onto the job's wall span, emits it as a
// "job_lineage" instant on the job's sim track, and links consecutive jobs
// with Chrome flow events — so a flushed trace carries enough structure to
// stitch the per-job doctor reports back into one PipelineReport:
//
//   * the end-to-end critical path decomposed per stage (startup / map /
//     shuffle / reduce aggregated in stage order),
//   * inter-job driver gaps (real wall time the driver burned between jobs),
//   * aggregate shuffle bytes per stage, and
//   * stage-level findings ("similarity is 78% of the makespan", ...).
//
// The standing obs invariant holds one level up: a PipelineReport built from
// the in-process Collector is byte-identical to one reconstructed from the
// flushed trace by `mrmc_doctor pipeline`.  Lineage events are invisible to
// the single-job reconstruction path, so enabling pipelines never perturbs
// existing job reports.
//
// The API is shaped for round-indexed iterative drivers (StageScope takes an
// optional round) so the upcoming hash-to-min connected-components work can
// report per-round telemetry without touching this layer again.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/mini_json.hpp"
#include "obs/report.hpp"

namespace mrmc::obs::pipeline {

// ------------------------------------------------------- lineage context

/// The lineage a job claims when it runs under an active PipelineScope.
struct Claim {
  std::string pipeline;      ///< unique pipeline id ("<name>#<serial>")
  std::string stage;         ///< stage name ("sketch", "similarity", ...)
  int round = -1;            ///< iteration index for round drivers; -1 = none
  std::size_t sequence = 0;  ///< 0-based position within the pipeline
};

struct FlowLink;

/// RAII pipeline scope, held by the driver for the duration of a multi-job
/// run.  Thread-local and nestable: an inner scope shadows the outer one and
/// restores it on destruction.  The id is the given name plus a process-wide
/// serial, so two runs in one process never collide.
class PipelineScope {
 public:
  explicit PipelineScope(std::string_view name);
  ~PipelineScope();
  PipelineScope(const PipelineScope&) = delete;
  PipelineScope& operator=(const PipelineScope&) = delete;

  [[nodiscard]] const std::string& id() const noexcept { return id_; }

 private:
  friend class StageScope;
  friend std::optional<Claim> claim();
  friend struct FlowLink;
  friend FlowLink take_flow_link() noexcept;
  friend void set_flow_link(std::uint32_t pid, double end_ts_us) noexcept;

  std::string id_;
  std::string stage_;
  int round_ = -1;
  std::size_t next_sequence_ = 0;
  // Previous job in this pipeline, for trace flow-event linking.
  std::uint32_t link_pid_ = 0;
  double link_end_ts_us_ = 0.0;
  bool link_valid_ = false;
  PipelineScope* prev_ = nullptr;  ///< shadowed outer scope, restored in dtor
};

/// RAII stage label within the innermost live PipelineScope.  A no-op when
/// no pipeline is active, so library stages (core's run_*_job, pig
/// statements) can declare their stage unconditionally.
class StageScope {
 public:
  explicit StageScope(std::string stage, int round = -1);
  ~StageScope();
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  PipelineScope* scope_ = nullptr;  ///< nullptr = no live pipeline
  std::string saved_stage_;
  int saved_round_ = -1;
};

/// True when the calling thread has a live PipelineScope.
[[nodiscard]] bool active() noexcept;

/// The id of the calling thread's innermost live PipelineScope, or "" when
/// none is active.  Lets the recovery driver label checkpoint events with
/// the pipeline they belong to without claiming a lineage slot.
[[nodiscard]] std::string current_id();

/// Claim the next lineage slot of the innermost scope (bumping its sequence
/// counter) and remember it as last_claim(); with no live scope, clears
/// last_claim() and returns nullopt.  Called once per simulated job by the
/// engine's emit funnel.
std::optional<Claim> claim();

/// The claim made by the most recent claim() call on this thread (nullopt
/// when that call ran outside any scope).  Lets the job runner read the
/// lineage its simulate_job call just claimed without re-threading it.
[[nodiscard]] const std::optional<Claim>& last_claim() noexcept;

/// Where the previous job of the live pipeline ended in the trace, so the
/// next job can draw a flow arrow from it.
struct FlowLink {
  std::uint32_t pid = 0;
  double end_ts_us = 0.0;
  bool valid = false;
};

/// Consume the live scope's pending flow link (invalid when there is no
/// scope or no previous job).
[[nodiscard]] FlowLink take_flow_link() noexcept;

/// Record the trace position where the job that just claimed ended.
void set_flow_link(std::uint32_t pid, double end_ts_us) noexcept;

/// Deterministic flow-event id for a claim: FNV-1a of the pipeline id,
/// xor'd with the sequence, so ids are stable across identical runs.
[[nodiscard]] std::uint64_t flow_event_id(const Claim& claim) noexcept;

// ------------------------------------------------------- pipeline doctor

/// One stage of a pipeline as collected: the job-doctor input plus the real
/// wall window the driver observed around the job (microseconds on the
/// tracer's clock; both 0 when wall timing is unavailable).
struct StageRecord {
  report::JobInput job;
  double wall_start_us = 0.0;
  double wall_end_us = 0.0;

  [[nodiscard]] bool has_wall() const noexcept {
    return wall_end_us > wall_start_us;
  }
};

/// One checkpoint decision of the recovery stage driver (mr::recovery), as
/// fed to the Collector in-process and emitted as a "stage_checkpoint"
/// instant on the trace — the pipeline doctor's "recovery" section is built
/// from these, byte-identical along either path.
struct RecoveryRecord {
  std::string pipeline;      ///< PipelineScope id the driver ran under
  std::string stage;         ///< stage name ("sketch", "similarity", ...)
  std::size_t sequence = 0;  ///< 0-based driver stage sequence
  std::string outcome;       ///< "hit", "miss+write", or "miss"
  int attempts = 0;          ///< compute attempts (0 for a hit)
  std::string key;           ///< 16-hex-digit checkpoint key
};

/// All stages of one pipeline, sorted by claim sequence, plus the recovery
/// driver's checkpoint decisions in driver order (empty without recovery).
struct PipelineInput {
  std::string id;
  std::vector<StageRecord> stages;
  std::vector<RecoveryRecord> recovery;
};

struct PipelineAnalyzeOptions {
  report::AnalyzeOptions job{};   ///< forwarded to the per-stage job doctor
  /// Include real wall-clock facts (stage wall, inter-job driver gaps).
  /// Disable to compare pipelines across runs or thread counts, where only
  /// the simulated layer is deterministic.
  bool include_wall = true;
  double dominant_share = 0.5;    ///< stage share of sim makespan → finding
  double gap_fraction = 0.25;     ///< driver-gap share of wall → finding
  double startup_fraction = 0.3;  ///< aggregate startup share → finding
  double shuffle_share = 0.5;     ///< stage share of shuffle bytes → finding
};

struct StageReport {
  report::JobReport job;
  double sim_share = 0.0;     ///< job.total_s / pipeline sim_total_s
  double wall_s = 0.0;        ///< real stage duration (0 without wall data)
  double gap_before_s = 0.0;  ///< driver time between previous job and this
  bool has_wall = false;
};

/// The recovery driver's checkpoint decisions for one pipeline, summarized.
/// Empty rows = the pipeline ran without a recovery driver; renderers omit
/// the section entirely then, so pre-recovery reports are byte-identical.
struct RecoverySummary {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t writes = 0;
  std::vector<RecoveryRecord> rows;  ///< stable-sorted by driver sequence
};

/// The stitched end-to-end view.  All aggregate sums are accumulated left to
/// right in stage-sequence order so in-process and trace-reconstructed
/// reports are byte-identical.
struct PipelineReport {
  std::string id;
  double sim_total_s = 0.0;   ///< sum of stage sim totals
  double startup_s = 0.0;     ///< aggregate per-leg critical path
  double map_s = 0.0;
  double shuffle_s = 0.0;
  double reduce_s = 0.0;
  double shuffle_bytes = 0.0;
  double wall_total_s = 0.0;  ///< first job start → last job end (real)
  double driver_gap_s = 0.0;  ///< sum of inter-job gaps (real)
  bool has_wall = false;
  std::vector<StageReport> stages;
  RecoverySummary recovery;
  std::vector<report::Finding> findings;
};

[[nodiscard]] PipelineReport analyze(const PipelineInput& input,
                                     const PipelineAnalyzeOptions& options = {});

/// Regroup the jobs of a parsed Chrome trace into pipelines: jobs carrying a
/// "job_lineage" instant, grouped by pipeline id in first-appearance order,
/// stage-sorted by sequence, wall windows joined from "job_wall" instants.
/// Jobs without lineage are ignored (they still appear in the job doctor).
[[nodiscard]] std::vector<PipelineInput> pipelines_from_trace(
    const common::JsonValue& root);

/// `mrmc_doctor pipeline` entry point: parse + regroup + analyze a flushed
/// trace file.  Throws common::MrmcError on I/O or parse failure.
[[nodiscard]] std::vector<PipelineReport> analyze_trace_file(
    const std::string& path, const PipelineAnalyzeOptions& options = {});

[[nodiscard]] std::string to_text(const PipelineReport& report,
                                  bool color = false);
[[nodiscard]] std::string to_text(std::span<const PipelineReport> reports,
                                  bool color = false);
[[nodiscard]] std::string to_json(const PipelineReport& report);
[[nodiscard]] std::string to_json(std::span<const PipelineReport> reports);
[[nodiscard]] std::string to_html(std::span<const PipelineReport> reports);

/// Schema-v1 BENCH record ("bench": "pipeline") with one row per stage plus
/// a <total> row per pipeline: simulated per-leg seconds (deterministic,
/// tight-gated by `mrmc_doctor regress`) and wall seconds (noisy-gated).
[[nodiscard]] std::string to_bench_json(std::span<const PipelineReport> reports);

/// Process-wide pipeline-report sink, mirroring report::Collector: the job
/// runner feeds it a StageRecord per claimed job; flush() renders every
/// collected pipeline to the configured path (.html / .json / text).  First
/// use reads MRMC_PIPELINE (a path — enables collection + sets the sink).
class Collector {
 public:
  static Collector& global();

  [[nodiscard]] bool enabled() const noexcept;
  void set_enabled(bool enabled) noexcept;
  void set_output_path(std::string path);
  [[nodiscard]] std::string output_path() const;

  void add(StageRecord record);
  /// Record a recovery-driver checkpoint decision (see RecoveryRecord).
  void add_recovery(RecoveryRecord record);
  [[nodiscard]] std::size_t size() const;
  void clear();

  /// Collected stages regrouped into pipelines (same ordering contract as
  /// pipelines_from_trace).
  [[nodiscard]] std::vector<PipelineInput> pipelines() const;
  [[nodiscard]] std::vector<PipelineReport> reports(
      const PipelineAnalyzeOptions& options = {}) const;

  /// Render every collected pipeline to the configured path.  False when
  /// disabled, pathless, empty, or on I/O error.
  bool flush() const;

  /// Flush the global collector iff MRMC_PIPELINE is set (checked per call).
  static bool write_global_if_configured();

 private:
  Collector();

  mutable std::mutex mutex_;
  bool enabled_ = false;
  std::string output_path_;
  std::vector<StageRecord> records_;
  std::vector<RecoveryRecord> recovery_;
};

}  // namespace mrmc::obs::pipeline

#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/candidate_jobs.hpp"
#include "mr/runtime.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/pipeline.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace mrmc::core {

const char* mode_name(Mode mode) noexcept {
  switch (mode) {
    case Mode::kGreedy: return "greedy";
    case Mode::kHierarchical: return "hierarchical";
  }
  return "?";
}

namespace cost {

// Calibrated to an EMR M1 Large-class node (cpu_rate = 1 work unit / sim
// second): ~25 ns per k-mer x hash-function evaluation, ~1.5 ns per sketch
// component comparison, ~40 ns per dendrogram matrix cell.
double sketch_work(std::size_t length, std::size_t num_hashes) noexcept {
  return static_cast<double>(length) * static_cast<double>(num_hashes) * 25e-9;
}
double compare_work(std::size_t num_hashes) noexcept {
  return static_cast<double>(num_hashes) * 1.5e-9;
}
double dendrogram_work(std::size_t n) noexcept {
  return static_cast<double>(n) * static_cast<double>(n) * 40e-9;
}
double sketch_bytes(std::size_t num_hashes) noexcept {
  return static_cast<double>(num_hashes) * 8.0 + 8.0;
}

}  // namespace cost

namespace {

struct IndexedRead {
  std::uint32_t index = 0;
  std::string seq;
};

/// Job 1: sketch every read (map-only; identity reduce gathers by index).
std::vector<Sketch> run_sketch_job(std::span<const bio::FastaRecord> reads,
                                   const PipelineParams& params,
                                   const ExecutionOptions& exec,
                                   mr::JobStats& stats) {
  obs::pipeline::StageScope stage("sketch");
  auto hasher = std::make_shared<MinHasher>(params.minhash);
  const std::size_t num_hashes = params.minhash.num_hashes;

  using SketchJob = mr::Job<IndexedRead, std::uint32_t, Sketch,
                            std::pair<std::uint32_t, Sketch>>;
  mr::JobConfig config;
  config.name = "sketch";
  config.num_reducers = std::max<std::size_t>(1, exec.cluster.reduce_slots());
  config.records_per_split = exec.records_per_split;
  config.threads = exec.threads;
  config.isolated_pool = exec.isolated_pool;
  config.fault_plan = exec.fault_plan;
  config.cluster = exec.cluster;

  auto& sketch_bytes_hist =
      obs::Registry::global().histogram("pipeline.sketch_bytes");
  auto& sketch_minima_hist =
      obs::Registry::global().histogram("pipeline.sketch_distinct_minima");
  SketchJob job(
      config,
      [hasher, &sketch_bytes_hist, &sketch_minima_hist](
          const IndexedRead& read, mr::Emitter<std::uint32_t, Sketch>& emit) {
        Sketch sketch = hasher->sketch(read.seq);
        sketch_bytes_hist.observe(mr::approx_bytes(sketch));
        thread_local std::vector<std::uint64_t> scratch;
        sketch_minima_hist.observe(
            static_cast<double>(kernels::count_distinct(sketch, scratch)));
        emit.emit(read.index, std::move(sketch));
        emit.count("reads.sketched");
      },
      [](const std::uint32_t& key, std::vector<Sketch>& values,
         std::vector<std::pair<std::uint32_t, Sketch>>& out) {
        MRMC_CHECK(values.size() == 1, "one sketch per read index");
        out.emplace_back(key, std::move(values.front()));
      });
  job.with_map_work([num_hashes](const IndexedRead& read) {
    return cost::sketch_work(read.seq.size(), num_hashes);
  });

  std::vector<IndexedRead> input;
  input.reserve(reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    input.push_back({static_cast<std::uint32_t>(i), reads[i].seq});
  }

  auto result = job.run(input);
  stats = std::move(result.stats);

  std::vector<Sketch> sketches(reads.size());
  for (auto& [index, sketch] : result.output) {
    sketches[index] = std::move(sketch);
  }
  return sketches;
}

/// Job 2: all-pairs similarity, one matrix row per map record (the paper's
/// row-wise partition).  The sketch table plays the role of Pig's GROUP-ALL
/// broadcast relation.
SimilarityMatrix run_similarity_job(std::shared_ptr<const std::vector<Sketch>> sketches,
                                    const PipelineParams& params,
                                    const ExecutionOptions& exec,
                                    mr::JobStats& stats) {
  obs::pipeline::StageScope stage("similarity");
  const std::size_t n = sketches->size();
  const std::size_t num_hashes = params.minhash.num_hashes;
  const SketchEstimator estimator = params.estimator;

  using Row = std::vector<float>;
  using SimJob =
      mr::Job<std::uint32_t, std::uint32_t, Row, std::pair<std::uint32_t, Row>>;

  mr::JobConfig config;
  config.name = "similarity";
  config.num_reducers = std::max<std::size_t>(1, exec.cluster.reduce_slots());
  config.records_per_split =
      std::max<std::size_t>(1, n / std::max<std::size_t>(1, exec.cluster.map_slots() * 4));
  config.threads = exec.threads;
  config.isolated_pool = exec.isolated_pool;
  config.fault_plan = exec.fault_plan;
  config.cluster = exec.cluster;

  // Set-based rows re-compare every sketch pair; pre-sort each sketch once
  // into a flat store shared (read-only) by all map tasks instead of sorting
  // two copies per pair inside the row loop.
  auto store = estimator == SketchEstimator::kSetBased
                   ? std::make_shared<const SortedSketchStore>(*sketches)
                   : nullptr;

  // Per-row fan-out: how many of the row's pairs clear theta — the density
  // signal that decides whether sparse clustering would pay off.
  auto& fanout_hist =
      obs::Registry::global().histogram("pipeline.similarity_fanout");
  const auto theta = static_cast<float>(params.theta);
  SimJob job(
      config,
      [sketches, store, estimator, theta, &fanout_hist](
          const std::uint32_t& row, mr::Emitter<std::uint32_t, Row>& emit) {
        const auto& all = *sketches;
        Row sims;
        sims.reserve(all.size() - row - 1);
        std::size_t fanout = 0;
        for (std::size_t j = row + 1; j < all.size(); ++j) {
          const double sim =
              estimator == SketchEstimator::kSetBased
                  ? store->jaccard(row, j)
                  : component_match_similarity(all[row], all[j]);
          sims.push_back(static_cast<float>(sim));
          if (sims.back() >= theta) ++fanout;
        }
        fanout_hist.observe(static_cast<double>(fanout));
        emit.emit(row, std::move(sims));
        emit.count("matrix.rows");
      },
      [](const std::uint32_t& key, std::vector<Row>& values,
         std::vector<std::pair<std::uint32_t, Row>>& out) {
        MRMC_CHECK(values.size() == 1, "one similarity row per index");
        out.emplace_back(key, std::move(values.front()));
      });
  job.with_map_work([n, num_hashes](const std::uint32_t& row) {
    return static_cast<double>(n - row - 1) * cost::compare_work(num_hashes);
  });

  std::vector<std::uint32_t> rows(n);
  for (std::size_t i = 0; i < n; ++i) rows[i] = static_cast<std::uint32_t>(i);

  auto result = job.run(rows);
  stats = std::move(result.stats);

  SimilarityMatrix matrix(n, 0.0F);
  for (auto& [row, sims] : result.output) {
    matrix.set(row, row, 1.0F);
    for (std::size_t j = 0; j < sims.size(); ++j) {
      matrix.set(row, row + 1 + j, sims[j]);
    }
  }
  return matrix;
}

/// Job 3 (greedy): GROUP ALL -> one reducer runs Algorithm 1 over the
/// sketch table (Algorithm 3, step 9) — or, when the LSH backend supplied a
/// verified candidate graph, the graph-aware sweep over it.
std::vector<int> run_greedy_job(
    std::shared_ptr<const std::vector<Sketch>> sketches,
    const PipelineParams& params, const ExecutionOptions& exec,
    mr::JobStats& stats,
    std::shared_ptr<const candidates::SparseSimilarityGraph> graph = nullptr) {
  obs::pipeline::StageScope stage("greedy-cluster");
  const std::size_t n = sketches->size();
  const GreedyParams greedy{params.theta, params.greedy_estimator};

  using Value = std::uint32_t;  // read index; sketches travel via the table
  using GreedyJob = mr::Job<std::uint32_t, int, Value, std::pair<std::uint32_t, int>>;

  mr::JobConfig config;
  config.name = "greedy-cluster";
  config.num_reducers = 1;  // GROUP ALL semantics
  config.records_per_split = exec.records_per_split;
  config.threads = exec.threads;
  config.isolated_pool = exec.isolated_pool;
  config.fault_plan = exec.fault_plan;
  config.cluster = exec.cluster;

  GreedyJob job(
      config,
      [](const std::uint32_t& index, mr::Emitter<int, Value>& emit) {
        emit.emit(0, index);
      },
      [sketches, greedy, graph](const int&, std::vector<Value>& indices,
                                std::vector<std::pair<std::uint32_t, int>>& out,
                                mr::ReduceContext& context) {
        // Keep input order: values arrive in map-task order which follows
        // the original read order for our deterministic shuffle.
        std::sort(indices.begin(), indices.end());
        const GreedyResult result = graph != nullptr
                                        ? greedy_cluster_graph(*graph, greedy)
                                        : greedy_cluster(*sketches, greedy);
        for (const std::uint32_t index : indices) {
          out.emplace_back(index, result.labels[index]);
        }
        context.count("clusters.formed",
                      static_cast<long>(count_clusters(result.labels)));
      });
  job.with_map_work([](const std::uint32_t&) { return 1e-7; });  // emit only
  job.with_reduce_work([n, graph](const int&, std::size_t) {
    if (graph != nullptr) {
      // Graph sweep is O(V + E): each edge is inspected at most once.
      return (static_cast<double>(n) +
              static_cast<double>(graph->edges.size())) *
             cost::compare_work(100);
    }
    // Greedy comparisons are data dependent; model the observed ~N*sqrt(N)
    // envelope with the per-comparison sketch cost.
    return static_cast<double>(n) * std::max(1.0, std::sqrt(static_cast<double>(n))) *
           cost::compare_work(100);
  });

  std::vector<std::uint32_t> input(n);
  for (std::size_t i = 0; i < n; ++i) input[i] = static_cast<std::uint32_t>(i);
  auto result = job.run(input);
  stats = std::move(result.stats);

  std::vector<int> labels(n, -1);
  for (const auto& [index, label] : result.output) labels[index] = label;
  return labels;
}

/// Job 3 (hierarchical): GROUP ALL over matrix rows -> one reducer builds
/// the dendrogram and cuts it at theta (Algorithm 3, step 8).
std::vector<int> run_hierarchical_job(const SimilarityMatrix& matrix,
                                      const PipelineParams& params,
                                      const ExecutionOptions& exec,
                                      mr::JobStats& stats) {
  obs::pipeline::StageScope stage("hierarchical-cluster");
  const std::size_t n = matrix.size();

  using HierJob = mr::Job<std::uint32_t, int, std::uint32_t,
                          std::pair<std::uint32_t, int>>;
  mr::JobConfig config;
  config.name = "hierarchical-cluster";
  config.num_reducers = 1;  // GROUP ALL semantics
  config.records_per_split = std::max<std::size_t>(1, n / 8);
  config.threads = exec.threads;
  config.isolated_pool = exec.isolated_pool;
  config.fault_plan = exec.fault_plan;
  config.cluster = exec.cluster;

  const Linkage linkage = params.linkage;
  const double theta = params.theta;
  HierJob job(
      config,
      [](const std::uint32_t& row, mr::Emitter<int, std::uint32_t>& emit) {
        emit.emit(0, row);
      },
      [&matrix, linkage, theta](const int&, std::vector<std::uint32_t>& rows,
                                std::vector<std::pair<std::uint32_t, int>>& out,
                                mr::ReduceContext& context) {
        const Dendrogram dendrogram = agglomerate(matrix, linkage);
        const std::vector<int> labels = cut_dendrogram(dendrogram, theta);
        std::sort(rows.begin(), rows.end());
        for (const std::uint32_t row : rows) out.emplace_back(row, labels[row]);
        context.count("clusters.formed",
                      static_cast<long>(count_clusters(labels)));
      });
  job.with_map_work([](const std::uint32_t&) { return 1e-7; });  // emit only
  job.with_reduce_work(
      [n](const int&, std::size_t) { return cost::dendrogram_work(n); });

  std::vector<std::uint32_t> input(n);
  for (std::size_t i = 0; i < n; ++i) input[i] = static_cast<std::uint32_t>(i);
  auto result = job.run(input);
  stats = std::move(result.stats);

  std::vector<int> labels(n, -1);
  for (const auto& [index, label] : result.output) labels[index] = label;
  return labels;
}

}  // namespace

FastqPipelineResult run_pipeline_fastq(std::span<const bio::FastqRecord> reads,
                                       const bio::QualityFilter& qc,
                                       const PipelineParams& params,
                                       const ExecutionOptions& exec) {
  FastqPipelineResult result;
  const std::vector<bio::FastqRecord> input(reads.begin(), reads.end());
  {
    obs::Tracer::Span qc_span(obs::Tracer::global(), "pipeline/fastq_qc",
                              {{"reads", std::to_string(reads.size())}});
    const auto filtered = bio::quality_filter(input, qc, &result.dropped);
    result.kept = bio::to_fasta(filtered);
  }
  obs::Registry::global()
      .counter("pipeline.fastq_reads_dropped")
      .add(static_cast<long>(result.dropped));
  obs::Registry::global()
      .counter("pipeline.fastq_reads_kept")
      .add(static_cast<long>(result.kept.size()));
  result.clustering = run_pipeline(result.kept, params, exec);
  return result;
}

PipelineResult run_pipeline(std::span<const bio::FastaRecord> reads,
                            const PipelineParams& params,
                            const ExecutionOptions& exec) {
  common::Stopwatch watch;
  PipelineResult result;
  if (reads.empty()) return result;

  auto& tracer = obs::Tracer::global();
  obs::Tracer::Span pipeline_span(
      tracer, std::string("pipeline ") + mode_name(params.mode),
      {{"reads", std::to_string(reads.size())},
       {"distributed", exec.distributed ? "true" : "false"}});

  if (exec.distributed) {
    // Lineage root: every job this pipeline drives claims a (pipeline id,
    // stage, sequence) from this scope, so the doctor can stitch the jobs
    // back into one PipelineReport from the trace alone.
    obs::pipeline::PipelineScope lineage(std::string("pipeline-") +
                                         mode_name(params.mode));
    auto sketches = std::make_shared<std::vector<Sketch>>(
        run_sketch_job(reads, params, exec, result.sketch_stats));
    result.sim_total_s += result.sketch_stats.timeline.total_s;

    if (params.candidates.backend == candidates::Backend::kLshBanded) {
      // LSH-banded path: candidates -> verify -> sparse-graph clustering.
      auto enumerated =
          run_candidate_job(sketches, params.candidates, params.theta, exec);
      result.candidate_stats = std::move(enumerated.stats);
      result.sim_total_s += result.candidate_stats.timeline.total_s;

      const SketchEstimator estimator = params.mode == Mode::kGreedy
                                            ? params.greedy_estimator
                                            : params.estimator;
      auto verified = run_verify_job(sketches, std::move(enumerated.pairs),
                                     estimator, exec);
      result.verify_stats = std::move(verified.stats);
      result.sim_total_s += result.verify_stats.timeline.total_s;
      result.candidate_pairs = verified.graph.edges.size();
      auto graph = std::make_shared<const candidates::SparseSimilarityGraph>(
          std::move(verified.graph));

      if (params.mode == Mode::kGreedy) {
        result.labels = run_greedy_job(sketches, params, exec,
                                       result.cluster_stats, graph);
      } else {
        const SimilarityMatrix matrix = similarity_matrix_from_graph(*graph);
        result.labels =
            run_hierarchical_job(matrix, params, exec, result.cluster_stats);
      }
      result.sim_total_s += result.cluster_stats.timeline.total_s;
    } else if (params.mode == Mode::kGreedy) {
      result.labels = run_greedy_job(sketches, params, exec, result.cluster_stats);
      result.sim_total_s += result.cluster_stats.timeline.total_s;
    } else {
      const SimilarityMatrix matrix =
          run_similarity_job(sketches, params, exec, result.similarity_stats);
      result.sim_total_s += result.similarity_stats.timeline.total_s;
      result.labels =
          run_hierarchical_job(matrix, params, exec, result.cluster_stats);
      result.sim_total_s += result.cluster_stats.timeline.total_s;
    }
  } else {
    const MinHasher hasher(params.minhash);
    std::vector<std::string_view> seqs;
    seqs.reserve(reads.size());
    for (const auto& read : reads) seqs.emplace_back(read.seq);

    mr::runtime::PoolLease lease(exec.threads, exec.isolated_pool);
    const kernels::SketchMatrix sketches =
        hasher.sketch_matrix(seqs, &lease.pool());

    if (params.candidates.backend == candidates::Backend::kLshBanded) {
      // Same candidates -> verify -> graph flow as the distributed path,
      // computed in-process (byte-identical output either way).
      const SketchEstimator estimator = params.mode == Mode::kGreedy
                                            ? params.greedy_estimator
                                            : params.estimator;
      const candidates::SparseSimilarityGraph graph = candidates::build_graph(
          sketches, params.candidates, params.theta, estimator, &lease.pool());
      result.candidate_pairs = graph.edges.size();
      if (params.mode == Mode::kGreedy) {
        result.labels =
            greedy_cluster_graph(graph, {params.theta, params.greedy_estimator})
                .labels;
      } else {
        const SimilarityMatrix matrix = similarity_matrix_from_graph(graph);
        result.labels = cut_dendrogram(agglomerate(matrix, params.linkage),
                                       params.theta);
      }
    } else if (params.mode == Mode::kGreedy) {
      result.labels =
          greedy_cluster(sketches, {params.theta, params.greedy_estimator}).labels;
    } else {
      result.labels = hierarchical_cluster(
                          sketches,
                          {params.theta, params.linkage, params.estimator},
                          &lease.pool())
                          .labels;
    }
  }

  result.num_clusters = count_clusters(result.labels);
  result.wall_s = watch.seconds();
  pipeline_span.arg("clusters", std::to_string(result.num_clusters));
  pipeline_span.arg("sim_total_s", obs::trace_double(result.sim_total_s));

  static const obs::Logger logger("core.pipeline");
  logger.info("pipeline finished",
              {{"mode", mode_name(params.mode)},
               {"reads", reads.size()},
               {"clusters", result.num_clusters},
               {"wall_s", result.wall_s},
               {"sim_total_s", result.sim_total_s}});

  // Honor MRMC_TRACE / MRMC_METRICS / MRMC_REPORT at every pipeline boundary
  // so even a caller that exits abnormally afterwards has a complete artifact.
  tracer.flush();
  obs::Registry::write_global_if_configured();
  obs::report::Collector::write_global_if_configured();
  obs::pipeline::Collector::write_global_if_configured();
  return result;
}

}  // namespace mrmc::core

#include "bio/alignment.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace mrmc::bio {

namespace {

constexpr long kNegInf = std::numeric_limits<long>::min() / 4;

struct Cell {
  long score = kNegInf;
  std::uint32_t matches = 0;
  std::uint32_t columns = 0;
};

inline bool better(const Cell& a, const Cell& b) noexcept {
  // Higher score wins; on ties prefer more matches (stable, favors diagonal).
  return a.score > b.score || (a.score == b.score && a.matches > b.matches);
}

}  // namespace

long nw_score(std::string_view a, std::string_view b, const AlignParams& params) {
  if (a.size() > b.size()) return nw_score(b, a, params);
  const std::size_t n = a.size(), m = b.size();
  std::vector<long> prev(n + 1), cur(n + 1);
  for (std::size_t i = 0; i <= n; ++i) prev[i] = static_cast<long>(i) * params.gap;
  for (std::size_t j = 1; j <= m; ++j) {
    cur[0] = static_cast<long>(j) * params.gap;
    for (std::size_t i = 1; i <= n; ++i) {
      const long diag =
          prev[i - 1] + (a[i - 1] == b[j - 1] ? params.match : params.mismatch);
      cur[i] = std::max({diag, prev[i] + params.gap, cur[i - 1] + params.gap});
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

AlignResult nw_align(std::string_view a, std::string_view b,
                     const AlignParams& params) {
  const std::size_t n = a.size(), m = b.size();
  if (n == 0 && m == 0) return {0, 1.0, 0};
  if (n == 0 || m == 0) {
    const std::size_t len = std::max(n, m);
    return {static_cast<long>(len) * params.gap, 0.0, len};
  }

  const long band = params.band;
  auto in_band = [&](std::size_t i, std::size_t j) {
    if (band < 0) return true;
    const long diff = static_cast<long>(i) - static_cast<long>(j);
    return diff >= -band && diff <= band;
  };

  std::vector<Cell> prev(m + 1), cur(m + 1);
  prev[0] = {0, 0, 0};
  for (std::size_t j = 1; j <= m; ++j) {
    prev[j] = in_band(0, j)
                  ? Cell{static_cast<long>(j) * params.gap, 0,
                         static_cast<std::uint32_t>(j)}
                  : Cell{};
  }

  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = in_band(i, 0)
                 ? Cell{static_cast<long>(i) * params.gap, 0,
                        static_cast<std::uint32_t>(i)}
                 : Cell{};
    for (std::size_t j = 1; j <= m; ++j) {
      if (!in_band(i, j)) {
        cur[j] = Cell{};
        continue;
      }
      Cell best{};
      if (prev[j - 1].score > kNegInf) {
        const bool is_match = a[i - 1] == b[j - 1];
        Cell diag{prev[j - 1].score + (is_match ? params.match : params.mismatch),
                  prev[j - 1].matches + (is_match ? 1u : 0u),
                  prev[j - 1].columns + 1};
        if (better(diag, best)) best = diag;
      }
      if (prev[j].score > kNegInf) {
        Cell up{prev[j].score + params.gap, prev[j].matches, prev[j].columns + 1};
        if (better(up, best)) best = up;
      }
      if (cur[j - 1].score > kNegInf) {
        Cell left{cur[j - 1].score + params.gap, cur[j - 1].matches,
                  cur[j - 1].columns + 1};
        if (better(left, best)) best = left;
      }
      cur[j] = best;
    }
    std::swap(prev, cur);
  }

  const Cell& corner = prev[m];
  MRMC_CHECK(corner.score > kNegInf,
             "banded alignment excluded the global corner; widen the band");
  AlignResult result;
  result.score = corner.score;
  result.columns = corner.columns;
  result.identity = corner.columns == 0
                        ? 1.0
                        : static_cast<double>(corner.matches) /
                              static_cast<double>(corner.columns);
  return result;
}

double global_identity(std::string_view a, std::string_view b,
                       const AlignParams& params) {
  AlignParams p = params;
  if (p.band >= 0) {
    // A band narrower than the length difference cannot reach the corner.
    const long diff = std::labs(static_cast<long>(a.size()) -
                                static_cast<long>(b.size()));
    p.band = std::max<int>(p.band, static_cast<int>(diff) + 1);
  }
  return nw_align(a, b, p).identity;
}

}  // namespace mrmc::bio

#include <gtest/gtest.h>

#include <string_view>

#include "common/error.hpp"
#include "core/incremental.hpp"
#include "core/otu_table.hpp"
#include "simdata/marker16s.hpp"

namespace mrmc::core {
namespace {

// --------------------------------------------------------------- OTU tables

TEST(OtuTable, SortedBySizeWithAbundance) {
  const std::vector<int> labels{0, 1, 1, 1, 2, 2};
  const std::vector<Sketch> sketches(6, Sketch(8, 1));
  const auto table = build_otu_table(labels, sketches);
  ASSERT_EQ(table.size(), 3u);
  EXPECT_EQ(table[0].label, 1);
  EXPECT_EQ(table[0].size, 3u);
  EXPECT_NEAR(table[0].abundance, 0.5, 1e-12);
  EXPECT_EQ(table[1].label, 2);
  EXPECT_EQ(table[2].label, 0);
}

TEST(OtuTable, MedoidIsTheCentralMember) {
  // Cluster of 3: members 0 and 2 each differ from member 1 in different
  // positions; member 1 is closest to both -> medoid.
  std::vector<Sketch> sketches{{1, 2, 3, 9}, {1, 2, 3, 4}, {1, 2, 8, 4}};
  const std::vector<int> labels{0, 0, 0};
  const auto table = build_otu_table(labels, sketches);
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table[0].representative, 1u);
}

TEST(OtuTable, RejectsMismatchedInputs) {
  EXPECT_THROW(build_otu_table(std::vector<int>{0}, std::vector<Sketch>{}),
               common::InvalidArgument);
  EXPECT_THROW(build_otu_table(std::vector<int>{-1},
                               std::vector<Sketch>{Sketch{}}),
               common::InvalidArgument);
}

TEST(OtuTable, RepresentativeReadsAreNamedByClusterAndSize) {
  const std::vector<int> labels{0, 0, 1};
  const std::vector<Sketch> sketches(3, Sketch(4, 7));
  const std::vector<bio::FastaRecord> reads{
      {"a", "a", "ACGT"}, {"b", "b", "ACGA"}, {"c", "c", "TTTT"}};
  const auto table = build_otu_table(labels, sketches);
  const auto reps = representative_reads(table, reads);
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_EQ(reps[0].id, "OTU0_size2");
  EXPECT_EQ(reps[1].id, "OTU1_size1");
  EXPECT_EQ(reps[1].seq, "TTTT");
}

TEST(OtuTable, TsvHasHeaderAndOneRowPerCluster) {
  const std::vector<int> labels{0, 1};
  const std::vector<Sketch> sketches(2, Sketch(4, 7));
  const std::vector<bio::FastaRecord> reads{{"x", "x", "AC"}, {"y", "y", "GT"}};
  const auto tsv = otu_table_tsv(build_otu_table(labels, sketches), reads);
  EXPECT_NE(tsv.find("label\tsize"), std::string::npos);
  EXPECT_EQ(static_cast<int>(std::count(tsv.begin(), tsv.end(), '\n')), 3);
}

// ------------------------------------------------------ incremental clustering

std::vector<std::string> otu_reads(std::size_t otus, std::size_t per_otu,
                                   std::uint64_t seed) {
  const auto genes = simdata::generate_16s_genes(otus, {}, seed);
  simdata::AmpliconParams params;
  params.errors = simdata::ErrorModel::uniform(0.004);
  params.read_length = 80;
  params.length_jitter = 0.05;
  const auto sample = simdata::amplicon_reads(
      genes, std::vector<double>(otus, 1.0), otus * per_otu, params, seed + 1);
  std::vector<std::string> seqs;
  for (const auto& read : sample.reads) seqs.push_back(read.seq);
  return seqs;
}

IncrementalClusterer make_clusterer() {
  return IncrementalClusterer({.kmer = 12, .num_hashes = 40, .seed = 2},
                              {.theta = 0.4,
                               .estimator = SketchEstimator::kComponentMatch},
                              {.bands = 20});
}

TEST(IncrementalClusterer, GrowsClustersAcrossBatches) {
  const auto batch1 = otu_reads(3, 5, 10);
  const auto batch2 = otu_reads(3, 5, 10);  // same OTUs, same seed genes

  auto clusterer = make_clusterer();
  for (const auto& seq : batch1) clusterer.add(seq);
  const std::size_t after_first = clusterer.num_clusters();
  for (const auto& seq : batch2) clusterer.add(seq);

  // Second batch reads (same gene pool) mostly join existing clusters.
  EXPECT_LE(clusterer.num_clusters(), after_first + 2);
  EXPECT_EQ(clusterer.num_reads(), batch1.size() + batch2.size());
}

TEST(IncrementalClusterer, SizesSumToReads) {
  const auto reads = otu_reads(4, 6, 11);
  auto clusterer = make_clusterer();
  std::vector<std::string_view> views(reads.begin(), reads.end());
  const auto labels = clusterer.add_all(views);
  ASSERT_EQ(labels.size(), reads.size());

  std::size_t total = 0;
  for (const std::size_t size : clusterer.cluster_sizes()) total += size;
  EXPECT_EQ(total, reads.size());
}

TEST(IncrementalClusterer, MatchesBatchIndexedGreedy) {
  const auto reads = otu_reads(4, 6, 12);
  const MinHasher hasher({.kmer = 12, .num_hashes = 40, .seed = 2});
  std::vector<Sketch> sketches;
  for (const auto& seq : reads) sketches.push_back(hasher.sketch(seq));
  const GreedyParams greedy{.theta = 0.4,
                            .estimator = SketchEstimator::kComponentMatch};
  const auto batch = greedy_cluster_indexed(sketches, greedy, {.bands = 20});

  auto clusterer = make_clusterer();
  std::vector<int> incremental;
  for (const auto& seq : reads) incremental.push_back(clusterer.add(seq));
  EXPECT_EQ(incremental, batch.labels);
}

TEST(IncrementalClusterer, RepresentativeSketchAccessible) {
  auto clusterer = make_clusterer();
  const int label = clusterer.add(otu_reads(1, 1, 13).front());
  EXPECT_EQ(clusterer.representative_sketch(label).size(), 40u);
  EXPECT_THROW((void)clusterer.representative_sketch(99), common::InvalidArgument);
}

}  // namespace
}  // namespace mrmc::core

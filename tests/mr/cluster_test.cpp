#include "mr/cluster.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace mrmc::mr {
namespace {

ClusterConfig small_cluster(std::size_t nodes) {
  ClusterConfig config;
  config.nodes = nodes;
  config.task_startup_s = 1.0;
  config.job_startup_s = 5.0;
  return config;
}

TEST(SimScheduler, RejectsDegenerateConfigs) {
  ClusterConfig config;
  config.nodes = 0;
  EXPECT_THROW(SimScheduler{config}, common::InvalidArgument);
  config = ClusterConfig{};
  config.node.cpu_rate = 0.0;
  EXPECT_THROW(SimScheduler{config}, common::InvalidArgument);
}

TEST(SimScheduler, TaskDurationComposesCosts) {
  const SimScheduler scheduler(small_cluster(2));
  const TaskSpec task{10.0, 80e6, 40e6, -1};  // 10 s work, 1 s disk in, .5 s out
  // startup 1 + work 10 + in 80e6/80e6 + out 40e6/80e6 = 12.5
  EXPECT_DOUBLE_EQ(scheduler.task_duration(task, true), 12.5);
  // remote input goes over the 40 MB/s NIC: 1 + 10 + 2 + 0.5
  EXPECT_DOUBLE_EQ(scheduler.task_duration(task, false), 13.5);
}

TEST(SimScheduler, EmptyPhaseHasZeroMakespan) {
  const SimScheduler scheduler(small_cluster(4));
  const auto timeline = scheduler.schedule_phase({}, 2);
  EXPECT_DOUBLE_EQ(timeline.makespan_s, 0.0);
  EXPECT_TRUE(timeline.tasks.empty());
}

TEST(SimScheduler, SingleTaskMakespanIsItsDuration) {
  const SimScheduler scheduler(small_cluster(4));
  const std::vector<TaskSpec> tasks{{5.0, 0.0, 0.0, -1}};
  const auto timeline = scheduler.schedule_phase(tasks, 2);
  EXPECT_DOUBLE_EQ(timeline.makespan_s, 6.0);  // startup + work
}

TEST(SimScheduler, ParallelSlotsShortenMakespan) {
  const SimScheduler scheduler2(small_cluster(2));
  const SimScheduler scheduler8(small_cluster(8));
  const std::vector<TaskSpec> tasks(32, TaskSpec{10.0, 0.0, 0.0, -1});
  const double makespan2 = scheduler2.schedule_phase(tasks, 2).makespan_s;
  const double makespan8 = scheduler8.schedule_phase(tasks, 2).makespan_s;
  EXPECT_LT(makespan8, makespan2);
  // 32 tasks of 11 s over 4 slots = 8 waves; over 16 slots = 2 waves.
  EXPECT_DOUBLE_EQ(makespan2, 8 * 11.0);
  EXPECT_DOUBLE_EQ(makespan8, 2 * 11.0);
}

TEST(SimScheduler, MakespanMonotoneNonIncreasingInNodes) {
  const std::vector<TaskSpec> tasks(50, TaskSpec{3.0, 1e6, 1e6, -1});
  double previous = 1e18;
  for (const std::size_t nodes : {2u, 4u, 6u, 8u, 10u, 12u}) {
    const SimScheduler scheduler(small_cluster(nodes));
    const double makespan = scheduler.schedule_phase(tasks, 2).makespan_s;
    EXPECT_LE(makespan, previous + 1e-9) << nodes;
    previous = makespan;
  }
}

TEST(SimScheduler, SmallInputGainsNothingFromMoreNodes) {
  // One task cannot parallelize — the flat line of Figure 2's 1000-read curve.
  const std::vector<TaskSpec> tasks{{30.0, 0.0, 0.0, -1}};
  const SimScheduler s2(small_cluster(2));
  const SimScheduler s12(small_cluster(12));
  EXPECT_DOUBLE_EQ(s2.schedule_phase(tasks, 2).makespan_s,
                   s12.schedule_phase(tasks, 2).makespan_s);
}

TEST(SimScheduler, HonorsLocalityPreference) {
  const SimScheduler scheduler(small_cluster(4));
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < 4; ++i) tasks.push_back({1.0, 1e6, 0.0, i});
  const auto timeline = scheduler.schedule_phase(tasks, 2);
  EXPECT_EQ(timeline.data_local_tasks, 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(timeline.tasks[i].node, i);
    EXPECT_TRUE(timeline.tasks[i].data_local);
  }
}

TEST(SimScheduler, OverloadedPreferredNodeSpillsRemote) {
  const SimScheduler scheduler(small_cluster(4));
  // 12 tasks all preferring node 0 with heavy work: delay scheduling gives
  // up and runs some remotely.
  const std::vector<TaskSpec> tasks(12, TaskSpec{50.0, 1e6, 0.0, 0});
  const auto timeline = scheduler.schedule_phase(tasks, 2);
  EXPECT_LT(timeline.data_local_tasks, 12u);
  EXPECT_GT(timeline.data_local_tasks, 0u);
}

TEST(SimScheduler, ShuffleTimeScalesWithBytesAndNodes) {
  const SimScheduler s2(small_cluster(2));
  const SimScheduler s8(small_cluster(8));
  EXPECT_DOUBLE_EQ(s2.shuffle_time(0.0), 0.0);
  EXPECT_GT(s2.shuffle_time(1e9), s8.shuffle_time(1e9));
  EXPECT_GT(s2.shuffle_time(2e9), s2.shuffle_time(1e9));
}

TEST(SimScheduler, SingleNodeShuffleIsDiskOnly) {
  const SimScheduler s1(small_cluster(1));
  // All data stays local: time = bytes / disk_bw.
  EXPECT_DOUBLE_EQ(s1.shuffle_time(80e6), 1.0);
}

TEST(SimulateJob, TotalComposesPhases) {
  const SimScheduler scheduler(small_cluster(2));
  const std::vector<TaskSpec> maps(4, TaskSpec{2.0, 0.0, 0.0, -1});
  const std::vector<TaskSpec> reduces(2, TaskSpec{1.0, 0.0, 0.0, -1});
  const auto timeline = simulate_job(scheduler, maps, 0.0, reduces);
  EXPECT_DOUBLE_EQ(timeline.total_s, 5.0 + timeline.map_phase.makespan_s +
                                         timeline.reduce_phase.makespan_s);
  EXPECT_FALSE(timeline.summary().empty());
}

TEST(SimScheduler, SpeculativeExecutionRescuesInjectedStraggler) {
  ClusterConfig config = small_cluster(4);
  std::vector<TaskSpec> tasks(16, TaskSpec{2.0, 0.0, 0.0, -1});
  tasks[5].work = 200.0;  // one task 100x slower: a failing disk / data skew

  const SimScheduler baseline{config};
  const auto without = baseline.schedule_phase(tasks, 2);
  EXPECT_EQ(without.speculated_tasks, 0u);

  config.speculative_execution = true;
  const SimScheduler speculating{config};
  const auto with = speculating.schedule_phase(tasks, 2);
  EXPECT_GT(with.speculated_tasks, 0u);
  EXPECT_LT(with.makespan_s, without.makespan_s);
  // The backup copy caps the straggler at (factor + 1) x the phase median
  // (3 s per task here), measured from its start.
  const double median = 3.0;
  EXPECT_DOUBLE_EQ(with.tasks[5].end_s,
                   with.tasks[5].start_s +
                       (config.speculation_factor + 1.0) * median);
}

TEST(SimScheduler, SpeculationLeavesUniformPhasesAlone) {
  ClusterConfig config = small_cluster(4);
  config.speculative_execution = true;
  const SimScheduler scheduler{config};
  const std::vector<TaskSpec> tasks(16, TaskSpec{2.0, 0.0, 0.0, -1});
  const auto timeline = scheduler.schedule_phase(tasks, 2);
  EXPECT_EQ(timeline.speculated_tasks, 0u);
}

TEST(SimScheduler, PlacementsNeverOverlapOnASlot) {
  const SimScheduler scheduler(small_cluster(3));
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < 24; ++i) tasks.push_back({1.0 + i % 5, 1e5, 1e5, i % 3});
  const auto timeline = scheduler.schedule_phase(tasks, 2);
  // Sort each (node, slot) track's intervals and check back-to-back order.
  std::map<std::pair<int, int>, std::vector<std::pair<double, double>>> tracks;
  for (const TaskPlacement& task : timeline.tasks) {
    EXPECT_GE(task.node, 0);
    EXPECT_LT(task.node, 3);
    EXPECT_GE(task.slot, 0);
    EXPECT_LT(task.slot, 2);
    tracks[{task.node, task.slot}].emplace_back(task.start_s, task.end_s);
  }
  for (auto& [slot, intervals] : tracks) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GE(intervals[i].first, intervals[i - 1].second)
          << "overlap on node " << slot.first << " slot " << slot.second;
    }
  }
}

TEST(JobTimeline, SummaryReportsEveryPhase) {
  const SimScheduler scheduler(small_cluster(2));
  const std::vector<TaskSpec> maps(4, TaskSpec{2.0, 0.0, 0.0, -1});
  const std::vector<TaskSpec> reduces(2, TaskSpec{1.0, 0.0, 0.0, -1});
  const auto timeline = simulate_job(scheduler, maps, 80e6, reduces, "t");
  const std::string summary = timeline.summary();
  EXPECT_NE(summary.find("map="), std::string::npos);
  EXPECT_NE(summary.find("shuffle="), std::string::npos);
  EXPECT_NE(summary.find("reduce="), std::string::npos);
  EXPECT_NE(summary.find("total="), std::string::npos);
  // An all-empty job still reports (zero) phases rather than crashing.
  const auto empty = simulate_job(scheduler, {}, 0.0, {}, "empty");
  EXPECT_DOUBLE_EQ(empty.total_s, scheduler.config().job_startup_s);
  EXPECT_NE(empty.summary().find("shuffle=0"), std::string::npos);
}

TEST(SimulateJob, DeterministicAcrossCalls) {
  const SimScheduler scheduler(small_cluster(3));
  std::vector<TaskSpec> maps;
  for (int i = 0; i < 10; ++i) maps.push_back({1.0 + i, 1e5, 1e5, i % 3});
  const auto a = simulate_job(scheduler, maps, 5e6, {});
  const auto b = simulate_job(scheduler, maps, 5e6, {});
  EXPECT_DOUBLE_EQ(a.total_s, b.total_s);
}

}  // namespace
}  // namespace mrmc::mr

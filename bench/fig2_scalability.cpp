// Figure 2 reproduction — runtime of MrMC-MinH^h versus number of cluster
// nodes (2..12) and input size (1 K .. 10 M reads from benchmark S1).
//
// Two modes:
//  * analytic (default): the pipeline's deterministic cost models
//    (core::cost) generate the sketch-job and similarity-job task lists for
//    each (nodes, reads) point and the SimScheduler computes the makespan —
//    this is how we sweep to 10 M reads on one machine.  The model is the
//    same one the executed pipeline uses, validated against real execution
//    by tests and by --validate.
//  * --validate: additionally *executes* the pipeline at small sizes and
//    prints simulated vs measured wall time so the model's shape can be
//    checked end to end.
//
// Expected shape (paper): small inputs are flat in node count (no
// parallelism to exploit); large inputs keep improving through 12 nodes.
//
//   ./fig2_scalability [--max-reads=10000000] [--read-length=1000]
//       [--hashes=100] [--validate] [--seed=42]
//       [--trace=fig2.json]   # Chrome trace of every simulated job
//       [--metrics]           # print the obs metrics snapshot at the end
//       [--report=fig2.html]  # job-doctor report (bare --report: text)
//       [--bench-json[=path]] # machine-readable BENCH_fig2.json record
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "mr/cluster.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

using namespace mrmc;

namespace {

/// Simulated end-to-end hierarchical-pipeline time for `reads` reads on
/// `nodes` nodes, built from the same cost models the executed pipeline
/// uses (sketch map work, similarity row work, dendrogram reduce work).
double simulate_hierarchical(std::size_t reads, std::size_t read_length,
                             std::size_t hashes, std::size_t nodes) {
  mr::ClusterConfig cluster;
  cluster.nodes = nodes;
  const mr::SimScheduler scheduler(cluster);
  const std::string tag =
      "[" + std::to_string(reads) + "r/" + std::to_string(nodes) + "n]";

  const double read_bytes = static_cast<double>(read_length) + 48.0;
  const double sketch_bytes = core::cost::sketch_bytes(hashes);

  // --- Job 1: sketch.  One map task per 1024-read split.
  const std::size_t sketch_splits = std::max<std::size_t>(1, reads / 1024);
  const double reads_per_split =
      static_cast<double>(reads) / static_cast<double>(sketch_splits);
  std::vector<mr::TaskSpec> sketch_maps(
      sketch_splits,
      {reads_per_split * core::cost::sketch_work(read_length, hashes),
       reads_per_split * read_bytes, reads_per_split * sketch_bytes, -1});
  std::vector<mr::TaskSpec> sketch_reduces(
      cluster.reduce_slots(),
      {1e-6, static_cast<double>(reads) * sketch_bytes /
                 static_cast<double>(cluster.reduce_slots()),
       static_cast<double>(reads) * sketch_bytes /
           static_cast<double>(cluster.reduce_slots()),
       -1});
  const auto job1 =
      simulate_job(scheduler, sketch_maps, static_cast<double>(reads) * sketch_bytes,
                   sketch_reduces, "sketch " + tag);

  // --- Job 2: similarity matrix, row-partitioned.  Each map split covers a
  // contiguous row range; work is the number of pairs in the range.
  const std::size_t row_splits = cluster.map_slots() * 4;
  std::vector<mr::TaskSpec> sim_maps;
  sim_maps.reserve(row_splits);
  const double n = static_cast<double>(reads);
  double row_begin = 0;
  for (std::size_t s = 0; s < row_splits; ++s) {
    const double row_end = n * static_cast<double>(s + 1) /
                           static_cast<double>(row_splits);
    // sum over rows r in [begin,end) of (n - r - 1)
    const double rows = row_end - row_begin;
    const double pairs = rows * n - (row_end * row_end - row_begin * row_begin) / 2.0;
    sim_maps.push_back({pairs * core::cost::compare_work(hashes),
                        rows * sketch_bytes, pairs * 4.0, -1});
    row_begin = row_end;
  }
  const double matrix_bytes = n * (n - 1) / 2.0 * 4.0;
  std::vector<mr::TaskSpec> sim_reduces(
      cluster.reduce_slots(),
      {1e-6, matrix_bytes / static_cast<double>(cluster.reduce_slots()),
       matrix_bytes / static_cast<double>(cluster.reduce_slots()), -1});
  const auto job2 = simulate_job(scheduler, sim_maps, matrix_bytes, sim_reduces,
                                 "similarity " + tag);

  // --- Job 3: clustering, single GROUP-ALL reducer.
  std::vector<mr::TaskSpec> cluster_reduce{
      {core::cost::dendrogram_work(reads), matrix_bytes, n * 8.0, -1}};
  const auto job3 =
      simulate_job(scheduler, {}, matrix_bytes, cluster_reduce, "cluster " + tag);

  return job1.total_s + job2.total_s + job3.total_s;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const std::size_t max_reads = flags.num("max-reads", 10'000'000);
  const std::size_t read_length = flags.num("read-length", 1000);
  const std::size_t hashes = flags.num("hashes", 100);
  const std::uint64_t seed = flags.num("seed", 42);

  bench::apply_obs_flags(flags);
  // --bench-json needs per-point reports, so it implies the collector even
  // when no --report file was asked for.
  const bool bench_json = flags.flag("bench-json");
  auto& collector = obs::report::Collector::global();
  if (bench_json) collector.set_enabled(true);
  bench::BenchRecord record("fig2");

  const std::vector<std::size_t> node_counts{2, 4, 6, 8, 10, 12};
  std::vector<std::size_t> read_counts;
  for (std::size_t reads = 1000; reads <= max_reads; reads *= 10) {
    read_counts.push_back(reads);
  }

  common::TextTable table({"# Reads", "2 nodes", "4 nodes", "6 nodes",
                           "8 nodes", "10 nodes", "12 nodes"});
  for (const std::size_t reads : read_counts) {
    std::vector<std::string> row{std::to_string(reads)};
    for (const std::size_t nodes : node_counts) {
      const std::size_t jobs_before = collector.size();
      const double seconds =
          simulate_hierarchical(reads, read_length, hashes, nodes);
      row.push_back(common::format_duration(seconds));
      if (bench_json) {
        // Aggregate the point's jobs (sketch, similarity, cluster) into one
        // record row: busy/capacity efficiency plus every finding id.
        const auto reports = collector.reports();
        double busy = 0.0, capacity = 0.0;
        std::string findings;
        for (std::size_t i = jobs_before; i < reports.size(); ++i) {
          const auto& report = reports[i];
          busy += report.map_phase.busy_s + report.reduce_phase.busy_s;
          capacity +=
              report.map_phase.makespan_s *
                  static_cast<double>(report.map_phase.slots) +
              report.reduce_phase.makespan_s *
                  static_cast<double>(report.reduce_phase.slots);
          for (const auto& finding : report.findings) {
            if (!findings.empty()) findings += ",";
            findings += finding.id;
          }
        }
        record.row()
            .num("reads", static_cast<long>(reads))
            .num("nodes", static_cast<long>(nodes))
            .num("sim_total_s", seconds)
            .num("parallel_efficiency", capacity > 0.0 ? busy / capacity : 0.0)
            .str("findings", findings);
      }
    }
    table.add_row(std::move(row));
  }
  std::cout << "Figure 2 — simulated MrMC-MinH^h runtime vs nodes and reads\n"
            << "(S1-style reads of " << read_length << " bp, " << hashes
            << " hash functions; EMR M1-Large-calibrated cost model)\n";
  table.print(std::cout);

  if (flags.flag("validate")) {
    std::cout << "\nValidation — executed pipeline vs analytic model\n";
    common::TextTable check({"# Reads", "Nodes", "Model", "Pipeline sim",
                             "Wall (this host)"});
    for (const std::size_t reads : {400u, 800u}) {
      const auto& spec = simdata::whole_metagenome_spec("S1");
      const auto sample = simdata::build_whole_metagenome(
          spec, {.reads = reads, .read_length = read_length, .seed = seed});
      for (const std::size_t nodes : {2u, 8u}) {
        const auto result = bench::run_mrmc(sample, core::Mode::kHierarchical, 5,
                                            hashes, 0.5, nodes, seed);
        check.add_row(
            {std::to_string(reads), std::to_string(nodes),
             common::format_duration(
                 simulate_hierarchical(reads, read_length, hashes, nodes)),
             common::format_duration(result.sim_s),
             common::format_duration(result.wall_s)});
      }
    }
    check.print(std::cout);
  }

  if (bench_json) {
    const std::string bench_path = flags.str("bench-json", "1") == "1"
                                       ? record.default_path()
                                       : flags.str("bench-json", "");
    if (record.write(bench_path)) {
      std::cout << "\nwrote bench record to " << bench_path << "\n";
    }
  }
  bench::finish_obs(flags);
  return 0;
}

// Minwise hashing (Section III-A/B of the paper).
//
// A sequence's k-mer feature set I_s is sketched with n universal hash
// functions h_i(x) = ((a_i·x + b_i) mod p) mod m (Carter-Wegman; Equation 5)
// — the i-th sketch component is min_{x in I_s} h_i(x).  By the minwise
// property (Equation 3) the probability that two sets share a component
// equals their Jaccard similarity, so sketches give an unbiased similarity
// estimate in O(n) instead of O(|I_s1| + |I_s2|).
//
// The paper describes two estimators and we implement both:
//  * kComponentMatch — fraction of positions i with equal minima (the
//    textbook estimator; unbiased),
//  * kSetBased — |set(s1^) ∩ set(s2^)| / |set(s1^) ∪ set(s2^)| over the
//    multisets of minwise values (Algorithm 1, line 9 — what the paper's
//    pseudo-code literally computes).
//
// The hot loops live in core::kernels (batched SIMD with a bit-identical
// scalar fallback); this header is the sketch-level API on top of them.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "bio/kmer.hpp"
#include "core/kernels.hpp"

namespace mrmc::common {
class ThreadPool;
}  // namespace mrmc::common

namespace mrmc::core {

/// Fixed-size sketch: the n minwise hash values of one sequence.
using Sketch = std::vector<std::uint64_t>;

/// Sentinel component for a sequence with an empty feature set (shorter than
/// k or all-ambiguous): no x exists to minimize over.
inline constexpr std::uint64_t kEmptyMin = kernels::kEmptyFeatureMin;

enum class SketchEstimator {
  kComponentMatch,  ///< mean of [min_i(A) == min_i(B)]
  kSetBased,        ///< Jaccard of the sets of minwise values
};

/// Carter-Wegman universal hash family with p = 2^61 - 1 (Mersenne prime).
/// Parameters a_i ∈ [1, p), b_i ∈ [0, p) are drawn from a seeded PRNG and
/// stored SoA so the batched kernels can stream them.
class UniversalHashFamily {
 public:
  /// `m` is the outer modulus — the k-mer feature-space size 4^k per the
  /// paper; pass 0 to skip the outer mod (full 61-bit range, fewer
  /// collisions; used by the LSH baseline).
  UniversalHashFamily(std::size_t count, std::uint64_t m, std::uint64_t seed);

  [[nodiscard]] std::size_t size() const noexcept { return a_.size(); }
  [[nodiscard]] std::uint64_t modulus() const noexcept { return m_; }

  /// h_i(x).
  [[nodiscard]] std::uint64_t hash(std::size_t i, std::uint64_t x) const noexcept;

  /// SoA parameter views for the batched kernels.
  [[nodiscard]] std::span<const std::uint64_t> multipliers() const noexcept {
    return a_;
  }
  [[nodiscard]] std::span<const std::uint64_t> offsets() const noexcept {
    return b_;
  }

  static constexpr std::uint64_t kPrime = kernels::kMersenne61;

 private:
  std::vector<std::uint64_t> a_;
  std::vector<std::uint64_t> b_;
  std::uint64_t m_;
};

struct MinHashParams {
  int kmer = 5;             ///< k-mer size (paper: 5 shotgun, 15 for 16S)
  std::size_t num_hashes = 100;  ///< sketch length n (paper: 100 / 50)
  bool canonical = false;   ///< strand-insensitive k-mers
  std::uint64_t seed = 1;   ///< hash-family seed
  /// Outer modulus m of Equation 5.  The paper sets m = 4^k (the feature-
  /// space size), but for small k that collapses all minima toward 0 and
  /// destroys the estimator (see DESIGN.md); 0 = full 61-bit hash range
  /// (recommended, default).  Set to bio::kmer_space_size(k) for
  /// paper-literal behaviour.
  std::uint64_t modulus = 0;
};

/// Computes sketches for sequences.  Thread-safe after construction.
class MinHasher {
 public:
  explicit MinHasher(MinHashParams params);

  [[nodiscard]] const MinHashParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t sketch_size() const noexcept { return family_.size(); }
  [[nodiscard]] const UniversalHashFamily& family() const noexcept {
    return family_;
  }

  /// Sketch of one sequence (Equation 4).
  [[nodiscard]] Sketch sketch(std::string_view seq) const;

  /// Sketch of an explicit feature set.
  [[nodiscard]] Sketch sketch_features(std::span<const std::uint64_t> features) const;

  /// Allocation-free variant: writes the sketch into `out` (length
  /// sketch_size()).
  void sketch_features_into(std::span<const std::uint64_t> features,
                            std::span<std::uint64_t> out) const;

  /// Sketches for many sequences.  When `pool` is non-null, reads are
  /// sketched in parallel; the result is identical at any thread count.
  [[nodiscard]] std::vector<Sketch> sketch_all(
      std::span<const std::string_view> seqs,
      common::ThreadPool* pool = nullptr) const;

  /// Batched variant: all sketches in one flat row-major matrix (the
  /// similarity kernels' native layout).
  [[nodiscard]] kernels::SketchMatrix sketch_matrix(
      std::span<const std::string_view> seqs,
      common::ThreadPool* pool = nullptr) const;

 private:
  MinHashParams params_;
  UniversalHashFamily family_;
};

/// Pre-sorted unique minima of a set of sketches, stored flat so repeated
/// set-based comparisons (greedy sweeps, medoid scans, matrix fills) pay the
/// sort once per sketch instead of twice per pair.
class SortedSketchStore {
 public:
  SortedSketchStore() = default;
  explicit SortedSketchStore(std::span<const Sketch> sketches);
  explicit SortedSketchStore(const kernels::SketchMatrix& sketches);

  [[nodiscard]] std::size_t size() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  [[nodiscard]] std::span<const std::uint64_t> row(std::size_t i) const noexcept {
    return {values_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
  }
  /// == bio::exact_jaccard over the sorted unique minima of sketches i and j.
  [[nodiscard]] double jaccard(std::size_t i, std::size_t j) const noexcept {
    return bio::exact_jaccard(row(i), row(j));
  }

 private:
  void append(std::span<const std::uint64_t> sketch,
              std::vector<std::uint64_t>& scratch);

  std::vector<std::uint64_t> values_;
  std::vector<std::size_t> offsets_;
};

/// Estimated Jaccard similarity of two sketches (must be equal length).
[[nodiscard]] double sketch_similarity(const Sketch& a, const Sketch& b,
                                       SketchEstimator estimator);

/// Component-match estimator (cheapest; used by the similarity matrix).
[[nodiscard]] double component_match_similarity(const Sketch& a,
                                                const Sketch& b) noexcept;

/// Set-based estimator of Algorithm 1 line 9.  Sort work runs in reused
/// thread-local scratch; for repeated comparisons prefer SortedSketchStore.
[[nodiscard]] double set_based_similarity(const Sketch& a, const Sketch& b);

}  // namespace mrmc::core

// Wall-clock and per-thread CPU stopwatches, plus human-readable duration
// formatting in the style used by the paper's tables ("4m 25s", "8.4s").
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <ctime>
#define MRMC_HAS_THREAD_CPUTIME 1
#endif

namespace mrmc::common {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// CPU time consumed by the *calling thread* (CLOCK_THREAD_CPUTIME_ID), for
/// honest cpu_s accounting inside parallel tasks: unlike Stopwatch it does
/// not advance while the thread sleeps or is descheduled.  Both calls must
/// come from the same thread.  Falls back to the wall clock on platforms
/// without a thread CPU clock.
class ThreadCpuStopwatch {
 public:
  ThreadCpuStopwatch() : start_(now()) {}

  void reset() { start_ = now(); }

  [[nodiscard]] double seconds() const { return now() - start_; }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  static double now() {
#ifdef MRMC_HAS_THREAD_CPUTIME
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) +
             static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  double start_;
};

/// Format a duration the way the paper's tables print it:
/// >= 60 s -> "4m 25s"; otherwise "8.4s".
inline std::string format_duration(double seconds) {
  char buf[64];
  if (seconds >= 60.0) {
    const auto mins = static_cast<long>(seconds) / 60;
    const auto secs = static_cast<long>(seconds) % 60;
    std::snprintf(buf, sizeof buf, "%ldm %02lds", mins, secs);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fs", seconds);
  }
  return buf;
}

}  // namespace mrmc::common

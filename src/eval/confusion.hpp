// Cluster-vs-class confusion reporting: the drill-down view behind W.Acc —
// which ground-truth classes each cluster absorbed, per-class recall, and a
// printable matrix for bench debugging.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace mrmc::eval {

struct ConfusionRow {
  int cluster = 0;
  std::size_t size = 0;
  int majority_class = 0;
  double purity = 0.0;                 ///< majority fraction
  std::vector<std::size_t> class_counts;  ///< indexed by truth class
};

struct ConfusionReport {
  std::vector<ConfusionRow> rows;        ///< sorted by descending cluster size
  std::vector<double> class_recall;      ///< per truth class: fraction of its
                                         ///< members inside clusters that
                                         ///< designate it
  std::size_t classes = 0;

  [[nodiscard]] std::string to_text(
      std::span<const std::string> class_names = {}) const;
};

/// Build the report; labels and truth must be non-negative and aligned.
ConfusionReport confusion_report(std::span<const int> labels,
                                 std::span<const int> truth);

}  // namespace mrmc::eval


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bio/alignment.cpp" "src/bio/CMakeFiles/mrmc_bio.dir/alignment.cpp.o" "gcc" "src/bio/CMakeFiles/mrmc_bio.dir/alignment.cpp.o.d"
  "/root/repo/src/bio/dna.cpp" "src/bio/CMakeFiles/mrmc_bio.dir/dna.cpp.o" "gcc" "src/bio/CMakeFiles/mrmc_bio.dir/dna.cpp.o.d"
  "/root/repo/src/bio/fasta.cpp" "src/bio/CMakeFiles/mrmc_bio.dir/fasta.cpp.o" "gcc" "src/bio/CMakeFiles/mrmc_bio.dir/fasta.cpp.o.d"
  "/root/repo/src/bio/fastq.cpp" "src/bio/CMakeFiles/mrmc_bio.dir/fastq.cpp.o" "gcc" "src/bio/CMakeFiles/mrmc_bio.dir/fastq.cpp.o.d"
  "/root/repo/src/bio/gotoh.cpp" "src/bio/CMakeFiles/mrmc_bio.dir/gotoh.cpp.o" "gcc" "src/bio/CMakeFiles/mrmc_bio.dir/gotoh.cpp.o.d"
  "/root/repo/src/bio/kmer.cpp" "src/bio/CMakeFiles/mrmc_bio.dir/kmer.cpp.o" "gcc" "src/bio/CMakeFiles/mrmc_bio.dir/kmer.cpp.o.d"
  "/root/repo/src/bio/seq_stats.cpp" "src/bio/CMakeFiles/mrmc_bio.dir/seq_stats.cpp.o" "gcc" "src/bio/CMakeFiles/mrmc_bio.dir/seq_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrmc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

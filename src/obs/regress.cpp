#include "obs/regress.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace mrmc::obs::regress {

namespace {

bool contains(std::string_view name, std::string_view needle) {
  return name.find(needle) != std::string_view::npos;
}

bool ends_with(std::string_view name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.substr(name.size() - suffix.size()) == suffix;
}

/// %.17g — round-trips through strtod exactly (same contract as the trace).
std::string f17(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

/// Compact human rendering for the text/html reports.
std::string f6(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

void append_json_string(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string html_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Collect every numeric leaf of `value` into `metrics`, joining nested
/// object keys with '.'.  Arrays, strings, and booleans are skipped — they
/// identify rows or carry prose, not measurements.
void flatten_numbers(const std::string& prefix, const common::JsonValue& value,
                     std::map<std::string, double>& metrics) {
  if (value.type == common::JsonValue::Type::kNumber) {
    metrics[prefix] = value.number;
    return;
  }
  if (value.type != common::JsonValue::Type::kObject) return;
  for (const auto& [key, child] : value.object) {
    flatten_numbers(prefix.empty() ? key : prefix + "." + key, child, metrics);
  }
}

/// Deduplicate job names across one artifact ("wordcount", "wordcount#2"…)
/// so repeated jobs of the same name compare positionally.
class KeyDedup {
 public:
  std::string unique(const std::string& name) {
    const int n = ++seen_[name];
    return n == 1 ? name : name + "#" + std::to_string(n);
  }

 private:
  std::map<std::string, int> seen_;
};

/// One job report -> one row of its headline numbers.  Shared by the trace
/// and report-JSON loaders via different upstreams, but the trace path
/// re-analyzes the reconstructed inputs, so its values are bit-identical to
/// what the report JSON would have carried (the doctor's invariant).
MetricRow row_from_report(const report::JobReport& job, std::string key) {
  MetricRow row;
  row.source = "job";
  row.key = std::move(key);
  row.metrics["startup_s"] = job.startup_s;
  row.metrics["map_s"] = job.map_phase.makespan_s;
  row.metrics["shuffle_s"] = job.shuffle_s;
  row.metrics["reduce_s"] = job.reduce_phase.makespan_s;
  row.metrics["total_s"] = job.total_s;
  row.metrics["parallel_efficiency"] = job.parallel_efficiency;
  row.metrics["overhead_fraction"] = job.overhead_fraction;
  row.metrics["shuffle_bytes"] = job.shuffle_bytes;
  row.metrics["map_median_task_s"] = job.map_phase.median_task_s;
  row.metrics["map_max_task_s"] = job.map_phase.max_task_s;
  row.metrics["reduce_median_task_s"] = job.reduce_phase.median_task_s;
  row.metrics["reduce_max_task_s"] = job.reduce_phase.max_task_s;
  if (!job.bytes.empty()) {
    row.metrics["bytes.map_input_bytes"] = job.bytes.map_input_bytes;
    row.metrics["bytes.map_output_bytes"] = job.bytes.map_output_bytes;
    row.metrics["bytes.reduce_input_bytes"] = job.bytes.reduce_input_bytes;
    row.metrics["bytes.reduce_output_bytes"] = job.bytes.reduce_output_bytes;
    row.metrics["bytes.fetch_bytes"] = job.bytes.fetch_bytes;
    row.metrics["bytes.fetch_count"] =
        static_cast<double>(job.bytes.fetch_count);
    row.metrics["bytes.max_fetch_fan_in"] =
        static_cast<double>(job.bytes.max_fetch_fan_in);
  }
  if (!job.faults.empty()) {
    row.metrics["faults.lost_work_s"] = job.faults.lost_work_s;
    row.metrics["faults.downtime_s"] = job.faults.downtime_s;
    row.metrics["faults.killed_attempts"] =
        static_cast<double>(job.faults.killed_attempts);
    row.metrics["faults.lost_map_outputs"] =
        static_cast<double>(job.faults.lost_map_outputs);
  }
  return row;
}

std::vector<MetricRow> rows_from_trace(const common::JsonValue& root) {
  std::vector<MetricRow> rows;
  KeyDedup dedup;
  for (const report::JobInput& input : report::jobs_from_trace(root)) {
    rows.push_back(
        row_from_report(report::analyze(input), dedup.unique(input.name)));
  }
  return rows;
}

std::vector<MetricRow> rows_from_report_json(const common::JsonValue& root) {
  const common::JsonValue& jobs = root.at("jobs");
  if (jobs.type != common::JsonValue::Type::kArray) {
    throw std::runtime_error("report \"jobs\" is not an array");
  }
  std::vector<MetricRow> rows;
  KeyDedup dedup;
  for (const common::JsonValue& job : jobs.array) {
    MetricRow row;
    row.source = "job";
    row.key = dedup.unique(job.has("name") ? job.at("name").string : "job");
    flatten_numbers("", job, row.metrics);
    // Flattened names carry the section prefix ("critical_path.total_s");
    // strip it for the headline numbers so report-JSON rows line up with
    // trace-derived rows (row_from_report's names).
    std::map<std::string, double> renamed;
    for (const auto& [name, value] : row.metrics) {
      constexpr std::string_view kPrefix = "critical_path.";
      if (name.rfind(kPrefix, 0) == 0) {
        renamed[name.substr(kPrefix.size())] = value;
      } else if (name.rfind("map.", 0) == 0 || name.rfind("reduce.", 0) == 0) {
        const auto dot = name.find('.');
        const std::string field = name.substr(dot + 1);
        if (field == "median_task_s" || field == "max_task_s") {
          renamed[name.substr(0, dot) + "_" + field] = value;
        } else if (field == "makespan_s") {
          renamed[name.substr(0, dot) + "_s"] = value;
        } else {
          renamed[name] = value;
        }
      } else {
        renamed[name] = value;
      }
    }
    row.metrics = std::move(renamed);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<MetricRow> rows_from_bench(const common::JsonValue& root) {
  const std::string bench = root.at("bench").string;
  const common::JsonValue& declared_keys =
      root.has("keys") ? root.at("keys") : common::JsonValue{};
  const common::JsonValue& bench_rows = root.at("rows");
  if (bench_rows.type != common::JsonValue::Type::kArray) {
    throw std::runtime_error("bench \"rows\" is not an array");
  }
  std::vector<MetricRow> rows;
  KeyDedup dedup;
  for (std::size_t i = 0; i < bench_rows.array.size(); ++i) {
    const common::JsonValue& fields = bench_rows.array[i];
    if (fields.type != common::JsonValue::Type::kObject) continue;
    MetricRow row;
    row.source = bench;
    const auto render = [](const common::JsonValue& v) {
      return v.type == common::JsonValue::Type::kString ? v.string
                                                        : f17(v.number);
    };
    std::vector<std::string> key_fields;
    if (declared_keys.type == common::JsonValue::Type::kArray) {
      for (const common::JsonValue& k : declared_keys.array) {
        key_fields.push_back(k.string);
      }
    } else {
      // Schema v0 records declare no keys: every string field identifies
      // the row (numeric fields are all treated as metrics).
      for (const auto& [name, v] : fields.object) {
        if (v.type == common::JsonValue::Type::kString) {
          key_fields.push_back(name);
        }
      }
    }
    std::string key;
    for (const std::string& field : key_fields) {
      if (!fields.has(field)) continue;
      if (!key.empty()) key += ",";
      key += field + "=" + render(fields.at(field));
    }
    if (key.empty()) key = "row" + std::to_string(i);
    row.key = dedup.unique(key);
    for (const auto& [name, v] : fields.object) {
      if (v.type != common::JsonValue::Type::kNumber) continue;
      if (std::find(key_fields.begin(), key_fields.end(), name) !=
          key_fields.end()) {
        continue;
      }
      row.metrics[name] = v.number;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<MetricRow> rows_from_metrics_snapshot(
    const common::JsonValue& root) {
  std::vector<MetricRow> rows;
  if (root.has("counters")) {
    MetricRow row;
    row.source = "metrics";
    row.key = "counters";
    flatten_numbers("", root.at("counters"), row.metrics);
    if (!row.metrics.empty()) rows.push_back(std::move(row));
  }
  if (root.has("gauges")) {
    MetricRow row;
    row.source = "metrics";
    row.key = "gauges";
    flatten_numbers("", root.at("gauges"), row.metrics);
    if (!row.metrics.empty()) rows.push_back(std::move(row));
  }
  if (root.has("histograms")) {
    for (const auto& [name, hist] : root.at("histograms").object) {
      MetricRow row;
      row.source = "metrics";
      row.key = "hist:" + name;
      flatten_numbers("", hist, row.metrics);  // count/sum/p50/p95/p99
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

int status_rank(Status status) {
  switch (status) {
    case Status::kRegression: return 0;
    case Status::kMissing: return 1;
    case Status::kImprovement: return 2;
    case Status::kNew: return 3;
    case Status::kInfo: return 4;
    case Status::kOk: return 5;
  }
  return 5;
}

}  // namespace

Direction metric_direction(std::string_view name) noexcept {
  // Higher-better first: "gb_per_s" would otherwise match the "_s" suffix.
  if (contains(name, "speedup") || contains(name, "efficiency") ||
      contains(name, "gb_per_s") || contains(name, "throughput") ||
      contains(name, "wacc") || contains(name, "accuracy")) {
    return Direction::kHigherBetter;
  }
  if (ends_with(name, "_s") || ends_with(name, "_us") ||
      ends_with(name, "_ms") || ends_with(name, "_bytes") ||
      ends_with(name, "seconds") || contains(name, "ns_per") ||
      contains(name, "us_per") || contains(name, "rmse") ||
      contains(name, "downtime") || contains(name, "lost_work") ||
      contains(name, "slowdown") || contains(name, "retries")) {
    return Direction::kLowerBetter;
  }
  return Direction::kInformational;
}

bool metric_is_noisy(std::string_view name) noexcept {
  // Simulated-clock metrics are deterministic however loaded the machine is.
  if (contains(name, "sim")) return false;
  return contains(name, "wall") || contains(name, "cpu") ||
         contains(name, "seconds") || contains(name, "ns_per") ||
         contains(name, "us_per") || contains(name, "gb_per_s") ||
         contains(name, "speedup") || ends_with(name, "_us");
}

const char* status_name(Status status) noexcept {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kImprovement: return "improvement";
    case Status::kRegression: return "regression";
    case Status::kMissing: return "missing";
    case Status::kNew: return "new";
    case Status::kInfo: return "info";
  }
  return "ok";
}

std::vector<MetricRow> rows_from_json(const common::JsonValue& root,
                                      const std::string& source_name) {
  if (root.type != common::JsonValue::Type::kObject) {
    throw std::runtime_error(source_name + ": artifact root is not an object");
  }
  if (root.has("traceEvents")) return rows_from_trace(root);
  if (root.has("jobs")) return rows_from_report_json(root);
  if (root.has("bench") && root.has("rows")) return rows_from_bench(root);
  if (root.has("counters") || root.has("histograms")) {
    return rows_from_metrics_snapshot(root);
  }
  throw std::runtime_error(
      source_name +
      ": unrecognized artifact (expected a Chrome trace, doctor report "
      "JSON, BENCH record, or metrics snapshot)");
}

std::vector<MetricRow> load_rows(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open artifact: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return rows_from_json(common::parse_json(buffer.str()), path);
}

CompareReport compare(const std::vector<MetricRow>& baseline,
                      const std::vector<MetricRow>& candidate,
                      const Thresholds& thresholds) {
  CompareReport report;
  std::map<std::pair<std::string, std::string>, const MetricRow*> index;
  for (const MetricRow& row : candidate) {
    index[{row.source, row.key}] = &row;
  }

  std::map<std::pair<std::string, std::string>, const MetricRow*> base_index;
  for (const MetricRow& row : baseline) {
    base_index[{row.source, row.key}] = &row;
    const auto it = index.find({row.source, row.key});
    const MetricRow* other = it == index.end() ? nullptr : it->second;
    for (const auto& [metric, base_value] : row.metrics) {
      CompareEntry entry;
      entry.source = row.source;
      entry.key = row.key;
      entry.metric = metric;
      entry.baseline = base_value;
      if (other == nullptr || !other->metrics.count(metric)) {
        entry.status = Status::kMissing;
        ++report.missing;
        report.entries.push_back(std::move(entry));
        continue;
      }
      const double cand_value = other->metrics.at(metric);
      entry.candidate = cand_value;
      ++report.compared;

      const bool base_zero = std::abs(base_value) < thresholds.min_value;
      const bool cand_zero = std::abs(cand_value) < thresholds.min_value;
      entry.ratio = base_zero ? 1.0 : cand_value / base_value;

      Direction direction = metric_direction(metric);
      double ratio_limit = thresholds.ratio;
      if (metric_is_noisy(metric)) {
        if (thresholds.noisy_ratio <= 0.0) {
          direction = Direction::kInformational;
        } else {
          ratio_limit = thresholds.noisy_ratio;
        }
      }
      if (direction == Direction::kInformational) {
        entry.status = Status::kInfo;
      } else if (base_zero && cand_zero) {
        entry.status = Status::kOk;
      } else {
        // Normalize to lower-is-better, then apply ratio + absolute slack.
        const double base_cost =
            direction == Direction::kLowerBetter ? base_value : -base_value;
        const double cand_cost =
            direction == Direction::kLowerBetter ? cand_value : -cand_value;
        const double worse_by = cand_cost - base_cost;
        const bool over_ratio =
            direction == Direction::kLowerBetter
                ? cand_value > base_value * ratio_limit
                : cand_value * ratio_limit < base_value;
        const bool under_ratio =
            direction == Direction::kLowerBetter
                ? cand_value * ratio_limit < base_value
                : cand_value > base_value * ratio_limit;
        if (over_ratio && worse_by > thresholds.abs_slack) {
          entry.status = Status::kRegression;
          ++report.regressions;
        } else if (under_ratio && -worse_by > thresholds.abs_slack) {
          entry.status = Status::kImprovement;
          ++report.improvements;
        } else {
          entry.status = Status::kOk;
        }
      }
      report.entries.push_back(std::move(entry));
    }
  }

  // Candidate-only rows/metrics: recorded, never gated.
  for (const MetricRow& row : candidate) {
    const auto it = base_index.find({row.source, row.key});
    const MetricRow* base = it == base_index.end() ? nullptr : it->second;
    for (const auto& [metric, value] : row.metrics) {
      if (base != nullptr && base->metrics.count(metric)) continue;
      CompareEntry entry;
      entry.source = row.source;
      entry.key = row.key;
      entry.metric = metric;
      entry.candidate = value;
      entry.status = Status::kNew;
      report.entries.push_back(std::move(entry));
    }
  }

  std::stable_sort(report.entries.begin(), report.entries.end(),
                   [](const CompareEntry& a, const CompareEntry& b) {
                     return status_rank(a.status) < status_rank(b.status);
                   });
  return report;
}

// ---------------------------------------------------------------- renderers

std::string to_text(const CompareReport& report, bool color) {
  const char* red = color ? "\x1b[31m" : "";
  const char* green = color ? "\x1b[32m" : "";
  const char* yellow = color ? "\x1b[33m" : "";
  const char* reset = color ? "\x1b[0m" : "";
  std::string out = "regression doctor: " + std::to_string(report.compared) +
                    " metrics compared — " +
                    std::to_string(report.regressions) + " regression(s), " +
                    std::to_string(report.improvements) +
                    " improvement(s), " + std::to_string(report.missing) +
                    " missing\n";
  std::size_t shown_ok = 0;
  std::size_t shown_info = 0;
  std::size_t shown_new = 0;
  for (const CompareEntry& entry : report.entries) {
    switch (entry.status) {
      case Status::kOk: ++shown_ok; continue;
      case Status::kInfo: ++shown_info; continue;
      case Status::kNew: ++shown_new; continue;
      default: break;
    }
    const char* tint = entry.status == Status::kRegression  ? red
                       : entry.status == Status::kImprovement ? green
                                                              : yellow;
    out += std::string("  [") + tint + status_name(entry.status) + reset +
           "] " + entry.source + "/" + entry.key + " " + entry.metric;
    if (entry.status == Status::kMissing) {
      out += ": baseline " + f6(entry.baseline) + ", absent in candidate\n";
    } else {
      out += ": " + f6(entry.baseline) + " -> " + f6(entry.candidate) +
             " (x" + f6(entry.ratio) + ")\n";
    }
  }
  out += "  " + std::to_string(shown_ok) + " ok, " +
         std::to_string(shown_info) + " informational, " +
         std::to_string(shown_new) + " new\n";
  out += report.ok() ? "PASS: no regressions against baseline\n"
                     : "FAIL: candidate regressed against baseline\n";
  return out;
}

std::string to_json(const CompareReport& report) {
  std::string out =
      "{\"summary\": {\"compared\": " + std::to_string(report.compared) +
      ", \"regressions\": " + std::to_string(report.regressions) +
      ", \"improvements\": " + std::to_string(report.improvements) +
      ", \"missing\": " + std::to_string(report.missing) +
      ", \"ok\": " + (report.ok() ? "true" : "false") + "}, \"entries\": [\n";
  for (std::size_t i = 0; i < report.entries.size(); ++i) {
    const CompareEntry& entry = report.entries[i];
    if (i > 0) out += ",\n";
    out += "  {\"source\": ";
    append_json_string(out, entry.source);
    out += ", \"key\": ";
    append_json_string(out, entry.key);
    out += ", \"metric\": ";
    append_json_string(out, entry.metric);
    out += ", \"baseline\": " + f17(entry.baseline) +
           ", \"candidate\": " + f17(entry.candidate) +
           ", \"ratio\": " + f17(entry.ratio) + ", \"status\": ";
    append_json_string(out, status_name(entry.status));
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

std::string to_html(const CompareReport& report) {
  std::string body = "<h2>summary</h2>\n<p class=\"sum\">" +
                     std::to_string(report.compared) +
                     " metrics compared · <b class=\"regression\">" +
                     std::to_string(report.regressions) +
                     " regression(s)</b> · " +
                     std::to_string(report.improvements) +
                     " improvement(s) · " + std::to_string(report.missing) +
                     " missing — " +
                     (report.ok() ? "<b>PASS</b>" : "<b>FAIL</b>") + "</p>\n";
  body += "<h2>entries</h2>\n<table>\n<tr><th>status</th><th>source</th>"
          "<th>key</th><th>metric</th><th>baseline</th><th>candidate</th>"
          "<th>ratio</th></tr>\n";
  for (const CompareEntry& entry : report.entries) {
    if (entry.status == Status::kOk) continue;  // table stays readable
    body += "<tr class=\"" + std::string(status_name(entry.status)) +
            "\"><td>" + status_name(entry.status) + "</td><td>" +
            html_escape(entry.source) + "</td><td>" + html_escape(entry.key) +
            "</td><td>" + html_escape(entry.metric) + "</td><td>" +
            f6(entry.baseline) + "</td><td>" + f6(entry.candidate) +
            "</td><td>" + f6(entry.ratio) + "</td></tr>\n";
  }
  body += "</table>\n<p class=\"sum\">" +
          std::to_string(static_cast<long>(report.entries.size())) +
          " entries total; rows within thresholds omitted</p>\n";
  return "<!doctype html>\n<html><head><meta charset=\"utf-8\">"
         "<title>mrmc regression doctor</title>\n<style>\n"
         "body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;"
         "max-width:920px;color:#202124}\n"
         "table{border-collapse:collapse;width:100%}\n"
         "th,td{border:1px solid #dadce0;padding:.25em .5em;"
         "text-align:left;font:12px monospace}\n"
         ".sum{color:#5f6368}\n"
         "tr.regression,b.regression{color:#c5221f}\n"
         "tr.improvement{color:#137333}\ntr.missing{color:#b06000}\n"
         "tr.new,tr.info{color:#5f6368}\n"
         "</style></head><body>\n<h1>mrmc regression doctor</h1>\n" +
         body + "</body></html>\n";
}

}  // namespace mrmc::obs::regress

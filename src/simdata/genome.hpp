// Synthetic genome models.  The paper's benchmarks mix reads from real
// genomes whose relevant properties are (a) GC content, (b) pairwise
// sequence divergence scaled by taxonomic distance, and (c) length.  We
// reproduce those knobs: iid/GC-controlled base generation plus
// ancestor-derived mutation so that two "species of the same genus" share
// more k-mers than two "orders apart" (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mrmc::simdata {

/// Taxonomic separation between two genomes, ordered from closest to
/// farthest.  Values follow Table II's "Taxonomic Difference" column.
enum class TaxonRank : int {
  kStrain = 0,
  kSpecies = 1,
  kGenus = 2,
  kFamily = 3,
  kOrder = 4,
  kPhylum = 5,
  kKingdom = 6,
};

[[nodiscard]] const char* taxon_rank_name(TaxonRank rank) noexcept;

/// Approximate per-base substitution divergence between two genomes
/// separated at `rank` (each derived from the common ancestor with half of
/// this divergence).  Values chosen so k-mer Jaccard ordering matches
/// published whole-genome ANI ranges: species ~0.04 ... kingdom ~0.60.
[[nodiscard]] double taxon_divergence(TaxonRank rank) noexcept;

struct Genome {
  std::string name;
  std::string seq;

  [[nodiscard]] double gc() const noexcept;
};

/// iid genome with expected GC fraction `gc` (P(G)=P(C)=gc/2).
Genome random_genome(std::string name, std::size_t length, double gc,
                     std::uint64_t seed);

/// Derive a genome from `parent` with per-base substitution rate
/// `subst_rate` and per-base indel rate `indel_rate`.  Substitutions respect
/// the parent's GC content in expectation (a substituted base is drawn from
/// the same GC-weighted distribution, excluding the original base).
Genome mutate_genome(const Genome& parent, std::string name, double subst_rate,
                     double indel_rate, std::uint64_t seed);

/// A family of genomes at a given taxonomic separation: generates a common
/// ancestor, then derives `count` descendants each `taxon_divergence(rank)/2`
/// away from it.  Each descendant's GC content can be nudged toward a target
/// by biased substitution.
std::vector<Genome> related_genomes(const std::string& base_name, std::size_t count,
                                    std::size_t length, double ancestor_gc,
                                    TaxonRank rank, std::uint64_t seed);

/// Order-`kOrder` Markov composition model of a genome.  Real genomes carry
/// strong species-specific oligonucleotide composition (codon usage, GC
/// skew, restriction-site avoidance), which is the signal composition-based
/// binning — and k-mer-set similarity between non-overlapping reads of the
/// same genome — actually exploits.  Transition rows are Dirichlet-sampled
/// (sparse at low concentration), and a child model diverges from its
/// parent by re-mixing each row toward a freshly drawn one with weight
/// proportional to the branch length.
class MarkovGenomeModel {
 public:
  static constexpr int kOrder = 3;
  static constexpr std::size_t kContexts = 64;  ///< 4^kOrder

  /// Fresh model: rows ~ Dirichlet(concentration), base weights biased so
  /// the stationary GC fraction approximates `gc`.
  MarkovGenomeModel(double gc, double concentration, std::uint64_t seed);

  /// Diverged child: each context row mixes toward a freshly drawn row with
  /// weight `mix` in [0, 1] (0 = identical composition, 1 = unrelated).
  [[nodiscard]] MarkovGenomeModel derive_child(double mix, std::uint64_t seed) const;

  /// Sample a genome of `length` bases from the model.
  [[nodiscard]] Genome sample(std::string name, std::size_t length,
                              std::uint64_t seed) const;

  /// Transition probability P(base | context); context packs kOrder bases
  /// 2 bits each.
  [[nodiscard]] double probability(std::size_t context, int base) const noexcept {
    return rows_[context][static_cast<std::size_t>(base)];
  }

 private:
  MarkovGenomeModel() = default;
  // rows_[context][base]
  double rows_[kContexts][4] = {};
  double gc_ = 0.5;
};

/// Mapping from a phylogenetic branch length (per-base divergence from the
/// common ancestor) to the Markov-row mix weight used by derive_child:
/// composition diverges ~3x faster than point divergence, saturating at 0.95.
double branch_to_composition_mix(double branch) noexcept;

}  // namespace mrmc::simdata

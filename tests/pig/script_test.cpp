#include "pig/script.hpp"

#include <gtest/gtest.h>

#include <map>

#include "bio/fasta.hpp"
#include "common/error.hpp"
#include "simdata/datasets.hpp"

namespace mrmc::pig {
namespace {

// --------------------------------------------------------------------- parse

TEST(ParseScript, LoadStatement) {
  const auto statements = parse_script("A = LOAD '/in.fa' USING FastaStorage;");
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_EQ(statements[0].kind, Statement::Kind::kLoad);
  EXPECT_EQ(statements[0].target, "A");
  EXPECT_EQ(statements[0].source, "/in.fa");
}

TEST(ParseScript, ForeachWithFlattenAndArgs) {
  const auto statements = parse_script(
      "C = FOREACH B GENERATE FLATTEN(TranslateToKmer(seq, seqid, 15));");
  ASSERT_EQ(statements.size(), 1u);
  const auto& s = statements[0];
  EXPECT_EQ(s.kind, Statement::Kind::kForeach);
  EXPECT_EQ(s.source, "B");
  EXPECT_EQ(s.udf_name, "TranslateToKmer");
  ASSERT_EQ(s.udf_args.size(), 3u);
  EXPECT_EQ(s.udf_args[2], "15");
  EXPECT_FALSE(s.inner_group_all);
}

TEST(ParseScript, ForeachOverInlineGroupAll) {
  const auto statements = parse_script(
      "K = FOREACH (GROUP J ALL) GENERATE FLATTEN(GreedyClustering(F, 50, 0.3));");
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_TRUE(statements[0].inner_group_all);
  EXPECT_EQ(statements[0].source, "J");
}

TEST(ParseScript, GroupDistinctOrderLimitFilterStore) {
  const auto statements = parse_script(R"(
    I = GROUP E ALL;
    D = DISTINCT A;
    O = ORDER A BY $1 DESC;
    M = LIMIT A 5;
    F = FILTER A BY $0 >= 2.5;
    STORE K INTO '/out';
  )");
  ASSERT_EQ(statements.size(), 6u);
  EXPECT_EQ(statements[0].kind, Statement::Kind::kGroupAll);
  EXPECT_EQ(statements[1].kind, Statement::Kind::kDistinct);
  EXPECT_EQ(statements[2].kind, Statement::Kind::kOrderBy);
  EXPECT_EQ(statements[2].field, 1u);
  EXPECT_TRUE(statements[2].descending);
  EXPECT_EQ(statements[3].kind, Statement::Kind::kLimit);
  EXPECT_DOUBLE_EQ(statements[3].literal, 5.0);
  EXPECT_EQ(statements[4].kind, Statement::Kind::kFilter);
  EXPECT_EQ(statements[4].comparison, ">=");
  EXPECT_DOUBLE_EQ(statements[4].literal, 2.5);
  EXPECT_EQ(statements[5].kind, Statement::Kind::kStore);
  EXPECT_EQ(statements[5].udf_name, "/out");
}

TEST(ParseScript, CommentsAndBlankLinesIgnored) {
  const auto statements = parse_script(
      "-- a comment\n\nA = LOAD '/x'; -- trailing comment\n");
  ASSERT_EQ(statements.size(), 1u);
}

TEST(ParseScript, SyntaxErrorsCarryLineNumbers) {
  try {
    parse_script("A = LOAD '/x';\nB = BOGUS A;\n");
    FAIL() << "must throw";
  } catch (const common::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(parse_script("STORE K SOMEWHERE"), common::InvalidArgument);
  EXPECT_THROW(parse_script("A = LOAD unquoted"), common::InvalidArgument);
  EXPECT_THROW(parse_script("A = FOREACH B NOGEN X()"), common::InvalidArgument);
}

// ------------------------------------------------------------- substitution

TEST(SubstituteParameters, ReplacesAllOccurrences) {
  const auto out = substitute_parameters(
      "LOAD '$INPUT' ... $KMER and $KMER",
      {{"INPUT", "/a.fa"}, {"KMER", "15"}});
  EXPECT_EQ(out, "LOAD '/a.fa' ... 15 and 15");
}

TEST(SubstituteParameters, LongestNameWins) {
  const auto out = substitute_parameters("$OUTPUT1 vs $OUTPUT",
                                         {{"OUTPUT", "/o"}, {"OUTPUT1", "/o1"}});
  EXPECT_EQ(out, "/o1 vs /o");
}

TEST(SubstituteParameters, UnresolvedParameterThrows) {
  EXPECT_THROW(substitute_parameters("$MISSING", {}), common::InvalidArgument);
  // Field references like $0 are fine.
  EXPECT_NO_THROW(substitute_parameters("ORDER A BY $0", {}));
}

// ------------------------------------------------------------------ execute

mr::SimDfs make_dfs_with_sample(const simdata::LabeledReads& sample) {
  mr::SimDfs dfs({.nodes = 4, .block_size = 8192, .replication = 2});
  dfs.write("/in.fa", bio::write_fasta_string(sample.reads));
  return dfs;
}

TEST(RunScript, Algorithm3TextMatchesBuiltInRunner) {
  const auto sample = simdata::build_whole_metagenome(
      simdata::whole_metagenome_spec("S6"), {.reads = 30, .seed = 21});
  auto dfs = make_dfs_with_sample(sample);

  PigContext script_ctx(&dfs, {.nodes = 4});
  const auto script_result = run_script(
      script_ctx, algorithm3_script(),
      {{"INPUT", "/in.fa"}, {"KMER", "5"}, {"NUMHASH", "64"}, {"DIV", "0"},
       {"LINK", "average"}, {"CUTOFF", "0.5"},
       {"OUTPUT1", "/out1"}, {"OUTPUT2", "/out2"}},
      /*udf_seed=*/3);

  Algorithm3Params params;
  params.kmer = 5;
  params.num_hashes = 64;
  params.seed = 3;
  params.cutoff = 0.5;
  auto dfs2 = make_dfs_with_sample(sample);
  const auto built_in = run_algorithm3(dfs2, "/in.fa", "/h", "/g", params);

  // Same jobs, same stored outputs.
  EXPECT_EQ(script_result.jobs_run, 8u);
  EXPECT_EQ(dfs.read("/out1"), dfs2.read("/h"));
  EXPECT_EQ(dfs.read("/out2"), dfs2.read("/g"));
  EXPECT_EQ(script_result.stored_paths,
            (std::vector<std::string>{"/out1", "/out2"}));
}

TEST(RunScript, LshPairwiseSimilarityWordMatchesExactOnSmallSample) {
  // The `lsh` extension word routes CalculatePairwiseSimilarity through the
  // banded candidate backend.  On a small well-separated sample every >= θ
  // pair is recovered, so the downstream clustering output is unchanged.
  const auto sample = simdata::build_whole_metagenome(
      simdata::whole_metagenome_spec("S6"), {.reads = 30, .seed = 21});
  const char* script_template = R"(
A = LOAD '$INPUT' USING FastaStorage;
B = FOREACH A GENERATE FLATTEN(StringGenerator(seq, readid));
C = FOREACH B GENERATE FLATTEN(TranslateToKmer(seq, seqid, 5));
E = FOREACH C GENERATE FLATTEN(CalculateMinwiseHash(seqkmer, seqid2, 64, 0));
I = GROUP E ALL;
J = FOREACH I GENERATE FLATTEN(CalculatePairwiseSimilarity(minwise, F$EXTRA));
K = FOREACH (GROUP J ALL) GENERATE FLATTEN(AgglomerativeHierarchicalClustering(similaritymatrix, average, 0.5));
STORE K INTO '/out';
)";
  auto exact_dfs = make_dfs_with_sample(sample);
  PigContext exact_ctx(&exact_dfs, {.nodes = 4});
  run_script(exact_ctx, script_template,
             {{"INPUT", "/in.fa"}, {"EXTRA", ""}}, /*udf_seed=*/3);

  auto lsh_dfs = make_dfs_with_sample(sample);
  PigContext lsh_ctx(&lsh_dfs, {.nodes = 4});
  run_script(lsh_ctx, script_template,
             {{"INPUT", "/in.fa"}, {"EXTRA", ", lsh, 0.5"}}, /*udf_seed=*/3);

  EXPECT_EQ(lsh_dfs.read("/out"), exact_dfs.read("/out"));
}

TEST(RunScript, CMinHashWordSelectsTheScheme) {
  // The `cminhash` extension word on CalculateMinwiseHash swaps in the
  // C-MinHash family; the script output must match the UDF built with the
  // scheme directly (and differ from the universal-family sketches).
  const auto sample = simdata::build_whole_metagenome(
      simdata::whole_metagenome_spec("S6"), {.reads = 20, .seed = 9});
  const char* script_template = R"(
A = LOAD '$INPUT' USING FastaStorage;
B = FOREACH A GENERATE FLATTEN(StringGenerator(seq, readid));
C = FOREACH B GENERATE FLATTEN(TranslateToKmer(seq, seqid, 5));
E = FOREACH C GENERATE FLATTEN(CalculateMinwiseHash(seqkmer, seqid2, 32, 0$EXTRA));
I = GROUP E ALL;
J = FOREACH I GENERATE FLATTEN(CalculatePairwiseSimilarity(minwise, F));
K = FOREACH (GROUP J ALL) GENERATE FLATTEN(AgglomerativeHierarchicalClustering(similaritymatrix, average, 0.5));
STORE K INTO '/out';
)";
  auto universal_dfs = make_dfs_with_sample(sample);
  PigContext universal_ctx(&universal_dfs, {.nodes = 2});
  run_script(universal_ctx, script_template,
             {{"INPUT", "/in.fa"}, {"EXTRA", ""}}, /*udf_seed=*/3);

  auto cmin_dfs = make_dfs_with_sample(sample);
  PigContext cmin_ctx(&cmin_dfs, {.nodes = 2});
  const auto cmin_result =
      run_script(cmin_ctx, script_template,
                 {{"INPUT", "/in.fa"}, {"EXTRA", ", cminhash"}},
                 /*udf_seed=*/3);

  // Different hash family, different sketches — but the same reads still
  // cluster into a sane partition stored at /out, deterministically.
  EXPECT_FALSE(cmin_result.relations.at("K").empty());
  EXPECT_NE(cmin_dfs.read("/out"), "");

  auto again_dfs = make_dfs_with_sample(sample);
  PigContext again_ctx(&again_dfs, {.nodes = 2});
  run_script(again_ctx, script_template,
             {{"INPUT", "/in.fa"}, {"EXTRA", ", cminhash"}}, /*udf_seed=*/3);
  EXPECT_EQ(again_dfs.read("/out"), cmin_dfs.read("/out"));
}

TEST(RunScript, RelationalOperators) {
  // Build a tiny FASTA, load it, and exercise DISTINCT / ORDER / LIMIT /
  // FILTER on the clustering output (label field 1 is numeric).
  const std::vector<bio::FastaRecord> reads{
      {"a", "a", "ACGTACGTACGTACGT"}, {"b", "b", "ACGTACGTACGTACGT"},
      {"c", "c", "TTTTGGGGCCCCAAAA"}};
  mr::SimDfs dfs({.nodes = 2, .block_size = 8192});
  dfs.write("/r.fa", bio::write_fasta_string(reads));

  PigContext ctx(&dfs, {.nodes = 2});
  const auto result = run_script(ctx, R"(
A = LOAD '/r.fa' USING FastaStorage;
B = FOREACH A GENERATE FLATTEN(StringGenerator(seq, readid));
C = FOREACH B GENERATE FLATTEN(TranslateToKmer(seq, seqid, 4));
E = FOREACH C GENERATE FLATTEN(CalculateMinwiseHash(kmers, id, 16, 0));
L = FOREACH (GROUP E ALL) GENERATE FLATTEN(GreedyClustering(F, 16, 0.5));
D = DISTINCT L;
O = ORDER L BY $1 DESC;
M = LIMIT O 2;
F = FILTER L BY $1 == 0;
STORE M INTO '/m';
)");

  const auto& labels = result.relations.at("L");
  ASSERT_EQ(labels.size(), 3u);
  // a and b identical -> same label; c different.
  EXPECT_EQ(labels[0].get<long>(1), labels[1].get<long>(1));
  EXPECT_NE(labels[0].get<long>(1), labels[2].get<long>(1));

  EXPECT_EQ(result.relations.at("D").size(), 3u);  // distinct (id,label) rows
  const auto& ordered = result.relations.at("O");
  EXPECT_GE(ordered[0].get<long>(1), ordered[2].get<long>(1));
  EXPECT_EQ(result.relations.at("M").size(), 2u);
  EXPECT_EQ(result.relations.at("F").size(), 2u);  // label 0 = {a, b}
  EXPECT_TRUE(dfs.exists("/m"));
}

TEST(RunScript, DistinctRemovesDuplicateTuples) {
  const std::vector<bio::FastaRecord> reads{{"x", "x", "ACGTACGT"},
                                            {"x2", "x2", "ACGTACGT"}};
  mr::SimDfs dfs({.nodes = 2, .block_size = 8192});
  dfs.write("/r.fa", bio::write_fasta_string(reads));
  PigContext ctx(&dfs, {.nodes = 2});
  const auto result = run_script(ctx, R"(
A = LOAD '/r.fa' USING FastaStorage;
B = FOREACH A GENERATE FLATTEN(StringGenerator(seq, readid));
C = FOREACH B GENERATE FLATTEN(TranslateToKmer(seq, seqid, 4));
D = DISTINCT C;
)");
  // Identical sequences produce identical k-mer tuples except the id field,
  // so DISTINCT keeps both.
  EXPECT_EQ(result.relations.at("D").size(), 2u);
}

TEST(RunScript, UnknownAliasAndUdfThrow) {
  mr::SimDfs dfs({.nodes = 2});
  PigContext ctx(&dfs, {.nodes = 2});
  EXPECT_THROW(run_script(ctx, "B = DISTINCT MISSING;"), common::InvalidArgument);
  dfs.write("/r.fa", ">a\nACGT\n");
  PigContext ctx2(&dfs, {.nodes = 2});
  EXPECT_THROW(run_script(ctx2, R"(
A = LOAD '/r.fa';
B = FOREACH A GENERATE FLATTEN(NoSuchUdf(x));
)"),
               common::InvalidArgument);
}

}  // namespace
}  // namespace mrmc::pig

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "pig/pig.hpp"
#include "pig/script.hpp"

namespace mrmc::pig {
namespace {

Relation label_relation() {
  // (id:string, label:long) rows like the clustering output.
  Relation relation;
  const std::vector<std::pair<std::string, long>> rows = {
      {"r0", 0}, {"r1", 1}, {"r2", 0}, {"r3", 2}, {"r4", 1}, {"r5", 0}};
  for (const auto& [id, label] : rows) {
    Tuple tuple;
    tuple.fields.emplace_back(id);
    tuple.fields.emplace_back(label);
    relation.push_back(std::move(tuple));
  }
  return relation;
}

TEST(GroupBy, GroupsByLongFieldOrderedByKey) {
  mr::SimDfs dfs({.nodes = 4});
  PigContext ctx(&dfs, {.nodes = 4});
  const Relation grouped = ctx.group_by(label_relation(), 1);
  ASSERT_EQ(grouped.size(), 3u);
  EXPECT_EQ(grouped[0].get<long>(0), 0);
  EXPECT_EQ(grouped[0].get<Bag>(1).size(), 3u);
  EXPECT_EQ(grouped[1].get<long>(0), 1);
  EXPECT_EQ(grouped[1].get<Bag>(1).size(), 2u);
  EXPECT_EQ(grouped[2].get<long>(0), 2);
  EXPECT_EQ(grouped[2].get<Bag>(1).size(), 1u);
}

TEST(GroupBy, BagPreservesInputOrder) {
  mr::SimDfs dfs({.nodes = 4});
  PigContext ctx(&dfs, {.nodes = 4});
  const Relation grouped = ctx.group_by(label_relation(), 1);
  const Bag& label0 = grouped[0].get<Bag>(1);
  EXPECT_EQ(label0[0].get<std::string>(0), "r0");
  EXPECT_EQ(label0[1].get<std::string>(0), "r2");
  EXPECT_EQ(label0[2].get<std::string>(0), "r5");
}

TEST(GroupBy, GroupsByStringField) {
  mr::SimDfs dfs({.nodes = 4});
  PigContext ctx(&dfs, {.nodes = 4});
  Relation relation;
  for (const char* site : {"deep", "shallow", "deep"}) {
    Tuple tuple;
    tuple.fields.emplace_back(std::string(site));
    relation.push_back(std::move(tuple));
  }
  const Relation grouped = ctx.group_by(relation, 0);
  ASSERT_EQ(grouped.size(), 2u);
  EXPECT_EQ(grouped[0].get<std::string>(0), "deep");
  EXPECT_EQ(grouped[0].get<Bag>(1).size(), 2u);
}

TEST(GroupBy, RejectsBagFieldAndBadIndex) {
  mr::SimDfs dfs({.nodes = 2});
  PigContext ctx(&dfs, {.nodes = 2});
  Relation relation;
  Tuple tuple;
  tuple.fields.emplace_back(Bag{});
  relation.push_back(std::move(tuple));
  EXPECT_THROW(ctx.group_by(relation, 0), common::InvalidArgument);
  EXPECT_THROW(ctx.group_by(relation, 5), common::InvalidArgument);
}

TEST(GroupBy, RunsAsARealMapReduceJob) {
  mr::SimDfs dfs({.nodes = 4});
  PigContext ctx(&dfs, {.nodes = 4});
  ctx.group_by(label_relation(), 1);
  ASSERT_EQ(ctx.job_history().size(), 1u);
  const auto& stats = ctx.job_history().front();
  EXPECT_EQ(stats.input_records, 6u);
  EXPECT_EQ(stats.reduce_groups, 3u);
  EXPECT_GT(stats.shuffle_bytes, 0.0);
}

TEST(GroupBy, ScriptStatementParsesAndRuns) {
  const auto statements = parse_script("G = GROUP L BY $1;");
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_EQ(statements[0].kind, Statement::Kind::kGroupBy);
  EXPECT_EQ(statements[0].field, 1u);

  // Through the interpreter: cluster two duplicate reads, group by label.
  mr::SimDfs dfs({.nodes = 2, .block_size = 8192});
  dfs.write("/r.fa", ">a\nACGTACGTACGT\n>b\nACGTACGTACGT\n>c\nTTTTGGGGCCCC\n");
  PigContext ctx(&dfs, {.nodes = 2});
  const auto result = run_script(ctx, R"(
A = LOAD '/r.fa' USING FastaStorage;
B = FOREACH A GENERATE FLATTEN(StringGenerator(seq, readid));
C = FOREACH B GENERATE FLATTEN(TranslateToKmer(seq, seqid, 4));
E = FOREACH C GENERATE FLATTEN(CalculateMinwiseHash(kmers, id, 16, 0));
L = FOREACH (GROUP E ALL) GENERATE FLATTEN(GreedyClustering(F, 16, 0.5));
G = GROUP L BY $1;
)");
  const auto& grouped = result.relations.at("G");
  ASSERT_EQ(grouped.size(), 2u);  // two clusters: {a,b} and {c}
  EXPECT_EQ(grouped[0].get<Bag>(1).size() + grouped[1].get<Bag>(1).size(), 3u);
}

}  // namespace
}  // namespace mrmc::pig

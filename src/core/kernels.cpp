#include "core/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <string_view>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MRMC_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace mrmc::core::kernels {

namespace {

using detail::cw_hash;
using detail::mod_mersenne61;

/// Accumulator start for the minimum scan: above every possible hash value
/// (h < p <= 2^61) yet positive as a signed 64-bit integer, so the AVX2
/// signed compares are valid.  Distinct from kEmptyFeatureMin, which is only
/// written for empty feature sets.
constexpr std::uint64_t kMinSentinel = std::uint64_t{1} << 62;

constexpr bool is_pow2(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

// ------------------------------------------------------------------ dispatch

// -1 = no override; otherwise a Backend value forced by ScopedBackendOverride.
std::atomic<int> g_backend_override{-1};

Backend detect_backend() noexcept {
  if (const char* force = std::getenv("MRMC_FORCE_SCALAR");
      force != nullptr && *force != '\0' && std::string_view(force) != "0") {
    return Backend::kScalar;
  }
  return backend_available(Backend::kAvx2) ? Backend::kAvx2 : Backend::kScalar;
}

// ------------------------------------------------------------- scalar kernels

/// Hash-outer / feature-inner minwise scan, 4-way unrolled so the four
/// Mersenne-61 reductions pipeline: a_i/b_i stay in registers for the whole
/// feature stream instead of being reloaded per (feature × hash).
void min_sketch_scalar(std::span<const std::uint64_t> mul,
                       std::span<const std::uint64_t> add,
                       std::uint64_t modulus,
                       std::span<const std::uint64_t> features,
                       std::span<std::uint64_t> out) {
  const std::uint64_t* f = features.data();
  const std::size_t nf = features.size();
  for (std::size_t i = 0; i < mul.size(); ++i) {
    const std::uint64_t a = mul[i];
    const std::uint64_t b = add[i];
    std::uint64_t m0 = kMinSentinel, m1 = kMinSentinel;
    std::uint64_t m2 = kMinSentinel, m3 = kMinSentinel;
    std::size_t j = 0;
    if (modulus == 0) {
      for (; j + 4 <= nf; j += 4) {
        m0 = std::min(m0, cw_hash(a, b, f[j + 0]));
        m1 = std::min(m1, cw_hash(a, b, f[j + 1]));
        m2 = std::min(m2, cw_hash(a, b, f[j + 2]));
        m3 = std::min(m3, cw_hash(a, b, f[j + 3]));
      }
      for (; j < nf; ++j) m0 = std::min(m0, cw_hash(a, b, f[j]));
    } else {
      for (; j + 4 <= nf; j += 4) {
        m0 = std::min(m0, cw_hash(a, b, f[j + 0]) % modulus);
        m1 = std::min(m1, cw_hash(a, b, f[j + 1]) % modulus);
        m2 = std::min(m2, cw_hash(a, b, f[j + 2]) % modulus);
        m3 = std::min(m3, cw_hash(a, b, f[j + 3]) % modulus);
      }
      for (; j < nf; ++j) m0 = std::min(m0, cw_hash(a, b, f[j]) % modulus);
    }
    out[i] = std::min(std::min(m0, m1), std::min(m2, m3));
  }
}

std::size_t count_equal_scalar(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t n) noexcept {
  std::size_t matches = 0;
  for (std::size_t i = 0; i < n; ++i) matches += a[i] == b[i] ? 1 : 0;
  return matches;
}

/// s < 2p -> exact residue via one conditional subtract.
inline std::uint64_t fold61(std::uint64_t s) noexcept {
  return s >= kMersenne61 ? s - kMersenne61 : s;
}

/// C-MinHash pass 2 over premultiplied residues t[j] = (A·x_j) mod p: for
/// each hash k, out[k] = min_j mix((t[j] + B_k) mod p) [% modulus].  Both
/// addends are < p, so the sum fits u64 and fold61 finishes the reduction.
/// The fold is NOT removable as an optimization: its conditional subtract
/// is the only *data-dependent* nonlinearity between slots — without it
/// slot k is the pure translation t + B_k and the scramble alone leaves
/// the K orderings correlated (measurably biased estimates, seed-unstable
/// clustering).  detail::cmin_mix64 (π's order-scrambling role) costs the
/// only multiply in the inner loop — still far cheaper than the
/// per-(feature × hash) Mersenne-61 product of the universal family
/// (pass 1 amortized that over all K hashes).
void cmin_sketch_scalar(std::span<const std::uint64_t> premul,
                        std::span<const std::uint64_t> add,
                        std::uint64_t modulus,
                        std::span<std::uint64_t> out) {
  const std::uint64_t* t = premul.data();
  const std::size_t nf = premul.size();
  for (std::size_t k = 0; k < add.size(); ++k) {
    const std::uint64_t b = add[k];
    // Mixed values span all of u64, so the accumulators start at the u64
    // maximum (kMinSentinel = 2^62 only bounds unmixed residues).
    std::uint64_t m0 = kEmptyFeatureMin, m1 = kEmptyFeatureMin;
    std::uint64_t m2 = kEmptyFeatureMin, m3 = kEmptyFeatureMin;
    std::size_t j = 0;
    if (modulus == 0) {
      for (; j + 4 <= nf; j += 4) {
        m0 = std::min(m0, detail::cmin_mix64(fold61(t[j + 0] + b)));
        m1 = std::min(m1, detail::cmin_mix64(fold61(t[j + 1] + b)));
        m2 = std::min(m2, detail::cmin_mix64(fold61(t[j + 2] + b)));
        m3 = std::min(m3, detail::cmin_mix64(fold61(t[j + 3] + b)));
      }
      for (; j < nf; ++j) m0 = std::min(m0, detail::cmin_mix64(fold61(t[j] + b)));
    } else {
      for (; j + 4 <= nf; j += 4) {
        m0 = std::min(m0, detail::cmin_mix64(fold61(t[j + 0] + b)) % modulus);
        m1 = std::min(m1, detail::cmin_mix64(fold61(t[j + 1] + b)) % modulus);
        m2 = std::min(m2, detail::cmin_mix64(fold61(t[j + 2] + b)) % modulus);
        m3 = std::min(m3, detail::cmin_mix64(fold61(t[j + 3] + b)) % modulus);
      }
      for (; j < nf; ++j) {
        m0 = std::min(m0, detail::cmin_mix64(fold61(t[j] + b)) % modulus);
      }
    }
    out[k] = std::min(std::min(m0, m1), std::min(m2, m3));
  }
}

/// Lane-LSB mask for b-bit SWAR: bit set at positions 0, b, 2b, ...
constexpr std::uint64_t packed_lsb_mask(std::size_t bits) noexcept {
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < 64; i += bits) mask |= std::uint64_t{1} << i;
  return mask;
}

/// Differing lanes between two packed rows: XOR, OR-fold each lane onto its
/// LSB (shifts stay inside the lane because bits divides 64), popcount the
/// lane LSBs.  Pad lanes are zero on both sides, so they never count.
std::size_t count_diff_packed_scalar(const std::uint64_t* a,
                                     const std::uint64_t* b,
                                     std::size_t words, std::size_t bits,
                                     std::uint64_t lsb) noexcept {
  std::size_t diff = 0;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t x = a[w] ^ b[w];
    for (std::size_t shift = bits >> 1; shift != 0; shift >>= 1) {
      x |= x >> shift;
    }
    diff += static_cast<std::size_t>(__builtin_popcountll(x & lsb));
  }
  return diff;
}

std::size_t argmin_scalar(std::span<const double> row) noexcept {
  std::size_t best = row.size();
  double best_value = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i] < best_value) {
      best_value = row[i];
      best = i;
    }
  }
  // All-inf rows have no strict improvement; report the first slot so both
  // backends agree (callers treat an inf minimum as "no active neighbour").
  return best == row.size() && !row.empty() ? 0 : best;
}

// --------------------------------------------------------------- AVX2 kernels
#if MRMC_KERNELS_X86

/// Fold a raw feature into [0, p): (a·x) ≡ (a·(x mod p)) (mod p), and the
/// reduced x fits the 29/32-bit limb bounds the vector multiply needs.
inline std::uint64_t reduce61(std::uint64_t x) noexcept {
  std::uint64_t r = (x & kMersenne61) + (x >> 61);  // < 2^61 + 8
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

/// 4 hash lanes per feature broadcast.  Each 64-bit lane computes the exact
/// residue (a·x + b) mod p via 32-bit limb products:
///   a·x = a_hi·x_hi·2^64 + (a_hi·x_lo + a_lo·x_hi)·2^32 + a_lo·x_lo
/// with x pre-reduced below 2^61 so a_hi < 2^29, x_hi < 2^29 keep every
/// partial sum below 2^63 (no lane overflow).  2^64 ≡ 8 and
/// t·2^32 ≡ (t >> 29) + (t mod 2^29)·2^32 (mod p) collapse the limbs, then a
/// single fold + compare-subtract completes the exact reduction — the same
/// residue the scalar path computes, hence bit-identical sketches.
__attribute__((target("avx2"))) void min_sketch_avx2(
    std::span<const std::uint64_t> mul, std::span<const std::uint64_t> add,
    std::uint64_t modulus, std::span<const std::uint64_t> features,
    std::span<std::uint64_t> out, std::span<const std::uint64_t> reduced) {
  const __m256i p = _mm256_set1_epi64x(static_cast<long long>(kMersenne61));
  const __m256i low32 = _mm256_set1_epi64x(0xffffffffLL);
  const __m256i mask29 = _mm256_set1_epi64x((1LL << 29) - 1);
  const __m256i sentinel =
      _mm256_set1_epi64x(static_cast<long long>(kMinSentinel));
  const bool has_mod = modulus != 0;  // pow2-only in this path
  const __m256i mod_mask =
      _mm256_set1_epi64x(static_cast<long long>(modulus - 1));

  const std::size_t nh = mul.size();
  std::size_t i = 0;
  for (; i + 4 <= nh; i += 4) {
    const __m256i a = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(mul.data() + i));
    const __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(add.data() + i));
    const __m256i a_lo = _mm256_and_si256(a, low32);
    const __m256i a_hi = _mm256_srli_epi64(a, 32);

    __m256i best = sentinel;
    for (const std::uint64_t x : reduced) {
      const __m256i vx = _mm256_set1_epi64x(static_cast<long long>(x));
      const __m256i x_lo = _mm256_and_si256(vx, low32);
      const __m256i x_hi = _mm256_srli_epi64(vx, 32);

      const __m256i t0 = _mm256_mul_epu32(a_lo, x_lo);  // < 2^64
      const __m256i t1 = _mm256_add_epi64(_mm256_mul_epu32(a_hi, x_lo),
                                          _mm256_mul_epu32(a_lo, x_hi));
      const __m256i t2 = _mm256_mul_epu32(a_hi, x_hi);  // < 2^58

      // c0 = t0 mod-folded; c1 = t1·2^32 mod p; c2 = t2·2^64 mod p = t2·8.
      const __m256i c0 = _mm256_add_epi64(_mm256_and_si256(t0, p),
                                          _mm256_srli_epi64(t0, 61));
      const __m256i c1 = _mm256_add_epi64(
          _mm256_srli_epi64(t1, 29),
          _mm256_slli_epi64(_mm256_and_si256(t1, mask29), 32));
      const __m256i c2 = _mm256_slli_epi64(t2, 3);

      // s = a·x + b (mod-p residue class), s < 2^63.
      const __m256i s = _mm256_add_epi64(_mm256_add_epi64(c0, c1),
                                         _mm256_add_epi64(c2, b));
      // One fold brings s under 2^61 + 4; subtract p where r >= p.
      __m256i r = _mm256_add_epi64(_mm256_and_si256(s, p),
                                   _mm256_srli_epi64(s, 61));
      const __m256i ge = _mm256_cmpgt_epi64(
          r, _mm256_sub_epi64(p, _mm256_set1_epi64x(1)));
      r = _mm256_sub_epi64(r, _mm256_and_si256(ge, p));

      if (has_mod) r = _mm256_and_si256(r, mod_mask);
      best = _mm256_blendv_epi8(best, r, _mm256_cmpgt_epi64(best, r));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out.data() + i), best);
  }
  if (i < nh) {
    min_sketch_scalar(mul.subspan(i), add.subspan(i), modulus,
                      features, out.subspan(i));
  }
}

/// C-MinHash pass 2, 4 hash lanes per chunk.  The heavy lifting (the one
/// Mersenne-61 product per feature) happened in the shared scalar pass 1;
/// here each lane is add + conditional-subtract (the fold's data-dependent
/// nonlinearity — see cmin_sketch_scalar) + the cmin_mix64 scramble + min.
/// Because kCMinMixMul's low half is 1, the 64-bit mix multiply is a
/// single 32×32 vpmuludq (y + ((y·M_hi) << 32)) — one product per cell
/// against the universal kernel's three-limb Mersenne-61 product.  Mixed
/// values span all of u64, so the running min works in the sign-flipped
/// domain where a signed compare orders unsigned values.  The outer
/// modulus is pow2-only in this path (mask AND), same policy as
/// min_sketch_avx2.
__attribute__((target("avx2"))) void cmin_sketch_avx2(
    std::span<const std::uint64_t> premul, std::span<const std::uint64_t> add,
    std::uint64_t modulus, std::span<std::uint64_t> out) {
  const __m256i p = _mm256_set1_epi64x(static_cast<long long>(kMersenne61));
  const __m256i p_minus_1 =
      _mm256_set1_epi64x(static_cast<long long>(kMersenne61 - 1));
  const __m256i sign =
      _mm256_set1_epi64x(static_cast<long long>(std::uint64_t{1} << 63));
  // Biased u64 max: greater (signed) than every biased mixed value.
  const __m256i sentinel = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(kEmptyFeatureMin)), sign);
  const bool has_mod = modulus != 0;  // pow2-only in this path
  const __m256i mod_mask =
      _mm256_set1_epi64x(static_cast<long long>(modulus - 1));
  static_assert((detail::kCMinMixMul & 0xffffffffULL) == 1,
                "the one-vpmuludq mix below requires a low-half-1 multiplier");
  const __m256i mix_hi =
      _mm256_set1_epi64x(static_cast<long long>(detail::kCMinMixMul >> 32));

  const std::size_t nh = add.size();
  std::size_t i = 0;
  for (; i + 4 <= nh; i += 4) {
    const __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(add.data() + i));
    __m256i best = sentinel;
    for (const std::uint64_t x : premul) {
      __m256i s = _mm256_add_epi64(
          _mm256_set1_epi64x(static_cast<long long>(x)), b);
      const __m256i ge = _mm256_cmpgt_epi64(s, p_minus_1);
      s = _mm256_sub_epi64(s, _mm256_and_si256(ge, p));
      // cmin_mix64: xor-fold, then y + ((y·M_hi) << 32) (low-half-1
      // mullo64).  vpmuludq reads the low 32 bits of each lane, which is
      // exactly the y_lo the product needs.
      s = _mm256_xor_si256(s, _mm256_srli_epi64(s, 32));
      s = _mm256_add_epi64(
          s, _mm256_slli_epi64(_mm256_mul_epu32(s, mix_hi), 32));
      if (has_mod) s = _mm256_and_si256(s, mod_mask);
      s = _mm256_xor_si256(s, sign);
      best = _mm256_blendv_epi8(best, s, _mm256_cmpgt_epi64(best, s));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out.data() + i),
                        _mm256_xor_si256(best, sign));
  }
  if (i < nh) {
    cmin_sketch_scalar(premul, add.subspan(i), modulus, out.subspan(i));
  }
}

/// Differing lanes, byte-aligned widths only (8/16/32/64): cmpeq per lane +
/// movemask popcount of *equal* lanes, inverted per chunk.  Sub-byte widths
/// stay on the scalar SWAR path.
__attribute__((target("avx2"))) std::size_t count_diff_packed_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t words,
    std::size_t bits, std::uint64_t lsb) noexcept {
  std::size_t i = 0;
  std::size_t eq = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (bits == 8) {
      eq += static_cast<std::size_t>(__builtin_popcount(static_cast<unsigned>(
          _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)))));
    } else if (bits == 16) {
      eq += static_cast<std::size_t>(__builtin_popcount(static_cast<unsigned>(
                _mm256_movemask_epi8(_mm256_cmpeq_epi16(va, vb))))) /
            2;
    } else if (bits == 32) {
      eq += static_cast<std::size_t>(
          __builtin_popcount(static_cast<unsigned>(_mm256_movemask_ps(
              _mm256_castsi256_ps(_mm256_cmpeq_epi32(va, vb))))));
    } else {
      eq += static_cast<std::size_t>(
          __builtin_popcount(static_cast<unsigned>(_mm256_movemask_pd(
              _mm256_castsi256_pd(_mm256_cmpeq_epi64(va, vb))))));
    }
  }
  std::size_t diff = i * (64 / bits) - eq;
  diff += count_diff_packed_scalar(a + i, b + i, words - i, bits, lsb);
  return diff;
}

__attribute__((target("avx2"))) std::size_t count_equal_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) noexcept {
  std::size_t matches = 0;
  std::size_t i = 0;
  int acc = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i eq0 = _mm256_cmpeq_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    const __m256i eq1 = _mm256_cmpeq_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 4)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 4)));
    acc += __builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(eq0))));
    acc += __builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(eq1))));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256i eq = _mm256_cmpeq_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    acc += __builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(eq))));
  }
  matches = static_cast<std::size_t>(acc);
  for (; i < n; ++i) matches += a[i] == b[i] ? 1 : 0;
  return matches;
}

__attribute__((target("avx2"))) std::size_t argmin_avx2(
    std::span<const double> row) noexcept {
  const std::size_t n = row.size();
  if (n < 8) return argmin_scalar(row);
  // Pass 1: vector minimum of the whole row (exact — min has no rounding).
  __m256d vmin = _mm256_loadu_pd(row.data());
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    vmin = _mm256_min_pd(vmin, _mm256_loadu_pd(row.data() + i));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, vmin);
  double best = std::min(std::min(lanes[0], lanes[1]),
                         std::min(lanes[2], lanes[3]));
  for (; i < n; ++i) best = std::min(best, row[i]);
  if (best == std::numeric_limits<double>::infinity()) return 0;
  // Pass 2: first index equal to the minimum — the same slot the scalar
  // strict-less scan keeps (first occurrence).
  const __m256d vbest = _mm256_set1_pd(best);
  for (i = 0; i + 4 <= n; i += 4) {
    const int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(row.data() + i), vbest, _CMP_EQ_OQ));
    if (mask != 0) {
      return i + static_cast<std::size_t>(__builtin_ctz(
                     static_cast<unsigned>(mask)));
    }
  }
  for (; i < n; ++i) {
    if (row[i] == best) return i;
  }
  return 0;  // unreachable: best was read from the row
}

#endif  // MRMC_KERNELS_X86

}  // namespace

// ------------------------------------------------------------------- public

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kScalar: return "scalar";
    case Backend::kAvx2: return "avx2";
  }
  return "?";
}

bool backend_available(Backend backend) noexcept {
  if (backend == Backend::kScalar) return true;
#if MRMC_KERNELS_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Backend active_backend() noexcept {
  const int forced = g_backend_override.load(std::memory_order_acquire);
  if (forced >= 0) return static_cast<Backend>(forced);
  static const Backend chosen = detect_backend();
  return chosen;
}

ScopedBackendOverride::ScopedBackendOverride(Backend backend) {
  g_backend_override.store(static_cast<int>(backend),
                           std::memory_order_release);
}

ScopedBackendOverride::~ScopedBackendOverride() {
  g_backend_override.store(-1, std::memory_order_release);
}

void min_sketch(std::span<const std::uint64_t> mul,
                std::span<const std::uint64_t> add, std::uint64_t modulus,
                std::span<const std::uint64_t> features,
                std::span<std::uint64_t> out, Backend backend) {
  MRMC_REQUIRE(mul.size() == add.size() && mul.size() == out.size(),
               "SoA hash parameter spans must have equal length");
  if (features.empty()) {
    std::fill(out.begin(), out.end(), kEmptyFeatureMin);
    return;
  }
#if MRMC_KERNELS_X86
  // A non-power-of-two outer modulus needs a per-lane 64-bit remainder the
  // vector ISA lacks; only m == 0 / m == 2^k (the paper's 4^k) vectorize.
  if (backend == Backend::kAvx2 && (modulus == 0 || is_pow2(modulus))) {
    thread_local std::vector<std::uint64_t> reduced;
    reduced.resize(features.size());
    for (std::size_t i = 0; i < features.size(); ++i) {
      reduced[i] = reduce61(features[i]);
    }
    min_sketch_avx2(mul, add, modulus, features, out, reduced);
    return;
  }
#else
  (void)backend;
  (void)is_pow2;
#endif
  min_sketch_scalar(mul, add, modulus, features, out);
}

void cmin_sketch(std::uint64_t mul, std::span<const std::uint64_t> add,
                 std::uint64_t modulus,
                 std::span<const std::uint64_t> features,
                 std::span<std::uint64_t> out, Backend backend) {
  MRMC_REQUIRE(add.size() == out.size(),
               "per-hash offset span must match the output span");
  if (features.empty()) {
    std::fill(out.begin(), out.end(), kEmptyFeatureMin);
    return;
  }
  // Pass 1, shared by both backends (bit-identity for free): the one
  // Mersenne-61 product per feature, t[j] = (A·x_j) mod p.
  thread_local std::vector<std::uint64_t> premul;
  premul.resize(features.size());
  for (std::size_t j = 0; j < features.size(); ++j) {
    premul[j] = mod_mersenne61(static_cast<__uint128_t>(mul) * features[j]);
  }
#if MRMC_KERNELS_X86
  // Same policy as min_sketch: a non-power-of-two outer modulus needs a
  // per-lane remainder the vector ISA lacks.
  if (backend == Backend::kAvx2 && (modulus == 0 || is_pow2(modulus))) {
    cmin_sketch_avx2(premul, add, modulus, out);
    return;
  }
#else
  (void)backend;
#endif
  cmin_sketch_scalar(premul, add, modulus, out);
}

std::size_t count_equal(std::span<const std::uint64_t> a,
                        std::span<const std::uint64_t> b,
                        Backend backend) noexcept {
  const std::size_t n = std::min(a.size(), b.size());
#if MRMC_KERNELS_X86
  if (backend == Backend::kAvx2) return count_equal_avx2(a.data(), b.data(), n);
#else
  (void)backend;
#endif
  return count_equal_scalar(a.data(), b.data(), n);
}

std::size_t count_equal_packed(std::span<const std::uint64_t> a,
                               std::span<const std::uint64_t> b,
                               std::size_t cols, std::size_t bits,
                               Backend backend) noexcept {
  const std::size_t words = std::min(a.size(), b.size());
  const std::uint64_t lsb = packed_lsb_mask(bits);
  std::size_t diff = 0;
#if MRMC_KERNELS_X86
  if (backend == Backend::kAvx2 && bits >= 8) {
    diff = count_diff_packed_avx2(a.data(), b.data(), words, bits, lsb);
  } else
#else
  (void)backend;
#endif
  {
    diff = count_diff_packed_scalar(a.data(), b.data(), words, bits, lsb);
  }
  // Pad lanes are zero on both sides (equal), so every differing lane lies
  // within the first `cols`.
  return cols - diff;
}

std::size_t argmin(std::span<const double> row, Backend backend) noexcept {
#if MRMC_KERNELS_X86
  if (backend == Backend::kAvx2) return argmin_avx2(row);
#else
  (void)backend;
#endif
  return argmin_scalar(row);
}

std::size_t count_distinct(std::span<const std::uint64_t> values,
                           std::vector<std::uint64_t>& scratch) {
  scratch.assign(values.begin(), values.end());
  std::sort(scratch.begin(), scratch.end());
  return static_cast<std::size_t>(
      std::unique(scratch.begin(), scratch.end()) - scratch.begin());
}

// -------------------------------------------------------------- SketchMatrix

SketchMatrix::SketchMatrix(std::size_t rows, std::size_t cols,
                           std::uint64_t fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

SketchMatrix SketchMatrix::from_sketches(
    std::span<const std::vector<std::uint64_t>> sketches) {
  SketchMatrix matrix;
  if (sketches.empty()) return matrix;
  const std::size_t cols = sketches.front().size();
  for (const auto& sketch : sketches) {
    MRMC_REQUIRE(sketch.size() == cols,
                 "all sketches must have the same length");
  }
  matrix.rows_ = sketches.size();
  matrix.cols_ = cols;
  matrix.data_.resize(matrix.rows_ * cols);
  for (std::size_t i = 0; i < sketches.size(); ++i) {
    std::copy(sketches[i].begin(), sketches[i].end(),
              matrix.data_.begin() + static_cast<std::ptrdiff_t>(i * cols));
  }
  return matrix;
}

std::vector<std::vector<std::uint64_t>> SketchMatrix::to_sketches() const {
  std::vector<std::vector<std::uint64_t>> out;
  out.reserve(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const auto r = row(i);
    out.emplace_back(r.begin(), r.end());
  }
  return out;
}

void mask_components(SketchMatrix& sketches, std::uint64_t mask) noexcept {
  for (std::size_t i = 0; i < sketches.rows(); ++i) {
    for (std::uint64_t& value : sketches.row(i)) value &= mask;
  }
}

// -------------------------------------------------------- PackedSketchMatrix

PackedSketchMatrix::PackedSketchMatrix(std::size_t rows, std::size_t cols,
                                       std::size_t bits)
    : rows_(rows),
      cols_(cols),
      bits_(bits),
      wpr_((cols * bits + 63) / 64),
      data_(rows * wpr_, 0) {
  MRMC_REQUIRE(valid_pack_bits(bits),
               "packed sketch width must be one of 1/2/4/8/16/32/64 bits");
}

PackedSketchMatrix PackedSketchMatrix::pack(const SketchMatrix& matrix,
                                            std::size_t bits) {
  PackedSketchMatrix packed(matrix.rows(), matrix.cols(), bits);
  for (std::size_t i = 0; i < matrix.rows(); ++i) {
    const auto row = matrix.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) packed.set(i, j, row[j]);
  }
  return packed;
}

void component_match_matrix(const SketchMatrix& sketches, float* out,
                            std::size_t stride, Backend backend,
                            common::ThreadPool* pool) {
  const std::size_t n = sketches.rows();
  const std::size_t cols = sketches.cols();
  // Block height: 8 rows of up to 512 components stay L1-resident while the
  // partner rows stream through once per block.
  constexpr std::size_t kBlock = 8;
  const double inv_cols =
      cols == 0 ? 0.0 : 1.0 / static_cast<double>(cols);

  auto fill_block = [&](std::size_t block) {
    const std::size_t i0 = block * kBlock;
    const std::size_t i1 = std::min(i0 + kBlock, n);
    for (std::size_t i = i0; i < i1; ++i) out[i * stride + i] = 1.0F;
    for (std::size_t j = i0 + 1; j < n; ++j) {
      const std::uint64_t* rj = sketches.row_ptr(j);
      const std::size_t iend = std::min(i1, j);
      for (std::size_t i = i0; i < iend; ++i) {
        const std::size_t eq =
            count_equal({sketches.row_ptr(i), cols}, {rj, cols}, backend);
        const auto sim =
            static_cast<float>(static_cast<double>(eq) * inv_cols);
        out[i * stride + j] = sim;
        out[j * stride + i] = sim;
      }
    }
  };

  const std::size_t blocks = (n + kBlock - 1) / kBlock;
  if (pool != nullptr && n > 64) {
    pool->parallel_for(blocks, fill_block);
  } else {
    for (std::size_t block = 0; block < blocks; ++block) fill_block(block);
  }
}

}  // namespace mrmc::core::kernels

file(REMOVE_RECURSE
  "libmrmc_eval.a"
)

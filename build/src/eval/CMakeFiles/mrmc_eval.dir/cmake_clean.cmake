file(REMOVE_RECURSE
  "CMakeFiles/mrmc_eval.dir/confusion.cpp.o"
  "CMakeFiles/mrmc_eval.dir/confusion.cpp.o.d"
  "CMakeFiles/mrmc_eval.dir/external_indices.cpp.o"
  "CMakeFiles/mrmc_eval.dir/external_indices.cpp.o.d"
  "CMakeFiles/mrmc_eval.dir/metrics.cpp.o"
  "CMakeFiles/mrmc_eval.dir/metrics.cpp.o.d"
  "libmrmc_eval.a"
  "libmrmc_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmc_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table5_16s_environmental.
# This may be replaced when dependencies are built.

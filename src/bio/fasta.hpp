// FASTA parsing and writing.  Mirrors the paper's `FastaStorage` UDF: each
// record carries a read id, the raw sequence and the full header line.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace mrmc::bio {

struct FastaRecord {
  std::string id;      ///< first whitespace-delimited token of the header
  std::string header;  ///< full header line without the leading '>'
  std::string seq;     ///< sequence with line breaks removed

  friend bool operator==(const FastaRecord&, const FastaRecord&) = default;
};

/// Parse all records from a stream.  Throws IoError on malformed input
/// (content before the first '>', or a record with an empty sequence).
std::vector<FastaRecord> read_fasta(std::istream& in);

/// Parse all records from an in-memory string.
std::vector<FastaRecord> read_fasta_string(std::string_view text);

/// Parse all records from a file path.  Throws IoError if unreadable.
std::vector<FastaRecord> read_fasta_file(const std::string& path);

/// Write records, wrapping sequence lines at `width` characters (0 = no wrap).
void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 std::size_t width = 70);

std::string write_fasta_string(const std::vector<FastaRecord>& records,
                               std::size_t width = 70);

}  // namespace mrmc::bio

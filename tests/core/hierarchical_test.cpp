#include "core/hierarchical.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "common/thread_pool.hpp"

namespace mrmc::core {
namespace {

/// A similarity matrix with `k` perfect blocks: within-block similarity
/// `intra`, between-block `inter`.
SimilarityMatrix block_matrix(std::size_t blocks, std::size_t per_block,
                              float intra, float inter) {
  const std::size_t n = blocks * per_block;
  SimilarityMatrix matrix(n, inter);
  for (std::size_t i = 0; i < n; ++i) {
    matrix.set(i, i, 1.0F);
    for (std::size_t j = i + 1; j < n; ++j) {
      if (i / per_block == j / per_block) matrix.set(i, j, intra);
    }
  }
  return matrix;
}

TEST(SimilarityMatrix, SetIsSymmetric) {
  SimilarityMatrix matrix(3);
  matrix.set(0, 2, 0.5F);
  EXPECT_FLOAT_EQ(matrix.at(0, 2), 0.5F);
  EXPECT_FLOAT_EQ(matrix.at(2, 0), 0.5F);
  EXPECT_EQ(matrix.row(0).size(), 3u);
}

TEST(PairwiseSimilarityMatrix, DiagonalIsOneAndSymmetric) {
  common::Xoshiro256 rng(1);
  std::vector<Sketch> sketches(6, Sketch(16));
  for (auto& sketch : sketches) {
    for (auto& v : sketch) v = rng.bounded(8);  // collisions likely
  }
  const auto matrix = pairwise_similarity_matrix(
      sketches, SketchEstimator::kComponentMatch, nullptr);
  ASSERT_EQ(matrix.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_FLOAT_EQ(matrix.at(i, i), 1.0F);
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_FLOAT_EQ(matrix.at(i, j), matrix.at(j, i));
      EXPECT_GE(matrix.at(i, j), 0.0F);
      EXPECT_LE(matrix.at(i, j), 1.0F);
    }
  }
}

TEST(PairwiseSimilarityMatrix, ParallelMatchesSequential) {
  common::Xoshiro256 rng(2);
  std::vector<Sketch> sketches(80, Sketch(16));
  for (auto& sketch : sketches) {
    for (auto& v : sketch) v = rng.bounded(4);
  }
  common::ThreadPool pool(3);
  const auto sequential = pairwise_similarity_matrix(
      sketches, SketchEstimator::kComponentMatch, nullptr);
  const auto parallel =
      pairwise_similarity_matrix(sketches, SketchEstimator::kComponentMatch, &pool);
  for (std::size_t i = 0; i < sketches.size(); ++i) {
    for (std::size_t j = 0; j < sketches.size(); ++j) {
      EXPECT_FLOAT_EQ(sequential.at(i, j), parallel.at(i, j));
    }
  }
}

// --------------------------------------------------------------- dendrogram

TEST(Agglomerate, ProducesNMinusOneMerges) {
  const auto matrix = block_matrix(2, 4, 0.9F, 0.1F);
  const Dendrogram dendrogram = agglomerate(matrix, Linkage::kAverage);
  EXPECT_EQ(dendrogram.num_leaves, 8u);
  EXPECT_EQ(dendrogram.merges.size(), 7u);
}

TEST(Agglomerate, TrivialInputs) {
  EXPECT_TRUE(agglomerate(SimilarityMatrix(0), Linkage::kSingle).merges.empty());
  EXPECT_TRUE(agglomerate(SimilarityMatrix(1), Linkage::kSingle).merges.empty());
}

TEST(Agglomerate, ChildrenPrecedeParents) {
  const auto matrix = block_matrix(3, 5, 0.8F, 0.2F);
  const Dendrogram dendrogram = agglomerate(matrix, Linkage::kComplete);
  const int n = static_cast<int>(dendrogram.num_leaves);
  for (std::size_t i = 0; i < dendrogram.merges.size(); ++i) {
    const auto& merge = dendrogram.merges[i];
    EXPECT_LT(merge.left, n + static_cast<int>(i));
    EXPECT_LT(merge.right, n + static_cast<int>(i));
    EXPECT_NE(merge.left, merge.right);
  }
}

TEST(Agglomerate, MergeSizesAccumulateToN) {
  const auto matrix = block_matrix(2, 6, 0.9F, 0.1F);
  const Dendrogram dendrogram = agglomerate(matrix, Linkage::kAverage);
  EXPECT_EQ(dendrogram.merges.back().size, 12u);
}

TEST(Agglomerate, BlocksMergeBeforeCrossBlockJoins) {
  const auto matrix = block_matrix(2, 4, 0.9F, 0.1F);
  for (const auto linkage :
       {Linkage::kSingle, Linkage::kAverage, Linkage::kComplete}) {
    const Dendrogram dendrogram = agglomerate(matrix, linkage);
    // First 6 merges happen at distance 0.1 (within blocks), last at 0.9.
    for (std::size_t i = 0; i + 1 < dendrogram.merges.size(); ++i) {
      EXPECT_NEAR(dendrogram.merges[i].distance, 0.1, 1e-6);
    }
    EXPECT_NEAR(dendrogram.merges.back().distance, 0.9, 1e-6);
  }
}

TEST(Agglomerate, LinkageOrderingSingleBelowComplete) {
  // On a noisy matrix, single-linkage merge heights <= complete-linkage
  // heights at the same merge count (single chains, complete is conservative).
  common::Xoshiro256 rng(3);
  const std::size_t n = 20;
  SimilarityMatrix matrix(n, 0.0F);
  for (std::size_t i = 0; i < n; ++i) {
    matrix.set(i, i, 1.0F);
    for (std::size_t j = i + 1; j < n; ++j) {
      matrix.set(i, j, static_cast<float>(rng.uniform()));
    }
  }
  const auto single = agglomerate(matrix, Linkage::kSingle);
  const auto complete = agglomerate(matrix, Linkage::kComplete);
  EXPECT_LE(single.merges.back().distance, complete.merges.back().distance);
}

TEST(LinkageName, AllNamed) {
  EXPECT_STREQ(linkage_name(Linkage::kSingle), "single");
  EXPECT_STREQ(linkage_name(Linkage::kAverage), "average");
  EXPECT_STREQ(linkage_name(Linkage::kComplete), "complete");
}

// ---------------------------------------------------------------------- cut

TEST(CutDendrogram, ThetaOneSeparatesAll) {
  const auto matrix = block_matrix(2, 3, 0.9F, 0.1F);
  const auto dendrogram = agglomerate(matrix, Linkage::kAverage);
  const auto labels = cut_dendrogram(dendrogram, 1.0);
  EXPECT_EQ(count_clusters(labels), 6u);
}

TEST(CutDendrogram, ThetaZeroJoinsAll) {
  const auto matrix = block_matrix(2, 3, 0.9F, 0.1F);
  const auto dendrogram = agglomerate(matrix, Linkage::kAverage);
  const auto labels = cut_dendrogram(dendrogram, 0.0);
  EXPECT_EQ(count_clusters(labels), 1u);
}

TEST(CutDendrogram, MidThresholdRecoversBlocks) {
  const auto matrix = block_matrix(3, 4, 0.9F, 0.1F);
  const auto dendrogram = agglomerate(matrix, Linkage::kComplete);
  const auto labels = cut_dendrogram(dendrogram, 0.5);
  EXPECT_EQ(count_clusters(labels), 3u);
  for (std::size_t block = 0; block < 3; ++block) {
    for (std::size_t m = 1; m < 4; ++m) {
      EXPECT_EQ(labels[block * 4 + m], labels[block * 4]);
    }
  }
}

TEST(CutDendrogram, ClusterCountMonotoneInTheta) {
  common::Xoshiro256 rng(4);
  const std::size_t n = 30;
  SimilarityMatrix matrix(n, 0.0F);
  for (std::size_t i = 0; i < n; ++i) {
    matrix.set(i, i, 1.0F);
    for (std::size_t j = i + 1; j < n; ++j) {
      matrix.set(i, j, static_cast<float>(rng.uniform()));
    }
  }
  const auto dendrogram = agglomerate(matrix, Linkage::kAverage);
  std::size_t previous = 0;
  for (const double theta : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const auto labels = cut_dendrogram(dendrogram, theta);
    EXPECT_GE(count_clusters(labels), previous) << theta;
    previous = count_clusters(labels);
  }
}

TEST(CutDendrogram, LabelsAreDenseAndOrderedByFirstAppearance) {
  const auto matrix = block_matrix(2, 3, 0.9F, 0.1F);
  const auto labels =
      cut_dendrogram(agglomerate(matrix, Linkage::kSingle), 0.5);
  EXPECT_EQ(labels[0], 0);  // first read anchors label 0
  const std::set<int> unique(labels.begin(), labels.end());
  EXPECT_EQ(*unique.begin(), 0);
  EXPECT_EQ(*unique.rbegin(), static_cast<int>(unique.size()) - 1);
}

TEST(CutDendrogram, RejectsBadTheta) {
  const Dendrogram dendrogram{2, {}};
  EXPECT_THROW(cut_dendrogram(dendrogram, -0.5), common::InvalidArgument);
  EXPECT_THROW(cut_dendrogram(dendrogram, 1.5), common::InvalidArgument);
}

// ------------------------------------------------------ hierarchical_cluster

TEST(HierarchicalCluster, EndToEndRecoversFamilies) {
  common::Xoshiro256 rng(5);
  std::vector<Sketch> sketches;
  for (std::size_t f = 0; f < 3; ++f) {
    Sketch base(32);
    for (auto& v : base) v = rng();
    for (std::size_t m = 0; m < 7; ++m) {
      Sketch member = base;
      for (auto& v : member) {
        if (rng.chance(0.1)) v = rng();
      }
      sketches.push_back(std::move(member));
    }
  }
  const HierarchicalResult result =
      hierarchical_cluster(sketches, {.theta = 0.5, .linkage = Linkage::kAverage});
  EXPECT_EQ(result.num_clusters, 3u);
  EXPECT_EQ(result.labels.size(), 21u);
  EXPECT_EQ(result.dendrogram.merges.size(), 20u);
}

TEST(HierarchicalCluster, EmptyInput) {
  const HierarchicalResult result =
      hierarchical_cluster(std::span<const Sketch>{}, {});
  EXPECT_TRUE(result.labels.empty());
  EXPECT_EQ(result.num_clusters, 0u);
}

TEST(CountClusters, CountsDistinctLabels) {
  EXPECT_EQ(count_clusters(std::vector<int>{0, 1, 0, 2}), 3u);
  EXPECT_EQ(count_clusters(std::vector<int>{}), 0u);
  EXPECT_EQ(count_clusters(std::vector<int>{5, 5, 5}), 1u);
}

class LinkageSweep : public ::testing::TestWithParam<Linkage> {};

TEST_P(LinkageSweep, CutRespectsThetaSemantics) {
  const auto matrix = block_matrix(4, 5, 0.85F, 0.15F);
  const auto dendrogram = agglomerate(matrix, GetParam());
  EXPECT_EQ(count_clusters(cut_dendrogram(dendrogram, 0.5)), 4u);
  EXPECT_EQ(count_clusters(cut_dendrogram(dendrogram, 0.05)), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllLinkages, LinkageSweep,
                         ::testing::Values(Linkage::kSingle, Linkage::kAverage,
                                           Linkage::kComplete));

}  // namespace
}  // namespace mrmc::core

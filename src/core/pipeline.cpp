#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/candidate_jobs.hpp"
#include "core/kernels.hpp"
#include "mr/block.hpp"
#include "mr/bytes.hpp"
#include "mr/runtime.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/pipeline.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace mrmc::core {

namespace detail {

void apply_exec_options(mr::JobConfig& config, const ExecutionOptions& exec) {
  config.threads = exec.threads;
  config.isolated_pool = exec.isolated_pool;
  config.fault_plan = exec.fault_plan;
  config.cluster = exec.cluster;
  config.heartbeat_interval_s = exec.heartbeat_interval_s;
  config.max_job_attempts = exec.max_job_attempts;
  config.job_timeout_s = exec.job_timeout_s;
  config.backoff_base_s = exec.backoff_base_s;
  config.backoff_cap_s = exec.backoff_cap_s;
}

}  // namespace detail

const char* mode_name(Mode mode) noexcept {
  switch (mode) {
    case Mode::kGreedy: return "greedy";
    case Mode::kHierarchical: return "hierarchical";
  }
  return "?";
}

namespace cost {

// Calibrated to an EMR M1 Large-class node (cpu_rate = 1 work unit / sim
// second): ~25 ns per k-mer x hash-function evaluation, ~1.5 ns per sketch
// component comparison, ~40 ns per dendrogram matrix cell.
double sketch_work(std::size_t length, std::size_t num_hashes) noexcept {
  return static_cast<double>(length) * static_cast<double>(num_hashes) * 25e-9;
}
double compare_work(std::size_t num_hashes) noexcept {
  return static_cast<double>(num_hashes) * 1.5e-9;
}
double dendrogram_work(std::size_t n) noexcept {
  return static_cast<double>(n) * static_cast<double>(n) * 40e-9;
}
double sketch_bytes(std::size_t num_hashes) noexcept {
  return static_cast<double>(num_hashes) * 8.0 + 8.0;
}
double packed_sketch_bytes(std::size_t num_hashes, std::size_t bits) noexcept {
  return static_cast<double>((num_hashes * bits + 63) / 64) * 8.0;
}

}  // namespace cost

namespace {

struct IndexedRead {
  std::uint32_t index = 0;
  std::string seq;
};

/// The knobs the clustering stages actually run with.  At b = 64 they are
/// the user's params verbatim.  Below 64, estimators fall back to
/// component-match (set semantics over truncated values are unsound) and
/// every θ comparison moves to θ' = θ·(1-C) + C — the affine b-bit
/// correction folded into the threshold, which is decision-identical to
/// correcting each estimate (and commutes with average linkage).  LSH band
/// *shape* selection keeps the original θ: truncation only increases
/// collision probability, so a shape tuned for J ≥ θ keeps its recall floor.
struct EffectiveKnobs {
  double theta = 0.0;
  double greedy_theta = 0.0;
  SketchEstimator estimator = SketchEstimator::kComponentMatch;
  SketchEstimator greedy_estimator = SketchEstimator::kComponentMatch;
};

/// A set-based estimator forced onto the component-match scale must carry
/// its threshold across too (same m-decision, see
/// set_based_equivalent_threshold); only then does the b-bit θ' adjustment
/// apply.  Keeping the set-based θ verbatim would move the operating point
/// from m/K = 2θ/(1+θ) down to m/K = θ and over-merge everything.
double forced_component_threshold(double theta, SketchEstimator was,
                                  std::size_t bits) noexcept {
  const double component = was == SketchEstimator::kSetBased
                               ? set_based_equivalent_threshold(theta)
                               : theta;
  return bbit_adjusted_threshold(component, bits);
}

EffectiveKnobs effective_knobs(const PipelineParams& params) noexcept {
  if (params.sketch_bits >= 64) {
    return {params.theta, params.theta, params.estimator,
            params.greedy_estimator};
  }
  return {forced_component_threshold(params.theta, params.estimator,
                                     params.sketch_bits),
          forced_component_threshold(params.theta, params.greedy_estimator,
                                     params.sketch_bits),
          SketchEstimator::kComponentMatch, SketchEstimator::kComponentMatch};
}

/// Job 1: sketch every read.  Each map task emits ONE BinaryBlock per input
/// split — K rows × (reads in split) columns of b-bit packed minima —
/// instead of one vector<uint64_t> per read, so the shuffle moves the exact
/// packed bytes (64/b-fold less at b < 64, and no per-record vector header
/// even at b = 64).  The identity reduce passes blocks through; the driver
/// rejoins them positionally via split_index · records_per_split.
std::vector<Sketch> run_sketch_job(std::span<const bio::FastaRecord> reads,
                                   const PipelineParams& params,
                                   const ExecutionOptions& exec,
                                   mr::JobStats& stats) {
  obs::pipeline::StageScope stage("sketch");
  auto hasher = std::make_shared<MinHasher>(params.minhash);
  const std::size_t num_hashes = params.minhash.num_hashes;
  const std::size_t bits = params.sketch_bits;
  const std::uint64_t mask = sketch_bits_mask(bits);

  using SketchJob = mr::Job<IndexedRead, std::uint32_t, mr::BinaryBlock,
                            std::pair<std::uint32_t, mr::BinaryBlock>>;
  mr::JobConfig config;
  config.name = "sketch";
  config.num_reducers = std::max<std::size_t>(1, exec.cluster.reduce_slots());
  config.records_per_split = exec.records_per_split;
  detail::apply_exec_options(config, exec);
  const std::size_t per_split = config.records_per_split;

  auto& sketch_bytes_hist =
      obs::Registry::global().histogram("pipeline.sketch_bytes");
  auto& sketch_minima_hist =
      obs::Registry::global().histogram("pipeline.sketch_distinct_minima");
  SketchJob job(
      config,
      [hasher, num_hashes, bits, mask, &sketch_bytes_hist,
       &sketch_minima_hist](std::span<const IndexedRead> split,
                            std::size_t split_index,
                            mr::Emitter<std::uint32_t, mr::BinaryBlock>& emit) {
        mr::BinaryBlock block(static_cast<std::uint32_t>(bits), num_hashes,
                              static_cast<std::uint32_t>(split.size()));
        const double column_bytes = cost::packed_sketch_bytes(num_hashes, bits);
        for (std::size_t c = 0; c < split.size(); ++c) {
          Sketch sketch = hasher->sketch(split[c].seq);
          // Truncate first: the histogram and every downstream consumer see
          // the same b-bit values (at b = 64 the mask is a no-op).
          for (std::uint64_t& value : sketch) value &= mask;
          for (std::size_t k = 0; k < num_hashes; ++k) {
            block.set(static_cast<std::uint32_t>(c), k, sketch[k]);
          }
          sketch_bytes_hist.observe(column_bytes);
          thread_local std::vector<std::uint64_t> scratch;
          sketch_minima_hist.observe(
              static_cast<double>(kernels::count_distinct(sketch, scratch)));
          emit.count("reads.sketched");
        }
        emit.emit(static_cast<std::uint32_t>(split_index), std::move(block));
      },
      [](const std::uint32_t& key, std::vector<mr::BinaryBlock>& values,
         std::vector<std::pair<std::uint32_t, mr::BinaryBlock>>& out) {
        MRMC_CHECK(values.size() == 1, "one sketch block per split");
        out.emplace_back(key, std::move(values.front()));
      });
  job.with_map_work([num_hashes](const IndexedRead& read) {
    return cost::sketch_work(read.seq.size(), num_hashes);
  });

  std::vector<IndexedRead> input;
  input.reserve(reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    input.push_back({static_cast<std::uint32_t>(i), reads[i].seq});
  }

  auto result = job.run(input);
  stats = std::move(result.stats);

  // Positional rejoin: split s covers reads [s · per_split, ...).
  std::vector<Sketch> sketches(reads.size());
  for (const auto& [split_index, block] : result.output) {
    const std::size_t first = static_cast<std::size_t>(split_index) * per_split;
    for (std::uint32_t c = 0; c < block.cols(); ++c) {
      Sketch& sketch = sketches[first + c];
      sketch.resize(num_hashes);
      for (std::size_t k = 0; k < num_hashes; ++k) {
        sketch[k] = block.get(c, k);
      }
    }
  }
  return sketches;
}

/// Job 2: all-pairs similarity, map tasks own contiguous row ranges (the
/// paper's row-wise partition).  The sketch table plays the role of Pig's
/// GROUP-ALL broadcast relation.  Instead of a vector<float> per row, each
/// map task ships ONE BinaryBlock of *integer counts* per split —
/// component-match: one match-count lane per pair (width 8/16/32 bits,
/// whatever holds K); set-based: two lanes (|∩|, |∪|) — and the driver
/// rebuilds the identical floats: float(count · (1/K)) uses the exact
/// reciprocal multiply of the mapper, and jaccard_from_counts mirrors
/// bio::exact_jaccard.  A pair costs one packed lane instead of a 4-byte
/// float (≥ 4× fewer shuffle bytes at K ≤ 255).
SimilarityMatrix run_similarity_job(std::shared_ptr<const std::vector<Sketch>> sketches,
                                    const PipelineParams& params,
                                    const EffectiveKnobs& knobs,
                                    const ExecutionOptions& exec,
                                    mr::JobStats& stats) {
  obs::pipeline::StageScope stage("similarity");
  const std::size_t n = sketches->size();
  const std::size_t num_hashes = params.minhash.num_hashes;
  const SketchEstimator estimator = knobs.estimator;
  const bool set_based = estimator == SketchEstimator::kSetBased;

  // Count lanes: match counts are ≤ K; set-based |∩| and |∪| are ≤ 2K.
  const std::uint32_t lane_bits =
      mr::min_lane_bits(set_based ? 2 * num_hashes : num_hashes);

  using SimJob = mr::Job<std::uint32_t, std::uint32_t, mr::BinaryBlock,
                         std::pair<std::uint32_t, mr::BinaryBlock>>;

  mr::JobConfig config;
  config.name = "similarity";
  config.num_reducers = std::max<std::size_t>(1, exec.cluster.reduce_slots());
  config.records_per_split =
      std::max<std::size_t>(1, n / std::max<std::size_t>(1, exec.cluster.map_slots() * 4));
  detail::apply_exec_options(config, exec);
  const std::size_t per_split = config.records_per_split;

  // Set-based rows re-compare every sketch pair; pre-sort each sketch once
  // into a flat store shared (read-only) by all map tasks instead of sorting
  // two copies per pair inside the row loop.
  auto store = set_based ? std::make_shared<const SortedSketchStore>(*sketches)
                         : nullptr;
  const double inv_cols =
      num_hashes == 0 ? 0.0 : 1.0 / static_cast<double>(num_hashes);

  // Per-row fan-out: how many of the row's pairs clear theta — the density
  // signal that decides whether sparse clustering would pay off.
  auto& fanout_hist =
      obs::Registry::global().histogram("pipeline.similarity_fanout");
  const auto theta = static_cast<float>(knobs.theta);
  SimJob job(
      config,
      [sketches, store, set_based, inv_cols, lane_bits, theta, &fanout_hist](
          std::span<const std::uint32_t> split, std::size_t split_index,
          mr::Emitter<std::uint32_t, mr::BinaryBlock>& emit) {
        const auto& all = *sketches;
        const std::size_t n_reads = all.size();
        // One ragged column: row r contributes n - r - 1 lanes, upper
        // triangle in row order (the driver knows the lengths).
        std::uint64_t total = 0;
        for (const std::uint32_t row : split) total += n_reads - row - 1;
        mr::BinaryBlock block(lane_bits, total, set_based ? 2 : 1);
        std::uint64_t lane = 0;
        for (const std::uint32_t row : split) {
          std::size_t fanout = 0;
          for (std::size_t j = row + 1; j < n_reads; ++j) {
            double sim = 0.0;
            if (set_based) {
              const auto [inter, uni] = store->jaccard_counts(row, j);
              block.set(0, lane, inter);
              block.set(1, lane, uni);
              sim = jaccard_from_counts(inter, uni);
            } else {
              const std::size_t eq = all[row].empty()
                                         ? 0
                                         : kernels::count_equal(all[row], all[j]);
              block.set(0, lane, eq);
              sim = static_cast<double>(eq) * inv_cols;
            }
            if (static_cast<float>(sim) >= theta) ++fanout;
            ++lane;
          }
          fanout_hist.observe(static_cast<double>(fanout));
          emit.count("matrix.rows");
        }
        emit.emit(static_cast<std::uint32_t>(split_index), std::move(block));
      },
      [](const std::uint32_t& key, std::vector<mr::BinaryBlock>& values,
         std::vector<std::pair<std::uint32_t, mr::BinaryBlock>>& out) {
        MRMC_CHECK(values.size() == 1, "one count block per row split");
        out.emplace_back(key, std::move(values.front()));
      });
  job.with_map_work([n, num_hashes](const std::uint32_t& row) {
    return static_cast<double>(n - row - 1) * cost::compare_work(num_hashes);
  });

  std::vector<std::uint32_t> rows(n);
  for (std::size_t i = 0; i < n; ++i) rows[i] = static_cast<std::uint32_t>(i);

  auto result = job.run(rows);
  stats = std::move(result.stats);

  // Positional rejoin: split s starts at row s · per_split; within the
  // block, lanes follow the mapper's (row, j) iteration order exactly.
  SimilarityMatrix matrix(n, 0.0F);
  for (const auto& [split_index, block] : result.output) {
    const std::size_t first = static_cast<std::size_t>(split_index) * per_split;
    const std::size_t last = std::min(first + per_split, n);
    std::uint64_t lane = 0;
    for (std::size_t row = first; row < last; ++row) {
      matrix.set(row, row, 1.0F);
      for (std::size_t j = row + 1; j < n; ++j) {
        float sim = 0.0F;
        if (set_based) {
          sim = static_cast<float>(
              jaccard_from_counts(block.get(0, lane), block.get(1, lane)));
        } else {
          sim = static_cast<float>(
              static_cast<double>(block.get(0, lane)) * inv_cols);
        }
        matrix.set(row, j, sim);
        ++lane;
      }
    }
  }
  return matrix;
}

/// Job 3 (greedy): GROUP ALL -> one reducer runs Algorithm 1 over the
/// sketch table (Algorithm 3, step 9) — or, when the LSH backend supplied a
/// verified candidate graph, the graph-aware sweep over it.
std::vector<int> run_greedy_job(
    std::shared_ptr<const std::vector<Sketch>> sketches,
    const EffectiveKnobs& knobs, const ExecutionOptions& exec,
    mr::JobStats& stats,
    std::shared_ptr<const candidates::SparseSimilarityGraph> graph = nullptr) {
  obs::pipeline::StageScope stage("greedy-cluster");
  const std::size_t n = sketches->size();
  const GreedyParams greedy{knobs.greedy_theta, knobs.greedy_estimator};

  using Value = std::uint32_t;  // read index; sketches travel via the table
  using GreedyJob = mr::Job<std::uint32_t, int, Value, std::pair<std::uint32_t, int>>;

  mr::JobConfig config;
  config.name = "greedy-cluster";
  config.num_reducers = 1;  // GROUP ALL semantics
  config.records_per_split = exec.records_per_split;
  detail::apply_exec_options(config, exec);

  GreedyJob job(
      config,
      [](const std::uint32_t& index, mr::Emitter<int, Value>& emit) {
        emit.emit(0, index);
      },
      [sketches, greedy, graph](const int&, std::vector<Value>& indices,
                                std::vector<std::pair<std::uint32_t, int>>& out,
                                mr::ReduceContext& context) {
        // Keep input order: values arrive in map-task order which follows
        // the original read order for our deterministic shuffle.
        std::sort(indices.begin(), indices.end());
        const GreedyResult result = graph != nullptr
                                        ? greedy_cluster_graph(*graph, greedy)
                                        : greedy_cluster(*sketches, greedy);
        for (const std::uint32_t index : indices) {
          out.emplace_back(index, result.labels[index]);
        }
        context.count("clusters.formed",
                      static_cast<long>(count_clusters(result.labels)));
      });
  job.with_map_work([](const std::uint32_t&) { return 1e-7; });  // emit only
  job.with_reduce_work([n, graph](const int&, std::size_t) {
    if (graph != nullptr) {
      // Graph sweep is O(V + E): each edge is inspected at most once.
      return (static_cast<double>(n) +
              static_cast<double>(graph->edges.size())) *
             cost::compare_work(100);
    }
    // Greedy comparisons are data dependent; model the observed ~N*sqrt(N)
    // envelope with the per-comparison sketch cost.
    return static_cast<double>(n) * std::max(1.0, std::sqrt(static_cast<double>(n))) *
           cost::compare_work(100);
  });

  std::vector<std::uint32_t> input(n);
  for (std::size_t i = 0; i < n; ++i) input[i] = static_cast<std::uint32_t>(i);
  auto result = job.run(input);
  stats = std::move(result.stats);

  std::vector<int> labels(n, -1);
  for (const auto& [index, label] : result.output) labels[index] = label;
  return labels;
}

/// Job 3 (hierarchical): GROUP ALL over matrix rows -> one reducer builds
/// the dendrogram and cuts it at theta (Algorithm 3, step 8).
std::vector<int> run_hierarchical_job(const SimilarityMatrix& matrix,
                                      const PipelineParams& params,
                                      const EffectiveKnobs& knobs,
                                      const ExecutionOptions& exec,
                                      mr::JobStats& stats) {
  obs::pipeline::StageScope stage("hierarchical-cluster");
  const std::size_t n = matrix.size();

  using HierJob = mr::Job<std::uint32_t, int, std::uint32_t,
                          std::pair<std::uint32_t, int>>;
  mr::JobConfig config;
  config.name = "hierarchical-cluster";
  config.num_reducers = 1;  // GROUP ALL semantics
  config.records_per_split = std::max<std::size_t>(1, n / 8);
  detail::apply_exec_options(config, exec);

  const Linkage linkage = params.linkage;
  const double theta = knobs.theta;
  HierJob job(
      config,
      [](const std::uint32_t& row, mr::Emitter<int, std::uint32_t>& emit) {
        emit.emit(0, row);
      },
      [&matrix, linkage, theta](const int&, std::vector<std::uint32_t>& rows,
                                std::vector<std::pair<std::uint32_t, int>>& out,
                                mr::ReduceContext& context) {
        const Dendrogram dendrogram = agglomerate(matrix, linkage);
        const std::vector<int> labels = cut_dendrogram(dendrogram, theta);
        std::sort(rows.begin(), rows.end());
        for (const std::uint32_t row : rows) out.emplace_back(row, labels[row]);
        context.count("clusters.formed",
                      static_cast<long>(count_clusters(labels)));
      });
  job.with_map_work([](const std::uint32_t&) { return 1e-7; });  // emit only
  job.with_reduce_work(
      [n](const int&, std::size_t) { return cost::dendrogram_work(n); });

  std::vector<std::uint32_t> input(n);
  for (std::size_t i = 0; i < n; ++i) input[i] = static_cast<std::uint32_t>(i);
  auto result = job.run(input);
  stats = std::move(result.stats);

  std::vector<int> labels(n, -1);
  for (const auto& [index, label] : result.output) labels[index] = label;
  return labels;
}

// ------------------------------------------------ checkpoint serialization
// Stage results as mr::recovery checkpoint payloads.  Every encoder is an
// exact byte function of its value (no floats printed, no maps iterated in
// unstable order), so a deterministic recompute reproduces the identical
// payload — the property that keeps downstream checkpoints valid after an
// upstream invalidation.

void encode_sketches(mr::recovery::PayloadWriter& writer,
                     const std::vector<Sketch>& sketches) {
  writer.u64(sketches.size());
  for (const Sketch& sketch : sketches) {
    writer.u64(sketch.size());
    for (const std::uint64_t component : sketch) writer.u64(component);
  }
}

std::vector<Sketch> decode_sketches(mr::recovery::PayloadReader& reader) {
  std::vector<Sketch> sketches(reader.u64());
  for (Sketch& sketch : sketches) {
    sketch.resize(reader.u64());
    for (std::uint64_t& component : sketch) component = reader.u64();
  }
  return sketches;
}

void encode_labels(mr::recovery::PayloadWriter& writer,
                   const std::vector<int>& labels) {
  writer.u64(labels.size());
  for (const int label : labels) writer.i64(label);
}

std::vector<int> decode_labels(mr::recovery::PayloadReader& reader) {
  std::vector<int> labels(reader.u64());
  for (int& label : labels) label = static_cast<int>(reader.i64());
  return labels;
}

void encode_candidates(mr::recovery::PayloadWriter& writer,
                       const CandidateJobResult& candidates) {
  writer.u64(candidates.shape.bands);
  writer.u64(candidates.shape.rows);
  writer.u64(candidates.pairs.size());
  for (const auto& [a, b] : candidates.pairs) {
    writer.u32(a);
    writer.u32(b);
  }
}

CandidateJobResult decode_candidates(mr::recovery::PayloadReader& reader) {
  CandidateJobResult candidates;  // stats stay empty: the job never ran
  candidates.shape.bands = reader.u64();
  candidates.shape.rows = reader.u64();
  candidates.pairs.resize(reader.u64());
  for (auto& [a, b] : candidates.pairs) {
    a = reader.u32();
    b = reader.u32();
  }
  return candidates;
}

void encode_graph(mr::recovery::PayloadWriter& writer,
                  const candidates::SparseSimilarityGraph& graph) {
  writer.u64(graph.num_vertices);
  writer.u64(graph.edges.size());
  for (const candidates::Edge& edge : graph.edges) {
    writer.u32(edge.a);
    writer.u32(edge.b);
    writer.f64(edge.similarity);
  }
}

candidates::SparseSimilarityGraph decode_graph(
    mr::recovery::PayloadReader& reader) {
  candidates::SparseSimilarityGraph graph;
  graph.num_vertices = reader.u64();
  graph.edges.resize(reader.u64());
  for (candidates::Edge& edge : graph.edges) {
    edge.a = reader.u32();
    edge.b = reader.u32();
    edge.similarity = reader.f64();
  }
  return graph;
}

void encode_matrix(mr::recovery::PayloadWriter& writer,
                   const SimilarityMatrix& matrix) {
  const std::size_t n = matrix.size();
  writer.u64(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const float value : matrix.row(i)) writer.f32(value);
  }
}

SimilarityMatrix decode_matrix(mr::recovery::PayloadReader& reader) {
  const std::size_t n = reader.u64();
  SimilarityMatrix matrix(n, 0.0F);
  float* data = matrix.mutable_data();
  for (std::size_t i = 0; i < n * n; ++i) data[i] = reader.f32();
  return matrix;
}

// ------------------------------------------------------------ fingerprints

/// Every knob that can change any stage's output enters the params
/// fingerprint; changing one invalidates the whole checkpoint chain.
std::uint64_t params_fingerprint(const PipelineParams& params) {
  mr::StableHasher hasher;
  mr::stable_hash_append(hasher, params.minhash.kmer);
  mr::stable_hash_append(hasher, params.minhash.num_hashes);
  mr::stable_hash_append(hasher, params.minhash.canonical);
  mr::stable_hash_append(hasher, params.minhash.seed);
  mr::stable_hash_append(hasher, params.minhash.modulus);
  mr::stable_hash_append(hasher, static_cast<int>(params.minhash.scheme));
  mr::stable_hash_append(hasher, params.sketch_bits);
  mr::stable_hash_append(hasher, static_cast<int>(params.mode));
  mr::stable_hash_append(hasher, params.theta);
  mr::stable_hash_append(hasher, static_cast<int>(params.linkage));
  mr::stable_hash_append(hasher, static_cast<int>(params.estimator));
  mr::stable_hash_append(hasher, static_cast<int>(params.greedy_estimator));
  mr::stable_hash_append(hasher,
                         static_cast<int>(params.candidates.backend));
  mr::stable_hash_append(hasher, params.candidates.bands);
  mr::stable_hash_append(hasher, params.candidates.target_recall);
  mr::stable_hash_append(hasher, params.candidates.seed);
  return hasher.finish();
}

std::uint64_t input_fingerprint(std::span<const bio::FastaRecord> reads) {
  mr::StableHasher hasher;
  mr::stable_hash_append(hasher, static_cast<std::uint64_t>(reads.size()));
  for (const bio::FastaRecord& read : reads) {
    mr::stable_hash_append(hasher, read.id);
    mr::stable_hash_append(hasher, read.seq);
  }
  return hasher.finish();
}

// ------------------------------------------------------- the staged driver

/// The distributed pipeline as recovery-driver stages.  Stage names are the
/// lineage stage names; each checkpointed stage runs exactly one MapReduce
/// job when computed, so a checkpoint hit claims the job's lineage slot and
/// downstream sequence numbers match an uninterrupted run.
void run_pipeline_stages(std::span<const bio::FastaRecord> reads,
                         const PipelineParams& params,
                         const ExecutionOptions& exec,
                         mr::recovery::StageDriver& driver,
                         PipelineResult& result) {
  const EffectiveKnobs knobs = effective_knobs(params);
  // Degraded-cluster policy: a plan stranding every node would fail the
  // first job's validation; a checkpointing driver parks for resume instead
  // (an operator repairs the plan/cluster, re-runs, completed stages hit).
  if (!exec.fault_plan.empty() && driver.checkpointing() &&
      !exec.fault_plan.leaves_schedulable(exec.cluster.nodes)) {
    driver.park("fault plan leaves no schedulable node");
  }

  auto sketches = std::make_shared<std::vector<Sketch>>(driver.run_stage(
      "sketch",
      [&] { return run_sketch_job(reads, params, exec, result.sketch_stats); },
      encode_sketches, decode_sketches));
  result.sim_total_s += result.sketch_stats.timeline.total_s;

  if (params.candidates.backend == candidates::Backend::kLshBanded) {
    // LSH-banded path: candidates -> verify -> sparse-graph clustering.
    CandidateJobResult enumerated;
    try {
      enumerated = driver.run_stage(
          "candidates",
          [&] {
            return run_candidate_job(sketches, params.candidates, params.theta,
                                     exec);
          },
          encode_candidates, decode_candidates);
    } catch (const mr::recovery::RetryExhausted& error) {
      if (exec.lsh_fallback_max_reads == 0 ||
          reads.size() > exec.lsh_fallback_max_reads) {
        throw;
      }
      // Graceful degradation: banded enumeration keeps failing, but the
      // input is small enough for the exact oracle — same pairs-at-θ
      // semantics at O(n^2) cost, computed driver-side (no MR job, hence
      // no lineage claim).
      driver.record_lsh_fallback("candidates");
      static const obs::Logger logger("core.pipeline");
      logger.warn("candidates stage degraded to exact all-pairs",
                  {{"reads", reads.size()},
                   {"attempts", error.history().size()},
                   {"error", error.what()}});
      candidates::Params exact = params.candidates;
      exact.backend = candidates::Backend::kExactAllPairs;
      enumerated = driver.run_stage(
          "candidates-exact-fallback",
          [&] {
            return run_candidate_job(sketches, exact, params.theta, exec);
          },
          encode_candidates, decode_candidates, {.claims_lineage = false});
    }
    result.candidate_stats = std::move(enumerated.stats);
    result.sim_total_s += result.candidate_stats.timeline.total_s;

    const SketchEstimator estimator = params.mode == Mode::kGreedy
                                          ? knobs.greedy_estimator
                                          : knobs.estimator;
    // The compute closure must survive retries, so the verify job gets a
    // copy of the pairs (its signature takes them by value).
    candidates::SparseSimilarityGraph verified_graph = driver.run_stage(
        "verify",
        [&] {
          auto verified = run_verify_job(sketches, enumerated.pairs, estimator,
                                         params.sketch_bits, exec);
          result.verify_stats = std::move(verified.stats);
          return std::move(verified.graph);
        },
        encode_graph, decode_graph);
    result.sim_total_s += result.verify_stats.timeline.total_s;
    result.candidate_pairs = verified_graph.edges.size();
    auto graph = std::make_shared<const candidates::SparseSimilarityGraph>(
        std::move(verified_graph));

    if (params.mode == Mode::kGreedy) {
      result.labels = driver.run_stage(
          "greedy-cluster",
          [&] {
            return run_greedy_job(sketches, knobs, exec, result.cluster_stats,
                                  graph);
          },
          encode_labels, decode_labels);
    } else {
      const SimilarityMatrix matrix = similarity_matrix_from_graph(*graph);
      result.labels = driver.run_stage(
          "hierarchical-cluster",
          [&] {
            return run_hierarchical_job(matrix, params, knobs, exec,
                                        result.cluster_stats);
          },
          encode_labels, decode_labels);
    }
    result.sim_total_s += result.cluster_stats.timeline.total_s;
  } else if (params.mode == Mode::kGreedy) {
    result.labels = driver.run_stage(
        "greedy-cluster",
        [&] {
          return run_greedy_job(sketches, knobs, exec, result.cluster_stats);
        },
        encode_labels, decode_labels);
    result.sim_total_s += result.cluster_stats.timeline.total_s;
  } else {
    const SimilarityMatrix matrix = driver.run_stage(
        "similarity",
        [&] {
          return run_similarity_job(sketches, params, knobs, exec,
                                    result.similarity_stats);
        },
        encode_matrix, decode_matrix);
    result.sim_total_s += result.similarity_stats.timeline.total_s;
    result.labels = driver.run_stage(
        "hierarchical-cluster",
        [&] {
          return run_hierarchical_job(matrix, params, knobs, exec,
                                      result.cluster_stats);
        },
        encode_labels, decode_labels);
    result.sim_total_s += result.cluster_stats.timeline.total_s;
  }
}

}  // namespace

FastqPipelineResult run_pipeline_fastq(std::span<const bio::FastqRecord> reads,
                                       const bio::QualityFilter& qc,
                                       const PipelineParams& params,
                                       const ExecutionOptions& exec) {
  FastqPipelineResult result;
  const std::vector<bio::FastqRecord> input(reads.begin(), reads.end());
  {
    obs::Tracer::Span qc_span(obs::Tracer::global(), "pipeline/fastq_qc",
                              {{"reads", std::to_string(reads.size())}});
    const auto filtered = bio::quality_filter(input, qc, &result.dropped);
    result.kept = bio::to_fasta(filtered);
  }
  obs::Registry::global()
      .counter("pipeline.fastq_reads_dropped")
      .add(static_cast<long>(result.dropped));
  obs::Registry::global()
      .counter("pipeline.fastq_reads_kept")
      .add(static_cast<long>(result.kept.size()));
  result.clustering = run_pipeline(result.kept, params, exec);
  return result;
}

PipelineResult run_pipeline(std::span<const bio::FastaRecord> reads,
                            const PipelineParams& params,
                            const ExecutionOptions& exec) {
  common::Stopwatch watch;
  MRMC_REQUIRE(valid_sketch_bits(params.sketch_bits),
               "sketch_bits must be one of {1, 2, 4, 8, 16, 32, 64}");
  PipelineResult result;
  if (reads.empty()) return result;

  auto& tracer = obs::Tracer::global();
  obs::Tracer::Span pipeline_span(
      tracer, std::string("pipeline ") + mode_name(params.mode),
      {{"reads", std::to_string(reads.size())},
       {"distributed", exec.distributed ? "true" : "false"}});

  if (exec.distributed) {
    // Lineage root: every job this pipeline drives claims a (pipeline id,
    // stage, sequence) from this scope, so the doctor can stitch the jobs
    // back into one PipelineReport from the trace alone.
    obs::pipeline::PipelineScope lineage(std::string("pipeline-") +
                                         mode_name(params.mode));

    mr::recovery::StageDriver::Options driver_options;
    driver_options.label = std::string("pipeline-") + mode_name(params.mode);
    driver_options.checkpoint_dir = exec.checkpoint_dir;
    driver_options.retry.max_job_attempts = exec.max_job_attempts;
    driver_options.retry.job_timeout_s = exec.job_timeout_s;
    driver_options.retry.backoff_base_s = exec.backoff_base_s;
    driver_options.retry.backoff_cap_s = exec.backoff_cap_s;
    driver_options =
        mr::recovery::StageDriver::Options::from_env(driver_options);
    if (!driver_options.checkpoint_dir.empty()) {
      // Only fingerprint when checkpointing: the input hash walks every
      // read and is wasted work otherwise.
      driver_options.params_fingerprint = params_fingerprint(params);
      driver_options.input_fingerprint = input_fingerprint(reads);
    }
    mr::recovery::StageDriver driver(driver_options);

    try {
      run_pipeline_stages(reads, params, exec, driver, result);
    } catch (...) {
      // A crashed/parked/exhausted driver still leaves complete artifacts
      // behind — the resume run's doctor needs this run's trace.
      result.recovery = driver.stats();
      tracer.flush();
      obs::Registry::write_global_if_configured();
      obs::report::Collector::write_global_if_configured();
      obs::pipeline::Collector::write_global_if_configured();
      throw;
    }
    result.recovery = driver.stats();
  } else {
    const EffectiveKnobs knobs = effective_knobs(params);
    const MinHasher hasher(params.minhash);
    std::vector<std::string_view> seqs;
    seqs.reserve(reads.size());
    for (const auto& read : reads) seqs.emplace_back(read.seq);

    mr::runtime::PoolLease lease(exec.threads, exec.isolated_pool);
    kernels::SketchMatrix sketches = hasher.sketch_matrix(seqs, &lease.pool());
    // The same b-bit truncation the sketch job applies before packing, so
    // local and distributed runs score identical values at any b.
    if (params.sketch_bits < 64) {
      kernels::mask_components(sketches, sketch_bits_mask(params.sketch_bits));
    }

    if (params.candidates.backend == candidates::Backend::kLshBanded) {
      // Same candidates -> verify -> graph flow as the distributed path,
      // computed in-process (byte-identical output either way).  Band-shape
      // selection keeps the ORIGINAL theta (see EffectiveKnobs).
      const SketchEstimator estimator = params.mode == Mode::kGreedy
                                            ? knobs.greedy_estimator
                                            : knobs.estimator;
      const candidates::SparseSimilarityGraph graph = candidates::build_graph(
          sketches, params.candidates, params.theta, estimator, &lease.pool());
      result.candidate_pairs = graph.edges.size();
      if (params.mode == Mode::kGreedy) {
        result.labels =
            greedy_cluster_graph(graph, {knobs.greedy_theta, knobs.greedy_estimator})
                .labels;
      } else {
        const SimilarityMatrix matrix = similarity_matrix_from_graph(graph);
        result.labels = cut_dendrogram(agglomerate(matrix, params.linkage),
                                       knobs.theta);
      }
    } else if (params.mode == Mode::kGreedy) {
      result.labels =
          greedy_cluster(sketches, {knobs.greedy_theta, knobs.greedy_estimator}).labels;
    } else {
      result.labels = hierarchical_cluster(
                          sketches,
                          {knobs.theta, params.linkage, knobs.estimator},
                          &lease.pool())
                          .labels;
    }
  }

  result.num_clusters = count_clusters(result.labels);
  result.wall_s = watch.seconds();
  pipeline_span.arg("clusters", std::to_string(result.num_clusters));
  pipeline_span.arg("sim_total_s", obs::trace_double(result.sim_total_s));

  static const obs::Logger logger("core.pipeline");
  logger.info("pipeline finished",
              {{"mode", mode_name(params.mode)},
               {"reads", reads.size()},
               {"clusters", result.num_clusters},
               {"wall_s", result.wall_s},
               {"sim_total_s", result.sim_total_s}});

  // Honor MRMC_TRACE / MRMC_METRICS / MRMC_REPORT at every pipeline boundary
  // so even a caller that exits abnormally afterwards has a complete artifact.
  tracer.flush();
  obs::Registry::write_global_if_configured();
  obs::report::Collector::write_global_if_configured();
  obs::pipeline::Collector::write_global_if_configured();
  return result;
}

}  // namespace mrmc::core

// Shared word-counting utilities for the seed-and-filter baselines
// (CD-HIT's short-word filter, UCLUST's U-sort, ESPRIT's k-mer distance,
// MetaCluster's k-mer frequency vectors).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace mrmc::baselines {

/// Dense k-mer count vector over the full 4^k space (k <= 8 to stay small).
std::vector<std::uint16_t> word_counts(std::string_view seq, int k);

/// Number of common words counted with multiplicity: sum_w min(a[w], b[w]).
std::size_t common_words(std::span<const std::uint16_t> a,
                         std::span<const std::uint16_t> b) noexcept;

/// ESPRIT-style k-mer distance: 1 - common / (min(len_a, len_b) - k + 1).
double kmer_distance(std::span<const std::uint16_t> a, std::size_t len_a,
                     std::span<const std::uint16_t> b, std::size_t len_b,
                     int k) noexcept;

/// Normalized frequency vector (counts / total), used by MetaCluster.
std::vector<double> word_frequencies(std::string_view seq, int k);

/// Spearman rank-correlation distance between two frequency vectors:
/// d = (1 - rho) / 2 in [0, 1].  Ties receive fractional (midrank) ranks.
double spearman_distance(std::span<const double> a, std::span<const double> b);

/// CD-HIT's word-filter bound: the minimum number of common words two
/// sequences of lengths la, lb must share to possibly reach `identity`
/// (a sequence pair at identity p shares at least L - k*(1-p)*L words,
/// L = min read length; clamped at 1).
std::size_t required_common_words(std::size_t len_a, std::size_t len_b, int k,
                                  double identity) noexcept;

}  // namespace mrmc::baselines

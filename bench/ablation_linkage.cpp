// Ablation — linkage policy (single / average / complete) on the same
// sketch-similarity matrix, across a theta sweep.  The paper's $LINK
// parameter offers all three; this shows their cluster-count and accuracy
// trade-offs (single chains and under-splits, complete over-splits,
// average sits between).
//
//   ./ablation_linkage [--reads=300] [--seed=42]
#include <iostream>

#include "bench_util.hpp"

using namespace mrmc;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const std::size_t reads = flags.num("reads", 300);
  const std::uint64_t seed = flags.num("seed", 42);

  const auto sample = simdata::build_whole_metagenome(
      simdata::whole_metagenome_spec("S9"), {.reads = reads, .seed = seed});
  const core::MinHasher hasher(
      {.kmer = 5, .num_hashes = 100, .canonical = true, .seed = seed});
  std::vector<core::Sketch> sketches;
  for (const auto& read : sample.reads) sketches.push_back(hasher.sketch(read.seq));

  const auto matrix = core::pairwise_similarity_matrix(
      sketches, core::SketchEstimator::kComponentMatch, nullptr);

  common::TextTable table({"linkage", "theta", "# Cluster", "W.Acc"});
  for (const auto linkage : {core::Linkage::kSingle, core::Linkage::kAverage,
                             core::Linkage::kComplete}) {
    const auto dendrogram = core::agglomerate(matrix, linkage);
    for (const double theta : {0.40, 0.45, 0.50, 0.55, 0.60}) {
      const auto labels = core::cut_dendrogram(dendrogram, theta);
      table.add_row({core::linkage_name(linkage), common::fmt_f(theta, 2),
                     std::to_string(core::count_clusters(labels)),
                     common::fmt_pct(eval::weighted_cluster_accuracy(
                         labels, sample.labels))});
    }
  }

  std::cout << "Ablation — linkage policy on S9 (" << reads << " reads)\n";
  table.print(std::cout);
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/mr_tests.dir/mr/cluster_test.cpp.o"
  "CMakeFiles/mr_tests.dir/mr/cluster_test.cpp.o.d"
  "CMakeFiles/mr_tests.dir/mr/input_format_test.cpp.o"
  "CMakeFiles/mr_tests.dir/mr/input_format_test.cpp.o.d"
  "CMakeFiles/mr_tests.dir/mr/job_property_test.cpp.o"
  "CMakeFiles/mr_tests.dir/mr/job_property_test.cpp.o.d"
  "CMakeFiles/mr_tests.dir/mr/job_test.cpp.o"
  "CMakeFiles/mr_tests.dir/mr/job_test.cpp.o.d"
  "CMakeFiles/mr_tests.dir/mr/simdfs_test.cpp.o"
  "CMakeFiles/mr_tests.dir/mr/simdfs_test.cpp.o.d"
  "mr_tests"
  "mr_tests.pdb"
  "mr_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/env16s_binning.dir/env16s_binning.cpp.o"
  "CMakeFiles/env16s_binning.dir/env16s_binning.cpp.o.d"
  "env16s_binning"
  "env16s_binning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/env16s_binning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "core/hierarchical.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "common/error.hpp"

namespace mrmc::core {

const char* linkage_name(Linkage linkage) noexcept {
  switch (linkage) {
    case Linkage::kSingle: return "single";
    case Linkage::kAverage: return "average";
    case Linkage::kComplete: return "complete";
  }
  return "?";
}

SimilarityMatrix::SimilarityMatrix(std::size_t n, float fill)
    : n_(n), data_(n * n, fill) {}

SimilarityMatrix pairwise_similarity_matrix(std::span<const Sketch> sketches,
                                            SketchEstimator estimator,
                                            common::ThreadPool* pool) {
  const std::size_t n = sketches.size();
  SimilarityMatrix matrix(n, 0.0F);

  // Pre-sort for the set-based estimator so each comparison is a linear merge.
  std::vector<Sketch> sorted;
  if (estimator == SketchEstimator::kSetBased) {
    sorted.reserve(n);
    for (const auto& sketch : sketches) {
      Sketch s = sketch;
      std::sort(s.begin(), s.end());
      s.erase(std::unique(s.begin(), s.end()), s.end());
      sorted.push_back(std::move(s));
    }
  }

  auto fill_row = [&](std::size_t i) {
    matrix.set(i, i, 1.0F);
    for (std::size_t j = i + 1; j < n; ++j) {
      const double sim =
          estimator == SketchEstimator::kSetBased
              ? bio::exact_jaccard(sorted[i], sorted[j])
              : component_match_similarity(sketches[i], sketches[j]);
      matrix.set(i, j, static_cast<float>(sim));
    }
  };

  if (pool != nullptr && n > 64) {
    pool->parallel_for(n, fill_row);
  } else {
    for (std::size_t i = 0; i < n; ++i) fill_row(i);
  }
  return matrix;
}

Dendrogram agglomerate(const SimilarityMatrix& matrix, Linkage linkage) {
  const std::size_t n = matrix.size();
  Dendrogram dendrogram;
  dendrogram.num_leaves = n;
  if (n <= 1) return dendrogram;
  dendrogram.merges.reserve(n - 1);

  // Working distance matrix, mutated in place by Lance-Williams updates.
  std::vector<double> dist(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      dist[i * n + j] = 1.0 - static_cast<double>(matrix.at(i, j));
    }
  }

  std::vector<bool> active(n, true);
  std::vector<std::size_t> cluster_size(n, 1);
  std::vector<int> node_id(n);  // dendrogram node currently in each slot
  std::iota(node_id.begin(), node_id.end(), 0);

  auto nearest = [&](std::size_t slot) {
    std::size_t best = n;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t other = 0; other < n; ++other) {
      if (other == slot || !active[other]) continue;
      const double d = dist[slot * n + other];
      if (d < best_dist) {
        best_dist = d;
        best = other;
      }
    }
    MRMC_CHECK(best < n, "no active neighbour found");
    return std::pair{best, best_dist};
  };

  std::vector<std::size_t> chain;
  chain.reserve(n);
  std::size_t merges_done = 0;
  std::size_t scan_start = 0;  // earliest possibly-active slot

  while (merges_done < n - 1) {
    if (chain.empty()) {
      while (!active[scan_start]) ++scan_start;
      chain.push_back(scan_start);
    }
    // Grow the chain until a reciprocal nearest-neighbour pair appears.
    for (;;) {
      const std::size_t tip = chain.back();
      const auto [nn, d] = nearest(tip);
      if (chain.size() >= 2 && nn == chain[chain.size() - 2]) {
        // Reciprocal pair (tip, nn): merge.
        const std::size_t a = std::min(tip, nn);
        const std::size_t b = std::max(tip, nn);

        Dendrogram::Merge merge;
        merge.left = node_id[a];
        merge.right = node_id[b];
        merge.distance = d;
        merge.size = cluster_size[a] + cluster_size[b];
        dendrogram.merges.push_back(merge);

        // Lance-Williams update into slot a; slot b dies.
        const auto size_a = static_cast<double>(cluster_size[a]);
        const auto size_b = static_cast<double>(cluster_size[b]);
        for (std::size_t k = 0; k < n; ++k) {
          if (!active[k] || k == a || k == b) continue;
          const double dak = dist[a * n + k];
          const double dbk = dist[b * n + k];
          double updated = 0;
          switch (linkage) {
            case Linkage::kSingle: updated = std::min(dak, dbk); break;
            case Linkage::kComplete: updated = std::max(dak, dbk); break;
            case Linkage::kAverage:
              updated = (size_a * dak + size_b * dbk) / (size_a + size_b);
              break;
          }
          dist[a * n + k] = updated;
          dist[k * n + a] = updated;
        }
        active[b] = false;
        cluster_size[a] += cluster_size[b];
        node_id[a] = static_cast<int>(n + merges_done);
        ++merges_done;

        chain.pop_back();
        chain.pop_back();
        break;
      }
      chain.push_back(nn);
    }
  }

  // Merges are recorded in creation order: children always precede parents
  // (node n + i exists only after merge i).  Heights may interleave across
  // chain restarts; consumers that need height order sort by distance.
  return dendrogram;
}

namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<int> cut_dendrogram(const Dendrogram& dendrogram, double theta) {
  MRMC_REQUIRE(theta >= 0.0 && theta <= 1.0, "theta in [0, 1]");
  const std::size_t n = dendrogram.num_leaves;
  const double max_distance = 1.0 - theta + 1e-12;

  // Merges are in creation order (children precede parents: node n + i only
  // exists after merge i), so one forward pass resolves every node to a
  // representative leaf.  A merge within the cutoff unites its two sides.
  UnionFind uf(n);
  std::vector<int> rep(n + dendrogram.merges.size(), -1);
  for (std::size_t i = 0; i < n; ++i) rep[i] = static_cast<int>(i);

  for (std::size_t idx = 0; idx < dendrogram.merges.size(); ++idx) {
    const auto& merge = dendrogram.merges[idx];
    const int left_rep = rep[merge.left];
    const int right_rep = rep[merge.right];
    MRMC_CHECK(left_rep >= 0 && right_rep >= 0,
               "dendrogram children must precede parents");
    if (merge.distance <= max_distance) {
      uf.unite(static_cast<std::size_t>(left_rep),
               static_cast<std::size_t>(right_rep));
    }
    rep[n + idx] = left_rep;
  }

  // Compact labels in order of first appearance.
  std::vector<int> labels(n, -1);
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = uf.find(i);
    auto it = std::find(roots.begin(), roots.end(), root);
    if (it == roots.end()) {
      roots.push_back(root);
      labels[i] = static_cast<int>(roots.size() - 1);
    } else {
      labels[i] = static_cast<int>(it - roots.begin());
    }
  }
  return labels;
}


HierarchicalResult hierarchical_cluster(std::span<const Sketch> sketches,
                                        const HierarchicalParams& params,
                                        common::ThreadPool* pool) {
  HierarchicalResult result;
  if (sketches.empty()) return result;
  const SimilarityMatrix matrix =
      pairwise_similarity_matrix(sketches, params.estimator, pool);
  result.dendrogram = agglomerate(matrix, params.linkage);
  result.labels = cut_dendrogram(result.dendrogram, params.theta);
  result.num_clusters = count_clusters(result.labels);
  return result;
}

std::size_t count_clusters(std::span<const int> labels) {
  std::unordered_set<int> unique(labels.begin(), labels.end());
  return unique.size();
}

}  // namespace mrmc::core

// Approximate serialized-size accounting used for shuffle-volume and disk
// I/O modeling, plus a stable key hash over the same recursive structure.
// Matches what a Hadoop Writable would roughly occupy.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/prng.hpp"

namespace mrmc::mr {

class StableHasher;

template <typename T>
double approx_bytes(const T& value);

/// Every variable-length container (string, vector) is charged one 8-byte
/// header on top of its elements — the u64 length prefix a Writable-style
/// encoding (and our own stable_hash_append) would carry.  One shared
/// constant so the string and vector branches can never drift apart again.
inline constexpr double kContainerHeaderBytes = 8.0;

namespace detail {

template <typename T>
struct is_pair : std::false_type {};
template <typename A, typename B>
struct is_pair<std::pair<A, B>> : std::true_type {};

template <typename T>
struct is_vector : std::false_type {};
template <typename T, typename A>
struct is_vector<std::vector<T, A>> : std::true_type {};

/// Types that know their own exact wire size (e.g. mr::BinaryBlock) expose
/// it via this member hook; approx_bytes dispatches to it so the shuffle
/// accounting reports the true serialized volume, not a model.
template <typename T>
concept HasApproxSerializedBytes = requires(const T& value) {
  { value.approx_serialized_bytes() } -> std::convertible_to<double>;
};

/// Matching member hook for stable_hash_append (shape + payload feed).
template <typename T>
concept HasStableHashInto = requires(const T& value, StableHasher& hasher) {
  value.stable_hash_into(hasher);
};

}  // namespace detail

/// Size estimate: arithmetic types by sizeof, strings by length + header,
/// vectors and pairs recursively, self-describing types (BinaryBlock) by
/// their exact wire size.  Unknown aggregates fall back to sizeof.
template <typename T>
double approx_bytes(const T& value) {
  if constexpr (std::is_arithmetic_v<T> || std::is_enum_v<T>) {
    (void)value;
    return static_cast<double>(sizeof(T));
  } else if constexpr (std::is_same_v<T, std::string>) {
    return static_cast<double>(value.size()) + kContainerHeaderBytes;
  } else if constexpr (detail::is_pair<T>::value) {
    return approx_bytes(value.first) + approx_bytes(value.second);
  } else if constexpr (detail::is_vector<T>::value) {
    double total = kContainerHeaderBytes;
    for (const auto& element : value) total += approx_bytes(element);
    return total;
  } else if constexpr (detail::HasApproxSerializedBytes<T>) {
    return value.approx_serialized_bytes();
  } else {
    (void)value;
    return static_cast<double>(sizeof(T));
  }
}

/// Incremental FNV-1a over a byte stream.  Unlike std::hash, the result is
/// fully specified, so shuffle partition assignment (and everything derived
/// from it: JobStats, shuffle bytes, the simulated timeline) reproduces
/// across standard libraries and platforms of the same endianness.
class StableHasher {
 public:
  void write(const void* data, std::size_t size) noexcept {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ = (hash_ ^ static_cast<std::uint64_t>(bytes[i])) * kPrime;
    }
  }

  /// Finalize with a full-avalanche mix so the low bits (used by
  /// `hash % num_reducers`) are as good as the high ones.
  [[nodiscard]] std::uint64_t finish() const noexcept {
    return common::mix64(hash_);
  }

  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ULL;
  static constexpr std::uint64_t kPrime = 1099511628211ULL;

 private:
  std::uint64_t hash_ = kOffsetBasis;
};

/// Feeds `value` into `hasher` following the same recursion as approx_bytes:
/// arithmetic types as raw bytes, strings and vectors length-prefixed (so
/// ("ab","c") and ("a","bc") hash differently as pairs), pairs recursively.
template <typename T>
void stable_hash_append(StableHasher& hasher, const T& value) {
  if constexpr (std::is_arithmetic_v<T> || std::is_enum_v<T>) {
    hasher.write(&value, sizeof(T));
  } else if constexpr (std::is_same_v<T, std::string>) {
    const std::uint64_t size = value.size();
    hasher.write(&size, sizeof(size));
    hasher.write(value.data(), value.size());
  } else if constexpr (detail::is_pair<T>::value) {
    stable_hash_append(hasher, value.first);
    stable_hash_append(hasher, value.second);
  } else if constexpr (detail::is_vector<T>::value) {
    const std::uint64_t size = value.size();
    hasher.write(&size, sizeof(size));
    for (const auto& element : value) stable_hash_append(hasher, element);
  } else if constexpr (detail::HasStableHashInto<T>) {
    value.stable_hash_into(hasher);
  } else {
    hasher.write(&value, sizeof(T));
  }
}

/// Stable 64-bit hash of a key; the engine's default partitioner.
template <typename T>
[[nodiscard]] std::uint64_t stable_hash(const T& value) {
  StableHasher hasher;
  stable_hash_append(hasher, value);
  return hasher.finish();
}

}  // namespace mrmc::mr

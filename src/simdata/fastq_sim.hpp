// FASTQ emission for the read simulators: attaches Phred qualities that are
// *calibrated to the injected errors* — bases that were substituted or
// inserted get low scores with high probability, clean bases get high
// scores — so the bio::quality_filter pre-processing stage has a realistic
// signal to work with (the full raw-sequencer → QC → clustering pipeline).
#pragma once

#include <cstdint>
#include <vector>

#include "bio/fastq.hpp"
#include "simdata/reads.hpp"

namespace mrmc::simdata {

struct QualityModel {
  int clean_quality = 38;      ///< Phred score of a correct base (454 peak)
  int error_quality = 8;       ///< Phred score of a miscalled base
  int jitter = 4;              ///< +/- uniform noise on every score
  double miscalibrated = 0.1;  ///< fraction of error bases that look clean
};

/// Wrap FASTA reads as FASTQ.  `error_positions[i]` lists the 0-based
/// positions in read i that carry an injected error (may be empty).
std::vector<bio::FastqRecord> attach_qualities(
    const std::vector<bio::FastaRecord>& reads,
    const std::vector<std::vector<std::size_t>>& error_positions,
    const QualityModel& model, std::uint64_t seed);

/// Re-run an error model over template reads, recording where errors land,
/// and emit FASTQ.  This is the FASTQ-producing twin of apply_errors().
struct FastqSimResult {
  std::vector<bio::FastqRecord> reads;
  std::vector<std::vector<std::size_t>> error_positions;
};

FastqSimResult simulate_fastq(const std::vector<bio::FastaRecord>& templates,
                              const ErrorModel& errors, const QualityModel& model,
                              std::uint64_t seed);

}  // namespace mrmc::simdata

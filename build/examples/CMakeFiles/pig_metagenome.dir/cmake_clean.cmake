file(REMOVE_RECURSE
  "CMakeFiles/pig_metagenome.dir/pig_metagenome.cpp.o"
  "CMakeFiles/pig_metagenome.dir/pig_metagenome.cpp.o.d"
  "pig_metagenome"
  "pig_metagenome.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pig_metagenome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

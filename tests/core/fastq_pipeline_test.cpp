#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "simdata/fastq_sim.hpp"
#include "simdata/marker16s.hpp"

namespace mrmc::core {
namespace {

/// FASTQ sample: two OTUs of clean reads plus garbage reads whose qualities
/// flag them for the QC stage.
std::vector<bio::FastqRecord> fastq_sample(std::size_t per_otu,
                                           std::size_t garbage,
                                           std::uint64_t seed) {
  const auto genes = simdata::generate_16s_genes(2, {}, seed);
  simdata::AmpliconParams params;
  params.read_length = 80;
  params.length_jitter = 0.05;
  const auto clean = simdata::amplicon_reads(genes, {1.0, 1.0}, 2 * per_otu,
                                             params, seed + 1);
  auto fastq = simdata::attach_qualities(
      clean.reads, std::vector<std::vector<std::size_t>>(clean.size()), {},
      seed + 2);

  // Garbage reads: heavily corrupted with matching low qualities.
  const auto noisy = simdata::simulate_fastq(
      std::vector<bio::FastaRecord>(garbage,
                                    {"junk", "junk", clean.reads[0].seq}),
      {.subst_rate = 0.4}, {.miscalibrated = 0.0}, seed + 3);
  for (const auto& record : noisy.reads) fastq.push_back(record);
  return fastq;
}

PipelineParams params_16s() {
  PipelineParams params;
  params.minhash = {.kmer = 12, .num_hashes = 40, .seed = 5};
  params.theta = 0.4;
  return params;
}

TEST(FastqPipeline, QcDropsGarbageAndClustersSurvivors) {
  const auto fastq = fastq_sample(10, 6, 50);
  ExecutionOptions exec;
  exec.distributed = false;
  const auto result = run_pipeline_fastq(
      fastq, {.trim_quality = 15, .min_length = 40, .max_mean_error = 0.01},
      params_16s(), exec);

  EXPECT_EQ(result.dropped, 6u);  // every garbage read trimmed to oblivion
  EXPECT_EQ(result.kept.size(), 20u);
  EXPECT_EQ(result.clustering.labels.size(), result.kept.size());
  EXPECT_EQ(result.clustering.num_clusters, 2u);  // the two OTUs
}

TEST(FastqPipeline, NoFilteringMatchesPlainPipeline) {
  const auto fastq = fastq_sample(8, 0, 51);
  ExecutionOptions exec;
  exec.distributed = false;
  bio::QualityFilter lenient;
  lenient.trim_quality = 0;
  lenient.min_length = 1;
  lenient.max_mean_error = 1.0;

  const auto via_fastq = run_pipeline_fastq(fastq, lenient, params_16s(), exec);
  const auto direct = run_pipeline(bio::to_fasta(fastq), params_16s(), exec);
  EXPECT_EQ(via_fastq.dropped, 0u);
  EXPECT_EQ(via_fastq.clustering.labels, direct.labels);
}

TEST(FastqPipeline, EmptyInput) {
  const auto result = run_pipeline_fastq({}, {}, params_16s());
  EXPECT_TRUE(result.kept.empty());
  EXPECT_EQ(result.clustering.num_clusters, 0u);
}

}  // namespace
}  // namespace mrmc::core

// Parameterized property tests for the MapReduce engine: for any
// (reducers, split size, node count) configuration, a word-count job must
// produce identical, complete, deterministic results — the engine's
// correctness must never depend on its performance knobs.
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "common/prng.hpp"
#include "mr/job.hpp"

namespace mrmc::mr {
namespace {

using CountJob = Job<long, long, long, std::pair<long, long>>;

std::vector<long> make_input(std::size_t records, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::vector<long> input(records);
  for (auto& value : input) value = static_cast<long>(rng.bounded(37));
  return input;
}

using Hist = std::map<long, long>;

Hist expected_histogram(const std::vector<long>& input) {
  Hist histogram;
  for (const long value : input) ++histogram[value];
  return histogram;
}

CountJob::Mapper histogram_mapper() {
  return [](const long& record, Emitter<long, long>& emit) {
    emit.emit(record, 1);
  };
}

CountJob::Reducer sum_reducer() {
  return [](const long& key, std::vector<long>& values,
            std::vector<std::pair<long, long>>& out) {
    long total = 0;
    for (const long v : values) total += v;
    out.emplace_back(key, total);
  };
}

// (num_reducers, records_per_split, nodes)
using EngineShape = std::tuple<std::size_t, std::size_t, std::size_t>;

class EngineShapeSweep : public ::testing::TestWithParam<EngineShape> {};

TEST_P(EngineShapeSweep, HistogramIsExactUnderAnyShape) {
  const auto [reducers, split, nodes] = GetParam();
  const auto input = make_input(500, 11);

  JobConfig config;
  config.num_reducers = reducers;
  config.records_per_split = split;
  config.cluster.nodes = nodes;
  config.threads = 2;
  CountJob job(config, histogram_mapper(), sum_reducer());
  const auto result = job.run(input);

  const Hist histogram(result.output.begin(), result.output.end());
  EXPECT_EQ(histogram, expected_histogram(input));
  EXPECT_EQ(result.stats.input_records, 500u);
  EXPECT_EQ(result.stats.reduce_groups, histogram.size());
}

TEST_P(EngineShapeSweep, CombinerNeverChangesTheAnswer) {
  const auto [reducers, split, nodes] = GetParam();
  const auto input = make_input(300, 13);

  JobConfig config;
  config.num_reducers = reducers;
  config.records_per_split = split;
  config.cluster.nodes = nodes;

  CountJob plain(config, histogram_mapper(), sum_reducer());
  CountJob combined(config, histogram_mapper(), sum_reducer());
  combined.with_combiner([](const long& key, std::vector<long>& values,
                            Emitter<long, long>& emit) {
    long total = 0;
    for (const long v : values) total += v;
    emit.emit(key, total);
  });

  const auto a = plain.run(input);
  const auto b = combined.run(input);
  EXPECT_EQ(Hist(a.output.begin(), a.output.end()),
            Hist(b.output.begin(), b.output.end()));
  EXPECT_LE(b.stats.shuffle_bytes, a.stats.shuffle_bytes);
}

TEST_P(EngineShapeSweep, SimulatedTimeIsDeterministic) {
  const auto [reducers, split, nodes] = GetParam();
  const auto input = make_input(200, 17);

  JobConfig config;
  config.num_reducers = reducers;
  config.records_per_split = split;
  config.cluster.nodes = nodes;
  CountJob job1(config, histogram_mapper(), sum_reducer());
  CountJob job2(config, histogram_mapper(), sum_reducer());
  EXPECT_DOUBLE_EQ(job1.run(input).stats.timeline.total_s,
                   job2.run(input).stats.timeline.total_s);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineShapeSweep,
    ::testing::Values(EngineShape{1, 1, 1}, EngineShape{1, 1000, 1},
                      EngineShape{2, 7, 2}, EngineShape{4, 32, 4},
                      EngineShape{8, 64, 8}, EngineShape{16, 500, 12},
                      EngineShape{3, 501, 5}));

class FailureSweep : public ::testing::TestWithParam<double> {};

TEST_P(FailureSweep, OutputSurvivesAnyFailureRate) {
  const auto input = make_input(200, 19);
  JobConfig config;
  config.records_per_split = 10;
  config.map_failure_rate = GetParam();
  config.seed = 23;
  CountJob job(config, histogram_mapper(), sum_reducer());
  const auto result = job.run(input);
  EXPECT_EQ(Hist(result.output.begin(), result.output.end()),
            expected_histogram(input));
}

INSTANTIATE_TEST_SUITE_P(Rates, FailureSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace mrmc::mr

#include "baselines/mc_lsh.hpp"

#include <algorithm>
#include <unordered_map>

#include "bio/kmer.hpp"
#include "common/error.hpp"
#include "common/prng.hpp"
#include "common/timer.hpp"
#include "core/minhash.hpp"

namespace mrmc::baselines {

namespace {

/// Hash one band (a contiguous slice of the signature) into a bucket key.
std::uint64_t band_bucket(const core::Sketch& signature, std::size_t band,
                          std::size_t rows) {
  std::uint64_t h = 0x811c9dc5ULL ^ (band * 0x9e3779b97f4a7c15ULL);
  for (std::size_t r = band * rows; r < (band + 1) * rows; ++r) {
    h = common::mix64(h ^ signature[r]);
  }
  return h;
}

}  // namespace

BaselineResult mclsh_cluster(std::span<const bio::FastaRecord> reads,
                             const McLshParams& params) {
  MRMC_REQUIRE(params.bands >= 1 && params.num_hashes % params.bands == 0,
               "bands must divide num_hashes");
  MRMC_REQUIRE(params.theta >= 0.0 && params.theta <= 1.0, "theta in [0, 1]");
  common::Stopwatch watch;
  BaselineResult result;
  result.labels.assign(reads.size(), -1);
  if (reads.empty()) return result;

  const std::size_t rows = params.num_hashes / params.bands;
  const core::MinHasher hasher(
      {params.kmer, params.num_hashes, false, params.seed});

  // Feature sets (for exact verification) and LSH signatures.
  std::vector<std::vector<std::uint64_t>> features;
  std::vector<core::Sketch> signatures;
  features.reserve(reads.size());
  signatures.reserve(reads.size());
  for (const auto& read : reads) {
    features.push_back(bio::kmer_set(read.seq, {.k = params.kmer}));
    signatures.push_back(hasher.sketch_features(features.back()));
  }

  // band bucket -> representative cluster ids whose signature hit it.
  std::vector<std::unordered_map<std::uint64_t, std::vector<int>>> buckets(
      params.bands);
  std::vector<std::size_t> rep_read;  // cluster id -> representative read

  for (std::size_t query = 0; query < reads.size(); ++query) {
    // Collect candidate clusters from all band collisions.
    std::vector<int> candidates;
    for (std::size_t band = 0; band < params.bands; ++band) {
      const std::uint64_t bucket = band_bucket(signatures[query], band, rows);
      const auto it = buckets[band].find(bucket);
      if (it == buckets[band].end()) continue;
      for (const int cluster : it->second) {
        if (std::find(candidates.begin(), candidates.end(), cluster) ==
            candidates.end()) {
          candidates.push_back(cluster);
        }
      }
    }

    int assigned = -1;
    for (const int cluster : candidates) {
      ++result.comparisons;
      const double jaccard =
          bio::exact_jaccard(features[rep_read[cluster]], features[query]);
      if (jaccard >= params.theta) {
        assigned = cluster;
        break;
      }
    }
    if (assigned < 0) {
      assigned = static_cast<int>(rep_read.size());
      rep_read.push_back(query);
      for (std::size_t band = 0; band < params.bands; ++band) {
        buckets[band][band_bucket(signatures[query], band, rows)].push_back(
            assigned);
      }
    }
    result.labels[query] = assigned;
  }

  result.num_clusters = rep_read.size();
  result.wall_s = watch.seconds();
  return result;
}

}  // namespace mrmc::baselines

#include "mr/job.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "mr/bytes.hpp"

namespace mrmc::mr {
namespace {

using WordCountJob = Job<std::string, std::string, long, std::pair<std::string, long>>;

JobConfig test_config(std::size_t reducers = 3, std::size_t split = 2) {
  JobConfig config;
  config.name = "test";
  config.num_reducers = reducers;
  config.records_per_split = split;
  config.threads = 2;
  config.cluster.nodes = 4;
  return config;
}

WordCountJob::Mapper word_mapper() {
  return [](const std::string& line, Emitter<std::string, long>& emit) {
    std::istringstream stream(line);
    std::string word;
    while (stream >> word) emit.emit(word, 1);
  };
}

WordCountJob::Reducer sum_reducer() {
  return [](const std::string& word, std::vector<long>& counts,
            std::vector<std::pair<std::string, long>>& out) {
    long total = 0;
    for (const long c : counts) total += c;
    out.emplace_back(word, total);
  };
}

std::map<std::string, long> to_map(
    const std::vector<std::pair<std::string, long>>& pairs) {
  return {pairs.begin(), pairs.end()};
}

const std::vector<std::string> kLines = {
    "the quick brown fox", "the lazy dog",      "the fox jumps",
    "lazy lazy dog",       "quick brown brown", "fox"};

TEST(Job, WordCountEndToEnd) {
  WordCountJob job(test_config(), word_mapper(), sum_reducer());
  const auto result = job.run(kLines);
  const auto counts = to_map(result.output);
  EXPECT_EQ(counts.at("the"), 3);
  EXPECT_EQ(counts.at("lazy"), 3);
  EXPECT_EQ(counts.at("brown"), 3);
  EXPECT_EQ(counts.at("fox"), 3);
  EXPECT_EQ(counts.at("quick"), 2);
  EXPECT_EQ(counts.at("dog"), 2);
  EXPECT_EQ(counts.at("jumps"), 1);
}

TEST(Job, StatsCountRecords) {
  WordCountJob job(test_config(3, 2), word_mapper(), sum_reducer());
  const auto result = job.run(kLines);
  const JobStats& stats = result.stats;
  EXPECT_EQ(stats.input_records, 6u);
  EXPECT_EQ(stats.map_tasks, 3u);  // 6 lines / 2 per split
  EXPECT_EQ(stats.reduce_tasks, 3u);
  EXPECT_EQ(stats.map_output_records, 17u);  // total words
  EXPECT_EQ(stats.reduce_groups, 7u);        // distinct words
  EXPECT_EQ(stats.output_records, 7u);
  EXPECT_GT(stats.shuffle_bytes, 0.0);
  EXPECT_GT(stats.timeline.total_s, 0.0);
}

TEST(Job, CombinerShrinksShuffleWithoutChangingOutput) {
  WordCountJob plain(test_config(2, 3), word_mapper(), sum_reducer());
  const auto baseline = plain.run(kLines);

  WordCountJob combined(test_config(2, 3), word_mapper(), sum_reducer());
  combined.with_combiner([](const std::string& word, std::vector<long>& counts,
                            Emitter<std::string, long>& emit) {
    long total = 0;
    for (const long c : counts) total += c;
    emit.emit(word, total);
  });
  const auto result = combined.run(kLines);

  EXPECT_EQ(to_map(result.output), to_map(baseline.output));
  EXPECT_LT(result.stats.map_output_records, baseline.stats.map_output_records);
  EXPECT_LT(result.stats.shuffle_bytes, baseline.stats.shuffle_bytes);
  EXPECT_EQ(result.stats.pre_combine_records,
            baseline.stats.map_output_records);
}

TEST(Job, CustomPartitionerRoutesKeys) {
  // All keys to partition 0: reducer 0 sees every group.
  WordCountJob job(test_config(4, 2), word_mapper(), sum_reducer());
  job.with_partitioner([](const std::string&) { return std::size_t{0}; });
  const auto result = job.run(kLines);
  EXPECT_EQ(result.stats.reduce_groups, 7u);
  EXPECT_EQ(to_map(result.output).size(), 7u);
}

TEST(Job, DeterministicOutputAcrossRuns) {
  WordCountJob job1(test_config(3, 2), word_mapper(), sum_reducer());
  WordCountJob job2(test_config(3, 2), word_mapper(), sum_reducer());
  const auto a = job1.run(kLines);
  const auto b = job2.run(kLines);
  EXPECT_EQ(a.output, b.output);  // identical ordering, not just same set
  EXPECT_DOUBLE_EQ(a.stats.timeline.total_s, b.stats.timeline.total_s);
}

TEST(Job, EmptyInputProducesEmptyOutput) {
  WordCountJob job(test_config(), word_mapper(), sum_reducer());
  const auto result = job.run({});
  EXPECT_TRUE(result.output.empty());
  EXPECT_EQ(result.stats.input_records, 0u);
}

TEST(Job, SingleRecordSingleReducer) {
  WordCountJob job(test_config(1, 10), word_mapper(), sum_reducer());
  const auto result = job.run({"hello hello"});
  ASSERT_EQ(result.output.size(), 1u);
  EXPECT_EQ(result.output[0], (std::pair<std::string, long>{"hello", 2}));
}

TEST(Job, CountersAggregateAcrossTasks) {
  WordCountJob job(test_config(2, 2),
                   [](const std::string& line, Emitter<std::string, long>& emit) {
                     emit.count("lines.seen");
                     emit.emit(line.substr(0, 1), 1);
                   },
                   sum_reducer());
  const auto result = job.run(kLines);
  EXPECT_EQ(result.stats.counters.at("lines.seen"), 6);
}

TEST(Job, ValuesArriveGroupedAndComplete) {
  using GroupJob = Job<int, int, int, std::pair<int, std::vector<int>>>;
  GroupJob job(test_config(2, 3),
               [](const int& record, Emitter<int, int>& emit) {
                 emit.emit(record % 3, record);
               },
               [](const int& key, std::vector<int>& values,
                  std::vector<std::pair<int, std::vector<int>>>& out) {
                 std::sort(values.begin(), values.end());
                 out.emplace_back(key, values);
               });
  std::vector<int> input(12);
  for (int i = 0; i < 12; ++i) input[i] = i;
  const auto result = job.run(input);
  ASSERT_EQ(result.output.size(), 3u);
  for (const auto& [key, values] : result.output) {
    ASSERT_EQ(values.size(), 4u);
    for (const int v : values) EXPECT_EQ(v % 3, key);
  }
}

TEST(Job, FailureInjectionCountsRetriesAndPreservesOutput) {
  auto config = test_config(2, 1);   // 6 map tasks
  config.map_failure_rate = 1.0;     // every task fails...
  config.max_task_attempts = 2;      // ...exactly once (cap leaves 1 retry)
  WordCountJob job(config, word_mapper(), sum_reducer());
  const auto result = job.run(kLines);
  EXPECT_EQ(result.stats.map_retries, 6u);
  EXPECT_EQ(result.stats.max_task_attempts, 2u);
  EXPECT_EQ(to_map(result.output).at("the"), 3);

  auto clean_config = test_config(2, 1);
  WordCountJob clean(clean_config, word_mapper(), sum_reducer());
  const auto baseline = clean.run(kLines);
  // Retried tasks cost more simulated time.
  EXPECT_GT(result.stats.timeline.total_s, baseline.stats.timeline.total_s);
}

TEST(Job, WorkModelsDriveSimulatedTime) {
  auto slow_config = test_config(2, 2);
  WordCountJob slow(slow_config, word_mapper(), sum_reducer());
  slow.with_map_work([](const std::string&) { return 100.0; });
  WordCountJob fast(test_config(2, 2), word_mapper(), sum_reducer());
  fast.with_map_work([](const std::string&) { return 0.001; });
  EXPECT_GT(slow.run(kLines).stats.timeline.total_s,
            fast.run(kLines).stats.timeline.total_s);
}

TEST(Job, MoreNodesReduceSimulatedTime) {
  auto small = test_config(4, 1);
  small.cluster.nodes = 2;
  auto large = test_config(4, 1);
  large.cluster.nodes = 12;
  WordCountJob job_small(small, word_mapper(), sum_reducer());
  WordCountJob job_large(large, word_mapper(), sum_reducer());
  job_small.with_map_work([](const std::string&) { return 50.0; });
  job_large.with_map_work([](const std::string&) { return 50.0; });
  EXPECT_GT(job_small.run(kLines).stats.timeline.total_s,
            job_large.run(kLines).stats.timeline.total_s);
}

TEST(Job, RunSplitsHonorsExplicitLocality) {
  WordCountJob job(test_config(2, 2), word_mapper(), sum_reducer());
  const std::vector<std::vector<std::string>> splits = {{"a b"}, {"c d"}};
  const auto result = job.run_splits(splits, {1, 3});
  EXPECT_EQ(result.stats.map_tasks, 2u);
  EXPECT_EQ(to_map(result.output).size(), 4u);
  EXPECT_THROW(job.run_splits(splits, {1}), common::InvalidArgument);
}

TEST(Job, RejectsInvalidConfig) {
  auto config = test_config();
  config.num_reducers = 0;
  EXPECT_THROW(WordCountJob(config, word_mapper(), sum_reducer()),
               common::InvalidArgument);
  config = test_config();
  config.records_per_split = 0;
  EXPECT_THROW(WordCountJob(config, word_mapper(), sum_reducer()),
               common::InvalidArgument);
}

TEST(Job, RejectsZeroAttemptBudget) {
  auto config = test_config();
  config.max_task_attempts = 0;  // would mean no attempt ever runs
  EXPECT_THROW(WordCountJob(config, word_mapper(), sum_reducer()),
               common::InvalidArgument);
}

TEST(Job, RejectsOutOfRangeInjectionRates) {
  for (const double bad : {-0.1, 1.5}) {
    auto config = test_config();
    config.map_failure_rate = bad;
    EXPECT_THROW(WordCountJob(config, word_mapper(), sum_reducer()),
                 common::InvalidArgument)
        << "map_failure_rate=" << bad;
    config = test_config();
    config.reduce_failure_rate = bad;
    EXPECT_THROW(WordCountJob(config, word_mapper(), sum_reducer()),
                 common::InvalidArgument)
        << "reduce_failure_rate=" << bad;
    config = test_config();
    config.straggler_rate = bad;
    EXPECT_THROW(WordCountJob(config, word_mapper(), sum_reducer()),
                 common::InvalidArgument)
        << "straggler_rate=" << bad;
  }
  auto config = test_config();
  config.straggler_slowdown = 0.0;
  EXPECT_THROW(WordCountJob(config, word_mapper(), sum_reducer()),
               common::InvalidArgument);
}

TEST(Job, RejectsAFaultPlanTheClusterCannotSurvive) {
  auto config = test_config();  // 4 nodes
  // Names a node outside the cluster.
  config.fault_plan = faults::FaultPlan({{7, 10.0, faults::kNever}});
  EXPECT_THROW(WordCountJob(config, word_mapper(), sum_reducer()),
               common::InvalidArgument);
  // Permanently kills every node: no job could ever finish.
  config = test_config();
  config.cluster.nodes = 2;
  config.fault_plan = faults::FaultPlan(
      {{0, 10.0, faults::kNever}, {1, 20.0, faults::kNever}});
  EXPECT_THROW(WordCountJob(config, word_mapper(), sum_reducer()),
               common::InvalidArgument);
  // A survivable plan passes construction.
  config = test_config();
  config.fault_plan = faults::FaultPlan({{1, 10.0, faults::kNever}});
  EXPECT_NO_THROW(WordCountJob(config, word_mapper(), sum_reducer()));
}

TEST(Job, EmptyInputStillSimulatesAValidTimeline) {
  WordCountJob job(test_config(), word_mapper(), sum_reducer());
  const auto result = job.run({});
  // run() synthesizes one empty split so the job still flows through every
  // phase: one (trivial) map task, the configured reducers, startup cost.
  EXPECT_EQ(result.stats.map_tasks, 1u);
  EXPECT_EQ(result.stats.reduce_tasks, 3u);
  EXPECT_EQ(result.stats.reduce_groups, 0u);
  EXPECT_DOUBLE_EQ(result.stats.shuffle_bytes, 0.0);
  EXPECT_GT(result.stats.timeline.total_s, 0.0);
  EXPECT_DOUBLE_EQ(result.stats.timeline.shuffle_s, 0.0);
  EXPECT_EQ(result.stats.timeline.map_phase.tasks.size(), 1u);
  const std::string summary = result.stats.timeline.summary();
  EXPECT_NE(summary.find("total="), std::string::npos);
}

TEST(Job, ContextReducerCountersMergeIntoStats) {
  WordCountJob job(
      test_config(3, 2), word_mapper(),
      [](const std::string& word, std::vector<long>& counts,
         std::vector<std::pair<std::string, long>>& out, ReduceContext& ctx) {
        long total = 0;
        for (const long c : counts) total += c;
        out.emplace_back(word, total);
        ctx.count("groups.reduced");
        if (total >= 3) ctx.count("groups.heavy");
      });
  const auto result = job.run(kLines);
  // Counters from all 3 reduce tasks merge; map-side counters still work too.
  EXPECT_EQ(result.stats.counters.at("groups.reduced"), 7);
  EXPECT_EQ(result.stats.counters.at("groups.heavy"), 4);  // the/lazy/brown/fox
  EXPECT_EQ(to_map(result.output).at("the"), 3);
}

TEST(Job, ContextReducerMatchesPlainReducerOutput) {
  WordCountJob plain(test_config(2, 2), word_mapper(), sum_reducer());
  WordCountJob with_context(
      test_config(2, 2), word_mapper(),
      [](const std::string& word, std::vector<long>& counts,
         std::vector<std::pair<std::string, long>>& out, ReduceContext&) {
        long total = 0;
        for (const long c : counts) total += c;
        out.emplace_back(word, total);
      });
  EXPECT_EQ(plain.run(kLines).output, with_context.run(kLines).output);
}

TEST(Job, InjectedStragglersTriggerSpeculation) {
  // Straggler injection is a per-task seeded coin flip; scan a few seeds for
  // one where a minority of the 6 map tasks straggles (so the phase median
  // stays normal and speculation kicks in).  The scan is deterministic.
  auto config = test_config(2, 1);  // 6 map tasks
  config.straggler_rate = 0.3;
  config.straggler_slowdown = 50.0;
  config.cluster.speculative_execution = true;
  JobStats speculated_stats;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 32 && !found; ++seed) {
    config.seed = seed;
    WordCountJob job(config, word_mapper(), sum_reducer());
    job.with_map_work([](const std::string&) { return 5.0; });
    const auto result = job.run(kLines);
    if (result.stats.timeline.map_phase.speculated_tasks > 0) {
      speculated_stats = result.stats;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no seed in 1..32 produced a rescued straggler";

  // The same stragglers without backup copies finish strictly later.
  config.cluster.speculative_execution = false;
  WordCountJob no_backup(config, word_mapper(), sum_reducer());
  no_backup.with_map_work([](const std::string&) { return 5.0; });
  const auto slow = no_backup.run(kLines);
  EXPECT_EQ(slow.stats.timeline.map_phase.speculated_tasks, 0u);
  EXPECT_LT(speculated_stats.timeline.map_phase.makespan_s,
            slow.stats.timeline.map_phase.makespan_s);
}

// ------------------------------------------------------------- approx_bytes

TEST(ApproxBytes, ScalarsAndStrings) {
  EXPECT_DOUBLE_EQ(approx_bytes(42), 4.0);
  EXPECT_DOUBLE_EQ(approx_bytes(42L), 8.0);
  EXPECT_DOUBLE_EQ(approx_bytes(std::string("abcd")), 12.0);
}

TEST(ApproxBytes, PairsAndVectorsRecurse) {
  EXPECT_DOUBLE_EQ(approx_bytes(std::pair<int, long>{1, 2}), 12.0);
  EXPECT_DOUBLE_EQ(approx_bytes(std::vector<long>{1, 2, 3}), 8.0 + 24.0);
  const std::vector<std::string> words{"ab", "c"};
  EXPECT_DOUBLE_EQ(approx_bytes(words), 8.0 + 10.0 + 9.0);
}

}  // namespace
}  // namespace mrmc::mr

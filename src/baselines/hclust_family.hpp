// The all-pairwise-distance hierarchical family of 16S methods:
//
//  * ESPRIT (Sun et al. 2009) — k-mer distance on every pair as a cheap
//    filter; only pairs passing the filter are aligned, everything else is
//    "far".  Complete-linkage clustering on the resulting matrix.  This is
//    why ESPRIT is ~20x faster than DOTUR/Mothur but over-splits slightly.
//  * DOTUR (Schloss & Handelsman 2005) — full pairwise global-alignment
//    distance matrix, furthest-neighbour (complete-linkage) clustering.
//  * Mothur (Schloss et al. 2009) — the same cluster() core as DOTUR; we
//    model its heavier implementation by computing the alignment matrix
//    unbanded (DOTUR-like uses a band), which reproduces the paper's
//    consistent ~2x DOTUR runtime with near-identical cluster counts.
//
// All three cut the dendrogram at a similarity threshold exactly like
// MrMC-MinH^h, which is why Table V shows DOTUR/Mothur matching its W.Sim.
#pragma once

#include <span>

#include "baselines/baseline.hpp"

namespace mrmc::baselines {

struct EspritParams {
  double identity = 0.95;     ///< dendrogram cut (similarity)
  int word_size = 6;          ///< k-mer distance word size
  double kmer_filter = 0.5;   ///< align only pairs with kmer distance below this
  int band = 16;
};

BaselineResult esprit_cluster(std::span<const bio::FastaRecord> reads,
                              const EspritParams& params = {});

struct DoturParams {
  double identity = 0.95;
  int band = 16;  ///< banded alignment (DOTUR preprocessing aligns once)
};

BaselineResult dotur_cluster(std::span<const bio::FastaRecord> reads,
                             const DoturParams& params = {});

struct MothurParams {
  double identity = 0.95;
};

BaselineResult mothur_cluster(std::span<const bio::FastaRecord> reads,
                              const MothurParams& params = {});

}  // namespace mrmc::baselines

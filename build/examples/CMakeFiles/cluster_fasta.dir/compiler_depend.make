# Empty compiler generated dependencies file for cluster_fasta.
# This may be replaced when dependencies are built.

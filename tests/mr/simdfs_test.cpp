#include "mr/simdfs.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <string>

#include "common/error.hpp"

namespace mrmc::mr {
namespace {

SimDfs::Options small_options() {
  SimDfs::Options options;
  options.nodes = 4;
  options.block_size = 100;
  options.replication = 2;
  return options;
}

TEST(SimDfs, WriteReadRoundTrip) {
  SimDfs dfs(small_options());
  dfs.write("/data/sample.fa", ">a\nACGT\n");
  EXPECT_TRUE(dfs.exists("/data/sample.fa"));
  EXPECT_EQ(dfs.read("/data/sample.fa"), ">a\nACGT\n");
}

TEST(SimDfs, MissingFileThrows) {
  SimDfs dfs(small_options());
  EXPECT_THROW((void)dfs.read("/nope"), common::IoError);
  EXPECT_THROW((void)dfs.stat("/nope"), common::IoError);
  EXPECT_THROW(dfs.remove("/nope"), common::IoError);
  EXPECT_FALSE(dfs.exists("/nope"));
}

TEST(SimDfs, OverwriteReplacesContent) {
  SimDfs dfs(small_options());
  dfs.write("/f", "first");
  dfs.write("/f", "second");
  EXPECT_EQ(dfs.read("/f"), "second");
}

TEST(SimDfs, ChunksIntoBlocks) {
  SimDfs dfs(small_options());
  dfs.write("/big", std::string(250, 'x'));
  const auto& info = dfs.stat("/big");
  ASSERT_EQ(info.blocks.size(), 3u);
  EXPECT_EQ(info.blocks[0].size, 100u);
  EXPECT_EQ(info.blocks[1].size, 100u);
  EXPECT_EQ(info.blocks[2].size, 50u);
  EXPECT_EQ(info.blocks[1].offset, 100u);
  EXPECT_EQ(info.size, 250u);
}

TEST(SimDfs, ReadBlockReturnsSlice) {
  SimDfs dfs(small_options());
  std::string content;
  for (int i = 0; i < 25; ++i) content += "0123456789";
  dfs.write("/b", content);
  EXPECT_EQ(dfs.read_block("/b", 0), content.substr(0, 100));
  EXPECT_EQ(dfs.read_block("/b", 2), content.substr(200, 50));
  EXPECT_THROW((void)dfs.read_block("/b", 3), common::InvalidArgument);
}

TEST(SimDfs, ReplicationPlacesDistinctNodes) {
  SimDfs dfs(small_options());
  dfs.write("/r", std::string(500, 'y'));
  for (const auto& block : dfs.stat("/r").blocks) {
    ASSERT_EQ(block.replicas.size(), 2u);
    EXPECT_NE(block.replicas[0], block.replicas[1]);
    for (const int node : block.replicas) {
      EXPECT_GE(node, 0);
      EXPECT_LT(node, 4);
    }
  }
}

TEST(SimDfs, ReplicationClampedToNodeCount) {
  SimDfs::Options options;
  options.nodes = 2;
  options.replication = 5;
  SimDfs dfs(options);
  dfs.write("/c", "data");
  EXPECT_EQ(dfs.stat("/c").blocks[0].replicas.size(), 2u);
}

TEST(SimDfs, PrimariesRotateAcrossNodes) {
  SimDfs dfs(small_options());
  dfs.write("/rot", std::string(400, 'z'));  // 4 blocks
  const auto& blocks = dfs.stat("/rot").blocks;
  std::set<int> primaries;
  for (const auto& block : blocks) primaries.insert(block.replicas[0]);
  EXPECT_EQ(primaries.size(), 4u);  // round-robin over 4 nodes
}

TEST(SimDfs, AppendExtendsAndCreates) {
  SimDfs dfs(small_options());
  dfs.append("/log", "one");
  dfs.append("/log", "two");
  EXPECT_EQ(dfs.read("/log"), "onetwo");
}

TEST(SimDfs, ListIsSortedAndPrefixed) {
  SimDfs dfs(small_options());
  dfs.write("/out/part-1", "a");
  dfs.write("/in/reads.fa", "b");
  dfs.write("/out/part-0", "c");
  EXPECT_EQ(dfs.list(),
            (std::vector<std::string>{"/in/reads.fa", "/out/part-0", "/out/part-1"}));
  EXPECT_EQ(dfs.list("/out/"),
            (std::vector<std::string>{"/out/part-0", "/out/part-1"}));
  EXPECT_TRUE(dfs.list("/none/").empty());
}

TEST(SimDfs, RemoveDeletes) {
  SimDfs dfs(small_options());
  dfs.write("/f", "x");
  dfs.remove("/f");
  EXPECT_FALSE(dfs.exists("/f"));
}

TEST(SimDfs, NodeUsageCountsReplicas) {
  SimDfs dfs(small_options());
  dfs.write("/u", std::string(200, 'u'));  // 2 blocks x 2 replicas x 100 B
  const auto usage = dfs.node_usage();
  EXPECT_EQ(std::accumulate(usage.begin(), usage.end(), std::size_t{0}), 400u);
}

TEST(SimDfs, TotalBytesIsLogicalSize) {
  SimDfs dfs(small_options());
  dfs.write("/a", std::string(150, 'a'));
  dfs.write("/b", std::string(50, 'b'));
  EXPECT_EQ(dfs.total_bytes(), 200u);
}

TEST(SimDfs, EmptyFileAllowed) {
  SimDfs dfs(small_options());
  dfs.write("/empty", "");
  EXPECT_TRUE(dfs.exists("/empty"));
  EXPECT_EQ(dfs.read("/empty"), "");
  EXPECT_TRUE(dfs.stat("/empty").blocks.empty());
}

TEST(SimDfs, RejectsEmptyPath) {
  SimDfs dfs(small_options());
  EXPECT_THROW(dfs.write("", "x"), common::InvalidArgument);
}

}  // namespace
}  // namespace mrmc::mr

# Empty compiler generated dependencies file for mrmc_baselines.
# This may be replaced when dependencies are built.

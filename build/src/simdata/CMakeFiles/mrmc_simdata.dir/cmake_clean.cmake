file(REMOVE_RECURSE
  "CMakeFiles/mrmc_simdata.dir/datasets.cpp.o"
  "CMakeFiles/mrmc_simdata.dir/datasets.cpp.o.d"
  "CMakeFiles/mrmc_simdata.dir/fastq_sim.cpp.o"
  "CMakeFiles/mrmc_simdata.dir/fastq_sim.cpp.o.d"
  "CMakeFiles/mrmc_simdata.dir/genome.cpp.o"
  "CMakeFiles/mrmc_simdata.dir/genome.cpp.o.d"
  "CMakeFiles/mrmc_simdata.dir/marker16s.cpp.o"
  "CMakeFiles/mrmc_simdata.dir/marker16s.cpp.o.d"
  "CMakeFiles/mrmc_simdata.dir/reads.cpp.o"
  "CMakeFiles/mrmc_simdata.dir/reads.cpp.o.d"
  "libmrmc_simdata.a"
  "libmrmc_simdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmc_simdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "mr/input_format.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mrmc::mr {

namespace {

/// Byte offset of each record start, given a predicate that recognizes a
/// record-start position in the raw content.
template <typename IsStart>
std::vector<std::size_t> record_starts(const std::string& content, IsStart&& is_start) {
  std::vector<std::size_t> starts;
  for (std::size_t pos = 0; pos < content.size(); ++pos) {
    if (is_start(pos)) starts.push_back(pos);
  }
  return starts;
}

/// Assign records to blocks by their start offset, parse each record text
/// with `parse`, and attach primary-replica locality.
template <typename Record, typename Parse>
InputSplits<Record> assign_to_blocks(const SimDfs& dfs, const std::string& path,
                                     const std::string& content,
                                     const std::vector<std::size_t>& starts,
                                     Parse&& parse) {
  const DfsFileInfo& info = dfs.stat(path);
  InputSplits<Record> out;
  out.splits.resize(std::max<std::size_t>(1, info.blocks.size()));
  out.preferred_nodes.resize(out.splits.size(), 0);
  for (std::size_t b = 0; b < info.blocks.size(); ++b) {
    out.preferred_nodes[b] = info.blocks[b].replicas.empty()
                                 ? 0
                                 : info.blocks[b].replicas.front();
  }

  for (std::size_t r = 0; r < starts.size(); ++r) {
    const std::size_t begin = starts[r];
    const std::size_t end = r + 1 < starts.size() ? starts[r + 1] : content.size();
    // Find the block containing `begin`.
    std::size_t block = 0;
    if (!info.blocks.empty()) {
      block = std::min(begin / dfs.block_size(), info.blocks.size() - 1);
    }
    out.splits[block].push_back(parse(content.substr(begin, end - begin)));
  }
  return out;
}

}  // namespace

InputSplits<std::string> text_input_splits(const SimDfs& dfs,
                                           const std::string& path) {
  const std::string content = dfs.read(path);
  const auto starts = record_starts(content, [&](std::size_t pos) {
    return pos == 0 || content[pos - 1] == '\n';
  });
  auto splits = assign_to_blocks<std::string>(
      dfs, path, content, starts, [](std::string text) {
        while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
          text.pop_back();
        }
        return text;
      });
  // Drop empty lines (trailing newline artifacts).
  for (auto& split : splits.splits) {
    split.erase(std::remove_if(split.begin(), split.end(),
                               [](const std::string& s) { return s.empty(); }),
                split.end());
  }
  return splits;
}

InputSplits<bio::FastaRecord> fasta_input_splits(const SimDfs& dfs,
                                                 const std::string& path) {
  const std::string content = dfs.read(path);
  const auto starts = record_starts(content, [&](std::size_t pos) {
    return content[pos] == '>' && (pos == 0 || content[pos - 1] == '\n');
  });
  if (!content.empty() && starts.empty()) {
    throw common::IoError("fasta input: no records in '" + path + "'");
  }
  return assign_to_blocks<bio::FastaRecord>(
      dfs, path, content, starts, [](const std::string& text) {
        const auto records = bio::read_fasta_string(text);
        MRMC_CHECK(records.size() == 1, "record slice must hold one record");
        return records.front();
      });
}

}  // namespace mrmc::mr

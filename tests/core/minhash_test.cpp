#include "core/minhash.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "bio/kmer.hpp"
#include "common/error.hpp"
#include "common/prng.hpp"

namespace mrmc::core {
namespace {

// ------------------------------------------------------ UniversalHashFamily

TEST(UniversalHashFamily, DeterministicPerSeed) {
  const UniversalHashFamily a(8, 0, 5), b(8, 0, 5), c(8, 0, 6);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(a.hash(i, 12345), b.hash(i, 12345));
    EXPECT_NE(a.hash(i, 12345), c.hash(i, 12345));
  }
}

TEST(UniversalHashFamily, FunctionsAreDistinct) {
  const UniversalHashFamily family(16, 0, 7);
  std::set<std::uint64_t> values;
  for (std::size_t i = 0; i < 16; ++i) values.insert(family.hash(i, 999));
  EXPECT_EQ(values.size(), 16u);
}

TEST(UniversalHashFamily, RespectsOuterModulus) {
  const UniversalHashFamily family(4, 1024, 8);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::uint64_t x = 0; x < 100; ++x) {
      EXPECT_LT(family.hash(i, x), 1024u);
    }
  }
}

TEST(UniversalHashFamily, FullRangeStaysBelowPrime) {
  const UniversalHashFamily family(4, 0, 9);
  for (std::uint64_t x = 0; x < 100; ++x) {
    EXPECT_LT(family.hash(0, x * 0x9e3779b9ULL), UniversalHashFamily::kPrime);
  }
}

TEST(UniversalHashFamily, RejectsBadArguments) {
  EXPECT_THROW(UniversalHashFamily(0, 0, 1), common::InvalidArgument);
  EXPECT_THROW(UniversalHashFamily(1, UniversalHashFamily::kPrime + 1, 1),
               common::InvalidArgument);
}

TEST(UniversalHashFamily, IsRoughlyUniform) {
  // Bucket 10k sequential keys into 16 buckets; each should get ~625.
  const UniversalHashFamily family(1, 0, 10);
  std::vector<int> buckets(16, 0);
  for (std::uint64_t x = 0; x < 10000; ++x) {
    ++buckets[family.hash(0, x) % 16];
  }
  for (const int count : buckets) {
    EXPECT_GT(count, 450);
    EXPECT_LT(count, 800);
  }
}

// ------------------------------------------------------------------ sketches

TEST(MinHasher, SketchHasRequestedLength) {
  const MinHasher hasher({.kmer = 5, .num_hashes = 32, .seed = 1});
  EXPECT_EQ(hasher.sketch("ACGTACGTACGTACGT").size(), 32u);
  EXPECT_EQ(hasher.sketch_size(), 32u);
}

TEST(MinHasher, IdenticalSequencesShareSketch) {
  const MinHasher hasher({.kmer = 4, .num_hashes = 16, .seed = 2});
  EXPECT_EQ(hasher.sketch("ACGGTTAACCGT"), hasher.sketch("ACGGTTAACCGT"));
}

TEST(MinHasher, EmptyFeatureSetGivesSentinel) {
  const MinHasher hasher({.kmer = 10, .num_hashes = 4, .seed = 3});
  const Sketch sketch = hasher.sketch("ACG");  // shorter than k
  for (const auto v : sketch) EXPECT_EQ(v, kEmptyMin);
}

TEST(MinHasher, SketchIsOrderInsensitiveOverFeatures) {
  const MinHasher hasher({.kmer = 3, .num_hashes = 16, .seed = 4});
  const std::vector<std::uint64_t> features{5, 17, 40, 63};
  std::vector<std::uint64_t> reversed(features.rbegin(), features.rend());
  EXPECT_EQ(hasher.sketch_features(features), hasher.sketch_features(reversed));
}

TEST(MinHasher, SubsetHasComponentwiseGreaterOrEqualMinima) {
  const MinHasher hasher({.kmer = 3, .num_hashes = 32, .seed = 5});
  const std::vector<std::uint64_t> small{1, 2, 3};
  const std::vector<std::uint64_t> large{1, 2, 3, 4, 5, 6};
  const Sketch sketch_small = hasher.sketch_features(small);
  const Sketch sketch_large = hasher.sketch_features(large);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_LE(sketch_large[i], sketch_small[i]);
  }
}

TEST(MinHasher, RejectsBadK) {
  EXPECT_THROW(MinHasher({.kmer = 0}), common::InvalidArgument);
  EXPECT_THROW(MinHasher({.kmer = 32}), common::InvalidArgument);
}

TEST(MinHasher, SketchAllMatchesIndividualSketches) {
  const MinHasher hasher({.kmer = 4, .num_hashes = 8, .seed = 6});
  const std::vector<std::string_view> seqs{"ACGTACGTAA", "TTGGCCAATT"};
  const auto sketches = hasher.sketch_all(seqs);
  ASSERT_EQ(sketches.size(), 2u);
  EXPECT_EQ(sketches[0], hasher.sketch(seqs[0]));
  EXPECT_EQ(sketches[1], hasher.sketch(seqs[1]));
}

// --------------------------------------------------------------- estimators

TEST(Estimators, IdenticalSketchesGiveOne) {
  const MinHasher hasher({.kmer = 4, .num_hashes = 32, .seed = 7});
  const Sketch sketch = hasher.sketch("ACGGTTAACCGGTTAA");
  EXPECT_DOUBLE_EQ(component_match_similarity(sketch, sketch), 1.0);
  EXPECT_DOUBLE_EQ(set_based_similarity(sketch, sketch), 1.0);
}

TEST(Estimators, MismatchedLengthsHandled) {
  EXPECT_DOUBLE_EQ(component_match_similarity({1, 2}, {1, 2, 3}), 0.0);
  EXPECT_THROW((void)sketch_similarity({1}, {1, 2}, SketchEstimator::kComponentMatch),
               common::InvalidArgument);
}

TEST(Estimators, KnownComponentMatchFraction) {
  const Sketch a{1, 2, 3, 4};
  const Sketch b{1, 2, 9, 9};
  EXPECT_DOUBLE_EQ(component_match_similarity(a, b), 0.5);
}

TEST(Estimators, SetBasedUsesDistinctValues) {
  // a = {1,2}, b = {2,3}: intersection {2}, union {1,2,3}.
  const Sketch a{1, 2, 2, 1};
  const Sketch b{2, 3, 3, 2};
  EXPECT_NEAR(set_based_similarity(a, b), 1.0 / 3.0, 1e-12);
}

TEST(Estimators, DispatchMatchesDirectCalls) {
  const Sketch a{1, 2, 3, 4};
  const Sketch b{1, 5, 3, 6};
  EXPECT_DOUBLE_EQ(sketch_similarity(a, b, SketchEstimator::kComponentMatch),
                   component_match_similarity(a, b));
  EXPECT_DOUBLE_EQ(sketch_similarity(a, b, SketchEstimator::kSetBased),
                   set_based_similarity(a, b));
}

// ------------------------------------- estimator accuracy (property sweeps)

/// Random feature sets with a controlled exact Jaccard similarity.
std::pair<std::vector<std::uint64_t>, std::vector<std::uint64_t>>
sets_with_jaccard(double jaccard, std::size_t union_size, common::Xoshiro256& rng) {
  const auto shared = static_cast<std::size_t>(jaccard * union_size);
  const std::size_t only = (union_size - shared) / 2;
  std::set<std::uint64_t> pool;
  while (pool.size() < union_size) pool.insert(rng());
  std::vector<std::uint64_t> all(pool.begin(), pool.end());
  std::vector<std::uint64_t> a(all.begin(), all.begin() + shared);
  std::vector<std::uint64_t> b = a;
  for (std::size_t i = 0; i < only; ++i) {
    a.push_back(all[shared + i]);
    b.push_back(all[shared + only + i]);
  }
  return {a, b};
}

class EstimatorAccuracy : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EstimatorAccuracy, ComponentMatchConvergesToExactJaccard) {
  const std::size_t num_hashes = GetParam();
  const MinHasher hasher({.kmer = 5, .num_hashes = num_hashes, .seed = 11});
  common::Xoshiro256 rng(100 + num_hashes);

  for (const double target : {0.2, 0.5, 0.8}) {
    auto [a, b] = sets_with_jaccard(target, 400, rng);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    const double exact = bio::exact_jaccard(a, b);
    const double estimate = component_match_similarity(hasher.sketch_features(a),
                                                       hasher.sketch_features(b));
    // Binomial std-dev of the estimator ~ sqrt(J(1-J)/n); allow 4 sigma.
    const double sigma =
        std::sqrt(exact * (1 - exact) / static_cast<double>(num_hashes));
    EXPECT_NEAR(estimate, exact, 4 * sigma + 0.02)
        << "n=" << num_hashes << " target=" << target;
  }
}

INSTANTIATE_TEST_SUITE_P(SketchSizes, EstimatorAccuracy,
                         ::testing::Values(25, 50, 100, 200, 400));

TEST(EstimatorAccuracy, LargerSketchesEstimateBetterOnAverage) {
  common::Xoshiro256 rng(55);
  double error_small = 0, error_large = 0;
  constexpr int kTrials = 20;
  const MinHasher small({.kmer = 5, .num_hashes = 16, .seed = 12});
  const MinHasher large({.kmer = 5, .num_hashes = 256, .seed = 12});
  for (int trial = 0; trial < kTrials; ++trial) {
    auto [a, b] = sets_with_jaccard(0.5, 300, rng);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    const double exact = bio::exact_jaccard(a, b);
    error_small += std::fabs(
        component_match_similarity(small.sketch_features(a), small.sketch_features(b)) -
        exact);
    error_large += std::fabs(
        component_match_similarity(large.sketch_features(a), large.sketch_features(b)) -
        exact);
  }
  EXPECT_LT(error_large, error_small);
}

TEST(EstimatorAccuracy, PaperLiteralModulusDegeneratesForSmallK) {
  // Documented pitfall: m = 4^k at k=5 collapses minima toward 0, making
  // unrelated sequences look similar (why `modulus = 0` is the default).
  common::Xoshiro256 rng(77);
  const MinHasher literal({.kmer = 5,
                           .num_hashes = 64,
                           .seed = 13,
                           .modulus = bio::kmer_space_size(5)});
  const MinHasher sound({.kmer = 5, .num_hashes = 64, .seed = 13});
  auto [a, b] = sets_with_jaccard(0.0, 2000, rng);  // two disjoint 1000-sets
  const double literal_sim = component_match_similarity(
      literal.sketch_features(a), literal.sketch_features(b));
  const double sound_sim = component_match_similarity(sound.sketch_features(a),
                                                      sound.sketch_features(b));
  // Degenerate modulus: 1000 draws into 1024 buckets pile the minima near 0,
  // so disjoint sets collide on many components; the sound variant does not.
  EXPECT_GT(literal_sim, sound_sim + 0.2);
  EXPECT_LT(sound_sim, 0.1);
}

// --------------------------------------------------------- CMinHashFamily

TEST(CMinHashFamily, DeterministicPerSeedAndDistinctPerComponent) {
  const CMinHashFamily a(16, 0, 5), b(16, 0, 5), c(16, 0, 6);
  std::set<std::uint64_t> values;
  for (std::size_t k = 0; k < 16; ++k) {
    EXPECT_EQ(a.hash(k, 12345), b.hash(k, 12345));
    EXPECT_NE(a.hash(k, 12345), c.hash(k, 12345));
    values.insert(a.hash(k, 999));
  }
  EXPECT_EQ(values.size(), 16u);
}

TEST(CMinHashFamily, SharesOneMultiplierAcrossComponents) {
  // The whole point of the scheme: underneath the fixed cmin_mix64
  // scramble, h_k(x) = (A·x + B_k) mod p — so after inverting the mix, any
  // two components differ only by an additive constant mod p.
  const CMinHashFamily family(8, 0, 21);
  const std::uint64_t p = CMinHashFamily::kPrime;
  const std::uint64_t x = 987654321;
  const std::uint64_t y = 123456789;
  const auto affine = [&](std::size_t k, std::uint64_t v) {
    return kernels::detail::cmin_unmix64(family.hash(k, v));
  };
  for (std::size_t k = 1; k < 8; ++k) {
    const std::uint64_t dx = (affine(k, x) + p - affine(0, x)) % p;
    const std::uint64_t dy = (affine(k, y) + p - affine(0, y)) % p;
    EXPECT_EQ(dx, dy) << "k=" << k;
  }
}

TEST(CMinHashFamily, MixIsABijectionAndBreaksTheRotationStructure) {
  // The scramble must invert exactly (the test above depends on it) and
  // must NOT be order-preserving — an order-preserving π would leave every
  // component a rotation of the same point set (correlated minima).
  common::Xoshiro256 rng(7);
  bool descending_somewhere = false;
  std::uint64_t prev = kernels::detail::cmin_mix64(0);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng();
    EXPECT_EQ(kernels::detail::cmin_unmix64(kernels::detail::cmin_mix64(v)), v);
    const std::uint64_t mixed = kernels::detail::cmin_mix64(v);
    descending_somewhere |= mixed < prev;
    prev = mixed;
  }
  EXPECT_TRUE(descending_somewhere);
}

TEST(CMinHashFamily, RespectsOuterModulusAndRange) {
  const CMinHashFamily bounded(4, 1024, 8);
  const CMinHashFamily full(4, 0, 8);
  for (std::size_t k = 0; k < 4; ++k) {
    for (std::uint64_t x = 0; x < 100; ++x) {
      EXPECT_LT(bounded.hash(k, x), 1024u);
      // Mixed values span u64; the affine residue underneath stays < p.
      EXPECT_LT(kernels::detail::cmin_unmix64(full.hash(k, x)),
                CMinHashFamily::kPrime);
    }
  }
}

TEST(HashFamilies, RejectBadArgumentsWithClearErrors) {
  // Satellite: both families share one validator — count 0 and degenerate /
  // oversized moduli fail loudly instead of producing all-zero sketches.
  EXPECT_THROW(UniversalHashFamily(0, 0, 1), common::InvalidArgument);
  EXPECT_THROW(CMinHashFamily(0, 0, 1), common::InvalidArgument);
  EXPECT_THROW(UniversalHashFamily(4, 1, 1), common::InvalidArgument);
  EXPECT_THROW(CMinHashFamily(4, 1, 1), common::InvalidArgument);
  EXPECT_THROW(UniversalHashFamily(4, UniversalHashFamily::kPrime + 1, 1),
               common::InvalidArgument);
  EXPECT_THROW(CMinHashFamily(4, CMinHashFamily::kPrime + 1, 1),
               common::InvalidArgument);
  // m == 2 and m == p are the boundary legal values.
  EXPECT_NO_THROW(UniversalHashFamily(1, 2, 1));
  EXPECT_NO_THROW(CMinHashFamily(1, UniversalHashFamily::kPrime, 1));
}

TEST(CMinHashScheme, SketchMatchesFamilyReference) {
  const MinHasher hasher({.kmer = 5,
                          .num_hashes = 32,
                          .seed = 9,
                          .scheme = SketchScheme::kCMinHash});
  const std::string seq = "ACGTACGGTTCAACGGATCCGATCGGCTTAACGT";
  thread_local std::vector<std::uint64_t> features;
  bio::kmer_set_into(seq, {.k = 5}, features);
  const Sketch sketch = hasher.sketch(seq);
  const CMinHashFamily family(32, 0, 9);
  for (std::size_t k = 0; k < 32; ++k) {
    std::uint64_t expected = ~std::uint64_t{0};
    for (const std::uint64_t x : features) {
      expected = std::min(expected, family.hash(k, x));
    }
    EXPECT_EQ(sketch[k], expected);
  }
}

TEST(CMinHashScheme, EstimatesConvergeLikeUniversal) {
  // Jaccard-estimate parity: on controlled-overlap sets the C-MinHash
  // estimator must track exact Jaccard within the same binomial envelope as
  // the universal family (Table III/IV-style quality gate).
  const std::size_t num_hashes = 200;
  const MinHasher hasher({.kmer = 5,
                          .num_hashes = num_hashes,
                          .seed = 11,
                          .scheme = SketchScheme::kCMinHash});
  common::Xoshiro256 rng(300);
  for (const double target : {0.2, 0.5, 0.8}) {
    auto [a, b] = sets_with_jaccard(target, 400, rng);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    const double exact = bio::exact_jaccard(a, b);
    const double estimate = component_match_similarity(
        hasher.sketch_features(a), hasher.sketch_features(b));
    const double sigma =
        std::sqrt(exact * (1 - exact) / static_cast<double>(num_hashes));
    EXPECT_NEAR(estimate, exact, 4 * sigma + 0.02) << "target=" << target;
  }
}

TEST(SketchScheme, NamesAreStable) {
  EXPECT_STREQ(sketch_scheme_name(SketchScheme::kUniversal), "universal");
  EXPECT_STREQ(sketch_scheme_name(SketchScheme::kCMinHash), "cminhash");
}

// --------------------------------------------------------- b-bit arithmetic

TEST(BBitCorrection, CollisionFloorAndCorrectedSimilarity) {
  EXPECT_DOUBLE_EQ(bbit_collision_floor(1), 0.5);
  EXPECT_DOUBLE_EQ(bbit_collision_floor(8), 1.0 / 256.0);
  EXPECT_DOUBLE_EQ(bbit_collision_floor(64), 0.0);

  // m/K at the chance floor corrects to 0; at 1 corrects to 1.
  EXPECT_DOUBLE_EQ(corrected_match_similarity(128, 256, 1), 0.0);
  EXPECT_DOUBLE_EQ(corrected_match_similarity(256, 256, 1), 1.0);
  EXPECT_DOUBLE_EQ(corrected_match_similarity(100, 100, 8), 1.0);
  // Below the floor clamps to 0 rather than going negative.
  EXPECT_DOUBLE_EQ(corrected_match_similarity(0, 256, 1), 0.0);
  // b=64 is the uncorrected estimator.
  EXPECT_DOUBLE_EQ(corrected_match_similarity(32, 64, 64), 0.5);
}

TEST(BBitCorrection, ThresholdAdjustmentIsDecisionIdentical) {
  // corrected(m/K) >= θ  <=>  m/K >= θ' with θ' = θ(1-C) + C: the affine
  // map the pipeline folds into its threshold instead of correcting every
  // estimate.
  for (const std::size_t bits : {1u, 2u, 4u, 8u, 16u}) {
    for (const double theta : {0.3, 0.5, 0.9}) {
      const double adjusted = bbit_adjusted_threshold(theta, bits);
      for (std::size_t m = 0; m <= 64; ++m) {
        const double raw = static_cast<double>(m) / 64.0;
        const bool corrected_pass =
            corrected_match_similarity(m, 64, bits) >= theta;
        const bool adjusted_pass = raw >= adjusted;
        EXPECT_EQ(corrected_pass, adjusted_pass)
            << "bits=" << bits << " theta=" << theta << " m=" << m;
      }
    }
  }
  // b=64: no-op.
  EXPECT_DOUBLE_EQ(bbit_adjusted_threshold(0.9, 64), 0.9);
}

TEST(BBitCorrection, SetBasedThresholdTransformKeepsTheMatchDecision) {
  // With m shared minima out of K per sketch, the set-based estimate is
  // m / (2K - m): thresholding it at θ must equal thresholding the match
  // fraction m/K at 2θ/(1+θ).  This is the transform the pipeline applies
  // when b-bit truncation forces a set-based estimator onto the
  // component-match scale.
  EXPECT_DOUBLE_EQ(set_based_equivalent_threshold(0.0), 0.0);
  EXPECT_DOUBLE_EQ(set_based_equivalent_threshold(1.0), 1.0);
  EXPECT_DOUBLE_EQ(set_based_equivalent_threshold(1.0 / 3.0), 0.5);
  for (const std::size_t K : {16u, 64u, 100u}) {
    for (const double theta : {0.1, 0.34, 0.5, 0.9}) {
      const double equivalent = set_based_equivalent_threshold(theta);
      for (std::size_t m = 0; m <= K; ++m) {
        const double set_based = static_cast<double>(m) /
                                 static_cast<double>(2 * K - m);
        const bool set_pass = set_based >= theta;
        const bool match_pass =
            static_cast<double>(m) / static_cast<double>(K) >= equivalent;
        EXPECT_EQ(set_pass, match_pass)
            << "K=" << K << " theta=" << theta << " m=" << m;
      }
    }
  }
}

TEST(SortedSketchStore, JaccardCountsRebuildTheExactDouble) {
  common::Xoshiro256 rng(55);
  std::vector<Sketch> sketches;
  for (int i = 0; i < 6; ++i) {
    Sketch s(40);
    for (auto& v : s) v = rng.bounded(64);  // plenty of duplicates
    sketches.push_back(std::move(s));
  }
  const SortedSketchStore store{std::span<const Sketch>(sketches)};
  for (std::size_t i = 0; i < sketches.size(); ++i) {
    for (std::size_t j = i; j < sketches.size(); ++j) {
      const auto [inter, uni] = store.jaccard_counts(i, j);
      EXPECT_DOUBLE_EQ(jaccard_from_counts(inter, uni), store.jaccard(i, j));
    }
  }
  EXPECT_DOUBLE_EQ(jaccard_from_counts(0, 0), 1.0);  // both-empty convention
}

}  // namespace
}  // namespace mrmc::core

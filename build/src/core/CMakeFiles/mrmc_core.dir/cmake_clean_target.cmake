file(REMOVE_RECURSE
  "libmrmc_core.a"
)

#include "mr/runtime.hpp"

#include <memory>
#include <optional>
#include <utility>

#include <array>
#include <mutex>

#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace mrmc::mr::runtime {

namespace {

/// Live-task counters per TaskKind, process-wide (the sampler's probes read
/// them from its own thread while many graphs run).
std::array<std::atomic<long>, 4>& active_task_counts() noexcept {
  static std::array<std::atomic<long>, 4> counts{};
  return counts;
}

/// RAII bump of the live-task counter for one attempt's execution.
class ActiveTaskScope {
 public:
  explicit ActiveTaskScope(TaskKind kind) noexcept
      : counter_(&active_task_counts()[static_cast<std::size_t>(kind)]) {
    counter_->fetch_add(1, std::memory_order_relaxed);
  }
  ~ActiveTaskScope() { counter_->fetch_sub(1, std::memory_order_relaxed); }
  ActiveTaskScope(const ActiveTaskScope&) = delete;
  ActiveTaskScope& operator=(const ActiveTaskScope&) = delete;

 private:
  std::atomic<long>* counter_;
};

/// obs cannot see mr, so the executor translates its TaskKind into the
/// progress tracker's TaskClass at the callback boundary.
obs::progress::TaskClass progress_class(TaskKind kind) noexcept {
  switch (kind) {
    case TaskKind::kMap:
      return obs::progress::TaskClass::kMap;
    case TaskKind::kFetch:
      return obs::progress::TaskClass::kFetch;
    case TaskKind::kReduce:
      return obs::progress::TaskClass::kReduce;
    case TaskKind::kOther:
      break;
  }
  return obs::progress::TaskClass::kOther;
}

}  // namespace

long active_tasks(TaskKind kind) noexcept {
  return active_task_counts()[static_cast<std::size_t>(kind)].load(
      std::memory_order_relaxed);
}

void register_sampler_probes() {
  static std::once_flag once;
  std::call_once(once, [] {
    auto& sampler = obs::ResourceSampler::global();
    sampler.register_probe("runtime.active_map_tasks", [] {
      return static_cast<double>(active_tasks(TaskKind::kMap));
    });
    sampler.register_probe("runtime.active_fetch_tasks", [] {
      return static_cast<double>(active_tasks(TaskKind::kFetch));
    });
    sampler.register_probe("runtime.active_reduce_tasks", [] {
      return static_cast<double>(active_tasks(TaskKind::kReduce));
    });
    sampler.register_probe("runtime.pool_queue_depth", [] {
      return static_cast<double>(shared_pool().queue_depth());
    });
  });
}

common::ThreadPool& shared_pool() {
  static common::ThreadPool pool(0);
  return pool;
}

PoolLease::PoolLease(std::size_t threads, bool isolated) {
  if (isolated || threads != 0) {
    owned_ = std::make_unique<common::ThreadPool>(threads);
    pool_ = owned_.get();
  } else {
    pool_ = &shared_pool();
  }
}

TaskGraph::TaskGraph()
    : queue_depth_(&obs::Registry::global().gauge("runtime.task_queue_depth")) {
  register_sampler_probes();
}

std::size_t TaskGraph::add_task(TaskFn fn, std::vector<std::size_t> deps,
                                TaskOptions options) {
  MRMC_REQUIRE(!started_, "TaskGraph is one-shot; cannot add tasks after run()");
  MRMC_REQUIRE(fn != nullptr, "task body must be callable");
  MRMC_REQUIRE(options.max_attempts >= 1, "max_attempts must be >= 1");
  const std::size_t id = nodes_.size();
  Node node;
  node.fn = std::move(fn);
  node.options = std::move(options);
  node.remaining_deps = deps.size();
  nodes_.push_back(std::move(node));
  for (const std::size_t dep : deps) {
    MRMC_REQUIRE(dep < id, "dependencies must be added before their dependents");
    nodes_[dep].dependents.push_back(id);
  }
  return id;
}

void TaskGraph::run(common::ThreadPool& pool) {
  std::vector<std::size_t> ready;
  {
    std::lock_guard lock(mutex_);
    MRMC_REQUIRE(!started_, "TaskGraph is one-shot; run() already called");
    started_ = true;
    for (std::size_t id = 0; id < nodes_.size(); ++id) {
      if (nodes_[id].remaining_deps == 0) ready.push_back(id);
    }
  }
  for (const std::size_t id : ready) submit(pool, id);

  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [this] { return completed_ == nodes_.size(); });
  if (error_) std::rethrow_exception(error_);
}

std::size_t TaskGraph::attempts(std::size_t id) const {
  std::lock_guard lock(mutex_);
  MRMC_REQUIRE(id < nodes_.size(), "task id out of range");
  return nodes_[id].attempts;
}

std::size_t TaskGraph::lost_input_reruns(std::size_t id) const {
  std::lock_guard lock(mutex_);
  MRMC_REQUIRE(id < nodes_.size(), "task id out of range");
  return nodes_[id].lost_input_reruns;
}

std::size_t TaskGraph::total_retries() const {
  std::lock_guard lock(mutex_);
  return retries_;
}

void TaskGraph::submit(common::ThreadPool& pool, std::size_t id) {
  {
    std::lock_guard lock(mutex_);
    ++inflight_;
    queue_depth_->set(static_cast<double>(inflight_));
  }
  pool.submit([this, &pool, id] { execute(pool, id); });
}

void TaskGraph::execute(common::ThreadPool& pool, std::size_t id) {
  Node& node = nodes_[id];
  bool skip = false;
  std::size_t attempt = 0;
  {
    std::lock_guard lock(mutex_);
    // After a permanent failure, queued nodes drain without running: finish()
    // still releases their dependents so the completion count reaches the
    // total and run() can wake up and rethrow.
    skip = abort_;
    if (!skip) attempt = node.attempts++;
  }
  if (!skip) {
    const ActiveTaskScope active(node.options.kind);
    try {
      std::optional<obs::Tracer::Span> span;
      if (!node.options.label.empty() && obs::Tracer::global().enabled()) {
        span.emplace(obs::Tracer::global(), node.options.label,
                     std::initializer_list<obs::TraceArg>{
                         {"attempt", std::to_string(attempt)}});
      }
      node.fn(attempt);
      auto& progress = obs::progress::Tracker::global();
      if (progress.enabled()) {
        progress.task_done(progress_class(node.options.kind));
      }
    } catch (const LostInputFailure& failure) {
      const std::size_t input = failure.input();
      bool park = false;
      bool resubmit_input = false;
      {
        std::lock_guard lock(mutex_);
        if (input >= id) {
          // Only an upstream node can be a lost input; anything else is a
          // programming error (and would deadlock the dependency counters).
          if (!error_) {
            error_ = std::current_exception();
            abort_ = true;
          }
        } else if (!abort_) {
          // Park this attempt: it neither failed nor completed.  The input
          // re-runs as a fresh attempt; its finish() re-submits us.
          Node& source = nodes_[input];
          source.waiters.push_back(id);
          ++source.lost_input_reruns;
          if (source.done) {
            source.done = false;
            --completed_;
            resubmit_input = true;
          }
          // else: the input is already re-running for another waiter and
          // will drain the waiter list when it completes again.
          park = true;
          --inflight_;
          queue_depth_->set(static_cast<double>(inflight_));
        }
        // On abort just drain: fall through to finish() like a skip.
      }
      if (park) {
        obs::Registry::global().counter("runtime.lost_input_reruns").add(1);
        auto& progress = obs::progress::Tracker::global();
        if (progress.enabled()) progress.retry();
        if (resubmit_input) submit(pool, input);
        return;
      }
    } catch (const TaskFailure&) {
      bool retry = false;
      {
        std::lock_guard lock(mutex_);
        ++retries_;
        retry = node.attempts < node.options.max_attempts && !abort_;
        if (!retry && !error_) {
          error_ = std::current_exception();
          abort_ = true;
        }
      }
      obs::Registry::global().counter("runtime.task_retries").add(1);
      auto& progress = obs::progress::Tracker::global();
      if (progress.enabled()) progress.retry();
      if (retry) {
        // The node stays in flight; re-run it as a fresh pool task so other
        // ready work interleaves with the retry.
        pool.submit([this, &pool, id] { execute(pool, id); });
        return;
      }
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!error_) {
        error_ = std::current_exception();
        abort_ = true;
      }
    }
  }
  finish(pool, id);
}

void TaskGraph::finish(common::ThreadPool& pool, std::size_t id) {
  std::vector<std::size_t> ready;
  {
    std::lock_guard lock(mutex_);
    Node& node = nodes_[id];
    node.done = true;
    ++completed_;
    --inflight_;
    queue_depth_->set(static_cast<double>(inflight_));
    // Dependency counters are released exactly once; a lost-input re-run
    // finishing again must not decrement them a second time.
    if (!node.deps_notified) {
      node.deps_notified = true;
      for (const std::size_t dependent : node.dependents) {
        if (--nodes_[dependent].remaining_deps == 0) ready.push_back(dependent);
      }
    }
    // Parked lost-input throwers resume now that the input exists again.
    for (const std::size_t waiter : node.waiters) ready.push_back(waiter);
    node.waiters.clear();
    if (completed_ == nodes_.size()) done_cv_.notify_all();
  }
  for (const std::size_t dependent : ready) submit(pool, dependent);
}

}  // namespace mrmc::mr::runtime

#include "obs/sampler.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace mrmc::obs {

double process_rss_bytes() noexcept {
#if defined(__linux__)
  // /proc/self/statm: size resident shared text lib data dt (pages).
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0.0;
  long size_pages = 0;
  long resident_pages = 0;
  const int fields = std::fscanf(statm, "%ld %ld", &size_pages, &resident_pages);
  std::fclose(statm);
  if (fields != 2) return 0.0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<double>(resident_pages) *
         static_cast<double>(page > 0 ? page : 4096);
#else
  return 0.0;
#endif
}

double process_cpu_seconds() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return -1.0;
  const auto to_s = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return to_s(usage.ru_utime) + to_s(usage.ru_stime);
#else
  return -1.0;
#endif
}

ResourceSampler::ResourceSampler() {
  // Touch the singletons this sampler publishes to, so they are constructed
  // before (and therefore destroyed after) the sampler and its thread.
  (void)Registry::global();
  (void)Tracer::global();
  if (const char* value = std::getenv("MRMC_SAMPLE")) {
    if (*value != '\0') {
      const double period = std::strtod(value, nullptr);
      period_ms_ = period > 0.0 ? period : 100.0;
      enabled_.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mutex_);
      start_locked();
    }
  }
}

ResourceSampler::~ResourceSampler() { stop_thread(); }

ResourceSampler& ResourceSampler::global() {
  static ResourceSampler sampler;
  return sampler;
}

void ResourceSampler::set_enabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
  if (enabled) {
    std::lock_guard<std::mutex> lock(mutex_);
    start_locked();
  } else {
    stop_thread();
  }
}

double ResourceSampler::period_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return period_ms_;
}

void ResourceSampler::set_period_ms(double period_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (period_ms > 0.0) period_ms_ = period_ms;
}

void ResourceSampler::register_probe(std::string name,
                                     std::function<double()> probe) {
  if (!probe) return;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [existing, fn] : probes_) {
    if (existing == name) {
      fn = std::move(probe);
      return;
    }
  }
  probes_.emplace_back(std::move(name), std::move(probe));
}

std::size_t ResourceSampler::probe_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return probes_.size();
}

void ResourceSampler::sample_once() {
  auto& registry = Registry::global();
  auto& tracer = Tracer::global();

  const double rss_mb = process_rss_bytes() / 1e6;
  registry.gauge("sample.process_rss_mb").set(rss_mb);
  tracer.counter("process rss (MB)", {{"rss_mb", trace_double(rss_mb)}});

  // CPU utilization: cpu-seconds burned per wall-second since the previous
  // sample (can exceed 1.0 — the process is multi-threaded).
  const double cpu_s = process_cpu_seconds();
  if (cpu_s >= 0.0) {
    double util = 0.0;
    {
      std::lock_guard<std::mutex> lock(cpu_mutex_);
      const double wall_us = tracer.now_us();
      if (last_cpu_s_ >= 0.0 && wall_us > last_wall_us_) {
        util = (cpu_s - last_cpu_s_) / ((wall_us - last_wall_us_) * 1e-6);
      }
      last_cpu_s_ = cpu_s;
      last_wall_us_ = wall_us;
    }
    registry.gauge("sample.process_cpu_util").set(util);
    tracer.counter("process cpu util", {{"cpu_util", trace_double(util)}});
  }

  // Registered probes, outside the lock (a probe may touch the registry).
  std::vector<std::pair<std::string, std::function<double()>>> probes;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    probes = probes_;
  }
  for (const auto& [name, probe] : probes) {
    const double value = probe();
    registry.gauge("sample." + name).set(value);
    tracer.counter(name, {{"value", trace_double(value)}});
  }
}

void ResourceSampler::start_locked() {
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { run(); });
}

void ResourceSampler::stop_thread() {
  // Move the worker out under the lock so concurrent stop calls can never
  // both reach join() on the same std::thread (which would be UB): exactly
  // one caller owns the handle, everyone else sees it already gone.
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!thread_.joinable()) return;
    stop_ = true;
    worker = std::move(thread_);
  }
  cv_.notify_all();
  worker.join();
  std::lock_guard<std::mutex> lock(mutex_);
  stop_ = false;
}

void ResourceSampler::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    const auto period = std::chrono::duration<double, std::milli>(period_ms_);
    cv_.wait_for(lock, period, [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    if (enabled()) sample_once();
    lock.lock();
  }
}

void emit_sim_task_counters(Tracer& tracer, std::uint32_t pid,
                            std::span<const SimInterval> map_tasks,
                            std::span<const SimInterval> fetches,
                            std::span<const SimInterval> reduce_tasks,
                            double horizon_s, std::size_t points) {
  if (!tracer.enabled() || horizon_s <= 0.0 || points == 0) return;
  const auto live_at = [](std::span<const SimInterval> tasks, double t) {
    long live = 0;
    for (const SimInterval& task : tasks) {
      if (task.start_s <= t && t < task.end_s) ++live;
    }
    return live;
  };
  for (std::size_t k = 0; k <= points; ++k) {
    const double t =
        horizon_s * static_cast<double>(k) / static_cast<double>(points);
    tracer.sim_counter(
        pid, "sim active tasks", t,
        {{"map", std::to_string(live_at(map_tasks, t))},
         {"fetch", std::to_string(live_at(fetches, t))},
         {"reduce", std::to_string(live_at(reduce_tasks, t))}});
  }
}

}  // namespace mrmc::obs

// CD-HIT-style greedy clustering (Li & Godzik 2006).
//
// Sequences are processed longest-first.  Each query is checked against
// existing cluster representatives; a cheap short-word filter (counting
// common k-words against the bound implied by the identity threshold)
// prunes candidates before the banded global alignment that decides
// membership.  The first representative reaching the identity threshold
// absorbs the query; otherwise the query founds a new cluster.
#pragma once

#include <cstdint>
#include <span>

#include "baselines/baseline.hpp"

namespace mrmc::baselines {

struct CdHitParams {
  double identity = 0.95;  ///< alignment-identity threshold
  int word_size = 5;       ///< short-word filter size (CD-HIT default for DNA)
  int band = 16;           ///< alignment band half-width
};

BaselineResult cdhit_cluster(std::span<const bio::FastaRecord> reads,
                             const CdHitParams& params = {});

}  // namespace mrmc::baselines

// Tests for the cross-run regression doctor (obs::regress): artifact
// loaders (BENCH records, Chrome traces, report JSON, metrics snapshots),
// the direction/noise heuristics, the compare verdict logic, and the
// acceptance claims — two same-seed runs compare clean, an artificially
// slowed run is flagged (including via the mrmc_doctor CLI's exit code).
#include "obs/regress.hpp"

#include <gtest/gtest.h>
#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#endif

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/mini_json.hpp"
#include "mr/cluster.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace mrmc::obs::regress {
namespace {

constexpr const char* kBenchJson =
    "{\"bench\": \"fig9\", \"schema_version\": 1,"
    " \"keys\": [\"reads\", \"nodes\"], \"rows\": [\n"
    "  {\"reads\": 1000, \"nodes\": 2, \"sim_total_s\": 38.5,"
    "   \"parallel_efficiency\": 0.71, \"findings\": \"startup-bound\"},\n"
    "  {\"reads\": 1000, \"nodes\": 4, \"sim_total_s\": 21.25,"
    "   \"parallel_efficiency\": 0.64, \"findings\": \"\"}\n"
    "]}\n";

TEST(Heuristics, DirectionFollowsTheMetricName) {
  EXPECT_EQ(metric_direction("sim_total_s"), Direction::kLowerBetter);
  EXPECT_EQ(metric_direction("shuffle_bytes"), Direction::kLowerBetter);
  EXPECT_EQ(metric_direction("ns_per_kmer_hash"), Direction::kLowerBetter);
  EXPECT_EQ(metric_direction("rmse_component"), Direction::kLowerBetter);
  EXPECT_EQ(metric_direction("parallel_efficiency"),
            Direction::kHigherBetter);
  EXPECT_EQ(metric_direction("speedup_vs_baseline"),
            Direction::kHigherBetter);
  // "gb_per_s" ends in _s but must classify as a throughput.
  EXPECT_EQ(metric_direction("gb_per_s"), Direction::kHigherBetter);
  EXPECT_EQ(metric_direction("wacc"), Direction::kHigherBetter);
  EXPECT_EQ(metric_direction("node_crashes"), Direction::kInformational);
  EXPECT_EQ(metric_direction("fetch_count"), Direction::kInformational);
}

TEST(Heuristics, NoiseFollowsTheClockThatProducedTheMetric) {
  EXPECT_TRUE(metric_is_noisy("seconds"));
  EXPECT_TRUE(metric_is_noisy("wall_s"));
  EXPECT_TRUE(metric_is_noisy("ns_per_pair"));
  EXPECT_TRUE(metric_is_noisy("sketch_us_per_read"));
  EXPECT_TRUE(metric_is_noisy("gb_per_s"));
  // Simulated-clock metrics are deterministic however loaded the machine.
  EXPECT_FALSE(metric_is_noisy("sim_total_s"));
  EXPECT_FALSE(metric_is_noisy("shuffle_bytes"));
  EXPECT_FALSE(metric_is_noisy("parallel_efficiency"));
}

TEST(BenchLoader, KeysIdentifyRowsAndNumbersBecomeMetrics) {
  const auto rows = rows_from_json(common::parse_json(kBenchJson), "test");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].source, "fig9");
  EXPECT_EQ(rows[0].key, "reads=1000,nodes=2");
  EXPECT_EQ(rows[1].key, "reads=1000,nodes=4");
  EXPECT_DOUBLE_EQ(rows[0].metrics.at("sim_total_s"), 38.5);
  EXPECT_DOUBLE_EQ(rows[0].metrics.at("parallel_efficiency"), 0.71);
  // Key fields and strings are identity, not measurements.
  EXPECT_FALSE(rows[0].metrics.count("reads"));
  EXPECT_FALSE(rows[0].metrics.count("findings"));
}

TEST(Compare, IdenticalRunsReportZeroRegressions) {
  const auto rows = rows_from_json(common::parse_json(kBenchJson), "test");
  const CompareReport report = compare(rows, rows);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.regressions, 0u);
  EXPECT_EQ(report.improvements, 0u);
  EXPECT_EQ(report.missing, 0u);
  EXPECT_EQ(report.compared, 4u);  // 2 rows x 2 numeric metrics
}

TEST(Compare, SlowedMetricRegressesAndSortsFirst) {
  const auto baseline = rows_from_json(common::parse_json(kBenchJson), "b");
  auto candidate = baseline;
  candidate[1].metrics["sim_total_s"] *= 2.0;  // beyond the 1.25x default
  const CompareReport report = compare(baseline, candidate);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.regressions, 1u);
  EXPECT_EQ(report.entries.front().status, Status::kRegression);
  EXPECT_EQ(report.entries.front().metric, "sim_total_s");
  EXPECT_EQ(report.entries.front().key, "reads=1000,nodes=4");
  EXPECT_DOUBLE_EQ(report.entries.front().ratio, 2.0);
  // Renderers mention the verdict.
  EXPECT_NE(to_text(report).find("FAIL"), std::string::npos);
  EXPECT_NE(to_json(report).find("\"regressions\": 1"), std::string::npos);
  EXPECT_NE(to_html(report).find("regression"), std::string::npos);
}

TEST(Compare, DirectionsAndThresholdKnobsAreHonored) {
  const auto baseline = rows_from_json(common::parse_json(kBenchJson), "b");
  auto candidate = baseline;
  // Efficiency is higher-better: halving it regresses.
  candidate[0].metrics["parallel_efficiency"] /= 2.0;
  EXPECT_EQ(compare(baseline, candidate).regressions, 1u);
  // ...and improvements are symmetric, not regressions.
  candidate = baseline;
  candidate[0].metrics["parallel_efficiency"] = 0.99;
  candidate[0].metrics["sim_total_s"] /= 2.0;
  const CompareReport better = compare(baseline, candidate);
  EXPECT_TRUE(better.ok());
  EXPECT_EQ(better.improvements, 2u);
  // A generous ratio tolerates the doubling.
  candidate = baseline;
  candidate[1].metrics["sim_total_s"] *= 2.0;
  EXPECT_TRUE(compare(baseline, candidate, {.ratio = 3.0}).ok());
  // abs_slack tolerates small absolute drifts whatever the ratio says.
  candidate = baseline;
  candidate[1].metrics["sim_total_s"] += 30.0;
  EXPECT_FALSE(compare(baseline, candidate).ok());
  Thresholds slack;
  slack.abs_slack = 60.0;
  EXPECT_TRUE(compare(baseline, candidate, slack).ok());
}

TEST(Compare, MissingAndNewMetricsAreReportedButOnlyMissingCounts) {
  const auto baseline = rows_from_json(common::parse_json(kBenchJson), "b");
  auto candidate = baseline;
  candidate[0].metrics.erase("sim_total_s");
  candidate[1].metrics["brand_new_gauge"] = 1.0;
  const CompareReport report = compare(baseline, candidate);
  EXPECT_TRUE(report.ok());  // missing warns, never gates
  EXPECT_EQ(report.missing, 1u);
  bool saw_new = false;
  for (const CompareEntry& entry : report.entries) {
    saw_new |= entry.status == Status::kNew &&
               entry.metric == "brand_new_gauge";
  }
  EXPECT_TRUE(saw_new);
}

TEST(Compare, NoisyMetricsUseTheLooserThresholdOrDemoteToInfo) {
  MetricRow base{"kern", "section=sketch", {{"seconds", 1.0}}};
  MetricRow cand{"kern", "section=sketch", {{"seconds", 2.0}}};
  // 2x is beyond the deterministic default (1.25) but inside noisy (2.5).
  EXPECT_TRUE(compare({base}, {cand}).ok());
  Thresholds tight;
  tight.noisy_ratio = 1.5;
  EXPECT_FALSE(compare({base}, {cand}, tight).ok());
  // noisy_ratio = 0 demotes wall-clock metrics to informational entries.
  Thresholds demote;
  demote.noisy_ratio = 0.0;
  const CompareReport report = compare({base}, {cand}, demote);
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_EQ(report.entries[0].status, Status::kInfo);
}

TEST(MetricsLoader, SnapshotBecomesCounterAndHistogramRows) {
  Registry registry;
  registry.counter("mr.spill_runs").add(6);
  registry.gauge("sample.process_rss_mb").set(123.0);
  registry.histogram("mr.map_task_sim_s", std::vector<double>{1.0, 10.0})
      .observe(4.0);
  const auto rows =
      rows_from_json(common::parse_json(registry.snapshot().to_json()), "m");
  const MetricRow* counters = nullptr;
  const MetricRow* hist = nullptr;
  for (const MetricRow& row : rows) {
    if (row.key == "counters") counters = &row;
    if (row.key == "hist:mr.map_task_sim_s") hist = &row;
  }
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->metrics.at("mr.spill_runs"), 6.0);
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->metrics.at("count"), 1.0);
  EXPECT_TRUE(hist->metrics.count("p50"));
}

// ------------------------------------------------------- trace acceptance

class TraceRegressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().clear();
    Tracer::global().set_enabled(true);
  }
  void TearDown() override {
    Tracer::global().set_enabled(false);
    Tracer::global().clear();
  }
};

/// Simulate one deterministic job and flush its trace; `slowdown` scales
/// the straggler task's work (1.0 = the healthy run).
void write_job_trace(const std::string& path, double slowdown) {
  Tracer::global().clear();
  mr::ClusterConfig config;
  config.nodes = 3;
  const mr::SimScheduler scheduler(config);
  std::vector<mr::TaskSpec> maps;
  for (int i = 0; i < 12; ++i) {
    const double work = (i == 5 ? 45.0 * slowdown : 30.0);
    maps.push_back({work, 1.5e6, 4.0e5, i % 3});
  }
  std::vector<mr::TaskSpec> reduces(4, {18.0, 2.0e6, 1.0e6, -1});
  simulate_job(scheduler, maps, 1.6e7, reduces, "accept");
  auto& tracer = Tracer::global();
  tracer.set_output_path(path);
  ASSERT_TRUE(tracer.flush());
}

TEST_F(TraceRegressTest, SameSeedTracesCompareClean) {
  const std::string a = ::testing::TempDir() + "/regress_same_a.json";
  const std::string b = ::testing::TempDir() + "/regress_same_b.json";
  write_job_trace(a, 1.0);
  write_job_trace(b, 1.0);
  const CompareReport report = compare(load_rows(a), load_rows(b));
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.regressions, 0u);
  EXPECT_EQ(report.missing, 0u);
  EXPECT_GT(report.compared, 0u);
}

TEST_F(TraceRegressTest, StragglerBumpedTraceIsFlagged) {
  const std::string base = ::testing::TempDir() + "/regress_fast.json";
  const std::string slow = ::testing::TempDir() + "/regress_slow.json";
  write_job_trace(base, 1.0);
  write_job_trace(slow, 8.0);  // one map task straggles 8x
  const CompareReport report = compare(load_rows(base), load_rows(slow));
  EXPECT_FALSE(report.ok());
  bool map_phase_flagged = false;
  for (const CompareEntry& entry : report.entries) {
    if (entry.status != Status::kRegression) break;  // sorted first
    map_phase_flagged |= entry.metric == "map_s" || entry.metric == "total_s";
  }
  EXPECT_TRUE(map_phase_flagged);
}

TEST_F(TraceRegressTest, TraceRowsCarryTheByteAccounting) {
  const std::string path = ::testing::TempDir() + "/regress_bytes.json";
  write_job_trace(path, 1.0);
  const auto rows = load_rows(path);
  ASSERT_EQ(rows.size(), 1u);
  // 12 maps x 1.5e6 in / 4e5 out; 4 reduces x 2e6 in / 1e6 out.
  EXPECT_DOUBLE_EQ(rows[0].metrics.at("bytes.map_input_bytes"), 12 * 1.5e6);
  EXPECT_DOUBLE_EQ(rows[0].metrics.at("bytes.map_output_bytes"), 12 * 4.0e5);
  EXPECT_DOUBLE_EQ(rows[0].metrics.at("bytes.reduce_input_bytes"), 4 * 2.0e6);
  EXPECT_DOUBLE_EQ(rows[0].metrics.at("bytes.reduce_output_bytes"),
                   4 * 1.0e6);
  // The scalar-shuffle overload has no per-fetch specs; the field is still
  // present (and zero) so cross-run compares see a stable metric set.
  EXPECT_TRUE(rows[0].metrics.count("bytes.fetch_count"));
}

#ifdef MRMC_DOCTOR_BIN
int doctor_exit(const std::string& arguments) {
  const std::string command = std::string(MRMC_DOCTOR_BIN) + " " + arguments;
  const int status = std::system(command.c_str());
#if defined(__unix__) || defined(__APPLE__)
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#else
  return status;
#endif
}

TEST_F(TraceRegressTest, CliCompareExitsZeroCleanAndTwoOnRegression) {
  const std::string base = ::testing::TempDir() + "/regress_cli_base.json";
  const std::string slow = ::testing::TempDir() + "/regress_cli_slow.json";
  write_job_trace(base, 1.0);
  write_job_trace(slow, 8.0);
  EXPECT_EQ(doctor_exit("compare " + base + " " + base + " >/dev/null"), 0);
  EXPECT_EQ(doctor_exit("compare " + base + " " + slow + " >/dev/null"), 2);
}

TEST_F(TraceRegressTest, CliRegressWalksTheBaselineManifest) {
  const std::string base_dir = ::testing::TempDir() + "/regress_baselines";
  const std::string cand_dir = ::testing::TempDir() + "/regress_candidates";
  for (const std::string& dir : {base_dir, cand_dir}) {
    std::system(("mkdir -p " + dir).c_str());
  }
  {
    std::ofstream(base_dir + "/BENCH_fig9.json") << kBenchJson;
    std::string slowed(kBenchJson);
    const auto at = slowed.find("21.25");
    ASSERT_NE(at, std::string::npos);
    slowed.replace(at, 5, "99.99");
    std::ofstream(cand_dir + "/BENCH_fig9.json") << slowed;
  }
  ASSERT_EQ(doctor_exit("index " + base_dir), 0);
  EXPECT_EQ(doctor_exit("regress --baseline-dir=" + base_dir +
                        " --candidate-dir=" + base_dir + " >/dev/null"),
            0);
  EXPECT_EQ(doctor_exit("regress --baseline-dir=" + base_dir +
                        " --candidate-dir=" + cand_dir + " >/dev/null"),
            2);
}
#endif  // MRMC_DOCTOR_BIN

}  // namespace
}  // namespace mrmc::obs::regress

#include "common/mini_json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace mrmc::common {
namespace {

TEST(MiniJson, ParsesScalars) {
  EXPECT_EQ(parse_json("null").type, JsonValue::Type::kNull);
  EXPECT_TRUE(parse_json("true").boolean);
  EXPECT_FALSE(parse_json("false").boolean);
  EXPECT_DOUBLE_EQ(parse_json("42").number, 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-3.25e2").number, -325.0);
  EXPECT_EQ(parse_json("\"hi\"").string, "hi");
}

TEST(MiniJson, ParsesNestedContainers) {
  const JsonValue root =
      parse_json(R"({"a": [1, 2, {"b": "c"}], "d": {"e": false}})");
  ASSERT_EQ(root.type, JsonValue::Type::kObject);
  const JsonValue& a = root.at("a");
  ASSERT_EQ(a.type, JsonValue::Type::kArray);
  ASSERT_EQ(a.array.size(), 3u);
  EXPECT_DOUBLE_EQ(a.array[1].number, 2.0);
  EXPECT_EQ(a.array[2].at("b").string, "c");
  EXPECT_FALSE(root.at("d").at("e").boolean);
  EXPECT_TRUE(root.has("d"));
  EXPECT_FALSE(root.has("z"));
}

TEST(MiniJson, DecodesEscapes) {
  const JsonValue value = parse_json(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(value.string, "a\"b\\c\nd\teA");
}

TEST(MiniJson, SeventeenDigitDoublesRoundTripExactly) {
  // The library's exporters print doubles with %.17g; parsing such text
  // back through strtod must recover the identical bits.
  for (const double value : {1.0 / 3.0, 0.1, 8.125, 123456.789012345678,
                             2.2250738585072014e-308, 1.7976931348623157e308}) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    EXPECT_EQ(parse_json(buf).number, value) << buf;
  }
}

TEST(MiniJson, AtThrowsOnMissingKey) {
  const JsonValue root = parse_json("{\"a\": 1}");
  EXPECT_THROW((void)root.at("missing"), std::runtime_error);
}

TEST(MiniJson, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), std::runtime_error);
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("[1, 2"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(parse_json("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse_json("tru"), std::runtime_error);
  EXPECT_THROW(parse_json("1 2"), std::runtime_error);  // trailing garbage
}

}  // namespace
}  // namespace mrmc::common

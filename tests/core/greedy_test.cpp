#include "core/greedy.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace mrmc::core {
namespace {

/// Sketches with known structure: each "family" shares a base sketch with a
/// controlled fraction of positions perturbed per member.
std::vector<Sketch> family_sketches(std::size_t families, std::size_t per_family,
                                    std::size_t length, double noise,
                                    std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::vector<Sketch> sketches;
  for (std::size_t f = 0; f < families; ++f) {
    Sketch base(length);
    for (auto& v : base) v = rng();
    for (std::size_t m = 0; m < per_family; ++m) {
      Sketch member = base;
      for (auto& v : member) {
        if (rng.chance(noise)) v = rng();
      }
      sketches.push_back(std::move(member));
    }
  }
  return sketches;
}

TEST(GreedyCluster, EmptyInput) {
  const GreedyResult result = greedy_cluster(std::span<const Sketch>{}, {});
  EXPECT_TRUE(result.labels.empty());
  EXPECT_EQ(result.num_clusters, 0u);
}

TEST(GreedyCluster, SingleSequence) {
  const std::vector<Sketch> sketches{{1, 2, 3}};
  const GreedyResult result = greedy_cluster(sketches, {.theta = 0.9});
  EXPECT_EQ(result.labels, (std::vector<int>{0}));
  EXPECT_EQ(result.num_clusters, 1u);
  EXPECT_EQ(result.representatives, (std::vector<std::size_t>{0}));
}

TEST(GreedyCluster, ThetaZeroPutsEverythingTogether) {
  const auto sketches = family_sketches(4, 5, 32, 0.9, 1);
  const GreedyResult result = greedy_cluster(sketches, {.theta = 0.0});
  EXPECT_EQ(result.num_clusters, 1u);
  for (const int label : result.labels) EXPECT_EQ(label, 0);
}

TEST(GreedyCluster, ThetaOneGroupsOnlyIdenticalSketches) {
  std::vector<Sketch> sketches = {{1, 2, 3}, {1, 2, 3}, {4, 5, 6}, {1, 2, 3}};
  const GreedyResult result = greedy_cluster(sketches, {.theta = 1.0});
  EXPECT_EQ(result.num_clusters, 2u);
  EXPECT_EQ(result.labels[0], result.labels[1]);
  EXPECT_EQ(result.labels[0], result.labels[3]);
  EXPECT_NE(result.labels[0], result.labels[2]);
}

TEST(GreedyCluster, RecoverswellSeparatedFamilies) {
  const auto sketches = family_sketches(3, 10, 64, 0.05, 2);
  const GreedyResult result =
      greedy_cluster(sketches, {.theta = 0.5, .estimator = SketchEstimator::kComponentMatch});
  EXPECT_EQ(result.num_clusters, 3u);
  // Members of a family must share labels.
  for (std::size_t f = 0; f < 3; ++f) {
    for (std::size_t m = 1; m < 10; ++m) {
      EXPECT_EQ(result.labels[f * 10 + m], result.labels[f * 10]);
    }
  }
}

TEST(GreedyCluster, EverySequenceGetsALabel) {
  const auto sketches = family_sketches(5, 8, 32, 0.3, 3);
  const GreedyResult result = greedy_cluster(sketches, {.theta = 0.6});
  for (const int label : result.labels) EXPECT_GE(label, 0);
  const std::set<int> labels(result.labels.begin(), result.labels.end());
  EXPECT_EQ(labels.size(), result.num_clusters);
  // Labels are dense 0..k-1.
  EXPECT_EQ(*labels.rbegin(), static_cast<int>(result.num_clusters) - 1);
}

TEST(GreedyCluster, FirstSequenceAnchorsFirstCluster) {
  const auto sketches = family_sketches(2, 4, 32, 0.05, 4);
  const GreedyResult result = greedy_cluster(sketches, {.theta = 0.5});
  EXPECT_EQ(result.labels[0], 0);
  EXPECT_EQ(result.representatives[0], 0u);
}

TEST(GreedyCluster, RepresentativesCarryTheirOwnLabel) {
  const auto sketches = family_sketches(4, 6, 32, 0.2, 5);
  const GreedyResult result = greedy_cluster(sketches, {.theta = 0.7});
  ASSERT_EQ(result.representatives.size(), result.num_clusters);
  for (std::size_t c = 0; c < result.num_clusters; ++c) {
    EXPECT_EQ(result.labels[result.representatives[c]], static_cast<int>(c));
  }
}

TEST(GreedyCluster, ComparisonsShrinkWithLooserThreshold) {
  const auto sketches = family_sketches(6, 10, 32, 0.25, 6);
  const auto strict = greedy_cluster(sketches, {.theta = 0.99});
  const auto loose = greedy_cluster(sketches, {.theta = 0.0});
  // Loose threshold absorbs everything in the first pass: N-1 comparisons.
  EXPECT_EQ(loose.comparisons, sketches.size() - 1);
  EXPECT_GT(strict.comparisons, loose.comparisons);
}

TEST(GreedyCluster, ThresholdMonotonicity) {
  const auto sketches = family_sketches(4, 8, 64, 0.3, 7);
  std::size_t previous = 0;
  for (const double theta : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const auto result = greedy_cluster(
        sketches, {.theta = theta, .estimator = SketchEstimator::kComponentMatch});
    EXPECT_GE(result.num_clusters, previous) << theta;
    previous = result.num_clusters;
  }
}

TEST(GreedyCluster, EstimatorsCanDiffer) {
  const auto sketches = family_sketches(3, 6, 32, 0.4, 8);
  const auto set_based = greedy_cluster(
      sketches, {.theta = 0.5, .estimator = SketchEstimator::kSetBased});
  const auto component = greedy_cluster(
      sketches, {.theta = 0.5, .estimator = SketchEstimator::kComponentMatch});
  // Both are valid clusterings over the same data.
  EXPECT_EQ(set_based.labels.size(), component.labels.size());
}

TEST(GreedyCluster, RejectsBadTheta) {
  const std::vector<Sketch> sketches{{1}};
  EXPECT_THROW(greedy_cluster(sketches, {.theta = -0.1}), common::InvalidArgument);
  EXPECT_THROW(greedy_cluster(sketches, {.theta = 1.1}), common::InvalidArgument);
}

TEST(GreedyCluster, DeterministicAcrossCalls) {
  const auto sketches = family_sketches(4, 10, 32, 0.3, 9);
  const auto a = greedy_cluster(sketches, {.theta = 0.6});
  const auto b = greedy_cluster(sketches, {.theta = 0.6});
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.comparisons, b.comparisons);
}

}  // namespace
}  // namespace mrmc::core

// PigContext — a miniature Pig Latin runtime.  Each dataflow operator
// (LOAD / FOREACH..GENERATE..FLATTEN / GROUP ALL / STORE) executes as a
// MapReduce job on the simulated cluster, exactly how Pig plans scripts
// onto Hadoop.  Job statistics and simulated timelines accumulate in the
// context for reporting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mr/cluster.hpp"
#include "mr/job.hpp"
#include "mr/recovery.hpp"
#include "mr/simdfs.hpp"
#include "pig/tuple.hpp"
#include "pig/udf.hpp"

namespace mrmc::pig {

class PigContext {
 public:
  /// `threads == 0` runs every statement's job on the process-wide shared
  /// pool (mr::runtime::shared_pool()); > 0 uses a private pool per job.
  PigContext(mr::SimDfs* dfs, mr::ClusterConfig cluster, std::size_t threads = 0);

  /// LOAD '<path>' USING FastaStorage AS (seq, id): parses a FASTA file
  /// stored in the DFS into (seq:chararray, id:chararray) tuples.
  Relation load_fasta(const std::string& path);

  /// B = FOREACH A GENERATE FLATTEN(udf(...)): one MapReduce job; the UDF
  /// runs in the mappers, output order follows input order.
  Relation foreach_generate(const Relation& input, const Udf& udf);

  /// G = GROUP A ALL: single-reducer job producing one tuple whose only
  /// field is the bag of all input tuples (input order preserved).
  Relation group_all(const Relation& input);

  /// G = GROUP A BY $field: keyed shuffle producing (key, bag) tuples, one
  /// per distinct value of the (string/long) field, ordered by key.  This
  /// is the engine's real reduce-side grouping, unlike GROUP ALL's
  /// single-reducer funnel.
  Relation group_by(const Relation& input, std::size_t field);

  /// STORE A INTO '<path>': writes tab-separated text into the DFS.
  void store(const Relation& relation, const std::string& path);

  /// Accumulated simulated cluster time of every job this context ran.
  [[nodiscard]] double sim_time_s() const noexcept { return sim_time_s_; }
  [[nodiscard]] const std::vector<mr::JobStats>& job_history() const noexcept {
    return jobs_;
  }
  [[nodiscard]] mr::SimDfs& dfs() noexcept { return *dfs_; }

 private:
  mr::JobConfig make_config(const std::string& name, std::size_t reducers) const;

  mr::SimDfs* dfs_;
  mr::ClusterConfig cluster_;
  std::size_t threads_;
  double sim_time_s_ = 0.0;
  std::vector<mr::JobStats> jobs_;
};

/// Parameters of the paper's Algorithm 3 Pig script.
struct Algorithm3Params {
  int kmer = 5;                   ///< $KMER
  std::size_t num_hashes = 100;   ///< $NUMHASH
  std::uint64_t seed = 1;         ///< seeds the hash family ($DIV analogue)
  double cutoff = 0.9;            ///< $CUTOFF
  core::Linkage linkage = core::Linkage::kAverage;  ///< $LINK
  core::SketchEstimator estimator = core::SketchEstimator::kComponentMatch;
  core::SketchEstimator greedy_estimator = core::SketchEstimator::kSetBased;
};

struct Algorithm3Result {
  std::vector<std::pair<std::string, int>> hierarchical;  ///< (read id, label)
  std::vector<std::pair<std::string, int>> greedy;
  /// Simulated time / job count of the jobs *this process* ran; a resumed
  /// run (MRMC_CHECKPOINT_DIR) serves completed steps from checkpoint, so
  /// both shrink while the stored outputs stay byte-identical.
  double sim_time_s = 0.0;
  std::size_t jobs_run = 0;
  mr::recovery::RecoveryStats recovery;  ///< checkpoint hits/misses/retries
};

/// Execute Algorithm 3 end to end: LOAD -> StringGenerator ->
/// TranslateToKmer -> CalculateMinwiseHash -> GROUP ALL ->
/// {CalculatePairwiseSimilarity -> AgglomerativeHierarchicalClustering,
///  GreedyClustering} -> STORE into `out_hier` / `out_greedy`.
Algorithm3Result run_algorithm3(mr::SimDfs& dfs, const std::string& input_path,
                                const std::string& out_hier,
                                const std::string& out_greedy,
                                const Algorithm3Params& params,
                                const mr::ClusterConfig& cluster = {},
                                std::size_t threads = 0);

}  // namespace mrmc::pig

#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string_view>
#include <utility>

#include "common/fsio.hpp"
#include "common/timer.hpp"
#include "obs/log.hpp"

namespace mrmc::obs::report {

namespace {

const Logger& logger() {
  static const Logger instance("obs.report");
  return instance;
}

/// %.17g — round-trips through strtod exactly (same contract as the trace).
std::string f17(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string f2(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.2f", value);
  return buf;
}

std::string pct(double fraction) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.1f%%", fraction * 100.0);
  return buf;
}

void append_json_string(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string html_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Same median the scheduler's speculation heuristic uses: the upper median
/// of the sorted durations (index size/2).
double median_duration(const std::vector<TaskSample>& tasks) {
  if (tasks.empty()) return 0.0;
  std::vector<double> durations;
  durations.reserve(tasks.size());
  for (const TaskSample& task : tasks) durations.push_back(task.duration_s());
  std::nth_element(durations.begin(),
                   durations.begin() + static_cast<long>(durations.size() / 2),
                   durations.end());
  return durations[durations.size() / 2];
}

PhaseAnalysis analyze_phase(std::string phase_name,
                            const std::vector<TaskSample>& tasks,
                            std::size_t nodes, std::size_t slots_per_node) {
  PhaseAnalysis phase;
  phase.phase = std::move(phase_name);
  phase.task_count = tasks.size();
  phase.slots = nodes * slots_per_node;
  phase.node_busy_s.assign(nodes, 0.0);
  if (tasks.empty()) return phase;

  std::map<std::pair<int, int>, bool> slot_seen;
  std::size_t local = 0;
  for (const TaskSample& task : tasks) {
    // Same fold order as PhaseTimeline: max over end_s, exact doubles.
    phase.makespan_s = std::max(phase.makespan_s, task.end_s);
    phase.busy_s += task.duration_s();
    phase.max_task_s = std::max(phase.max_task_s, task.duration_s());
    if (task.node >= 0 && static_cast<std::size_t>(task.node) < nodes) {
      phase.node_busy_s[static_cast<std::size_t>(task.node)] +=
          task.duration_s();
    }
    slot_seen[{task.node, task.slot}] = true;
    if (task.data_local) ++local;
  }
  phase.busy_slots = slot_seen.size();
  phase.median_task_s = median_duration(tasks);
  phase.data_local_fraction =
      static_cast<double>(local) / static_cast<double>(tasks.size());
  if (phase.slots > 0) {
    phase.ideal_s = phase.busy_s / static_cast<double>(phase.slots);
    if (phase.makespan_s > 0.0) {
      phase.parallel_efficiency =
          phase.busy_s / (phase.makespan_s * static_cast<double>(phase.slots));
    }
  }
  return phase;
}

/// Top-k tasks above `threshold`, longest first, described for a finding.
std::string describe_stragglers(const std::vector<TaskSample>& tasks,
                                double threshold, std::size_t top_k,
                                std::size_t* count_out) {
  std::vector<const TaskSample*> over;
  for (const TaskSample& task : tasks) {
    if (task.duration_s() > threshold) over.push_back(&task);
  }
  std::sort(over.begin(), over.end(), [](const TaskSample* a, const TaskSample* b) {
    return a->duration_s() > b->duration_s();
  });
  *count_out = over.size();
  std::string out;
  for (std::size_t i = 0; i < over.size() && i < top_k; ++i) {
    if (i > 0) out += ", ";
    out += "task " + std::to_string(over[i]->index) + " on node " +
           std::to_string(over[i]->node) + " took " +
           f2(over[i]->duration_s()) + "s";
  }
  return out;
}

void straggler_finding(const PhaseAnalysis& phase,
                       const std::vector<TaskSample>& tasks,
                       const AnalyzeOptions& options,
                       std::vector<Finding>& findings) {
  // Need enough tasks for the median to mean anything (same floor as the
  // scheduler's speculation heuristic).
  if (tasks.size() < 3 || phase.median_task_s <= 0.0) return;
  const double threshold = options.straggler_factor * phase.median_task_s;
  std::size_t count = 0;
  const std::string worst =
      describe_stragglers(tasks, threshold, options.straggler_top_k, &count);
  if (count == 0) return;
  Finding finding;
  finding.id = phase.phase + "-straggler";
  finding.severity = Severity::kWarning;
  finding.message = phase.phase + ": " + std::to_string(count) + " of " +
                    std::to_string(tasks.size()) + " tasks exceed " +
                    f2(options.straggler_factor) + "x the phase median (" +
                    f2(phase.median_task_s) + "s): " + worst;
  finding.recommendation =
      phase.phase == "map"
          ? "skewed splits or a slow node — enable speculative_execution, or "
            "cut records_per_split so stragglers re-balance"
          : "a reducer is overloaded — enable speculative_execution, or "
            "rebalance keys across more reducers";
  findings.push_back(std::move(finding));
}

}  // namespace

const char* severity_name(Severity severity) noexcept {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kCritical: return "critical";
  }
  return "info";
}

bool JobReport::has_finding(std::string_view id) const noexcept {
  for (const Finding& finding : findings) {
    if (finding.id == id) return true;
  }
  return false;
}

JobReport analyze(const JobInput& input, const AnalyzeOptions& options) {
  JobReport report;
  report.name = input.name;
  report.nodes = input.nodes;
  report.startup_s = input.job_startup_s;
  report.shuffle_s = input.shuffle_s;
  report.shuffle_bytes = input.shuffle_bytes;
  report.bytes = input.bytes;
  report.pipeline = input.pipeline;
  report.stage = input.stage;
  report.round = input.round;
  report.sequence = input.sequence;
  report.trace_pid = input.trace_pid;
  report.map_phase = analyze_phase("map", input.map_tasks, input.nodes,
                                   input.map_slots_per_node);
  report.reduce_phase = analyze_phase("reduce", input.reduce_tasks, input.nodes,
                                      input.reduce_slots_per_node);
  // The exact association mr::simulate_job uses: ((startup + map) + shuffle)
  // + reduce, left to right — bit-for-bit equal to JobTimeline::total_s.
  report.total_s = input.job_startup_s + report.map_phase.makespan_s +
                   input.shuffle_s + report.reduce_phase.makespan_s;

  const double busy =
      report.map_phase.busy_s + report.reduce_phase.busy_s;
  const double capacity =
      report.map_phase.makespan_s * static_cast<double>(report.map_phase.slots) +
      report.reduce_phase.makespan_s *
          static_cast<double>(report.reduce_phase.slots);
  report.parallel_efficiency = capacity > 0.0 ? busy / capacity : 0.0;
  report.overhead_fraction =
      report.total_s > 0.0
          ? (input.job_startup_s + input.shuffle_s) / report.total_s
          : 0.0;

  report.node_utilization.reserve(input.nodes);
  for (std::size_t node = 0; node < input.nodes; ++node) {
    NodeUtilization util;
    util.node = static_cast<int>(node);
    util.busy_s = report.map_phase.node_busy_s[node] +
                  report.reduce_phase.node_busy_s[node];
    const double available =
        report.map_phase.makespan_s *
            static_cast<double>(input.map_slots_per_node) +
        report.reduce_phase.makespan_s *
            static_cast<double>(input.reduce_slots_per_node);
    util.utilization = available > 0.0 ? util.busy_s / available : 0.0;
    report.node_utilization.push_back(util);
  }

  // ---------------------------------------------------------- the heuristics
  straggler_finding(report.map_phase, input.map_tasks, options, report.findings);
  straggler_finding(report.reduce_phase, input.reduce_tasks, options,
                    report.findings);

  if (input.reduce_tasks.size() >= 2 && report.reduce_phase.median_task_s > 0.0) {
    const double imbalance =
        report.reduce_phase.max_task_s / report.reduce_phase.median_task_s;
    if (imbalance > options.skew_factor) {
      report.findings.push_back(
          {"reduce-skew", Severity::kWarning,
           "reduce-key fan-out is imbalanced: the slowest reducer ran " +
               f2(imbalance) + "x the median (" +
               f2(report.reduce_phase.max_task_s) + "s vs " +
               f2(report.reduce_phase.median_task_s) + "s)",
           "hot keys dominate one partition — add a combiner, salt the hot "
           "keys, or use a range partitioner"});
    }
  }

  if (!input.map_tasks.empty() &&
      report.map_phase.data_local_fraction < options.locality_threshold) {
    report.findings.push_back(
        {"low-locality", Severity::kWarning,
         "only " + pct(report.map_phase.data_local_fraction) +
             " of map tasks read their split from local disk",
         "replicate inputs wider or relax the scheduler's locality delay so "
         "maps land on their replica holders"});
  }

  for (const PhaseAnalysis* phase : {&report.map_phase, &report.reduce_phase}) {
    if (phase->task_count == 0 || phase->busy_slots >= phase->slots) continue;
    const bool severe = phase->busy_slots * 2 < phase->slots;
    report.findings.push_back(
        {phase->phase + "-idle-slots",
         severe ? Severity::kWarning : Severity::kInfo,
         phase->phase + " phase used " + std::to_string(phase->busy_slots) +
             " of " + std::to_string(phase->slots) + " slots (" +
             std::to_string(phase->task_count) + " tasks)",
         "fewer tasks than slots — the cluster cannot speed this phase up; "
         "split the input finer or run on fewer nodes"});
  }

  if (report.total_s > 0.0) {
    if (input.shuffle_s / report.total_s > options.overhead_fraction) {
      report.findings.push_back(
          {"shuffle-bound", Severity::kWarning,
           "shuffle moves " + f2(input.shuffle_bytes / 1e6) + " MB and takes " +
               pct(input.shuffle_s / report.total_s) + " of the job",
           "shrink map output: add a combiner, compress intermediate data, or "
           "sketch/sample before shuffling"});
    }
    if (input.job_startup_s / report.total_s > options.overhead_fraction) {
      report.findings.push_back(
          {"startup-bound", Severity::kWarning,
           "fixed job startup (" + f2(input.job_startup_s) + "s) is " +
               pct(input.job_startup_s / report.total_s) + " of the job",
           "the job is too small for the cluster — batch more input per job "
           "or chain stages into one job"});
    }
  }

  if (capacity > 0.0 &&
      report.parallel_efficiency < options.efficiency_threshold) {
    report.findings.push_back(
        {"low-parallel-efficiency", Severity::kWarning,
         "parallel efficiency is " + pct(report.parallel_efficiency) +
             ": the critical path (" + f2(report.total_s) +
             "s) is far above the balanced ideal (" +
             f2(report.map_phase.ideal_s + report.reduce_phase.ideal_s) +
             "s of work per slot)",
         "adding nodes will not help until the task breakdown above is "
         "fixed — look at the straggler/idle-slot findings first"});
  }

  // --------------------------------------------------------------- faults
  report.faults.events = input.fault_events;
  report.faults.lost_attempts = input.lost_attempts;
  report.faults.node_crashes = input.fault_events.size();
  for (const FaultEventSample& event : input.fault_events) {
    if (event.blacklisted) ++report.faults.blacklisted_nodes;
    // Node-down seconds within the job window; a -1 recover means the node
    // stayed down to the end.
    const double down_start = std::min(event.crash_s, report.total_s);
    const double down_end = event.recover_s < 0.0
                                ? report.total_s
                                : std::min(event.recover_s, report.total_s);
    report.faults.downtime_s += std::max(0.0, down_end - down_start);
  }
  for (const LostAttemptSample& lost : input.lost_attempts) {
    if (lost.kind == "lost-output") {
      ++report.faults.lost_map_outputs;
    } else {
      ++report.faults.killed_attempts;
    }
    report.faults.lost_work_s += lost.end_s - lost.start_s;
  }
  if (!report.faults.empty()) {
    const bool severe = report.faults.lost_map_outputs > 0 ||
                        report.faults.blacklisted_nodes > 0;
    report.findings.push_back(
        {"node-failures", severe ? Severity::kCritical : Severity::kWarning,
         std::to_string(report.faults.node_crashes) + " node crash(es): " +
             std::to_string(report.faults.killed_attempts) +
             " attempts killed, " +
             std::to_string(report.faults.lost_map_outputs) +
             " completed map outputs lost, " +
             std::to_string(report.faults.blacklisted_nodes) +
             " node(s) blacklisted; " + f2(report.faults.lost_work_s) +
             "s of attempt time destroyed",
         "the job re-executed the lost work and finished with identical "
         "output — if crashes recur, raise dfs replication, shorten the "
         "heartbeat timeout, or lower max_node_failures to blacklist "
         "earlier"});
  }

  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return static_cast<int>(a.severity) >
                            static_cast<int>(b.severity);
                   });
  return report;
}

// ------------------------------------------------------------ offline intake

namespace {

double parse_exact(const std::string& text) {
  return std::strtod(text.c_str(), nullptr);
}

/// "node 3 map slot 1" -> (3, "map", 1); returns false for other tracks.
bool parse_track_name(const std::string& name, int* node, std::string* phase,
                      int* slot) {
  char phase_buf[32] = {0};
  if (std::sscanf(name.c_str(), "node %d %31s slot %d", node, phase_buf,
                  slot) != 3) {
    return false;
  }
  *phase = phase_buf;
  return true;
}

}  // namespace

std::vector<JobInput> jobs_from_trace(const common::JsonValue& root) {
  const common::JsonValue& events = root.at("traceEvents");
  if (events.type != common::JsonValue::Type::kArray) {
    throw std::runtime_error("traceEvents is not an array");
  }

  // Pass 1: job names, cluster configs, and track names, keyed by sim pid.
  std::map<std::uint32_t, JobInput> jobs;  // ordered -> trace order
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::pair<int, std::pair<std::string, int>>>
      tracks;  // (pid, tid) -> (node, (phase, slot))
  for (const common::JsonValue& event : events.array) {
    const auto pid = static_cast<std::uint32_t>(event.at("pid").number);
    if (pid <= 1) continue;  // pid 1 is the wall clock
    const std::string& ph = event.at("ph").string;
    const std::string& name = event.at("name").string;
    if (ph == "M" && name == "process_name") {
      std::string job_name = event.at("args").at("name").string;
      if (job_name.rfind("sim: ", 0) == 0) job_name.erase(0, 5);
      jobs[pid].name = std::move(job_name);
    } else if (ph == "M" && name == "thread_name") {
      const auto tid = static_cast<std::uint32_t>(event.at("tid").number);
      int node = 0, slot = 0;
      std::string phase;
      if (parse_track_name(event.at("args").at("name").string, &node, &phase,
                           &slot)) {
        tracks[{pid, tid}] = {node, {phase, slot}};
      }
    } else if (ph == "i" && name == "job_config") {
      const common::JsonValue& args = event.at("args");
      JobInput& job = jobs[pid];
      job.nodes = static_cast<std::size_t>(parse_exact(args.at("nodes").string));
      job.map_slots_per_node = static_cast<std::size_t>(
          parse_exact(args.at("map_slots_per_node").string));
      job.reduce_slots_per_node = static_cast<std::size_t>(
          parse_exact(args.at("reduce_slots_per_node").string));
      job.job_startup_s = parse_exact(args.at("job_startup_s").string);
      if (args.has("shuffle_bytes")) {
        job.shuffle_bytes = parse_exact(args.at("shuffle_bytes").string);
      }
    } else if (ph == "i" && name == "job_bytes") {
      // %.17g strings restore the in-process byte totals bit-for-bit.
      const common::JsonValue& args = event.at("args");
      ByteSummary& bytes = jobs[pid].bytes;
      bytes.map_input_bytes = parse_exact(args.at("map_input_bytes").string);
      bytes.map_output_bytes = parse_exact(args.at("map_output_bytes").string);
      bytes.reduce_input_bytes =
          parse_exact(args.at("reduce_input_bytes").string);
      bytes.reduce_output_bytes =
          parse_exact(args.at("reduce_output_bytes").string);
      bytes.fetch_bytes = parse_exact(args.at("fetch_bytes").string);
      bytes.fetch_count =
          static_cast<std::size_t>(parse_exact(args.at("fetch_count").string));
      bytes.max_fetch_fan_in = static_cast<std::size_t>(
          parse_exact(args.at("max_fetch_fan_in").string));
    } else if (ph == "i" && name == "node_fault") {
      // Fault instants were appended in crash order, so file order rebuilds
      // the exact FaultOutcome lists the in-process path feeds analyze().
      const common::JsonValue& args = event.at("args");
      FaultEventSample fault;
      fault.node = static_cast<int>(parse_exact(args.at("node").string));
      fault.crash_s = parse_exact(args.at("crash_s").string);
      fault.detect_s = parse_exact(args.at("detect_s").string);
      fault.recover_s = parse_exact(args.at("recover_s").string);
      fault.blacklisted = args.at("blacklisted").string == "true";
      jobs[pid].fault_events.push_back(fault);
    } else if (ph == "i" && name == "job_lineage") {
      // obs v3: the pipeline claim the engine stamped onto this job.
      const common::JsonValue& args = event.at("args");
      JobInput& job = jobs[pid];
      job.pipeline = args.at("pipeline").string;
      job.stage = args.at("stage").string;
      job.round = static_cast<int>(parse_exact(args.at("round").string));
      job.sequence =
          static_cast<std::size_t>(parse_exact(args.at("sequence").string));
    } else if (ph == "i" && name == "lost_attempt") {
      const common::JsonValue& args = event.at("args");
      LostAttemptSample lost;
      lost.phase = args.at("phase").string;
      lost.kind = args.at("kind").string;
      lost.task = static_cast<std::size_t>(parse_exact(args.at("task").string));
      lost.node = static_cast<int>(parse_exact(args.at("node").string));
      lost.slot = static_cast<int>(parse_exact(args.at("slot").string));
      lost.start_s = parse_exact(args.at("start_s").string);
      lost.end_s = parse_exact(args.at("end_s").string);
      jobs[pid].lost_attempts.push_back(std::move(lost));
    }
  }

  // Pass 2: the tasks themselves; %.17g args restore exact doubles.
  for (const common::JsonValue& event : events.array) {
    if (event.at("ph").string != "X" || !event.has("cat") ||
        event.at("cat").string != "sim") {
      continue;
    }
    const auto pid = static_cast<std::uint32_t>(event.at("pid").number);
    const common::JsonValue& args = event.at("args");
    JobInput& job = jobs[pid];
    const std::string& phase = args.at("phase").string;
    if (phase == "shuffle") {
      job.shuffle_s = parse_exact(args.at("end_s").string);
      continue;
    }
    // Per-fetch shuffle events overlap the map phase and are already
    // accounted for by the aggregate shuffle tail; they are not tasks.
    if (phase == "fetch") continue;
    TaskSample task;
    task.index =
        static_cast<std::size_t>(parse_exact(args.at("task").string));
    task.start_s = parse_exact(args.at("start_s").string);
    task.end_s = parse_exact(args.at("end_s").string);
    task.data_local =
        !args.has("data_local") || args.at("data_local").string == "true";
    const auto tid = static_cast<std::uint32_t>(event.at("tid").number);
    const auto track = tracks.find({pid, tid});
    if (track != tracks.end()) {
      task.node = track->second.first;
      task.slot = track->second.second.second;
    }
    (phase == "reduce" ? job.reduce_tasks : job.map_tasks).push_back(task);
  }

  std::vector<JobInput> out;
  out.reserve(jobs.size());
  for (auto& [pid, job] : jobs) {
    if (job.map_tasks.empty() && job.reduce_tasks.empty() &&
        job.shuffle_s == 0.0) {
      continue;  // a pid with no sim events (e.g. a foreign trace)
    }
    // Traces without a job_config instant (or with idle trailing nodes):
    // widen the cluster to cover every node a task actually ran on.
    std::size_t max_node = 0;
    for (const TaskSample& task : job.map_tasks) {
      max_node = std::max(max_node, static_cast<std::size_t>(task.node));
    }
    for (const TaskSample& task : job.reduce_tasks) {
      max_node = std::max(max_node, static_cast<std::size_t>(task.node));
    }
    job.nodes = std::max(job.nodes, max_node + 1);
    job.trace_pid = pid;  // lets mrmc_doctor list/select jobs by sim track
    // Tasks were appended in trace order; restore phase-index order so the
    // analyzer's sums run in the same order as the in-process path.
    auto by_index = [](const TaskSample& a, const TaskSample& b) {
      return a.index < b.index;
    };
    std::sort(job.map_tasks.begin(), job.map_tasks.end(), by_index);
    std::sort(job.reduce_tasks.begin(), job.reduce_tasks.end(), by_index);
    out.push_back(std::move(job));
  }
  return out;
}

std::vector<JobReport> analyze_trace_file(const std::string& path,
                                          const AnalyzeOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const common::JsonValue root = common::parse_json(buffer.str());
  std::vector<JobReport> reports;
  for (const JobInput& job : jobs_from_trace(root)) {
    reports.push_back(analyze(job, options));
  }
  return reports;
}

// ---------------------------------------------------------------- renderers

namespace {

constexpr const char* kReset = "\x1b[0m";

const char* severity_color(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "\x1b[36m";      // cyan
    case Severity::kWarning: return "\x1b[33m";   // yellow
    case Severity::kCritical: return "\x1b[31m";  // red
  }
  return "";
}

/// 0..1 -> " ▁▂▃▄▅▆▇█" utilization bar glyph.
const char* util_glyph(double fraction) {
  static const char* kGlyphs[] = {" ", "▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  const int idx = std::clamp(static_cast<int>(std::lround(fraction * 8.0)), 0, 8);
  return kGlyphs[idx];
}

void phase_text(std::string& out, const PhaseAnalysis& phase) {
  out += "  " + phase.phase + ":";
  out.append(phase.phase.size() < 6 ? 7 - phase.phase.size() : 1, ' ');
  if (phase.task_count == 0) {
    out += "(no tasks)\n";
    return;
  }
  out += std::to_string(phase.task_count) + " tasks on " +
         std::to_string(phase.busy_slots) + "/" + std::to_string(phase.slots) +
         " slots  makespan " + f2(phase.makespan_s) + "s  work " +
         f2(phase.busy_s) + "s (ideal " + f2(phase.ideal_s) +
         "s)  efficiency " + pct(phase.parallel_efficiency) + "  median " +
         f2(phase.median_task_s) + "s  max " + f2(phase.max_task_s) +
         "s  locality " + pct(phase.data_local_fraction) + "\n";
}

}  // namespace

std::string to_text(const JobReport& report, bool color) {
  std::string out;
  out += "job \"" + report.name + "\" — total " +
         common::format_duration(report.total_s) + " on " +
         std::to_string(report.nodes) + " nodes, parallel efficiency " +
         pct(report.parallel_efficiency) + "\n";
  if (!report.pipeline.empty()) {
    out += "  lineage: pipeline \"" + report.pipeline + "\" stage \"" +
           report.stage + "\" seq " + std::to_string(report.sequence);
    if (report.round >= 0) out += " round " + std::to_string(report.round);
    out += "\n";
  }
  auto leg = [&](const char* name, double seconds) {
    out += std::string(name) + " " + f2(seconds) + "s";
    if (report.total_s > 0.0) out += " (" + pct(seconds / report.total_s) + ")";
  };
  out += "  critical path: ";
  leg("startup", report.startup_s);
  out += " | ";
  leg("map", report.map_phase.makespan_s);
  out += " | ";
  leg("shuffle", report.shuffle_s);
  out += " | ";
  leg("reduce", report.reduce_phase.makespan_s);
  out += "\n";
  phase_text(out, report.map_phase);
  phase_text(out, report.reduce_phase);

  out += "  node utilization: ";
  for (const NodeUtilization& node : report.node_utilization) {
    out += util_glyph(node.utilization);
  }
  out += "  (";
  for (std::size_t i = 0; i < report.node_utilization.size(); ++i) {
    if (i > 0) out += " ";
    out += "n" + std::to_string(report.node_utilization[i].node) + "=" +
           pct(report.node_utilization[i].utilization);
  }
  out += ")\n";

  if (!report.bytes.empty()) {
    out += "  bytes: map in " + f2(report.bytes.map_input_bytes / 1e6) +
           " MB, out " + f2(report.bytes.map_output_bytes / 1e6) +
           " MB | shuffle " + f2(report.bytes.fetch_bytes / 1e6) + " MB in " +
           std::to_string(report.bytes.fetch_count) +
           " fetches (max fan-in " +
           std::to_string(report.bytes.max_fetch_fan_in) +
           ") | reduce in " + f2(report.bytes.reduce_input_bytes / 1e6) +
           " MB, out " + f2(report.bytes.reduce_output_bytes / 1e6) + " MB\n";
  }

  if (!report.faults.empty()) {
    out += "  faults: " + std::to_string(report.faults.node_crashes) +
           " crash(es), " + std::to_string(report.faults.killed_attempts) +
           " killed, " + std::to_string(report.faults.lost_map_outputs) +
           " map outputs lost, " +
           std::to_string(report.faults.blacklisted_nodes) +
           " blacklisted  lost work " + f2(report.faults.lost_work_s) +
           "s  downtime " + f2(report.faults.downtime_s) + "s\n";
    for (const FaultEventSample& event : report.faults.events) {
      out += "    node " + std::to_string(event.node) + " down at " +
             f2(event.crash_s) + "s, detected " + f2(event.detect_s) + "s, ";
      if (event.blacklisted) {
        out += "blacklisted\n";
      } else if (event.recover_s < 0.0) {
        out += "never recovered\n";
      } else {
        out += "recovered " + f2(event.recover_s) + "s\n";
      }
    }
    for (const LostAttemptSample& lost : report.faults.lost_attempts) {
      out += "    " + lost.kind + ": " + lost.phase + " task " +
             std::to_string(lost.task) + " on node " +
             std::to_string(lost.node) + " slot " + std::to_string(lost.slot) +
             " [" + f2(lost.start_s) + "s, " + f2(lost.end_s) + "s]\n";
    }
  }

  if (report.findings.empty()) {
    out += "  findings: none — the job is as parallel as its task breakdown allows\n";
  } else {
    out += "  findings:\n";
    for (const Finding& finding : report.findings) {
      out += "    [";
      if (color) out += severity_color(finding.severity);
      out += severity_name(finding.severity);
      if (color) out += kReset;
      out += "] " + finding.id + ": " + finding.message + "\n";
      out += "        -> " + finding.recommendation + "\n";
    }
  }
  return out;
}

std::string to_text(std::span<const JobReport> reports, bool color) {
  std::string out;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) out += "\n";
    out += to_text(reports[i], color);
  }
  return out;
}

namespace {

void phase_json(std::string& out, const PhaseAnalysis& phase) {
  out += "{\"tasks\": " + std::to_string(phase.task_count) +
         ", \"slots\": " + std::to_string(phase.slots) +
         ", \"busy_slots\": " + std::to_string(phase.busy_slots) +
         ", \"makespan_s\": " + f17(phase.makespan_s) +
         ", \"busy_s\": " + f17(phase.busy_s) +
         ", \"ideal_s\": " + f17(phase.ideal_s) +
         ", \"parallel_efficiency\": " + f17(phase.parallel_efficiency) +
         ", \"median_task_s\": " + f17(phase.median_task_s) +
         ", \"max_task_s\": " + f17(phase.max_task_s) +
         ", \"data_local_fraction\": " + f17(phase.data_local_fraction) +
         ", \"node_busy_s\": [";
  for (std::size_t i = 0; i < phase.node_busy_s.size(); ++i) {
    if (i > 0) out += ", ";
    out += f17(phase.node_busy_s[i]);
  }
  out += "]}";
}

}  // namespace

std::string to_json(const JobReport& report) {
  std::string out = "{\"name\": ";
  append_json_string(out, report.name);
  out += ", \"nodes\": " + std::to_string(report.nodes);
  if (!report.pipeline.empty()) {
    // Lineage only when present, so standalone-job reports stay
    // byte-identical to pre-pipeline builds.
    out += ", \"lineage\": {\"pipeline\": ";
    append_json_string(out, report.pipeline);
    out += ", \"stage\": ";
    append_json_string(out, report.stage);
    out += ", \"round\": " + std::to_string(report.round) +
           ", \"sequence\": " + std::to_string(report.sequence) + "}";
  }
  out += ", \"critical_path\": {\"startup_s\": " + f17(report.startup_s) +
         ", \"map_s\": " + f17(report.map_phase.makespan_s) +
         ", \"shuffle_s\": " + f17(report.shuffle_s) +
         ", \"reduce_s\": " + f17(report.reduce_phase.makespan_s) +
         ", \"total_s\": " + f17(report.total_s) + "}" +
         ", \"parallel_efficiency\": " + f17(report.parallel_efficiency) +
         ", \"overhead_fraction\": " + f17(report.overhead_fraction) +
         ", \"shuffle_bytes\": " + f17(report.shuffle_bytes) +
         ", \"map\": ";
  phase_json(out, report.map_phase);
  out += ", \"reduce\": ";
  phase_json(out, report.reduce_phase);
  out += ", \"node_utilization\": [";
  for (std::size_t i = 0; i < report.node_utilization.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"node\": " + std::to_string(report.node_utilization[i].node) +
           ", \"busy_s\": " + f17(report.node_utilization[i].busy_s) +
           ", \"utilization\": " + f17(report.node_utilization[i].utilization) +
           "}";
  }
  out += "]";
  if (!report.bytes.empty()) {
    out += ", \"bytes\": {\"map_input_bytes\": " +
           f17(report.bytes.map_input_bytes) +
           ", \"map_output_bytes\": " + f17(report.bytes.map_output_bytes) +
           ", \"reduce_input_bytes\": " + f17(report.bytes.reduce_input_bytes) +
           ", \"reduce_output_bytes\": " +
           f17(report.bytes.reduce_output_bytes) +
           ", \"fetch_bytes\": " + f17(report.bytes.fetch_bytes) +
           ", \"fetch_count\": " + std::to_string(report.bytes.fetch_count) +
           ", \"max_fetch_fan_in\": " +
           std::to_string(report.bytes.max_fetch_fan_in) + "}";
  }
  if (!report.faults.empty()) {
    out += ", \"faults\": {\"node_crashes\": " +
           std::to_string(report.faults.node_crashes) +
           ", \"killed_attempts\": " +
           std::to_string(report.faults.killed_attempts) +
           ", \"lost_map_outputs\": " +
           std::to_string(report.faults.lost_map_outputs) +
           ", \"blacklisted_nodes\": " +
           std::to_string(report.faults.blacklisted_nodes) +
           ", \"lost_work_s\": " + f17(report.faults.lost_work_s) +
           ", \"downtime_s\": " + f17(report.faults.downtime_s) +
           ", \"events\": [";
    for (std::size_t i = 0; i < report.faults.events.size(); ++i) {
      const FaultEventSample& event = report.faults.events[i];
      if (i > 0) out += ", ";
      out += "{\"node\": " + std::to_string(event.node) +
             ", \"crash_s\": " + f17(event.crash_s) +
             ", \"detect_s\": " + f17(event.detect_s) +
             ", \"recover_s\": " + f17(event.recover_s) +
             ", \"blacklisted\": " + (event.blacklisted ? "true" : "false") +
             "}";
    }
    out += "], \"lost_attempts\": [";
    for (std::size_t i = 0; i < report.faults.lost_attempts.size(); ++i) {
      const LostAttemptSample& lost = report.faults.lost_attempts[i];
      if (i > 0) out += ", ";
      out += "{\"phase\": ";
      append_json_string(out, lost.phase);
      out += ", \"kind\": ";
      append_json_string(out, lost.kind);
      out += ", \"task\": " + std::to_string(lost.task) +
             ", \"node\": " + std::to_string(lost.node) +
             ", \"slot\": " + std::to_string(lost.slot) +
             ", \"start_s\": " + f17(lost.start_s) +
             ", \"end_s\": " + f17(lost.end_s) + "}";
    }
    out += "]}";
  }
  out += ", \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& finding = report.findings[i];
    if (i > 0) out += ", ";
    out += "{\"id\": ";
    append_json_string(out, finding.id);
    out += ", \"severity\": ";
    append_json_string(out, severity_name(finding.severity));
    out += ", \"message\": ";
    append_json_string(out, finding.message);
    out += ", \"recommendation\": ";
    append_json_string(out, finding.recommendation);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string to_json(std::span<const JobReport> reports) {
  std::string out = "{\"jobs\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) out += ",\n";
    out += "  " + to_json(reports[i]);
  }
  out += "\n]}\n";
  return out;
}

// --------------------------------------------------------------------- HTML

namespace {

constexpr const char* kMapColor = "#4e79a7";
constexpr const char* kShuffleColor = "#f28e2b";
constexpr const char* kReduceColor = "#59a14b";

struct GanttRow {
  std::string label;
  const char* color;
  std::vector<std::pair<double, double>> spans;  ///< absolute [begin, end)
  std::vector<bool> straggler;                   ///< parallel to spans
};

/// Lay one phase out as Gantt rows (one per node/slot that ran a task),
/// shifted to its absolute position on the job's critical path.
void phase_rows(const PhaseAnalysis& phase, const std::vector<TaskSample>& tasks,
                double offset_s, const char* color, double straggler_factor,
                std::vector<GanttRow>& rows) {
  std::map<std::pair<int, int>, std::size_t> row_of;
  const double threshold = straggler_factor * phase.median_task_s;
  for (const TaskSample& task : tasks) {
    const auto key = std::make_pair(task.node, task.slot);
    auto it = row_of.find(key);
    if (it == row_of.end()) {
      it = row_of.emplace(key, rows.size()).first;
      rows.push_back({"n" + std::to_string(task.node) + " " + phase.phase +
                          " s" + std::to_string(task.slot),
                      color,
                      {},
                      {}});
    }
    GanttRow& row = rows[it->second];
    row.spans.emplace_back(offset_s + task.start_s, offset_s + task.end_s);
    row.straggler.push_back(tasks.size() >= 3 && threshold > 0.0 &&
                            task.duration_s() > threshold);
  }
}

void gantt_svg(std::string& out, const JobReport& report,
               const std::vector<GanttRow>& rows) {
  constexpr double kWidth = 860.0, kLabel = 110.0, kRowH = 16.0;
  const double total = report.total_s > 0.0 ? report.total_s : 1.0;
  const double height = kRowH * static_cast<double>(rows.size()) + 22.0;
  auto x = [&](double t) {
    return kLabel + (kWidth - kLabel) * (t / total);
  };
  out += "<svg viewBox=\"0 0 " + f2(kWidth) + " " + f2(height) +
         "\" style=\"width:100%;max-width:" + f2(kWidth) + "px\">\n";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const double y = 18.0 + kRowH * static_cast<double>(r);
    out += "<text x=\"0\" y=\"" + f2(y + 11.0) +
           "\" class=\"lbl\">" + html_escape(rows[r].label) + "</text>\n";
    for (std::size_t s = 0; s < rows[r].spans.size(); ++s) {
      const auto [begin, end] = rows[r].spans[s];
      out += "<rect x=\"" + f2(x(begin)) + "\" y=\"" + f2(y) + "\" width=\"" +
             f2(std::max(1.0, x(end) - x(begin))) + "\" height=\"" +
             f2(kRowH - 3.0) + "\" fill=\"" + rows[r].color + "\"";
      if (rows[r].straggler[s]) {
        out += " stroke=\"#e15759\" stroke-width=\"2\"";
      }
      out += "><title>" + f2(begin) + "s – " + f2(end) + "s</title></rect>\n";
    }
  }
  // Time axis: start, startup boundary, end.
  out += "<text x=\"" + f2(kLabel) + "\" y=\"12\" class=\"lbl\">0s</text>\n";
  out += "<text x=\"" + f2(kWidth - 40.0) + "\" y=\"12\" class=\"lbl\">" +
         f2(report.total_s) + "s</text>\n";
  out += "</svg>\n";
}

/// Per-node utilization strip: 100 bins over [0, total_s], opacity = the
/// node's busy slot-seconds in the bin over its available slot-seconds.
void utilization_svg(std::string& out, const JobReport& report,
                     const JobInput* input) {
  if (input == nullptr || report.total_s <= 0.0) return;
  constexpr int kBins = 100;
  constexpr double kWidth = 860.0, kLabel = 110.0, kRowH = 14.0;
  const double total = report.total_s;
  const double bin_s = total / kBins;
  const double slots_per_node = static_cast<double>(
      std::max(input->map_slots_per_node, input->reduce_slots_per_node));
  const double height = kRowH * static_cast<double>(input->nodes) + 6.0;
  out += "<svg viewBox=\"0 0 " + f2(kWidth) + " " + f2(height) +
         "\" style=\"width:100%;max-width:" + f2(kWidth) + "px\">\n";
  const double map_offset = report.startup_s;
  const double reduce_offset =
      report.startup_s + report.map_phase.makespan_s + report.shuffle_s;
  for (std::size_t node = 0; node < input->nodes; ++node) {
    std::vector<double> busy(kBins, 0.0);
    auto accumulate = [&](const std::vector<TaskSample>& tasks, double offset) {
      for (const TaskSample& task : tasks) {
        if (static_cast<std::size_t>(task.node) != node) continue;
        const double begin = offset + task.start_s;
        const double end = offset + task.end_s;
        for (int b = std::max(0, static_cast<int>(begin / bin_s));
             b < kBins && b * bin_s < end; ++b) {
          const double lo = std::max(begin, b * bin_s);
          const double hi = std::min(end, (b + 1) * bin_s);
          if (hi > lo) busy[static_cast<std::size_t>(b)] += hi - lo;
        }
      }
    };
    accumulate(input->map_tasks, map_offset);
    accumulate(input->reduce_tasks, reduce_offset);
    const double y = 2.0 + kRowH * static_cast<double>(node);
    out += "<text x=\"0\" y=\"" + f2(y + 10.0) + "\" class=\"lbl\">node " +
           std::to_string(node) + "</text>\n";
    for (int b = 0; b < kBins; ++b) {
      const double fraction =
          std::min(1.0, busy[static_cast<std::size_t>(b)] /
                            (bin_s * slots_per_node));
      if (fraction <= 0.0) continue;
      out += "<rect x=\"" +
             f2(kLabel + (kWidth - kLabel) * b / kBins) + "\" y=\"" + f2(y) +
             "\" width=\"" + f2((kWidth - kLabel) / kBins) + "\" height=\"" +
             f2(kRowH - 3.0) + "\" fill=\"" + kMapColor +
             "\" fill-opacity=\"" + f2(0.15 + 0.85 * fraction) + "\"/>\n";
    }
  }
  out += "</svg>\n";
}

void critical_path_bar(std::string& out, const JobReport& report) {
  if (report.total_s <= 0.0) return;
  out += "<div class=\"cpbar\">";
  const std::pair<const char*, double> legs[] = {
      {"#9aa0a6", report.startup_s},
      {kMapColor, report.map_phase.makespan_s},
      {kShuffleColor, report.shuffle_s},
      {kReduceColor, report.reduce_phase.makespan_s}};
  const char* names[] = {"startup", "map", "shuffle", "reduce"};
  for (int i = 0; i < 4; ++i) {
    const double fraction = legs[i].second / report.total_s;
    if (fraction <= 0.0) continue;
    out += "<span style=\"background:" + std::string(legs[i].first) +
           ";width:" + f2(fraction * 100.0) + "%\" title=\"" + names[i] + " " +
           f2(legs[i].second) + "s\"></span>";
  }
  out += "</div>\n";
}

}  // namespace

namespace detail {

/// HTML for one job; `input` (optional) enables the Gantt + utilization
/// strips, which need the raw task placements.
std::string job_html(const JobReport& report, const JobInput* input) {
  std::string out;
  out += "<section>\n<h2>" + html_escape(report.name) + "</h2>\n";
  out += "<p class=\"sum\">total <b>" + f2(report.total_s) + "s</b> on " +
         std::to_string(report.nodes) + " nodes · parallel efficiency <b>" +
         pct(report.parallel_efficiency) + "</b> · overhead " +
         pct(report.overhead_fraction) + " · map " +
         std::to_string(report.map_phase.task_count) + " tasks · reduce " +
         std::to_string(report.reduce_phase.task_count) + " tasks</p>\n";
  if (!report.pipeline.empty()) {
    out += "<p class=\"sum\">pipeline <b>" + html_escape(report.pipeline) +
           "</b> · stage <b>" + html_escape(report.stage) + "</b> · seq " +
           std::to_string(report.sequence);
    if (report.round >= 0) out += " · round " + std::to_string(report.round);
    out += "</p>\n";
  }
  critical_path_bar(out, report);
  if (input != nullptr) {
    std::vector<GanttRow> rows;
    AnalyzeOptions defaults;
    phase_rows(report.map_phase, input->map_tasks, report.startup_s, kMapColor,
               defaults.straggler_factor, rows);
    if (report.shuffle_s > 0.0) {
      rows.push_back({"shuffle",
                      kShuffleColor,
                      {{report.startup_s + report.map_phase.makespan_s,
                        report.startup_s + report.map_phase.makespan_s +
                            report.shuffle_s}},
                      {false}});
    }
    phase_rows(report.reduce_phase, input->reduce_tasks,
               report.startup_s + report.map_phase.makespan_s +
                   report.shuffle_s,
               kReduceColor, defaults.straggler_factor, rows);
    out += "<h3>schedule</h3>\n";
    gantt_svg(out, report, rows);
    out += "<h3>node utilization</h3>\n";
    utilization_svg(out, report, input);
  } else {
    // Without the raw task placements (report-only rendering) draw the
    // whole-run per-node utilization as horizontal bars.
    constexpr double kWidth = 860.0, kLabel = 110.0, kRowH = 14.0;
    out += "<h3>node utilization</h3>\n<svg viewBox=\"0 0 " + f2(kWidth) +
           " " +
           f2(kRowH * static_cast<double>(report.node_utilization.size()) +
              6.0) +
           "\" style=\"width:100%;max-width:" + f2(kWidth) + "px\">\n";
    for (std::size_t i = 0; i < report.node_utilization.size(); ++i) {
      const NodeUtilization& node = report.node_utilization[i];
      const double y = 2.0 + kRowH * static_cast<double>(i);
      out += "<text x=\"0\" y=\"" + f2(y + 10.0) + "\" class=\"lbl\">node " +
             std::to_string(node.node) + "</text>\n";
      out += "<rect x=\"" + f2(kLabel) + "\" y=\"" + f2(y) + "\" width=\"" +
             f2((kWidth - kLabel) * std::min(1.0, node.utilization)) +
             "\" height=\"" + f2(kRowH - 3.0) + "\" fill=\"" + kMapColor +
             "\"><title>" + pct(node.utilization) + "</title></rect>\n";
    }
    out += "</svg>\n";
  }
  if (!report.bytes.empty()) {
    out += "<h3>bytes</h3>\n<p class=\"sum\">map in <b>" +
           f2(report.bytes.map_input_bytes / 1e6) + " MB</b>, out <b>" +
           f2(report.bytes.map_output_bytes / 1e6) + " MB</b> · shuffle <b>" +
           f2(report.bytes.fetch_bytes / 1e6) + " MB</b> in " +
           std::to_string(report.bytes.fetch_count) +
           " fetches (max fan-in " +
           std::to_string(report.bytes.max_fetch_fan_in) +
           ") · reduce in <b>" + f2(report.bytes.reduce_input_bytes / 1e6) +
           " MB</b>, out <b>" + f2(report.bytes.reduce_output_bytes / 1e6) +
           " MB</b></p>\n";
  }
  if (!report.faults.empty()) {
    out += "<h3>faults</h3>\n<p class=\"sum\">" +
           std::to_string(report.faults.node_crashes) +
           " node crash(es) · " +
           std::to_string(report.faults.killed_attempts) + " killed · " +
           std::to_string(report.faults.lost_map_outputs) +
           " map outputs lost · " +
           std::to_string(report.faults.blacklisted_nodes) +
           " blacklisted · lost work <b>" + f2(report.faults.lost_work_s) +
           "s</b> · downtime " + f2(report.faults.downtime_s) + "s</p>\n<ul>\n";
    for (const FaultEventSample& event : report.faults.events) {
      out += "<li class=\"warning\">node " + std::to_string(event.node) +
             " down at " + f2(event.crash_s) + "s, detected " +
             f2(event.detect_s) + "s, ";
      if (event.blacklisted) {
        out += "blacklisted";
      } else if (event.recover_s < 0.0) {
        out += "never recovered";
      } else {
        out += "recovered " + f2(event.recover_s) + "s";
      }
      out += "</li>\n";
    }
    for (const LostAttemptSample& lost : report.faults.lost_attempts) {
      out += "<li class=\"" +
             std::string(lost.kind == "lost-output" ? "critical" : "warning") +
             "\">" + html_escape(lost.kind) + ": " + html_escape(lost.phase) +
             " task " + std::to_string(lost.task) + " on node " +
             std::to_string(lost.node) + " slot " + std::to_string(lost.slot) +
             " [" + f2(lost.start_s) + "s, " + f2(lost.end_s) + "s]</li>\n";
    }
    out += "</ul>\n";
  }
  out += "<h3>findings</h3>\n";
  if (report.findings.empty()) {
    out += "<p>none — the job is as parallel as its task breakdown allows</p>\n";
  } else {
    out += "<ul>\n";
    for (const Finding& finding : report.findings) {
      out += "<li class=\"" + std::string(severity_name(finding.severity)) +
             "\"><b>" + html_escape(finding.id) + "</b>: " +
             html_escape(finding.message) + "<br><i>" +
             html_escape(finding.recommendation) + "</i></li>\n";
    }
    out += "</ul>\n";
  }
  out += "</section>\n";
  return out;
}

std::string page_html(const std::string& body) {
  return "<!doctype html>\n<html><head><meta charset=\"utf-8\">"
         "<title>mrmc job doctor</title>\n<style>\n"
         "body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;"
         "max-width:920px;color:#202124}\n"
         "h2{border-bottom:1px solid #dadce0;padding-bottom:.2em}\n"
         ".lbl{font:10px monospace;fill:#5f6368}\n"
         ".sum{color:#5f6368}\n"
         ".cpbar{display:flex;height:18px;border-radius:3px;overflow:hidden;"
         "margin:.5em 0}\n"
         ".cpbar span{display:block;height:100%}\n"
         "li.warning{color:#b06000}\nli.critical{color:#c5221f}\n"
         "li{margin-bottom:.5em}\n"
         "</style></head><body>\n<h1>mrmc job doctor</h1>\n" +
         body + "</body></html>\n";
}

}  // namespace detail

std::string to_html(std::span<const JobReport> reports) {
  std::string body;
  for (const JobReport& report : reports) {
    body += detail::job_html(report, nullptr);
  }
  return detail::page_html(body);
}

// --------------------------------------------------------------- collector

Collector::Collector() {
  if (const char* path = std::getenv("MRMC_REPORT")) {
    if (*path != '\0') {
      output_path_ = path;
      enabled_ = true;
    }
  }
}

Collector::~Collector() { flush(); }

Collector& Collector::global() {
  static Collector collector;
  return collector;
}

bool Collector::enabled() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

void Collector::set_enabled(bool enabled) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = enabled;
}

void Collector::set_output_path(std::string path) {
  std::lock_guard<std::mutex> lock(mutex_);
  output_path_ = std::move(path);
}

std::string Collector::output_path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return output_path_;
}

void Collector::add(JobInput input) {
  std::lock_guard<std::mutex> lock(mutex_);
  inputs_.push_back(std::move(input));
}

std::size_t Collector::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inputs_.size();
}

void Collector::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  inputs_.clear();
}

std::vector<JobReport> Collector::reports(const AnalyzeOptions& options) const {
  std::vector<JobInput> inputs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    inputs = inputs_;
  }
  std::vector<JobReport> out;
  out.reserve(inputs.size());
  for (const JobInput& input : inputs) out.push_back(analyze(input, options));
  return out;
}

bool Collector::flush() const {
  std::string path;
  std::vector<JobInput> inputs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!enabled_ || output_path_.empty()) return false;
    path = output_path_;
    inputs = inputs_;
  }
  if (inputs.empty()) return false;

  std::vector<JobReport> reports;
  reports.reserve(inputs.size());
  for (const JobInput& input : inputs) reports.push_back(analyze(input));

  std::string rendered;
  const auto ends_with = [&](std::string_view suffix) {
    return path.size() >= suffix.size() &&
           std::string_view(path).substr(path.size() - suffix.size()) == suffix;
  };
  if (ends_with(".html")) {
    std::string body;
    for (std::size_t i = 0; i < reports.size(); ++i) {
      body += detail::job_html(reports[i], &inputs[i]);
    }
    rendered = detail::page_html(body);
  } else if (ends_with(".json")) {
    rendered = to_json(std::span<const JobReport>(reports));
  } else {
    rendered = to_text(std::span<const JobReport>(reports));
  }

  if (!common::write_file_atomic(path, rendered)) {
    logger().warn("failed writing report output file", {{"path", path}});
    return false;
  }
  return true;
}

bool Collector::write_global_if_configured() { return global().flush(); }

}  // namespace mrmc::obs::report

#include "bio/fasta.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace mrmc::bio {
namespace {

TEST(ReadFasta, SingleRecord) {
  const auto records = read_fasta_string(">read1 sample=a\nACGT\n");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].id, "read1");
  EXPECT_EQ(records[0].header, "read1 sample=a");
  EXPECT_EQ(records[0].seq, "ACGT");
}

TEST(ReadFasta, MultilineSequencesAreJoined) {
  const auto records = read_fasta_string(">r\nACGT\nTTTT\nGG\n");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, "ACGTTTTTGG");
}

TEST(ReadFasta, MultipleRecords) {
  const auto records = read_fasta_string(">a\nAC\n>b\nGT\n>c\nTT\n");
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].id, "a");
  EXPECT_EQ(records[1].id, "b");
  EXPECT_EQ(records[2].id, "c");
}

TEST(ReadFasta, SkipsBlankLines) {
  const auto records = read_fasta_string("\n>a\n\nAC\n\n>b\nGT\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].seq, "AC");
}

TEST(ReadFasta, HandlesCrLf) {
  const auto records = read_fasta_string(">a desc\r\nACGT\r\n");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].header, "a desc");
  EXPECT_EQ(records[0].seq, "ACGT");
}

TEST(ReadFasta, IdIsFirstToken) {
  const auto records = read_fasta_string(">id7\textra stuff\nAC\n");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].id, "id7");
}

TEST(ReadFasta, EmptyInputYieldsNoRecords) {
  EXPECT_TRUE(read_fasta_string("").empty());
}

TEST(ReadFasta, RejectsSequenceBeforeHeader) {
  EXPECT_THROW(read_fasta_string("ACGT\n>a\nAC\n"), common::IoError);
}

TEST(ReadFasta, RejectsRecordWithoutSequence) {
  EXPECT_THROW(read_fasta_string(">a\n>b\nAC\n"), common::IoError);
  EXPECT_THROW(read_fasta_string(">only\n"), common::IoError);
}

TEST(ReadFasta, RejectsEmptyId) {
  EXPECT_THROW(read_fasta_string("> \nAC\n"), common::IoError);
}

TEST(ReadFastaFile, MissingFileThrows) {
  EXPECT_THROW(read_fasta_file("/nonexistent/path.fa"), common::IoError);
}

TEST(WriteFasta, RoundTrip) {
  const std::vector<FastaRecord> records = {
      {"a", "a sample=1", "ACGTACGT"},
      {"b", "b", "TTTT"},
  };
  const auto text = write_fasta_string(records);
  const auto parsed = read_fasta_string(text);
  EXPECT_EQ(parsed, records);
}

TEST(WriteFasta, WrapsLongSequences) {
  const std::vector<FastaRecord> records = {{"a", "a", std::string(150, 'A')}};
  const auto text = write_fasta_string(records, 70);
  // 150 bases at width 70 -> 3 sequence lines.
  std::istringstream in(text);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 4);  // 1 header + 3 sequence
  EXPECT_EQ(read_fasta_string(text)[0].seq, std::string(150, 'A'));
}

TEST(WriteFasta, ZeroWidthMeansNoWrap) {
  const std::vector<FastaRecord> records = {{"a", "a", std::string(150, 'C')}};
  const auto text = write_fasta_string(records, 0);
  EXPECT_NE(text.find(std::string(150, 'C')), std::string::npos);
}

TEST(WriteFasta, UsesIdWhenHeaderEmpty) {
  const std::vector<FastaRecord> records = {{"xyz", "", "AC"}};
  const auto text = write_fasta_string(records);
  EXPECT_NE(text.find(">xyz"), std::string::npos);
}

}  // namespace
}  // namespace mrmc::bio

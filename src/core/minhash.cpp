#include "core/minhash.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "common/thread_pool.hpp"

namespace mrmc::core {

UniversalHashFamily::UniversalHashFamily(std::size_t count, std::uint64_t m,
                                         std::uint64_t seed)
    : m_(m) {
  MRMC_REQUIRE(count >= 1, "need at least one hash function");
  MRMC_REQUIRE(m == 0 || m <= kPrime, "outer modulus must be < p");
  a_.reserve(count);
  b_.reserve(count);
  common::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    a_.push_back(1 + rng.bounded(kPrime - 1));  // a in [1, p)
    b_.push_back(rng.bounded(kPrime));          // b in [0, p)
  }
}

std::uint64_t UniversalHashFamily::hash(std::size_t i, std::uint64_t x) const noexcept {
  const std::uint64_t mod_p = kernels::detail::cw_hash(a_[i], b_[i], x);
  return m_ == 0 ? mod_p : mod_p % m_;
}

MinHasher::MinHasher(MinHashParams params)
    : params_(params), family_(params.num_hashes, params.modulus, params.seed) {
  MRMC_REQUIRE(params.kmer >= 1 && params.kmer <= bio::kMaxKmerK,
               "kmer size must be in [1, 31]");
}

void MinHasher::sketch_features_into(std::span<const std::uint64_t> features,
                                     std::span<std::uint64_t> out) const {
  MRMC_REQUIRE(out.size() == family_.size(), "output span must hold one slot per hash");
  kernels::min_sketch(family_.multipliers(), family_.offsets(),
                      family_.modulus(), features, out);
}

Sketch MinHasher::sketch_features(std::span<const std::uint64_t> features) const {
  Sketch sketch(family_.size());
  sketch_features_into(features, sketch);
  return sketch;
}

Sketch MinHasher::sketch(std::string_view seq) const {
  thread_local std::vector<std::uint64_t> features;
  bio::kmer_set_into(seq, {.k = params_.kmer, .canonical = params_.canonical},
                     features);
  return sketch_features(features);
}

std::vector<Sketch> MinHasher::sketch_all(
    std::span<const std::string_view> seqs, common::ThreadPool* pool) const {
  std::vector<Sketch> sketches(seqs.size());
  auto sketch_one = [&](std::size_t i) { sketches[i] = sketch(seqs[i]); };
  if (pool != nullptr && seqs.size() > 1) {
    pool->parallel_for(seqs.size(), sketch_one);
  } else {
    for (std::size_t i = 0; i < seqs.size(); ++i) sketch_one(i);
  }
  return sketches;
}

kernels::SketchMatrix MinHasher::sketch_matrix(
    std::span<const std::string_view> seqs, common::ThreadPool* pool) const {
  kernels::SketchMatrix matrix(seqs.size(), family_.size());
  auto sketch_row = [&](std::size_t i) {
    thread_local std::vector<std::uint64_t> features;
    bio::kmer_set_into(seqs[i],
                       {.k = params_.kmer, .canonical = params_.canonical},
                       features);
    kernels::min_sketch(family_.multipliers(), family_.offsets(),
                        family_.modulus(), features, matrix.row(i));
  };
  if (pool != nullptr && seqs.size() > 1) {
    pool->parallel_for(seqs.size(), sketch_row);
  } else {
    for (std::size_t i = 0; i < seqs.size(); ++i) sketch_row(i);
  }
  return matrix;
}

// ---------------------------------------------------------- SortedSketchStore

void SortedSketchStore::append(std::span<const std::uint64_t> sketch,
                               std::vector<std::uint64_t>& scratch) {
  scratch.assign(sketch.begin(), sketch.end());
  std::sort(scratch.begin(), scratch.end());
  scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
  values_.insert(values_.end(), scratch.begin(), scratch.end());
  offsets_.push_back(values_.size());
}

SortedSketchStore::SortedSketchStore(std::span<const Sketch> sketches) {
  offsets_.reserve(sketches.size() + 1);
  offsets_.push_back(0);
  std::vector<std::uint64_t> scratch;
  for (const auto& sketch : sketches) append(sketch, scratch);
}

SortedSketchStore::SortedSketchStore(const kernels::SketchMatrix& sketches) {
  offsets_.reserve(sketches.rows() + 1);
  offsets_.push_back(0);
  values_.reserve(sketches.rows() * sketches.cols());
  std::vector<std::uint64_t> scratch;
  for (std::size_t i = 0; i < sketches.rows(); ++i) {
    append(sketches.row(i), scratch);
  }
}

// ------------------------------------------------------------------ estimators

double component_match_similarity(const Sketch& a, const Sketch& b) noexcept {
  if (a.empty() || a.size() != b.size()) return 0.0;
  const std::size_t matches = kernels::count_equal(a, b);
  return static_cast<double>(matches) / static_cast<double>(a.size());
}

double set_based_similarity(const Sketch& a, const Sketch& b) {
  if (a.empty() || b.empty()) return 0.0;
  // Reused thread-local scratch: no allocation or copy churn per pair.
  thread_local std::vector<std::uint64_t> sa, sb;
  sa.assign(a.begin(), a.end());
  std::sort(sa.begin(), sa.end());
  sa.erase(std::unique(sa.begin(), sa.end()), sa.end());
  sb.assign(b.begin(), b.end());
  std::sort(sb.begin(), sb.end());
  sb.erase(std::unique(sb.begin(), sb.end()), sb.end());
  return bio::exact_jaccard(sa, sb);
}

double sketch_similarity(const Sketch& a, const Sketch& b,
                         SketchEstimator estimator) {
  MRMC_REQUIRE(a.size() == b.size(), "sketches must have equal length");
  switch (estimator) {
    case SketchEstimator::kComponentMatch:
      return component_match_similarity(a, b);
    case SketchEstimator::kSetBased:
      return set_based_similarity(a, b);
  }
  return 0.0;
}

}  // namespace mrmc::core

// End-to-end MrMC-MinH pipeline (Figure 1 of the paper): FASTA records ->
// integer encoding -> k-mer feature sets -> minwise sketches -> pair
// enumeration (core::candidates) -> greedy or agglomerative hierarchical
// clustering, with each stage runnable either locally or as a MapReduce job
// on the simulated cluster.  The job sequence depends on the candidate
// backend (PipelineParams::candidates):
//
//   "sketch"       map: read -> (read_index, sketch)        [always; map-heavy]
//   -- exact all-pairs backend (the paper's shape, the default) --
//   "similarity"   map: row  -> (row, sims[row+1..N))       [hierarchical only;
//                   the paper's row-wise partition of the matrix]
//   -- LSH-banded backend --
//   "candidates"   map: (read, sketch) -> per-band (bucket_key, read);
//                   GROUP on bucket; reduce emits candidate pairs
//   "verify"       map: (a, b) -> ((a, b), kernel-scored similarity)
//                   -> sparse similarity graph
//   -- either backend --
//   "…-cluster"    GROUP ALL -> single reducer runs Algorithm 1 (greedy,
//                   graph-aware under LSH) or the dendrogram build + θ-cut
//                   (Algorithm 3, steps 6-9)
//
// Simulated job timelines accumulate into PipelineResult::sim_total_s, the
// number the paper's Table III/V "Time" columns report.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bio/fasta.hpp"
#include "bio/fastq.hpp"
#include "core/candidates.hpp"
#include "core/greedy.hpp"
#include "core/hierarchical.hpp"
#include "mr/job.hpp"

namespace mrmc::core {

enum class Mode { kGreedy, kHierarchical };

[[nodiscard]] const char* mode_name(Mode mode) noexcept;

struct PipelineParams {
  MinHashParams minhash{};
  Mode mode = Mode::kHierarchical;
  double theta = 0.9;
  Linkage linkage = Linkage::kAverage;          ///< hierarchical only
  SketchEstimator estimator = SketchEstimator::kComponentMatch;
  SketchEstimator greedy_estimator = SketchEstimator::kSetBased;
  /// Pair-enumeration backend.  The exact default keeps the paper's job
  /// shapes (and bit-for-bit outputs); kLshBanded swaps in the
  /// candidates + verify jobs and sparse-graph clustering.
  candidates::Params candidates{};
};

struct ExecutionOptions {
  bool distributed = true;       ///< stage the pipeline as MapReduce jobs
  mr::ClusterConfig cluster{};
  /// Real execution threads.  0 = the lazily-created process-wide pool
  /// shared by all jobs (mr::runtime::shared_pool()); > 0 = a private pool.
  std::size_t threads = 0;
  /// Escape hatch: force a private (hardware-sized) pool even when
  /// `threads == 0`, e.g. to keep a latency-sensitive host isolated.
  bool isolated_pool = false;
  std::size_t records_per_split = 512;
  /// Node-failure schedule applied to every job in the pipeline (empty =
  /// fault-free).  The clustering output is byte-identical either way; only
  /// the simulated timelines pay for the lost work.
  mr::faults::FaultPlan fault_plan{};
};

struct PipelineResult {
  std::vector<int> labels;
  std::size_t num_clusters = 0;
  double wall_s = 0.0;       ///< real elapsed time of this process
  double sim_total_s = 0.0;  ///< simulated cluster time across all jobs
  mr::JobStats sketch_stats;
  mr::JobStats similarity_stats;  ///< hierarchical mode, exact backend only
  mr::JobStats candidate_stats;   ///< LSH backend only
  mr::JobStats verify_stats;      ///< LSH backend only
  mr::JobStats cluster_stats;
  std::size_t candidate_pairs = 0;  ///< scored pairs (LSH backend only)
};

/// Cluster reads end to end.
PipelineResult run_pipeline(std::span<const bio::FastaRecord> reads,
                            const PipelineParams& params,
                            const ExecutionOptions& exec = {});

/// Raw-sequencer entry point: quality-filter FASTQ reads (3'-trim + length +
/// mean-error filters), then cluster the survivors.  `result.labels` aligns
/// with the *returned* `kept` reads; `dropped` counts QC discards.
struct FastqPipelineResult {
  PipelineResult clustering;
  std::vector<bio::FastaRecord> kept;  ///< post-QC reads, label-aligned
  std::size_t dropped = 0;
};

FastqPipelineResult run_pipeline_fastq(std::span<const bio::FastqRecord> reads,
                                       const bio::QualityFilter& qc,
                                       const PipelineParams& params,
                                       const ExecutionOptions& exec = {});

/// Deterministic work models (simulated seconds on a reference node) used by
/// the pipeline's jobs and by the Figure-2 analytic scalability bench.
namespace cost {
/// Sketching one read of `length` bases with `num_hashes` hash functions.
double sketch_work(std::size_t length, std::size_t num_hashes) noexcept;
/// Comparing two sketches of `num_hashes` components.
double compare_work(std::size_t num_hashes) noexcept;
/// Building + cutting a dendrogram over n sequences.
double dendrogram_work(std::size_t n) noexcept;
/// Serialized bytes of one sketch.
double sketch_bytes(std::size_t num_hashes) noexcept;
}  // namespace cost

}  // namespace mrmc::core

// Resumable Algorithm 3: the Pig driver runs on the same mr::recovery
// StageDriver as core::run_pipeline, configured via MRMC_CHECKPOINT_DIR.
// A killed script resumes with completed steps served from checkpoint and
// byte-identical stored outputs.
#include "pig/pig.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>

#include "bio/fasta.hpp"
#include "mr/recovery.hpp"
#include "simdata/datasets.hpp"

namespace mrmc::pig {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(std::string name, const std::string& value)
      : name_(std::move(name)) {
    if (const char* old = std::getenv(name_.c_str())) old_ = old;
    ::setenv(name_.c_str(), value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (old_.has_value()) {
      ::setenv(name_.c_str(), old_->c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::optional<std::string> old_;
};

std::string fresh_dir(const std::string& tag) {
  static int serial = 0;
  const std::string dir = ::testing::TempDir() + "/mrmc_pig_resume_" + tag +
                          std::to_string(serial++);
  std::filesystem::remove_all(dir);
  return dir;
}

constexpr std::size_t kSteps = 8;  // 6 foreach + 2 group-all driver stages

struct Fixture {
  mr::SimDfs dfs;
  Algorithm3Params params;

  Fixture() : dfs({.nodes = 4, .block_size = 4096}) {
    const auto sample = simdata::build_whole_metagenome(
        simdata::whole_metagenome_spec("S8"), {.reads = 30, .seed = 5});
    dfs.write("/input.fa", bio::write_fasta_string(sample.reads));
    params.kmer = 5;
    params.num_hashes = 32;
    params.cutoff = 0.45;
  }

  Algorithm3Result run() {
    return run_algorithm3(dfs, "/input.fa", "/out/hier", "/out/greedy",
                          params, {.nodes = 4});
  }
};

TEST(PigResume, KilledScriptResumesWithByteIdenticalStores) {
  Fixture baseline_fixture;
  const Algorithm3Result baseline = baseline_fixture.run();
  const std::string hier_bytes = baseline_fixture.dfs.read("/out/hier");
  const std::string greedy_bytes = baseline_fixture.dfs.read("/out/greedy");
  EXPECT_EQ(baseline.jobs_run, kSteps);
  // Without MRMC_CHECKPOINT_DIR the driver still runs (and counts) every
  // stage — it just has nothing to hit or write.
  EXPECT_EQ(baseline.recovery.stages, kSteps);
  EXPECT_EQ(baseline.recovery.checkpoint_hits, 0u);
  EXPECT_EQ(baseline.recovery.checkpoint_writes, 0u);

  Fixture fixture;
  ScopedEnv ckpt("MRMC_CHECKPOINT_DIR", fresh_dir("kill"));
  {
    // Die right after the minwise-hash step (driver sequence 2) commits.
    ScopedEnv crash("MRMC_CRASH_AFTER_STAGE", "foreach-CalculateMinwiseHash");
    EXPECT_THROW(fixture.run(), mr::recovery::InjectedDriverCrash);
    EXPECT_FALSE(fixture.dfs.exists("/out/hier"));
  }

  const Algorithm3Result resumed = fixture.run();
  EXPECT_EQ(resumed.hierarchical, baseline.hierarchical);
  EXPECT_EQ(resumed.greedy, baseline.greedy);
  EXPECT_EQ(fixture.dfs.read("/out/hier"), hier_bytes);
  EXPECT_EQ(fixture.dfs.read("/out/greedy"), greedy_bytes);
  EXPECT_EQ(resumed.recovery.stages, kSteps);
  EXPECT_EQ(resumed.recovery.checkpoint_hits, 3u);
  EXPECT_EQ(resumed.recovery.checkpoint_misses, kSteps - 3);
  EXPECT_EQ(resumed.jobs_run, kSteps - 3);  // hit steps run no jobs
}

TEST(PigResume, FullyResumedScriptRunsNoJobsButStoresEverything) {
  Fixture fixture;
  ScopedEnv ckpt("MRMC_CHECKPOINT_DIR", fresh_dir("full"));
  const Algorithm3Result first = fixture.run();
  EXPECT_EQ(first.recovery.checkpoint_writes, kSteps);
  EXPECT_GT(first.sim_time_s, 0.0);
  const std::string hier_bytes = fixture.dfs.read("/out/hier");

  // Same DFS, warm directory: the twice-run "group-all" step resolves by
  // sequence number, every step hits, and the stores still materialize.
  const Algorithm3Result second = fixture.run();
  EXPECT_EQ(second.recovery.checkpoint_hits, kSteps);
  EXPECT_EQ(second.jobs_run, 0u);
  EXPECT_EQ(second.sim_time_s, 0.0);
  EXPECT_EQ(second.hierarchical, first.hierarchical);
  EXPECT_EQ(second.greedy, first.greedy);
  EXPECT_EQ(fixture.dfs.read("/out/hier"), hier_bytes);
}

TEST(PigResume, ChangedParamsIgnoreTheWarmDirectory) {
  Fixture fixture;
  ScopedEnv ckpt("MRMC_CHECKPOINT_DIR", fresh_dir("params"));
  (void)fixture.run();

  fixture.params.cutoff = 0.6;
  const Algorithm3Result rerun = fixture.run();
  EXPECT_EQ(rerun.recovery.checkpoint_hits, 0u);
  EXPECT_EQ(rerun.recovery.checkpoint_misses, kSteps);
  EXPECT_EQ(rerun.jobs_run, kSteps);
}

}  // namespace
}  // namespace mrmc::pig

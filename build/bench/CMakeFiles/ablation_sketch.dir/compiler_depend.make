# Empty compiler generated dependencies file for ablation_sketch.
# This may be replaced when dependencies are built.

# Empty dependencies file for env16s_binning.
# This may be replaced when dependencies are built.

// Google-benchmark microbenchmarks for the performance-critical kernels:
// k-mer extraction, universal hashing / sketching, sketch comparison,
// global alignment, similarity-matrix assembly, dendrogram construction,
// and MapReduce engine overhead.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bio/alignment.hpp"
#include "bio/kmer.hpp"
#include "common/prng.hpp"
#include "core/greedy.hpp"
#include "core/hierarchical.hpp"
#include "core/minhash.hpp"
#include "mr/job.hpp"
#include "simdata/genome.hpp"

namespace {

using namespace mrmc;

std::string random_seq(std::size_t length, std::uint64_t seed) {
  return simdata::random_genome("b", length, 0.5, seed).seq;
}

void BM_KmerExtraction(benchmark::State& state) {
  const auto seq = random_seq(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bio::extract_kmers(seq, {.k = 15}));
  }
  state.SetBytesProcessed(static_cast<long>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_KmerExtraction)->Arg(100)->Arg(1000)->Arg(10000);

void BM_KmerSetCanonical(benchmark::State& state) {
  const auto seq = random_seq(1000, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bio::kmer_set(seq, {.k = 5, .canonical = true}));
  }
}
BENCHMARK(BM_KmerSetCanonical);

void BM_MinHashSketch(benchmark::State& state) {
  const core::MinHasher hasher(
      {.kmer = 15, .num_hashes = static_cast<std::size_t>(state.range(0)), .seed = 3});
  const auto seq = random_seq(1000, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.sketch(seq));
  }
}
BENCHMARK(BM_MinHashSketch)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_SketchCompareComponent(benchmark::State& state) {
  const core::MinHasher hasher({.kmer = 15, .num_hashes = 100, .seed = 5});
  const auto a = hasher.sketch(random_seq(500, 6));
  const auto b = hasher.sketch(random_seq(500, 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::component_match_similarity(a, b));
  }
}
BENCHMARK(BM_SketchCompareComponent);

void BM_SketchCompareSetBased(benchmark::State& state) {
  const core::MinHasher hasher({.kmer = 15, .num_hashes = 100, .seed = 5});
  const auto a = hasher.sketch(random_seq(500, 6));
  const auto b = hasher.sketch(random_seq(500, 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::set_based_similarity(a, b));
  }
}
BENCHMARK(BM_SketchCompareSetBased);

void BM_GlobalAlignment(benchmark::State& state) {
  const auto a = random_seq(static_cast<std::size_t>(state.range(0)), 8);
  const auto b = random_seq(static_cast<std::size_t>(state.range(0)), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bio::global_identity(a, b));
  }
}
BENCHMARK(BM_GlobalAlignment)->Arg(60)->Arg(100)->Arg(300);

void BM_GlobalAlignmentBanded(benchmark::State& state) {
  const auto a = random_seq(300, 10);
  std::string b = a;
  b[10] = 'A';
  b[200] = 'C';
  for (auto _ : state) {
    benchmark::DoNotOptimize(bio::global_identity(a, b, {.band = 16}));
  }
}
BENCHMARK(BM_GlobalAlignmentBanded);

std::vector<core::Sketch> bench_sketches(std::size_t count) {
  common::Xoshiro256 rng(11);
  const core::MinHasher hasher({.kmer = 15, .num_hashes = 50, .seed = 12});
  std::vector<core::Sketch> sketches;
  sketches.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    sketches.push_back(hasher.sketch(random_seq(100, rng())));
  }
  return sketches;
}

void BM_SimilarityMatrix(benchmark::State& state) {
  const auto sketches = bench_sketches(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::pairwise_similarity_matrix(
        sketches, core::SketchEstimator::kComponentMatch, nullptr));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SimilarityMatrix)->Arg(100)->Arg(200)->Arg(400)->Complexity();

void BM_Agglomerate(benchmark::State& state) {
  const auto sketches = bench_sketches(static_cast<std::size_t>(state.range(0)));
  const auto matrix = core::pairwise_similarity_matrix(
      sketches, core::SketchEstimator::kComponentMatch, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::agglomerate(matrix, core::Linkage::kAverage));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Agglomerate)->Arg(100)->Arg(200)->Arg(400)->Complexity();

void BM_GreedyCluster(benchmark::State& state) {
  const auto sketches = bench_sketches(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::greedy_cluster(sketches, {.theta = 0.3}));
  }
}
BENCHMARK(BM_GreedyCluster)->Arg(100)->Arg(400);

void BM_MapReduceOverhead(benchmark::State& state) {
  // Fixed-size identity job: measures the engine's per-job overhead.
  using IdJob = mr::Job<int, int, int, std::pair<int, int>>;
  std::vector<int> input(1000);
  for (int i = 0; i < 1000; ++i) input[i] = i;
  for (auto _ : state) {
    mr::JobConfig config;
    config.threads = 1;
    IdJob job(
        config,
        [](const int& record, mr::Emitter<int, int>& emit) {
          emit.emit(record, record);
        },
        [](const int& key, std::vector<int>& values,
           std::vector<std::pair<int, int>>& out) {
          out.emplace_back(key, values.front());
        });
    benchmark::DoNotOptimize(job.run(input));
  }
}
BENCHMARK(BM_MapReduceOverhead);

}  // namespace

BENCHMARK_MAIN();

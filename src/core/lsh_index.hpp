// LSH banding index over minhash sketches — the scalability extension the
// paper points to for terabyte-scale data.  The greedy algorithm's O(N * C)
// representative scan becomes near-linear: sketches are split into `bands`
// of `rows` components; two sketches land in the same bucket of some band
// with probability 1 - (1 - J^rows)^bands, the classic S-curve that lets a
// threshold θ be targeted by choosing (bands, rows).
//
// greedy_cluster_indexed() is a drop-in for greedy_cluster() that consults
// the index for candidate representatives instead of scanning all of them;
// with a well-matched band shape it returns the same clustering orders of
// magnitude faster on large, diverse inputs (see bench/ablation_lsh_index).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/greedy.hpp"
#include "core/minhash.hpp"

namespace mrmc::core {

struct LshParams {
  std::size_t bands = 10;  ///< must divide the sketch length
  std::uint64_t seed = 0x5ca1ab1eULL;
};

/// Probability that two sketches with Jaccard similarity `jaccard` collide
/// in at least one band: 1 - (1 - J^rows)^bands.
double lsh_collision_probability(double jaccard, std::size_t bands,
                                 std::size_t rows) noexcept;

/// The similarity at which the S-curve crosses 1/2 — the index's effective
/// threshold: (1/bands)^(1/rows) approximately.
double lsh_threshold(std::size_t bands, std::size_t rows) noexcept;

/// Buckets sketch ids by banded hashes.
class LshIndex {
 public:
  LshIndex(std::size_t sketch_size, const LshParams& params);

  [[nodiscard]] std::size_t bands() const noexcept { return bands_; }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }

  /// Insert a sketch under `id`.
  void insert(int id, const Sketch& sketch);

  /// All ids sharing at least one band bucket with `sketch`, deduplicated,
  /// in insertion order.
  [[nodiscard]] std::vector<int> candidates(const Sketch& sketch) const;

  [[nodiscard]] std::size_t size() const noexcept { return inserted_; }

 private:
  [[nodiscard]] std::uint64_t bucket_key(const Sketch& sketch,
                                         std::size_t band) const;

  std::size_t bands_;
  std::size_t rows_;
  std::uint64_t seed_;
  std::size_t inserted_ = 0;
  std::vector<std::unordered_map<std::uint64_t, std::vector<int>>> buckets_;
};

/// Algorithm 1 with LSH candidate pruning: identical semantics to
/// greedy_cluster when every qualifying representative collides in some
/// band (guaranteed-probabilistically by the S-curve; exact agreement is
/// checked in tests for well-separated data).
GreedyResult greedy_cluster_indexed(std::span<const Sketch> sketches,
                                    const GreedyParams& params,
                                    const LshParams& lsh = {});

}  // namespace mrmc::core

// Table III reproduction — clustering performance on simulated (S1-S14) and
// real (R1) whole-metagenome reads: MrMC-MinH^h vs MrMC-MinH^g vs
// MetaCluster, reporting #Cluster, W.Acc, W.Sim and Time.  Also regenerates
// the Table II sample registry.
//
// Paper parameters: k=5, 100 hash functions, 8 EMR nodes.  Samples are
// synthesized at --scale of the paper's read counts (DESIGN.md §2).
//
//   ./table3_whole_metagenome [--samples=S1,S2] [--scale=0.02] [--reads=N]
//       [--theta-h=0.50] [--theta-g=0.32] [--kmer=5] [--hashes=100]
//       [--nodes=8] [--seed=42]
//       [--trace=t3.json] [--metrics] [--report[=t3.html]]  # obs outputs
#include <iostream>
#include <sstream>

#include "bench_util.hpp"

namespace {

using namespace mrmc;

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream stream(text);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

void print_table2(const std::vector<simdata::WholeMetagenomeSpec>& specs) {
  common::TextTable table({"SID", "Species", "Ratio", "Taxonomic Difference",
                           "# Cluster", "# Reads"});
  for (const auto& spec : specs) {
    std::string species, ratio;
    for (std::size_t i = 0; i < spec.species.size(); ++i) {
      if (i) {
        species += ", ";
        ratio += ":";
      }
      species += spec.species[i].name + " [" +
                 common::fmt_f(spec.species[i].gc, 2) + "]";
      ratio += std::to_string(spec.species[i].ratio);
    }
    table.add_row({spec.sid, species, ratio, spec.taxonomic_difference,
                   spec.ground_truth_clusters < 0
                       ? "-"
                       : std::to_string(spec.ground_truth_clusters),
                   std::to_string(spec.paper_reads)});
  }
  std::cout << "Table II — whole-metagenome sample registry\n";
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  bench::apply_obs_flags(flags);
  const double scale = flags.real("scale", 0.02);
  const std::size_t fixed_reads = flags.num("reads", 0);
  const double theta_h = flags.real("theta-h", 0.50);
  const double theta_g = flags.real("theta-g", 0.32);
  const int kmer = static_cast<int>(flags.num("kmer", 5));
  const std::size_t hashes = flags.num("hashes", 100);
  const std::size_t nodes = flags.num("nodes", 8);
  const std::uint64_t seed = flags.num("seed", 42);

  std::vector<simdata::WholeMetagenomeSpec> specs;
  if (flags.flag("samples")) {
    for (const auto& sid : split_csv(flags.str("samples", ""))) {
      specs.push_back(simdata::whole_metagenome_spec(sid));
    }
  } else {
    specs = simdata::whole_metagenome_registry();
  }
  print_table2(specs);

  common::TextTable table({"SID", "Method", "# Cluster", "W.Acc", "W.Sim",
                           "Time", "SimTime"});
  for (const auto& spec : specs) {
    simdata::WholeMetagenomeOptions options;
    options.scale = scale;
    options.reads = fixed_reads;
    options.seed = seed;
    const auto sample = simdata::build_whole_metagenome(spec, options);
    const std::size_t min_size =
        bench::scaled_min_cluster_size(sample.size(), spec.paper_reads);

    std::vector<bench::MethodResult> results;
    results.push_back(bench::run_mrmc(sample, core::Mode::kHierarchical, kmer,
                                      hashes, theta_h, nodes, seed));
    results.push_back(bench::run_mrmc(sample, core::Mode::kGreedy, kmer, hashes,
                                      theta_g, nodes, seed));
    {
      common::Stopwatch watch;
      // word_size 3 and a loose merge threshold model MetaCluster's
      // published resolution on short noisy reads (it was designed for
      // contigs; the paper shows it slightly below MrMC-MinH^h).
      auto metacluster = baselines::metacluster_cluster(
          sample.reads, {.word_size = 3,
                         .max_group = std::max<std::size_t>(
                             16, sample.size() / 24),
                         .merge_distance = 0.10, .kmeans_rounds = 30, .seed = seed});
      auto wrapped = bench::wrap_baseline("MetaCluster", std::move(metacluster));
      wrapped.wall_s = watch.seconds();
      results.push_back(std::move(wrapped));
    }

    for (const auto& result : results) {
      const auto eval = bench::evaluate(result, sample, min_size);
      table.add_row({spec.sid, result.method, std::to_string(eval.clusters),
                     eval.wacc < 0 ? "-" : common::fmt_pct(eval.wacc),
                     common::fmt_pct(eval.wsim),
                     common::format_duration(result.wall_s),
                     result.sim_s < 0 ? "-" : common::format_duration(result.sim_s)});
    }
    std::cerr << "done " << spec.sid << " (" << sample.size() << " reads, "
              << "min cluster size " << min_size << ")\n";
  }

  std::cout << "Table III — clustering performance on whole-metagenome reads\n"
            << "(k=" << kmer << ", n=" << hashes << " hashes, theta_h=" << theta_h
            << ", theta_g=" << theta_g << ", " << nodes
            << " simulated nodes; Time = this process, SimTime = simulated "
               "cluster)\n";
  table.print(std::cout);
  bench::finish_obs(flags);
  return 0;
}

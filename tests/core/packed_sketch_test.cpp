// b-bit packed sketches: the packed count_equal kernel, PackedSketchMatrix,
// the C-MinHash sketch kernel, and the end-to-end quality floor of b-bit
// truncation (candidate recall on Table-III-style samples).
//
// Same contract as kernels_test.cpp: scalar and AVX2 paths must be
// *bit-identical*, and packed counts must equal the unpacked counts over the
// same truncated values for every supported width.

#include "core/kernels.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "core/minhash.hpp"
#include "eval/candidate_recall.hpp"
#include "simdata/datasets.hpp"

namespace mrmc::core {
namespace {

using kernels::Backend;

bool avx2_available() { return kernels::backend_available(Backend::kAvx2); }

constexpr std::size_t kPackWidths[] = {1, 2, 4, 8, 16, 32, 64};

std::vector<std::uint64_t> random_values(common::Xoshiro256& rng,
                                         std::size_t count,
                                         std::uint64_t mask) {
  std::vector<std::uint64_t> values(count);
  for (auto& v : values) v = rng() & mask;
  return values;
}

// ------------------------------------------------------- count_equal_packed

TEST(CountEqualPacked, MatchesUnpackedCountsAtEveryWidthAndTail) {
  common::Xoshiro256 rng(7);
  // Lengths straddle the AVX2 4-word chunking and SWAR word boundaries.
  for (const std::size_t bits : kPackWidths) {
    const std::uint64_t mask = sketch_bits_mask(bits);
    for (const std::size_t cols :
         {std::size_t{1}, std::size_t{7}, std::size_t{64}, std::size_t{100},
          std::size_t{257}}) {
      auto a = random_values(rng, cols, mask);
      auto b = random_values(rng, cols, mask);
      // Force a healthy number of equal lanes (narrow widths already
      // collide; make wide widths collide too).
      for (std::size_t i = 0; i < cols; i += 3) b[i] = a[i];

      const std::size_t expected = kernels::count_equal(a, b, Backend::kScalar);

      kernels::SketchMatrix matrix(2, cols);
      std::copy(a.begin(), a.end(), matrix.row(0).begin());
      std::copy(b.begin(), b.end(), matrix.row(1).begin());
      const auto packed = kernels::PackedSketchMatrix::pack(matrix, bits);

      EXPECT_EQ(kernels::count_equal_packed(packed.row(0), packed.row(1), cols,
                                            bits, Backend::kScalar),
                expected)
          << "scalar bits=" << bits << " cols=" << cols;
      if (avx2_available()) {
        EXPECT_EQ(kernels::count_equal_packed(packed.row(0), packed.row(1),
                                              cols, bits, Backend::kAvx2),
                  expected)
            << "avx2 bits=" << bits << " cols=" << cols;
      }
    }
  }
}

TEST(CountEqualPacked, PadLanesNeverCount) {
  // cols = 3 at 8 bits leaves 5 pad lanes per word; identical pads must not
  // inflate the match count past cols.
  kernels::SketchMatrix matrix(2, 3);
  matrix.row(0)[0] = 1;
  matrix.row(0)[1] = 2;
  matrix.row(0)[2] = 3;
  matrix.row(1)[0] = 1;
  matrix.row(1)[1] = 9;
  matrix.row(1)[2] = 3;
  const auto packed = kernels::PackedSketchMatrix::pack(matrix, 8);
  EXPECT_EQ(packed.count_equal_rows(0, 1, Backend::kScalar), 2u);
  if (avx2_available()) {
    EXPECT_EQ(packed.count_equal_rows(0, 1, Backend::kAvx2), 2u);
  }
}

TEST(PackedSketchMatrix, PackRoundTripsTruncatedValues) {
  common::Xoshiro256 rng(11);
  kernels::SketchMatrix matrix(5, 37);
  for (std::size_t i = 0; i < 5; ++i) {
    for (auto& v : matrix.row(i)) v = rng();
  }
  for (const std::size_t bits : kPackWidths) {
    const std::uint64_t mask = sketch_bits_mask(bits);
    const auto packed = kernels::PackedSketchMatrix::pack(matrix, bits);
    EXPECT_EQ(packed.rows(), 5u);
    EXPECT_EQ(packed.cols(), 37u);
    EXPECT_EQ(packed.bits(), bits);
    for (std::size_t i = 0; i < 5; ++i) {
      for (std::size_t j = 0; j < 37; ++j) {
        EXPECT_EQ(packed.get(i, j), matrix.row(i)[j] & mask)
            << "bits=" << bits;
      }
    }
  }
}

TEST(PackedSketchMatrix, SixtyFourBitsIsLosslessIdentity) {
  common::Xoshiro256 rng(13);
  kernels::SketchMatrix matrix(3, 64);
  for (std::size_t i = 0; i < 3; ++i) {
    for (auto& v : matrix.row(i)) v = rng();
  }
  const auto packed = kernels::PackedSketchMatrix::pack(matrix, 64);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 64; ++j) {
      EXPECT_EQ(packed.get(i, j), matrix.row(i)[j]);
    }
    for (std::size_t j = i + 1; j < 3; ++j) {
      EXPECT_EQ(packed.count_equal_rows(i, j),
                kernels::count_equal(matrix.row(i), matrix.row(j)));
    }
  }
}

TEST(PackedSketchMatrix, RejectsInvalidWidth) {
  kernels::SketchMatrix matrix(1, 4);
  EXPECT_THROW(kernels::PackedSketchMatrix::pack(matrix, 0), common::Error);
  EXPECT_THROW(kernels::PackedSketchMatrix::pack(matrix, 3), common::Error);
  EXPECT_THROW(kernels::PackedSketchMatrix::pack(matrix, 33), common::Error);
}

TEST(MaskComponents, TruncatesEveryValueInPlace) {
  common::Xoshiro256 rng(17);
  kernels::SketchMatrix matrix(4, 19);
  kernels::SketchMatrix reference(4, 19);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 19; ++j) {
      const std::uint64_t v = rng();
      matrix.row(i)[j] = v;
      reference.row(i)[j] = v;
    }
  }
  kernels::mask_components(matrix, sketch_bits_mask(8));
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 19; ++j) {
      EXPECT_EQ(matrix.row(i)[j], reference.row(i)[j] & 0xFF);
    }
  }
}

// ------------------------------------------------------------- cmin_sketch

TEST(CMinSketch, ScalarMatchesFamilyReference) {
  common::Xoshiro256 rng(23);
  for (const std::uint64_t modulus : {std::uint64_t{0}, std::uint64_t{1} << 20,
                                      std::uint64_t{1000003}}) {
    const CMinHashFamily family(33, modulus, 42);
    const auto features = random_values(rng, 101, ~std::uint64_t{0});
    std::vector<std::uint64_t> out(33);
    kernels::cmin_sketch(family.multiplier(), family.offsets(),
                         family.modulus(), features, out, Backend::kScalar);
    for (std::size_t k = 0; k < 33; ++k) {
      std::uint64_t expected = ~std::uint64_t{0};
      for (const std::uint64_t x : features) {
        expected = std::min(expected, family.hash(k, x));
      }
      EXPECT_EQ(out[k], expected) << "modulus=" << modulus << " k=" << k;
    }
  }
}

TEST(CMinSketch, Avx2BitIdenticalToScalar) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 not available";
  common::Xoshiro256 rng(29);
  // Hash counts straddle the 4-lane chunking; pow2 and 0 moduli take the
  // vector path, the prime modulus falls back to scalar inside dispatch.
  for (const std::size_t count : {1u, 4u, 5u, 64u, 67u}) {
    for (const std::uint64_t modulus :
         {std::uint64_t{0}, std::uint64_t{1} << 16, std::uint64_t{1000003}}) {
      const CMinHashFamily family(count, modulus, 7 + count);
      const auto features = random_values(rng, 53, ~std::uint64_t{0});
      std::vector<std::uint64_t> scalar_out(count);
      std::vector<std::uint64_t> avx2_out(count);
      kernels::cmin_sketch(family.multiplier(), family.offsets(),
                           family.modulus(), features, scalar_out,
                           Backend::kScalar);
      kernels::cmin_sketch(family.multiplier(), family.offsets(),
                           family.modulus(), features, avx2_out,
                           Backend::kAvx2);
      EXPECT_EQ(scalar_out, avx2_out)
          << "count=" << count << " modulus=" << modulus;
    }
  }
}

TEST(CMinSketch, EmptyFeatureSetYieldsSentinels) {
  const CMinHashFamily family(8, 0, 1);
  std::vector<std::uint64_t> out(8, 0);
  kernels::cmin_sketch(family.multiplier(), family.offsets(), family.modulus(),
                       {}, out);
  for (const std::uint64_t v : out) {
    EXPECT_EQ(v, kernels::kEmptyFeatureMin);
  }
}

// ----------------------------------------------- b-bit recall quality floor

TEST(BBitQuality, CandidateRecallAboveFloorAtEightBits) {
  // ISSUE acceptance: truncating sketches to b = 8 with the ORIGINAL θ
  // driving LSH band-shape selection must keep candidate recall ≥ 0.95 on a
  // Table-III-style staggered sample.
  const auto data = simdata::build_whole_metagenome(
      simdata::whole_metagenome_spec("S8"), {.reads = 150, .seed = 5});
  std::vector<std::string_view> seqs;
  seqs.reserve(data.reads.size());
  for (const auto& read : data.reads) seqs.emplace_back(read.seq);
  const MinHasher hasher({.kmer = 5, .num_hashes = 64, .canonical = true,
                          .seed = 1});
  kernels::SketchMatrix sketches = hasher.sketch_matrix(seqs);
  kernels::mask_components(sketches, sketch_bits_mask(8));

  const auto report = eval::candidate_recall(
      sketches, 0.9, {.backend = candidates::Backend::kLshBanded},
      SketchEstimator::kComponentMatch);
  EXPECT_GE(report.recall, 0.95)
      << "true=" << report.true_pairs << " recovered=" << report.recovered_pairs;
}

}  // namespace
}  // namespace mrmc::core

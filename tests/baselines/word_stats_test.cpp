#include "baselines/word_stats.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"

namespace mrmc::baselines {
namespace {

TEST(WordCounts, CountsWithMultiplicity) {
  // "AAAA" has three overlapping "AA" words.
  const auto counts = word_counts("AAAA", 2);
  EXPECT_EQ(counts.size(), 16u);
  EXPECT_EQ(counts[0], 3u);  // AA = 0
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 3);
}

TEST(WordCounts, RejectsLargeK) {
  EXPECT_THROW(word_counts("ACGT", 9), common::InvalidArgument);
  EXPECT_THROW(word_counts("ACGT", 0), common::InvalidArgument);
}

TEST(CommonWords, MinOfCounts) {
  const auto a = word_counts("AAAA", 2);   // AA x3
  const auto b = word_counts("AAA", 2);    // AA x2
  EXPECT_EQ(common_words(a, b), 2u);
  const auto c = word_counts("TTTT", 2);
  EXPECT_EQ(common_words(a, c), 0u);
}

TEST(KmerDistance, IdenticalIsZeroDisjointIsOne) {
  const auto a = word_counts("ACGTACGTAC", 3);
  EXPECT_DOUBLE_EQ(kmer_distance(a, 10, a, 10, 3), 0.0);
  const auto b = word_counts("GGGGGGGGGG", 3);
  const auto c = word_counts("ACACACACAC", 3);
  EXPECT_DOUBLE_EQ(kmer_distance(b, 10, c, 10, 3), 1.0);
}

TEST(KmerDistance, ShortSequencesAreFar) {
  const auto a = word_counts("AC", 3);
  EXPECT_DOUBLE_EQ(kmer_distance(a, 2, a, 2, 3), 1.0);
}

TEST(KmerDistance, InUnitInterval) {
  const auto a = word_counts("ACGTTGCAACGGT", 4);
  const auto b = word_counts("ACGTTGCATCGGA", 4);
  const double d = kmer_distance(a, 13, b, 13, 4);
  EXPECT_GE(d, 0.0);
  EXPECT_LE(d, 1.0);
}

TEST(WordFrequencies, SumToOne) {
  const auto freqs = word_frequencies("ACGTACGGTTAC", 2);
  EXPECT_NEAR(std::accumulate(freqs.begin(), freqs.end(), 0.0), 1.0, 1e-12);
}

TEST(WordFrequencies, EmptySequenceAllZero) {
  const auto freqs = word_frequencies("A", 2);  // shorter than k
  EXPECT_DOUBLE_EQ(std::accumulate(freqs.begin(), freqs.end(), 0.0), 0.0);
}

TEST(SpearmanDistance, IdenticalVectorsAreZero) {
  const std::vector<double> v{0.1, 0.4, 0.2, 0.3};
  EXPECT_NEAR(spearman_distance(v, v), 0.0, 1e-12);
}

TEST(SpearmanDistance, ReversedRanksAreOne) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{4, 3, 2, 1};
  EXPECT_NEAR(spearman_distance(a, b), 1.0, 1e-12);
}

TEST(SpearmanDistance, SymmetricAndBounded) {
  const std::vector<double> a{0.5, 0.1, 0.9, 0.2, 0.7};
  const std::vector<double> b{0.3, 0.8, 0.1, 0.6, 0.4};
  EXPECT_DOUBLE_EQ(spearman_distance(a, b), spearman_distance(b, a));
  EXPECT_GE(spearman_distance(a, b), 0.0);
  EXPECT_LE(spearman_distance(a, b), 1.0);
}

TEST(SpearmanDistance, HandlesTiesViaMidranks) {
  const std::vector<double> a{1, 1, 2, 2};
  const std::vector<double> b{2, 2, 1, 1};
  EXPECT_NEAR(spearman_distance(a, b), 1.0, 1e-12);
  // Constant vector: defined as distance 0 (no ordering information).
  const std::vector<double> c{3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(spearman_distance(a, c), 0.0);
}

TEST(SpearmanDistance, RejectsMismatchedLengths) {
  EXPECT_THROW(spearman_distance(std::vector<double>{1.0},
                                 std::vector<double>{1.0, 2.0}),
               common::InvalidArgument);
}

TEST(RequiredCommonWords, TightensWithIdentity) {
  const std::size_t loose = required_common_words(100, 100, 5, 0.80);
  const std::size_t strict = required_common_words(100, 100, 5, 0.99);
  EXPECT_GT(strict, loose);
  EXPECT_GE(loose, 1u);
}

TEST(RequiredCommonWords, PerfectIdentityNeedsAllWords) {
  EXPECT_EQ(required_common_words(100, 100, 5, 1.0), 96u);
}

TEST(RequiredCommonWords, NeverBelowOne) {
  EXPECT_EQ(required_common_words(100, 100, 5, 0.1), 1u);
  EXPECT_EQ(required_common_words(3, 100, 5, 0.9), 1u);
}

}  // namespace
}  // namespace mrmc::baselines

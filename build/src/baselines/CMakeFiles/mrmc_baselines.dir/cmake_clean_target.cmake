file(REMOVE_RECURSE
  "libmrmc_baselines.a"
)

# Empty dependencies file for mrmc_simdata.
# This may be replaced when dependencies are built.

# Empty dependencies file for ablation_kmer.
# This may be replaced when dependencies are built.

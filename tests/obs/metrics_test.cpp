#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

namespace mrmc::obs {
namespace {

TEST(Counter, AccumulatesAndResets) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.add(5);
  counter.inc();
  EXPECT_EQ(counter.value(), 6);
  counter.reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(Counter, ConcurrentAddsAreLossless) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kIncrements);
}

TEST(Gauge, HoldsLastValue) {
  Gauge gauge;
  gauge.set(2.5);
  gauge.set(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), -1.0);
  gauge.reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(Histogram, BucketsAreInclusiveUpperBounds) {
  Histogram hist({1.0, 10.0, 100.0});
  hist.observe(0.5);    // <= 1
  hist.observe(1.0);    // <= 1 (inclusive)
  hist.observe(5.0);    // <= 10
  hist.observe(1000.0); // overflow
  const HistogramSnapshot snap = hist.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2);
  EXPECT_EQ(snap.counts[1], 1);
  EXPECT_EQ(snap.counts[2], 0);
  EXPECT_EQ(snap.counts[3], 1);
  EXPECT_EQ(snap.count, 4);
  EXPECT_DOUBLE_EQ(snap.sum, 1006.5);
  EXPECT_DOUBLE_EQ(snap.mean(), 1006.5 / 4.0);
}

TEST(Histogram, ConcurrentObservesAreLossless) {
  Histogram hist({0.5});
  constexpr int kThreads = 8;
  constexpr int kObservations = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kObservations; ++i) {
        hist.observe(t % 2 == 0 ? 0.25 : 0.75);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, kThreads * kObservations);
  EXPECT_EQ(snap.counts[0], kThreads / 2 * kObservations);
  EXPECT_EQ(snap.counts[1], kThreads / 2 * kObservations);
}

TEST(Histogram, RejectsUnsortedBounds) {
  EXPECT_ANY_THROW(Histogram({2.0, 1.0}));
}

TEST(Histogram, PercentilesInterpolateWithinTheTargetBucket) {
  Histogram hist({10.0, 20.0, 50.0});
  // 10 observations land in (10, 20]: rank r maps to 10 + (r/10) x 10.
  for (int i = 0; i < 10; ++i) hist.observe(15.0);
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_DOUBLE_EQ(snap.percentile(0.50), 15.0);
  EXPECT_DOUBLE_EQ(snap.percentile(0.95), 19.5);
  EXPECT_DOUBLE_EQ(snap.percentile(0.99), 19.9);
  EXPECT_DOUBLE_EQ(snap.percentile(1.0), 20.0);
}

TEST(Histogram, PercentileSpansBucketsAndClampsOverflow) {
  Histogram hist({1.0, 2.0, 4.0});
  hist.observe(0.5);  // bucket (0, 1]
  hist.observe(1.5);  // bucket (1, 2]
  hist.observe(3.0);  // bucket (2, 4]
  hist.observe(9.0);  // overflow
  const HistogramSnapshot snap = hist.snapshot();
  // rank 2 of 4 falls at the top of the second bucket.
  EXPECT_DOUBLE_EQ(snap.percentile(0.50), 2.0);
  // The first bucket interpolates up from an implicit lower bound of 0.
  EXPECT_DOUBLE_EQ(snap.percentile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(snap.percentile(0.125), 0.5);
  // Overflow ranks clamp to the last finite bound rather than inventing
  // a value beyond what the buckets can support.
  EXPECT_DOUBLE_EQ(snap.percentile(0.99), 4.0);
}

TEST(Histogram, PercentileOfEmptyHistogramIsZero) {
  const Histogram hist({1.0, 2.0});
  EXPECT_DOUBLE_EQ(hist.snapshot().percentile(0.99), 0.0);
}

TEST(Histogram, SingleSampleIsItsOwnPercentile) {
  // One observation has no spread: every quantile must be the sample
  // itself, not a value interpolated inside the sample's bucket.
  Histogram hist({10.0, 20.0, 50.0});
  hist.observe(13.25);
  const HistogramSnapshot snap = hist.snapshot();
  for (const double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(snap.percentile(q), 13.25) << "q=" << q;
  }
}

TEST(Histogram, SingleOverflowSampleIsItsOwnPercentile) {
  Histogram hist({1.0, 2.0});
  hist.observe(7.5);  // beyond the last finite bound
  EXPECT_DOUBLE_EQ(hist.snapshot().percentile(0.5), 7.5);
  EXPECT_DOUBLE_EQ(hist.snapshot().percentile(0.99), 7.5);
}

TEST(Histogram, PercentilesAppearInTextAndJsonExports) {
  Registry registry;
  auto& hist = registry.histogram("latency", std::vector<double>{1.0, 2.0});
  for (int i = 0; i < 4; ++i) hist.observe(0.5);
  const MetricsSnapshot snap = registry.snapshot();
  const std::string text = snap.to_text();
  EXPECT_NE(text.find("p50="), std::string::npos);
  EXPECT_NE(text.find("p95="), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"p50\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"p99\": "), std::string::npos);
}

TEST(Registry, SameNameReturnsSameMetric) {
  Registry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(registry.counter("x").value(), 3);
  Histogram& h1 = registry.histogram("h", std::vector<double>{1.0, 2.0});
  Histogram& h2 = registry.histogram("h");
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);  // first registration fixes the bounds
}

TEST(Registry, SnapshotCoversAllKindsAndResetZeroes) {
  Registry registry;
  registry.counter("jobs").add(2);
  registry.gauge("load").set(0.75);
  registry.histogram("latency", std::vector<double>{1.0}).observe(0.5);

  MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("jobs"), 2);
  EXPECT_DOUBLE_EQ(snap.gauges.at("load"), 0.75);
  EXPECT_EQ(snap.histograms.at("latency").count, 1);

  const std::string text = snap.to_text();
  EXPECT_NE(text.find("jobs 2"), std::string::npos);
  EXPECT_NE(text.find("load 0.75"), std::string::npos);
  EXPECT_NE(text.find("latency{le=1} 1"), std::string::npos);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"jobs\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"counts\": [1, 0]"), std::string::npos);

  registry.reset();
  snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("jobs"), 0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("load"), 0.0);
  EXPECT_EQ(snap.histograms.at("latency").count, 0);
}

TEST(Registry, GlobalIsAProcessSingleton) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

TEST(Prometheus, ExpositionSanitizesNamesAndTypesEveryMetric) {
  Registry registry;
  registry.counter("mr.shuffle_bytes").add(7);
  registry.gauge("pool.queue-depth").set(2.5);
  registry.histogram("phase.map_s").observe(0.25);
  registry.histogram("phase.map_s").observe(0.75);
  const std::string prom = registry.snapshot().to_prometheus();

  // Dots and dashes are illegal in Prometheus names: sanitized + prefixed.
  EXPECT_NE(prom.find("# TYPE mrmc_mr_shuffle_bytes counter\n"
                      "mrmc_mr_shuffle_bytes 7\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE mrmc_pool_queue_depth gauge\n"
                      "mrmc_pool_queue_depth 2.5\n"),
            std::string::npos);
  // Histograms export as label-free summaries: _count and _sum only.
  EXPECT_NE(prom.find("# TYPE mrmc_phase_map_s summary\n"), std::string::npos);
  EXPECT_NE(prom.find("mrmc_phase_map_s_count 2\n"), std::string::npos);
  EXPECT_NE(prom.find("mrmc_phase_map_s_sum 1\n"), std::string::npos);
  EXPECT_EQ(prom.find("{"), std::string::npos);  // label-free
}

#if defined(__unix__) || defined(__APPLE__)
TEST(Prometheus, MetricsEnvVarWithPromPrefixSelectsTheExposition) {
  const std::string path = ::testing::TempDir() + "/mrmc_metrics.prom";
  Registry::global().counter("prom.env_test").add(3);
  ASSERT_EQ(setenv("MRMC_METRICS", ("prom:" + path).c_str(), 1), 0);
  EXPECT_TRUE(Registry::write_global_if_configured());
  unsetenv("MRMC_METRICS");

  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("# TYPE mrmc_prom_env_test counter"),
            std::string::npos);
  EXPECT_NE(text.str().find("mrmc_prom_env_test 3"), std::string::npos);
  Registry::global().reset();
}

TEST(Prometheus, EmptyPromPathIsRejected) {
  ASSERT_EQ(setenv("MRMC_METRICS", "prom:", 1), 0);
  EXPECT_FALSE(Registry::write_global_if_configured());
  unsetenv("MRMC_METRICS");
}
#endif

}  // namespace
}  // namespace mrmc::obs

# Empty compiler generated dependencies file for table4_16s_simulated.
# This may be replaced when dependencies are built.

// mr::recovery — durable stage checkpoints and a restartable stage driver.
//
// PR 4 made *task*-level failure survivable (kill-and-requeue, lost-output
// re-execution); this layer does the same for the *driver*.  A pipeline
// driver (core::run_pipeline, pig's algorithm3, or a future iterative
// connected-components driver) wraps each stage in
// StageDriver::run_stage(stage, compute, encode, decode):
//
//   * Checkpointing.  With a checkpoint directory configured
//     (ExecutionOptions::checkpoint_dir or MRMC_CHECKPOINT_DIR), each
//     completed stage's result is serialized and committed via
//     write-temp-then-atomic-rename, keyed by an FNV-1a fingerprint chained
//     over (pipeline params fingerprint, input fingerprint, every upstream
//     payload checksum, stage name, stage sequence).  A resumed driver
//     re-derives the same chain, finds the completed stages' files, and
//     serves them as hits — skipping the MapReduce jobs entirely — while any
//     param change, input change, or truncated/corrupt/stale file breaks the
//     key or the checksum and falls back to recompute.  Because every stage
//     is deterministic, recompute regenerates byte-identical payloads, so
//     downstream checkpoints remain valid after an upstream invalidation.
//
//   * Retry with backoff.  Each stage's compute runs under a deterministic
//     retry loop: up to RetryPolicy::max_job_attempts attempts, exponential
//     backoff (base * 2^(attempt-1), capped) scaled by seeded jitter in
//     [0.5, 1.0), and an optional per-attempt wall deadline (job_timeout_s).
//     A timed-out attempt counts as failed even though the computation
//     returned — the driver-side approximation of a job tracker killing an
//     overdue job.  Exhaustion throws RetryExhausted carrying the full
//     attempt history (outcome, error, wall seconds, backoff) instead of a
//     raw error.
//
//   * Degradation hooks.  record_lsh_fallback() lets a driver note that it
//     replaced a repeatedly-failing LshBanded candidates stage with the
//     ExactAllPairs path; park() aborts a driver whose cluster degraded
//     below one schedulable node with DriverParked — the checkpoint
//     directory holds every completed stage, so a later run resumes where
//     it parked.
//
// Everything is observable: checkpoint hits/misses/writes land on the trace
// as "stage_checkpoint" instants, feed the pipeline Collector, and bump
// recovery.* metrics; the pipeline doctor renders them in a "recovery"
// section byte-identical whether built in-process or from the trace.
//
// Deterministic test hooks: MRMC_CRASH_AFTER_STAGE=<stage> throws
// InjectedDriverCrash after <stage>'s checkpoint commits (the chaos tests'
// kill point), and MRMC_FAIL_STAGE=<stage>[:<count>] makes the first
// <count> attempts of <stage> fail before compute runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace mrmc::mr::recovery {

// ----------------------------------------------------------- retry policy

/// One attempt of a stage's compute, as recorded by the retry loop.
struct AttemptRecord {
  int attempt = 0;        ///< 1-based
  std::string outcome;    ///< "failed" (threw) or "timeout" (deadline blown)
  std::string error;      ///< what() of the failure / deadline description
  double wall_s = 0.0;    ///< real seconds the attempt ran
  double backoff_s = 0.0; ///< delay slept before the next attempt (0 on last)
};

/// Thrown when a stage fails RetryPolicy::max_job_attempts times.
class RetryExhausted : public common::Error {
 public:
  RetryExhausted(std::string stage, std::vector<AttemptRecord> history);

  [[nodiscard]] const std::string& stage() const noexcept { return stage_; }
  [[nodiscard]] const std::vector<AttemptRecord>& history() const noexcept {
    return history_;
  }

 private:
  std::string stage_;
  std::vector<AttemptRecord> history_;
};

/// Thrown by the MRMC_CRASH_AFTER_STAGE kill hook.  Deliberately NOT
/// retryable: the retry loop rethrows it so a "crashed" driver dies exactly
/// once, after the named stage's checkpoint was committed.
class InjectedDriverCrash : public common::Error {
 public:
  using Error::Error;
};

/// Thrown by StageDriver::park(): the cluster degraded below one
/// schedulable node and the driver chose to stop where its checkpoints can
/// resume it rather than fail the whole run.
class DriverParked : public common::Error {
 public:
  using Error::Error;
};

/// Driver-level retry policy, mirrored from JobConfig's
/// {max_job_attempts, job_timeout_s, backoff_base_s, backoff_cap_s} knobs.
struct RetryPolicy {
  int max_job_attempts = 1;     ///< >= 1; 1 = no retry
  double job_timeout_s = 0.0;   ///< per-attempt wall deadline; 0 = none
  double backoff_base_s = 0.5;  ///< > 0
  double backoff_cap_s = 30.0;  ///< >= backoff_base_s
  std::uint64_t seed = 1;       ///< jitter seed
  /// Test seam: called instead of a real sleep between attempts.
  std::function<void(double)> sleeper;
};

/// Throws common::InvalidArgument on out-of-range policy knobs.
void validate(const RetryPolicy& policy);

/// The deterministic backoff before attempt `attempt + 1`:
/// min(cap, base * 2^(attempt-1)) scaled by FNV-seeded jitter in [0.5, 1.0).
[[nodiscard]] double backoff_delay_s(const RetryPolicy& policy, int attempt);

// ------------------------------------------------------- payload encoding

/// Byte-order-independent little-endian encoder for checkpoint payloads.
class PayloadWriter {
 public:
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  void i64(std::int64_t value) { u64(static_cast<std::uint64_t>(value)); }
  void f64(double value);
  void f32(float value);
  void str(std::string_view value);

  [[nodiscard]] const std::string& bytes() const noexcept { return buffer_; }
  [[nodiscard]] std::string take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Bounds-checked decoder; any overrun throws common::Error, which the
/// driver treats as a corrupt checkpoint (miss + recompute), never a crash.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64();
  [[nodiscard]] float f32();
  [[nodiscard]] std::string str();

  /// True when every payload byte has been consumed — the driver requires
  /// this after decode, so a payload/decoder mismatch reads as corruption.
  [[nodiscard]] bool done() const noexcept { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t count);

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------- checkpoint store

/// FNV-1a over a byte string; the checkpoint-payload checksum.
[[nodiscard]] std::uint64_t fnv_checksum(std::string_view bytes) noexcept;

/// 16-hex-digit rendering of a checkpoint key.
[[nodiscard]] std::string key_hex(std::uint64_t key);

/// The on-disk name of one stage checkpoint:
/// "<label>.<sequence>-<stage>.<key_hex>.ckpt" ('/' sanitized to '_').
[[nodiscard]] std::string checkpoint_file_name(const std::string& label,
                                               const std::string& stage,
                                               std::size_t sequence,
                                               std::uint64_t key);

/// Content-addressed stage checkpoint files in one directory.  File format:
/// "MRCK" magic + u32 version + u64 key + u64 payload size + u64 FNV-1a
/// payload checksum + payload, all little-endian.  load() validates every
/// field and treats ANY mismatch — wrong magic/version/key, truncation,
/// checksum failure — as a miss (counted in invalid_checkpoints()), so a
/// stale or torn file can only ever cost a recompute.
class CheckpointStore {
 public:
  /// Creates `dir` (and parents) if needed; throws common::IoError when the
  /// directory cannot be created.
  explicit CheckpointStore(std::string dir);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// The validated payload of `file_name` when present and intact.
  [[nodiscard]] std::optional<std::string> load(const std::string& file_name,
                                                std::uint64_t key);

  /// Commit `payload` under `file_name` (temp + atomic rename).  False on
  /// I/O failure — the driver then proceeds uncheckpointed ("miss").
  [[nodiscard]] bool store(const std::string& file_name, std::uint64_t key,
                           std::string_view payload);

  /// Files that existed but failed validation (truncated/corrupt/stale).
  [[nodiscard]] std::size_t invalid_checkpoints() const noexcept {
    return invalid_;
  }

 private:
  std::string dir_;
  std::size_t invalid_ = 0;
};

// ---------------------------------------------------------- stage driver

/// What one driver run did, surfaced on core::PipelineResult::recovery.
struct RecoveryStats {
  std::size_t stages = 0;             ///< stages driven (hit or computed)
  std::size_t checkpoint_hits = 0;    ///< stages served from checkpoint
  std::size_t checkpoint_misses = 0;  ///< stages computed
  std::size_t checkpoint_writes = 0;  ///< checkpoints committed
  std::size_t invalid_checkpoints = 0;///< files rejected by validation
  std::size_t retries = 0;            ///< failed attempts that were retried
  std::size_t lsh_fallbacks = 0;      ///< LshBanded → ExactAllPairs downgrades
  bool parked = false;                ///< driver parked for resume
};

class StageDriver {
 public:
  struct Options {
    std::string label = "pipeline";      ///< checkpoint file-name prefix
    std::uint64_t params_fingerprint = 0;
    std::uint64_t input_fingerprint = 0;
    std::string checkpoint_dir;          ///< "" = checkpointing disabled
    RetryPolicy retry;
    std::string crash_after;             ///< MRMC_CRASH_AFTER_STAGE hook
    std::string fail_stage;              ///< MRMC_FAIL_STAGE hook
    int fail_count = 0;                  ///< injected failures left

    /// Fill unset hooks from the environment: MRMC_CHECKPOINT_DIR (only
    /// when checkpoint_dir is empty), MRMC_CRASH_AFTER_STAGE,
    /// MRMC_FAIL_STAGE=<stage>[:<count>] (count defaults to 1).
    [[nodiscard]] static Options from_env(Options base);
  };

  struct StageCallOptions {
    /// On a checkpoint hit the driver claims the stage's lineage slot (the
    /// slot its skipped MapReduce job would have claimed) so downstream
    /// stages keep the sequence numbers of an uninterrupted run.  Disable
    /// for stages that run no job even when computed.
    bool claims_lineage = true;
  };

  explicit StageDriver(Options options);

  [[nodiscard]] bool checkpointing() const noexcept { return store_ != nullptr; }
  [[nodiscard]] const RecoveryStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// Drive one stage: serve it from checkpoint, or compute it under the
  /// retry loop and commit the result.  `compute` returns the stage value;
  /// `encode(PayloadWriter&, const T&)` and `decode(PayloadReader&) -> T`
  /// define its checkpoint payload.  Stage names must be unique within one
  /// driver run.
  template <typename Compute, typename Encode, typename Decode>
  auto run_stage(const std::string& stage, Compute&& compute, Encode&& encode,
                 Decode&& decode, StageCallOptions call = {})
      -> std::decay_t<decltype(compute())> {
    using T = std::decay_t<decltype(compute())>;
    const std::size_t sequence = sequence_++;
    if (!store_) {
      int attempts = 0;
      T value = compute_with_retry<T>(stage, compute, attempts);
      ++stats_.stages;
      maybe_crash(stage);
      return value;
    }
    const std::uint64_t key = stage_key(stage, sequence);
    const std::string file_name =
        checkpoint_file_name(options_.label, stage, sequence, key);
    if (std::optional<std::string> payload = store_->load(file_name, key)) {
      std::optional<T> value;
      try {
        PayloadReader reader(*payload);
        value.emplace(decode(reader));
        if (!reader.done()) value.reset();
      } catch (const std::exception&) {
        // Includes bad_alloc from a wild size field: a checkpoint that
        // cannot be decoded is a corrupt checkpoint, never a crash.
        value.reset();
      }
      if (value) {
        finish_stage(stage, sequence, key, "hit", 0, fnv_checksum(*payload),
                     call.claims_lineage);
        return std::move(*value);
      }
      note_undecodable(file_name);
    }
    int attempts = 0;
    T value = compute_with_retry<T>(stage, compute, attempts);
    PayloadWriter writer;
    encode(writer, value);
    const std::string payload = writer.take();
    const std::uint64_t checksum = fnv_checksum(payload);
    const bool wrote = store_->store(file_name, key, payload);
    finish_stage(stage, sequence, key, wrote ? "miss+write" : "miss", attempts,
                 checksum, call.claims_lineage);
    maybe_crash(stage);
    return value;
  }

  /// Record that the driver downgraded an LshBanded candidates stage to the
  /// ExactAllPairs path after repeated failure.
  void record_lsh_fallback(const std::string& stage);

  /// Stop a driver whose cluster can no longer schedule work, leaving the
  /// checkpoint directory positioned for resume.
  [[noreturn]] void park(const std::string& reason);

 private:
  template <typename T, typename Compute>
  T compute_with_retry(const std::string& stage, Compute&& compute,
                       int& attempts) {
    std::optional<T> result;
    attempts = run_attempts(
        stage, [&] { result.emplace(compute()); }, [&] { result.reset(); });
    return std::move(*result);
  }

  /// The type-erased retry loop: returns the attempt count that succeeded,
  /// throws RetryExhausted (or rethrows InjectedDriverCrash / DriverParked).
  int run_attempts(const std::string& stage,
                   const std::function<void()>& invoke,
                   const std::function<void()>& discard);

  [[nodiscard]] std::uint64_t stage_key(const std::string& stage,
                                        std::size_t sequence) const;
  void finish_stage(const std::string& stage, std::size_t sequence,
                    std::uint64_t key, const char* outcome, int attempts,
                    std::uint64_t payload_checksum, bool claims_lineage);
  void note_undecodable(const std::string& file_name);
  void maybe_crash(const std::string& stage);
  void maybe_inject_failure(const std::string& stage);
  void sleep_for(double seconds) const;

  Options options_;
  std::unique_ptr<CheckpointStore> store_;
  std::uint64_t chain_ = 0;      ///< fingerprint chain; see file comment
  std::size_t sequence_ = 0;     ///< next stage sequence
  std::size_t undecodable_ = 0;  ///< checksum-valid but undecodable payloads
  RecoveryStats stats_;
};

}  // namespace mrmc::mr::recovery

#include "bio/fastq.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "obs/log.hpp"

namespace mrmc::bio {

namespace {

std::string first_token(std::string_view line) {
  const auto end = line.find_first_of(" \t");
  return std::string(line.substr(0, end));
}

void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

int phred_score(char quality_char) noexcept {
  const int score = static_cast<unsigned char>(quality_char) - 33;
  return score < 0 ? 0 : score;
}

double phred_error_probability(int score) noexcept {
  return std::pow(10.0, -score / 10.0);
}

double mean_error_probability(const FastqRecord& record) {
  if (record.quality.empty()) return 1.0;
  double total = 0.0;
  for (const char c : record.quality) {
    total += phred_error_probability(phred_score(c));
  }
  return total / static_cast<double>(record.quality.size());
}

std::vector<FastqRecord> read_fastq(std::istream& in,
                                    const ParseOptions& options,
                                    ParseReport* report) {
  std::vector<FastqRecord> records;
  std::string header, seq, plus, quality;
  const bool lenient = options.on_error == OnParseError::kSkip;
  // Strict mode throws; lenient mode quarantines the current record (its
  // lines are already consumed, so parsing resumes at the next header) with
  // the strict-mode message as the reason.
  const auto fail = [&](std::string message) {
    if (!lenient) throw common::IoError(message);
    detail::note_malformed(report, message);
  };

  while (std::getline(in, header)) {
    strip_cr(header);
    if (header.empty()) continue;
    if (header.front() != '@') {
      // A desynced file (stray line between records): drop this line and
      // rescan — the next '@' line restarts the 4-line cadence.
      fail("fastq: expected '@' header, got '" + header + "'");
      continue;
    }
    if (!std::getline(in, seq) || !std::getline(in, plus) ||
        !std::getline(in, quality)) {
      fail("fastq: truncated record");
      break;
    }
    strip_cr(seq);
    strip_cr(plus);
    strip_cr(quality);
    if (plus.empty() || plus.front() != '+') {
      fail("fastq: expected '+' separator");
      continue;
    }
    if (seq.size() != quality.size()) {
      fail("fastq: sequence/quality length mismatch for '" + header + "'");
      continue;
    }
    FastqRecord record;
    record.header = header.substr(1);
    record.id = first_token(record.header);
    if (record.id.empty()) {
      fail("fastq: record with empty id");
      continue;
    }
    record.seq = std::move(seq);
    record.quality = std::move(quality);
    records.push_back(std::move(record));
  }
  if (report != nullptr) report->records = records.size();
  return records;
}

std::vector<FastqRecord> read_fastq(std::istream& in) {
  return read_fastq(in, ParseOptions{});
}

std::vector<FastqRecord> read_fastq_string(std::string_view text,
                                           const ParseOptions& options,
                                           ParseReport* report) {
  std::istringstream stream{std::string(text)};
  return read_fastq(stream, options, report);
}

std::vector<FastqRecord> read_fastq_string(std::string_view text) {
  return read_fastq_string(text, ParseOptions{});
}

std::vector<FastqRecord> read_fastq_file(const std::string& path,
                                         const ParseOptions& options,
                                         ParseReport* report) {
  std::ifstream file(path);
  if (!file) throw common::IoError("fastq: cannot open '" + path + "'");
  ParseReport local;
  if (report == nullptr) report = &local;
  auto records = read_fastq(file, options, report);
  if (report->skipped > 0) {
    static const obs::Logger logger("bio.fastq");
    logger.warn("skipped malformed records", {{"path", path},
                                              {"skipped", report->skipped},
                                              {"kept", records.size()}});
  }
  return records;
}

std::vector<FastqRecord> read_fastq_file(const std::string& path) {
  return read_fastq_file(path, ParseOptions{});
}

void write_fastq(std::ostream& out, const std::vector<FastqRecord>& records) {
  for (const auto& record : records) {
    out << '@' << (record.header.empty() ? record.id : record.header) << '\n'
        << record.seq << "\n+\n" << record.quality << '\n';
  }
}

std::string write_fastq_string(const std::vector<FastqRecord>& records) {
  std::ostringstream out;
  write_fastq(out, records);
  return out.str();
}

std::vector<FastaRecord> to_fasta(const std::vector<FastqRecord>& records) {
  std::vector<FastaRecord> out;
  out.reserve(records.size());
  for (const auto& record : records) {
    out.push_back({record.id, record.header, record.seq});
  }
  return out;
}

std::vector<FastqRecord> quality_filter(const std::vector<FastqRecord>& records,
                                        const QualityFilter& filter,
                                        std::size_t* dropped) {
  std::vector<FastqRecord> kept;
  std::size_t discarded = 0;
  for (const auto& record : records) {
    // 3'-trim: cut at the first base whose score falls below the threshold.
    std::size_t keep = record.seq.size();
    for (std::size_t i = 0; i < record.quality.size(); ++i) {
      if (phred_score(record.quality[i]) < filter.trim_quality) {
        keep = i;
        break;
      }
    }
    FastqRecord trimmed = record;
    trimmed.seq.resize(keep);
    trimmed.quality.resize(keep);

    if (trimmed.seq.size() < filter.min_length ||
        mean_error_probability(trimmed) > filter.max_mean_error) {
      ++discarded;
      continue;
    }
    kept.push_back(std::move(trimmed));
  }
  if (dropped != nullptr) *dropped = discarded;
  return kept;
}

}  // namespace mrmc::bio
